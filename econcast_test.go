package econcast

import (
	"math"
	"testing"
)

func demoNet() Network {
	return Homogeneous(5, 10*MicroWatt, 500*MicroWatt, 500*MicroWatt)
}

func TestOracleFacade(t *testing.T) {
	g, err := OracleGroupput(demoNet())
	if err != nil {
		t.Fatal(err)
	}
	// Closed form: 5*4*1e-5/(25e-4) = 0.08.
	if math.Abs(g.Throughput-0.08) > 1e-9 {
		t.Fatalf("oracle groupput %v, want 0.08", g.Throughput)
	}
	a, err := OracleAnyput(demoNet())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Throughput-0.05) > 1e-9 {
		t.Fatalf("oracle anyput %v, want 0.05", a.Throughput)
	}
	if len(g.Alpha) != 5 || len(g.Beta) != 5 {
		t.Fatal("solution vectors wrong length")
	}
}

func TestAchievableFacade(t *testing.T) {
	res, err := Achievable(demoNet(), 0.25, Groupput)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	if res.Throughput <= 0 || res.Throughput >= 0.08 {
		t.Fatalf("T^sigma %v outside (0, T*)", res.Throughput)
	}
	if res.BurstLength <= 1 {
		t.Fatalf("burst length %v", res.BurstLength)
	}
}

func TestSimulateFacade(t *testing.T) {
	ach, err := Achievable(demoNet(), 0.5, Groupput)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(SimConfig{
		Network:  demoNet(),
		Mode:     Groupput,
		Sigma:    0.5,
		Duration: 3000,
		Warmup:   500,
		Seed:     1,
		WarmEta:  ach.Eta,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.Groupput-ach.Throughput) / ach.Throughput; rel > 0.2 {
		t.Fatalf("simulated %v vs achievable %v", res.Groupput, ach.Throughput)
	}
	if res.PacketsSent <= 0 || res.LatencyN < 0 {
		t.Fatal("metrics missing")
	}
}

func TestSimulateGridFacade(t *testing.T) {
	nw := Homogeneous(9, 10*MicroWatt, 500*MicroWatt, 500*MicroWatt)
	neighbors := GridNeighbors(3, 3)
	lower, upper, err := OracleGroupputBounds(nw, neighbors)
	if err != nil {
		t.Fatal(err)
	}
	if lower.Throughput <= 0 || upper.Throughput < lower.Throughput {
		t.Fatalf("bounds wrong: %v / %v", lower.Throughput, upper.Throughput)
	}
	res, err := Simulate(SimConfig{
		Network:      nw,
		Mode:         Groupput,
		Sigma:        0.5,
		Neighbors:    neighbors,
		Duration:     1500,
		Warmup:       300,
		Seed:         2,
		BatteryFloor: 2e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groupput <= 0 {
		t.Fatal("no grid throughput")
	}
}

func TestSimulateValidatesNeighbors(t *testing.T) {
	_, err := Simulate(SimConfig{
		Network:   demoNet(),
		Sigma:     0.5,
		Neighbors: [][]int{{1}},
		Duration:  10,
	})
	if err == nil {
		t.Fatal("mismatched adjacency accepted")
	}
	if _, _, err := OracleGroupputBounds(demoNet(), [][]int{{1}}); err == nil {
		t.Fatal("mismatched adjacency accepted by bounds")
	}
}

func TestBaselineFacades(t *testing.T) {
	node := Node{Budget: 10 * MicroWatt, ListenPower: 500 * MicroWatt, TransmitPower: 500 * MicroWatt}
	p, err := Panda(5, node, 1e-3, Groupput)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Birthday(5, node, Groupput)
	if err != nil {
		t.Fatal(err)
	}
	s, wcl, err := Searchlight(5, node)
	if err != nil {
		t.Fatal(err)
	}
	oracleG := 0.08
	for name, v := range map[string]float64{"panda": p, "birthday": b, "searchlight": s} {
		if v <= 0 || v >= oracleG {
			t.Errorf("%s throughput %v outside (0, oracle)", name, v)
		}
	}
	if math.Abs(wcl-125) > 1e-9 {
		t.Errorf("Searchlight WCL %v, want 125", wcl)
	}
}

func TestTestbedFacade(t *testing.T) {
	res, err := SimulateTestbed(TestbedConfig{
		N: 5, Budget: 1 * MilliWatt, Sigma: 0.25,
		Duration: 1500, Warmup: 300, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groupput <= 0 || res.PacketsSent <= 0 {
		t.Fatal("no testbed activity")
	}
	sum := 0.0
	for _, f := range res.PingHistogram {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ping histogram sums to %v", sum)
	}
}

func TestSampleHeterogeneousDeterministic(t *testing.T) {
	a := SampleHeterogeneous(5, 100, 7)
	b := SampleHeterogeneous(5, 100, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampler not deterministic")
		}
	}
	if len(a) != 5 {
		t.Fatalf("length %d", len(a))
	}
}

func TestModeStrings(t *testing.T) {
	if Groupput.String() != "groupput" || Anyput.String() != "anyput" {
		t.Fatal("mode strings wrong")
	}
}

func TestHarvestHook(t *testing.T) {
	res, err := Simulate(SimConfig{
		Network:  demoNet(),
		Mode:     Groupput,
		Sigma:    0.5,
		Duration: 2000,
		Warmup:   800,
		Seed:     3,
		Harvest: func(node int, t float64) float64 {
			return 10 * MicroWatt // constant, via the hook
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groupput <= 0 {
		t.Fatal("no throughput via harvest hook")
	}
}

func TestExactOracleFacade(t *testing.T) {
	nw := Homogeneous(9, 10*MicroWatt, 500*MicroWatt, 500*MicroWatt)
	neighbors := GridNeighbors(3, 3)
	exact, err := OracleGroupputExact(nw, neighbors)
	if err != nil {
		t.Fatal(err)
	}
	lower, upper, err := OracleGroupputBounds(nw, neighbors)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Throughput < lower.Throughput-1e-9 || exact.Throughput > upper.Throughput+1e-9 {
		t.Fatalf("exact %v outside [%v, %v]", exact.Throughput, lower.Throughput, upper.Throughput)
	}
}

func TestAppsFacade(t *testing.T) {
	nw := demoNet()
	const start = 200.0
	d := NewDiscovery(len(nw), start)
	g := NewGossip(len(nw))
	rumor := -1
	res, err := Simulate(SimConfig{
		Network:  nw,
		Mode:     Groupput,
		Sigma:    0.5,
		Duration: 2500,
		Warmup:   start,
		Seed:     9,
		OnDeliver: func(tx, rx int, now float64) {
			d.OnDeliver(tx, rx, now)
			if rumor < 0 && now >= start {
				rumor, _ = g.Inject(0, now)
			}
			g.OnDeliver(tx, rx, now)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsDelivered == 0 {
		t.Fatal("nothing delivered")
	}
	if got, total := d.Pairs(); got == 0 || total != 20 {
		t.Fatalf("pairs %d/%d", got, total)
	}
	if _, err := d.MeanPairwise(); err != nil {
		t.Fatal(err)
	}
	if rumor < 0 || g.Coverage(rumor) < 2 {
		t.Fatalf("rumor coverage %d", g.Coverage(rumor))
	}
}
