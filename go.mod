module econcast

go 1.22
