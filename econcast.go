// Package econcast is the public API of this repository: a complete Go
// implementation of EconCast — the asynchronous distributed protocol of
// Chen, Ghaderi, Rubenstein and Zussman, "Maximizing Broadcast Throughput
// Under Ultra-Low-Power Constraints" (ACM CoNEXT 2016 / arXiv:1610.04203)
// — together with the paper's oracle (offline-optimal) throughput solvers,
// the entropy-regularized achievable-throughput analysis, deterministic
// and goroutine-based simulators, the Panda/Birthday/Searchlight baseline
// protocols, and an emulation of the paper's TI eZ430-RF2500-SEH testbed.
//
// The facade mirrors the paper's structure:
//
//   - OracleGroupput / OracleAnyput solve problems (P2) and (P3): the best
//     any centralized scheduler could do under the power budgets.
//   - Achievable solves problem (P4): the throughput T^sigma EconCast
//     itself converges to for a given temperature sigma (Theorem 1 says
//     T^sigma -> T* as sigma -> 0).
//   - Simulate runs the distributed protocol in a discrete-event radio
//     simulation and reports throughput, burstiness, latency, and power.
//   - SimulateTestbed runs the emulated §VIII hardware experiment.
//   - Panda / Birthday / Searchlight give the prior-art comparison points.
//
// Throughput is always normalized as in the paper: the fraction of time
// spent on successful delivery, counted once per receiver for groupput
// (maximum N-1) and once per transmission for anyput (maximum 1).
package econcast

import (
	"fmt"

	"econcast/internal/baselines"
	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/oracle"
	"econcast/internal/rng"
	"econcast/internal/sim"
	"econcast/internal/statespace"
	"econcast/internal/testbed"
	"econcast/internal/topology"
)

// Power units in Watts, for readable configuration literals.
const (
	Watt      = 1.0
	MilliWatt = 1e-3
	MicroWatt = 1e-6
)

// Node holds one node's static parameters, all in Watts: its power budget
// (harvesting rate) rho and its listen/transmit consumption levels L and X.
type Node struct {
	Budget        float64
	ListenPower   float64
	TransmitPower float64
}

// Network is an ordered set of nodes forming one broadcast domain.
type Network []Node

// Homogeneous returns n identical nodes.
func Homogeneous(n int, budget, listen, transmit float64) Network {
	nw := make(Network, n)
	for i := range nw {
		nw[i] = Node{Budget: budget, ListenPower: listen, TransmitPower: transmit}
	}
	return nw
}

// SampleHeterogeneous draws a random heterogeneous network with the
// paper's Fig. 2 parameterization at heterogeneity h (h = 10 degenerates
// to the homogeneous 10 uW / 500 uW network). Deterministic in the seed.
func SampleHeterogeneous(n int, h float64, seed uint64) Network {
	m := model.HeterogeneitySpec{N: n, H: h}.Sample(rng.New(seed))
	return fromModel(m)
}

func (nw Network) toModel() *model.Network {
	nodes := make([]model.Node, len(nw))
	for i, n := range nw {
		nodes[i] = model.Node{
			Budget:        n.Budget,
			ListenPower:   n.ListenPower,
			TransmitPower: n.TransmitPower,
		}
	}
	return &model.Network{Nodes: nodes}
}

func fromModel(m *model.Network) Network {
	nw := make(Network, m.N())
	for i, n := range m.Nodes {
		nw[i] = Node{Budget: n.Budget, ListenPower: n.ListenPower, TransmitPower: n.TransmitPower}
	}
	return nw
}

// Mode selects the broadcast-throughput objective.
type Mode int

// Throughput objectives (Definitions 1 and 2 of the paper).
const (
	// Groupput counts each delivered bit once per receiver.
	Groupput Mode = iota
	// Anyput counts a delivered bit once if any receiver got it.
	Anyput
)

func (m Mode) String() string { return m.toModel().String() }

func (m Mode) toModel() model.Mode {
	if m == Anyput {
		return model.Anyput
	}
	return model.Groupput
}

// Variant selects the EconCast flavor (§V-D).
type Variant int

// Protocol variants.
const (
	// Capture (EconCast-C) lets a transmitter hold the channel for
	// several packets, guided by per-packet ping feedback.
	Capture Variant = iota
	// NonCapture (EconCast-NC) releases the channel after every packet.
	NonCapture
)

func (v Variant) toInternal() econcast.Variant {
	if v == NonCapture {
		return econcast.NonCapture
	}
	return econcast.Capture
}

// OracleSolution is an optimal offline operating point: the per-node
// listen (Alpha) and transmit (Beta) time fractions and the resulting
// throughput.
type OracleSolution struct {
	Throughput float64
	Alpha      []float64
	Beta       []float64
}

func fromOracle(s *oracle.Solution) *OracleSolution {
	return &OracleSolution{Throughput: s.Throughput, Alpha: s.Alpha, Beta: s.Beta}
}

// OracleGroupput solves (P2): the oracle groupput of a clique network.
func OracleGroupput(nw Network) (*OracleSolution, error) {
	s, err := oracle.Groupput(nw.toModel())
	if err != nil {
		return nil, err
	}
	return fromOracle(s), nil
}

// OracleAnyput solves (P3): the oracle anyput of a clique network.
func OracleAnyput(nw Network) (*OracleSolution, error) {
	s, err := oracle.Anyput(nw.toModel())
	if err != nil {
		return nil, err
	}
	return fromOracle(s), nil
}

// OracleGroupputBounds returns the §IV-C lower and upper bounds on the
// oracle groupput for a non-clique topology given as adjacency lists
// (neighbors[i] lists the nodes that hear node i). When the bounds agree
// the exact non-clique oracle is known.
func OracleGroupputBounds(nw Network, neighbors [][]int) (lower, upper *OracleSolution, err error) {
	if len(neighbors) != len(nw) {
		return nil, nil, fmt.Errorf("econcast: %d adjacency lists for %d nodes", len(neighbors), len(nw))
	}
	topo := topology.New(len(nw))
	for i, ns := range neighbors {
		for _, j := range ns {
			topo.AddEdge(i, j)
		}
	}
	lo, up, err := oracle.GroupputNonCliqueBounds(nw.toModel(), topo)
	if err != nil {
		return nil, nil, err
	}
	return fromOracle(lo), fromOracle(up), nil
}

// GridNeighbors returns 4-neighbor adjacency lists for a rows x cols grid,
// the paper's Fig. 6 topology, for use with OracleGroupputBounds and
// SimConfig.Neighbors.
func GridNeighbors(rows, cols int) [][]int {
	g := topology.Grid(rows, cols)
	out := make([][]int, g.N())
	for i := range out {
		out[i] = append([]int(nil), g.Neighbors(i)...)
	}
	return out
}

// AchievableResult is the solution of the entropy-regularized problem
// (P4): the throughput EconCast attains at temperature sigma, with the
// associated operating point and analytics.
type AchievableResult struct {
	Throughput  float64   // T^sigma
	Alpha, Beta []float64 // optimal listen/transmit fractions
	Eta         []float64 // optimal Lagrange multipliers (1/Watt)
	BurstLength float64   // analytical average burst length (eqs. 34-35)
	Converged   bool
}

// Achievable computes T^sigma by solving (P4) through its Lagrangian dual.
// Heterogeneous networks are supported up to ~16 nodes (exact state-space
// enumeration); homogeneous networks of any size use an aggregated
// representation.
func Achievable(nw Network, sigma float64, mode Mode) (*AchievableResult, error) {
	res, err := statespace.SolveP4(nw.toModel(), sigma, mode.toModel(), nil)
	if err != nil {
		return nil, err
	}
	return &AchievableResult{
		Throughput:  res.Throughput,
		Alpha:       res.Alpha,
		Beta:        res.Beta,
		Eta:         res.Eta,
		BurstLength: res.BurstLength,
		Converged:   res.Converged,
	}, nil
}

// SimConfig describes a protocol simulation.
type SimConfig struct {
	Network Network
	Mode    Mode
	Variant Variant
	Sigma   float64

	// Neighbors, when non-nil, restricts radio reachability to the given
	// adjacency lists (nil means a clique). See GridNeighbors.
	Neighbors [][]int

	Duration float64 // simulated seconds
	Warmup   float64 // seconds discarded before measuring
	Seed     uint64

	// Delta and Tau tune the multiplier adaptation of eq. (17); zero
	// values pick sensible defaults.
	Delta float64
	Tau   float64

	// WarmEta warm-starts the multipliers from an AchievableResult.Eta,
	// skipping the adaptation transient.
	WarmEta []float64

	// BatteryFloor gives each node the given initial energy (Joules) and
	// forbids spending below zero: depleted listeners are forced asleep
	// and depleted transmitters release the channel, as physical hardware
	// would. Zero keeps the paper's idealized virtual battery.
	BatteryFloor float64

	// Harvest, when non-nil, replaces each node's constant budget with a
	// time-varying harvesting profile (node index, seconds since start).
	Harvest func(node int, t float64) float64

	// OnDeliver, when non-nil, receives every successful packet reception
	// (transmitter, receiver, time), including during warmup. Discovery
	// and Gossip trackers plug in here.
	OnDeliver func(tx, rx int, now float64)

	// Churn, when non-nil, makes node participation time-varying: a node
	// is present only while Churn(node, t) returns true, modeling mobility
	// or duty-cycled deployment. The protocol needs no notification of
	// arrivals or departures — the paper's "unacquainted" property.
	Churn func(node int, t float64) bool
}

// SimResult summarizes a simulation run.
type SimResult struct {
	Groupput float64
	Anyput   float64

	PacketsSent      int
	PacketsDelivered int

	MeanBurstLength float64
	BurstSamples    int

	MeanLatency float64 // seconds between sleep-separated receive bursts
	P99Latency  float64
	LatencyN    int

	Power []float64 // per-node mean consumption over the window (W)
	Eta   []float64 // final multipliers (1/Watt)
}

// Simulate runs the distributed protocol in the discrete-event engine.
func Simulate(cfg SimConfig) (*SimResult, error) {
	var topo *topology.Topology
	if cfg.Neighbors != nil {
		if len(cfg.Neighbors) != len(cfg.Network) {
			return nil, fmt.Errorf("econcast: %d adjacency lists for %d nodes",
				len(cfg.Neighbors), len(cfg.Network))
		}
		topo = topology.New(len(cfg.Network))
		for i, ns := range cfg.Neighbors {
			for _, j := range ns {
				topo.AddEdge(i, j)
			}
		}
	}
	m, err := sim.Run(sim.Config{
		Network:  cfg.Network.toModel(),
		Topology: topo,
		Protocol: sim.Protocol{
			Mode:    cfg.Mode.toModel(),
			Variant: cfg.Variant.toInternal(),
			Sigma:   cfg.Sigma,
			Delta:   cfg.Delta,
			Tau:     cfg.Tau,
		},
		Duration:         cfg.Duration,
		Warmup:           cfg.Warmup,
		Seed:             cfg.Seed,
		WarmEta:          cfg.WarmEta,
		HardBatteryFloor: cfg.BatteryFloor > 0,
		InitialBattery:   cfg.BatteryFloor,
		Harvest:          cfg.Harvest,
		OnDeliver:        cfg.OnDeliver,
		Churn:            cfg.Churn,
	})
	if err != nil {
		return nil, err
	}
	out := &SimResult{
		Groupput:         m.Groupput,
		Anyput:           m.Anyput,
		PacketsSent:      m.PacketsSent,
		PacketsDelivered: m.PacketsDelivered,
		MeanBurstLength:  m.BurstLengths.Mean(),
		BurstSamples:     m.BurstLengths.N(),
		LatencyN:         m.Latency.N(),
		Power:            m.Power,
		Eta:              m.EtaFinal,
	}
	if out.LatencyN > 0 {
		out.MeanLatency = m.Latency.Mean()
		out.P99Latency = m.Latency.Quantile(0.99)
	}
	return out, nil
}

// TestbedConfig describes an emulated §VIII hardware experiment on TI
// eZ430-RF2500-SEH-like nodes. Zero fields default to the paper's
// measured constants (L=67.08 mW, X=56.29 mW, 40 ms packets, 8 ms ping
// interval, 0.4 ms pings).
type TestbedConfig struct {
	N        int
	Budget   float64 // rho: 1 or 5 mW in the paper
	Sigma    float64
	Duration float64
	Warmup   float64
	Seed     uint64
}

// TestbedResult summarizes an emulated experiment.
type TestbedResult struct {
	Groupput     float64
	Power        []float64 // actual consumption incl. regulator overhead
	VirtualPower []float64 // what the on-node virtual battery accounts
	PacketsSent  int
	// PingHistogram[k] is the fraction of transmissions after which the
	// transmitter decoded k pings (Table IV).
	PingHistogram []float64
}

// SimulateTestbed runs the emulated testbed experiment.
func SimulateTestbed(cfg TestbedConfig) (*TestbedResult, error) {
	m, err := testbed.Run(testbed.Config{
		N:        cfg.N,
		Budget:   cfg.Budget,
		Sigma:    cfg.Sigma,
		Duration: cfg.Duration,
		Warmup:   cfg.Warmup,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	hist := make([]float64, m.PingCounts.Max()+1)
	for k := range hist {
		hist[k] = m.PingCounts.Fraction(k)
	}
	return &TestbedResult{
		Groupput:      m.Groupput,
		Power:         m.Power,
		VirtualPower:  m.VirtualPower,
		PacketsSent:   m.PacketsSent,
		PingHistogram: hist,
	}, nil
}

// Panda returns the analytic throughput of the Panda baseline for n
// identical nodes with the given packet length, optimized under the power
// budget (the comparison protocol of §VII-C and Table III).
func Panda(n int, node Node, packetTime float64, mode Mode) (float64, error) {
	res, err := baselines.PandaOptimize(n, model.Node(node), packetTime, mode.toModel())
	if err != nil {
		return 0, err
	}
	if mode == Anyput {
		return res.Anyput, nil
	}
	return res.Groupput, nil
}

// Birthday returns the analytic throughput of the optimized Birthday
// protocol.
func Birthday(n int, node Node, mode Mode) (float64, error) {
	res, err := baselines.BirthdayOptimize(n, model.Node(node), mode.toModel())
	if err != nil {
		return 0, err
	}
	if mode == Anyput {
		return res.Anyput, nil
	}
	return res.Groupput, nil
}

// Searchlight returns the paper's upper bound on Searchlight's groupput
// and its pairwise worst-case discovery latency (seconds) under the
// Fig. 5 calibration (50 ms slots, 1 ms beacons).
func Searchlight(n int, node Node) (throughputUB, worstCaseLatency float64, err error) {
	ub, err := baselines.SearchlightThroughputUpperBound(n, model.Node(node), baselines.SearchlightConfig{})
	if err != nil {
		return 0, 0, err
	}
	wcl, err := baselines.SearchlightWorstCaseLatency(model.Node(node), baselines.SearchlightConfig{})
	if err != nil {
		return 0, 0, err
	}
	return ub, wcl, nil
}
