package econcast_test

import (
	"fmt"

	"econcast"
)

// The paper's reference configuration: five nodes harvesting 10 uW against
// 500 uW radios. The oracle is the best any omniscient scheduler could do.
func ExampleOracleGroupput() {
	nodes := econcast.Homogeneous(5,
		10*econcast.MicroWatt, 500*econcast.MicroWatt, 500*econcast.MicroWatt)
	sol, err := econcast.OracleGroupput(nodes)
	if err != nil {
		panic(err)
	}
	fmt.Printf("oracle groupput: %.4f\n", sol.Throughput)
	// Output: oracle groupput: 0.0800
}

// Achievable computes T^sigma, the throughput EconCast converges to at
// temperature sigma; Theorem 1 says it approaches the oracle as sigma -> 0.
func ExampleAchievable() {
	nodes := econcast.Homogeneous(5,
		10*econcast.MicroWatt, 500*econcast.MicroWatt, 500*econcast.MicroWatt)
	oracle, _ := econcast.OracleGroupput(nodes)
	for _, sigma := range []float64{0.5, 0.25, 0.1} {
		ach, err := econcast.Achievable(nodes, sigma, econcast.Groupput)
		if err != nil {
			panic(err)
		}
		fmt.Printf("sigma=%.2f: %.0f%% of oracle\n",
			sigma, 100*ach.Throughput/oracle.Throughput)
	}
	// Output:
	// sigma=0.50: 14% of oracle
	// sigma=0.25: 43% of oracle
	// sigma=0.10: 90% of oracle
}

// Simulate runs the actual distributed protocol; with a warm-started
// multiplier it tracks the analytical prediction closely.
func ExampleSimulate() {
	nodes := econcast.Homogeneous(5,
		10*econcast.MicroWatt, 500*econcast.MicroWatt, 500*econcast.MicroWatt)
	ach, _ := econcast.Achievable(nodes, 0.5, econcast.Groupput)
	res, err := econcast.Simulate(econcast.SimConfig{
		Network:  nodes,
		Mode:     econcast.Groupput,
		Sigma:    0.5,
		Duration: 5000,
		Warmup:   1000,
		Seed:     1,
		WarmEta:  ach.Eta,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("within 15%% of analytic: %v\n",
		res.Groupput > 0.85*ach.Throughput && res.Groupput < 1.15*ach.Throughput)
	// Output: within 15% of analytic: true
}

// Baselines give the §VII-C comparison points; at L = X, EconCast at
// sigma=0.25 beats Panda by more than an order of magnitude.
func ExamplePanda() {
	node := econcast.Node{
		Budget:        10 * econcast.MicroWatt,
		ListenPower:   500 * econcast.MicroWatt,
		TransmitPower: 500 * econcast.MicroWatt,
	}
	panda, err := econcast.Panda(5, node, 1e-3, econcast.Groupput)
	if err != nil {
		panic(err)
	}
	nodes := econcast.Homogeneous(5, node.Budget, node.ListenPower, node.TransmitPower)
	ach, _ := econcast.Achievable(nodes, 0.25, econcast.Groupput)
	fmt.Printf("EconCast/Panda > 10x: %v\n", ach.Throughput/panda > 10)
	// Output: EconCast/Panda > 10x: true
}

// Non-clique topologies: the §IV-C bounds bracket the exact
// configuration-LP oracle; on grids all three coincide.
func ExampleOracleGroupputExact() {
	nodes := econcast.Homogeneous(9,
		10*econcast.MicroWatt, 500*econcast.MicroWatt, 500*econcast.MicroWatt)
	grid := econcast.GridNeighbors(3, 3)
	lower, upper, _ := econcast.OracleGroupputBounds(nodes, grid)
	exact, err := econcast.OracleGroupputExact(nodes, grid)
	if err != nil {
		panic(err)
	}
	fmt.Printf("bounds and exact coincide: %v\n",
		exact.Throughput-lower.Throughput < 1e-9 &&
			upper.Throughput-exact.Throughput < 1e-9)
	// Output: bounds and exact coincide: true
}
