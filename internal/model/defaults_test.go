package model

import "testing"

func TestDefaultIfZero(t *testing.T) {
	cases := []struct {
		v, def, want float64
	}{
		{0, 5, 5},
		{3, 5, 3},
		{-2, 5, -2},
		{1e-300, 5, 1e-300}, // tiny but set: not the sentinel
	}
	for _, c := range cases {
		if got := DefaultIfZero(c.v, c.def); got != c.want {
			t.Errorf("DefaultIfZero(%v, %v) = %v, want %v", c.v, c.def, got, c.want)
		}
	}
}
