package model

// DefaultIfZero returns def when v is exactly zero — the conventional
// "field left unset" sentinel in Config structs throughout the repo —
// and v unchanged otherwise. Centralizing the sentinel test keeps the
// one intentionally-exact float comparison in a single audited place
// (econlint's floateq analyzer flags ad-hoc ones).
func DefaultIfZero(v, def float64) float64 {
	if v == 0 { //lint:allow floateq zero is the explicit unset sentinel, not a computed value
		return def
	}
	return v
}

// Optional is a float64 config setting that distinguishes "left unset"
// from an explicit zero. DefaultIfZero's sentinel silently promotes a
// deliberate 0 (disable the imperfection, no overhead, …) to the
// default; settings where zero is meaningful must use Optional instead:
// the zero Optional value means unset, and Explicit(v) — including
// Explicit(0) — pins the value.
type Optional struct {
	value float64
	set   bool
}

// Explicit returns an Optional carrying v, even when v is zero.
func Explicit(v float64) Optional { return Optional{value: v, set: true} }

// Or resolves the setting: the explicit value if one was given,
// otherwise def.
func (o Optional) Or(def float64) float64 {
	if o.set {
		return o.value
	}
	return def
}

// IsSet reports whether an explicit value was given.
func (o Optional) IsSet() bool { return o.set }
