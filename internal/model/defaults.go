package model

// DefaultIfZero returns def when v is exactly zero — the conventional
// "field left unset" sentinel in Config structs throughout the repo —
// and v unchanged otherwise. Centralizing the sentinel test keeps the
// one intentionally-exact float comparison in a single audited place
// (econlint's floateq analyzer flags ad-hoc ones).
func DefaultIfZero(v, def float64) float64 {
	if v == 0 { //lint:allow floateq zero is the explicit unset sentinel, not a computed value
		return def
	}
	return v
}
