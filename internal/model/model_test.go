package model

import (
	"math"
	"testing"
	"testing/quick"

	"econcast/internal/rng"
)

func TestStateString(t *testing.T) {
	cases := map[State]string{Sleep: "sleep", Listen: "listen", Transmit: "transmit"}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if State(9).String() != "State(9)" {
		t.Errorf("unknown state string = %q", State(9).String())
	}
}

func TestModeString(t *testing.T) {
	if Groupput.String() != "groupput" || Anyput.String() != "anyput" {
		t.Fatal("mode strings wrong")
	}
}

func TestNodePower(t *testing.T) {
	n := Node{Budget: 1, ListenPower: 2, TransmitPower: 3}
	if n.Power(Sleep) != 0 || n.Power(Listen) != 2 || n.Power(Transmit) != 3 {
		t.Fatal("Power wrong")
	}
}

func TestHomogeneous(t *testing.T) {
	nw := Homogeneous(5, 10*MicroWatt, 500*MicroWatt, 500*MicroWatt)
	if nw.N() != 5 {
		t.Fatalf("N = %d", nw.N())
	}
	if !nw.Homogeneous() {
		t.Fatal("not homogeneous")
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	nw.Nodes[2].Budget = 1 * MicroWatt
	if nw.Homogeneous() {
		t.Fatal("heterogeneous network reported homogeneous")
	}
}

func TestValidate(t *testing.T) {
	bad := []*Network{
		{},
		{Nodes: []Node{{Budget: 0, ListenPower: 1, TransmitPower: 1}}},
		{Nodes: []Node{{Budget: 1, ListenPower: 0, TransmitPower: 1}}},
		{Nodes: []Node{{Budget: 1, ListenPower: 1, TransmitPower: -1}}},
		{Nodes: []Node{{Budget: math.Inf(1), ListenPower: 1, TransmitPower: 1}}},
		{Nodes: []Node{{Budget: math.NaN(), ListenPower: 1, TransmitPower: 1}}},
	}
	for i, nw := range bad {
		if err := nw.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid network", i)
		}
	}
}

func TestNetStateBasics(t *testing.T) {
	s := NetState{Transmitter: 2, Listeners: 0b1011} // nodes 0,1,3 listen
	if !s.Valid(5) {
		t.Fatal("valid state rejected")
	}
	if s.StateOf(2) != Transmit || s.StateOf(0) != Listen || s.StateOf(4) != Sleep {
		t.Fatal("StateOf wrong")
	}
	if s.NumListeners() != 3 {
		t.Fatalf("NumListeners = %d", s.NumListeners())
	}
	if !s.HasTransmitter() {
		t.Fatal("HasTransmitter false")
	}
	if s.Throughput(Groupput) != 3 {
		t.Fatalf("groupput T_w = %v", s.Throughput(Groupput))
	}
	if s.Throughput(Anyput) != 1 {
		t.Fatalf("anyput T_w = %v", s.Throughput(Anyput))
	}
}

func TestNetStateNoListeners(t *testing.T) {
	s := NetState{Transmitter: 0, Listeners: 0}
	if s.Throughput(Groupput) != 0 || s.Throughput(Anyput) != 0 {
		t.Fatal("transmitting into the void should yield zero throughput")
	}
}

func TestNetStateNoTransmitter(t *testing.T) {
	s := NetState{Transmitter: NoTransmitter, Listeners: 0b11}
	if s.Throughput(Groupput) != 0 || s.Throughput(Anyput) != 0 {
		t.Fatal("no transmitter should yield zero throughput")
	}
	if !s.Valid(2) {
		t.Fatal("valid idle state rejected")
	}
}

func TestNetStateInvalid(t *testing.T) {
	cases := []struct {
		s NetState
		n int
	}{
		{NetState{Transmitter: 1, Listeners: 0b10}, 3}, // transmitter listening
		{NetState{Transmitter: 3, Listeners: 0}, 3},    // out of range
		{NetState{Transmitter: -2, Listeners: 0}, 3},   // bad sentinel
		{NetState{Transmitter: -1, Listeners: 0b100}, 2},
		{NetState{Transmitter: -1, Listeners: 0}, 0},
	}
	for i, c := range cases {
		if c.s.Valid(c.n) {
			t.Errorf("case %d: invalid state accepted", i)
		}
	}
}

func TestNumStates(t *testing.T) {
	// (N+2)*2^(N-1): the paper's state-space size.
	cases := map[int]int{1: 3, 2: 8, 3: 20, 5: 112, 10: 6144}
	for n, want := range cases {
		if got := NumStates(n); got != want {
			t.Errorf("NumStates(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestHeterogeneityDegeneratesAtH10(t *testing.T) {
	src := rng.New(1)
	nw := HeterogeneitySpec{N: 5, H: 10}.Sample(src)
	for i, n := range nw.Nodes {
		if math.Abs(n.ListenPower-500*MicroWatt) > 1e-15 ||
			math.Abs(n.TransmitPower-500*MicroWatt) > 1e-15 {
			t.Fatalf("node %d: L=%v X=%v, want 500uW", i, n.ListenPower, n.TransmitPower)
		}
		if math.Abs(n.Budget-10*MicroWatt) > 1e-12 {
			t.Fatalf("node %d: rho=%v, want 10uW", i, n.Budget)
		}
	}
}

func TestHeterogeneityRanges(t *testing.T) {
	src := rng.New(2)
	const h = 250.0
	spec := HeterogeneitySpec{N: 50, H: h}
	for trial := 0; trial < 20; trial++ {
		nw := spec.Sample(src)
		if err := nw.Validate(); err != nil {
			t.Fatal(err)
		}
		for i, n := range nw.Nodes {
			lo, hi := (510-h)*MicroWatt, (490+h)*MicroWatt
			if n.ListenPower < lo || n.ListenPower > hi {
				t.Fatalf("node %d: L=%v outside [%v,%v]", i, n.ListenPower, lo, hi)
			}
			if n.TransmitPower < lo || n.TransmitPower > hi {
				t.Fatalf("node %d: X=%v outside", i, n.TransmitPower)
			}
			// rho in [100/h, h] microwatts.
			if n.Budget < 100/h*MicroWatt*0.999 || n.Budget > h*MicroWatt*1.001 {
				t.Fatalf("node %d: rho=%v outside [%v,%v] uW", i,
					n.Budget/MicroWatt, 100/h, h)
			}
		}
	}
}

func TestHeterogeneityMedianBudget(t *testing.T) {
	// The paper: rho has median 10 uW for any h (since h' is symmetric about
	// ln 10 ... in fact U[-ln(h/100), ln h] has midpoint (ln h - ln(h/100))/2
	// = ln(10), so median of rho = 10 uW).
	src := rng.New(3)
	spec := HeterogeneitySpec{N: 1, H: 200}
	var budgets []float64
	for i := 0; i < 20001; i++ {
		budgets = append(budgets, spec.Sample(src).Nodes[0].Budget/MicroWatt)
	}
	// Compute median.
	count := 0
	for _, b := range budgets {
		if b <= 10 {
			count++
		}
	}
	frac := float64(count) / float64(len(budgets))
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("P(rho <= 10uW) = %v, want ~0.5", frac)
	}
}

// Property: any state built from (transmitter in {-1..n-1} listener mask
// excluding transmitter) is Valid, and groupput T_w >= anyput T_w.
func TestNetStateProperty(t *testing.T) {
	src := rng.New(4)
	f := func() bool {
		n := 1 + src.Intn(20)
		tx := src.Intn(n+1) - 1
		mask := src.Uint64() & ((1 << uint(n)) - 1)
		if tx >= 0 {
			mask &^= 1 << uint(tx)
		}
		s := NetState{Transmitter: tx, Listeners: mask}
		if !s.Valid(n) {
			return false
		}
		return s.Throughput(Groupput) >= s.Throughput(Anyput)
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
