// Package model defines the paper's basic node and network model (§III):
// heterogeneous nodes with a power budget rho and listen/transmit power
// consumption levels L and X, three node states (sleep, listen, transmit),
// collision-free network states, and the two broadcast-throughput measures
// groupput and anyput.
//
// Units are SI throughout: Watts for power, Joules for energy, seconds for
// time. Throughput is dimensionless: the fraction of time useful
// (per-receiver, for groupput) packet delivery is in progress, so the
// unconstrained maxima are N-1 for groupput and 1 for anyput.
package model

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"econcast/internal/rng"
)

// Convenience power units.
const (
	Watt      = 1.0
	MilliWatt = 1e-3
	MicroWatt = 1e-6
)

// State is the operating state of a single node.
type State uint8

// Node states (§III-A). Sleep consumes no power; Listen and Transmit
// consume the node's L and X respectively.
const (
	Sleep State = iota
	Listen
	Transmit
)

func (s State) String() string {
	switch s {
	case Sleep:
		return "sleep"
	case Listen:
		return "listen"
	case Transmit:
		return "transmit"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Power returns the power a node draws in state s given its parameters.
func (n Node) Power(s State) float64 {
	switch s {
	case Listen:
		return n.ListenPower
	case Transmit:
		return n.TransmitPower
	default:
		return 0
	}
}

// Mode selects which broadcast-throughput measure a protocol or analysis
// maximizes (Definitions 1 and 2).
type Mode int

// Throughput modes.
const (
	// Groupput counts each delivered bit once per receiver.
	Groupput Mode = iota
	// Anyput counts a delivered bit once if at least one receiver got it.
	Anyput
)

func (m Mode) String() string {
	if m == Anyput {
		return "anyput"
	}
	return "groupput"
}

// Node holds the static parameters of one node: its power budget and its
// listen/transmit power consumption levels, all in Watts.
type Node struct {
	Budget        float64 // rho_i: power budget (harvesting rate)
	ListenPower   float64 // L_i
	TransmitPower float64 // X_i
}

// Network is an ordered collection of nodes.
type Network struct {
	Nodes []Node
}

// Homogeneous returns a network of n identical nodes.
func Homogeneous(n int, rho, listen, transmit float64) *Network {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{Budget: rho, ListenPower: listen, TransmitPower: transmit}
	}
	return &Network{Nodes: nodes}
}

// N returns the number of nodes.
func (nw *Network) N() int { return len(nw.Nodes) }

// Homogeneous reports whether all nodes share identical parameters.
func (nw *Network) Homogeneous() bool {
	for _, n := range nw.Nodes[1:] {
		if n != nw.Nodes[0] {
			return false
		}
	}
	return true
}

// Validate checks that the network is non-empty and every node has strictly
// positive budget and power levels.
func (nw *Network) Validate() error {
	if len(nw.Nodes) == 0 {
		return errors.New("model: empty network")
	}
	for i, n := range nw.Nodes {
		if !(n.Budget > 0) || math.IsInf(n.Budget, 0) {
			return fmt.Errorf("model: node %d: budget %v must be positive and finite", i, n.Budget)
		}
		if !(n.ListenPower > 0) || math.IsInf(n.ListenPower, 0) {
			return fmt.Errorf("model: node %d: listen power %v must be positive and finite", i, n.ListenPower)
		}
		if !(n.TransmitPower > 0) || math.IsInf(n.TransmitPower, 0) {
			return fmt.Errorf("model: node %d: transmit power %v must be positive and finite", i, n.TransmitPower)
		}
	}
	return nil
}

// MaxNodesExact is the largest network for which the collision-free state
// space W can be enumerated exactly (listener sets are stored as bits of a
// uint64, and (N+2)*2^(N-1) must stay manageable).
const MaxNodesExact = 24

// NetState is one collision-free network state w in W: at most one
// transmitter, any subset of the remaining nodes listening, the rest
// asleep (§III-C).
type NetState struct {
	Transmitter int    // transmitting node index, or -1 if none
	Listeners   uint64 // bitmask of listening nodes
}

// NoTransmitter marks a NetState without a transmitter.
const NoTransmitter = -1

// Valid reports whether the state is internally consistent for an n-node
// network: transmitter in range (or -1) and not simultaneously listening.
func (s NetState) Valid(n int) bool {
	if n <= 0 || n > 64 {
		return false
	}
	if s.Listeners>>uint(n) != 0 {
		return false
	}
	if s.Transmitter == NoTransmitter {
		return true
	}
	if s.Transmitter < 0 || s.Transmitter >= n {
		return false
	}
	return s.Listeners&(1<<uint(s.Transmitter)) == 0
}

// StateOf returns the state of node i under s.
func (s NetState) StateOf(i int) State {
	if i == s.Transmitter {
		return Transmit
	}
	if s.Listeners&(1<<uint(i)) != 0 {
		return Listen
	}
	return Sleep
}

// NumListeners returns c_w, the number of listening nodes.
func (s NetState) NumListeners() int {
	return bits.OnesCount64(s.Listeners)
}

// HasTransmitter returns nu_w: whether exactly one node transmits.
func (s NetState) HasTransmitter() bool { return s.Transmitter != NoTransmitter }

// Throughput returns T_w for the given mode (Definition 3): nu_w * c_w for
// groupput, nu_w * gamma_w for anyput.
func (s NetState) Throughput(mode Mode) float64 {
	if !s.HasTransmitter() {
		return 0
	}
	c := s.NumListeners()
	if mode == Anyput {
		if c > 0 {
			return 1
		}
		return 0
	}
	return float64(c)
}

// NumStates returns |W| = (N+2) * 2^(N-1), the size of the collision-free
// state space (§III-C).
func NumStates(n int) int {
	return (n + 2) << uint(n-1)
}

// HeterogeneitySpec is the Fig. 2 network sampler parameterization: for
// heterogeneity h, each node's L and X are drawn uniformly from
// [510-h, 490+h] microwatts, and rho = exp(h') microwatts with h' uniform
// on [-ln(h/100), ln h]. h = 10 degenerates to the homogeneous network with
// L = X = 500 uW, rho = 10 uW.
type HeterogeneitySpec struct {
	N int
	H float64
}

// Sample draws one heterogeneous network per the spec.
func (sp HeterogeneitySpec) Sample(src *rng.Source) *Network {
	if sp.N <= 0 {
		panic("model: HeterogeneitySpec with N <= 0")
	}
	if sp.H < 10 {
		panic("model: HeterogeneitySpec with H < 10")
	}
	nodes := make([]Node, sp.N)
	lo := (510 - sp.H) * MicroWatt
	hi := (490 + sp.H) * MicroWatt
	hpLo := -math.Log(sp.H / 100)
	hpHi := math.Log(sp.H)
	for i := range nodes {
		nodes[i] = Node{
			ListenPower:   uniformOrPoint(src, lo, hi),
			TransmitPower: uniformOrPoint(src, lo, hi),
			Budget:        math.Exp(uniformOrPoint(src, hpLo, hpHi)) * MicroWatt,
		}
	}
	return &Network{Nodes: nodes}
}

// uniformOrPoint handles the degenerate lo == hi interval that arises at
// h = 10.
func uniformOrPoint(src *rng.Source, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return src.Uniform(lo, hi)
}
