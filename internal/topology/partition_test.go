package topology

import (
	"fmt"
	"reflect"
	"testing"

	"econcast/internal/rng"
)

// checkPartitionInvariants verifies the structural contract every
// partition must satisfy, against a brute-force recomputation of the
// masks from the adjacency lists.
func checkPartitionInvariants(t *testing.T, topo *Topology, p *Partition) {
	t.Helper()
	n := topo.N()
	seen := make([]bool, n)
	for s := 0; s < p.Shards(); s++ {
		members := p.Members(s)
		if len(members) == 0 {
			t.Fatalf("shard %d is empty after compaction", s)
		}
		prev := int32(-1)
		for _, m := range members {
			if m <= prev {
				t.Fatalf("shard %d members not ascending: %v", s, members)
			}
			prev = m
			if p.ShardOf(int(m)) != s {
				t.Fatalf("node %d in Members(%d) but ShardOf says %d", m, s, p.ShardOf(int(m)))
			}
			if seen[m] {
				t.Fatalf("node %d in two shards", m)
			}
			seen[m] = true
		}
	}
	for i := 0; i < n; i++ {
		if !seen[i] {
			t.Fatalf("node %d unassigned", i)
		}
		// Brute-force mask: shards of {i} ∪ N(i).
		want := make([]uint64, p.MaskWords())
		set := func(s int) { want[s>>6] |= 1 << uint(s&63) }
		set(p.ShardOf(i))
		span := map[int]bool{p.ShardOf(i): true}
		for _, j := range topo.Neighbors(i) {
			set(p.ShardOf(j))
			span[p.ShardOf(j)] = true
		}
		if got := p.Mask(i); !reflect.DeepEqual(got, want) {
			t.Fatalf("node %d mask = %v, want %v", i, got, want)
		}
		if p.MaskSpan(i) != len(span) {
			t.Fatalf("node %d span = %d, want %d", i, p.MaskSpan(i), len(span))
		}
		if p.Interior(i) != (len(span) == 1) {
			t.Fatalf("node %d interior = %v, span %d", i, p.Interior(i), len(span))
		}
	}
}

func TestPartitionFamilies(t *testing.T) {
	cases := []struct {
		name   string
		topo   *Topology
		target int
	}{
		{"grid-4", Grid(6, 6), 4},
		{"grid-9", Grid(9, 7), 9},
		{"grid-1node-shards", Grid(4, 4), 16},
		{"ring-arcs", Ring(17), 5},
		{"ring-all-singleton", Ring(9), 9},
		{"rgg", RandomGeometric(60, 0.25, rng.New(3)), 8},
		{"star-fallback", Star(12), 3},
		{"line-fallback", Line(11), 4},
		{"custom-fallback", func() *Topology { c := New(10); c.AddEdge(0, 9); c.AddEdge(3, 4); return c }(), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewPartition(tc.topo, tc.target)
			if p.N() != tc.topo.N() {
				t.Fatalf("N = %d, want %d", p.N(), tc.topo.N())
			}
			if p.Shards() < 1 || p.Shards() > tc.topo.N() {
				t.Fatalf("shard count %d out of range", p.Shards())
			}
			checkPartitionInvariants(t, tc.topo, p)
		})
	}
}

func TestPartitionCliqueSingleShard(t *testing.T) {
	p := NewPartition(Clique(12), 6)
	if p.Shards() != 1 {
		t.Fatalf("clique partitioned into %d shards, want 1", p.Shards())
	}
	for i := 0; i < 12; i++ {
		if !p.Interior(i) {
			t.Fatalf("clique node %d not interior under the single shard", i)
		}
	}
}

// TestPartitionRingArcsContiguous pins the ring rule: shards are
// contiguous arcs, so every node's closed neighborhood spans at most
// three shards and singleton shards span exactly three.
func TestPartitionRingArcsContiguous(t *testing.T) {
	ring := Ring(12)
	p := NewPartition(ring, 4)
	for s := 0; s < p.Shards(); s++ {
		m := p.Members(s)
		for k := 1; k < len(m); k++ {
			if m[k] != m[k-1]+1 {
				t.Fatalf("shard %d not a contiguous arc: %v", s, m)
			}
		}
	}
	all := NewPartition(ring, 12)
	if all.Shards() != 12 {
		t.Fatalf("singleton partition has %d shards", all.Shards())
	}
	for i := 0; i < 12; i++ {
		if all.MaskSpan(i) != 3 {
			t.Fatalf("singleton ring node %d spans %d shards, want 3", i, all.MaskSpan(i))
		}
	}
}

// TestPartitionGridInteriorMajority checks the point of spatial tiling:
// at moderate shard sizes most nodes are interior.
func TestPartitionGridInteriorMajority(t *testing.T) {
	g := Grid(32, 32)
	p := NewPartition(g, 16) // 8x8 blocks
	interior := 0
	for i := 0; i < g.N(); i++ {
		if p.Interior(i) {
			interior++
		}
	}
	if frac := float64(interior) / float64(g.N()); frac < 0.5 {
		t.Fatalf("only %.0f%% of grid nodes interior, want a majority", 100*frac)
	}
}

// TestPartitionDeterministic pins that the partition is a pure function
// of (topology, target): two constructions agree exactly, including the
// sweep-built masks.
func TestPartitionDeterministic(t *testing.T) {
	a := NewPartition(Grid(10, 13), 7)
	b := NewPartition(Grid(10, 13), 7)
	if !reflect.DeepEqual(a.masks, b.masks) || !reflect.DeepEqual(a.shardOf, b.shardOf) {
		t.Fatal("partition not deterministic")
	}
}

// TestPartitionAutoShardBoundary exercises the exact node counts around
// the sim engine's auto-shard threshold (autoShardMinN = 4096 nodes at
// about 1024 per shard): the shard targets the engine computes there —
// 4095/1024 = 3, 4096/1024 = 4, 4097/1024 = 4 — must partition rings,
// grids, and random-geometric graphs cleanly, including the
// non-divisible remainders either side of the power of two.
func TestPartitionAutoShardBoundary(t *testing.T) {
	dims := map[int][2]int{4095: {63, 65}, 4096: {64, 64}, 4097: {17, 241}}
	for _, n := range []int{4095, 4096, 4097} {
		target := n / 1024 // what sim's auto-selection would request
		d := dims[n]
		for _, tc := range []struct {
			name string
			topo *Topology
		}{
			{"ring", Ring(n)},
			{"grid", Grid(d[0], d[1])},
			{"rgg", RandomGeometric(n, 0.03, rng.New(uint64(n)))},
		} {
			t.Run(fmt.Sprintf("%s-%d", tc.name, n), func(t *testing.T) {
				p := NewPartition(tc.topo, target)
				if p.Shards() < 1 || p.Shards() > target {
					t.Fatalf("shards = %d, want 1..%d", p.Shards(), target)
				}
				checkPartitionInvariants(t, tc.topo, p)
			})
		}
	}
}

// TestPartitionDegenerateRGG collapses every point of a random-geometric
// topology onto a single coordinate — the corner (1, 1), which also
// exercises the cell clamp at the unit-square edge. Every node lands in
// the same spatial bucket, so whatever the target, compaction must
// leave exactly one full shard.
func TestPartitionDegenerateRGG(t *testing.T) {
	topo := RandomGeometric(40, 0.2, rng.New(11))
	for i := range topo.px {
		topo.px[i], topo.py[i] = 1.0, 1.0
	}
	p := NewPartition(topo, 8)
	if p.Shards() != 1 {
		t.Fatalf("one-bucket RGG partitioned into %d shards, want 1", p.Shards())
	}
	if len(p.Members(0)) != topo.N() {
		t.Fatalf("single shard holds %d of %d nodes", len(p.Members(0)), topo.N())
	}
	checkPartitionInvariants(t, topo, p)
}

// TestPartitionGridTilesExceedNodes asks for more tiles than the grid
// has nodes, on square, wide, single-row, and single-column shapes: the
// target clamps to one node per shard and the tiling must still cover
// every node exactly once, as singletons.
func TestPartitionGridTilesExceedNodes(t *testing.T) {
	for _, tc := range []struct{ rows, cols, target int }{
		{3, 3, 50},
		{2, 9, 1000},
		{1, 7, 20},
		{5, 1, 12},
	} {
		g := Grid(tc.rows, tc.cols)
		p := NewPartition(g, tc.target)
		if p.Shards() != g.N() {
			t.Fatalf("%dx%d target %d: shards = %d, want %d singletons",
				tc.rows, tc.cols, tc.target, p.Shards(), g.N())
		}
		checkPartitionInvariants(t, g, p)
	}
}

// TestPartitionTargetClamp pins the low end: non-positive targets mean
// one shard, and a clique stays one shard no matter the target.
func TestPartitionTargetClamp(t *testing.T) {
	for _, target := range []int{0, -3} {
		p := NewPartition(Grid(4, 4), target)
		if p.Shards() != 1 {
			t.Fatalf("target %d: shards = %d, want 1", target, p.Shards())
		}
	}
	if p := NewPartition(Ring(9), 100); p.Shards() != 9 {
		t.Fatalf("over-asked ring: shards = %d, want 9", p.Shards())
	}
}

// TestPartitionMaskSpansManyShards pins the 3+-shard mask case the
// sharded engine's frontier handling must cover: with 1x1 grid blocks an
// interior grid node's closed neighborhood touches 5 shards.
func TestPartitionMaskSpansManyShards(t *testing.T) {
	g := Grid(5, 5)
	p := NewPartition(g, 25)
	if p.Shards() != 25 {
		t.Fatalf("got %d shards, want 25", p.Shards())
	}
	center := 2*5 + 2
	if span := p.MaskSpan(center); span != 5 {
		t.Fatalf("center node spans %d shards, want 5", span)
	}
}
