package topology

import (
	"testing"

	"econcast/internal/rng"
)

func TestCliqueProperties(t *testing.T) {
	for _, n := range []int{1, 2, 5, 10} {
		c := Clique(n)
		if c.N() != n {
			t.Fatalf("N = %d", c.N())
		}
		if !c.IsClique() {
			t.Fatalf("Clique(%d) not a clique", n)
		}
		if !c.Connected() {
			t.Fatalf("Clique(%d) not connected", n)
		}
		if want := n * (n - 1) / 2; c.NumEdges() != want {
			t.Fatalf("Clique(%d) has %d edges, want %d", n, c.NumEdges(), want)
		}
		for i := 0; i < n; i++ {
			if c.Degree(i) != n-1 {
				t.Fatalf("degree(%d) = %d", i, c.Degree(i))
			}
			if c.Adjacent(i, i) {
				t.Fatal("self-loop")
			}
		}
	}
}

func TestGrid(t *testing.T) {
	g := Grid(5, 5)
	if g.N() != 25 {
		t.Fatalf("N = %d", g.N())
	}
	// Corner, edge, interior degrees.
	if g.Degree(0) != 2 {
		t.Fatalf("corner degree = %d", g.Degree(0))
	}
	if g.Degree(2) != 3 {
		t.Fatalf("edge degree = %d", g.Degree(2))
	}
	if g.Degree(12) != 4 {
		t.Fatalf("interior degree = %d", g.Degree(12))
	}
	if g.IsClique() {
		t.Fatal("grid reported as clique")
	}
	if !g.Connected() {
		t.Fatal("grid not connected")
	}
	// 4-neighbor edge count: rows*(cols-1) + (rows-1)*cols = 20 + 20.
	if g.NumEdges() != 40 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	// Every node has at most 4 neighbors (paper's Fig. 6 statement).
	for i := 0; i < g.N(); i++ {
		if g.Degree(i) > 4 {
			t.Fatalf("degree(%d) = %d > 4", i, g.Degree(i))
		}
	}
}

func TestSquareGrid(t *testing.T) {
	for _, n := range []int{4, 9, 16, 25, 100} {
		g := SquareGrid(n)
		if g.N() != n {
			t.Fatalf("SquareGrid(%d).N = %d", n, g.N())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SquareGrid(5) did not panic")
		}
	}()
	SquareGrid(5)
}

func TestRingStarLine(t *testing.T) {
	r := Ring(6)
	for i := 0; i < 6; i++ {
		if r.Degree(i) != 2 {
			t.Fatalf("ring degree(%d) = %d", i, r.Degree(i))
		}
	}
	if !r.Connected() {
		t.Fatal("ring not connected")
	}

	s := Star(6)
	if s.Degree(0) != 5 {
		t.Fatalf("star center degree = %d", s.Degree(0))
	}
	for i := 1; i < 6; i++ {
		if s.Degree(i) != 1 {
			t.Fatalf("star leaf degree = %d", s.Degree(i))
		}
	}

	l := Line(4)
	if l.NumEdges() != 3 || !l.Connected() {
		t.Fatal("line wrong")
	}
	if l.Degree(0) != 1 || l.Degree(1) != 2 {
		t.Fatal("line degrees wrong")
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 2) // self-loop ignored
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	if g.Degree(2) != 0 {
		t.Fatal("self-loop added")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	g.AddEdge(2, 4)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(2, 1)
	ns := g.Neighbors(2)
	want := []int{0, 1, 3, 4}
	for i, v := range want {
		if ns[i] != v {
			t.Fatalf("neighbors = %v", ns)
		}
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestSingleNodeConnected(t *testing.T) {
	if !New(1).Connected() {
		t.Fatal("single node not connected")
	}
}

func TestRandomGeometric(t *testing.T) {
	src := rng.New(5)
	// Radius sqrt(2) covers the whole unit square: must be a clique.
	g := RandomGeometric(10, 1.5, src)
	if !g.IsClique() {
		t.Fatal("full-radius RGG not a clique")
	}
	// Radius 0: no edges.
	g2 := RandomGeometric(10, 0, rng.New(5))
	if g2.NumEdges() != 0 {
		t.Fatal("zero-radius RGG has edges")
	}
	// Determinism: same seed, same graph.
	a := RandomGeometric(20, 0.3, rng.New(7))
	b := RandomGeometric(20, 0.3, rng.New(7))
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if a.Adjacent(i, j) != b.Adjacent(i, j) {
				t.Fatal("RGG not deterministic")
			}
		}
	}
}

// Adjacency matrix and neighbor lists must agree.
func TestAdjacencyConsistency(t *testing.T) {
	src := rng.New(11)
	g := RandomGeometric(30, 0.25, src)
	for i := 0; i < g.N(); i++ {
		count := 0
		for j := 0; j < g.N(); j++ {
			if g.Adjacent(i, j) {
				count++
				if !g.Adjacent(j, i) {
					t.Fatalf("asymmetric adjacency %d-%d", i, j)
				}
			}
		}
		if count != g.Degree(i) {
			t.Fatalf("node %d: matrix degree %d, list degree %d",
				i, count, g.Degree(i))
		}
	}
}

func TestNewPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}
