// Spatial interference sharding: a Partition splits a topology's nodes
// into shards such that most interference is shard-local, so a sharded
// simulation engine can keep per-shard event queues and node state and
// touch a neighboring shard only at the frontier.
//
// The partitioning rule follows the constructor's spatial structure:
// grids are tiled into rectangular blocks, random-geometric graphs into
// unit-square cells, rings into contiguous arcs; cliques (one
// interference domain by definition) stay a single shard, and custom
// topologies fall back to contiguous index ranges. The partition is a
// pure function of (topology, target) — worker counts and scheduling
// never influence it — so everything downstream stays deterministic.
package topology

import (
	"math"
	"math/bits"

	"econcast/internal/sweep"
)

// Partition assigns every node of a topology to one of Shards() spatial
// interference shards and precomputes, per node, the bitset of shards its
// closed neighborhood {i} ∪ N(i) touches. A node whose mask has a single
// bit is interior: no event it generates can be observed outside its own
// shard.
type Partition struct {
	topo      *Topology
	shards    int
	maskWords int       // ceil(shards / 64)
	shardOf   []int32   // node -> shard
	members   [][]int32 // shard -> member nodes, ascending
	masks     []uint64  // node-major, maskWords words per node
	interior  []bool    // node -> closed neighborhood within one shard
}

// NewPartition partitions t into at least 1 and at most target shards
// (and never more than one shard per node): the sharded engine sizes
// per-shard runtimes from the result, so the request is a ceiling, not
// a hint. Cliques are always a single shard: every node interferes with
// every other, so there is no spatial structure to exploit. The result
// depends only on (t, target).
func NewPartition(t *Topology, target int) *Partition {
	n := t.N()
	if target < 1 {
		target = 1
	}
	if target > n {
		target = n
	}
	if target > 1 && t.IsClique() {
		target = 1
	}
	p := &Partition{topo: t, shardOf: make([]int32, n)}
	p.assign(target)
	p.compact()
	p.maskWords = (p.shards + 63) / 64
	p.buildMasks()
	return p
}

// assign writes raw (possibly sparse) shard ids into shardOf according to
// the topology's layout.
func (p *Partition) assign(target int) {
	t := p.topo
	n := t.N()
	if target == 1 {
		return // all zeros
	}
	switch t.layout {
	case layoutGrid:
		// Tile the rows x cols grid into br x bc blocks with br*bc <=
		// target, keeping blocks roughly square so frontiers stay short.
		// br is capped by target before bc divides it, so a very tall
		// thin grid cannot push br (and with it br*bc) past the ceiling.
		br := int(math.Round(math.Sqrt(float64(target) * float64(t.rows) / float64(t.cols))))
		br = clamp(br, 1, min(t.rows, target))
		bc := clamp(target/br, 1, t.cols)
		for i := 0; i < n; i++ {
			r, c := i/t.cols, i%t.cols
			p.shardOf[i] = int32((r*br/t.rows)*bc + c*bc/t.cols)
		}
	case layoutSpatial:
		// Tile the unit square into ky x kx cells with ky*kx <= target
		// (ky = floor(sqrt(target)) rows, kx = target/ky columns, so a
		// non-square target like 3 tiles into 1x3 strips instead of
		// rounding up to a 2x2 overshoot); empty cells are compacted
		// away afterwards.
		ky := clamp(int(math.Sqrt(float64(target))), 1, target)
		kx := target / ky
		cellOf := func(v float64, k int) int {
			c := int(v * float64(k))
			return clamp(c, 0, k-1)
		}
		for i := 0; i < n; i++ {
			p.shardOf[i] = int32(cellOf(t.py[i], ky)*kx + cellOf(t.px[i], kx))
		}
	default:
		// Rings and arbitrary topologies: contiguous index ranges (for a
		// ring these are exactly the contiguous arcs of the cycle).
		for i := 0; i < n; i++ {
			p.shardOf[i] = int32(i * target / n)
		}
	}
}

// compact renumbers raw shard ids densely in ascending raw order, drops
// empty shards, and builds the member lists.
func (p *Partition) compact() {
	maxRaw := int32(0)
	for _, s := range p.shardOf {
		if s > maxRaw {
			maxRaw = s
		}
	}
	remap := make([]int32, maxRaw+1)
	for i := range remap {
		remap[i] = -1
	}
	for _, s := range p.shardOf {
		remap[s] = 0
	}
	next := int32(0)
	for raw, seen := range remap {
		if seen == 0 {
			remap[raw] = next
			next++
		}
	}
	p.shards = int(next)
	p.members = make([][]int32, p.shards)
	counts := make([]int32, p.shards)
	for i, s := range p.shardOf {
		p.shardOf[i] = remap[s]
		counts[p.shardOf[i]]++
	}
	for s := range p.members {
		p.members[s] = make([]int32, 0, counts[s])
	}
	for i, s := range p.shardOf {
		p.members[s] = append(p.members[s], int32(i))
	}
}

// buildMasks computes every node's shard-neighborhood bitset. Each
// shard's members form one independent unit of work, scheduled as a
// sweep cell: cells only read the (now immutable) assignment and return
// their mask block, so the result is byte-identical at any worker count.
func (p *Partition) buildMasks() {
	n := p.topo.N()
	w := p.maskWords
	p.masks = make([]uint64, n*w)
	p.interior = make([]bool, n)
	blocks, err := sweep.Map(0, p.members, func(_ int, members []int32) ([]uint64, error) {
		block := make([]uint64, len(members)*w)
		for mi, node := range members {
			mask := block[mi*w : (mi+1)*w]
			own := p.shardOf[node]
			mask[own>>6] |= 1 << uint(own&63)
			for _, j := range p.topo.neighbors[node] {
				s := p.shardOf[j]
				mask[s>>6] |= 1 << uint(s&63)
			}
		}
		return block, nil
	})
	if err != nil {
		// Cells cannot fail; only a cell panic reaches here.
		panic(err)
	}
	for s, members := range p.members {
		block := blocks[s]
		for mi, node := range members {
			copy(p.masks[int(node)*w:], block[mi*w:(mi+1)*w])
			p.interior[node] = popcount(block[mi*w:(mi+1)*w]) == 1
		}
	}
}

func popcount(words []uint64) int {
	total := 0
	for _, word := range words {
		total += bits.OnesCount64(word)
	}
	return total
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// N returns the number of nodes partitioned.
func (p *Partition) N() int { return p.topo.N() }

// Shards returns the number of (non-empty) shards.
func (p *Partition) Shards() int { return p.shards }

// ShardOf returns the shard owning node i.
func (p *Partition) ShardOf(i int) int { return int(p.shardOf[i]) }

// Members returns shard s's member nodes in ascending order. The
// returned slice must not be modified.
func (p *Partition) Members(s int) []int32 { return p.members[s] }

// MaskWords returns the number of uint64 words in each node's shard
// mask.
func (p *Partition) MaskWords() int { return p.maskWords }

// Mask returns node i's shard-neighborhood bitset: bit s is set iff some
// node of {i} ∪ N(i) lives in shard s. The returned slice aliases the
// partition's storage and must not be modified; the accessor is
// allocation-free so simulation hot loops can call it per event.
func (p *Partition) Mask(i int) []uint64 {
	return p.masks[i*p.maskWords : (i+1)*p.maskWords]
}

// MaskSpan returns how many shards node i's closed neighborhood touches.
func (p *Partition) MaskSpan(i int) int { return popcount(p.Mask(i)) }

// Interior reports whether node i's closed neighborhood lies entirely
// within its own shard: events at interior nodes never cross a shard
// boundary.
func (p *Partition) Interior(i int) bool { return p.interior[i] }

// Depths returns, per node, the hop distance to the nearest node of a
// different shard, capped at depth+1: a node adjacent to a foreign node
// has depth 1, its same-shard neighbors (without their own foreign
// neighbor) depth 2, and so on; any node farther than the cap — including
// every node of a single-shard partition — reports depth+1. The parallel
// shard engine uses this as its boundary-latency metadata: an event at a
// node deeper than the conflict-plus-push radius cannot interact with any
// foreign shard's events and may dispatch without consulting the global
// safe horizon. The result is a pure function of (partition, depth),
// computed by deterministic multi-source BFS.
func (p *Partition) Depths(depth int) []int32 {
	n := p.topo.N()
	far := int32(depth + 1)
	d := make([]int32, n)
	queue := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		d[i] = far
		own := p.shardOf[i]
		for _, j := range p.topo.neighbors[i] {
			if p.shardOf[j] != own {
				d[i] = 1
				queue = append(queue, int32(i))
				break
			}
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		next := d[i] + 1
		if next > int32(depth) {
			continue
		}
		for _, j := range p.topo.neighbors[i] {
			if d[j] > next {
				d[j] = next
				queue = append(queue, int32(j))
			}
		}
	}
	return d
}
