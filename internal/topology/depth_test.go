package topology

import (
	"testing"

	"econcast/internal/rng"
)

// TestDepthsGrid pins the boundary-depth metadata on a 2x2-sharded grid:
// depth 1 exactly at nodes adjacent to a foreign shard, increasing by one
// per hop inward, capped at depth+1.
func TestDepthsGrid(t *testing.T) {
	g := SquareGrid(64)
	p := NewPartition(g, 4)
	if p.Shards() != 4 {
		t.Fatalf("shards = %d, want 4", p.Shards())
	}
	const cap = 3
	d := p.Depths(cap)
	for i := 0; i < p.N(); i++ {
		want := int32(cap + 1)
		// Recompute by brute-force BFS bounded to cap hops.
		dist := map[int]int32{i: 0}
		frontier := []int{i}
		for hop := int32(1); hop <= cap && want > cap; hop++ {
			var next []int
			for _, u := range frontier {
				for _, v := range g.Neighbors(u) {
					if _, seen := dist[v]; seen {
						continue
					}
					dist[v] = hop
					if p.ShardOf(v) != p.ShardOf(i) && hop < want {
						want = hop
					}
					next = append(next, v)
				}
			}
			frontier = next
		}
		if d[i] != want {
			t.Fatalf("node %d: depth %d, want %d", i, d[i], want)
		}
	}
}

// TestDepthsSingleShard: with one shard there is no foreign node, so
// every depth saturates at the cap+1 sentinel.
func TestDepthsSingleShard(t *testing.T) {
	g := Ring(10)
	p := NewPartition(g, 1)
	for i, v := range p.Depths(2) {
		if v != 3 {
			t.Fatalf("node %d: depth %d, want 3", i, v)
		}
	}
}

// TestDepthsConsistentWithInterior: depth 1 implies a foreign neighbor,
// i.e. exactly the complement of Interior.
func TestDepthsConsistentWithInterior(t *testing.T) {
	g := RandomGeometric(300, 0.12, rng.New(7))
	p := NewPartition(g, 6)
	d := p.Depths(4)
	for i := 0; i < p.N(); i++ {
		if (d[i] == 1) == p.Interior(i) {
			t.Fatalf("node %d: depth %d but Interior=%v", i, d[i], p.Interior(i))
		}
	}
}
