// Package topology describes which nodes can hear which: cliques for the
// paper's main analysis (§III-C) and grids, rings, stars, and random
// geometric graphs for the non-clique evaluation (§IV-C, §VII-E).
//
// A Topology is an undirected graph over node indices 0..N-1. Node j hears
// node i's transmissions iff j is a neighbor of i.
package topology

import (
	"fmt"
	"math"

	"econcast/internal/rng"
)

// layout records how a topology was constructed, when the constructor
// carries spatial structure the shard partitioner can exploit. Custom
// (AddEdge-built) topologies have no layout and fall back to contiguous
// index-range partitioning.
type layout uint8

const (
	layoutNone    layout = iota
	layoutGrid           // rows x cols 4-neighbor grid; node i at (i/cols, i%cols)
	layoutSpatial        // unit-square coordinates in px/py (random geometric)
	layoutRing           // cycle in index order
)

// adjMatrixMaxN bounds the dense adjacency matrix: above this size the
// n^2 bool matrix (16 MB at 4096 nodes, 10 GB at 100k) is not built and
// Adjacent binary-searches the sorted neighbor list instead — O(log deg),
// and deg is small for every large topology family (grid, RGG, ring).
var adjMatrixMaxN = 4096

// Topology is an undirected communication graph over N nodes.
type Topology struct {
	n         int
	neighbors [][]int  // sorted adjacency lists
	adj       [][]bool // adjacency matrix for O(1) queries; nil above adjMatrixMaxN
	name      string

	layout layout
	rows   int // layoutGrid: grid dimensions
	cols   int
	px, py []float64 // layoutSpatial: unit-square coordinates
}

// New returns an empty (edge-free) topology over n nodes. It panics if
// n <= 0.
func New(n int) *Topology {
	if n <= 0 {
		panic("topology: New with n <= 0")
	}
	t := &Topology{
		n:         n,
		neighbors: make([][]int, n),
		name:      fmt.Sprintf("custom(%d)", n),
	}
	if n <= adjMatrixMaxN {
		t.adj = make([][]bool, n)
		for i := range t.adj {
			t.adj[i] = make([]bool, n)
		}
	}
	return t
}

// N returns the number of nodes.
func (t *Topology) N() int { return t.n }

// Name returns a human-readable description of the topology.
func (t *Topology) Name() string { return t.name }

// AddEdge connects i and j bidirectionally. Self-loops and duplicate edges
// are ignored.
func (t *Topology) AddEdge(i, j int) {
	if i == j || t.Adjacent(i, j) {
		return
	}
	if t.adj != nil {
		t.adj[i][j] = true
		t.adj[j][i] = true
	}
	t.insertNeighbor(i, j)
	t.insertNeighbor(j, i)
}

func (t *Topology) insertNeighbor(i, j int) {
	ns := t.neighbors[i]
	pos := len(ns)
	for k, v := range ns {
		if v > j {
			pos = k
			break
		}
	}
	ns = append(ns, 0)
	copy(ns[pos+1:], ns[pos:])
	ns[pos] = j
	t.neighbors[i] = ns
}

// Neighbors returns the sorted neighbor list of node i. The returned slice
// must not be modified.
func (t *Topology) Neighbors(i int) []int { return t.neighbors[i] }

// Adjacent reports whether i and j are within communication range.
func (t *Topology) Adjacent(i, j int) bool {
	if t.adj != nil {
		return t.adj[i][j]
	}
	ns := t.neighbors[i]
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ns[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ns) && ns[lo] == j
}

// Degree returns the number of neighbors of node i.
func (t *Topology) Degree(i int) int { return len(t.neighbors[i]) }

// NumEdges returns the number of undirected edges.
func (t *Topology) NumEdges() int {
	sum := 0
	for i := 0; i < t.n; i++ {
		sum += len(t.neighbors[i])
	}
	return sum / 2
}

// IsClique reports whether every pair of nodes is connected.
func (t *Topology) IsClique() bool {
	for i := 0; i < t.n; i++ {
		if len(t.neighbors[i]) != t.n-1 {
			return false
		}
	}
	return true
}

// Connected reports whether the graph is connected (a single node counts as
// connected).
func (t *Topology) Connected() bool {
	if t.n == 1 {
		return true
	}
	seen := make([]bool, t.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range t.neighbors[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == t.n
}

// Clique returns the complete graph over n nodes, the paper's primary
// setting.
func Clique(n int) *Topology {
	t := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			t.AddEdge(i, j)
		}
	}
	t.name = fmt.Sprintf("clique(%d)", n)
	return t
}

// Grid returns a rows x cols 4-neighbor grid, the paper's Fig. 6 topology.
// Node i sits at (i/cols, i%cols).
func Grid(rows, cols int) *Topology {
	if rows <= 0 || cols <= 0 {
		panic("topology: Grid with non-positive dimensions")
	}
	t := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				t.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				t.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	t.name = fmt.Sprintf("grid(%dx%d)", rows, cols)
	t.layout = layoutGrid
	t.rows, t.cols = rows, cols
	return t
}

// SquareGrid returns the sqrt(n) x sqrt(n) grid used in Fig. 6. It panics
// if n is not a perfect square.
func SquareGrid(n int) *Topology {
	side := int(math.Round(math.Sqrt(float64(n))))
	if side*side != n {
		panic(fmt.Sprintf("topology: SquareGrid(%d): not a perfect square", n))
	}
	return Grid(side, side)
}

// Ring returns a cycle over n nodes (n >= 3 gives a proper cycle; smaller n
// degenerates to a path or a single node).
func Ring(n int) *Topology {
	t := New(n)
	for i := 0; i < n; i++ {
		t.AddEdge(i, (i+1)%n)
	}
	t.name = fmt.Sprintf("ring(%d)", n)
	t.layout = layoutRing
	return t
}

// Star returns a star with node 0 at the center.
func Star(n int) *Topology {
	t := New(n)
	for i := 1; i < n; i++ {
		t.AddEdge(0, i)
	}
	t.name = fmt.Sprintf("star(%d)", n)
	return t
}

// Line returns a path 0-1-...-n-1.
func Line(n int) *Topology {
	t := New(n)
	for i := 0; i+1 < n; i++ {
		t.AddEdge(i, i+1)
	}
	t.name = fmt.Sprintf("line(%d)", n)
	return t
}

// RandomGeometric places n nodes uniformly in the unit square and connects
// pairs within the given radius. Deterministic for a given source.
//
// Edges are found with a grid-bucket spatial index (cell width >= radius,
// so candidates for node i all sit in the 3x3 cells around it) instead of
// the O(n^2) all-pairs scan; construction is O(n * candidates), which
// keeps 100k-node topologies buildable in well under a second. The edge
// set — and therefore the Topology, whose neighbor lists are kept sorted
// on insertion — is identical to the all-pairs computation.
func RandomGeometric(n int, radius float64, src *rng.Source) *Topology {
	t := New(n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = src.Float64()
		ys[i] = src.Float64()
	}
	cells := 1
	if radius > 0 && radius < 1 {
		cells = int(1 / radius) // cell width 1/cells >= radius
		// More cells than ~n buys nothing and a tiny radius must not
		// explode the bucket grid; shrinking the count only widens cells,
		// preserving the 3x3 coverage invariant.
		if max := int(math.Sqrt(float64(n))) + 1; cells > max {
			cells = max
		}
	}
	cellOf := func(v float64) int {
		c := int(v * float64(cells))
		if c < 0 {
			c = 0
		}
		if c >= cells {
			c = cells - 1
		}
		return c
	}
	buckets := make([][]int, cells*cells)
	r2 := radius * radius
	for i := 0; i < n; i++ {
		cx, cy := cellOf(xs[i]), cellOf(ys[i])
		// Every earlier node within the radius lives in one of the 3x3
		// neighboring cells, so each unordered pair is examined exactly
		// once (when its higher-indexed endpoint is inserted).
		for by := cy - 1; by <= cy+1; by++ {
			if by < 0 || by >= cells {
				continue
			}
			for bx := cx - 1; bx <= cx+1; bx++ {
				if bx < 0 || bx >= cells {
					continue
				}
				for _, j := range buckets[by*cells+bx] {
					dx, dy := xs[i]-xs[j], ys[i]-ys[j]
					if dx*dx+dy*dy <= r2 {
						t.AddEdge(i, j)
					}
				}
			}
		}
		buckets[cy*cells+cx] = append(buckets[cy*cells+cx], i)
	}
	t.name = fmt.Sprintf("rgg(%d,r=%.2f)", n, radius)
	t.layout = layoutSpatial
	t.px, t.py = xs, ys
	return t
}
