package experiments

import (
	"strings"
	"testing"
)

// formatAll renders an experiment's full output as one string, exactly as
// cmd/experiments prints it.
func formatAll(t *testing.T, id string, opts Options) string {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	tables, err := e.Run(opts)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var b strings.Builder
	for _, tb := range tables {
		b.WriteString(tb.Format())
	}
	return b.String()
}

// TestSweepOutputIdenticalAcrossWorkerCounts is the sweep engine's
// acceptance bar, exercised through a real sim-backed experiment: fig6
// fans out oracle and simulation cells, and its formatted output must be
// byte-identical whether the pool runs serially or with any number of
// workers. Seeds are derived per cell (not from dispatch order) and
// results are collected in index order, so worker count must be
// unobservable.
func TestSweepOutputIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("sim-backed sweep in -short mode")
	}
	if raceEnabled {
		// Byte-identity across worker counts does not depend on race
		// instrumentation, which multiplies sim wall clock ~10x and
		// pushes the package past go test's default timeout on small
		// runners; internal/sweep has its own -race stress tests.
		t.Skip("sim-backed sweep under -race")
	}
	base := formatAll(t, "fig6", Options{Quick: true, Seed: 1, Workers: 1})
	for _, workers := range []int{4, 16} {
		got := formatAll(t, "fig6", Options{Quick: true, Seed: 1, Workers: workers})
		if got != base {
			t.Errorf("fig6 output differs between workers=1 and workers=%d\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
				workers, base, workers, got)
		}
	}
}

// TestFaultedSweepsIdenticalAcrossWorkerCounts extends the byte-identity
// bar to the experiments whose cells carry side processes beyond the
// protocol's own draws: churn (the liveness predicate) and faults (the
// compiled fault schedules, including per-receiver loss streams). Fault
// streams are derived from (seed, process, node) — never from dispatch
// order — so the worker count must remain unobservable.
func TestFaultedSweepsIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("sim-backed sweep in -short mode")
	}
	if raceEnabled {
		t.Skip("sim-backed sweep under -race (see TestSweepOutputIdenticalAcrossWorkerCounts)")
	}
	for _, id := range []string{"churn", "faults"} {
		base := formatAll(t, id, Options{Quick: true, Seed: 1, Workers: 1})
		for _, workers := range []int{4, 16} {
			got := formatAll(t, id, Options{Quick: true, Seed: 1, Workers: workers})
			if got != base {
				t.Errorf("%s output differs between workers=1 and workers=%d\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
					id, workers, base, workers, got)
			}
		}
	}
}

// TestScaleSweepIdenticalAcrossWorkerCounts pins the sharded engine's
// contract through the sweep layer: the scale experiment fans sharded
// multi-thousand-node sims out as sweep cells, and its deterministic
// table must be byte-identical at workers 1, 4, and 16 — the engine's
// shard count and the pool's worker count are both unobservable.
func TestScaleSweepIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("sim-backed sweep in -short mode")
	}
	if raceEnabled {
		t.Skip("sim-backed sweep under -race (see TestSweepOutputIdenticalAcrossWorkerCounts)")
	}
	base := formatAll(t, "scale", Options{Quick: true, Seed: 1, Workers: 1})
	for _, workers := range []int{4, 16} {
		got := formatAll(t, "scale", Options{Quick: true, Seed: 1, Workers: workers})
		if got != base {
			t.Errorf("scale output differs between workers=1 and workers=%d\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
				workers, base, workers, got)
		}
	}
}

// TestSweepAggregationIdenticalAcrossWorkerCounts covers the other
// order-sensitivity hazard: discovery feeds per-replicate cells into
// running-mean accumulators, whose floating-point results depend on feed
// order. Index-ordered collection must make that order (and thus the
// formatted means) independent of the worker count.
func TestSweepAggregationIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("sim-backed sweep in -short mode")
	}
	if raceEnabled {
		t.Skip("sim-backed sweep under -race (see TestSweepOutputIdenticalAcrossWorkerCounts)")
	}
	base := formatAll(t, "discovery", Options{Quick: true, Seed: 1, Workers: 1})
	got := formatAll(t, "discovery", Options{Quick: true, Seed: 1, Workers: 8})
	if got != base {
		t.Errorf("discovery output differs between workers=1 and workers=8\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", base, got)
	}
}
