package experiments

import (
	"fmt"
	"math"

	"econcast/internal/baselines"
	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/statespace"
	"econcast/internal/stats"
	"econcast/internal/sweep"
	"econcast/internal/testbed"
)

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "Fig. 7: emulated-testbed throughput ratios (Ideal/Relaxed) and battery variance",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "table3",
		Title: "Table III: emulated EconCast-C vs Panda analytic (normalized to T^sigma_g)",
		Run:   runTable3,
	})
	register(Experiment{
		ID:    "table4",
		Title: "Table IV: distribution of pings (active listeners) per transmission",
		Run:   runTable4,
	})
}

func testbedNode(budget float64) model.Node {
	return model.Node{
		Budget:        budget,
		ListenPower:   67.08 * model.MilliWatt,
		TransmitPower: 56.29 * model.MilliWatt,
	}
}

func runTestbed(n int, budget, sigma float64, opts Options) (*testbed.Metrics, error) {
	duration, warmup := 40000.0, 6000.0
	if opts.Quick {
		duration, warmup = 6000, 1500
	}
	return testbed.Run(testbed.Config{
		N:        n,
		Budget:   budget,
		Sigma:    sigma,
		Duration: duration,
		Warmup:   warmup,
		Seed:     rng.DeriveSeed(opts.Seed, uint64(n), math.Float64bits(budget), math.Float64bits(sigma)),
	})
}

// testbedPoint is one emulation operating point shared by the testbed
// sweeps below.
type testbedPoint struct {
	n      int
	budget float64
	sigma  float64
}

func runFig7(opts Options) ([]*Table, error) {
	t := &Table{
		Name: "Fig. 7: testbed-emulation ratios (paper: Ideal 57-77%, Relaxed 67-81%)",
		Notes: "Ideal = experimental / T^sigma(rho); Relaxed = experimental / T^sigma(actual power); " +
			"battery variance = per-node power / rho (mean [min, max])",
		Head: []string{"rho(mW)", "N", "sigma", "Ideal", "Relaxed", "power/rho mean", "min", "max"},
	}
	var points []testbedPoint
	for _, budget := range []float64{1 * model.MilliWatt, 5 * model.MilliWatt} {
		for _, n := range []int{5, 10} {
			for _, sigma := range []float64{0.25, 0.5} {
				points = append(points, testbedPoint{n: n, budget: budget, sigma: sigma})
			}
		}
	}
	rows, err := sweep.Map(opts.Workers, points, func(_ int, p testbedPoint) ([]string, error) {
		m, err := runTestbed(p.n, p.budget, p.sigma, opts)
		if err != nil {
			return nil, err
		}
		ideal, err := statespace.SolveP4Homogeneous(p.n, testbedNode(p.budget), p.sigma, model.Groupput, nil)
		if err != nil {
			return nil, err
		}
		var pow stats.Accumulator
		for _, pw := range m.Power {
			pow.Add(pw)
		}
		relaxedRef, err := statespace.SolveP4Homogeneous(p.n, testbedNode(pow.Mean()), p.sigma, model.Groupput, nil)
		if err != nil {
			return nil, err
		}
		return []string{
			fmt.Sprintf("%.0f", p.budget/model.MilliWatt),
			fmt.Sprintf("%d", p.n),
			fmt.Sprintf("%.2f", p.sigma),
			pct(m.Groupput / ideal.Throughput),
			pct(m.Groupput / relaxedRef.Throughput),
			f3(pow.Mean() / p.budget),
			f3(pow.Min() / p.budget),
			f3(pow.Max() / p.budget),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return []*Table{t}, nil
}

func runTable3(opts Options) ([]*Table, error) {
	const sigma = 0.25
	t := &Table{
		Name: "Table III: EconCast-C (emulated) vs Panda (analytic), sigma=0.25",
		Notes: "paper row anchors: T~/T^sigma = 67-81%, Panda/T^sigma = 6-36%, " +
			"EconCast/Panda = 2.3x-10.8x (throughputs normalized by T^sigma_g)",
		Head: []string{"(N, rho mW)", "T~/T^sigma %", "Panda/T^sigma %", "T~/Panda"},
	}
	points := []testbedPoint{
		{n: 5, budget: 1 * model.MilliWatt, sigma: sigma},
		{n: 10, budget: 1 * model.MilliWatt, sigma: sigma},
		{n: 5, budget: 5 * model.MilliWatt, sigma: sigma},
		{n: 10, budget: 5 * model.MilliWatt, sigma: sigma},
	}
	rows, err := sweep.Map(opts.Workers, points, func(_ int, p testbedPoint) ([]string, error) {
		m, err := runTestbed(p.n, p.budget, p.sigma, opts)
		if err != nil {
			return nil, err
		}
		node := testbedNode(p.budget)
		ref, err := statespace.SolveP4Homogeneous(p.n, node, p.sigma, model.Groupput, nil)
		if err != nil {
			return nil, err
		}
		// Panda at the testbed's packet length.
		panda, err := baselines.PandaOptimize(p.n, node, 40e-3, model.Groupput)
		if err != nil {
			return nil, err
		}
		return []string{
			fmt.Sprintf("(%d, %.0f)", p.n, p.budget/model.MilliWatt),
			pct(m.Groupput / ref.Throughput),
			pct(panda.Groupput / ref.Throughput),
			fmt.Sprintf("%.2f", m.Groupput/panda.Groupput),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return []*Table{t}, nil
}

func runTable4(opts Options) ([]*Table, error) {
	const sigma = 0.25
	t := &Table{
		Name:  "Table IV: pings (estimated listeners) per transmission, N=5, sigma=0.25",
		Notes: "paper: rho=1mW -> 89.0/9.7/1.3/0/0 %; rho=5mW -> 59.2/31.2/8.2/1.2/0.1 %",
		Head:  []string{"rho(mW)", "0", "1", "2", "3", "4"},
	}
	budgets := []float64{1 * model.MilliWatt, 5 * model.MilliWatt}
	rows, err := sweep.Map(opts.Workers, budgets, func(_ int, budget float64) ([]string, error) {
		m, err := runTestbed(5, budget, sigma, opts)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%.0f", budget/model.MilliWatt)}
		for v := 0; v <= 4; v++ {
			row = append(row, pct(m.PingCounts.Fraction(v)))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return []*Table{t}, nil
}
