package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/sim"
	"econcast/internal/sweep"
	"econcast/internal/topology"
)

func init() {
	register(Experiment{
		ID:    "scale",
		Title: "Scale: sharded spatial-interference engine on grids and RGGs, N = 1k-100k",
		Run:   runScale,
	})
}

// scaleCase is one cell of the scale sweep. The topology is built inside
// the cell (construction cost is part of scaling), and the horizon
// shrinks with N so every cell dispatches a comparable event count.
type scaleCase struct {
	name     string
	n        int
	build    func(src *rng.Source) *topology.Topology
	duration float64
	warmup   float64
}

// scaleResult carries one cell's measurements back through the sweep:
// the deterministic simulation outputs plus the (nondeterministic)
// wall-clock cost, kept in separate tables downstream.
type scaleResult struct {
	shards  int
	events  int
	packets int
	group   float64
	seconds float64
}

func gridCase(side int, duration, warmup float64) scaleCase {
	return scaleCase{
		name:     fmt.Sprintf("grid %dx%d", side, side),
		n:        side * side,
		build:    func(*rng.Source) *topology.Topology { return topology.Grid(side, side) },
		duration: duration,
		warmup:   warmup,
	}
}

func rggCase(n int, duration, warmup float64) scaleCase {
	// Radius targets a constant expected degree (~6) so density, and with
	// it per-node event rates, stay comparable across N.
	radius := math.Sqrt(6 / (math.Pi * float64(n)))
	return scaleCase{
		name:     fmt.Sprintf("rgg %d", n),
		n:        n,
		build:    func(src *rng.Source) *topology.Topology { return topology.RandomGeometric(n, radius, src) },
		duration: duration,
		warmup:   warmup,
	}
}

// runScale sweeps the sharded engine across topology size on grid and
// random-geometric families. Each cell is one sim run on the sharded
// engine (about 1024 nodes per shard, the auto-selection target); the
// deterministic outputs land in the first table, and in full mode a
// second table reports the wall-clock throughput of each cell.
func runScale(opts Options) ([]*Table, error) {
	var cases []scaleCase
	if opts.Quick {
		cases = []scaleCase{
			gridCase(32, 4, 1),
			gridCase(100, 0.4, 0.1),
			rggCase(1000, 4, 1),
			rggCase(10000, 0.4, 0.1),
		}
	} else {
		cases = []scaleCase{
			gridCase(32, 40, 5),
			gridCase(100, 4, 0.5),
			gridCase(316, 0.4, 0.05),
			rggCase(1000, 40, 5),
			rggCase(10000, 4, 0.5),
			rggCase(100000, 0.4, 0.05),
		}
	}

	results, err := sweep.Map(opts.Workers, cases, func(ci int, sc scaleCase) (scaleResult, error) {
		begin := time.Now() //lint:allow wallclock throughput is this experiment's measurement; no simulated quantity reads it
		shards := sc.n / 1024
		if shards < 2 {
			shards = 2
		}
		topo := sc.build(rng.New(rng.DeriveSeed(opts.Seed, 71, uint64(ci), 1)))
		m, err := sim.Run(sim.Config{
			Network:  model.Homogeneous(sc.n, 60*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt),
			Topology: topo,
			Protocol: sim.Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: 0.5, Delta: 0.1},
			Duration: sc.duration,
			Warmup:   sc.warmup,
			Seed:     rng.DeriveSeed(opts.Seed, 71, uint64(ci), 2),
			Shards:   shards,
		})
		if err != nil {
			return scaleResult{}, err
		}
		return scaleResult{
			shards:  shards,
			events:  m.Events,
			packets: m.PacketsSent,
			group:   m.Groupput,
			seconds: time.Since(begin).Seconds(), //lint:allow wallclock throughput is this experiment's measurement; no simulated quantity reads it
		}, nil
	})
	if err != nil {
		return nil, err
	}

	det := &Table{
		Name: "Scale: sharded engine, ~1k nodes/shard (rho=60uW, L=X=500uW, sigma=0.5)",
		Notes: "byte-identical to the single-queue engine at every shard and worker count; " +
			"horizons shrink with N so cells dispatch comparable event counts",
		Head: []string{"topology", "N", "shards", "events", "packets", "groupput(agg)"},
	}
	for i, sc := range cases {
		r := results[i]
		det.Rows = append(det.Rows, []string{
			sc.name, fmt.Sprint(sc.n), fmt.Sprint(r.shards),
			fmt.Sprint(r.events), fmt.Sprint(r.packets), f4(r.group),
		})
	}
	if opts.Quick {
		// Quick mode (tests, byte-identity pins) reports only the
		// deterministic table; wall-clock numbers vary run to run.
		return []*Table{det}, nil
	}
	perf := &Table{
		Name:  "Scale: wall-clock throughput (this machine, nondeterministic)",
		Notes: "includes topology construction and engine setup",
		Head:  []string{"topology", "N", "events/sec", "ns/event"},
	}
	for i, sc := range cases {
		r := results[i]
		evps := float64(r.events) / r.seconds
		perf.Rows = append(perf.Rows, []string{
			sc.name, fmt.Sprint(sc.n),
			fmt.Sprintf("%.0f", evps), fmt.Sprintf("%.0f", 1e9*r.seconds/float64(r.events)),
		})
	}

	// Multi-core rows: the same cells re-run through the window-parallel
	// engine (DESIGN.md §9) with one worker per core. The deterministic
	// outputs must match the serial rows exactly — checked here, live —
	// so the speedup column is a pure execution-strategy comparison.
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2 // keep the window engine engaged on 1-core hosts
	}
	par, err := sweep.Map(opts.Workers, cases, func(ci int, sc scaleCase) (scaleResult, error) {
		begin := time.Now() //lint:allow wallclock throughput is this experiment's measurement; no simulated quantity reads it
		shards := sc.n / 1024
		if shards < 2 {
			shards = 2
		}
		topo := sc.build(rng.New(rng.DeriveSeed(opts.Seed, 71, uint64(ci), 1)))
		m, err := sim.Run(sim.Config{
			Network:  model.Homogeneous(sc.n, 60*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt),
			Topology: topo,
			Protocol: sim.Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: 0.5, Delta: 0.1},
			Duration: sc.duration,
			Warmup:   sc.warmup,
			Seed:     rng.DeriveSeed(opts.Seed, 71, uint64(ci), 2),
			Shards:   shards,
			Parallel: workers,
		})
		if err != nil {
			return scaleResult{}, err
		}
		return scaleResult{
			shards:  shards,
			events:  m.Events,
			packets: m.PacketsSent,
			group:   m.Groupput,
			seconds: time.Since(begin).Seconds(), //lint:allow wallclock throughput is this experiment's measurement; no simulated quantity reads it
		}, nil
	})
	if err != nil {
		return nil, err
	}
	mc := &Table{
		Name: fmt.Sprintf("Scale: window-parallel engine, %d workers (this machine, nondeterministic timing)", workers),
		Notes: "deterministic outputs verified equal to the serial rows; " +
			"speedup is wall-clock serial/parallel on this machine's cores",
		Head: []string{"topology", "N", "parallel events/sec", "speedup"},
	}
	for i, sc := range cases {
		s, p := results[i], par[i]
		if p.events != s.events || p.packets != s.packets || p.group != s.group { //lint:allow floateq the parallel engine's contract is exact equality with the serial engine, not tolerance
			return nil, fmt.Errorf("scale: parallel engine diverged from serial on %s (events %d vs %d)",
				sc.name, p.events, s.events)
		}
		mc.Rows = append(mc.Rows, []string{
			sc.name, fmt.Sprint(sc.n),
			fmt.Sprintf("%.0f", float64(p.events)/p.seconds),
			fmt.Sprintf("%.2fx", s.seconds/p.seconds),
		})
	}
	return []*Table{det, perf, mc}, nil
}
