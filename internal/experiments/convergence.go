package experiments

import (
	"fmt"
	"math"

	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/sim"
	"econcast/internal/statespace"
	"econcast/internal/sweep"
)

func init() {
	register(Experiment{
		ID:    "convergence",
		Title: "Extension: multiplier convergence time vs (delta, tau) — the §V-F tradeoff, live",
		Run:   runConvergence,
	})
	register(Experiment{
		ID:    "harvesting",
		Title: "Extension: time-varying harvesting profiles vs the constant-budget analysis (§III-A)",
		Run:   runHarvesting,
	})
}

// runConvergence measures, in the live protocol, how long the eq. (17)
// adaptation takes to bring eta within 10% of the analytical optimum from
// a cold start, and what throughput the steady state then delivers —
// quantifying "adapting quickly but poorly vs optimally but slowly".
func runConvergence(opts Options) ([]*Table, error) {
	nw := model.Homogeneous(5, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	const sigma = 0.5
	ref, err := statespace.SolveP4(nw, sigma, model.Groupput, nil)
	if err != nil {
		return nil, err
	}
	etaStar := ref.Eta[0]
	duration := 12000.0
	if opts.Quick {
		duration = 3000
	}

	t := &Table{
		Name: "Multiplier convergence from cold start (N=5, sigma=0.5)",
		Notes: fmt.Sprintf("eta* = %.0f /W; settle = first tick with every node's eta within 10%% of eta* "+
			"and staying there; larger delta adapts faster but tracks worse", etaStar),
		Head: []string{"delta", "tau (s)", "settle time (s)", "groupput", "vs analytic"},
	}
	type point struct{ delta, tau float64 }
	var points []point
	for _, delta := range []float64{0.02, 0.05, 0.2, 0.5} {
		for _, tau := range []float64{0.5, 2.0} {
			points = append(points, point{delta: delta, tau: tau})
		}
	}
	rows, err := sweep.Map(opts.Workers, points, func(_ int, p point) ([]string, error) {
		n := nw.N()
		lastOutside := make([]float64, n) // last time eta was outside the band
		m, err := sim.Run(sim.Config{
			Network: nw,
			Protocol: sim.Protocol{
				Mode: model.Groupput, Variant: econcast.Capture,
				Sigma: sigma, Delta: p.delta, Tau: p.tau,
			},
			Duration: duration,
			Warmup:   duration / 3,
			Seed:     rng.DeriveSeed(opts.Seed, math.Float64bits(p.delta), math.Float64bits(p.tau)),
			OnTick: func(node int, now, eta float64) {
				if math.Abs(eta-etaStar) > 0.1*etaStar {
					lastOutside[node] = now
				}
			},
		})
		if err != nil {
			return nil, err
		}
		settle := 0.0
		for _, v := range lastOutside {
			if v > settle {
				settle = v
			}
		}
		settleStr := f3(settle)
		if settle >= duration-2*p.tau {
			settleStr = "never"
		}
		return []string{
			fmt.Sprintf("%.2f", p.delta), fmt.Sprintf("%.1f", p.tau),
			settleStr, f4(m.Groupput), f3(m.Groupput / ref.Throughput),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return []*Table{t}, nil
}

// runHarvesting compares the constant-budget analysis against live
// time-varying harvesting with the same mean (§III-A's extension remark):
// a square wave (fast), a square wave (slow), and an always-on constant.
func runHarvesting(opts Options) ([]*Table, error) {
	nw := model.Homogeneous(5, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	const sigma = 0.5
	ref, err := statespace.SolveP4(nw, sigma, model.Groupput, nil)
	if err != nil {
		return nil, err
	}
	duration, warmup := 12000.0, 3000.0
	if opts.Quick {
		duration, warmup = 3000, 800
	}

	square := func(period float64, hi, lo float64) func(int, float64) float64 {
		return func(_ int, t float64) float64 {
			if int(t/(period/2))%2 == 0 {
				return hi * model.MicroWatt
			}
			return lo * model.MicroWatt
		}
	}
	// Jensen prediction for slow swings: the network tracks each level, so
	// throughput approaches the average of the endpoint T^sigma values —
	// ABOVE the constant-budget value because T^sigma is convex in rho
	// (the sigma->0 oracle is linear, so the effect is a finite-sigma one).
	jensen := func(hi, lo float64) (float64, error) {
		a, err := statespace.SolveP4(model.Homogeneous(5, hi*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt), sigma, model.Groupput, nil)
		if err != nil {
			return 0, err
		}
		b, err := statespace.SolveP4(model.Homogeneous(5, lo*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt), sigma, model.Groupput, nil)
		if err != nil {
			return 0, err
		}
		return (a.Throughput + b.Throughput) / 2, nil
	}
	type profile struct {
		name    string
		hi, lo  float64
		harvest func(node int, t float64) float64
	}
	profiles := []profile{
		{"constant 10uW", 10, 10, nil},
		{"square 15/5uW, 100s period", 15, 5, square(100, 15, 5)},
		{"square 15/5uW, 2000s period", 15, 5, square(2000, 15, 5)},
		{"square 19/1uW, 2000s period", 19, 1, square(2000, 19, 1)},
	}

	t := &Table{
		Name: "Time-varying harvesting, all profiles with a 10 uW mean (N=5, sigma=0.5)",
		Notes: fmt.Sprintf("constant-budget T^0.5 = %s; slow correlated swings track each level and "+
			"approach the Jensen average of the endpoint throughputs (T^sigma is convex in rho)",
			f4(ref.Throughput)),
		Head: []string{"profile", "groupput", "vs constant analysis", "Jensen prediction", "mean power (uW)"},
	}
	rows, err := sweep.Map(opts.Workers, profiles, func(i int, p profile) ([]string, error) {
		m, err := sim.Run(sim.Config{
			Network:  nw,
			Protocol: sim.Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: sigma, Delta: 0.1},
			Duration: duration,
			Warmup:   warmup,
			Seed:     rng.DeriveSeed(opts.Seed, 4, uint64(i)),
			Harvest:  p.harvest,
		})
		if err != nil {
			return nil, err
		}
		meanP := 0.0
		for _, v := range m.Power {
			meanP += v
		}
		meanP /= float64(len(m.Power))
		jv, err := jensen(p.hi, p.lo)
		if err != nil {
			return nil, err
		}
		return []string{
			p.name, f4(m.Groupput), f3(m.Groupput / ref.Throughput), f4(jv),
			fmt.Sprintf("%.2f", meanP/model.MicroWatt),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return []*Table{t}, nil
}
