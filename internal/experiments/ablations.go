package experiments

import (
	"fmt"
	"math"

	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/sim"
	"econcast/internal/statespace"
	"econcast/internal/sweep"
)

func init() {
	register(Experiment{
		ID:    "ablations",
		Title: "Ablations: ping noise, delta/tau tradeoff (§V-F), C vs NC, storage size",
		Run:   runAblations,
	})
}

func ablationNet() *model.Network {
	return model.Homogeneous(5, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
}

func runAblations(opts Options) ([]*Table, error) {
	duration, warmup := 12000.0, 2000.0
	algIters := 4000
	if opts.Quick {
		duration, warmup = 2500, 500
		algIters = 800
	}
	nw := ablationNet()
	ref, err := statespace.SolveP4(nw, 0.5, model.Groupput, nil)
	if err != nil {
		return nil, err
	}
	refQ, err := statespace.SolveP4(nw, 0.25, model.Groupput, nil)
	if err != nil {
		return nil, err
	}

	// All four ablation sections are declared as one flat cell slice (each
	// cell yields a formatted row) and fanned out together; section offsets
	// slice the results back apart.
	var cells []sweep.Cell[[]string]

	// 1. Ping-estimate noise: each listener's ping is lost independently
	// with probability p; the transmitter's c-hat undercounts.
	losses := []float64{0, 0.25, 0.5, 0.75}
	for _, loss := range losses {
		loss := loss
		cells = append(cells, func() ([]string, error) {
			cfg := sim.Config{
				Network:  nw,
				Protocol: sim.Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: 0.5},
				Duration: duration, Warmup: warmup,
				Seed:    rng.DeriveSeed(opts.Seed, 1, math.Float64bits(loss)),
				WarmEta: ref.Eta,
			}
			if loss > 0 {
				p := loss
				cfg.EstimateListeners = func(actual int, src *rng.Source) int {
					count := 0
					for k := 0; k < actual; k++ {
						if !src.Bernoulli(p) {
							count++
						}
					}
					return count
				}
			}
			m, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}
			return []string{
				fmt.Sprintf("%.0f%%", 100*loss), f4(m.Groupput), f3(m.Groupput / ref.Throughput),
			}, nil
		})
	}

	// 2. delta/tau tradeoff via Algorithm 1: large steps adapt fast but
	// oscillate; small steps converge slowly (§V-F). Deterministic solver
	// cells — no seed involved.
	schedules := []struct {
		name  string
		delta func(int) float64
	}{
		{"constant 0.05", statespace.ConstantDelta(0.05)},
		{"constant 0.5", statespace.ConstantDelta(0.5)},
		{"constant 5", statespace.ConstantDelta(5)},
		{"harmonic 2/k", statespace.HarmonicDelta(2)},
	}
	for _, c := range schedules {
		c := c
		cells = append(cells, func() ([]string, error) {
			res, trace, err := statespace.SolveAlgorithm1(nw, 0.5, model.Groupput, c.delta, algIters)
			if err != nil {
				return nil, err
			}
			last := trace.Violation[len(trace.Violation)-1]
			return []string{
				c.name, fmt.Sprintf("%d", algIters), f4(last),
				f3((res.Throughput - ref.Throughput) / ref.Throughput),
			}, nil
		})
	}

	// 3. Capture vs non-capture: same stationary throughput, very
	// different burstiness.
	variants := []econcast.Variant{econcast.Capture, econcast.NonCapture}
	for _, v := range variants {
		v := v
		cells = append(cells, func() ([]string, error) {
			m, err := sim.Run(sim.Config{
				Network:  nw,
				Protocol: sim.Protocol{Mode: model.Groupput, Variant: v, Sigma: 0.5},
				Duration: duration, Warmup: warmup,
				Seed:    rng.DeriveSeed(opts.Seed, 2, uint64(v)),
				WarmEta: ref.Eta, FreezeEta: true,
			})
			if err != nil {
				return nil, err
			}
			lat := 0.0
			if m.Latency.N() > 0 {
				lat = m.Latency.Mean()
			}
			return []string{
				v.String(), f4(m.Groupput), f3(m.BurstLengths.Mean()), f3(lat),
			}, nil
		})
	}

	// 4. Storage size under a hard battery floor at sigma=0.25: small
	// stores truncate bursts (and throughput); larger stores approach the
	// idealized virtual battery.
	floors := []float64{0.2e-3, 1e-3, 5e-3, 20e-3}
	for _, floor := range floors {
		floor := floor
		cells = append(cells, func() ([]string, error) {
			m, err := sim.Run(sim.Config{
				Network:  nw,
				Protocol: sim.Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: 0.25, Delta: 0.1},
				Duration: duration, Warmup: warmup,
				Seed:             rng.DeriveSeed(opts.Seed, 3, math.Float64bits(floor)),
				HardBatteryFloor: true, InitialBattery: floor,
			})
			if err != nil {
				return nil, err
			}
			return []string{
				fmt.Sprintf("%.1f mJ", floor*1e3), f4(m.Groupput), f3(m.Groupput / refQ.Throughput),
			}, nil
		})
	}

	rows, err := sweep.Run(opts.Workers, cells)
	if err != nil {
		return nil, err
	}

	noise := &Table{
		Name:  "Ablation: ping loss probability vs throughput (sigma=0.5, warm start)",
		Notes: fmt.Sprintf("analytic T^0.5 = %s; estimates need not be accurate for EconCast to function (§V-C)", f4(ref.Throughput)),
		Head:  []string{"ping loss", "groupput", "vs analytic"},
	}
	dt := &Table{
		Name: "Ablation: Algorithm 1 step size (delta) vs convergence (§V-F)",
		Head: []string{"schedule", "iters", "final violation", "throughput err"},
	}
	cvn := &Table{
		Name: "Ablation: EconCast-C vs EconCast-NC (sigma=0.5, frozen eta*)",
		Head: []string{"variant", "groupput", "hold length", "mean latency (s)"},
	}
	store := &Table{
		Name:  "Ablation: energy storage size with a hard floor (sigma=0.25, cold start)",
		Notes: fmt.Sprintf("analytic T^0.25 = %s; bursts need storage (§VII-D)", f4(refQ.Throughput)),
		Head:  []string{"initial store", "groupput", "vs analytic"},
	}
	off := 0
	take := func(t *Table, n int) {
		t.Rows = append(t.Rows, rows[off:off+n]...)
		off += n
	}
	take(noise, len(losses))
	take(dt, len(schedules))
	take(cvn, len(variants))
	take(store, len(floors))

	return []*Table{noise, dt, cvn, store}, nil
}
