package experiments

import (
	"fmt"

	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/sim"
	"econcast/internal/statespace"
)

func init() {
	register(Experiment{
		ID:    "ablations",
		Title: "Ablations: ping noise, delta/tau tradeoff (§V-F), C vs NC, storage size",
		Run:   runAblations,
	})
}

func ablationNet() *model.Network {
	return model.Homogeneous(5, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
}

func runAblations(opts Options) ([]*Table, error) {
	duration, warmup := 12000.0, 2000.0
	algIters := 4000
	if opts.Quick {
		duration, warmup = 2500, 500
		algIters = 800
	}
	nw := ablationNet()
	ref, err := statespace.SolveP4(nw, 0.5, model.Groupput, nil)
	if err != nil {
		return nil, err
	}

	// 1. Ping-estimate noise: each listener's ping is lost independently
	// with probability p; the transmitter's c-hat undercounts.
	noise := &Table{
		Name:  "Ablation: ping loss probability vs throughput (sigma=0.5, warm start)",
		Notes: fmt.Sprintf("analytic T^0.5 = %s; estimates need not be accurate for EconCast to function (§V-C)", f4(ref.Throughput)),
		Head:  []string{"ping loss", "groupput", "vs analytic"},
	}
	for _, loss := range []float64{0, 0.25, 0.5, 0.75} {
		cfg := sim.Config{
			Network:  nw,
			Protocol: sim.Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: 0.5},
			Duration: duration, Warmup: warmup, Seed: opts.Seed + uint64(loss*100),
			WarmEta: ref.Eta,
		}
		if loss > 0 {
			p := loss
			cfg.EstimateListeners = func(actual int, src *rng.Source) int {
				count := 0
				for k := 0; k < actual; k++ {
					if !src.Bernoulli(p) {
						count++
					}
				}
				return count
			}
		}
		m, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		noise.Rows = append(noise.Rows, []string{
			fmt.Sprintf("%.0f%%", 100*loss), f4(m.Groupput), f3(m.Groupput / ref.Throughput),
		})
	}

	// 2. delta/tau tradeoff via Algorithm 1: large steps adapt fast but
	// oscillate; small steps converge slowly (§V-F).
	dt := &Table{
		Name: "Ablation: Algorithm 1 step size (delta) vs convergence (§V-F)",
		Head: []string{"schedule", "iters", "final violation", "throughput err"},
	}
	for _, c := range []struct {
		name  string
		delta func(int) float64
	}{
		{"constant 0.05", statespace.ConstantDelta(0.05)},
		{"constant 0.5", statespace.ConstantDelta(0.5)},
		{"constant 5", statespace.ConstantDelta(5)},
		{"harmonic 2/k", statespace.HarmonicDelta(2)},
	} {
		res, trace, err := statespace.SolveAlgorithm1(nw, 0.5, model.Groupput, c.delta, algIters)
		if err != nil {
			return nil, err
		}
		last := trace.Violation[len(trace.Violation)-1]
		dt.Rows = append(dt.Rows, []string{
			c.name, fmt.Sprintf("%d", algIters), f4(last),
			f3((res.Throughput - ref.Throughput) / ref.Throughput),
		})
	}

	// 3. Capture vs non-capture: same stationary throughput, very
	// different burstiness.
	cvn := &Table{
		Name: "Ablation: EconCast-C vs EconCast-NC (sigma=0.5, frozen eta*)",
		Head: []string{"variant", "groupput", "hold length", "mean latency (s)"},
	}
	for _, v := range []econcast.Variant{econcast.Capture, econcast.NonCapture} {
		m, err := sim.Run(sim.Config{
			Network:  nw,
			Protocol: sim.Protocol{Mode: model.Groupput, Variant: v, Sigma: 0.5},
			Duration: duration, Warmup: warmup, Seed: opts.Seed + 7,
			WarmEta: ref.Eta, FreezeEta: true,
		})
		if err != nil {
			return nil, err
		}
		lat := 0.0
		if m.Latency.N() > 0 {
			lat = m.Latency.Mean()
		}
		cvn.Rows = append(cvn.Rows, []string{
			v.String(), f4(m.Groupput), f3(m.BurstLengths.Mean()), f3(lat),
		})
	}

	// 4. Storage size under a hard battery floor at sigma=0.25: small
	// stores truncate bursts (and throughput); larger stores approach the
	// idealized virtual battery.
	refQ, err := statespace.SolveP4(nw, 0.25, model.Groupput, nil)
	if err != nil {
		return nil, err
	}
	store := &Table{
		Name:  "Ablation: energy storage size with a hard floor (sigma=0.25, cold start)",
		Notes: fmt.Sprintf("analytic T^0.25 = %s; bursts need storage (§VII-D)", f4(refQ.Throughput)),
		Head:  []string{"initial store", "groupput", "vs analytic"},
	}
	for _, floor := range []float64{0.2e-3, 1e-3, 5e-3, 20e-3} {
		m, err := sim.Run(sim.Config{
			Network:  nw,
			Protocol: sim.Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: 0.25, Delta: 0.1},
			Duration: duration, Warmup: warmup, Seed: opts.Seed + 11,
			HardBatteryFloor: true, InitialBattery: floor,
		})
		if err != nil {
			return nil, err
		}
		store.Rows = append(store.Rows, []string{
			fmt.Sprintf("%.1f mJ", floor*1e3), f4(m.Groupput), f3(m.Groupput / refQ.Throughput),
		})
	}

	return []*Table{noise, dt, cvn, store}, nil
}
