package experiments

import (
	"fmt"

	"econcast/internal/model"
	"econcast/internal/oracle"
	"econcast/internal/statespace"
)

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "Table II: optimal listen/transmit split in a 4-node heterogeneous clique",
		Run:   runTable2,
	})
}

// runTable2 reproduces the paper's Table II. (P2) is degenerate here (many
// optimal splits); the paper's specific split is the entropy-regularized
// one, so alongside the LP value we report the (P4) solution at a small
// sigma, whose awake and transmit-when-awake fractions are unique.
func runTable2(opts Options) ([]*Table, error) {
	budgets := []float64{5, 10, 50, 100} // uW
	nodes := make([]model.Node, len(budgets))
	for i, b := range budgets {
		nodes[i] = model.Node{
			Budget:        b * model.MicroWatt,
			ListenPower:   model.MilliWatt,
			TransmitPower: model.MilliWatt,
		}
	}
	nw := &model.Network{Nodes: nodes}
	lp, err := oracle.Groupput(nw)
	if err != nil {
		return nil, err
	}
	sigma := 0.02
	if opts.Quick {
		sigma = 0.05
	}
	p4, err := statespace.SolveP4(nw, sigma, model.Groupput, &statespace.P4Options{MaxIter: 3000})
	if err != nil {
		return nil, err
	}

	paperAwake := []float64{0.005, 0.010, 0.050, 0.100}
	paperTxWhenAwake := []float64{0.200, 0.22, 0.536, 0.657}

	t := &Table{
		Name: "Table II: heterogeneous example (L=X=1mW)",
		Notes: fmt.Sprintf("oracle groupput T*_g = %s; P4 shown at sigma=%v (unique max-entropy optimum)",
			f4(lp.Throughput), sigma),
		Head: []string{"node", "rho(uW)", "awake% (P4)", "awake% (paper)",
			"tx-when-awake% (P4)", "tx-when-awake% (paper)"},
	}
	for i := range nodes {
		awake := p4.Alpha[i] + p4.Beta[i]
		txFrac := 0.0
		if awake > 0 {
			txFrac = p4.Beta[i] / awake
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.0f", budgets[i]),
			pct(awake), pct(paperAwake[i]),
			pct(txFrac), pct(paperTxWhenAwake[i]),
		})
	}

	// Homogeneous variant: all budgets 100 uW -> 25% transmit when awake.
	hom := model.Homogeneous(4, 100*model.MicroWatt, model.MilliWatt, model.MilliWatt)
	hp4, err := statespace.SolveP4(hom, sigma, model.Groupput, &statespace.P4Options{MaxIter: 3000})
	if err != nil {
		return nil, err
	}
	awake := hp4.Alpha[0] + hp4.Beta[0]
	t2 := &Table{
		Name: "Table II variant: homogeneous budgets 100 uW",
		Head: []string{"quantity", "measured", "paper"},
		Rows: [][]string{
			{"awake%", pct(awake), "10.0%"},
			{"tx-when-awake%", pct(hp4.Beta[0] / awake), "25.0%"},
		},
	}
	return []*Table{t, t2}, nil
}
