package experiments

import (
	"fmt"
	"math"

	"econcast/internal/baselines"
	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/sim"
	"econcast/internal/statespace"
	"econcast/internal/sweep"
	"econcast/internal/viz"
)

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "Fig. 5: latency CDF / mean / 99th percentile; Searchlight worst case",
		Run:   runFig5,
	})
}

// cdfAt are the time points at which the latency CDF is tabulated.
var cdfAt = []float64{5, 25, 50, 75, 100, 125}

// fig5Cell is one (mode, N, sigma) point: a formatted table row plus the
// CDF series behind it.
type fig5Cell struct {
	row    []string
	series viz.Series
}

func runFig5(opts Options) ([]*Table, error) {
	node := model.Node{
		Budget:        10 * model.MicroWatt,
		ListenPower:   500 * model.MicroWatt,
		TransmitPower: 500 * model.MicroWatt,
	}
	duration, warmup := 40000.0, 2000.0
	if opts.Quick {
		duration, warmup = 5000, 500
	}

	modes := []model.Mode{model.Groupput, model.Anyput}
	ns := []int{5, 10}
	sigmas := []float64{0.25, 0.5}

	var cells []sweep.Cell[fig5Cell]
	for _, mode := range modes {
		mode := mode
		for _, n := range ns {
			n := n
			for _, sigma := range sigmas {
				sigma := sigma
				cells = append(cells, func() (fig5Cell, error) {
					nw := model.Homogeneous(n, node.Budget, node.ListenPower, node.TransmitPower)
					ref, err := statespace.SolveP4(nw, sigma, mode, nil)
					if err != nil {
						return fig5Cell{}, err
					}
					m, err := sim.Run(sim.Config{
						Network:  nw,
						Protocol: sim.Protocol{Mode: mode, Variant: econcast.Capture, Sigma: sigma, Delta: 0.1},
						Duration: duration,
						Warmup:   warmup,
						Seed:     rng.DeriveSeed(opts.Seed, uint64(mode), uint64(n), math.Float64bits(sigma)),
						WarmEta:  ref.Eta,
					})
					if err != nil {
						return fig5Cell{}, err
					}
					mean, p99 := 0.0, 0.0
					if m.Latency.N() > 0 {
						mean = m.Latency.Mean()
						p99 = m.Latency.Quantile(0.99)
					}
					c := fig5Cell{row: []string{
						fmt.Sprintf("%d", n), fmt.Sprintf("%.2f", sigma),
						f3(mean), f3(p99), fmt.Sprintf("%d", m.Latency.N()),
					}}
					// CDF series (the actual content of the paper's figure).
					c.series = viz.Series{Name: fmt.Sprintf("N=%d sigma=%.2f", n, sigma)}
					for _, at := range cdfAt {
						v := m.Latency.At(at)
						c.row = append(c.row, f3(v))
						c.series.X = append(c.series.X, at)
						c.series.Y = append(c.series.Y, v)
					}
					return c, nil
				})
			}
		}
	}
	res, err := sweep.Run(opts.Workers, cells)
	if err != nil {
		return nil, err
	}

	perMode := len(ns) * len(sigmas)
	tables := make([]*Table, 0, len(modes))
	for mi, mode := range modes {
		t := &Table{
			Name: fmt.Sprintf("Fig. 5(%s): %s latency (seconds)",
				map[model.Mode]string{model.Groupput: "a", model.Anyput: "b"}[mode], mode),
			Head: []string{"N", "sigma", "mean", "p99", "samples",
				"CDF@5s", "@25s", "@50s", "@75s", "@100s", "@125s"},
		}
		chart := &viz.Chart{
			Title:    t.Name,
			Subtitle: "rho=10uW, L=X=500uW; CDF of inter-burst latency",
			XLabel:   "latency (s)", YLabel: "CDF",
		}
		for _, c := range res[mi*perMode : (mi+1)*perMode] {
			t.Rows = append(t.Rows, c.row)
			chart.Series = append(chart.Series, c.series)
		}
		t.Chart = chart
		tables = append(tables, t)
	}

	wcl, err := baselines.SearchlightWorstCaseLatency(node, baselines.SearchlightConfig{})
	if err != nil {
		return nil, err
	}
	tables[0].Notes = fmt.Sprintf("Searchlight pairwise worst-case latency: %.0f s (paper: 125 s)", wcl)
	return tables, nil
}
