package experiments

import (
	"fmt"

	"econcast/internal/baselines"
	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/sim"
	"econcast/internal/statespace"
	"econcast/internal/viz"
)

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "Fig. 5: latency CDF / mean / 99th percentile; Searchlight worst case",
		Run:   runFig5,
	})
}

// cdfAt are the time points at which the latency CDF is tabulated.
var cdfAt = []float64{5, 25, 50, 75, 100, 125}

func runFig5(opts Options) ([]*Table, error) {
	node := model.Node{
		Budget:        10 * model.MicroWatt,
		ListenPower:   500 * model.MicroWatt,
		TransmitPower: 500 * model.MicroWatt,
	}
	duration, warmup := 40000.0, 2000.0
	if opts.Quick {
		duration, warmup = 5000, 500
	}

	mk := func(mode model.Mode) (*Table, error) {
		t := &Table{
			Name: fmt.Sprintf("Fig. 5(%s): %s latency (seconds)",
				map[model.Mode]string{model.Groupput: "a", model.Anyput: "b"}[mode], mode),
			Head: []string{"N", "sigma", "mean", "p99", "samples",
				"CDF@5s", "@25s", "@50s", "@75s", "@100s", "@125s"},
		}
		chart := &viz.Chart{
			Title:    t.Name,
			Subtitle: "rho=10uW, L=X=500uW; CDF of inter-burst latency",
			XLabel:   "latency (s)", YLabel: "CDF",
		}
		for _, n := range []int{5, 10} {
			for _, sigma := range []float64{0.25, 0.5} {
				nw := model.Homogeneous(n, node.Budget, node.ListenPower, node.TransmitPower)
				ref, err := statespace.SolveP4(nw, sigma, mode, nil)
				if err != nil {
					return nil, err
				}
				m, err := sim.Run(sim.Config{
					Network:  nw,
					Protocol: sim.Protocol{Mode: mode, Variant: econcast.Capture, Sigma: sigma, Delta: 0.1},
					Duration: duration,
					Warmup:   warmup,
					Seed:     opts.Seed + uint64(n)*10 + uint64(sigma*100),
					WarmEta:  ref.Eta,
				})
				if err != nil {
					return nil, err
				}
				mean, p99 := 0.0, 0.0
				if m.Latency.N() > 0 {
					mean = m.Latency.Mean()
					p99 = m.Latency.Quantile(0.99)
				}
				row := []string{
					fmt.Sprintf("%d", n), fmt.Sprintf("%.2f", sigma),
					f3(mean), f3(p99), fmt.Sprintf("%d", m.Latency.N()),
				}
				// CDF series (the actual content of the paper's figure).
				series := viz.Series{Name: fmt.Sprintf("N=%d sigma=%.2f", n, sigma)}
				for _, at := range cdfAt {
					v := m.Latency.At(at)
					row = append(row, f3(v))
					series.X = append(series.X, at)
					series.Y = append(series.Y, v)
				}
				chart.Series = append(chart.Series, series)
				t.Rows = append(t.Rows, row)
			}
		}
		t.Chart = chart
		return t, nil
	}

	tg, err := mk(model.Groupput)
	if err != nil {
		return nil, err
	}
	wcl, err := baselines.SearchlightWorstCaseLatency(node, baselines.SearchlightConfig{})
	if err != nil {
		return nil, err
	}
	tg.Notes = fmt.Sprintf("Searchlight pairwise worst-case latency: %.0f s (paper: 125 s)", wcl)
	ta, err := mk(model.Anyput)
	if err != nil {
		return nil, err
	}
	return []*Table{tg, ta}, nil
}
