package experiments

import (
	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/oracle"
	"econcast/internal/rng"
	"econcast/internal/sim"
	"econcast/internal/topology"
)

func init() {
	register(Experiment{
		ID:    "topologies",
		Title: "Extension: non-clique oracle (bounds + exact) and EconCast across topology families",
		Run:   runTopologies,
	})
}

// runTopologies extends the paper's Fig. 6 beyond grids: for each topology
// family it reports the §IV-C bounds, our exact configuration-LP oracle
// (a contribution beyond the paper, which leaves the exact non-clique
// oracle open), and simulated EconCast groupput.
func runTopologies(opts Options) ([]*Table, error) {
	duration, warmup := 20000.0, 3000.0
	if opts.Quick {
		duration, warmup = 3000, 500
	}
	src := rng.New(opts.Seed + 33)
	topos := []*topology.Topology{
		topology.Clique(8),
		topology.SquareGrid(9),
		topology.Ring(8),
		topology.Star(8),
		topology.Line(8),
		topology.RandomGeometric(10, 0.5, src),
	}

	t := &Table{
		Name: "Topology families: oracle bounds, exact oracle, simulated EconCast (rho=10uW, L=X=500uW, sigma=0.25)",
		Notes: "exact solves the configuration LP over all transmitter sets; " +
			"bounds are the paper's §IV-C pair",
		Head: []string{"topology", "lower", "exact", "upper", "sim", "sim/exact"},
	}
	for _, topo := range topos {
		nw := model.Homogeneous(topo.N(), 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
		lower, upper, err := oracle.GroupputNonCliqueBounds(nw, topo)
		if err != nil {
			return nil, err
		}
		exact, err := oracle.GroupputNonCliqueExact(nw, topo)
		if err != nil {
			return nil, err
		}
		m, err := sim.Run(sim.Config{
			Network:          nw,
			Topology:         topo,
			Protocol:         sim.Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: 0.25, Delta: 0.1},
			Duration:         duration,
			Warmup:           warmup,
			Seed:             opts.Seed + uint64(topo.N()),
			HardBatteryFloor: true,
			InitialBattery:   2e-3,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			topo.Name(),
			f4(lower.Throughput), f4(exact.Throughput), f4(upper.Throughput),
			f4(m.Groupput), f3(m.Groupput / exact.Throughput),
		})
	}
	return []*Table{t}, nil
}
