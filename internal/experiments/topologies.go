package experiments

import (
	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/oracle"
	"econcast/internal/rng"
	"econcast/internal/sim"
	"econcast/internal/sweep"
	"econcast/internal/topology"
)

func init() {
	register(Experiment{
		ID:    "topologies",
		Title: "Extension: non-clique oracle (bounds + exact) and EconCast across topology families",
		Run:   runTopologies,
	})
}

// runTopologies extends the paper's Fig. 6 beyond grids: for each topology
// family it reports the §IV-C bounds, our exact configuration-LP oracle
// (a contribution beyond the paper, which leaves the exact non-clique
// oracle open), and simulated EconCast groupput.
func runTopologies(opts Options) ([]*Table, error) {
	duration, warmup := 20000.0, 3000.0
	if opts.Quick {
		duration, warmup = 3000, 500
	}
	src := rng.New(rng.DeriveSeed(opts.Seed, 33))
	topos := []*topology.Topology{
		topology.Clique(8),
		topology.SquareGrid(9),
		topology.Ring(8),
		topology.Star(8),
		topology.Line(8),
		topology.RandomGeometric(10, 0.5, src),
	}

	t := &Table{
		Name: "Topology families: oracle bounds, exact oracle, simulated EconCast (rho=10uW, L=X=500uW, sigma=0.25)",
		Notes: "exact solves the configuration LP over all transmitter sets; " +
			"bounds are the paper's §IV-C pair",
		Head: []string{"topology", "lower", "exact", "upper", "sim", "sim/exact"},
	}
	// Seeds are derived from the topology's index in the family list: the
	// old additive `Seed + N` collided for the four 8-node families.
	rows, err := sweep.Map(opts.Workers, topos, func(ti int, topo *topology.Topology) ([]string, error) {
		nw := model.Homogeneous(topo.N(), 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
		lower, upper, err := oracle.GroupputNonCliqueBounds(nw, topo)
		if err != nil {
			return nil, err
		}
		exact, err := oracle.GroupputNonCliqueExact(nw, topo)
		if err != nil {
			return nil, err
		}
		m, err := sim.Run(sim.Config{
			Network:          nw,
			Topology:         topo,
			Protocol:         sim.Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: 0.25, Delta: 0.1},
			Duration:         duration,
			Warmup:           warmup,
			Seed:             rng.DeriveSeed(opts.Seed, 33, uint64(ti)),
			HardBatteryFloor: true,
			InitialBattery:   2e-3,
		})
		if err != nil {
			return nil, err
		}
		return []string{
			topo.Name(),
			f4(lower.Throughput), f4(exact.Throughput), f4(upper.Throughput),
			f4(m.Groupput), f3(m.Groupput / exact.Throughput),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return []*Table{t}, nil
}
