package experiments

import (
	"fmt"

	"econcast/internal/model"
	"econcast/internal/oracle"
	"econcast/internal/rng"
	"econcast/internal/statespace"
	"econcast/internal/stats"
	"econcast/internal/viz"
)

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Fig. 2: T^sigma/T* vs heterogeneity h (groupput and anyput), N=5",
		Run:   runFig2,
	})
}

func runFig2(opts Options) ([]*Table, error) {
	hs := []float64{10, 50, 100, 150, 200, 250}
	sigmas := []float64{0.1, 0.25, 0.5}
	samples := 1000
	if opts.Quick {
		samples = 30
	}
	src := rng.New(rng.DeriveSeed(opts.Seed, 2))

	type cell struct{ acc stats.Accumulator }
	group := make(map[[2]int]*cell) // (hIdx, sigmaIdx)
	anyp := make(map[[2]int]*cell)
	for hi := range hs {
		for si := range sigmas {
			group[[2]int{hi, si}] = &cell{}
			anyp[[2]int{hi, si}] = &cell{}
		}
	}

	for hi, h := range hs {
		spec := model.HeterogeneitySpec{N: 5, H: h}
		for s := 0; s < samples; s++ {
			nw := spec.Sample(src)
			og, err := oracle.Groupput(nw)
			if err != nil {
				return nil, err
			}
			oa, err := oracle.Anyput(nw)
			if err != nil {
				return nil, err
			}
			for si, sigma := range sigmas {
				pg, err := statespace.SolveP4(nw, sigma, model.Groupput, nil)
				if err != nil {
					return nil, err
				}
				pa, err := statespace.SolveP4(nw, sigma, model.Anyput, nil)
				if err != nil {
					return nil, err
				}
				if og.Throughput > 0 {
					group[[2]int{hi, si}].acc.Add(pg.Throughput / og.Throughput)
				}
				if oa.Throughput > 0 {
					anyp[[2]int{hi, si}].acc.Add(pa.Throughput / oa.Throughput)
				}
			}
		}
	}

	mk := func(name string, cells map[[2]int]*cell) *Table {
		t := &Table{
			Name:  name,
			Notes: fmt.Sprintf("%d network samples per point; mean ratio with 95%% CI half-width", samples),
			Head:  []string{"h", "sigma=0.1", "ci", "sigma=0.25", "ci", "sigma=0.5", "ci"},
		}
		chart := &viz.Chart{
			Title:    name,
			Subtitle: fmt.Sprintf("N=5, %d heterogeneous samples per point", samples),
			XLabel:   "heterogeneity h",
			YLabel:   "T^sigma / T*",
		}
		for si, sigma := range sigmas {
			chart.Series = append(chart.Series, viz.Series{Name: fmt.Sprintf("sigma=%.2f", sigma)})
			_ = si
		}
		for hi, h := range hs {
			row := []string{fmt.Sprintf("%.0f", h)}
			for si := range sigmas {
				c := cells[[2]int{hi, si}]
				row = append(row, f3(c.acc.Mean()), f3(c.acc.CI95()))
				chart.Series[si].X = append(chart.Series[si].X, h)
				chart.Series[si].Y = append(chart.Series[si].Y, c.acc.Mean())
			}
			t.Rows = append(t.Rows, row)
		}
		t.Chart = chart
		return t
	}
	return []*Table{
		mk("Fig. 2(a): groupput ratio T^sigma_g / T*_g", group),
		mk("Fig. 2(b): anyput ratio T^sigma_a / T*_a", anyp),
	}, nil
}
