package experiments

import (
	"fmt"

	"econcast/internal/baselines"
	"econcast/internal/model"
	"econcast/internal/oracle"
	"econcast/internal/statespace"
)

func init() {
	register(Experiment{
		ID:    "text-homog",
		Title: "Text claims: homogeneous closed forms and the 6x-17x Panda comparison",
		Run:   runClaims,
	})
}

func runClaims(opts Options) ([]*Table, error) {
	node := model.Node{
		Budget:        10 * model.MicroWatt,
		ListenPower:   500 * model.MicroWatt,
		TransmitPower: 500 * model.MicroWatt,
	}
	const n = 5

	// Closed forms vs LP.
	cfG, _ := oracle.GroupputClosedForm(n, node)
	lpG, err := oracle.Groupput(model.Homogeneous(n, node.Budget, node.ListenPower, node.TransmitPower))
	if err != nil {
		return nil, err
	}
	cfA, _ := oracle.AnyputClosedForm(n, node)
	lpA, err := oracle.Anyput(model.Homogeneous(n, node.Budget, node.ListenPower, node.TransmitPower))
	if err != nil {
		return nil, err
	}
	t1 := &Table{
		Name: "§IV closed forms vs LP (N=5, rho=10uW, L=X=500uW)",
		Head: []string{"quantity", "closed form", "LP"},
		Rows: [][]string{
			{"T*_g", f4(cfG.Throughput), f4(lpG.Throughput)},
			{"T*_a", f4(cfA.Throughput), f4(lpA.Throughput)},
			{"beta* (groupput)", sci(cfG.Beta[0]), sci(lpG.Beta[0])},
		},
	}

	// The 6x/17x claim: EconCast's ratio over Panda's at L=X.
	panda, err := baselines.PandaOptimize(n, node, 1e-3, model.Groupput)
	if err != nil {
		return nil, err
	}
	pandaRatio := panda.Groupput / lpG.Throughput
	t2 := &Table{
		Name:  "§VII-C claim: EconCast outperforms Panda 6x (sigma=0.5) and 17x (sigma=0.25)",
		Notes: "ratios are T^sigma_g/T*_g and T_panda/T*_g at L=X=500uW",
		Head:  []string{"sigma", "EconCast ratio", "Panda ratio", "improvement", "paper"},
	}
	for _, c := range []struct {
		sigma float64
		paper string
	}{{0.5, "6x"}, {0.25, "17x"}} {
		p4, err := statespace.SolveP4Homogeneous(n, node, c.sigma, model.Groupput, nil)
		if err != nil {
			return nil, err
		}
		ratio := p4.Throughput / lpG.Throughput
		t2.Rows = append(t2.Rows, []string{
			fmt.Sprintf("%.2f", c.sigma),
			f3(ratio), f3(pandaRatio),
			fmt.Sprintf("%.1fx", ratio/pandaRatio),
			c.paper,
		})
	}
	return []*Table{t1, t2}, nil
}
