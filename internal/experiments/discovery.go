package experiments

import (
	"fmt"

	"econcast/internal/apps"
	"econcast/internal/baselines"
	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/sim"
	"econcast/internal/statespace"
	"econcast/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "discovery",
		Title: "Extension: neighbor-discovery and gossip-spread times over EconCast",
		Run:   runDiscovery,
	})
}

// runDiscovery evaluates the paper's two motivating applications end to
// end: pairwise neighbor discovery (comparable to Searchlight's
// worst-case metric) and store-and-forward rumor dissemination.
func runDiscovery(opts Options) ([]*Table, error) {
	node := model.Node{
		Budget:        10 * model.MicroWatt,
		ListenPower:   500 * model.MicroWatt,
		TransmitPower: 500 * model.MicroWatt,
	}
	reps := 10
	duration := 6000.0
	if opts.Quick {
		reps = 3
		duration = 3000
	}
	wcl, err := baselines.SearchlightWorstCaseLatency(node, baselines.SearchlightConfig{})
	if err != nil {
		return nil, err
	}

	disc := &Table{
		Name: "Neighbor discovery: time until all ordered pairs have met (seconds)",
		Notes: fmt.Sprintf("EconCast groupput mode, warm-started; Searchlight pairwise worst case: %.0f s; "+
			"%d runs per row", wcl, reps),
		Head: []string{"N", "sigma", "mean pairwise", "full discovery (mean)", "full (max)", "complete runs"},
	}
	goss := &Table{
		Name: "Gossip: rumor spread from one node (seconds)",
		Head: []string{"N", "sigma", "mode", "half coverage", "full coverage", "complete runs"},
	}

	for _, n := range []int{5, 10} {
		for _, sigma := range []float64{0.5, 0.25} {
			nw := model.Homogeneous(n, node.Budget, node.ListenPower, node.TransmitPower)
			ref, err := statespace.SolveP4(nw, sigma, model.Groupput, nil)
			if err != nil {
				return nil, err
			}
			var pairMean, fullMean stats.Accumulator
			fullMax := 0.0
			complete := 0
			for rep := 0; rep < reps; rep++ {
				const start = 200.0
				d := apps.NewDiscovery(n, start)
				_, err := sim.Run(sim.Config{
					Network:   nw,
					Protocol:  sim.Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: sigma, Delta: 0.1},
					Duration:  duration,
					Warmup:    start,
					Seed:      opts.Seed + uint64(rep) + uint64(n)*50 + uint64(sigma*1000),
					WarmEta:   ref.Eta,
					OnDeliver: d.OnDeliver,
				})
				if err != nil {
					return nil, err
				}
				if m, err := d.MeanPairwise(); err == nil {
					pairMean.Add(m)
				}
				if full, ok := d.FullDiscoveryTime(); ok {
					complete++
					fullMean.Add(full)
					if full > fullMax {
						fullMax = full
					}
				}
			}
			disc.Rows = append(disc.Rows, []string{
				fmt.Sprintf("%d", n), fmt.Sprintf("%.2f", sigma),
				f3(pairMean.Mean()), f3(fullMean.Mean()), f3(fullMax),
				fmt.Sprintf("%d/%d", complete, reps),
			})

			// Gossip spread in both modes.
			for _, mode := range []model.Mode{model.Anyput, model.Groupput} {
				refM, err := statespace.SolveP4(nw, sigma, mode, nil)
				if err != nil {
					return nil, err
				}
				var half, full stats.Accumulator
				completeG := 0
				for rep := 0; rep < reps; rep++ {
					const start = 200.0
					g := apps.NewGossip(n)
					rumor, injected := 0, false
					_, err := sim.Run(sim.Config{
						Network:  nw,
						Protocol: sim.Protocol{Mode: mode, Variant: econcast.Capture, Sigma: sigma, Delta: 0.1},
						Duration: duration,
						Warmup:   start,
						Seed:     opts.Seed + 1000 + uint64(rep) + uint64(n)*50 + uint64(sigma*1000),
						WarmEta:  refM.Eta,
						OnDeliver: func(tx, rx int, now float64) {
							if !injected && now >= start {
								rumor, _ = g.Inject(0, now)
								injected = true
							}
							g.OnDeliver(tx, rx, now)
						},
					})
					if err != nil {
						return nil, err
					}
					if !injected {
						continue
					}
					if h, ok := g.HalfSpreadTime(rumor); ok {
						half.Add(h)
					}
					if f, ok := g.SpreadTime(rumor); ok {
						completeG++
						full.Add(f)
					}
				}
				goss.Rows = append(goss.Rows, []string{
					fmt.Sprintf("%d", n), fmt.Sprintf("%.2f", sigma), mode.String(),
					f3(half.Mean()), f3(full.Mean()),
					fmt.Sprintf("%d/%d", completeG, reps),
				})
			}
		}
	}
	return []*Table{disc, goss}, nil
}
