package experiments

import (
	"fmt"
	"math"

	"econcast/internal/apps"
	"econcast/internal/baselines"
	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/sim"
	"econcast/internal/statespace"
	"econcast/internal/stats"
	"econcast/internal/sweep"
)

func init() {
	register(Experiment{
		ID:    "discovery",
		Title: "Extension: neighbor-discovery and gossip-spread times over EconCast",
		Run:   runDiscovery,
	})
}

// discoveryCell is one replicate's outcome: the discovery fields for a
// neighbor-discovery rep, or the gossip fields for a gossip rep.
type discoveryCell struct {
	pair     float64
	pairOK   bool
	full     float64
	fullOK   bool
	half     float64
	halfOK   bool
	injected bool
}

// runDiscovery evaluates the paper's two motivating applications end to
// end: pairwise neighbor discovery (comparable to Searchlight's
// worst-case metric) and store-and-forward rumor dissemination.
// Every replicate is an independent sweep cell; the accumulators are fed
// in cell index order, so the reported means are byte-identical at any
// worker count.
func runDiscovery(opts Options) ([]*Table, error) {
	node := model.Node{
		Budget:        10 * model.MicroWatt,
		ListenPower:   500 * model.MicroWatt,
		TransmitPower: 500 * model.MicroWatt,
	}
	reps := 10
	duration := 6000.0
	if opts.Quick {
		reps = 3
		duration = 3000
	}
	wcl, err := baselines.SearchlightWorstCaseLatency(node, baselines.SearchlightConfig{})
	if err != nil {
		return nil, err
	}

	disc := &Table{
		Name: "Neighbor discovery: time until all ordered pairs have met (seconds)",
		Notes: fmt.Sprintf("EconCast groupput mode, warm-started; Searchlight pairwise worst case: %.0f s; "+
			"%d runs per row", wcl, reps),
		Head: []string{"N", "sigma", "mean pairwise", "full discovery (mean)", "full (max)", "complete runs"},
	}
	goss := &Table{
		Name: "Gossip: rumor spread from one node (seconds)",
		Head: []string{"N", "sigma", "mode", "half coverage", "full coverage", "complete runs"},
	}

	ns := []int{5, 10}
	sigmas := []float64{0.5, 0.25}
	gossipModes := []model.Mode{model.Anyput, model.Groupput}

	// Per (n, sigma) combo: reps discovery cells followed by reps gossip
	// cells per mode, all in one flat sweep.
	var cells []sweep.Cell[discoveryCell]
	for _, n := range ns {
		n := n
		for _, sigma := range sigmas {
			sigma := sigma
			nw := model.Homogeneous(n, node.Budget, node.ListenPower, node.TransmitPower)
			ref, err := statespace.SolveP4(nw, sigma, model.Groupput, nil)
			if err != nil {
				return nil, err
			}
			for rep := 0; rep < reps; rep++ {
				rep := rep
				cells = append(cells, func() (discoveryCell, error) {
					const start = 200.0
					d := apps.NewDiscovery(n, start)
					_, err := sim.Run(sim.Config{
						Network:   nw,
						Protocol:  sim.Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: sigma, Delta: 0.1},
						Duration:  duration,
						Warmup:    start,
						Seed:      rng.DeriveSeed(opts.Seed, 10, uint64(n), math.Float64bits(sigma), uint64(rep)),
						WarmEta:   ref.Eta,
						OnDeliver: d.OnDeliver,
					})
					if err != nil {
						return discoveryCell{}, err
					}
					var c discoveryCell
					if m, err := d.MeanPairwise(); err == nil {
						c.pair, c.pairOK = m, true
					}
					if full, ok := d.FullDiscoveryTime(); ok {
						c.full, c.fullOK = full, true
					}
					return c, nil
				})
			}
			for _, mode := range gossipModes {
				mode := mode
				refM, err := statespace.SolveP4(nw, sigma, mode, nil)
				if err != nil {
					return nil, err
				}
				for rep := 0; rep < reps; rep++ {
					rep := rep
					cells = append(cells, func() (discoveryCell, error) {
						const start = 200.0
						g := apps.NewGossip(n)
						rumor, injected := 0, false
						_, err := sim.Run(sim.Config{
							Network:  nw,
							Protocol: sim.Protocol{Mode: mode, Variant: econcast.Capture, Sigma: sigma, Delta: 0.1},
							Duration: duration,
							Warmup:   start,
							Seed:     rng.DeriveSeed(opts.Seed, 11, uint64(n), math.Float64bits(sigma), uint64(mode), uint64(rep)),
							WarmEta:  refM.Eta,
							OnDeliver: func(tx, rx int, now float64) {
								if !injected && now >= start {
									rumor, _ = g.Inject(0, now)
									injected = true
								}
								g.OnDeliver(tx, rx, now)
							},
						})
						if err != nil {
							return discoveryCell{}, err
						}
						c := discoveryCell{injected: injected}
						if !injected {
							return c, nil
						}
						if h, ok := g.HalfSpreadTime(rumor); ok {
							c.half, c.halfOK = h, true
						}
						if f, ok := g.SpreadTime(rumor); ok {
							c.full, c.fullOK = f, true
						}
						return c, nil
					})
				}
			}
		}
	}
	res, err := sweep.Run(opts.Workers, cells)
	if err != nil {
		return nil, err
	}

	off := 0
	for _, n := range ns {
		for _, sigma := range sigmas {
			var pairMean, fullMean stats.Accumulator
			fullMax := 0.0
			complete := 0
			for rep := 0; rep < reps; rep++ {
				c := res[off]
				off++
				if c.pairOK {
					pairMean.Add(c.pair)
				}
				if c.fullOK {
					complete++
					fullMean.Add(c.full)
					if c.full > fullMax {
						fullMax = c.full
					}
				}
			}
			disc.Rows = append(disc.Rows, []string{
				fmt.Sprintf("%d", n), fmt.Sprintf("%.2f", sigma),
				f3(pairMean.Mean()), f3(fullMean.Mean()), f3(fullMax),
				fmt.Sprintf("%d/%d", complete, reps),
			})

			for _, mode := range gossipModes {
				var half, full stats.Accumulator
				completeG := 0
				for rep := 0; rep < reps; rep++ {
					c := res[off]
					off++
					if !c.injected {
						continue
					}
					if c.halfOK {
						half.Add(c.half)
					}
					if c.fullOK {
						completeG++
						full.Add(c.full)
					}
				}
				goss.Rows = append(goss.Rows, []string{
					fmt.Sprintf("%d", n), fmt.Sprintf("%.2f", sigma), mode.String(),
					f3(half.Mean()), f3(full.Mean()),
					fmt.Sprintf("%d/%d", completeG, reps),
				})
			}
		}
	}
	return []*Table{disc, goss}, nil
}
