// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV, §VII, §VIII): each experiment is a named runner that
// produces the same rows or series the paper reports, computed from this
// repository's oracle solvers, state-space analysis, simulators, baselines,
// and testbed emulator. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"econcast/internal/viz"
)

// Options tunes a run. Quick mode shrinks sample counts and simulation
// horizons so the whole suite finishes in seconds (used by tests and
// benchmarks); full mode reproduces publication-quality estimates.
type Options struct {
	Quick bool
	Seed  uint64

	// Workers bounds the sweep worker pool used by the simulation-heavy
	// experiments (<= 0 selects GOMAXPROCS). Output is byte-identical at
	// any worker count: cells are independent, seeds are derived by
	// splitmix mixing from Seed and the cell parameters, and results are
	// collected in cell index order (see internal/sweep).
	Workers int
}

// Table is a printable result: a header row plus data rows. Tables that
// correspond to one of the paper's figures also carry a Chart, rendered to
// SVG by cmd/experiments -svg.
type Table struct {
	Name  string
	Notes string
	Head  []string
	Rows  [][]string
	Chart *viz.Chart
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Name)
	if t.Notes != "" {
		fmt.Fprintf(&b, "%s\n", t.Notes)
	}
	widths := make([]int, len(t.Head))
	for i, h := range t.Head {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Head)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) ([]*Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.1f%%", 100*v)
}
func sci(v float64) string { return fmt.Sprintf("%.3g", v) }

// CSV renders the table as comma-separated values (header first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Head)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
