//go:build race

package experiments

// raceEnabled reports whether the test binary was built with the race
// detector. See determinism_test.go for why the sweep byte-identity
// tests skip under it.
const raceEnabled = true
