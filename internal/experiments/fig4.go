package experiments

import (
	"fmt"
	"math"

	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/sim"
	"econcast/internal/statespace"
	"econcast/internal/sweep"
	"econcast/internal/viz"
)

func init() {
	register(Experiment{
		ID:    "fig4",
		Title: "Fig. 4: average burst length vs sigma (analytic curves + simulation markers)",
		Run:   runFig4,
	})
}

// fig4Cell holds everything one sigma contributes: analytic burst lengths
// per network size, simulated means (NaN where no marker is simulated),
// and the anyput curve values.
type fig4Cell struct {
	analytic []float64
	simMean  []float64
	anyCurve float64
	anyput   []float64
}

func runFig4(opts Options) ([]*Table, error) {
	ns := []int{5, 10}
	curveSigmas := []float64{0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.75, 1.0}
	node := model.Node{
		Budget:        10 * model.MicroWatt,
		ListenPower:   500 * model.MicroWatt,
		TransmitPower: 500 * model.MicroWatt,
	}

	tg := &Table{
		Name:  "Fig. 4(a): groupput average burst length (eq. 34)",
		Notes: "curves analytic; markers from simulation at sigma in {0.25, 0.5}",
		Head:  []string{"sigma", "N=5 analytic", "N=10 analytic", "N=5 sim", "N=10 sim"},
	}
	ta := &Table{
		Name: "Fig. 4(b): anyput average burst length (eq. 35: e^{1/sigma}, independent of N)",
		Head: []string{"sigma", "analytic", "N=5 analytic", "N=10 analytic"},
	}

	simAt := map[float64]bool{0.25: true, 0.5: true}
	duration, warmup := 20000.0, 500.0
	if opts.Quick {
		duration, warmup = 3000, 200
	}

	chart := &viz.Chart{
		Title:    "Fig. 4(a): groupput average burst length",
		Subtitle: "rho=10uW, L=X=500uW; curves analytic (eq. 34), markers simulated",
		XLabel:   "sigma", YLabel: "average burst length (packets)",
		YLog: true,
	}
	chart.Series = append(chart.Series,
		viz.Series{Name: "N=5 analytic"},
		viz.Series{Name: "N=10 analytic"},
		viz.Series{Name: "N=5 sim", MarkersOnly: true},
		viz.Series{Name: "N=10 sim", MarkersOnly: true},
	)

	cells := make([]sweep.Cell[fig4Cell], 0, len(curveSigmas))
	for _, sigma := range curveSigmas {
		sigma := sigma
		cells = append(cells, func() (fig4Cell, error) {
			c := fig4Cell{anyCurve: statespace.AnyputBurstLength(sigma)}
			for _, n := range ns {
				res, err := statespace.SolveP4Homogeneous(n, node, sigma, model.Groupput, nil)
				if err != nil {
					return fig4Cell{}, err
				}
				c.analytic = append(c.analytic, res.BurstLength)
			}
			for _, n := range ns {
				if !simAt[sigma] {
					c.simMean = append(c.simMean, math.NaN())
					continue
				}
				nw := model.Homogeneous(n, node.Budget, node.ListenPower, node.TransmitPower)
				ref, err := statespace.SolveP4(nw, sigma, model.Groupput, nil)
				if err != nil {
					return fig4Cell{}, err
				}
				m, err := sim.Run(sim.Config{
					Network:   nw,
					Protocol:  sim.Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: sigma},
					Duration:  duration,
					Warmup:    warmup,
					Seed:      rng.DeriveSeed(opts.Seed, uint64(n), math.Float64bits(sigma)),
					WarmEta:   ref.Eta,
					FreezeEta: true,
				})
				if err != nil {
					return fig4Cell{}, err
				}
				c.simMean = append(c.simMean, m.BurstLengths.Mean())
			}
			for _, n := range ns {
				res, err := statespace.SolveP4Homogeneous(n, node, sigma, model.Anyput, nil)
				if err != nil {
					return fig4Cell{}, err
				}
				c.anyput = append(c.anyput, res.BurstLength)
			}
			return c, nil
		})
	}
	res, err := sweep.Run(opts.Workers, cells)
	if err != nil {
		return nil, err
	}

	for i, sigma := range curveSigmas {
		c := res[i]
		rowG := []string{fmt.Sprintf("%.2f", sigma)}
		for ni := range ns {
			rowG = append(rowG, sci(c.analytic[ni]))
			chart.Series[ni].X = append(chart.Series[ni].X, sigma)
			chart.Series[ni].Y = append(chart.Series[ni].Y, c.analytic[ni])
		}
		for ni := range ns {
			mean := c.simMean[ni]
			if math.IsNaN(mean) {
				rowG = append(rowG, "-")
				continue
			}
			rowG = append(rowG, sci(mean))
			if mean > 0 {
				chart.Series[2+ni].X = append(chart.Series[2+ni].X, sigma)
				chart.Series[2+ni].Y = append(chart.Series[2+ni].Y, mean)
			}
		}
		tg.Rows = append(tg.Rows, rowG)

		rowA := []string{fmt.Sprintf("%.2f", sigma), sci(c.anyCurve)}
		for ni := range ns {
			rowA = append(rowA, sci(c.anyput[ni]))
		}
		ta.Rows = append(ta.Rows, rowA)
	}
	tg.Chart = chart
	return []*Table{tg, ta}, nil
}
