package experiments

import (
	"fmt"

	"econcast/internal/baselines"
	"econcast/internal/model"
	"econcast/internal/oracle"
	"econcast/internal/statespace"
	"econcast/internal/viz"
)

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "Fig. 3: throughput ratio vs X/L with Panda/Birthday/Searchlight (N=5, rho=10uW, L+X=1mW)",
		Run:   runFig3,
	})
}

// fig3Ratios are the X/L values of the paper's x-axis.
var fig3Ratios = []struct {
	label  string
	xOverL float64
}{
	{"1/9", 1.0 / 9}, {"1/4", 0.25}, {"3/7", 3.0 / 7}, {"2/3", 2.0 / 3},
	{"1", 1}, {"3/2", 1.5}, {"7/3", 7.0 / 3}, {"4", 4}, {"9", 9},
}

func runFig3(opts Options) ([]*Table, error) {
	const (
		n     = 5
		rho   = 10 * model.MicroWatt
		total = model.MilliWatt // L + X
		theta = 1e-3
	)
	sigmas := []float64{0.1, 0.25, 0.5}

	tg := &Table{
		Name: "Fig. 3(a): groupput ratio T^sigma_g/T*_g vs X/L, with prior art",
		Head: []string{"X/L", "sigma=0.1", "sigma=0.25", "sigma=0.5",
			"Panda", "Birthday", "Searchlight"},
	}
	ta := &Table{
		Name: "Fig. 3(b): anyput ratio T^sigma_a/T*_a vs X/L",
		Head: []string{"X/L", "sigma=0.1", "sigma=0.25", "sigma=0.5"},
	}
	const chartFloor = 1e-4 // log-axis display floor; full values in the table
	gNames := []string{"sigma=0.10", "sigma=0.25", "sigma=0.50", "Panda", "Birthday", "Searchlight"}
	cg := &viz.Chart{
		Title:    "Fig. 3(a): groupput ratio vs X/L",
		Subtitle: "N=5, rho=10uW, L+X=1mW; points below 1e-4 omitted (see table)",
		XLabel:   "X/L", YLabel: "T^sigma_g / T*_g",
		XLog: true, YLog: true,
	}
	for _, n := range gNames {
		cg.Series = append(cg.Series, viz.Series{Name: n})
	}
	ca := &viz.Chart{
		Title:    "Fig. 3(b): anyput ratio vs X/L",
		Subtitle: "N=5, rho=10uW, L+X=1mW; points below 1e-4 omitted (see table)",
		XLabel:   "X/L", YLabel: "T^sigma_a / T*_a",
		XLog: true, YLog: true,
	}
	for _, n := range gNames[:3] {
		ca.Series = append(ca.Series, viz.Series{Name: n})
	}
	addPoint := func(c *viz.Chart, si int, x, y float64) {
		if y >= chartFloor {
			c.Series[si].X = append(c.Series[si].X, x)
			c.Series[si].Y = append(c.Series[si].Y, y)
		}
	}

	for _, r := range fig3Ratios {
		l := total / (1 + r.xOverL)
		x := total - l
		node := model.Node{Budget: rho, ListenPower: l, TransmitPower: x}
		nw := model.Homogeneous(n, rho, l, x)

		og, err := oracle.Groupput(nw)
		if err != nil {
			return nil, err
		}
		oa, err := oracle.Anyput(nw)
		if err != nil {
			return nil, err
		}

		rowG := []string{r.label}
		rowA := []string{r.label}
		for si, sigma := range sigmas {
			pg, err := statespace.SolveP4(nw, sigma, model.Groupput, nil)
			if err != nil {
				return nil, err
			}
			pa, err := statespace.SolveP4(nw, sigma, model.Anyput, nil)
			if err != nil {
				return nil, err
			}
			rowG = append(rowG, f3(pg.Throughput/og.Throughput))
			rowA = append(rowA, f3(pa.Throughput/oa.Throughput))
			addPoint(cg, si, r.xOverL, pg.Throughput/og.Throughput)
			addPoint(ca, si, r.xOverL, pa.Throughput/oa.Throughput)
		}

		panda, err := baselines.PandaOptimize(n, node, theta, model.Groupput)
		if err != nil {
			return nil, err
		}
		bday, err := baselines.BirthdayOptimize(n, node, model.Groupput)
		if err != nil {
			return nil, err
		}
		sl, err := baselines.SearchlightThroughputUpperBound(n, node, baselines.SearchlightConfig{})
		if err != nil {
			return nil, err
		}
		rowG = append(rowG,
			f3(panda.Groupput/og.Throughput),
			f3(bday.Groupput/og.Throughput),
			f3(sl/og.Throughput))
		addPoint(cg, 3, r.xOverL, panda.Groupput/og.Throughput)
		addPoint(cg, 4, r.xOverL, bday.Groupput/og.Throughput)
		addPoint(cg, 5, r.xOverL, sl/og.Throughput)
		tg.Rows = append(tg.Rows, rowG)
		ta.Rows = append(ta.Rows, rowA)
	}
	tg.Chart = cg
	ta.Chart = ca
	tg.Notes = fmt.Sprintf("oracle at X/L=1: T*_g=%s; shape target: EconCast >> baselines near X~L, ratios rise as sigma falls",
		func() string {
			nw := model.Homogeneous(n, rho, 0.5*total, 0.5*total)
			og, _ := oracle.Groupput(nw)
			return f4(og.Throughput)
		}())
	return []*Table{tg, ta}, nil
}
