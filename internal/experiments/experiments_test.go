package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quick() Options { return Options{Quick: true, Seed: 1} }

func runOne(t *testing.T, id string) []*Table {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	tables, err := e.Run(quick())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s: no tables", id)
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: empty table %q", id, tb.Name)
		}
		out := tb.Format()
		if !strings.Contains(out, tb.Name) {
			t.Fatalf("%s: Format missing name", id)
		}
	}
	return tables
}

func cell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(tb.Rows[row][col], "%")
	s = strings.TrimSuffix(s, "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tb.Rows[row][col], err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"table3", "table4", "text-homog", "ablations", "discovery", "topologies",
		"convergence", "harvesting", "churn", "faults", "scale"}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("missing experiment %q", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestTable2(t *testing.T) {
	tables := runOne(t, "table2")
	het := tables[0]
	// Awake fractions must match the paper closely (they equal rho/L).
	wantAwake := []float64{0.5, 1.0, 5.0, 10.0}
	for i, want := range wantAwake {
		got := cell(t, het, i, 2)
		if got < want*0.8 || got > want*1.05 {
			t.Errorf("node %d awake %.2f%%, paper %.1f%%", i+1, got, want)
		}
	}
	// Transmit-when-awake must increase with the budget (the paper's key
	// qualitative point).
	prev := -1.0
	for i := range wantAwake {
		got := cell(t, het, i, 4)
		if got <= prev {
			t.Errorf("tx-when-awake not increasing at node %d: %v after %v", i+1, got, prev)
		}
		prev = got
	}
	// Homogeneous variant: 25% transmit when awake.
	hom := tables[1]
	if got := cell(t, hom, 1, 1); got < 20 || got > 30 {
		t.Errorf("homogeneous tx-when-awake %.1f%%, want ~25%%", got)
	}
}

func TestFig2Shape(t *testing.T) {
	tables := runOne(t, "fig2")
	for _, tb := range tables {
		for r := range tb.Rows {
			// Ratios must increase as sigma decreases: col1 (0.1) > col3
			// (0.25) > col5 (0.5); all within (0, 1].
			v01, v025, v05 := cell(t, tb, r, 1), cell(t, tb, r, 3), cell(t, tb, r, 5)
			if !(v01 > v025 && v025 > v05) {
				t.Errorf("%s row %d: ratios not ordered: %v %v %v", tb.Name, r, v01, v025, v05)
			}
			for _, v := range []float64{v01, v025, v05} {
				if v <= 0 || v > 1.001 {
					t.Errorf("%s row %d: ratio %v out of range", tb.Name, r, v)
				}
			}
		}
	}
}

func TestFig3Shape(t *testing.T) {
	tables := runOne(t, "fig3")
	tg := tables[0]
	// Find the X/L = 1 row.
	var unity int = -1
	for i, row := range tg.Rows {
		if row[0] == "1" {
			unity = i
		}
	}
	if unity < 0 {
		t.Fatal("no X/L=1 row")
	}
	econ025 := cell(t, tg, unity, 2)
	panda := cell(t, tg, unity, 4)
	bday := cell(t, tg, unity, 5)
	sl := cell(t, tg, unity, 6)
	if econ025/panda < 5 {
		t.Errorf("EconCast(0.25)/Panda = %.1f, expected >> 1", econ025/panda)
	}
	for _, base := range []float64{panda, bday, sl} {
		if base <= 0 || base >= econ025 {
			t.Errorf("baseline ratio %v not below EconCast %v", base, econ025)
		}
	}
	// EconCast's ratio peaks near X/L = 1 relative to the extremes.
	first := cell(t, tg, 0, 2)
	last := cell(t, tg, len(tg.Rows)-1, 2)
	if !(econ025 > first && econ025 > last) {
		t.Errorf("ratio at X/L=1 (%v) not above extremes (%v, %v)", econ025, first, last)
	}
}

func TestFig4Shape(t *testing.T) {
	tables := runOne(t, "fig4")
	tg := tables[0]
	// Analytic N=10 burst at sigma=0.25 should be around the paper's ~85.
	var v025 float64
	for r := range tg.Rows {
		if tg.Rows[r][0] == "0.25" {
			v025 = cell(t, tg, r, 2)
		}
	}
	if v025 < 20 || v025 > 500 {
		t.Errorf("N=10 sigma=0.25 analytic burst %v, paper ~85", v025)
	}
	// Anyput burst at sigma=0.25 is e^4 ~ 54.6 regardless of N.
	ta := tables[1]
	for r := range ta.Rows {
		if ta.Rows[r][0] == "0.25" {
			if v := cell(t, ta, r, 1); v < 54 || v > 55 {
				t.Errorf("anyput burst %v, want e^4", v)
			}
			if n5, n10 := cell(t, ta, r, 2), cell(t, ta, r, 3); n5 != n10 {
				t.Errorf("anyput burst depends on N: %v vs %v", n5, n10)
			}
		}
	}
}

func TestFig5Runs(t *testing.T) {
	tables := runOne(t, "fig5")
	tg := tables[0]
	if !strings.Contains(tg.Notes, "125") {
		t.Errorf("Searchlight note missing 125 s anchor: %q", tg.Notes)
	}
	for r := range tg.Rows {
		if samples := cell(t, tg, r, 4); samples <= 0 {
			t.Errorf("row %d: no latency samples", r)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	tables := runOne(t, "fig6")
	tb := tables[0]
	for r := range tb.Rows {
		lower := cell(t, tb, r, 1)
		upper := cell(t, tb, r, 2)
		if upper < lower-1e-9 {
			t.Errorf("row %d: upper %v < lower %v", r, upper, lower)
		}
		sim025 := cell(t, tb, r, 3)
		if sim025 <= 0 || sim025 > upper {
			t.Errorf("row %d: sim %v outside (0, %v]", r, sim025, upper)
		}
	}
}

func TestFig7AndTables(t *testing.T) {
	tables := runOne(t, "fig7")
	tb := tables[0]
	for r := range tb.Rows {
		ideal := cell(t, tb, r, 3)
		relaxed := cell(t, tb, r, 4)
		if ideal <= 5 || ideal > 110 {
			t.Errorf("row %d: Ideal %v%% implausible", r, ideal)
		}
		// Relaxed divides by T^sigma at the (higher) actual consumption, so
		// it cannot exceed Ideal under our convention.
		if relaxed > ideal+1e-9 {
			t.Errorf("row %d: Relaxed %v%% above Ideal %v%%", r, relaxed, ideal)
		}
		mean := cell(t, tb, r, 5)
		if mean < 0.9 || mean > 1.3 {
			t.Errorf("row %d: power/rho %v implausible", r, mean)
		}
	}

	t3 := runOne(t, "table3")[0]
	for r := range t3.Rows {
		improvement := cell(t, t3, r, 3)
		if improvement < 1 {
			t.Errorf("Table III row %d: EconCast did not beat Panda (%vx)", r, improvement)
		}
	}

	t4 := runOne(t, "table4")[0]
	// rho=1mW row: zero pings dominate; rho=5mW row: fewer zeros.
	z1 := cell(t, t4, 0, 1)
	z5 := cell(t, t4, 1, 1)
	if z1 < 50 {
		t.Errorf("rho=1mW zero-ping fraction %v%%, paper 89%%", z1)
	}
	if z5 >= z1 {
		t.Errorf("zero-ping fraction did not drop with budget: %v vs %v", z5, z1)
	}
}

func TestClaims(t *testing.T) {
	tables := runOne(t, "text-homog")
	cf := tables[0]
	// Closed form == LP.
	if cell(t, cf, 0, 1) != cell(t, cf, 0, 2) {
		t.Errorf("groupput closed form %v != LP %v", cf.Rows[0][1], cf.Rows[0][2])
	}
	claim := tables[1]
	// Improvements should be in the neighborhood of the paper's 6x / 17x.
	imp05 := cell(t, claim, 0, 3)
	imp025 := cell(t, claim, 1, 3)
	if imp05 < 3 || imp05 > 12 {
		t.Errorf("sigma=0.5 improvement %vx, paper 6x", imp05)
	}
	if imp025 < 9 || imp025 > 30 {
		t.Errorf("sigma=0.25 improvement %vx, paper 17x", imp025)
	}
	if imp025 <= imp05 {
		t.Errorf("improvement ordering wrong: %v <= %v", imp025, imp05)
	}
}

func TestAblations(t *testing.T) {
	tables := runOne(t, "ablations")
	if len(tables) != 4 {
		t.Fatalf("%d ablation tables", len(tables))
	}
	// Ping noise: throughput decreases (weakly) as loss grows.
	noise := tables[0]
	clean := cell(t, noise, 0, 1)
	worst := cell(t, noise, len(noise.Rows)-1, 1)
	if worst > clean*1.15 {
		t.Errorf("throughput grew under ping loss: %v -> %v", clean, worst)
	}
	// C vs NC: same-order throughput, NC hold length exactly 1.
	cvn := tables[2]
	gC := cell(t, cvn, 0, 1)
	gNC := cell(t, cvn, 1, 1)
	if gNC < gC*0.7 || gNC > gC*1.3 {
		t.Errorf("C vs NC throughput differ too much: %v vs %v", gC, gNC)
	}
	if hold := cell(t, cvn, 1, 2); hold != 1 {
		t.Errorf("NC hold length %v, want 1", hold)
	}
	if holdC := cell(t, cvn, 0, 2); holdC <= 2 {
		t.Errorf("C hold length %v, want > 2", holdC)
	}
	// Storage: throughput non-decreasing in store size (allow noise).
	store := tables[3]
	small := cell(t, store, 0, 1)
	large := cell(t, store, len(store.Rows)-1, 1)
	if large < small*0.8 {
		t.Errorf("throughput fell with more storage: %v -> %v", small, large)
	}
}

func TestDiscoveryExperiment(t *testing.T) {
	tables := runOne(t, "discovery")
	disc := tables[0]
	for r := range disc.Rows {
		if mean := cell(t, disc, r, 2); mean <= 0 {
			t.Errorf("row %d: mean pairwise %v", r, mean)
		}
	}
	goss := tables[1]
	for r := range goss.Rows {
		if half := cell(t, goss, r, 3); half < 0 {
			t.Errorf("row %d: half-spread %v", r, half)
		}
	}
}

func TestTopologiesExperiment(t *testing.T) {
	tb := runOne(t, "topologies")[0]
	for r := range tb.Rows {
		lower := cell(t, tb, r, 1)
		exact := cell(t, tb, r, 2)
		upper := cell(t, tb, r, 3)
		if !(lower-1e-9 <= exact && exact <= upper+1e-9) {
			t.Errorf("%s: exact %v outside [%v, %v]", tb.Rows[r][0], exact, lower, upper)
		}
		if sim := cell(t, tb, r, 4); sim <= 0 || sim > exact+1e-9 {
			t.Errorf("%s: sim %v outside (0, exact]", tb.Rows[r][0], sim)
		}
	}
}

func TestScaleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-thousand-node sims in -short mode")
	}
	if raceEnabled {
		t.Skip("multi-thousand-node sims under -race (the CI smoke step covers the sharded engine under race)")
	}
	tb := runOne(t, "scale")[0]
	if len(tb.Rows) != 4 {
		t.Fatalf("%d scale rows in quick mode, want 4", len(tb.Rows))
	}
	for r := range tb.Rows {
		if shards := cell(t, tb, r, 2); shards < 2 {
			t.Errorf("row %d: %v shards — the sharded engine did not run", r, shards)
		}
		if events := cell(t, tb, r, 3); events <= 0 {
			t.Errorf("row %d: no events dispatched", r)
		}
		// Aggregate groupput: spatial reuse lets concurrent deliveries sum
		// far past 1, but it cannot exceed one delivery per node-second.
		if g, n := cell(t, tb, r, 5), cell(t, tb, r, 1); g <= 0 || g > n {
			t.Errorf("row %d: aggregate groupput %v outside (0, N=%v]", r, g, n)
		}
	}
	// Event counts must grow with N within each family (rows are ordered
	// small-to-large per family and horizons shrink only 10x while N grows
	// 10x at matched density).
	if e1, e2 := cell(t, tb, 0, 3), cell(t, tb, 1, 3); e2 <= e1 {
		t.Errorf("grid events did not grow with N: %v -> %v", e1, e2)
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{
		Head: []string{"a", "b"},
		Rows: [][]string{{"1", "x,y"}, {"2", `quote"inside`}},
	}
	got := tb.CSV()
	want := "a,b\n1,\"x,y\"\n2,\"quote\"\"inside\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestConvergenceExperiment(t *testing.T) {
	tb := runOne(t, "convergence")[0]
	for r := range tb.Rows {
		g := cell(t, tb, r, 3)
		if g <= 0 {
			t.Errorf("row %d: groupput %v", r, g)
		}
	}
}

func TestHarvestingExperiment(t *testing.T) {
	tb := runOne(t, "harvesting")[0]
	// Slow deep swings approach the Jensen average of the endpoint
	// throughputs, which exceeds the constant-budget value because
	// T^sigma is convex in rho.
	deepSim := cell(t, tb, len(tb.Rows)-1, 1)
	deepJensen := cell(t, tb, len(tb.Rows)-1, 3)
	if deepSim < 0.5*deepJensen || deepSim > 1.3*deepJensen {
		t.Errorf("deep-swing sim %v vs Jensen prediction %v", deepSim, deepJensen)
	}
	constSim := cell(t, tb, 0, 1)
	if deepSim <= constSim {
		t.Errorf("slow deep swing (%v) should beat constant (%v) at fixed sigma", deepSim, constSim)
	}
	for r := range tb.Rows {
		if p := cell(t, tb, r, 4); p < 8 || p > 12 {
			t.Errorf("row %d: mean power %v uW, want ~10", r, p)
		}
	}
}

func TestChurnExperiment(t *testing.T) {
	tb := runOne(t, "churn")[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("%d epochs", len(tb.Rows))
	}
	before := cell(t, tb, 0, 3)
	absent := cell(t, tb, 1, 3)
	after := cell(t, tb, 2, 3)
	if absent >= before {
		t.Errorf("absent epoch %v not below before %v", absent, before)
	}
	if after <= absent {
		t.Errorf("after epoch %v did not recover above absent %v", after, absent)
	}
}

func TestFaultsExperiment(t *testing.T) {
	tables := runOne(t, "faults")
	if len(tables) != 2 {
		t.Fatalf("%d tables, want 2", len(tables))
	}
	sweepTb, killTb := tables[0], tables[1]
	clean := cell(t, sweepTb, 0, 1)
	if clean <= 0 {
		t.Fatalf("clean groupput %v", clean)
	}
	for r := 1; r < len(sweepTb.Rows); r++ {
		g := cell(t, sweepTb, r, 1)
		if g <= 0 {
			t.Errorf("scenario %q delivered nothing", sweepTb.Rows[r][0])
		}
		if ratio := cell(t, sweepTb, r, 2); ratio > 1.15 {
			t.Errorf("scenario %q beat the clean run by %vx", sweepTb.Rows[r][0], ratio)
		}
	}
	// Loss p=0.3 must degrade below p=0.1.
	if p1, p3 := cell(t, sweepTb, 1, 1), cell(t, sweepTb, 2, 1); p3 >= p1 {
		t.Errorf("30%% loss groupput %v not below 10%% loss %v", p3, p1)
	}
	if len(killTb.Rows) != 2 {
		t.Fatalf("%d kill-half epochs", len(killTb.Rows))
	}
	before := cell(t, killTb, 0, 3)
	after := cell(t, killTb, 1, 3)
	if before <= 0 || after <= 0 {
		t.Fatalf("kill-half epochs before=%v after=%v", before, after)
	}
	if after >= before {
		t.Errorf("4 survivors (%v) should deliver less than the full clique (%v)", after, before)
	}
}

// Figure tables must carry renderable charts.
func TestFigureChartsRender(t *testing.T) {
	for _, id := range []string{"fig2", "fig3", "fig4", "fig5", "fig6"} {
		tables := runOne(t, id)
		found := false
		for _, tb := range tables {
			if tb.Chart == nil {
				continue
			}
			found = true
			svg, err := tb.Chart.SVG()
			if err != nil {
				t.Errorf("%s: chart render: %v", id, err)
				continue
			}
			if !strings.Contains(svg, "</svg>") {
				t.Errorf("%s: truncated SVG", id)
			}
		}
		if !found {
			t.Errorf("%s: no chart attached", id)
		}
	}
}
