package experiments

import (
	"fmt"

	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/sim"
	"econcast/internal/statespace"
	"econcast/internal/sweep"
)

func init() {
	register(Experiment{
		ID:    "churn",
		Title: "Extension: node churn — EconCast adapts to departures and arrivals with no membership protocol",
		Run:   runChurn,
	})
}

// runChurn exercises the paper's "unacquainted" property: two of five
// nodes leave and later return; the survivors re-converge to the 3-node
// operating point and the full network re-forms afterwards, all without
// any signaling beyond the protocol's own pings.
func runChurn(opts Options) ([]*Table, error) {
	scale := 1.0
	if opts.Quick {
		scale = 0.35
	}
	leave, rejoin, horizon := 3000*scale, 6000*scale, 10000*scale
	nw := model.Homogeneous(5, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	const sigma = 0.5
	ref5, err := statespace.SolveP4(nw, sigma, model.Groupput, nil)
	if err != nil {
		return nil, err
	}
	ref3, err := statespace.SolveP4(model.Homogeneous(3, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt), sigma, model.Groupput, nil)
	if err != nil {
		return nil, err
	}
	churn := func(node int, t float64) bool {
		if node >= 3 {
			return t < leave || t >= rejoin
		}
		return true
	}
	// The engine is deterministic for a fixed seed and protocol config, so
	// re-running with different measurement windows samples one trajectory.
	// All three epoch cells therefore deliberately share one derived seed:
	// the epochs are windows over the same run, not independent samples.
	seed := rng.DeriveSeed(opts.Seed, 5)
	measure := func(warmup, duration float64) (float64, error) {
		m, err := sim.Run(sim.Config{
			Network:  nw,
			Protocol: sim.Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: sigma, Delta: 0.2},
			Duration: duration,
			Warmup:   warmup,
			Seed:     seed,
			Churn:    churn,
		})
		if err != nil {
			return 0, err
		}
		return m.Groupput, nil
	}

	t := &Table{
		Name: "Churn timeline: nodes 3-4 absent during the middle epoch (N=5, sigma=0.5)",
		Notes: fmt.Sprintf("analytic T^0.5: 5 nodes %s, 3 nodes %s; no membership signaling anywhere",
			f4(ref5.Throughput), f4(ref3.Throughput)),
		Head: []string{"epoch", "window (s)", "live nodes", "groupput", "analytic", "ratio"},
	}
	type epoch struct {
		name     string
		from, to float64
		live     int
		analytic float64
	}
	settle := (rejoin - leave) / 3
	epochs := []epoch{
		{"before", leave / 3, leave, 5, ref5.Throughput},
		{"absent", leave + settle, rejoin, 3, ref3.Throughput},
		{"after", rejoin + settle, horizon, 5, ref5.Throughput},
	}
	rows, err := sweep.Map(opts.Workers, epochs, func(_ int, ep epoch) ([]string, error) {
		g, err := measure(ep.from, ep.to)
		if err != nil {
			return nil, err
		}
		return []string{
			ep.name, fmt.Sprintf("%.0f-%.0f", ep.from, ep.to),
			fmt.Sprintf("%d", ep.live), f4(g), f4(ep.analytic), f3(g / ep.analytic),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return []*Table{t}, nil
}
