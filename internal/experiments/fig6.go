package experiments

import (
	"fmt"

	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/oracle"
	"econcast/internal/sim"
	"econcast/internal/topology"
	"econcast/internal/viz"
)

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Fig. 6: grid-topology oracle groupput and simulated EconCast groupput",
		Run:   runFig6,
	})
}

func runFig6(opts Options) ([]*Table, error) {
	sizes := []int{4, 9, 16, 25, 36, 49, 64, 81, 100}
	sigmas := []float64{0.25, 0.5, 0.75}
	duration, warmup := 20000.0, 3000.0
	if opts.Quick {
		sizes = []int{4, 9, 25}
		duration, warmup = 3000, 500
	}

	t := &Table{
		Name: "Fig. 6: grid topologies, rho=10uW, L=X=500uW",
		Notes: "T*_nc from the §IV-C bounds (exact when lower == upper); " +
			"simulated groupput uses the battery floor to survive cold start",
		Head: []string{"N", "T*_nc lower", "T*_nc upper",
			"sim sigma=0.25", "sim sigma=0.5", "sim sigma=0.75", "ratio@0.25"},
	}
	chart := &viz.Chart{
		Title:    "Fig. 6: grid-topology groupput",
		Subtitle: "rho=10uW, L=X=500uW; oracle T*_nc and simulated EconCast",
		XLabel:   "number of nodes N", YLabel: "groupput",
		YLog: true,
	}
	chart.Series = append(chart.Series,
		viz.Series{Name: "T*_nc"},
		viz.Series{Name: "sim sigma=0.25"},
		viz.Series{Name: "sim sigma=0.50"},
		viz.Series{Name: "sim sigma=0.75"},
	)
	for _, n := range sizes {
		nw := model.Homogeneous(n, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
		topo := topology.SquareGrid(n)
		lower, upper, err := oracle.GroupputNonCliqueBounds(nw, topo)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", n), f4(lower.Throughput), f4(upper.Throughput)}
		chart.Series[0].X = append(chart.Series[0].X, float64(n))
		chart.Series[0].Y = append(chart.Series[0].Y, lower.Throughput)
		var first float64
		for si, sigma := range sigmas {
			m, err := sim.Run(sim.Config{
				Network:          nw,
				Topology:         topo,
				Protocol:         sim.Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: sigma, Delta: 0.1},
				Duration:         duration,
				Warmup:           warmup,
				Seed:             opts.Seed + uint64(n),
				HardBatteryFloor: true,
				InitialBattery:   2e-3,
			})
			if err != nil {
				return nil, err
			}
			if si == 0 {
				first = m.Groupput
			}
			row = append(row, f4(m.Groupput))
			if m.Groupput > 0 {
				chart.Series[1+si].X = append(chart.Series[1+si].X, float64(n))
				chart.Series[1+si].Y = append(chart.Series[1+si].Y, m.Groupput)
			}
		}
		row = append(row, f3(first/lower.Throughput))
		t.Rows = append(t.Rows, row)
	}
	t.Chart = chart
	return []*Table{t}, nil
}
