package experiments

import (
	"fmt"
	"math"

	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/oracle"
	"econcast/internal/rng"
	"econcast/internal/sim"
	"econcast/internal/sweep"
	"econcast/internal/topology"
	"econcast/internal/viz"
)

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Fig. 6: grid-topology oracle groupput and simulated EconCast groupput",
		Run:   runFig6,
	})
}

// fig6Cell carries one sweep cell's result: either the oracle bounds for a
// grid size or one simulated groupput sample at a (size, sigma) point.
type fig6Cell struct {
	lower, upper float64
	groupput     float64
}

func runFig6(opts Options) ([]*Table, error) {
	sizes := []int{4, 9, 16, 25, 36, 49, 64, 81, 100}
	sigmas := []float64{0.25, 0.5, 0.75}
	duration, warmup := 20000.0, 3000.0
	if opts.Quick {
		sizes = []int{4, 9, 25}
		duration, warmup = 3000, 500
	}

	t := &Table{
		Name: "Fig. 6: grid topologies, rho=10uW, L=X=500uW",
		Notes: "T*_nc from the §IV-C bounds (exact when lower == upper); " +
			"simulated groupput uses the battery floor to survive cold start",
		Head: []string{"N", "T*_nc lower", "T*_nc upper",
			"sim sigma=0.25", "sim sigma=0.5", "sim sigma=0.75", "ratio@0.25"},
	}
	chart := &viz.Chart{
		Title:    "Fig. 6: grid-topology groupput",
		Subtitle: "rho=10uW, L=X=500uW; oracle T*_nc and simulated EconCast",
		XLabel:   "number of nodes N", YLabel: "groupput",
		YLog: true,
	}
	chart.Series = append(chart.Series,
		viz.Series{Name: "T*_nc"},
		viz.Series{Name: "sim sigma=0.25"},
		viz.Series{Name: "sim sigma=0.50"},
		viz.Series{Name: "sim sigma=0.75"},
	)

	// One oracle cell plus one sim cell per sigma for every grid size; the
	// stride indexes the flat cell slice back into (size, sigma) order.
	stride := 1 + len(sigmas)
	cells := make([]sweep.Cell[fig6Cell], 0, len(sizes)*stride)
	for _, n := range sizes {
		n := n
		nw := model.Homogeneous(n, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
		topo := topology.SquareGrid(n)
		cells = append(cells, func() (fig6Cell, error) {
			lower, upper, err := oracle.GroupputNonCliqueBounds(nw, topo)
			if err != nil {
				return fig6Cell{}, err
			}
			return fig6Cell{lower: lower.Throughput, upper: upper.Throughput}, nil
		})
		for _, sigma := range sigmas {
			sigma := sigma
			cells = append(cells, func() (fig6Cell, error) {
				m, err := sim.Run(sim.Config{
					Network:          nw,
					Topology:         topo,
					Protocol:         sim.Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: sigma, Delta: 0.1},
					Duration:         duration,
					Warmup:           warmup,
					Seed:             rng.DeriveSeed(opts.Seed, uint64(n), math.Float64bits(sigma)),
					HardBatteryFloor: true,
					InitialBattery:   2e-3,
				})
				if err != nil {
					return fig6Cell{}, err
				}
				return fig6Cell{groupput: m.Groupput}, nil
			})
		}
	}
	res, err := sweep.Run(opts.Workers, cells)
	if err != nil {
		return nil, err
	}

	for i, n := range sizes {
		bounds := res[i*stride]
		row := []string{fmt.Sprintf("%d", n), f4(bounds.lower), f4(bounds.upper)}
		chart.Series[0].X = append(chart.Series[0].X, float64(n))
		chart.Series[0].Y = append(chart.Series[0].Y, bounds.lower)
		var first float64
		for si := range sigmas {
			g := res[i*stride+1+si].groupput
			if si == 0 {
				first = g
			}
			row = append(row, f4(g))
			if g > 0 {
				chart.Series[1+si].X = append(chart.Series[1+si].X, float64(n))
				chart.Series[1+si].Y = append(chart.Series[1+si].Y, g)
			}
		}
		row = append(row, f3(first/bounds.lower))
		t.Rows = append(t.Rows, row)
	}
	t.Chart = chart
	return []*Table{t}, nil
}
