package experiments

import (
	"fmt"

	"econcast/internal/econcast"
	"econcast/internal/faults"
	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/sim"
	"econcast/internal/statespace"
	"econcast/internal/sweep"
)

func init() {
	register(Experiment{
		ID:    "faults",
		Title: "Extension: fault injection — graceful degradation under loss, brownouts, silence, and crashes",
		Run:   runFaults,
	})
}

func runFaults(opts Options) ([]*Table, error) {
	intensity, err := runFaultIntensity(opts)
	if err != nil {
		return nil, err
	}
	killHalf, err := runFaultKillHalf(opts)
	if err != nil {
		return nil, err
	}
	return []*Table{intensity, killHalf}, nil
}

// runFaultIntensity sweeps the shared fault processes over a 5-node
// clique and reports groupput against the fault-free run: EconCast has
// no failure-handling machinery, so any degradation comes purely from
// the eq. (17) adaptation seeing a worse channel.
func runFaultIntensity(opts Options) (*Table, error) {
	duration, warmup := 6000.0, 1500.0
	if opts.Quick {
		duration, warmup = 2000, 500
	}
	nw := model.Homogeneous(5, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	const sigma = 0.5
	ref, err := statespace.SolveP4(nw, sigma, model.Groupput, nil)
	if err != nil {
		return nil, err
	}

	type scenario struct {
		name string
		cfg  *faults.Config
	}
	scenarios := []scenario{
		{"clean", nil},
		{"iid loss p=0.1", &faults.Config{Loss: &faults.Loss{P: 0.1}}},
		{"iid loss p=0.3", &faults.Config{Loss: &faults.Loss{P: 0.3}}},
		{"burst loss ~30% (GE 7s/3s)", &faults.Config{Loss: &faults.Loss{MeanGood: 7, MeanBad: 3}}},
		{"clock drift 5%", &faults.Config{Drift: &faults.Drift{Max: 0.05}}},
		{"brownout 25% duty", &faults.Config{Brownout: &faults.Brownout{MeanEvery: 75, MeanFor: 25}}},
		{"brownout 50% duty", &faults.Config{Brownout: &faults.Brownout{MeanEvery: 50, MeanFor: 50}}},
		{"silence 10% duty", &faults.Config{Silence: &faults.Silence{MeanEvery: 90, MeanFor: 10}}},
		{"crash churn up=1500s down=300s", &faults.Config{Crash: &faults.Crash{MeanUp: 1500, MeanDown: 300}}},
	}

	cells := make([]sweep.Cell[float64], 0, len(scenarios))
	for i, sc := range scenarios {
		i, sc := i, sc
		cells = append(cells, func() (float64, error) {
			m, err := sim.Run(sim.Config{
				Network:  nw,
				Protocol: sim.Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: sigma, Delta: 0.2},
				Duration: duration,
				Warmup:   warmup,
				Seed:     rng.DeriveSeed(opts.Seed, 0xfa, uint64(i)),
				Faults:   sc.cfg,
			})
			if err != nil {
				return 0, err
			}
			return m.Groupput, nil
		})
	}
	res, err := sweep.Run(opts.Workers, cells)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Name: "Fault-intensity sweep: 5-node clique, sigma=0.5, rho=10uW, L=X=500uW",
		Notes: fmt.Sprintf("analytic fault-free T^0.5 = %s; ratios are vs the clean run; "+
			"identical fault traces replay on sim, asim, and testbed for the same seed", f4(ref.Throughput)),
		Head: []string{"scenario", "groupput", "vs clean", "vs analytic"},
	}
	clean := res[0]
	for i, sc := range scenarios {
		t.Rows = append(t.Rows, []string{
			sc.name, f4(res[i]), f3(res[i] / clean), f3(res[i] / ref.Throughput),
		})
	}
	return t, nil
}

// runFaultKillHalf is the headline robustness scenario: half an 8-node
// clique crashes mid-run and the survivors re-converge toward the 4-node
// analytic operating point — with no membership protocol, exactly as in
// the churn experiment, but driven through the shared fault layer.
func runFaultKillHalf(opts Options) (*Table, error) {
	scale := 1.0
	if opts.Quick {
		scale = 0.35
	}
	kill, horizon := 4000*scale, 10000*scale
	nw8 := model.Homogeneous(8, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	nw4 := model.Homogeneous(4, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	const sigma = 0.5
	ref8, err := statespace.SolveP4(nw8, sigma, model.Groupput, nil)
	if err != nil {
		return nil, err
	}
	ref4, err := statespace.SolveP4(nw4, sigma, model.Groupput, nil)
	if err != nil {
		return nil, err
	}
	fcfg := &faults.Config{Crash: &faults.Crash{Kill: []int{0, 1, 2, 3}, KillAt: kill}}

	// As in churn, the epochs are measurement windows over one
	// deterministic trajectory, so both cells share one derived seed.
	seed := rng.DeriveSeed(opts.Seed, 0xfa, 0x1abc)
	measure := func(warmup, duration float64) (float64, error) {
		m, err := sim.Run(sim.Config{
			Network:  nw8,
			Protocol: sim.Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: sigma, Delta: 0.2},
			Duration: duration,
			Warmup:   warmup,
			Seed:     seed,
			// Warm-start at the 8-node analytic operating point: the
			// experiment measures re-convergence after the kill, and an
			// 8-node clique cold-started at eta=0 can fall into the
			// full-audience hold trap (everyone listens, one transmitter
			// holds for ~exp(N-1) packets while eta runs away), which is a
			// startup artifact, not the robustness story.
			WarmEta: ref8.Eta,
			Faults:  fcfg,
		})
		if err != nil {
			return 0, err
		}
		return m.Groupput, nil
	}

	t := &Table{
		Name: "Kill half the clique: nodes 0-3 crash permanently (N=8, sigma=0.5)",
		Notes: fmt.Sprintf("analytic T^0.5: 8 nodes %s, 4 survivors %s; crashes come from the fault layer, "+
			"no membership signaling", f4(ref8.Throughput), f4(ref4.Throughput)),
		Head: []string{"epoch", "window (s)", "live nodes", "groupput", "analytic", "ratio"},
	}
	type epoch struct {
		name     string
		from, to float64
		live     int
		analytic float64
	}
	settle := (horizon - kill) / 3
	epochs := []epoch{
		{"before", kill / 3, kill, 8, ref8.Throughput},
		{"after", kill + settle, horizon, 4, ref4.Throughput},
	}
	rows, err := sweep.Map(opts.Workers, epochs, func(_ int, ep epoch) ([]string, error) {
		g, err := measure(ep.from, ep.to)
		if err != nil {
			return nil, err
		}
		return []string{
			ep.name, fmt.Sprintf("%.0f-%.0f", ep.from, ep.to),
			fmt.Sprintf("%d", ep.live), f4(g), f4(ep.analytic), f3(g / ep.analytic),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
