package sim

import (
	"reflect"
	"runtime"
	"testing"
	"unsafe"

	"econcast/internal/econcast"
	"econcast/internal/faults"
	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/topology"
)

// assertParallelIdentity is the core contract check of the parallel
// engine: for every forced worker count, at GOMAXPROCS 1, 4, and 16,
// the metrics must be deeply equal to the single-queue engine's — not
// statistically close, the same values. (The event log is a serial-only
// hook, so unlike the shard tests the comparison vehicle is the full
// Metrics struct, whose latency CDF seals the per-delivery samples.)
func assertParallelIdentity(t *testing.T, cfg Config, workerCounts []int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	shards := cfg.Shards
	cfg.Parallel, cfg.Shards = 1, 1
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = shards
	for _, gm := range []int{1, 4, 16} {
		runtime.GOMAXPROCS(gm)
		for _, w := range workerCounts {
			cfg.Parallel = w
			got, err := Run(cfg)
			if err != nil {
				t.Fatalf("GOMAXPROCS=%d workers=%d: %v", gm, w, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("GOMAXPROCS=%d workers=%d: metrics diverged from single-queue engine:\n  want %+v\n  got  %+v",
					gm, w, want, got)
			}
		}
	}
}

func TestParallelIdentityGridCapture(t *testing.T) {
	assertParallelIdentity(t, gridCfg(7), []int{2, 4, 9})
}

// TestParallelIdentityGridNonCapture pins the degenerate-window case:
// NonCapture's wdepth=6 makes every node of a 6x6 grid split into 3x6
// blocks a boundary node, so the parallel engine must fall through to
// pure serial steps and still match.
func TestParallelIdentityGridNonCapture(t *testing.T) {
	cfg := gridCfg(11)
	cfg.Protocol.Variant = econcast.NonCapture
	assertParallelIdentity(t, cfg, []int{2, 4})
}

// TestParallelIdentityRingNonCapture gives NonCapture real interiors:
// 24-node ring halves leave nodes more than 6 hops from any boundary.
func TestParallelIdentityRingNonCapture(t *testing.T) {
	cfg := gridCfg(3)
	cfg.Network = model.Homogeneous(48, 60*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	cfg.Topology = topology.Ring(48)
	cfg.Protocol.Variant = econcast.NonCapture
	assertParallelIdentity(t, cfg, []int{2, 4})
}

func TestParallelIdentityRandomGeometric(t *testing.T) {
	cfg := gridCfg(19)
	cfg.Network = model.Homogeneous(50, 60*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	cfg.Topology = topology.RandomGeometric(50, 0.3, rng.New(5))
	assertParallelIdentity(t, cfg, []int{3, 8})
}

// TestParallelIdentityFiner pins workers striding over more shards than
// workers: an explicit 9-way split driven by a 2-worker pool.
func TestParallelIdentityFiner(t *testing.T) {
	cfg := gridCfg(29)
	cfg.Shards = 9
	assertParallelIdentity(t, cfg, []int{2, 3})
}

// TestParallelIdentitySingleNodeShards pins the no-interior degenerate
// partition: with every node its own shard, every interior heap stays
// empty and each window drains nothing for most shards.
func TestParallelIdentitySingleNodeShards(t *testing.T) {
	cfg := gridCfg(53)
	cfg.Network = model.Homogeneous(16, 60*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	cfg.Topology = topology.Grid(4, 4)
	cfg.Shards = 16
	assertParallelIdentity(t, cfg, []int{4, 16})
}

// TestParallelIdentityFaults runs every fault process at once through
// the window machinery; the fault trace is part of the compared metrics.
func TestParallelIdentityFaults(t *testing.T) {
	cfg := gridCfg(31)
	cfg.Faults = &faults.Config{
		Crash:    &faults.Crash{MeanUp: 40, MeanDown: 10},
		Loss:     &faults.Loss{P: 0.1},
		Drift:    &faults.Drift{Max: 0.05},
		Brownout: &faults.Brownout{MeanEvery: 60, MeanFor: 20},
		Silence:  &faults.Silence{MeanEvery: 80, MeanFor: 5},
	}
	assertParallelIdentity(t, cfg, []int{2, 4})
}

// TestParallelIdentityTargetedCrash kills an interior corner node (node
// 0 sits three hops from the foreign half of a 2-way 6x6 split, so its
// crash executes inside a window) and a boundary node at a fixed time.
func TestParallelIdentityTargetedCrash(t *testing.T) {
	cfg := gridCfg(43)
	cfg.Faults = &faults.Config{
		Crash: &faults.Crash{Kill: []int{0, 14, 35}, KillAt: 120},
	}
	assertParallelIdentity(t, cfg, []int{2, 4, 9})
}

// TestParallelAutoMatchesForced pins the auto path end to end: at
// GOMAXPROCS 4 a hook-free 4096-node run selects the parallel engine on
// its own and must match the single-queue engine.
func TestParallelAutoMatchesForced(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	n := 64 * 64
	cfg := Config{
		Network:  model.Homogeneous(n, 60*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt),
		Topology: topology.Grid(64, 64),
		Protocol: Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: 0.5},
		Duration: 6,
		Warmup:   1,
		Seed:     61,
	}
	runtime.GOMAXPROCS(4)
	if got := cfg.parallelPlan(); got != 4 {
		t.Fatalf("expected auto parallel plan 4 at n=%d, got %d", n, got)
	}
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GOMAXPROCS(prev)
	cfg.Parallel, cfg.Shards = 1, 1
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("auto-parallel run diverged from single-queue engine")
	}
}

// TestParallelPlan pins the Parallel -> engine selection rules,
// including every serial-only hook.
func TestParallelPlan(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	runtime.GOMAXPROCS(4)

	grid := topology.Grid(10, 10)
	big := topology.Grid(64, 64)
	mk := func(mut func(*Config)) *Config {
		c := &Config{Topology: grid}
		if mut != nil {
			mut(c)
		}
		return c
	}
	cases := []struct {
		name string
		cfg  *Config
		want int
	}{
		{"clique", mk(func(c *Config) { c.Topology = nil; c.Parallel = 8 }), 1},
		{"forced-serial", mk(func(c *Config) { c.Parallel = 1 }), 1},
		{"forced-workers", mk(func(c *Config) { c.Parallel = 8 }), 8},
		{"auto-small", mk(nil), 1},
		{"auto-large", &Config{Topology: big}, 4},
		{"eventlog", mk(func(c *Config) { c.Parallel = 8; c.EventLog = &noopWriter{} }), 1},
		{"ondeliver", mk(func(c *Config) { c.Parallel = 8; c.OnDeliver = func(int, int, float64) {} }), 1},
		{"ontick", mk(func(c *Config) { c.Parallel = 8; c.OnTick = func(int, float64, float64) {} }), 1},
		{"estimate", mk(func(c *Config) { c.Parallel = 8; c.EstimateListeners = func(a int, _ *rng.Source) int { return a } }), 1},
		{"occupancy", mk(func(c *Config) { c.Parallel = 8; c.TrackOccupancy = true }), 1},
		{"churn", mk(func(c *Config) { c.Parallel = 8; c.Churn = func(int, float64) bool { return true } }), 1},
		{"harvest", mk(func(c *Config) { c.Parallel = 8; c.Harvest = func(int, float64) float64 { return 0 } }), 1},
	}
	for _, tc := range cases {
		if got := tc.cfg.parallelPlan(); got != tc.want {
			t.Errorf("%s: parallelPlan = %d, want %d", tc.name, got, tc.want)
		}
	}
}

type noopWriter struct{}

func (*noopWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestParallelWindowsExecute is the white-box guard that the identity
// tests above actually exercise the window phase (a wdepth regression
// that made every node a boundary node would pass them trivially).
func TestParallelWindowsExecute(t *testing.T) {
	p := newParCoordinator(gridCfg(7), nil, 2, 2)
	p.run()
	if p.windows == 0 {
		t.Fatal("no windows dispatched on a 2-way 6x6 split; interior classification is broken")
	}
	m := p.finish()
	if m.Events == 0 || m.PacketsSent == 0 {
		t.Fatalf("window run produced no activity: %+v", m)
	}
}

// TestNodeHotSize pins the SoA compaction contract: the hot per-node
// record is exactly one cache line.
func TestNodeHotSize(t *testing.T) {
	if s := unsafe.Sizeof(nodeHot{}); s != 64 {
		t.Fatalf("nodeHot is %d bytes, want 64", s)
	}
}
