package sim

import (
	"math"
	"strings"
	"testing"

	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/statespace"
	"econcast/internal/topology"
)

func net5() *model.Network {
	return model.Homogeneous(5, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
}

func baseCfg() Config {
	return Config{
		Network: net5(),
		Protocol: Protocol{
			Mode:    model.Groupput,
			Variant: econcast.Capture,
			Sigma:   0.5,
		},
		Duration: 500,
		Warmup:   100,
		Seed:     1,
	}
}

func TestValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Network = nil },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Warmup = c.Duration },
		func(c *Config) { c.Warmup = -1 },
		func(c *Config) { c.Protocol.Sigma = 0 },
		func(c *Config) { c.WarmEta = []float64{1} },
		func(c *Config) { c.Topology = topology.Clique(3) },
	}
	for i, mut := range bad {
		c := baseCfg()
		mut(&c)
		if _, err := Run(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	c := baseCfg()
	c.Duration, c.Warmup = 100, 20
	a, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Groupput != b.Groupput || a.PacketsSent != b.PacketsSent {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v",
			a.Groupput, a.PacketsSent, b.Groupput, b.PacketsSent)
	}
	c.Seed = 2
	d, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if d.PacketsSent == a.PacketsSent && d.Groupput == a.Groupput {
		t.Fatal("different seeds produced identical runs")
	}
}

// Nodes must consume power at their budget on average (the paper verifies
// exactly this about its simulations in §VII-A).
func TestPowerTracksBudget(t *testing.T) {
	c := baseCfg()
	c.Duration = 4000
	c.Warmup = 1000 // power is measured over the post-warmup window
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range m.Power {
		if math.Abs(p-10*model.MicroWatt)/(10*model.MicroWatt) > 0.10 {
			t.Fatalf("node %d: mean power %v, budget 10uW (eta=%v)", i, p, m.EtaFinal[i])
		}
	}
}

// With the multiplier frozen at the P4 optimum, the empirical listen and
// transmit fractions and the throughput must match the Gibbs analysis
// (this validates the simulator against Lemma 2 end-to-end).
func TestFrozenEtaMatchesGibbs(t *testing.T) {
	nw := net5()
	ref, err := statespace.SolveP4(nw, 0.5, model.Groupput, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := baseCfg()
	c.WarmEta = ref.Eta
	c.FreezeEta = true
	c.Duration = 4000
	c.Warmup = 200
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(m.Groupput-ref.Throughput) / ref.Throughput; rel > 0.10 {
		t.Fatalf("frozen-eta groupput %v, Gibbs %v (rel err %.3f)",
			m.Groupput, ref.Throughput, rel)
	}
	// Power should likewise match the analytical consumption.
	for i, p := range m.Power {
		if math.Abs(p-ref.Consumption[i])/ref.Consumption[i] > 0.12 {
			t.Fatalf("node %d: power %v, analytic %v", i, p, ref.Consumption[i])
		}
	}
}

// Adaptive EconCast must converge to the analytical T^sigma: the paper
// reports that simulated throughput matches T^sigma for sigma in
// {0.25, 0.5}. At sigma=0.5 we run from a cold start; at sigma=0.25 the
// chain's mixing time is dominated by rare astronomically-long bursts
// (Fig. 4), so we warm-start the multipliers (still adapting) as the paper
// effectively does by simulating past the transient.
func TestAdaptiveMatchesAnalytic(t *testing.T) {
	nw := net5()
	for _, tc := range []struct {
		sigma float64
		warm  bool
	}{{0.5, false}, {0.25, true}} {
		ref, err := statespace.SolveP4(nw, tc.sigma, model.Groupput, nil)
		if err != nil {
			t.Fatal(err)
		}
		c := baseCfg()
		c.Protocol.Sigma = tc.sigma
		c.Protocol.Delta = 0.1
		c.Duration = 6000
		c.Warmup = 1500
		if tc.warm {
			c.WarmEta = ref.Eta
		}
		m, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(m.Groupput-ref.Throughput) / ref.Throughput; rel > 0.2 {
			t.Fatalf("sigma=%v: adaptive groupput %v, analytic %v (rel %.3f)",
				tc.sigma, m.Groupput, ref.Throughput, rel)
		}
	}
}

// A cold start at small sigma can trap the network in a pathological
// mega-burst (all nodes awake, continue probability ~1) that bankrupts the
// frozen listeners. With the physical battery floor the burst is truncated
// by energy depletion and the network recovers instead of going comatose.
func TestColdStartRecoversWithBatteryFloor(t *testing.T) {
	c := baseCfg()
	c.Protocol.Sigma = 0.25
	c.Protocol.Delta = 0.1
	c.HardBatteryFloor = true
	c.InitialBattery = 2e-3
	c.Duration = 6000
	c.Warmup = 2000
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Groupput <= 0 {
		t.Fatal("network stayed comatose after cold start")
	}
	for i, eta := range m.EtaFinal {
		// Multipliers must stay within a sane range (scaled eta ~ O(1)).
		if eta*500e-6 > 20 {
			t.Fatalf("node %d: eta exploded to %v/W", i, eta)
		}
	}
}

func TestAnyputMode(t *testing.T) {
	nw := net5()
	ref, err := statespace.SolveP4(nw, 0.5, model.Anyput, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := baseCfg()
	c.Protocol.Mode = model.Anyput
	c.WarmEta = ref.Eta
	c.FreezeEta = true
	c.Duration = 4000
	c.Warmup = 200
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(m.Anyput-ref.Throughput) / ref.Throughput; rel > 0.10 {
		t.Fatalf("anyput %v, analytic %v (rel %.3f)", m.Anyput, ref.Throughput, rel)
	}
	// Groupput >= anyput always.
	if m.Groupput < m.Anyput-1e-12 {
		t.Fatalf("groupput %v < anyput %v", m.Groupput, m.Anyput)
	}
}

// Average burst length must match the Appendix E closed form under frozen
// optimal multipliers.
func TestBurstLengthMatchesAnalytic(t *testing.T) {
	nw := net5()
	ref, err := statespace.SolveP4(nw, 0.5, model.Groupput, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := baseCfg()
	c.WarmEta = ref.Eta
	c.FreezeEta = true
	c.Duration = 6000
	c.Warmup = 200
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.BurstLengths.N() < 100 {
		t.Fatalf("too few bursts: %d", m.BurstLengths.N())
	}
	got := m.BurstLengths.Mean()
	if rel := math.Abs(got-ref.BurstLength) / ref.BurstLength; rel > 0.15 {
		t.Fatalf("burst length %v, analytic %v (rel %.3f)", got, ref.BurstLength, rel)
	}
}

func TestLatencyRecorded(t *testing.T) {
	c := baseCfg()
	c.Duration = 3000
	c.Warmup = 500
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Latency.N() == 0 {
		t.Fatal("no latency samples")
	}
	if m.Latency.Mean() <= 0 {
		t.Fatalf("latency mean %v", m.Latency.Mean())
	}
	if q := m.Latency.Quantile(0.99); q < m.Latency.Mean() {
		t.Fatalf("99th percentile %v below mean %v", q, m.Latency.Mean())
	}
}

func TestNonCliqueGrid(t *testing.T) {
	n := 9
	nw := model.Homogeneous(n, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	c := Config{
		Network:  nw,
		Topology: topology.SquareGrid(n),
		Protocol: Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: 0.5},
		Duration: 2000,
		Warmup:   500,
		Seed:     3,
	}
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Groupput <= 0 {
		t.Fatal("no grid throughput")
	}
	// Grid degree <= 4: per-packet deliveries can never exceed 4.
	if m.PacketsDelivered > 4*m.PacketsSent {
		t.Fatalf("deliveries %d exceed degree bound (sent %d)",
			m.PacketsDelivered, m.PacketsSent)
	}
}

// In a clique, carrier sensing makes collisions impossible.
func TestNoCollisionsInClique(t *testing.T) {
	c := baseCfg()
	c.Duration = 1000
	c.Warmup = 0
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.CollidedReceptions != 0 {
		t.Fatalf("clique recorded %d collisions", m.CollidedReceptions)
	}
}

func TestNonCaptureVariantRuns(t *testing.T) {
	c := baseCfg()
	c.Protocol.Variant = econcast.NonCapture
	c.Duration = 2000
	c.Warmup = 500
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Groupput <= 0 {
		t.Fatal("no NC throughput")
	}
	// NC releases after every packet: every burst the receiver sees from a
	// single hold is one packet, but bursts can chain across holds while
	// the node keeps listening; the mean must still be far below the
	// capture variant's analytic burst length at the same sigma.
	if m.BurstLengths.N() > 0 && m.BurstLengths.Mean() > 8 {
		t.Fatalf("NC burst length %v suspiciously high", m.BurstLengths.Mean())
	}
}

// Noisy listener estimates must not crash and should not increase
// throughput beyond the perfect-estimate run.
func TestEstimateNoiseAblation(t *testing.T) {
	perfect := baseCfg()
	perfect.Duration = 2000
	perfect.Warmup = 500
	pm, err := Run(perfect)
	if err != nil {
		t.Fatal(err)
	}
	noisy := perfect
	noisy.EstimateListeners = func(actual int, src *rng.Source) int {
		// Each listener's ping is lost half the time.
		count := 0
		for k := 0; k < actual; k++ {
			if src.Bernoulli(0.5) {
				count++
			}
		}
		return count
	}
	nm, err := Run(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if nm.Groupput <= 0 {
		t.Fatal("noisy run produced no throughput")
	}
	if nm.Groupput > pm.Groupput*1.15 {
		t.Fatalf("noise increased throughput: %v > %v", nm.Groupput, pm.Groupput)
	}
}

func TestHardBatteryFloor(t *testing.T) {
	c := baseCfg()
	c.HardBatteryFloor = true
	c.InitialBattery = 0
	c.Duration = 1500
	c.Warmup = 500
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range m.Battery {
		if b < 0 {
			t.Fatalf("node %d battery %v negative despite floor", i, b)
		}
	}
	if m.Groupput <= 0 {
		t.Fatal("floored run produced no throughput")
	}
}

func TestHeterogeneousBudgetsRespected(t *testing.T) {
	src := rng.New(9)
	nw := model.HeterogeneitySpec{N: 5, H: 100}.Sample(src)
	c := baseCfg()
	c.Network = nw
	c.Duration = 5000
	c.Warmup = 1500
	c.Protocol.Delta = 0.1
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range m.Power {
		budget := nw.Nodes[i].Budget
		if p > budget*1.25 {
			t.Fatalf("node %d: power %v exceeds budget %v by >25%%", i, p, budget)
		}
	}
	_ = m
}

func BenchmarkSimSecond(b *testing.B) {
	c := baseCfg()
	c.Duration = float64(b.N)
	if c.Duration <= c.Warmup {
		c.Warmup = c.Duration / 2
	}
	if _, err := Run(c); err != nil {
		b.Fatal(err)
	}
}

// A time-varying harvesting profile with the same mean as the constant
// budget must yield comparable long-run throughput (§III-A's remark), as
// long as it varies slowly relative to the adaptation.
func TestTimeVaryingHarvest(t *testing.T) {
	c := baseCfg()
	c.Protocol.Delta = 0.1
	c.Duration = 6000
	c.Warmup = 2000
	// Square wave: 15 uW / 5 uW alternating every 200 s, mean 10 uW.
	c.Harvest = func(node int, tt float64) float64 {
		if int(tt/200)%2 == 0 {
			return 15 * model.MicroWatt
		}
		return 5 * model.MicroWatt
	}
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	cc := c
	cc.Harvest = nil
	ref, err := Run(cc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Groupput <= 0 {
		t.Fatal("no throughput under varying harvest")
	}
	if rel := math.Abs(m.Groupput-ref.Groupput) / ref.Groupput; rel > 0.35 {
		t.Fatalf("varying-harvest groupput %v vs constant %v (rel %.2f)",
			m.Groupput, ref.Groupput, rel)
	}
}

// Appendix C proves detailed balance for both variants: EconCast-NC's
// boosted listen->transmit rate and unit release rate yield the *same*
// stationary distribution (19), hence the same throughput as EconCast-C at
// equal eta — even though its bursts are single packets.
func TestNonCaptureMatchesSameGibbsThroughput(t *testing.T) {
	nw := net5()
	ref, err := statespace.SolveP4(nw, 0.5, model.Groupput, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := baseCfg()
	c.Protocol.Variant = econcast.NonCapture
	c.WarmEta = ref.Eta
	c.FreezeEta = true
	c.Duration = 6000
	c.Warmup = 300
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(m.Groupput-ref.Throughput) / ref.Throughput; rel > 0.12 {
		t.Fatalf("NC groupput %v, Gibbs %v (rel %.3f)", m.Groupput, ref.Throughput, rel)
	}
	// But its holds are all single packets.
	if m.BurstLengths.N() > 0 && m.BurstLengths.Mean() != 1 {
		t.Fatalf("NC hold length %v, want exactly 1", m.BurstLengths.Mean())
	}
}

func TestEventLog(t *testing.T) {
	var buf strings.Builder
	c := baseCfg()
	c.Duration = 20
	c.Warmup = 1
	c.EventLog = &buf
	if _, err := Run(c); err != nil {
		t.Fatal(err)
	}
	log := buf.String()
	if !strings.Contains(log, "sleep -> listen") {
		t.Fatalf("event log missing transitions:\n%.300s", log)
	}
	if !strings.Contains(log, "packet 1 of hold") {
		t.Fatalf("event log missing packets:\n%.300s", log)
	}
}

// State-level validation of Lemma 2: with frozen optimal multipliers, the
// time-weighted distribution over network states must match the Gibbs
// distribution (19), not just in its moments but state by state.
func TestOccupancyMatchesGibbsDistribution(t *testing.T) {
	nw := model.Homogeneous(3, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	const sigma = 0.5
	ref, err := statespace.SolveP4(nw, sigma, model.Groupput, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(Config{
		Network:        nw,
		Protocol:       Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: sigma},
		Duration:       20000,
		Warmup:         500,
		Seed:           6,
		WarmEta:        ref.Eta,
		FreezeEta:      true,
		TrackOccupancy: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := statespace.Enumerate(nw)
	if err != nil {
		t.Fatal(err)
	}
	d := sp.Gibbs(ref.Eta, sigma, model.Groupput)
	// Total variation distance between empirical occupancy and pi.
	tv := 0.0
	total := 0.0
	for i := 0; i < sp.Len(); i++ {
		s := sp.State(i)
		emp := m.Occupancy[s]
		total += emp
		tv += math.Abs(emp - d.Pi(i))
	}
	tv /= 2
	if math.Abs(total-1) > 1e-6 {
		t.Fatalf("occupancy sums to %v", total)
	}
	if tv > 0.02 {
		t.Fatalf("total variation from Gibbs pi = %v, want < 0.02", tv)
	}
}

func TestOccupancyRejectsLargeNetworks(t *testing.T) {
	nw := model.Homogeneous(25, 1e-5, 5e-4, 5e-4)
	_, err := Run(Config{
		Network:        nw,
		Protocol:       Protocol{Mode: model.Groupput, Sigma: 0.5},
		Duration:       10,
		TrackOccupancy: true,
	})
	if err == nil {
		t.Fatal("oversized occupancy tracking accepted")
	}
}

// Degenerate networks: a single node can never deliver anything; a pair
// behaves like the N=2 analysis.
func TestSingleNodeNetwork(t *testing.T) {
	c := baseCfg()
	c.Network = model.Homogeneous(1, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	c.Duration = 500
	c.Warmup = 100
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Groupput != 0 || m.PacketsDelivered != 0 {
		t.Fatalf("single node delivered: %v / %d", m.Groupput, m.PacketsDelivered)
	}
	// It still spends energy probing (listen/transmit attempts).
	if m.PacketsSent == 0 {
		t.Fatal("single node never probed the channel")
	}
}

func TestTwoNodeMatchesAnalysis(t *testing.T) {
	nw := model.Homogeneous(2, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	ref, err := statespace.SolveP4(nw, 0.5, model.Groupput, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := baseCfg()
	c.Network = nw
	c.WarmEta = ref.Eta
	c.FreezeEta = true
	c.Duration = 6000
	c.Warmup = 300
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(m.Groupput-ref.Throughput) / ref.Throughput; rel > 0.15 {
		t.Fatalf("N=2 groupput %v vs analytic %v", m.Groupput, ref.Throughput)
	}
}

// Groupput accounting identity: Groupput * Window must equal
// PacketsDelivered * packetTime, and similarly for anyput.
func TestThroughputAccountingIdentity(t *testing.T) {
	c := baseCfg()
	c.Duration = 800
	c.Warmup = 100
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	wantG := float64(m.PacketsDelivered) * 1e-3 / m.Window
	if math.Abs(m.Groupput-wantG) > 1e-9 {
		t.Fatalf("groupput %v != delivered*pkt/window %v", m.Groupput, wantG)
	}
	wantA := float64(m.PacketsAnyDeliver) * 1e-3 / m.Window
	if math.Abs(m.Anyput-wantA) > 1e-9 {
		t.Fatalf("anyput %v != any*pkt/window %v", m.Anyput, wantA)
	}
	if m.PacketsDelivered < m.PacketsAnyDeliver {
		t.Fatal("delivered < any-delivered")
	}
}

// A custom packet time must leave normalized throughput roughly invariant
// (rates scale with 1/packetTime by construction).
func TestPacketTimeInvariance(t *testing.T) {
	nw := net5()
	ref, err := statespace.SolveP4(nw, 0.5, model.Groupput, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkt := range []float64{1e-3, 10e-3} {
		c := baseCfg()
		c.Protocol.PacketTime = pkt
		c.WarmEta = ref.Eta
		c.FreezeEta = true
		// The estimator's correlation time scales with the packet time
		// (holds last whole packets), so the window scales with it too —
		// otherwise the 10ms case sees ~1/10 the effective samples and its
		// spread blows past the tolerance.
		c.Duration = 6000 * (pkt / 1e-3)
		if c.Duration < 6000 {
			c.Duration = 6000
		}
		c.Warmup = 300
		m, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(m.Groupput-ref.Throughput) / ref.Throughput; rel > 0.15 {
			t.Fatalf("packet=%v: groupput %v vs analytic %v", pkt, m.Groupput, ref.Throughput)
		}
	}
}

// Churn: two of five nodes vanish mid-run and return later. The protocol
// has no membership knowledge, so the survivors' multipliers re-converge
// on their own and throughput recovers after the rejoin.
func TestChurnAdaptation(t *testing.T) {
	nw := net5()
	const (
		leave  = 2000.0
		rejoin = 4000.0
	)
	active := func(node int, tt float64) bool {
		if node >= 3 { // nodes 3 and 4 depart for [leave, rejoin)
			return tt < leave || tt >= rejoin
		}
		return true
	}
	// Throughput of the middle epoch should approach the 3-node analysis;
	// the final epoch the 5-node one.
	ref3, err := statespace.SolveP4(model.Homogeneous(3, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt), 0.5, model.Groupput, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref5, err := statespace.SolveP4(nw, 0.5, model.Groupput, nil)
	if err != nil {
		t.Fatal(err)
	}
	run := func(duration, warmup float64) float64 {
		c := baseCfg()
		c.Protocol.Delta = 0.2
		c.Duration = duration
		c.Warmup = warmup
		c.Churn = active
		m, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return m.Groupput
	}
	// Middle epoch (measured 3000-4000): only 3 nodes alive.
	mid := run(4000, 3000)
	if rel := math.Abs(mid-ref3.Throughput) / ref3.Throughput; rel > 0.5 {
		t.Fatalf("mid-epoch groupput %v, 3-node analytic %v", mid, ref3.Throughput)
	}
	if mid >= ref5.Throughput {
		t.Fatalf("mid-epoch %v not reduced below 5-node level %v", mid, ref5.Throughput)
	}
	// Recovery epoch (measured 7000-10000): all 5 back.
	post := run(10000, 7000)
	if rel := math.Abs(post-ref5.Throughput) / ref5.Throughput; rel > 0.35 {
		t.Fatalf("post-rejoin groupput %v, 5-node analytic %v", post, ref5.Throughput)
	}
	if post <= mid {
		t.Fatalf("throughput did not recover after rejoin: %v <= %v", post, mid)
	}
}
