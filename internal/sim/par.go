// Parallel shard execution: the window-synchronized multi-core engine.
//
// The run alternates two phases over the serial coordinator's state:
//
//   - Serial phase: the main goroutine dispatches events in global
//     (at, seq) order through the PR 7 machinery whenever the globally
//     earliest event is a *boundary* event — one at a node within
//     wdepth hops of a foreign shard.
//
//   - Window phase: whenever the globally earliest event is *interior*
//     (deeper than wdepth), the main goroutine computes the window
//     bound B — the earliest boundary event key anywhere — and every
//     shard's worker concurrently drains its interior heap up to
//     min(B, its own boundary head), each through its own dispatch
//     context. wdepth ≥ max(2r, r+π, 2π) for handler touch radius r
//     and push radius π, so two facts hold inside a window: no two
//     shards' executed events touch overlapping state, and no window
//     execution pushes outside its own shard. The window therefore
//     commutes into the exact global order and needs no locks, no
//     atomics, and no cross-shard staging — only the start/finish
//     barrier (channel handoff, which is also the happens-before edge
//     the race detector sees).
//
// Determinism: the phase schedule is a pure function of heap contents
// (global-min boundary test and the bound B), each shard's window drain
// is a pure function of (shard state, B), and per-shard dispatch
// contexts fold in fixed shard order at finish — so the output is
// byte-identical to the serial engines at every GOMAXPROCS, worker
// count, and shard count. DESIGN.md §9 gives the full merge proof.
package sim

import (
	"math"
	"runtime"

	"econcast/internal/econcast"
	"econcast/internal/faults"
)

// windowDepth returns wdepth for a variant: the interior margin that
// makes window execution conflict-free and shard-closed. Capture
// handlers touch radius r=1 and push radius π=1; NonCapture's listener
// re-estimation extends them to r=3, π=2 (handlePacketEnd →
// onListenSetChanged → scheduleTransition → listenEstimate walks three
// hops). wdepth = max(2r, r+π, 2π).
func windowDepth(v econcast.Variant) int {
	if v == econcast.NonCapture {
		return 6
	}
	return 2
}

// windowBound is the key below which a window may execute.
type windowBound struct {
	at  float64
	seq uint64
}

// parCoordinator drives the window-synchronized parallel run over a
// split-heap coordinator.
//
//lint:owner sim-engine the main goroutine owns all parCoordinator state; shard dispatch contexts are handed to window workers between barriers
type parCoordinator struct {
	c    *coordinator
	ctxs []dispCtx  // one per shard, folded in shard order at finish
	par  []parShard // window push targets, one per shard

	nw   int // worker goroutines
	work []chan windowBound
	done chan struct{}

	windows int // windows dispatched (observability: tests and benchjson)
}

// parShard routes a window worker's pushes into its shard's heaps.
// Interior events can only push within their own shard, so route never
// touches the coordinator's indexed heap (rebuilt after the barrier).
type parShard struct {
	c  *coordinator
	id int32
}

func (p *parShard) route(ev event) {
	s := &p.c.shards[p.id]
	if p.c.hot[ev.node].has(fInterior) {
		s.iq.push(ev)
	} else {
		s.queue.push(ev)
	}
}

func newParCoordinator(cfg Config, flt *faults.Set, shards, workers int) *parCoordinator {
	c := newCoordinator(cfg, flt, shards)
	c.split = true
	c.wdepth = windowDepth(cfg.Protocol.Variant)
	depths := c.part.Depths(c.wdepth)
	for i := 0; i < c.n; i++ {
		if int(depths[i]) > c.wdepth {
			c.hot[i].set(fInterior)
		}
	}
	ns := c.part.Shards()
	p := &parCoordinator{
		c:    c,
		ctxs: make([]dispCtx, ns),
		par:  make([]parShard, ns),
		done: make(chan struct{}, ns),
	}
	p.nw = workers
	if p.nw > ns {
		p.nw = ns
	}
	if g := runtime.GOMAXPROCS(0); p.nw > g {
		p.nw = g
	}
	if p.nw < 1 {
		p.nw = 1
	}
	for s := 0; s < ns; s++ {
		p.par[s] = parShard{c: c, id: int32(s)}
		p.ctxs[s].coordinator = c
		p.ctxs[s].par = &p.par[s]
	}
	p.work = make([]chan windowBound, p.nw)
	for w := range p.work {
		p.work[w] = make(chan windowBound, 1)
	}
	return p
}

// worker drains this worker's statically assigned shards for each
// window. The channel receive/send pair is the ownership handoff for
// the shards' interior heaps and SoA rows.
func (p *parCoordinator) worker(w int) {
	for b := range p.work[w] {
		for s := w; s < len(p.par); s += p.nw {
			p.c.shards[s].window(p.c, &p.ctxs[s], b.at, b.seq)
		}
		p.done <- struct{}{}
	}
}

// boundaryMin scans the shards' boundary heads for the window bound.
func (p *parCoordinator) boundaryMin() windowBound {
	b := windowBound{at: math.Inf(1), seq: 0}
	first := true
	for s := range p.c.shards {
		q := p.c.shards[s].queue
		if len(q) == 0 {
			continue
		}
		if first || keyLess(q[0].at, q[0].seq, b.at, b.seq) {
			b = windowBound{at: q[0].at, seq: q[0].seq}
			first = false
		}
	}
	return b
}

// interiorHead reports whether shard s's earliest event sits in its
// interior heap.
func (p *parCoordinator) interiorHead(s int32) bool {
	sh := &p.c.shards[s]
	if len(sh.iq) == 0 {
		return false
	}
	if len(sh.queue) == 0 {
		return true
	}
	return keyLess(sh.iq[0].at, sh.iq[0].seq, sh.queue[0].at, sh.queue[0].seq)
}

// rebuildOrder reconstructs the coordinator's indexed shard heap from
// scratch after a window barrier (windows move many heads at once, and
// the incremental fix is only sound for single stale entries).
func (p *parCoordinator) rebuildOrder() {
	c := p.c
	c.order = c.order[:0]
	for s := range c.shards {
		c.pos[s] = -1
		at, seq, ok := c.shards[s].headKey()
		if !ok {
			continue
		}
		c.headAt[s], c.headSeq[s] = at, seq
		c.pos[s] = int32(len(c.order))
		c.order = append(c.order, int32(s)) //lint:allow hotalloc order is reset to length zero and refilled; capacity reaches the shard count once and stays
	}
	for i := len(c.order)/2 - 1; i >= 0; i-- {
		c.siftDown(i)
	}
}

func (p *parCoordinator) run() {
	c := p.c
	c.start()
	for w := 0; w < p.nw; w++ {
		go p.worker(w) //lint:allow rawgoroutine bounded window-worker pool fenced by the barrier channels; econlint's shardflow rule 6 proves the dispatch/ack/rebuild discipline
	}
	for !c.done && len(c.order) > 0 {
		if c.headAt[c.order[0]] > c.horizon {
			// The globally earliest event is past the horizon; a window
			// would dispatch nothing, so stop here rather than spin.
			c.done = true
			break
		}
		if !p.interiorHead(c.order[0]) {
			// Global minimum is a boundary event: serial phase, exact
			// global order through the PR 7 drain.
			c.step()
			continue
		}
		// Global minimum is interior: run a window up to the earliest
		// boundary event anywhere. The window is never empty — at least
		// the global minimum itself executes.
		b := p.boundaryMin()
		p.windows++
		for w := 0; w < p.nw; w++ {
			p.work[w] <- b
		}
		for w := 0; w < p.nw; w++ {
			<-p.done
		}
		p.rebuildOrder()
	}
	for w := 0; w < p.nw; w++ {
		close(p.work[w])
	}
	c.drain()
}

func (p *parCoordinator) finish() *Metrics {
	ctxs := make([]*dispCtx, 0, len(p.ctxs)+1)
	ctxs = append(ctxs, &p.c.ctx)
	for i := range p.ctxs {
		ctxs = append(ctxs, &p.ctxs[i])
	}
	return p.c.finish(ctxs...)
}
