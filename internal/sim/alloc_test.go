package sim

import (
	"testing"

	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/topology"
)

// steadyEngine builds an engine on the reference 8-node clique with an
// effectively infinite horizon and pumps it past its transient, so that
// every one-time growth (queue capacity, per-slot listener capacity) has
// already happened and subsequent steps exercise pure steady state.
func steadyEngine(tb testing.TB) *engine {
	tb.Helper()
	nw := model.Homogeneous(8, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	cfg := Config{
		Network:  nw,
		Protocol: Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: 0.5, Delta: 0.1},
		// The horizon and warmup are never reached: the benchmark measures
		// the engine loop itself, not the metrics window machinery. Eta is
		// frozen so the transition-rate mix (and with it the event queue's
		// high-water mark) is stationary rather than drifting with the
		// multiplier adaptation.
		Duration:  1e18,
		Warmup:    1e17,
		Seed:      1,
		FreezeEta: true,
	}
	if err := cfg.validate(); err != nil {
		tb.Fatal(err)
	}
	e := newEngine(cfg, nil)
	e.start()
	for i := 0; i < 200_000; i++ {
		if !e.step() {
			tb.Fatal("queue drained during warm-up")
		}
	}
	return e
}

// BenchmarkEventLoop measures one discrete event through the engine's
// hot path. Run with -benchmem: the acceptance bar for the
// allocation-free event loop is 0 allocs/op here.
func BenchmarkEventLoop(b *testing.B) {
	e := steadyEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.step() {
			b.Fatal("queue drained")
		}
	}
}

// TestEventLoopSteadyStateAllocs is the executable form of the same bar:
// steady-state events must not allocate. A tiny tolerance (well under
// one allocation per hundred events) absorbs the rare amortized
// high-water-mark growth of the event queue.
func TestEventLoopSteadyStateAllocs(t *testing.T) {
	e := steadyEngine(t)
	avg := testing.AllocsPerRun(50_000, func() {
		if !e.step() {
			t.Fatal("queue drained")
		}
	})
	if avg > 0.01 {
		t.Fatalf("steady-state event loop allocates %.4f allocs/event, want 0", avg)
	}
}

// BenchmarkEventLoopNonClique is the grid-topology variant: non-clique
// runs additionally exercise the hidden-terminal collision scan, which
// must also stay allocation-free.
func BenchmarkEventLoopNonClique(b *testing.B) {
	nw := model.Homogeneous(25, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	cfg := Config{
		Network:  nw,
		Topology: topology.SquareGrid(25),
		Protocol: Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: 0.5, Delta: 0.1},
		Duration: 1e18,
		Warmup:   1e17,
		Seed:     1,
	}
	if err := cfg.validate(); err != nil {
		b.Fatal(err)
	}
	e := newEngine(cfg, nil)
	e.start()
	for i := 0; i < 200_000; i++ {
		if !e.step() {
			b.Fatal("queue drained during warm-up")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.step() {
			b.Fatal("queue drained")
		}
	}
}
