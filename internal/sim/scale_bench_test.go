package sim

import (
	"fmt"
	"runtime"
	"testing"

	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/sweep"
	"econcast/internal/topology"
)

// scaleBenchCase is one N-point of the scale benchmarks. Horizons
// shrink with N so every point dispatches a few million events; the
// topology is built once and shared read-only across replicate cells.
type scaleBenchCase struct {
	label    string
	topo     *topology.Topology
	n        int
	shards   int // 0 = auto (N/1024 above the auto threshold)
	duration float64
	warmup   float64
}

func scaleBenchCases() []scaleBenchCase {
	return []scaleBenchCase{
		// 1k sits below the auto-shard threshold; force the minimal sharded
		// split so the sharded engine is measured at every N.
		{label: "n=1k", topo: topology.Grid(32, 32), n: 1024, shards: 2, duration: 2.5, warmup: 0.5},
		{label: "n=10k", topo: topology.Grid(100, 100), n: 10000, duration: 0.25, warmup: 0.05},
		{label: "n=100k", topo: topology.Grid(316, 316), n: 99856, duration: 0.15, warmup: 0.02},
	}
}

func (sc scaleBenchCase) config(seed uint64) Config {
	return Config{
		Network:  model.Homogeneous(sc.n, 60*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt),
		Topology: sc.topo,
		Protocol: Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: 0.5, Delta: 0.1},
		Duration: sc.duration,
		Warmup:   sc.warmup,
		Seed:     seed,
		Shards:   sc.shards,
	}
}

// BenchmarkScaleGrid is the committed scale datapoint generator for
// BENCH_PR9.json: aggregate sharded-engine throughput on grids at
// N = 1k/10k/100k, with 4 replicate sims fanned out as sweep cells at
// worker counts 1/4/16 (clamped to the replicate count; on a 1-core
// runner the aggregate is bounded by single-thread throughput). The
// events/s metric is total dispatched events over wall time, including
// engine setup.
func BenchmarkScaleGrid(b *testing.B) {
	for _, sc := range scaleBenchCases() {
		b.Run(sc.label, func(b *testing.B) {
			for _, workers := range []int{1, 4, 16} {
				b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						reps := []uint64{1, 2, 3, 4}
						total := 0
						counts, err := sweep.Map(workers, reps, func(ri int, rep uint64) (int, error) {
							m, err := Run(sc.config(rng.DeriveSeed(7, uint64(sc.n), rep)))
							if err != nil {
								return 0, err
							}
							return m.Events, nil
						})
						if err != nil {
							b.Fatal(err)
						}
						for _, c := range counts {
							total += c
						}
						b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "events/s")
					}
				})
			}
		})
	}
}

// BenchmarkScaleGridParallel is the window-parallel engine datapoint:
// one replicate per N forced through the parallel engine with one
// worker per core (floored at 2 so `-cpu 1` still measures the window
// machinery rather than silently falling back to the serial path). Run
// with `-cpu 1,4,16` to produce the multi-core speedup rows; benchjson
// keys them by its gomaxprocs column. Single-run wall time against
// BenchmarkScaleGrid/workers=1 (which fans replicate cells, not one
// sim) is not the speedup denominator — BenchmarkScaleGridParallel at
// -cpu 1 is.
func BenchmarkScaleGridParallel(b *testing.B) {
	for _, sc := range scaleBenchCases() {
		b.Run(sc.label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sc.config(rng.DeriveSeed(7, uint64(sc.n), 1))
				cfg.Parallel = runtime.GOMAXPROCS(0)
				if cfg.Parallel < 2 {
					cfg.Parallel = 2
				}
				m, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(m.Events)/b.Elapsed().Seconds(), "events/s")
			}
		})
	}
}

// BenchmarkScaleGridUnsharded is the single-queue baseline for the
// sharded-vs-unsharded scale table (one replicate; 100k is omitted —
// the O(N) collision scan makes it minutes per run, which is the point).
func BenchmarkScaleGridUnsharded(b *testing.B) {
	for _, sc := range scaleBenchCases()[:2] {
		b.Run(sc.label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sc.config(rng.DeriveSeed(7, uint64(sc.n), 1))
				cfg.Shards = 1
				m, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(m.Events)/b.Elapsed().Seconds(), "events/s")
			}
		})
	}
}
