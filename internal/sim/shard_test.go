package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"econcast/internal/econcast"
	"econcast/internal/faults"
	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/sweep"
	"econcast/internal/topology"
)

// runLogged runs cfg with a full event trace attached and returns the
// metrics plus the trace.
func runLogged(t *testing.T, cfg Config) (*Metrics, string) {
	t.Helper()
	var log strings.Builder
	cfg.EventLog = &log
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, log.String()
}

// assertShardEquivalence is the core contract check of the sharded
// engine: for every requested shard count, the full event trace must be
// byte-identical to the single-queue engine's and the metrics must be
// deeply equal — not statistically close, the same bytes.
func assertShardEquivalence(t *testing.T, cfg Config, shardCounts []int) {
	t.Helper()
	cfg.Shards = 1
	wantM, wantLog := runLogged(t, cfg)
	for _, k := range shardCounts {
		cfg.Shards = k
		gotM, gotLog := runLogged(t, cfg)
		if gotLog != wantLog {
			d := firstDiff(wantLog, gotLog)
			t.Fatalf("shards=%d: event trace diverged from single-queue engine at byte %d:\n  want ...%q\n  got  ...%q",
				k, d, clip(wantLog, d), clip(gotLog, d))
		}
		if !reflect.DeepEqual(gotM, wantM) {
			t.Fatalf("shards=%d: metrics diverged:\n  want %+v\n  got  %+v", k, wantM, gotM)
		}
	}
}

func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func clip(s string, at int) string {
	lo, hi := at-40, at+80
	if lo < 0 {
		lo = 0
	}
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}

// gridCfg is a busy 6x6 grid: budgets high enough that transmissions,
// holds, and hidden-terminal collisions all occur frequently.
func gridCfg(seed uint64) Config {
	n := 36
	return Config{
		Network:  model.Homogeneous(n, 60*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt),
		Topology: topology.Grid(6, 6),
		Protocol: Protocol{
			Mode:    model.Groupput,
			Variant: econcast.Capture,
			Sigma:   0.5,
		},
		Duration: 300,
		Warmup:   50,
		Seed:     seed,
	}
}

func TestShardEquivalenceGridCapture(t *testing.T) {
	assertShardEquivalence(t, gridCfg(7), []int{2, 4, 9, 36})
}

func TestShardEquivalenceGridNonCapture(t *testing.T) {
	cfg := gridCfg(11)
	cfg.Protocol.Variant = econcast.NonCapture
	assertShardEquivalence(t, cfg, []int{2, 4, 9})
}

func TestShardEquivalenceRing(t *testing.T) {
	cfg := gridCfg(3)
	cfg.Network = model.Homogeneous(24, 60*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	cfg.Topology = topology.Ring(24)
	assertShardEquivalence(t, cfg, []int{2, 5, 24})
}

func TestShardEquivalenceRandomGeometric(t *testing.T) {
	cfg := gridCfg(19)
	cfg.Network = model.Homogeneous(50, 60*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	cfg.Topology = topology.RandomGeometric(50, 0.3, rng.New(5))
	assertShardEquivalence(t, cfg, []int{3, 8})
}

func TestShardEquivalenceIrregularFallback(t *testing.T) {
	// Star and line have no spatial layout: the partitioner falls back to
	// contiguous index ranges; the hub of the star touches every shard.
	for _, tc := range []struct {
		name string
		topo *topology.Topology
	}{
		{"star", topology.Star(20)},
		{"line", topology.Line(20)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := gridCfg(23)
			cfg.Network = model.Homogeneous(20, 60*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
			cfg.Topology = tc.topo
			assertShardEquivalence(t, cfg, []int{3, 6})
		})
	}
}

// TestShardEquivalenceFaults exercises every fault process at once:
// crash/restart cycles crash frontier transmitters mid-hold, loss and
// silence touch the reception paths, drift and brownout the timing and
// energy paths. The fault trace itself is part of the compared metrics.
func TestShardEquivalenceFaults(t *testing.T) {
	cfg := gridCfg(31)
	cfg.Faults = &faults.Config{
		Crash:    &faults.Crash{MeanUp: 40, MeanDown: 10},
		Loss:     &faults.Loss{P: 0.1},
		Drift:    &faults.Drift{Max: 0.05},
		Brownout: &faults.Brownout{MeanEvery: 60, MeanFor: 20},
		Silence:  &faults.Silence{MeanEvery: 80, MeanFor: 5},
	}
	assertShardEquivalence(t, cfg, []int{2, 4, 9})
}

// TestShardEquivalenceTargetedCrash pins the mid-hold frontier crash: a
// corner node (on the boundary of its block under every tested shard
// count) is killed at a fixed time, so if it is holding the channel the
// release must propagate identically across shards.
func TestShardEquivalenceTargetedCrash(t *testing.T) {
	cfg := gridCfg(43)
	cfg.Faults = &faults.Config{
		Crash: &faults.Crash{Kill: []int{0, 14, 35}, KillAt: 120},
	}
	assertShardEquivalence(t, cfg, []int{4, 9, 36})
}

// TestShardEquivalenceKitchenSink turns on everything orthogonal at
// once: churn, a harvesting profile, the hard battery floor, listener
// estimation noise, delivery and tick hooks, and occupancy tracking.
func TestShardEquivalenceKitchenSink(t *testing.T) {
	cfg := gridCfg(47)
	cfg.Network = model.Homogeneous(16, 60*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	cfg.Topology = topology.Grid(4, 4)
	cfg.TrackOccupancy = true
	cfg.HardBatteryFloor = true
	cfg.InitialBattery = 5e-3
	cfg.Harvest = func(node int, tt float64) float64 {
		base := 60 * model.MicroWatt
		if int(tt/50)%2 == node%2 {
			return 1.5 * base
		}
		return 0.5 * base
	}
	cfg.Churn = func(node int, tt float64) bool {
		return node != 5 || int(tt/40)%2 == 0
	}
	cfg.EstimateListeners = func(actual int, src *rng.Source) int {
		return actual + src.Intn(3) - 1
	}
	deliveries := 0
	cfg.OnDeliver = func(tx, rx int, now float64) { deliveries++ }
	ticks := 0
	cfg.OnTick = func(node int, now, eta float64) { ticks++ }

	cfg.Shards = 1
	wantM, wantLog := runLogged(t, cfg)
	wantDeliv, wantTicks := deliveries, ticks
	for _, k := range []int{2, 4, 16} {
		deliveries, ticks = 0, 0
		cfg.Shards = k
		gotM, gotLog := runLogged(t, cfg)
		if gotLog != wantLog {
			d := firstDiff(wantLog, gotLog)
			t.Fatalf("shards=%d: trace diverged at byte %d: want ...%q got ...%q",
				k, d, clip(wantLog, d), clip(gotLog, d))
		}
		if !reflect.DeepEqual(gotM, wantM) {
			t.Fatalf("shards=%d: metrics diverged", k)
		}
		if deliveries != wantDeliv || ticks != wantTicks {
			t.Fatalf("shards=%d: hook counts diverged: %d/%d vs %d/%d",
				k, deliveries, ticks, wantDeliv, wantTicks)
		}
	}
}

// TestShardEquivalenceSingleNodeShards pins the degenerate partitions:
// every node its own shard (every event crosses a boundary) and a shard
// count that leaves some shards with exactly one node.
func TestShardEquivalenceSingleNodeShards(t *testing.T) {
	cfg := gridCfg(53)
	cfg.Network = model.Homogeneous(16, 60*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	cfg.Topology = topology.Grid(4, 4)
	assertShardEquivalence(t, cfg, []int{15, 16})
}

// TestShardEdgeCasesAcrossSweepWorkers pins the shard-boundary edge
// cases through the sweep layer: a hub whose neighbor mask spans every
// shard, a frontier node crashing mid-hold, and a partition with 1-node
// shards, each replicated as sweep cells and byte-compared at workers
// 1, 4, and 16. Shard count and worker count must both be unobservable.
func TestShardEdgeCasesAcrossSweepWorkers(t *testing.T) {
	scenarios := []struct {
		name   string
		cfg    Config
		shards int
	}{
		{"mask-spans-all-shards", func() Config {
			cfg := gridCfg(23)
			cfg.Network = model.Homogeneous(20, 60*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
			cfg.Topology = topology.Star(20)
			return cfg
		}(), 6},
		{"frontier-crash-mid-hold", func() Config {
			cfg := gridCfg(43)
			cfg.Faults = &faults.Config{Crash: &faults.Crash{Kill: []int{0, 14, 35}, KillAt: 120}}
			return cfg
		}(), 9},
		{"single-node-shards", func() Config {
			cfg := gridCfg(53)
			cfg.Network = model.Homogeneous(16, 60*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
			cfg.Topology = topology.Grid(4, 4)
			return cfg
		}(), 16},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			run := func(workers int) []string {
				// Four replicate cells per scenario, each a full sharded run
				// with a derived seed, collected in index order.
				reps := []uint64{1, 2, 3, 4}
				traces, err := sweep.Map(workers, reps, func(i int, rep uint64) (string, error) {
					cfg := sc.cfg
					cfg.Shards = sc.shards
					cfg.Seed = rng.DeriveSeed(cfg.Seed, 97, rep)
					var log strings.Builder
					cfg.EventLog = &log
					if _, err := Run(cfg); err != nil {
						return "", err
					}
					return log.String(), nil
				})
				if err != nil {
					t.Fatal(err)
				}
				return traces
			}
			base := run(1)
			for _, workers := range []int{4, 16} {
				got := run(workers)
				for i := range base {
					if got[i] != base[i] {
						d := firstDiff(base[i], got[i])
						t.Fatalf("workers=%d replicate %d: trace diverged at byte %d: want ...%q got ...%q",
							workers, i, d, clip(base[i], d), clip(got[i], d))
					}
				}
			}
		})
	}
}

// TestShardPlan pins the Shards -> engine selection rules.
func TestShardPlan(t *testing.T) {
	mk := func(topo *topology.Topology, shards int) *Config {
		return &Config{Topology: topo, Shards: shards}
	}
	cases := []struct {
		cfg  *Config
		want int
	}{
		{mk(nil, 0), 1},                       // clique (nil topology): never sharded
		{mk(topology.Clique(200), 8), 1},      // explicit clique: never sharded
		{mk(topology.Grid(10, 10), 0), 1},     // small: auto stays single-queue
		{mk(topology.Grid(10, 10), 1), 1},     // forced single-queue
		{mk(topology.Grid(10, 10), 4), 4},     // forced shard count
		{mk(topology.Grid(10, 10), 500), 100}, // clamped to n
		{mk(topology.Grid(80, 80), 0), 6},     // auto: 6400/1024
		{mk(topology.Ring(5), 2), 2},          // tiny but explicit
	}
	for i, tc := range cases {
		if got := tc.cfg.shardPlan(); got != tc.want {
			t.Errorf("case %d: shardPlan = %d, want %d", i, got, tc.want)
		}
	}
}

// TestShardAutoMatchesForced pins that the auto-selected shard count is
// itself equivalent to the single-queue engine on a just-over-threshold
// topology (a short horizon keeps this cheap at 4096 nodes).
func TestShardAutoMatchesForced(t *testing.T) {
	n := 64 * 64
	cfg := Config{
		Network:  model.Homogeneous(n, 60*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt),
		Topology: topology.Grid(64, 64),
		Protocol: Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: 0.5},
		Duration: 6,
		Warmup:   1,
		Seed:     61,
	}
	if cfg.shardPlan() != 4 {
		t.Fatalf("expected auto plan 4 at n=%d, got %d", n, cfg.shardPlan())
	}
	cfg.Shards = 1
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 0
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("auto-sharded run diverged from single-queue engine")
	}
}

func ExampleConfig_shards() {
	cfg := gridCfg(1)
	cfg.Shards = 4
	m, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println(m.PacketsSent > 0)
	// Output: true
}
