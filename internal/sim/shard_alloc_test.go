package sim

import (
	"testing"

	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/topology"
)

// steadyCoordinator builds a sharded engine on a 32x32 grid (16 shards
// of 8x8 blocks) and pumps it past its transient, so queue capacities,
// listener slots, and interferer sets are all at their high-water marks
// and subsequent events exercise pure steady state. The batch limit is
// set to one so each step drives exactly one event through the full
// coordinator path: shard pick, lookahead bound, dispatch, heap repair.
func steadyCoordinator(tb testing.TB) *coordinator {
	tb.Helper()
	n := 32 * 32
	cfg := Config{
		Network:  model.Homogeneous(n, 60*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt),
		Topology: topology.Grid(32, 32),
		Protocol: Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: 0.5, Delta: 0.1},
		// Horizon and warmup are never reached: the benchmark measures the
		// dispatch loop, not the metrics window machinery (see steadyEngine).
		Duration:  1e18,
		Warmup:    1e17,
		Seed:      1,
		FreezeEta: true,
		Shards:    16,
	}
	if err := cfg.validate(); err != nil {
		tb.Fatal(err)
	}
	c := newCoordinator(cfg, nil, 16)
	c.batchLimit = 1
	c.start()
	for i := 0; i < 200_000; i++ {
		if !c.step() {
			tb.Fatal("queues drained during warm-up")
		}
	}
	return c
}

// BenchmarkShardEventLoop measures one event through the sharded
// engine's hot path, including the coordinator's top-heap maintenance.
// The acceptance bar under -benchmem is 0 allocs/op, same as the
// single-queue loop.
func BenchmarkShardEventLoop(b *testing.B) {
	c := steadyCoordinator(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.step() {
			b.Fatal("queues drained")
		}
	}
}

// TestShardEventLoopSteadyStateAllocs pins the sharded loop's
// allocation-free steady state (tolerance as in the single-queue pin:
// rare amortized high-water-mark growth only).
func TestShardEventLoopSteadyStateAllocs(t *testing.T) {
	c := steadyCoordinator(t)
	avg := testing.AllocsPerRun(50_000, func() {
		if !c.step() {
			t.Fatal("queues drained")
		}
	})
	if avg > 0.01 {
		t.Fatalf("sharded steady-state event loop allocates %.4f allocs/event, want 0", avg)
	}
}
