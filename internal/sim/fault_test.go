package sim

import (
	"testing"

	"econcast/internal/econcast"
	"econcast/internal/faults"
	"econcast/internal/model"
)

// TestFaultKillHalf crashes half the clique mid-run: the run must
// complete, the survivors must keep delivering after the kill, and the
// fault trace must land in the metrics.
func TestFaultKillHalf(t *testing.T) {
	c := baseCfg()
	c.Network = model.Homogeneous(8, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	c.Duration, c.Warmup = 600, 300
	c.Faults = &faults.Config{Crash: &faults.Crash{Kill: []int{0, 1, 2, 3}, KillAt: 200}}
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	// The window starts after the kill, so all measured throughput comes
	// from the 4 survivors.
	if m.Groupput <= 0 {
		t.Fatalf("survivors delivered nothing: groupput = %v", m.Groupput)
	}
	if len(m.FaultTrace) != 4 {
		t.Fatalf("fault trace has %d events, want 4 crash-downs", len(m.FaultTrace))
	}
	for _, ev := range m.FaultTrace {
		if ev.Kind != faults.CrashDown || ev.At != 200 {
			t.Fatalf("unexpected trace event %+v", ev)
		}
	}
	// Dead nodes are parked asleep: they stop consuming after the kill.
	for i := 0; i < 4; i++ {
		if m.Power[i] > model.MicroWatt {
			t.Errorf("dead node %d consumed %v W over the post-kill window", i, m.Power[i])
		}
	}
}

// TestFaultCrashDuringHold kills nodes with a tiny kill offset so crashes
// routinely land mid-hold; the run must stay consistent (no busy-count
// leaks: survivors keep transmitting and delivering).
func TestFaultCrashDuringHold(t *testing.T) {
	for _, killAt := range []float64{50.0005, 150.01, 250.1} {
		c := baseCfg()
		c.Duration, c.Warmup = 400, 300
		c.Faults = &faults.Config{Crash: &faults.Crash{Kill: []int{0, 1}, KillAt: killAt}}
		m, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if m.Groupput <= 0 {
			t.Fatalf("killAt=%v: survivors delivered nothing", killAt)
		}
	}
}

// TestFaultIIDLossScalesThroughput checks i.i.d. reception loss p
// reduces groupput by at least (1-p) relative to the fault-free run.
// The reduction compounds beyond (1-p): lost receptions also shrink the
// transmitter's listener estimate, so the eq. (17) adaptation sees a
// poorer channel and backs off further — the same feedback a real
// transmitter experiences when ping feedback disappears.
func TestFaultIIDLossScalesThroughput(t *testing.T) {
	c := baseCfg()
	c.Duration, c.Warmup = 2000, 500
	base, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	c.Faults = &faults.Config{Loss: &faults.Loss{P: 0.3}}
	lossy, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if lossy.LostReceptions == 0 {
		t.Fatal("30% loss produced no LostReceptions")
	}
	ratio := lossy.Groupput / base.Groupput
	if ratio > 0.75 {
		t.Errorf("groupput ratio under 30%% loss = %v, want <= 1-p (plus adaptation)", ratio)
	}
	if ratio < 0.05 {
		t.Errorf("groupput ratio under 30%% loss = %v — network collapsed instead of degrading", ratio)
	}
}

// TestFaultSilenceDropsDeliveries checks a permanently silenced
// transmitter still occupies the channel but delivers nothing.
func TestFaultSilenceDropsDeliveries(t *testing.T) {
	c := baseCfg()
	c.Network = model.Homogeneous(2, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	c.Duration, c.Warmup = 400, 100
	// Effectively always-silent: the first window starts early and lasts
	// far beyond the horizon on average; retry seeds until both nodes are
	// silenced for the whole measured window.
	c.Faults = &faults.Config{Silence: &faults.Silence{MeanEvery: 1e-3, MeanFor: 1e9}}
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.PacketsDelivered != 0 {
		t.Fatalf("silenced network delivered %d packets", m.PacketsDelivered)
	}
	if m.PacketsSent == 0 {
		t.Fatal("silenced transmitters sent nothing — silence should not stop transmission")
	}
	if m.LostReceptions == 0 {
		t.Fatal("silenced receptions were not counted as lost")
	}
}

// TestFaultDriftKeepsRunning checks clock drift leaves the run healthy
// and deterministic: same seed, same result; drift changes the result.
func TestFaultDriftKeepsRunning(t *testing.T) {
	c := baseCfg()
	c.Duration, c.Warmup = 300, 100
	base, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	c.Faults = &faults.Config{Drift: &faults.Drift{Max: 0.05}}
	a, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Groupput != b.Groupput || a.PacketsSent != b.PacketsSent {
		t.Fatal("drifted runs with the same seed diverged")
	}
	if a.PacketsSent == base.PacketsSent && a.Groupput == base.Groupput {
		t.Fatal("5% drift had no effect at all")
	}
	if a.Groupput <= 0 {
		t.Fatal("drifted network delivered nothing")
	}
}

// TestFaultBrownoutReducesThroughput checks harvest outages reduce
// throughput: with the budget zeroed half the time on average, the rates
// must adapt downward.
func TestFaultBrownoutReducesThroughput(t *testing.T) {
	c := baseCfg()
	c.Duration, c.Warmup = 3000, 1000
	base, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	c.Faults = &faults.Config{Brownout: &faults.Brownout{MeanEvery: 50, MeanFor: 50}}
	brown, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if !(brown.Groupput < base.Groupput) {
		t.Errorf("50%%-duty brownout did not reduce groupput: %v vs %v",
			brown.Groupput, base.Groupput)
	}
	if brown.Groupput <= 0 {
		t.Fatal("browned-out network delivered nothing")
	}
}

// TestFaultRestartRejoins checks a crash/restart churn schedule runs to
// completion and the restarted nodes transmit again (trace has ups).
func TestFaultRestartRejoins(t *testing.T) {
	c := baseCfg()
	c.Duration, c.Warmup = 600, 100
	c.Faults = &faults.Config{Crash: &faults.Crash{MeanUp: 100, MeanDown: 20}}
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	ups := 0
	for _, ev := range m.FaultTrace {
		if ev.Kind == faults.CrashUp {
			ups++
		}
	}
	if ups == 0 {
		t.Skip("no restart landed inside the horizon for this seed")
	}
	if m.Groupput <= 0 {
		t.Fatal("churning network delivered nothing")
	}
}

// TestFaultFreeConfigUnchanged pins that a non-nil Config with no
// processes behaves exactly like no fault config at all.
func TestFaultFreeConfigUnchanged(t *testing.T) {
	c := baseCfg()
	c.Duration, c.Warmup = 200, 50
	base, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	c.Faults = &faults.Config{}
	same, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if base.Groupput != same.Groupput || base.PacketsSent != same.PacketsSent {
		t.Fatal("empty fault config changed the run")
	}
	if same.FaultTrace != nil {
		t.Fatal("empty fault config produced a trace")
	}
}

// TestFaultInvalidConfigRejected checks Run surfaces Compile errors.
func TestFaultInvalidConfigRejected(t *testing.T) {
	c := baseCfg()
	c.Faults = &faults.Config{Crash: &faults.Crash{Kill: []int{99}, KillAt: 1}}
	if _, err := Run(c); err == nil {
		t.Fatal("out-of-range kill index accepted")
	}
}

// TestFaultStressEventLoopAllocs pins the alloc contract with faults
// ENABLED: after the one-time schedule push, steady-state stepping stays
// allocation-free even while loss draws and alive checks run per event.
func TestFaultStressEventLoopAllocs(t *testing.T) {
	cfg := Config{
		Network: model.Homogeneous(8, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt),
		Protocol: Protocol{
			Mode: model.Groupput, Variant: econcast.Capture, Sigma: 0.5, Delta: 0.1,
		},
		// The benchmark horizon is effectively infinite, so only O(1)
		// fault schedules fit (recurring processes would need horizon/mean
		// windows and Compile rejects that density): a deterministic kill,
		// i.i.d. loss (a per-reception draw, no windows), and drift.
		Duration:  1e18,
		Warmup:    1e17,
		Seed:      1,
		FreezeEta: true,
		Faults: &faults.Config{
			Crash: &faults.Crash{Kill: []int{0}, KillAt: 0.5},
			Loss:  &faults.Loss{P: 0.1},
			Drift: &faults.Drift{Max: 0.01},
		},
	}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	flt, err := faults.Compile(cfg.Faults, cfg.Network.N(), cfg.Duration, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(cfg, flt)
	e.start()
	for i := 0; i < 200_000; i++ {
		if !e.step() {
			t.Fatal("queue drained during warm-up")
		}
	}
	avg := testing.AllocsPerRun(50_000, func() {
		if !e.step() {
			t.Fatal("queue drained")
		}
	})
	if avg > 0.01 {
		t.Fatalf("faulty event loop allocates %.4f allocs/event, want 0", avg)
	}
}
