// Sharded spatial-interference engine. For non-clique topologies the
// coordinator partitions nodes into spatial shards (internal/topology's
// Partition), gives each shard its own event heap, and keeps all node
// state in flat structure-of-arrays slices so the per-event working set
// is dense. Dispatch order is the global (time, seq) order of the
// single-queue engine: the coordinator maintains an indexed min-heap
// over shard queue heads and lets the leading shard drain a run of
// events conservatively bounded by the earliest event of any other
// shard (the lookahead bound), resynchronizing whenever an event pushes
// across a shard boundary. Because the dispatch order and the single
// shared RNG stream are exactly those of the single-queue engine,
// results are byte-identical by construction — for any shard count, and
// at any sweep worker count above it.
//
// The performance win is spatial: the single-queue engine's
// hidden-terminal collision scan walks every node's packet slot on each
// transmission start (O(N)); the coordinator inverts the listener
// relation into a per-node counter (listeningTo), so a start checks
// only its own neighbors — O(degree) regardless of N — and each shard's
// event heap stays small enough that heap churn is cache-resident.
package sim

import (
	"fmt"
	"math"

	"econcast/internal/econcast"
	"econcast/internal/faults"
	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/topology"
)

// coordinator is the sharded engine: SoA node state plus the shard
// scheduling structures. Exactly one goroutine drives it.
//
//lint:owner sim-engine the event-loop goroutine owns all coordinator state
type coordinator struct {
	cfg  Config
	n    int
	topo *topology.Topology
	part *topology.Partition
	src  *rng.Source
	flt  *faults.Set

	now     float64
	seq     uint64
	tau     float64
	horizon float64 // cfg.Duration, copied next to the other hot scalars

	shards  []shardRuntime
	shardOf []int32 // node -> owning shard (copied flat for the push path)

	// order is an indexed binary min-heap of shard ids keyed by each
	// shard's earliest event (at, seq); pos[s] is shard s's position in
	// order, -1 while its queue is empty or while it is the detached
	// current shard. The draining shard is removed from the heap for the
	// duration of its batch, so the heap stays fully valid and every
	// cross-shard push can repair its target's position immediately.
	order   []int32
	pos     []int32
	current int32 // shard being drained; pushes elsewhere set crossed
	crossed bool
	done    bool // horizon reached

	// batchLimit caps events per drain batch; 0 means unlimited. The
	// benchmarks set 1 so ns/op measures exactly one event through the
	// full dispatch path.
	batchLimit int

	// SoA node state: one flat slice per field of the single-queue
	// engine's nodeState, indexed by node.
	protos        []econcast.Node // contiguous protocol state slab
	state         []model.State
	version       []uint64
	busy          []int32
	lastUpdate    []float64
	burstCount    []int32
	lastBurstEnd  []float64
	hasBurst      []bool
	sleptSince    []bool
	collidedInPkt []bool

	// Per-transmitter packet slots, SoA like the node state. Listener
	// slices keep their capacity across holds, so starting a packet never
	// allocates in steady state.
	pktActive    []bool
	pktListeners [][]int
	pktBurstLen  []int
	pktDelivered []bool

	// nbr[i] is node i's neighbor set (precomputed, sorted).
	nbr [][]int

	// listeningTo[j] counts the in-flight packets whose listener list
	// holds j (a node frozen in Listen can be captured by several
	// overlapping packets). It inverts the pktListeners relation, so the
	// hidden-terminal check at transmission start is one counter load per
	// neighbor instead of a scan over every nearby in-flight packet.
	listeningTo []int32

	// headAt/headSeq cache each shard's earliest-event key. shardLess
	// reads these two dense arrays (hot in cache at any shard count)
	// instead of chasing into per-shard queue storage; fix refreshes a
	// shard's entry whenever its head may have changed.
	headAt  []float64
	headSeq []uint64

	logging    bool
	packetTime float64

	// onDispatch, when non-nil, observes every dispatched event in order
	// (test instrumentation; nil in production runs).
	onDispatch func(event)

	met           Metrics
	measuring     bool
	warmupBattery []float64
	occLast       float64
}

func newCoordinator(cfg Config, flt *faults.Set, shards int) *coordinator {
	n := cfg.Network.N()
	c := &coordinator{
		cfg:        cfg,
		n:          n,
		horizon:    cfg.Duration,
		topo:       cfg.Topology,
		part:       topology.NewPartition(cfg.Topology, shards),
		src:        rng.New(cfg.Seed),
		flt:        flt,
		logging:    cfg.EventLog != nil,
		packetTime: model.DefaultIfZero(cfg.Protocol.PacketTime, 1e-3),

		protos:        make([]econcast.Node, n),
		state:         make([]model.State, n),
		version:       make([]uint64, n),
		busy:          make([]int32, n),
		lastUpdate:    make([]float64, n),
		burstCount:    make([]int32, n),
		lastBurstEnd:  make([]float64, n),
		hasBurst:      make([]bool, n),
		sleptSince:    make([]bool, n),
		collidedInPkt: make([]bool, n),

		pktActive:    make([]bool, n),
		pktListeners: make([][]int, n),
		pktBurstLen:  make([]int, n),
		pktDelivered: make([]bool, n),

		nbr:         make([][]int, n),
		listeningTo: make([]int32, n),
		shardOf:     make([]int32, n),
	}
	if cfg.TrackOccupancy {
		c.met.Occupancy = make(map[model.NetState]float64)
	}
	ns := c.part.Shards()
	c.shards = make([]shardRuntime, ns)
	for s := range c.shards {
		c.shards[s].id = int32(s)
	}
	c.order = make([]int32, 0, ns)
	c.pos = make([]int32, ns)
	c.headAt = make([]float64, ns)
	c.headSeq = make([]uint64, ns)
	for s := range c.pos {
		c.pos[s] = -1
	}
	c.current = -1
	for i := 0; i < n; i++ {
		c.nbr[i] = c.topo.Neighbors(i)
		c.shardOf[i] = int32(c.part.ShardOf(i))
	}
	for i := 0; i < n; i++ {
		nd := cfg.Network.Nodes[i]
		pc := econcast.Config{
			Mode:               cfg.Protocol.Mode,
			Variant:            cfg.Protocol.Variant,
			Sigma:              cfg.Protocol.Sigma,
			Delta:              cfg.Protocol.Delta,
			Tau:                cfg.Protocol.Tau,
			Budget:             nd.Budget,
			ListenPower:        nd.ListenPower,
			TransmitPower:      nd.TransmitPower,
			PacketTime:         cfg.Protocol.PacketTime,
			InitialBattery:     cfg.InitialBattery,
			ClampBatteryAtZero: cfg.HardBatteryFloor,
		}
		if cfg.FreezeEta {
			// A vanishing step makes the eq. (17) updates no-ops, keeping
			// eta pinned to its warm-start value.
			pc.Delta = 1e-300
		}
		// Same brownout/harvest wrapper selection as the single-queue
		// engine: the exact constant-budget path is kept bit-for-bit when
		// neither a profile nor a brownout schedule exists.
		if v := flt.View(i); cfg.Harvest != nil {
			node := i
			if v.HasBrownout() {
				pc.Harvest = func(t float64) float64 { return cfg.Harvest(node, t) * v.HarvestScale(t) }
			} else {
				pc.Harvest = func(t float64) float64 { return cfg.Harvest(node, t) }
			}
		} else if v.HasBrownout() {
			budget := nd.Budget
			pc.Harvest = func(t float64) float64 { return budget * v.HarvestScale(t) }
		}
		c.protos[i] = *econcast.NewNode(pc)
		c.state[i] = model.Sleep
		c.lastBurstEnd[i] = -1
		if cfg.WarmEta != nil {
			p0 := math.Max(nd.ListenPower, nd.TransmitPower)
			c.protos[i].SetEta(cfg.WarmEta[i] * p0)
		}
	}
	return c
}

func (c *coordinator) run() {
	c.start()
	for c.step() {
	}
	c.drain()
}

// start mirrors engine.start: every node's first transition and
// multiplier tick plus all fault boundaries, seeded in node order so
// sequence numbers and RNG draws line up with the single-queue engine.
func (c *coordinator) start() {
	c.tau = c.protos[0].Config().Tau
	for i := 0; i < c.n; i++ {
		c.scheduleTransition(i)
		c.push(event{at: c.tau, kind: evTick, node: i})
		node := i
		c.flt.Boundaries(i, func(at float64) {
			c.push(event{at: at, kind: evFault, node: node})
		})
	}
	c.crossed = false
}

// step runs one coordinator round: pick the shard owning the globally
// earliest event, detach it from the heap, let it drain up to the
// conservative lookahead bound (the earliest event of any other shard —
// the root of the remaining heap), and re-attach it. It returns false
// once every queue is empty or the horizon was reached.
func (c *coordinator) step() bool {
	if c.done || len(c.order) == 0 {
		return false
	}
	s := c.order[0]
	// Detach s for the duration of its batch: its head changes with every
	// pop and push, and the eager cross-shard fixes in push are only sound
	// against a heap that is valid everywhere. A stale s left at the root
	// would let a pushed-to shard rise to the root from the other subtree
	// without ever being compared against the true minimum of the
	// remaining shards.
	last := len(c.order) - 1
	c.orderSwap(0, last)
	c.order = c.order[:last]
	c.pos[s] = -1
	if last > 0 {
		c.siftDown(0)
	}
	boundAt := math.Inf(1)
	boundSeq := uint64(0)
	if len(c.order) > 0 {
		b := c.order[0]
		boundAt, boundSeq = c.headAt[b], c.headSeq[b]
	}
	c.shards[s].run(c, boundAt, boundSeq)
	c.fix(s) // re-attach; a no-op if the batch drained the queue
	return !c.done
}

// drain performs the final energy (and occupancy) accrual to the horizon.
func (c *coordinator) drain() {
	if c.cfg.TrackOccupancy && c.measuring {
		c.accrueOccupancy(c.cfg.Duration)
	}
	c.now = c.cfg.Duration
	for i := 0; i < c.n; i++ {
		c.accrue(i)
	}
}

// dispatch realizes one event, mirroring the body of engine.step after
// its horizon check.
func (c *coordinator) dispatch(ev event) {
	if c.onDispatch != nil {
		c.onDispatch(ev)
	}
	c.met.Events++
	if c.cfg.TrackOccupancy && c.measuring {
		c.accrueOccupancy(ev.at)
	}
	c.now = ev.at
	if !c.measuring && c.now >= c.cfg.Warmup {
		c.measuring = true
		c.occLast = c.now
		c.warmupBattery = make([]float64, c.n) //lint:allow hotalloc once per run, at the warmup boundary
		for i := 0; i < c.n; i++ {
			c.accrue(i)
			c.warmupBattery[i] = c.protos[i].Battery()
		}
	}
	switch ev.kind {
	case evTransition:
		if ev.version == c.version[ev.node] {
			c.handleTransition(ev.node)
		} // else stale: dropped
	case evPacketEnd:
		c.handlePacketEnd(ev.node)
	case evTick:
		c.handleTick(ev.node, c.tau)
	case evFault:
		c.handleFault(ev.node)
	}
}

// push routes an event to its node's shard, assigning the global
// sequence number. A push into a foreign shard invalidates the current
// drain batch's lookahead bound and repairs that shard's heap position
// eagerly. With the draining shard detached (see step), the heap holds
// no stale entries, so each single-position fix restores full validity
// before the next comparison — repairing several stale positions one at
// a time would not (a sift-up displaces clean ancestors down into
// subtrees still holding stale nodes).
func (c *coordinator) push(ev event) {
	ev.seq = c.seq
	c.seq++
	s := c.shardOf[ev.node]
	c.shards[s].queue.push(ev)
	if s != c.current {
		c.crossed = true
		c.fix(s)
	}
}

// shardLess orders shards by their earliest event, read from the dense
// head-key cache (refreshed by fix).
func (c *coordinator) shardLess(a, b int32) bool {
	if c.headAt[a] != c.headAt[b] { //lint:allow floateq exact tie detection so equal-time events fall through to the seq tiebreak
		return c.headAt[a] < c.headAt[b]
	}
	return c.headSeq[a] < c.headSeq[b]
}

// fix restores shard s's position in the indexed heap after its queue
// head changed (or the queue emptied or became non-empty), refreshing
// its cached head key first. Sound only when every other heap entry is
// clean — guaranteed because the draining shard is detached and every
// cross-shard push fixes its target immediately.
func (c *coordinator) fix(s int32) {
	i := c.pos[s]
	if len(c.shards[s].queue) == 0 {
		if i < 0 {
			return
		}
		last := len(c.order) - 1
		c.orderSwap(int(i), last)
		c.order = c.order[:last]
		c.pos[s] = -1
		if int(i) < last {
			c.fixPos(int(i))
		}
		return
	}
	head := &c.shards[s].queue[0]
	c.headAt[s], c.headSeq[s] = head.at, head.seq
	if i < 0 {
		c.pos[s] = int32(len(c.order))
		c.order = append(c.order, s) //lint:allow hotalloc capacity reaches the shard count and stays
		c.siftUp(len(c.order) - 1)
		return
	}
	c.fixPos(int(i))
}

// fixPos re-heaps the element at position i: sift up, and only if it
// did not rise, sift down (container/heap's Fix discipline).
func (c *coordinator) fixPos(i int) {
	s := c.order[i]
	c.siftUp(i)
	if c.pos[s] == int32(i) {
		c.siftDown(i)
	}
}

func (c *coordinator) orderSwap(i, j int) {
	c.order[i], c.order[j] = c.order[j], c.order[i]
	c.pos[c.order[i]] = int32(i)
	c.pos[c.order[j]] = int32(j)
}

func (c *coordinator) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !c.shardLess(c.order[i], c.order[parent]) {
			return
		}
		c.orderSwap(i, parent)
		i = parent
	}
}

func (c *coordinator) siftDown(i int) {
	n := len(c.order)
	for {
		child := 2*i + 1
		if child >= n {
			return
		}
		if r := child + 1; r < n && c.shardLess(c.order[r], c.order[child]) {
			child = r
		}
		if !c.shardLess(c.order[child], c.order[i]) {
			return
		}
		c.orderSwap(i, child)
		i = child
	}
}

// ---- handlers: exact ports of the engine handlers onto SoA state ----

func (c *coordinator) accrue(i int) {
	if dt := c.now - c.lastUpdate[i]; dt > 0 {
		c.protos[i].Advance(dt, c.state[i])
		c.lastUpdate[i] = c.now
	}
}

func (c *coordinator) bump(i int) { c.version[i]++ }

func (c *coordinator) active(i int, t float64) bool {
	if c.cfg.Churn != nil && !c.cfg.Churn(i, t) {
		return false
	}
	return c.flt.Alive(i, t)
}

func (c *coordinator) currentNetState() model.NetState {
	s := model.NetState{Transmitter: model.NoTransmitter}
	for i := 0; i < c.n; i++ {
		switch c.state[i] {
		case model.Transmit:
			s.Transmitter = i
		case model.Listen:
			s.Listeners |= 1 << uint(i)
		}
	}
	return s
}

func (c *coordinator) accrueOccupancy(until float64) {
	if until > c.cfg.Duration {
		until = c.cfg.Duration
	}
	dt := until - c.occLast
	if dt <= 0 {
		return
	}
	c.met.Occupancy[c.currentNetState()] += dt
	c.occLast = until
}

func (c *coordinator) setState(i int, st model.State) {
	c.accrue(i)
	if c.logging {
		c.logf("%.6f node %d: %v -> %v", c.now, i, c.state[i], st) //lint:allow hotalloc trace logging; c.logging is off in measured runs
	}
	c.state[i] = st
}

// logf writes one trace line; hot-path callers gate on c.logging (see
// engine.logf for why).
func (c *coordinator) logf(format string, args ...any) {
	if c.cfg.EventLog != nil {
		fmt.Fprintf(c.cfg.EventLog, format+"\n", args...)
	}
}

func (c *coordinator) estimateFor(i, count int) float64 {
	if c.cfg.EstimateListeners != nil {
		count = c.cfg.EstimateListeners(count, c.src)
		if count < 0 {
			count = 0
		}
	}
	return c.protos[i].Estimate(count)
}

func (c *coordinator) listenEstimate(i int) float64 {
	count := 0
	for _, j := range c.nbr[i] {
		if c.state[j] == model.Listen {
			count++
		}
	}
	return c.estimateFor(i, count)
}

func (c *coordinator) scheduleTransition(i int) {
	c.bump(i)
	if c.state[i] == model.Transmit {
		return
	}
	if c.cfg.HardBatteryFloor && c.state[i] == model.Sleep && c.protos[i].Depleted() {
		return // stays asleep until a tick finds the battery recovered
	}
	if !c.active(i, c.now) {
		return // absent or crashed: re-checked at the next tick / restart
	}
	carrierFree := c.busy[i] == 0
	est := 0.0
	if c.cfg.Protocol.Variant == econcast.NonCapture && c.state[i] == model.Listen {
		est = c.listenEstimate(i)
	}
	r := c.protos[i].Rates(carrierFree, est)
	var total float64
	switch c.state[i] {
	case model.Sleep:
		total = r.SleepToListen
	case model.Listen:
		total = r.ListenToSleep + r.ListenToTransmit
	}
	if total <= 0 {
		return
	}
	dwell := c.src.Exp(total)
	if c.state[i] == model.Sleep {
		// Sleep intervals run off the drift-scaled low-power clock, as in
		// the single-queue engine.
		dwell *= c.flt.Drift(i)
	}
	c.push(event{
		at:      c.now + dwell,
		kind:    evTransition,
		node:    i,
		version: c.version[i],
	})
}

func (c *coordinator) handleTransition(i int) {
	c.accrue(i)
	switch c.state[i] {
	case model.Sleep:
		c.setState(i, model.Listen)
		c.onListenSetChanged(i)
		c.scheduleTransition(i)
	case model.Listen:
		carrierFree := c.busy[i] == 0
		est := 0.0
		if c.cfg.Protocol.Variant == econcast.NonCapture {
			est = c.listenEstimate(i)
		}
		r := c.protos[i].Rates(carrierFree, est)
		total := r.ListenToSleep + r.ListenToTransmit
		if total <= 0 {
			return
		}
		if c.src.Float64()*total < r.ListenToTransmit {
			c.startTransmission(i)
		} else {
			c.flushBurst(i)
			c.setState(i, model.Sleep)
			c.sleptSince[i] = true
			c.onListenSetChanged(i)
			c.scheduleTransition(i)
		}
	}
}

func (c *coordinator) onListenSetChanged(i int) {
	if c.cfg.Protocol.Variant != econcast.NonCapture {
		return
	}
	for _, j := range c.nbr[i] {
		if c.state[j] == model.Listen {
			c.scheduleTransition(j)
		}
	}
}

func (c *coordinator) startTransmission(i int) {
	if c.busy[i] != 0 {
		// Carrier sensing (the A(t) gate) must make this unreachable.
		panic(fmt.Sprintf("sim: node %d transmitting into a busy channel", i))
	}
	c.flushBurst(i)
	c.setState(i, model.Transmit)
	c.bump(i) // no timer while transmitting
	c.onListenSetChanged(i)
	// Occupy the channel: each neighbor gains one transmitting neighbor.
	// Hidden-terminal collisions ride the same pass: a neighbor j sitting
	// in any in-flight packet's listener list (listeningTo[j] > 0) now
	// hears two transmitters, so its reception is collided. Marking the
	// node rather than the (packet, node) pair matches the engine's
	// global scan — collidedInPkt is per-node there too — and the
	// listeningTo inversion makes the check one counter load instead of
	// walking every nearby packet's listeners.
	for _, j := range c.nbr[i] {
		c.busy[j]++
		if c.busy[j] == 1 && c.state[j] != model.Transmit {
			// Channel became busy for j: freeze by resampling (rates -> 0).
			c.scheduleTransition(j)
		}
		if c.listeningTo[j] > 0 && !c.collidedInPkt[j] {
			c.collidedInPkt[j] = true
			if c.measuring {
				c.met.CollidedReceptions++
			}
		}
	}
	c.startPacket(i, 0, false)
}

func (c *coordinator) startPacket(i, burstLen int, delivered bool) {
	c.pktActive[i] = true
	c.pktBurstLen[i] = burstLen
	c.pktDelivered[i] = delivered
	listeners := c.pktListeners[i][:0]
	for _, j := range c.nbr[i] {
		if c.state[j] == model.Listen {
			listeners = append(listeners, j) //lint:allow hotalloc reuses the slot's capacity; grows at most deg times per run
			c.listeningTo[j]++
			c.collidedInPkt[j] = c.busy[j] > 1
			if c.collidedInPkt[j] && c.measuring {
				c.met.CollidedReceptions++
			}
		}
	}
	c.pktListeners[i] = listeners
	if c.logging {
		c.logf("%.6f node %d: packet %d of hold, %d listeners",
			c.now, i, burstLen+1, len(listeners)) //lint:allow hotalloc trace logging; c.logging is off in measured runs
	}
	c.push(event{at: c.now + c.packetTime, kind: evPacketEnd, node: i})
}

func (c *coordinator) handlePacketEnd(i int) {
	if !c.pktActive[i] || c.state[i] != model.Transmit {
		return
	}
	// A stuck (silenced) radio transmits carrier but delivers nothing;
	// receiver-side loss draws are skipped for silenced packets (see the
	// engine's handler).
	silenced := c.flt.Silenced(i, c.now)
	success := 0
	for _, j := range c.pktListeners[i] {
		c.listeningTo[j]-- // this packet is over; balances startPacket
		if c.state[j] != model.Listen {
			// Left mid-packet (churn departure or crash): no reception.
			c.collidedInPkt[j] = false
			continue
		}
		if c.collidedInPkt[j] {
			c.collidedInPkt[j] = false
			continue
		}
		if silenced || c.flt.DropRx(j, c.now) {
			if c.measuring {
				c.met.LostReceptions++
			}
			continue
		}
		success++
		c.burstCount[j]++
		if c.cfg.OnDeliver != nil {
			c.cfg.OnDeliver(i, j, c.now)
		}
		if c.measuring {
			c.met.PacketsDelivered++
			// Burst/latency bookkeeping: first packet of a receive burst.
			if c.burstCount[j] == 1 && c.hasBurst[j] && c.sleptSince[j] {
				c.met.Latency.Add(c.now - c.packetTime - c.lastBurstEnd[j])
			}
			c.sleptSince[j] = false
		}
		c.lastBurstEnd[j] = c.now
		c.hasBurst[j] = true
	}
	if c.measuring {
		c.met.PacketsSent++
		c.met.Groupput += float64(success) * c.packetTime
		if success > 0 {
			c.met.PacketsAnyDeliver++
			c.met.Anyput += c.packetTime
		}
	}
	if success > 0 {
		c.pktDelivered[i] = true
	}
	// The slot stays readable for the remainder of this handler;
	// startPacket reclaims it on a hold.
	c.pktActive[i] = false

	// A physically depleted listener is forced to sleep to recharge.
	if c.cfg.HardBatteryFloor {
		for _, j := range c.pktListeners[i] {
			c.accrue(j)
			if c.state[j] == model.Listen && c.protos[j].Depleted() {
				c.flushBurst(j)
				c.setState(j, model.Sleep)
				c.sleptSince[j] = true
				c.bump(j)
				c.onListenSetChanged(j)
			}
		}
	}

	// Decide whether to hold the channel (EconCast-C) or release; a
	// depleted transmitter must release regardless.
	c.accrue(i)
	est := c.estimateFor(i, success)
	cont := c.protos[i].ContinueTransmitProb(est)
	forced := c.cfg.HardBatteryFloor && c.protos[i].Depleted()
	if !c.active(i, c.now) {
		forced = true // departed or crashed: release the channel now
	}
	if !forced && c.src.Bernoulli(cont) {
		c.startPacket(i, c.pktBurstLen[i]+1, c.pktDelivered[i])
		return
	}
	// Hold complete: record its length if it reached any receiver.
	if c.pktDelivered[i] && c.measuring {
		c.met.BurstLengths.Add(float64(c.pktBurstLen[i] + 1))
	}
	// Release: transmitter returns to listen (Fig. 1), neighbors unfreeze.
	c.setState(i, model.Listen)
	c.scheduleTransition(i)
	for _, j := range c.nbr[i] {
		c.busy[j]--
		if c.busy[j] == 0 && c.state[j] != model.Transmit {
			c.scheduleTransition(j)
		}
	}
	c.onListenSetChanged(i)
}

func (c *coordinator) flushBurst(i int) {
	c.burstCount[i] = 0
}

func (c *coordinator) handleTick(i int, tau float64) {
	c.accrue(i)
	// Departure: an absent node abandons listening (transmitters finish
	// their current hold first; the packet machinery owns that state).
	if !c.active(i, c.now) && c.state[i] == model.Listen {
		c.flushBurst(i)
		c.setState(i, model.Sleep)
		c.sleptSince[i] = true
		c.bump(i)
		c.onListenSetChanged(i)
	}
	if c.cfg.OnTick != nil {
		nd := c.cfg.Network.Nodes[i]
		p0 := math.Max(nd.ListenPower, nd.TransmitPower)
		c.cfg.OnTick(i, c.now, c.protos[i].Eta()/p0)
	}
	if c.state[i] != model.Transmit {
		c.scheduleTransition(i)
	}
	c.push(event{at: c.now + tau, kind: evTick, node: i})
}

func (c *coordinator) handleFault(i int) {
	c.accrue(i)
	if c.flt.Alive(i, c.now) {
		if c.state[i] != model.Transmit {
			c.scheduleTransition(i)
		}
		return
	}
	// Crashed. A transmitter abandons its hold: the in-flight packet
	// dies undelivered and the channel is released for its neighbors.
	switch c.state[i] {
	case model.Transmit:
		if c.pktActive[i] {
			for _, j := range c.pktListeners[i] {
				c.listeningTo[j]--
				c.collidedInPkt[j] = false
			}
			c.pktActive[i] = false
		}
		c.setState(i, model.Sleep)
		c.bump(i)
		for _, j := range c.nbr[i] {
			c.busy[j]--
			if c.busy[j] == 0 && c.state[j] != model.Transmit {
				c.scheduleTransition(j)
			}
		}
		c.onListenSetChanged(i)
	case model.Listen:
		c.flushBurst(i)
		c.setState(i, model.Sleep)
		c.sleptSince[i] = true
		c.bump(i)
		c.onListenSetChanged(i)
	default:
		c.bump(i) // cancel any pending wake-up; stays down until restart
	}
}

// finish assembles the metrics, mirroring engine.finish.
func (c *coordinator) finish() *Metrics {
	window := c.cfg.Duration - c.cfg.Warmup
	c.met.Window = window
	c.met.Groupput /= window
	c.met.Anyput /= window
	// Order audit: each occupancy entry is scaled independently at its own
	// key — no cross-key accumulation — so iteration order cannot affect
	// the result (econlint's maprange proves this shape order-insensitive).
	for s := range c.met.Occupancy {
		c.met.Occupancy[s] /= window
	}
	c.met.Power = make([]float64, c.n)
	c.met.EtaFinal = make([]float64, c.n)
	c.met.Battery = make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		nd := c.cfg.Network.Nodes[i]
		// Mean consumption over the window: harvest - net battery gain.
		start := c.cfg.InitialBattery
		if c.warmupBattery != nil {
			start = c.warmupBattery[i]
		}
		gained := c.protos[i].Battery() - start
		c.met.Power[i] = nd.Budget - gained/window
		p0 := math.Max(nd.ListenPower, nd.TransmitPower)
		c.met.EtaFinal[i] = c.protos[i].Eta() / p0
		c.met.Battery[i] = c.protos[i].Battery()
	}
	c.met.FaultTrace = c.flt.Trace()
	return &c.met
}
