// Sharded spatial-interference engine. For non-clique topologies the
// coordinator partitions nodes into spatial shards (internal/topology's
// Partition), gives each shard its own event heap, and keeps all node
// state in flat structure-of-arrays slices so the per-event working set
// is dense. Dispatch order is the global (time, key) order of the
// single-queue engine: the coordinator maintains an indexed min-heap
// over shard queue heads and lets the leading shard drain a run of
// events conservatively bounded by the earliest event of any other
// shard (the lookahead bound), resynchronizing whenever an event pushes
// across a shard boundary. Because the dispatch order, the per-node RNG
// streams, and the content-derived event keys are exactly those of the
// single-queue engine, results are byte-identical by construction — for
// any shard count, and at any sweep worker count above it.
//
// The handler bodies live on dispCtx, a per-dispatcher view over the
// shared SoA state: the serial coordinator drives a single dispCtx from
// its event-loop goroutine, and the parallel engine (par.go) gives each
// shard worker its own dispCtx over the same arrays, so both engines
// execute literally the same handler code. Everything a handler mutates
// is either owned by the event's node (SoA entries, per-node RNG
// streams and metric accumulators) or private to the dispCtx (clock,
// counters, latency buffer), which is what makes the parallel schedule
// equivalent to this serial one — see DESIGN.md §9.
//
// The performance win of sharding alone is spatial: the single-queue
// engine's hidden-terminal collision scan walks every node's packet
// slot on each transmission start (O(N)); the coordinator inverts the
// listener relation into a per-node counter (listeningTo), so a start
// checks only its own neighbors — O(degree) regardless of N — and each
// shard's event heap stays small enough that heap churn is
// cache-resident.
package sim

import (
	"fmt"
	"math"

	"econcast/internal/econcast"
	"econcast/internal/faults"
	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/stats"
	"econcast/internal/topology"
)

// coordinator is the sharded engine: SoA node state plus the shard
// scheduling structures. In a serial run exactly one goroutine drives
// it; in a parallel run (par.go) shard workers share the SoA arrays
// under the window-synchronization protocol and the scheduling fields
// (order/pos/current/crossed) stay idle.
//
//lint:owner sim-engine the event-loop goroutine owns all coordinator state
type coordinator struct {
	cfg  Config
	n    int
	topo *topology.Topology
	part *topology.Partition
	flt  *faults.Set

	tau     float64
	horizon float64 // cfg.Duration, copied next to the other hot scalars
	shift   uint    // node-id bit width of the event key

	// split, when true, routes events at interior nodes (Depths > wdepth,
	// marked fInterior) into each shard's separate interior heap so the
	// parallel engine (par.go) can drain interior prefixes concurrently;
	// the serial engine leaves it false and uses one heap per shard.
	split  bool
	wdepth int

	shards  []shardRuntime
	shardOf []int32 // node -> owning shard (copied flat for the push path)

	// order is an indexed binary min-heap of shard ids keyed by each
	// shard's earliest event (at, seq); pos[s] is shard s's position in
	// order, -1 while its queue is empty or while it is the detached
	// current shard. The draining shard is removed from the heap for the
	// duration of its batch, so the heap stays fully valid and every
	// cross-shard push can repair its target's position immediately.
	order   []int32
	pos     []int32
	current int32 // shard being drained; pushes elsewhere set crossed
	crossed bool
	done    bool // horizon reached

	// batchLimit caps events per drain batch; 0 means unlimited. The
	// benchmarks set 1 so ns/op measures exactly one event through the
	// full dispatch path.
	batchLimit int

	// rngs holds one independent stream per node; every draw is
	// attributed to the node whose transition, packet decision, or
	// estimate it realizes, so each stream's draw sequence is a function
	// of that node's event history alone — identical across the
	// single-queue, serial-sharded, and parallel engines.
	rngs []rng.Source

	// lamport[i] is node i's logical clock for the canonical event
	// order; see engine.push for the key construction.
	lamport []uint64

	// hot is the cache-line-packed per-node dynamic state: one 64-byte
	// record per node holding every scalar the dispatch path reads or
	// writes, replacing nine parallel SoA slices whose per-event working
	// set spanned nine cache lines.
	hot []nodeHot

	// cores is the per-node protocol dynamic state (64 bytes each);
	// params holds the deduplicated immutable parameter blocks and
	// paramOf/harvest map nodes onto them. Splitting econcast.Node this
	// way keeps the per-node footprint at one cache line for the
	// dispatch path plus one for the energy ledger.
	cores   []econcast.Core
	params  []econcast.Params
	paramOf []int32
	harvest []func(float64) float64

	// Per-transmitter packet slots, SoA like the node state. Listener
	// slices keep their capacity across holds, so starting a packet never
	// allocates in steady state.
	pktActive    []bool
	pktListeners [][]int
	pktBurstLen  []int
	pktDelivered []bool

	// nbr[i] is node i's neighbor set (precomputed, sorted).
	nbr [][]int

	// listeningTo[j] counts the in-flight packets whose listener list
	// holds j (a node frozen in Listen can be captured by several
	// overlapping packets). It inverts the pktListeners relation, so the
	// hidden-terminal check at transmission start is one counter load per
	// neighbor instead of a scan over every nearby in-flight packet.
	listeningTo []int32

	// headAt/headSeq cache each shard's earliest-event key. shardLess
	// reads these two dense arrays (hot in cache at any shard count)
	// instead of chasing into per-shard queue storage; fix refreshes a
	// shard's entry whenever its head may have changed.
	headAt  []float64
	headSeq []uint64

	logging    bool
	packetTime float64

	// onDispatch, when non-nil, observes every dispatched event in order
	// (test instrumentation; nil in production runs).
	onDispatch func(event)

	// Canonical per-node metric accumulation (see engine): throughput
	// seconds and burst moments are attributed to the transmitter and
	// folded in node order by finish, so the totals are independent of
	// the dispatch schedule's interleaving across nodes.
	gp            []float64
	ap            []float64
	bl            []stats.Accumulator
	warmupBattery []float64

	met        Metrics
	occStarted bool
	occLast    float64

	// ctx is the serial dispatcher; the parallel engine builds one
	// dispCtx per shard worker instead and leaves this one to drain.
	ctx dispCtx
}

// nodeHot packs one node's dispatch-path dynamic state into a single
// 64-byte cache line. The former bool slices became bits of flags; the
// transition version is 32 bits here (the event struct keeps 64 — the
// coordinator casts, and a version cannot realistically wrap within one
// transition's lifetime since wrapping would take 2^32 re-schedules of
// one node while its event is in flight).
type nodeHot struct {
	lastUpdate   float64
	lastBurstEnd float64
	version      uint32
	busy         int32
	burstCount   int32
	state        model.State
	flags        uint8
	_            [2]byte
	_            [32]byte // pad to 64 bytes; see sizeof test
}

// nodeHot flag bits.
const (
	fHasBurst uint8 = 1 << iota
	fSleptSince
	fCollidedInPkt
	fWarmSnapped
	fInterior // deeper than wdepth: eligible for parallel window dispatch (par.go)
)

func (h *nodeHot) has(f uint8) bool { return h.flags&f != 0 }
func (h *nodeHot) set(f uint8)      { h.flags |= f }
func (h *nodeHot) clear(f uint8)    { h.flags &^= f }
func (h *nodeHot) put(f uint8, v bool) {
	if v {
		h.flags |= f
	} else {
		h.flags &^= f
	}
}

// dispCtx is one dispatcher's view over the coordinator's shared state:
// the event clock, the measuring predicate, and the schedule-private
// metric counters. The serial coordinator has exactly one; the parallel
// engine has one per shard worker. Handlers are methods on dispCtx so
// both engines share their bodies; everything reached through the
// embedded coordinator is either node-owned (safe under the parallel
// window protocol) or immutable after construction.
type dispCtx struct {
	*coordinator

	now        float64
	curLamport uint64
	measuring  bool

	// par, when non-nil, routes pushes through the parallel engine's
	// per-shard heaps and cross-shard staging lanes instead of the
	// coordinator's indexed heap.
	par *parShard

	// Schedule-private integer counters; exact sums, folded by finish.
	events           int
	packetsSent      int
	packetsDelivered int
	packetsAny       int
	collided         int
	lostRx           int

	// Latency samples are receiver-attributed and order-insensitive:
	// finish concatenates all buffers and seals them into a sorted CDF.
	latency []float64
}

func newCoordinator(cfg Config, flt *faults.Set, shards int) *coordinator {
	n := cfg.Network.N()
	c := &coordinator{
		cfg:        cfg,
		n:          n,
		horizon:    cfg.Duration,
		shift:      seqShift(n),
		topo:       cfg.Topology,
		part:       topology.NewPartition(cfg.Topology, shards),
		flt:        flt,
		logging:    cfg.EventLog != nil,
		packetTime: model.DefaultIfZero(cfg.Protocol.PacketTime, 1e-3),

		rngs:    make([]rng.Source, n),
		lamport: make([]uint64, n),
		hot:     make([]nodeHot, n),
		cores:   make([]econcast.Core, n),
		paramOf: make([]int32, n),
		harvest: make([]func(float64) float64, n),

		pktActive:    make([]bool, n),
		pktListeners: make([][]int, n),
		pktBurstLen:  make([]int, n),
		pktDelivered: make([]bool, n),

		nbr:         make([][]int, n),
		listeningTo: make([]int32, n),
		shardOf:     make([]int32, n),

		gp:            make([]float64, n),
		ap:            make([]float64, n),
		bl:            make([]stats.Accumulator, n),
		warmupBattery: make([]float64, n),
	}
	c.ctx.coordinator = c
	if cfg.TrackOccupancy {
		c.met.Occupancy = make(map[model.NetState]float64)
	}
	ns := c.part.Shards()
	c.shards = make([]shardRuntime, ns)
	for s := range c.shards {
		c.shards[s].id = int32(s)
	}
	c.order = make([]int32, 0, ns)
	c.pos = make([]int32, ns)
	c.headAt = make([]float64, ns)
	c.headSeq = make([]uint64, ns)
	for s := range c.pos {
		c.pos[s] = -1
	}
	c.current = -1
	for i := 0; i < n; i++ {
		c.nbr[i] = c.topo.Neighbors(i)
		c.shardOf[i] = int32(c.part.ShardOf(i))
		c.rngs[i] = *rng.New(rng.DeriveSeed(cfg.Seed, rngNodeDomain, uint64(i)))
	}
	// Parameter blocks are immutable and comparable, so identical nodes
	// share one block: a homogeneous network keeps a single Params hot in
	// cache instead of n copies interleaved with the dynamic state.
	seen := make(map[econcast.Params]int32, 1)
	for i := 0; i < n; i++ {
		nd := cfg.Network.Nodes[i]
		pc := econcast.Config{
			Mode:               cfg.Protocol.Mode,
			Variant:            cfg.Protocol.Variant,
			Sigma:              cfg.Protocol.Sigma,
			Delta:              cfg.Protocol.Delta,
			Tau:                cfg.Protocol.Tau,
			Budget:             nd.Budget,
			ListenPower:        nd.ListenPower,
			TransmitPower:      nd.TransmitPower,
			PacketTime:         cfg.Protocol.PacketTime,
			InitialBattery:     cfg.InitialBattery,
			ClampBatteryAtZero: cfg.HardBatteryFloor,
		}
		if cfg.FreezeEta {
			// A vanishing step makes the eq. (17) updates no-ops, keeping
			// eta pinned to its warm-start value.
			pc.Delta = 1e-300
		}
		par := econcast.NewParams(pc)
		id, ok := seen[par]
		if !ok {
			id = int32(len(c.params))
			c.params = append(c.params, par)
			seen[par] = id
		}
		c.paramOf[i] = id
		// Same brownout/harvest wrapper selection as the single-queue
		// engine: the exact constant-budget path is kept bit-for-bit when
		// neither a profile nor a brownout schedule exists.
		if v := flt.View(i); cfg.Harvest != nil {
			node := i
			if v.HasBrownout() {
				c.harvest[i] = func(t float64) float64 { return cfg.Harvest(node, t) * v.HarvestScale(t) }
			} else {
				c.harvest[i] = func(t float64) float64 { return cfg.Harvest(node, t) }
			}
		} else if v.HasBrownout() {
			budget := nd.Budget
			c.harvest[i] = func(t float64) float64 { return budget * v.HarvestScale(t) }
		}
		c.cores[i] = econcast.NewCore(cfg.InitialBattery)
		c.hot[i].state = model.Sleep
		c.hot[i].lastBurstEnd = -1
		if cfg.WarmEta != nil {
			p0 := math.Max(nd.ListenPower, nd.TransmitPower)
			c.cores[i].Eta = cfg.WarmEta[i] * p0
		}
	}
	return c
}

// pr returns node i's shared parameter block.
func (c *coordinator) pr(i int) *econcast.Params { return &c.params[c.paramOf[i]] }

func (c *coordinator) run() {
	c.start()
	for c.step() {
	}
	c.drain()
}

// start mirrors engine.start: every node's first transition and
// multiplier tick plus all fault boundaries, seeded in node order so
// event keys and RNG draws line up with the single-queue engine.
func (c *coordinator) start() {
	c.tau = c.params[0].Tau
	x := &c.ctx
	for i := 0; i < c.n; i++ {
		x.scheduleTransition(i)
		x.push(event{at: c.tau, kind: evTick, node: i})
		node := i
		c.flt.Boundaries(i, func(at float64) {
			x.push(event{at: at, kind: evFault, node: node})
		})
	}
	c.crossed = false
}

// step runs one coordinator round: pick the shard owning the globally
// earliest event, detach it from the heap, let it drain up to the
// conservative lookahead bound (the earliest event of any other shard —
// the root of the remaining heap), and re-attach it. It returns false
// once every queue is empty or the horizon was reached.
func (c *coordinator) step() bool {
	if c.done || len(c.order) == 0 {
		return false
	}
	s := c.order[0]
	// Detach s for the duration of its batch: its head changes with every
	// pop and push, and the eager cross-shard fixes in push are only sound
	// against a heap that is valid everywhere. A stale s left at the root
	// would let a pushed-to shard rise to the root from the other subtree
	// without ever being compared against the true minimum of the
	// remaining shards.
	last := len(c.order) - 1
	c.orderSwap(0, last)
	c.order = c.order[:last]
	c.pos[s] = -1
	if last > 0 {
		c.siftDown(0)
	}
	boundAt := math.Inf(1)
	boundSeq := uint64(0)
	if len(c.order) > 0 {
		b := c.order[0]
		boundAt, boundSeq = c.headAt[b], c.headSeq[b]
	}
	c.shards[s].run(c, boundAt, boundSeq)
	c.fix(s) // re-attach; a no-op if the batch drained the queue
	return !c.done
}

// drain performs the final energy (and occupancy) accrual to the horizon.
func (c *coordinator) drain() {
	x := &c.ctx
	if c.cfg.TrackOccupancy && x.measuring {
		x.accrueOccupancy(c.cfg.Duration)
	}
	x.now = c.cfg.Duration
	for i := 0; i < c.n; i++ {
		x.accrue(i)
	}
}

// dispatch realizes one event, mirroring the body of engine.step after
// its horizon check.
func (x *dispCtx) dispatch(ev event) {
	if x.onDispatch != nil {
		x.onDispatch(ev)
	}
	x.events++
	if x.cfg.TrackOccupancy && x.measuring {
		x.accrueOccupancy(ev.at)
	}
	x.now = ev.at
	x.curLamport = ev.seq >> x.shift
	// Measuring is a pure per-event predicate, so it needs no global
	// warmup rendezvous: in a parallel schedule each worker evaluates it
	// against its own clock and per-node warmup splitting (see accrue)
	// keeps the energy ledgers identical.
	x.measuring = x.now >= x.cfg.Warmup
	if x.cfg.TrackOccupancy && x.measuring && !x.occStarted {
		x.occStarted = true
		x.occLast = x.now
	}
	switch ev.kind {
	case evTransition:
		if uint32(ev.version) == x.hot[ev.node].version {
			x.handleTransition(ev.node)
		} // else stale: dropped
	case evPacketEnd:
		x.handlePacketEnd(ev.node)
	case evTick:
		x.handleTick(ev.node, x.tau)
	case evFault:
		x.handleFault(ev.node)
	}
}

// push assigns the event its canonical content-derived key (see
// engine.push) and routes it: serially into its node's shard queue with
// an eager heap repair; in a parallel run through the worker's local
// heap or a cross-shard staging lane.
func (x *dispCtx) push(ev event) {
	l := x.lamport[ev.node]
	if x.curLamport > l {
		l = x.curLamport
	}
	l++
	x.lamport[ev.node] = l
	ev.seq = l<<x.shift | uint64(ev.node)
	if x.par != nil {
		// Window execution: an interior event's push targets are always in
		// its own shard (wdepth >= push radius), so no heap repair and no
		// cross-shard traffic happen here — see DESIGN.md §9.
		x.par.route(ev)
		return
	}
	c := x.coordinator
	s := c.shardOf[ev.node]
	if c.split && c.hot[ev.node].has(fInterior) {
		c.shards[s].iq.push(ev)
	} else {
		c.shards[s].queue.push(ev)
	}
	if s != c.current {
		c.crossed = true
		c.fix(s)
	}
}

// shardLess orders shards by their earliest event, read from the dense
// head-key cache (refreshed by fix).
func (c *coordinator) shardLess(a, b int32) bool {
	if c.headAt[a] != c.headAt[b] { //lint:allow floateq exact tie detection so equal-time events fall through to the seq tiebreak
		return c.headAt[a] < c.headAt[b]
	}
	return c.headSeq[a] < c.headSeq[b]
}

// fix restores shard s's position in the indexed heap after its queue
// head changed (or the queue emptied or became non-empty), refreshing
// its cached head key first. Sound only when every other heap entry is
// clean — guaranteed because the draining shard is detached and every
// cross-shard push fixes its target immediately.
func (c *coordinator) fix(s int32) {
	i := c.pos[s]
	at, seq, ok := c.shards[s].headKey()
	if !ok {
		if i < 0 {
			return
		}
		last := len(c.order) - 1
		c.orderSwap(int(i), last)
		c.order = c.order[:last]
		c.pos[s] = -1
		if int(i) < last {
			c.fixPos(int(i))
		}
		return
	}
	c.headAt[s], c.headSeq[s] = at, seq
	if i < 0 {
		c.pos[s] = int32(len(c.order))
		c.order = append(c.order, s) //lint:allow hotalloc capacity reaches the shard count and stays
		c.siftUp(len(c.order) - 1)
		return
	}
	c.fixPos(int(i))
}

// fixPos re-heaps the element at position i: sift up, and only if it
// did not rise, sift down (container/heap's Fix discipline).
func (c *coordinator) fixPos(i int) {
	s := c.order[i]
	c.siftUp(i)
	if c.pos[s] == int32(i) {
		c.siftDown(i)
	}
}

func (c *coordinator) orderSwap(i, j int) {
	c.order[i], c.order[j] = c.order[j], c.order[i]
	c.pos[c.order[i]] = int32(i)
	c.pos[c.order[j]] = int32(j)
}

func (c *coordinator) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !c.shardLess(c.order[i], c.order[parent]) {
			return
		}
		c.orderSwap(i, parent)
		i = parent
	}
}

func (c *coordinator) siftDown(i int) {
	n := len(c.order)
	for {
		child := 2*i + 1
		if child >= n {
			return
		}
		if r := child + 1; r < n && c.shardLess(c.order[r], c.order[child]) {
			child = r
		}
		if !c.shardLess(c.order[child], c.order[i]) {
			return
		}
		c.orderSwap(i, child)
		i = child
	}
}

// ---- handlers: exact ports of the engine handlers onto SoA state ----

func (x *dispCtx) accrue(i int) {
	h := &x.hot[i]
	if !h.has(fWarmSnapped) && x.now >= x.cfg.Warmup {
		// First accrual at or past the warmup boundary: advance exactly
		// to the boundary, snapshot the battery, continue from there (see
		// engine.accrue).
		if dt := x.cfg.Warmup - h.lastUpdate; dt > 0 {
			x.cores[i].Advance(x.pr(i), x.harvest[i], dt, h.state)
		}
		h.lastUpdate = x.cfg.Warmup
		x.warmupBattery[i] = x.cores[i].Battery
		h.set(fWarmSnapped)
	}
	if dt := x.now - h.lastUpdate; dt > 0 {
		x.cores[i].Advance(x.pr(i), x.harvest[i], dt, h.state)
		h.lastUpdate = x.now
	}
}

func (c *coordinator) bump(i int) { c.hot[i].version++ }

func (c *coordinator) active(i int, t float64) bool {
	if c.cfg.Churn != nil && !c.cfg.Churn(i, t) {
		return false
	}
	return c.flt.Alive(i, t)
}

func (c *coordinator) currentNetState() model.NetState {
	s := model.NetState{Transmitter: model.NoTransmitter}
	for i := 0; i < c.n; i++ {
		switch c.hot[i].state {
		case model.Transmit:
			s.Transmitter = i
		case model.Listen:
			s.Listeners |= 1 << uint(i)
		}
	}
	return s
}

func (x *dispCtx) accrueOccupancy(until float64) {
	if until > x.cfg.Duration {
		until = x.cfg.Duration
	}
	dt := until - x.occLast
	if dt <= 0 {
		return
	}
	x.met.Occupancy[x.currentNetState()] += dt
	x.coordinator.occLast = until
}

func (x *dispCtx) setState(i int, st model.State) {
	x.accrue(i)
	if x.logging {
		x.logf("%.6f node %d: %v -> %v", x.now, i, x.hot[i].state, st) //lint:allow hotalloc trace logging; x.logging is off in measured runs
	}
	x.hot[i].state = st
}

// logf writes one trace line; hot-path callers gate on x.logging (see
// engine.logf for why).
func (c *coordinator) logf(format string, args ...any) {
	if c.cfg.EventLog != nil {
		fmt.Fprintf(c.cfg.EventLog, format+"\n", args...)
	}
}

func (x *dispCtx) estimateFor(i, count int) float64 {
	if x.cfg.EstimateListeners != nil {
		count = x.cfg.EstimateListeners(count, &x.rngs[i])
		if count < 0 {
			count = 0
		}
	}
	return x.pr(i).Estimate(count)
}

func (x *dispCtx) listenEstimate(i int) float64 {
	count := 0
	for _, j := range x.nbr[i] {
		if x.hot[j].state == model.Listen {
			count++
		}
	}
	return x.estimateFor(i, count)
}

func (x *dispCtx) scheduleTransition(i int) {
	x.bump(i)
	h := &x.hot[i]
	if h.state == model.Transmit {
		return
	}
	if x.cfg.HardBatteryFloor && h.state == model.Sleep && x.cores[i].Depleted() {
		return // stays asleep until a tick finds the battery recovered
	}
	if !x.active(i, x.now) {
		return // absent or crashed: re-checked at the next tick / restart
	}
	carrierFree := h.busy == 0
	est := 0.0
	if x.cfg.Protocol.Variant == econcast.NonCapture && h.state == model.Listen {
		est = x.listenEstimate(i)
	}
	r := x.cores[i].Rates(x.pr(i), carrierFree, est)
	var total float64
	switch h.state {
	case model.Sleep:
		total = r.SleepToListen
	case model.Listen:
		total = r.ListenToSleep + r.ListenToTransmit
	}
	if total <= 0 {
		return
	}
	dwell := x.rngs[i].Exp(total)
	if h.state == model.Sleep {
		// Sleep intervals run off the drift-scaled low-power clock, as in
		// the single-queue engine.
		dwell *= x.flt.Drift(i)
	}
	x.push(event{
		at:      x.now + dwell,
		kind:    evTransition,
		node:    i,
		version: uint64(h.version),
	})
}

func (x *dispCtx) handleTransition(i int) {
	x.accrue(i)
	switch x.hot[i].state {
	case model.Sleep:
		x.setState(i, model.Listen)
		x.onListenSetChanged(i)
		x.scheduleTransition(i)
	case model.Listen:
		carrierFree := x.hot[i].busy == 0
		est := 0.0
		if x.cfg.Protocol.Variant == econcast.NonCapture {
			est = x.listenEstimate(i)
		}
		r := x.cores[i].Rates(x.pr(i), carrierFree, est)
		total := r.ListenToSleep + r.ListenToTransmit
		if total <= 0 {
			return
		}
		if x.rngs[i].Float64()*total < r.ListenToTransmit {
			x.startTransmission(i)
		} else {
			x.flushBurst(i)
			x.setState(i, model.Sleep)
			x.hot[i].set(fSleptSince)
			x.onListenSetChanged(i)
			x.scheduleTransition(i)
		}
	}
}

func (x *dispCtx) onListenSetChanged(i int) {
	if x.cfg.Protocol.Variant != econcast.NonCapture {
		return
	}
	for _, j := range x.nbr[i] {
		if x.hot[j].state == model.Listen {
			x.scheduleTransition(j)
		}
	}
}

func (x *dispCtx) startTransmission(i int) {
	if x.hot[i].busy != 0 {
		// Carrier sensing (the A(t) gate) must make this unreachable.
		panic(fmt.Sprintf("sim: node %d transmitting into a busy channel", i))
	}
	x.flushBurst(i)
	x.setState(i, model.Transmit)
	x.bump(i) // no timer while transmitting
	x.onListenSetChanged(i)
	// Occupy the channel: each neighbor gains one transmitting neighbor.
	// Hidden-terminal collisions ride the same pass: a neighbor j sitting
	// in any in-flight packet's listener list (listeningTo[j] > 0) now
	// hears two transmitters, so its reception is collided. Marking the
	// node rather than the (packet, node) pair matches the engine's
	// global scan — collidedInPkt is per-node there too — and the
	// listeningTo inversion makes the check one counter load instead of
	// walking every nearby packet's listeners.
	for _, j := range x.nbr[i] {
		h := &x.hot[j]
		h.busy++
		if h.busy == 1 && h.state != model.Transmit {
			// Channel became busy for j: freeze by resampling (rates -> 0).
			x.scheduleTransition(j)
		}
		if x.listeningTo[j] > 0 && !h.has(fCollidedInPkt) {
			h.set(fCollidedInPkt)
			if x.measuring {
				x.collided++
			}
		}
	}
	x.startPacket(i, 0, false)
}

func (x *dispCtx) startPacket(i, burstLen int, delivered bool) {
	x.pktActive[i] = true
	x.pktBurstLen[i] = burstLen
	x.pktDelivered[i] = delivered
	listeners := x.pktListeners[i][:0]
	for _, j := range x.nbr[i] {
		h := &x.hot[j]
		if h.state == model.Listen {
			listeners = append(listeners, j) //lint:allow hotalloc reuses the slot's capacity; grows at most deg times per run
			x.listeningTo[j]++
			h.put(fCollidedInPkt, h.busy > 1)
			if h.has(fCollidedInPkt) && x.measuring {
				x.collided++
			}
		}
	}
	x.pktListeners[i] = listeners
	if x.logging {
		x.logf("%.6f node %d: packet %d of hold, %d listeners",
			x.now, i, burstLen+1, len(listeners)) //lint:allow hotalloc trace logging; x.logging is off in measured runs
	}
	x.push(event{at: x.now + x.packetTime, kind: evPacketEnd, node: i})
}

func (x *dispCtx) handlePacketEnd(i int) {
	if !x.pktActive[i] || x.hot[i].state != model.Transmit {
		return
	}
	// A stuck (silenced) radio transmits carrier but delivers nothing;
	// receiver-side loss draws are skipped for silenced packets (see the
	// engine's handler).
	silenced := x.flt.Silenced(i, x.now)
	success := 0
	for _, j := range x.pktListeners[i] {
		x.listeningTo[j]-- // this packet is over; balances startPacket
		h := &x.hot[j]
		if h.state != model.Listen {
			// Left mid-packet (churn departure or crash): no reception.
			h.clear(fCollidedInPkt)
			continue
		}
		if h.has(fCollidedInPkt) {
			h.clear(fCollidedInPkt)
			continue
		}
		if silenced || x.flt.DropRx(j, x.now) {
			if x.measuring {
				x.lostRx++
			}
			continue
		}
		success++
		h.burstCount++
		if x.cfg.OnDeliver != nil {
			x.cfg.OnDeliver(i, j, x.now)
		}
		if x.measuring {
			x.packetsDelivered++
			// Burst/latency bookkeeping: first packet of a receive burst.
			if h.burstCount == 1 && h.has(fHasBurst) && h.has(fSleptSince) {
				x.latency = append(x.latency, x.now-x.packetTime-h.lastBurstEnd) //lint:allow hotalloc amortized sample buffer growth
			}
			h.clear(fSleptSince)
		}
		h.lastBurstEnd = x.now
		h.set(fHasBurst)
	}
	if x.measuring {
		x.packetsSent++
		x.gp[i] += float64(success) * x.packetTime
		if success > 0 {
			x.packetsAny++
			x.ap[i] += x.packetTime
		}
	}
	if success > 0 {
		x.pktDelivered[i] = true
	}
	// The slot stays readable for the remainder of this handler;
	// startPacket reclaims it on a hold.
	x.pktActive[i] = false

	// A physically depleted listener is forced to sleep to recharge.
	if x.cfg.HardBatteryFloor {
		for _, j := range x.pktListeners[i] {
			x.accrue(j)
			if x.hot[j].state == model.Listen && x.cores[j].Depleted() {
				x.flushBurst(j)
				x.setState(j, model.Sleep)
				x.hot[j].set(fSleptSince)
				x.bump(j)
				x.onListenSetChanged(j)
			}
		}
	}

	// Decide whether to hold the channel (EconCast-C) or release; a
	// depleted transmitter must release regardless.
	x.accrue(i)
	est := x.estimateFor(i, success)
	cont := x.cores[i].ContinueTransmitProb(x.pr(i), est)
	forced := x.cfg.HardBatteryFloor && x.cores[i].Depleted()
	if !x.active(i, x.now) {
		forced = true // departed or crashed: release the channel now
	}
	if !forced && x.rngs[i].Bernoulli(cont) {
		x.startPacket(i, x.pktBurstLen[i]+1, x.pktDelivered[i])
		return
	}
	// Hold complete: record its length if it reached any receiver.
	if x.pktDelivered[i] && x.measuring {
		x.bl[i].Add(float64(x.pktBurstLen[i] + 1))
	}
	// Release: transmitter returns to listen (Fig. 1), neighbors unfreeze.
	x.setState(i, model.Listen)
	x.scheduleTransition(i)
	for _, j := range x.nbr[i] {
		h := &x.hot[j]
		h.busy--
		if h.busy == 0 && h.state != model.Transmit {
			x.scheduleTransition(j)
		}
	}
	x.onListenSetChanged(i)
}

func (x *dispCtx) flushBurst(i int) {
	x.hot[i].burstCount = 0
}

func (x *dispCtx) handleTick(i int, tau float64) {
	x.accrue(i)
	// Departure: an absent node abandons listening (transmitters finish
	// their current hold first; the packet machinery owns that state).
	if !x.active(i, x.now) && x.hot[i].state == model.Listen {
		x.flushBurst(i)
		x.setState(i, model.Sleep)
		x.hot[i].set(fSleptSince)
		x.bump(i)
		x.onListenSetChanged(i)
	}
	if x.cfg.OnTick != nil {
		nd := x.cfg.Network.Nodes[i]
		p0 := math.Max(nd.ListenPower, nd.TransmitPower)
		x.cfg.OnTick(i, x.now, x.cores[i].Eta/p0)
	}
	if x.hot[i].state != model.Transmit {
		x.scheduleTransition(i)
	}
	x.push(event{at: x.now + tau, kind: evTick, node: i})
}

func (x *dispCtx) handleFault(i int) {
	x.accrue(i)
	if x.flt.Alive(i, x.now) {
		if x.hot[i].state != model.Transmit {
			x.scheduleTransition(i)
		}
		return
	}
	// Crashed. A transmitter abandons its hold: the in-flight packet
	// dies undelivered and the channel is released for its neighbors.
	switch x.hot[i].state {
	case model.Transmit:
		if x.pktActive[i] {
			for _, j := range x.pktListeners[i] {
				x.listeningTo[j]--
				x.hot[j].clear(fCollidedInPkt)
			}
			x.pktActive[i] = false
		}
		x.setState(i, model.Sleep)
		x.bump(i)
		for _, j := range x.nbr[i] {
			h := &x.hot[j]
			h.busy--
			if h.busy == 0 && h.state != model.Transmit {
				x.scheduleTransition(j)
			}
		}
		x.onListenSetChanged(i)
	case model.Listen:
		x.flushBurst(i)
		x.setState(i, model.Sleep)
		x.hot[i].set(fSleptSince)
		x.bump(i)
		x.onListenSetChanged(i)
	default:
		x.bump(i) // cancel any pending wake-up; stays down until restart
	}
}

// finish assembles the metrics: schedule-private counters from every
// dispatcher fold by exact integer addition (and latency buffers by
// sorted-CDF sealing), per-node accumulations fold in ascending node
// order — so the result is independent of which dispatcher executed
// which event, and bit-identical to engine.finish.
func (c *coordinator) finish(ctxs ...*dispCtx) *Metrics {
	var latency []float64
	for _, x := range ctxs {
		c.met.Events += x.events
		c.met.PacketsSent += x.packetsSent
		c.met.PacketsDelivered += x.packetsDelivered
		c.met.PacketsAnyDeliver += x.packetsAny
		c.met.CollidedReceptions += x.collided
		c.met.LostReceptions += x.lostRx
		latency = append(latency, x.latency...)
	}
	c.met.Latency = stats.NewCDF(latency)
	window := c.cfg.Duration - c.cfg.Warmup
	c.met.Window = window
	for i := 0; i < c.n; i++ {
		c.met.Groupput += c.gp[i]
		c.met.Anyput += c.ap[i]
		c.met.BurstLengths.Merge(c.bl[i])
	}
	c.met.Groupput /= window
	c.met.Anyput /= window
	// Order audit: each occupancy entry is scaled independently at its own
	// key — no cross-key accumulation — so iteration order cannot affect
	// the result (econlint's maprange proves this shape order-insensitive).
	for s := range c.met.Occupancy {
		c.met.Occupancy[s] /= window
	}
	c.met.Power = make([]float64, c.n)
	c.met.EtaFinal = make([]float64, c.n)
	c.met.Battery = make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		nd := c.cfg.Network.Nodes[i]
		// Mean consumption over the window: harvest - net battery gain.
		gained := c.cores[i].Battery - c.warmupBattery[i]
		c.met.Power[i] = nd.Budget - gained/window
		p0 := math.Max(nd.ListenPower, nd.TransmitPower)
		c.met.EtaFinal[i] = c.cores[i].Eta / p0
		c.met.Battery[i] = c.cores[i].Battery
	}
	c.met.FaultTrace = c.flt.Trace()
	return &c.met
}
