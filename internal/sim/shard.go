// shardRuntime is one spatial shard of the sharded engine: the event
// heap for the nodes the shard owns. All mutation happens on the
// coordinator's event-loop goroutine; shards partition data, not control.
package sim

//lint:owner sim-engine the coordinator's event-loop goroutine owns all shard state
type shardRuntime struct {
	id    int32
	queue eventQueue
}

// run drains this shard's queue while its head event stays strictly
// earlier (in the global (at, seq) order) than the earliest event of any
// other shard — the conservative lookahead bound computed by the
// coordinator. The first event is dispatched unconditionally: the
// coordinator only calls run on the shard holding the global minimum.
// The drain stops early when a dispatched event pushes into a foreign
// shard (the bound may no longer be conservative), when the batch limit
// is reached, or at the horizon.
//
//lint:handoff sim-engine run is the drain boundary: it executes on the coordinator's event-loop goroutine and writes the batch-control scalars (current, crossed, done) back into the coordinator
func (s *shardRuntime) run(c *coordinator, boundAt float64, boundSeq uint64) {
	dispatched := 0
	for len(s.queue) > 0 {
		head := &s.queue[0]
		if dispatched > 0 {
			if head.at > boundAt {
				return
			}
			if head.at == boundAt && head.seq > boundSeq { //lint:allow floateq exact tie detection so equal-time events fall back to the seq order
				return
			}
		}
		if head.at > c.horizon {
			c.done = true
			return
		}
		ev := s.queue.pop()
		c.crossed = false
		c.current = s.id
		c.dispatch(ev)
		dispatched++
		if c.crossed {
			return
		}
		if c.batchLimit > 0 && dispatched >= c.batchLimit {
			return
		}
	}
}
