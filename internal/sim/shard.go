// shardRuntime is one spatial shard of the sharded engine: the event
// heaps for the nodes the shard owns. In the serial engine all events
// live in queue and all mutation happens on the coordinator's
// event-loop goroutine; the parallel engine (par.go) additionally
// routes interior-node events into iq, which the shard's window worker
// drains concurrently between barriers.
package sim

//lint:owner sim-engine outside parallel windows the event-loop goroutine owns all shard state; during a window the shard's worker exclusively owns iq and the shard's interior SoA rows (handoff at the window barrier)
type shardRuntime struct {
	id    int32
	queue eventQueue // boundary events (all events when the run is serial)
	iq    eventQueue // interior events (parallel runs only)
}

// headKey returns the shard's earliest event key across both heaps.
func (s *shardRuntime) headKey() (at float64, seq uint64, ok bool) {
	switch {
	case len(s.queue) == 0 && len(s.iq) == 0:
		return 0, 0, false
	case len(s.iq) == 0:
		return s.queue[0].at, s.queue[0].seq, true
	case len(s.queue) == 0:
		return s.iq[0].at, s.iq[0].seq, true
	}
	if keyLess(s.iq[0].at, s.iq[0].seq, s.queue[0].at, s.queue[0].seq) {
		return s.iq[0].at, s.iq[0].seq, true
	}
	return s.queue[0].at, s.queue[0].seq, true
}

// popMin pops the earlier of the two heads. Callers guarantee at least
// one heap is non-empty.
func (s *shardRuntime) popMin() event {
	if len(s.queue) == 0 {
		return s.iq.pop()
	}
	if len(s.iq) > 0 && keyLess(s.iq[0].at, s.iq[0].seq, s.queue[0].at, s.queue[0].seq) {
		return s.iq.pop()
	}
	return s.queue.pop()
}

// keyLess is the canonical event order: (at, seq) lexicographic. Keys
// are unique (the seq low bits carry the node id), so exact float
// comparison is the tie detector, not an equality test.
func keyLess(aAt float64, aSeq uint64, bAt float64, bSeq uint64) bool {
	if aAt != bAt { //lint:allow floateq exact tie detection so equal-time events fall through to the seq tiebreak
		return aAt < bAt
	}
	return aSeq < bSeq
}

// run drains this shard's heaps while the head event stays strictly
// earlier (in the global (at, seq) order) than the earliest event of any
// other shard — the conservative lookahead bound computed by the
// coordinator. The first event is dispatched unconditionally: the
// coordinator only calls run on the shard holding the global minimum.
// The drain stops early when a dispatched event pushes into a foreign
// shard (the bound may no longer be conservative), when the batch limit
// is reached, or at the horizon.
//
//lint:handoff sim-engine run is the drain boundary: it executes on the coordinator's event-loop goroutine and writes the batch-control scalars (current, crossed, done) back into the coordinator
func (s *shardRuntime) run(c *coordinator, boundAt float64, boundSeq uint64) {
	dispatched := 0
	for {
		at, seq, ok := s.headKey()
		if !ok {
			return
		}
		if dispatched > 0 && !keyLess(at, seq, boundAt, boundSeq) {
			return
		}
		if at > c.horizon {
			c.done = true
			return
		}
		ev := s.popMin()
		c.crossed = false
		c.current = s.id
		c.ctx.dispatch(ev)
		dispatched++
		if c.crossed {
			return
		}
		if c.batchLimit > 0 && dispatched >= c.batchLimit {
			return
		}
	}
}

// window drains this shard's interior heap while its head stays
// strictly below both the global boundary minimum (boundAt, boundSeq)
// and the shard's own boundary head — the exact point at which the
// serial engine would next dispatch a boundary event — and below the
// horizon. Runs on the shard's window worker with x as the shard's
// private dispatch context; every touched SoA row and every push target
// is owned by this shard (see DESIGN.md §9), so no synchronization
// happens inside the loop.
func (s *shardRuntime) window(c *coordinator, x *dispCtx, boundAt float64, boundSeq uint64) {
	for len(s.iq) > 0 {
		h := &s.iq[0]
		if h.at > c.horizon {
			return
		}
		ba, bs := boundAt, boundSeq
		if len(s.queue) > 0 && keyLess(s.queue[0].at, s.queue[0].seq, ba, bs) {
			ba, bs = s.queue[0].at, s.queue[0].seq
		}
		if !keyLess(h.at, h.seq, ba, bs) {
			return
		}
		ev := s.iq.pop()
		x.dispatch(ev)
	}
}
