// Package sim is a deterministic discrete-event simulator for EconCast
// networks (§VII of the paper). Nodes follow the continuous-time dynamics
// of eq. (18) with carrier sensing, packetized transmissions, per-packet
// listener estimation, energy accounting against per-node budgets, and the
// multiplier adaptation of eq. (17). Clique and non-clique topologies are
// supported; in non-cliques, spatially overlapping transmissions collide at
// shared receivers and are not counted as throughput, exactly as in the
// paper's Fig. 6 evaluation.
//
// All randomness comes from a seeded rng.Source, so runs are exactly
// reproducible.
package sim

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"
	"runtime"

	"econcast/internal/econcast"
	"econcast/internal/faults"
	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/stats"
	"econcast/internal/topology"
)

// Protocol carries the EconCast parameters shared by all nodes in a run
// (per-node hardware parameters come from the Network).
type Protocol struct {
	Mode       model.Mode
	Variant    econcast.Variant
	Sigma      float64
	Delta      float64 // multiplier step (default 0.05)
	Tau        float64 // multiplier interval, seconds (default 200 packets)
	PacketTime float64 // seconds (default 1 ms)
}

// TicksToSeconds converts a count of multiplier intervals into
// simulated seconds under p's tick length. It (and its inverse) is the
// sanctioned tick/second boundary: econlint's unitflow analyzer flags
// arithmetic that mixes the two dimensions directly.
func (p Protocol) TicksToSeconds(ticks float64) float64 {
	return ticks * p.Tau //lint:allow unitflow the conversion boundary itself: tick·(s per tick) yields s
}

// SecondsToTicks converts simulated seconds into a (fractional) count
// of multiplier intervals. Inverse of TicksToSeconds.
func (p Protocol) SecondsToTicks(t float64) float64 {
	return t / p.Tau
}

// Config describes one simulation run.
type Config struct {
	Network  *model.Network
	Topology *topology.Topology // nil means clique
	Protocol Protocol

	Duration float64 // total simulated seconds
	Warmup   float64 // metrics discarded before this time
	Seed     uint64

	// WarmEta optionally initializes each node's multiplier from an
	// analytical solution (units of 1/Watt, as returned by
	// statespace.P4Result.Eta), skipping the adaptation transient.
	WarmEta []float64

	// FreezeEta disables the multiplier adaptation (eq. 17), keeping eta at
	// its warm-start value; used to validate the stationary analysis.
	FreezeEta bool

	// EstimateListeners, when non-nil, replaces the perfect listener count
	// the transmitter would observe with a noisy estimate; used for the
	// ping-noise ablation.
	EstimateListeners func(actual int, src *rng.Source) int

	// HardBatteryFloor forces nodes with an empty battery to stay asleep
	// until the battery recovers (checked at multiplier ticks); the battery
	// is also clamped at zero.
	HardBatteryFloor bool

	// InitialBattery per node, Joules (default 0; the default virtual
	// battery may go negative).
	InitialBattery float64

	// Harvest, when non-nil, gives each node a time-varying harvesting
	// profile instead of its constant budget (arguments: node index,
	// seconds since start). Node budgets should be set to the profile
	// means so analytical comparisons stay meaningful.
	Harvest func(node int, t float64) float64

	// OnDeliver, when non-nil, is invoked for every successful packet
	// reception — including during warmup — with the transmitter, the
	// receiver, and the completion time. Applications (neighbor
	// discovery, gossip) build on this hook.
	OnDeliver func(tx, rx int, now float64)

	// EventLog, when non-nil, receives a compact human-readable trace of
	// every state transition and packet event, one line each — intended
	// for debugging small scenarios, not long runs.
	EventLog io.Writer

	// TrackOccupancy records the time-weighted distribution over network
	// states (post-warmup) in Metrics.Occupancy, for state-level
	// validation against the Gibbs distribution (19). Requires N <= 24.
	TrackOccupancy bool

	// OnTick, when non-nil, is invoked at every multiplier tick with the
	// node's current eta (units of 1/Watt), exposing the eq. (17)
	// adaptation trajectory for convergence studies.
	OnTick func(node int, now, eta float64)

	// Churn, when non-nil, gives each node an activity schedule: the node
	// participates only while Churn(node, t) is true (outside it neither
	// harvests, transmits, listens, nor carrier-senses — it is absent, as
	// a mobile tag out of range). Activity is sampled at multiplier ticks,
	// so transitions take effect within one tau.
	Churn func(node int, t float64) bool

	// Shards controls the sharded spatial-interference engine used for
	// non-clique topologies: 0 auto-selects (sharding kicks in at
	// autoShardMinN nodes), 1 forces the single-queue engine, and >= 2
	// forces a sharded run with about that many shards. The two engines —
	// and every shard count — produce byte-identical results: the sharded
	// coordinator dispatches events in the same global (at, seq) order,
	// event keys are content-derived (per-node Lamport clocks), and every
	// RNG draw comes from the stream of the node it realizes; shards
	// reorganize data, not control flow. Cliques (a single interference
	// domain) always run on the single-queue engine.
	Shards int

	// Parallel controls the multi-core window-synchronized engine
	// (par.go): 0 auto-selects (parallel kicks in for non-clique
	// topologies at autoShardMinN nodes when GOMAXPROCS > 1 and no
	// serial-only hook is set), 1 forces a single-threaded run, and >= 2
	// forces that many shard workers. The parallel engine is
	// byte-identical to the serial engines at every worker count and
	// GOMAXPROCS setting — see DESIGN.md §9 for the merge proof. Hooks
	// that observe the global schedule (EventLog, OnDeliver, OnTick,
	// EstimateListeners, TrackOccupancy, Churn, Harvest) force a serial
	// run regardless.
	Parallel int

	// Faults, when non-nil, injects the shared fault processes
	// (crash/restart, packet loss, clock drift, brownout, stuck radio)
	// compiled deterministically from Seed over [0, Duration]. Fault
	// schedule boundaries are realized as events through the ordinary
	// event loop — unlike Churn's tick sampling, crashes land at their
	// exact scheduled times. See the faults package for the catalog.
	Faults *faults.Config
}

func (c *Config) validate() error {
	if c.Network == nil {
		return errors.New("sim: nil network")
	}
	if c.TrackOccupancy && c.Network.N() > 24 {
		return errors.New("sim: occupancy tracking limited to 24 nodes")
	}
	if err := c.Network.Validate(); err != nil {
		return err
	}
	if c.Topology != nil && c.Topology.N() != c.Network.N() {
		return fmt.Errorf("sim: topology nodes %d != network nodes %d",
			c.Topology.N(), c.Network.N())
	}
	if !(c.Duration > 0) {
		return errors.New("sim: duration must be positive")
	}
	if c.Warmup < 0 || c.Warmup >= c.Duration {
		return errors.New("sim: warmup must be in [0, duration)")
	}
	if c.WarmEta != nil && len(c.WarmEta) != c.Network.N() {
		return errors.New("sim: WarmEta length mismatch")
	}
	if !(c.Protocol.Sigma > 0) {
		return errors.New("sim: sigma must be positive")
	}
	if c.Shards < 0 {
		return errors.New("sim: shards must be non-negative")
	}
	if c.Parallel < 0 {
		return errors.New("sim: parallel must be non-negative")
	}
	return nil
}

// Sharding auto-selection: non-clique topologies at or above
// autoShardMinN nodes run on the sharded engine with about
// autoShardNodes nodes per shard. With the collision scan inverted to
// O(degree) (see coord.go), per-event cost no longer grows with shard
// size, and what remains is the cross-shard machinery: smaller shards
// mean more boundary crossings and a deeper coordinator heap. Measured
// on 100x100 and 316x316 grids, throughput rises through 128, 256, and
// 512 nodes per shard and flattens near 1000, so auto-selection
// targets that plateau.
const (
	autoShardMinN  = 4096
	autoShardNodes = 1024
)

// rngNodeDomain separates the per-node stream family from any other
// DeriveSeed use of the run seed.
const rngNodeDomain = 0x4e4f4445 // "NODE"

// seqShift returns the bit width reserved for the node id in an event
// key: seq = lamport << seqShift(n) | node. Lamport clocks count pushes
// per node, so the key fits comfortably in 64 bits for any feasible run.
func seqShift(n int) uint {
	return uint(bits.Len(uint(n)))
}

// shardPlan resolves the Shards setting to an effective shard count;
// 1 means the single-queue engine.
func (c *Config) shardPlan() int {
	if c.Topology == nil || c.Shards == 1 {
		return 1
	}
	if c.Topology.IsClique() {
		return 1
	}
	n := c.Topology.N()
	if c.Shards >= 2 {
		if c.Shards > n {
			return n
		}
		return c.Shards
	}
	if n >= autoShardMinN {
		return n / autoShardNodes
	}
	return 1
}

// parallelEligible reports whether a run may use the parallel engine:
// any hook that observes the global dispatch schedule (or shares
// unpartitioned state, like the occupancy map and harvest closures
// capturing user code) forces serial execution.
func (c *Config) parallelEligible() bool {
	return c.EventLog == nil &&
		c.OnDeliver == nil &&
		c.OnTick == nil &&
		c.EstimateListeners == nil &&
		!c.TrackOccupancy &&
		c.Churn == nil &&
		c.Harvest == nil
}

// parallelPlan resolves the Parallel setting to an effective worker
// count; 1 means a single-threaded run.
func (c *Config) parallelPlan() int {
	if c.Parallel == 1 || c.Topology == nil || c.Topology.IsClique() {
		return 1
	}
	if !c.parallelEligible() {
		return 1
	}
	if c.Parallel >= 2 {
		return c.Parallel
	}
	n := c.Topology.N()
	if g := runtime.GOMAXPROCS(0); n >= autoShardMinN && g > 1 {
		return g
	}
	return 1
}

// Metrics are the outputs of a run, measured over (Warmup, Duration].
type Metrics struct {
	Window   float64 // measured seconds
	Groupput float64 // fraction of time spent on per-receiver delivery
	Anyput   float64 // fraction of time spent on >=1-receiver delivery

	// Events counts discrete events dispatched over the whole run
	// (including warmup); identical across the single-queue and sharded
	// engines, and the denominator of the events/sec scale benchmarks.
	Events int

	PacketsSent        int // packets transmitted
	PacketsDelivered   int // successful per-receiver packet deliveries
	PacketsAnyDeliver  int // packets delivered to at least one receiver
	CollidedReceptions int // receptions lost to overlapping transmissions
	LostReceptions     int // receptions lost to the fault layer (loss/silence)

	BurstLengths stats.Accumulator // packets per receive burst
	Latency      stats.CDF         // seconds between bursts (with sleep between)

	Power    []float64 // per-node mean consumption over the window (W)
	EtaFinal []float64 // final multipliers (units of 1/Watt)
	Battery  []float64 // final battery levels (J)

	// Occupancy is the time-weighted fraction spent in each network state
	// over the window; populated only with Config.TrackOccupancy.
	Occupancy map[model.NetState]float64

	// FaultTrace is the materialized fault schedule of the run (nil when
	// Config.Faults is unset) — byte-identical across substrates for the
	// same fault config and seed.
	FaultTrace []faults.Event `json:",omitempty"`
}

// event kinds.
const (
	evTransition = iota // node's sampled state transition
	evPacketEnd         // end of the current unit packet
	evTick              // multiplier / battery bookkeeping tick
	evFault             // fault-schedule boundary (crash/brownout/silence edge)
)

type event struct {
	at      float64
	seq     uint64 // FIFO tie-break
	kind    int
	node    int
	version uint64 // transition version; stale events are dropped
}

// eventQueue is a binary min-heap over event values ordered by (at, seq),
// with sift-up/sift-down written directly against the slice. It
// deliberately does not use container/heap: heap.Push and heap.Pop box
// every event through interface{}, which allocates on each of the
// millions of events a run processes; the direct heap keeps the
// steady-state event loop allocation-free.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at { //lint:allow floateq exact tie detection so equal-time events fall through to the seq tiebreak
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

// push inserts e and restores the heap property by sifting it up.
func (q *eventQueue) push(e event) {
	*q = append(*q, e) //lint:allow hotalloc amortized queue growth; capacity is stable in steady state
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the earliest event, sifting the displaced tail
// element down.
func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	*q = h[:n]
	h = h[:n]
	i := 0
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h.less(r, child) {
			child = r
		}
		if !h.less(child, i) {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
	return top
}

// nodeState is the simulator-side view of one node.
type nodeState struct {
	proto      *econcast.Node
	state      model.State
	version    uint64  // bumped to invalidate pending transition events
	busy       int     // number of transmitting neighbors
	lastUpdate float64 // time of last energy accrual

	// receiver-side metrics state
	burstCount    int     // packets received in the current burst
	lastBurstEnd  float64 // when the last burst's final packet ended
	hasBurst      bool
	sleptSince    bool // slept since the last burst ended
	collidedInPkt bool // current packet reception is lost to a collision
}

// packet tracks one in-flight unit packet. Packets live in a per-node
// pool indexed by transmitter (engine.packets) and are reused across
// holds — the listeners slice keeps its capacity — so starting a packet
// never allocates in steady state.
type packet struct {
	active    bool  // a packet from this transmitter is in flight
	listeners []int // initial listener set (indices), reused across packets
	burstLen  int   // packets already sent in this channel hold
	delivered bool  // some packet of this hold was received by someone
}

//lint:owner sim-engine the event-loop goroutine owns all engine state
type engine struct {
	cfg   Config
	n     int
	nodes []nodeState
	topo  *topology.Topology // nil = clique
	now   float64
	queue eventQueue

	// rngs holds one independent stream per node (derived from the run
	// seed via rng.DeriveSeed). Every draw the engine makes is attributed
	// to exactly one node — the node whose transition, packet decision, or
	// estimate it realizes — so the draw sequence each stream sees is a
	// function of that node's event history alone. That is what lets the
	// parallel shard engine replay the identical streams from a concurrent
	// schedule.
	rngs []rng.Source

	// lamport[i] is node i's logical clock for the canonical event order:
	// a push at node i gets seq = (max(lamport[i], curLamport)+1) << shift
	// | i, where curLamport is the clock of the event being dispatched.
	// Keys are unique (per-node clocks strictly increase), children sort
	// strictly after their parents even at equal times, and — because the
	// key is derived from event content rather than from a global push
	// counter — the key of every event is independent of the dispatch
	// schedule that produced it. See DESIGN.md §9.
	lamport    []uint64
	curLamport uint64
	shift      uint

	// nbr[i] is node i's neighbor set, precomputed once so the hot path
	// never materializes a clique neighbor list per event.
	nbr [][]int

	packets []packet // per-transmitter packet slots (index = transmitter)
	logging bool     // cfg.EventLog != nil, checked before boxing logf args
	tau     float64  // multiplier interval, resolved once at construction

	met           Metrics
	measuring     bool
	occStarted    bool      // occupancy window opened (TrackOccupancy only)
	warmupBattery []float64 // per-node battery at the warmup boundary
	warmSnapped   []bool    // node's warmup snapshot taken
	packetTime    float64

	// Canonical per-node metric accumulation: throughput seconds and
	// burst-length moments are accumulated against the node that produced
	// them (the transmitter) and latency samples are buffered, then merged
	// in node order by finish. The totals are then independent of the
	// dispatch schedule's interleaving across nodes — the property the
	// parallel shard engine needs — while staying bit-identical across
	// the single-queue, sharded, and parallel engines.
	gp      []float64           // per-transmitter groupput seconds
	ap      []float64           // per-transmitter anyput seconds
	bl      []stats.Accumulator // per-transmitter burst lengths
	latency []float64           // latency samples, sealed into a CDF

	// flt is the compiled fault schedule (nil when no faults are
	// configured); every query on it is nil-safe and allocation-free, so
	// the fault-free hot path pays only a pointer check.
	flt *faults.Set

	occLast float64 // time of the last occupancy accrual
}

// Run simulates the configuration and returns its metrics.
func Run(cfg Config) (*Metrics, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	flt, err := faults.Compile(cfg.Faults, cfg.Network.N(), cfg.Duration, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if workers := cfg.parallelPlan(); workers > 1 {
		// Honor an explicit shard count when it is finer than the worker
		// pool; otherwise one shard per worker.
		shards := cfg.shardPlan()
		if shards < workers {
			shards = workers
		}
		if n := cfg.Topology.N(); shards > n {
			shards = n
		}
		p := newParCoordinator(cfg, flt, shards, workers)
		p.run()
		return p.finish(), nil
	}
	if shards := cfg.shardPlan(); shards > 1 {
		c := newCoordinator(cfg, flt, shards)
		c.run()
		return c.finish(&c.ctx), nil
	}
	e := newEngine(cfg, flt)
	e.run()
	return e.finish(), nil
}

func newEngine(cfg Config, flt *faults.Set) *engine {
	n := cfg.Network.N()
	e := &engine{
		cfg:        cfg,
		n:          n,
		nodes:      make([]nodeState, n),
		topo:       cfg.Topology,
		packets:    make([]packet, n),
		logging:    cfg.EventLog != nil,
		packetTime: cfg.Protocol.PacketTime,
		flt:        flt,
	}
	// Allocated here, not lazily in accrueOccupancy: the occupancy accrual
	// runs on every event and must stay allocation-free.
	if cfg.TrackOccupancy {
		e.met.Occupancy = make(map[model.NetState]float64)
	}
	e.packetTime = model.DefaultIfZero(e.packetTime, 1e-3)
	e.rngs = make([]rng.Source, n)
	for i := 0; i < n; i++ {
		e.rngs[i] = *rng.New(rng.DeriveSeed(cfg.Seed, rngNodeDomain, uint64(i)))
	}
	e.lamport = make([]uint64, n)
	e.shift = seqShift(n)
	e.warmupBattery = make([]float64, n)
	e.warmSnapped = make([]bool, n)
	e.gp = make([]float64, n)
	e.ap = make([]float64, n)
	e.bl = make([]stats.Accumulator, n)
	e.nbr = make([][]int, n)
	for i := 0; i < n; i++ {
		if e.topo != nil {
			e.nbr[i] = e.topo.Neighbors(i)
			continue
		}
		row := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				row = append(row, j)
			}
		}
		e.nbr[i] = row
	}
	for i := 0; i < n; i++ {
		nd := cfg.Network.Nodes[i]
		pc := econcast.Config{
			Mode:               cfg.Protocol.Mode,
			Variant:            cfg.Protocol.Variant,
			Sigma:              cfg.Protocol.Sigma,
			Delta:              cfg.Protocol.Delta,
			Tau:                cfg.Protocol.Tau,
			Budget:             nd.Budget,
			ListenPower:        nd.ListenPower,
			TransmitPower:      nd.TransmitPower,
			PacketTime:         cfg.Protocol.PacketTime,
			InitialBattery:     cfg.InitialBattery,
			ClampBatteryAtZero: cfg.HardBatteryFloor,
		}
		if cfg.FreezeEta {
			// A vanishing step makes the eq. (17) updates no-ops, keeping
			// eta pinned to its warm-start value.
			pc.Delta = 1e-300
		}
		// Brownouts scale the node's harvest inside their windows. The
		// wrapper is installed only when a brownout schedule exists for
		// this node, so brownout-free runs keep the exact constant-budget
		// integration path bit-for-bit.
		if v := flt.View(i); cfg.Harvest != nil {
			node := i
			if v.HasBrownout() {
				pc.Harvest = func(t float64) float64 { return cfg.Harvest(node, t) * v.HarvestScale(t) }
			} else {
				pc.Harvest = func(t float64) float64 { return cfg.Harvest(node, t) }
			}
		} else if v.HasBrownout() {
			budget := nd.Budget
			pc.Harvest = func(t float64) float64 { return budget * v.HarvestScale(t) }
		}
		e.nodes[i] = nodeState{
			proto:        econcast.NewNode(pc),
			state:        model.Sleep,
			lastBurstEnd: -1,
		}
		if cfg.WarmEta != nil {
			p0 := math.Max(nd.ListenPower, nd.TransmitPower)
			e.nodes[i].proto.SetEta(cfg.WarmEta[i] * p0)
		}
	}
	return e
}

// neighbors returns the precomputed neighbor indices of i (all others in
// a clique). The caller must not mutate the returned slice.
func (e *engine) neighbors(i int) []int { return e.nbr[i] }

func (e *engine) adjacent(i, j int) bool {
	if e.topo != nil {
		return e.topo.Adjacent(i, j)
	}
	return i != j
}

func (e *engine) run() {
	e.start()
	for e.step() {
	}
	e.drain()
}

// start seeds every node's first transition and multiplier tick, plus
// every fault-schedule boundary. Fault boundaries are pushed once here —
// the steady-state loop never schedules fault events, so the fault-free
// hot path is untouched.
func (e *engine) start() {
	e.tau = e.nodes[0].proto.Config().Tau
	for i := 0; i < e.n; i++ {
		e.scheduleTransition(i)
		e.push(event{at: e.tau, kind: evTick, node: i})
		node := i
		e.flt.Boundaries(i, func(at float64) { //lint:allow hotalloc one boundary closure per node at run startup, not per event
			e.push(event{at: at, kind: evFault, node: node})
		})
	}
}

// step pops and dispatches one event. It returns false once the queue is
// empty or the next event lies past the horizon. Split out from run so
// the event-loop microbenchmark can pump events one at a time.
func (e *engine) step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.queue.pop()
	if ev.at > e.cfg.Duration {
		return false
	}
	e.met.Events++
	if e.cfg.TrackOccupancy && e.measuring {
		e.accrueOccupancy(ev.at)
	}
	e.now = ev.at
	e.curLamport = ev.seq >> e.shift
	// Measuring is a pure per-event predicate (dispatch order is
	// nondecreasing in time, so it is also monotone here); per-node warmup
	// battery snapshots happen lazily in accrue, splitting each node's
	// first post-warmup accrual exactly at the boundary.
	e.measuring = e.now >= e.cfg.Warmup
	if e.cfg.TrackOccupancy && e.measuring && !e.occStarted {
		e.occStarted = true
		e.occLast = e.now
	}
	switch ev.kind {
	case evTransition:
		if ev.version == e.nodes[ev.node].version {
			e.handleTransition(ev.node)
		} // else stale: dropped
	case evPacketEnd:
		e.handlePacketEnd(ev.node)
	case evTick:
		e.handleTick(ev.node, e.tau)
	case evFault:
		e.handleFault(ev.node)
	}
	return true
}

// drain performs the final energy (and occupancy) accrual to the horizon.
func (e *engine) drain() {
	if e.cfg.TrackOccupancy && e.measuring {
		e.accrueOccupancy(e.cfg.Duration)
	}
	e.now = e.cfg.Duration
	for i := range e.nodes {
		e.accrue(i)
	}
}

// currentNetState snapshots the network state as a model.NetState.
func (e *engine) currentNetState() model.NetState {
	s := model.NetState{Transmitter: model.NoTransmitter}
	for i := range e.nodes {
		switch e.nodes[i].state {
		case model.Transmit:
			s.Transmitter = i
		case model.Listen:
			s.Listeners |= 1 << uint(i)
		}
	}
	return s
}

// accrueOccupancy charges the interval since the last accrual to the
// current network state. Called before any event mutates node states, so
// the charged state is the one that actually held over the interval.
func (e *engine) accrueOccupancy(until float64) {
	if until > e.cfg.Duration {
		until = e.cfg.Duration
	}
	dt := until - e.occLast
	if dt <= 0 {
		return
	}
	e.met.Occupancy[e.currentNetState()] += dt
	e.occLast = until
}

func (e *engine) push(ev event) {
	l := e.lamport[ev.node]
	if e.curLamport > l {
		l = e.curLamport
	}
	l++
	e.lamport[ev.node] = l
	ev.seq = l<<e.shift | uint64(ev.node)
	e.queue.push(ev)
}

// accrue advances node i's battery and multiplier bookkeeping to now.
// Multiplier boundaries are also forced by evTick events, so eta changes
// land exactly on tau multiples regardless of event spacing.
func (e *engine) accrue(i int) {
	ns := &e.nodes[i]
	if !e.warmSnapped[i] && e.now >= e.cfg.Warmup {
		// First accrual at or past the warmup boundary: advance exactly to
		// the boundary, snapshot the battery for the Power metric, and
		// continue from there. The split point is per-node and depends only
		// on the node's own accrual history, so every engine — including
		// the parallel one, where no single event marks a global warmup
		// crossing — produces bit-identical batteries.
		if dt := e.cfg.Warmup - ns.lastUpdate; dt > 0 {
			ns.proto.Advance(dt, ns.state)
		}
		ns.lastUpdate = e.cfg.Warmup
		e.warmupBattery[i] = ns.proto.Battery()
		e.warmSnapped[i] = true
	}
	if dt := e.now - ns.lastUpdate; dt > 0 {
		ns.proto.Advance(dt, ns.state)
		ns.lastUpdate = e.now
	}
}

// bump invalidates node i's pending transition event.
func (e *engine) bump(i int) { e.nodes[i].version++ }

// active reports whether node i participates at time t: present under
// the churn schedule (if any) and alive under the fault schedule. Both
// checks are nil-safe and allocation-free.
func (e *engine) active(i int, t float64) bool {
	if e.cfg.Churn != nil && !e.cfg.Churn(i, t) {
		return false
	}
	return e.flt.Alive(i, t)
}

// handleFault realizes one fault-schedule boundary for node i: a crash
// edge parks the node (releasing the channel mid-hold if it was
// transmitting), while a restart or a brownout/silence edge simply
// resamples its transition so the new regime takes effect immediately.
func (e *engine) handleFault(i int) {
	e.accrue(i)
	ns := &e.nodes[i]
	if e.flt.Alive(i, e.now) {
		if ns.state != model.Transmit {
			e.scheduleTransition(i)
		}
		return
	}
	// Crashed. A transmitter abandons its hold: the in-flight packet
	// dies undelivered and the channel is released for its neighbors.
	switch ns.state {
	case model.Transmit:
		p := &e.packets[i]
		if p.active {
			for _, j := range p.listeners {
				e.nodes[j].collidedInPkt = false
			}
			p.active = false
		}
		e.setState(i, model.Sleep)
		e.bump(i)
		for _, j := range e.neighbors(i) {
			nj := &e.nodes[j]
			nj.busy--
			if nj.busy == 0 && nj.state != model.Transmit {
				e.scheduleTransition(j)
			}
		}
		e.onListenSetChanged(i)
	case model.Listen:
		e.flushBurst(i)
		e.setState(i, model.Sleep)
		ns.sleptSince = true
		e.bump(i)
		e.onListenSetChanged(i)
	default:
		e.bump(i) // cancel any pending wake-up; stays down until restart
	}
}

// estimateFor returns the transmitter-side listener estimate for count
// successful receivers, applying the configured noise hook.
func (e *engine) estimateFor(i, count int) float64 {
	if e.cfg.EstimateListeners != nil {
		count = e.cfg.EstimateListeners(count, &e.rngs[i])
		if count < 0 {
			count = 0
		}
	}
	return e.nodes[i].proto.Estimate(count)
}

// listenEstimate is the continuous listener estimate used by the
// non-capture variant's listen->transmit rate: the number of other
// listening neighbors (whose pings the node hears).
func (e *engine) listenEstimate(i int) float64 {
	count := 0
	for _, j := range e.neighbors(i) {
		if e.nodes[j].state == model.Listen {
			count++
		}
	}
	return e.estimateFor(i, count)
}

// scheduleTransition samples node i's next state transition from its
// current rates and pushes it. Transmitting nodes are packet-driven and
// get no timer.
func (e *engine) scheduleTransition(i int) {
	e.bump(i)
	ns := &e.nodes[i]
	if ns.state == model.Transmit {
		return
	}
	if e.cfg.HardBatteryFloor && ns.state == model.Sleep && ns.proto.Depleted() {
		return // stays asleep until a tick finds the battery recovered
	}
	if !e.active(i, e.now) {
		return // absent or crashed: re-checked at the next tick / restart
	}
	carrierFree := ns.busy == 0
	est := 0.0
	if e.cfg.Protocol.Variant == econcast.NonCapture && ns.state == model.Listen {
		est = e.listenEstimate(i)
	}
	r := ns.proto.Rates(carrierFree, est)
	var total float64
	switch ns.state {
	case model.Sleep:
		total = r.SleepToListen
	case model.Listen:
		total = r.ListenToSleep + r.ListenToTransmit
	}
	if total <= 0 {
		return
	}
	dwell := e.rngs[i].Exp(total)
	if ns.state == model.Sleep {
		// Sleep intervals are timed by the node's low-power clock, which
		// the drift fault scales; listen/transmit timing runs off the
		// (accurate) active-mode clock, as on the testbed hardware.
		dwell *= e.flt.Drift(i)
	}
	e.push(event{
		at:      e.now + dwell,
		kind:    evTransition,
		node:    i,
		version: ns.version,
	})
}

// handleTransition fires node i's sampled transition.
func (e *engine) handleTransition(i int) {
	ns := &e.nodes[i]
	e.accrue(i)
	switch ns.state {
	case model.Sleep:
		e.setState(i, model.Listen)
		e.onListenSetChanged(i)
		e.scheduleTransition(i)
	case model.Listen:
		carrierFree := ns.busy == 0
		est := 0.0
		if e.cfg.Protocol.Variant == econcast.NonCapture {
			est = e.listenEstimate(i)
		}
		r := ns.proto.Rates(carrierFree, est)
		total := r.ListenToSleep + r.ListenToTransmit
		if total <= 0 {
			return
		}
		if e.rngs[i].Float64()*total < r.ListenToTransmit {
			e.startTransmission(i)
		} else {
			e.flushBurst(i)
			e.setState(i, model.Sleep)
			ns.sleptSince = true
			e.onListenSetChanged(i)
			e.scheduleTransition(i)
		}
	}
}

// setState switches node i's recorded state after accruing energy.
func (e *engine) setState(i int, st model.State) {
	e.accrue(i)
	if e.logging {
		e.logf("%.6f node %d: %v -> %v", e.now, i, e.nodes[i].state, st) //lint:allow hotalloc trace logging; e.logging is off in measured runs
	}
	e.nodes[i].state = st
}

// logf writes one trace line. Callers on the hot path must gate the call
// on e.logging themselves: building the variadic argument list boxes
// every operand, which would allocate per event even with no log sink.
func (e *engine) logf(format string, args ...any) {
	if e.cfg.EventLog != nil {
		fmt.Fprintf(e.cfg.EventLog, format+"\n", args...)
	}
}

// onListenSetChanged resamples the non-capture listen->transmit rates of
// node i's listening neighbors, whose estimates just changed.
func (e *engine) onListenSetChanged(i int) {
	if e.cfg.Protocol.Variant != econcast.NonCapture {
		return
	}
	for _, j := range e.neighbors(i) {
		if e.nodes[j].state == model.Listen {
			e.scheduleTransition(j)
		}
	}
}

// startTransmission moves node i from listen to transmit, occupies the
// channel for its neighbors, and begins the first packet of the hold.
func (e *engine) startTransmission(i int) {
	if e.nodes[i].busy != 0 {
		// Carrier sensing (the A(t) gate) must make this unreachable.
		panic(fmt.Sprintf("sim: node %d transmitting into a busy channel", i))
	}
	e.flushBurst(i)
	e.setState(i, model.Transmit)
	e.bump(i) // no timer while transmitting
	e.onListenSetChanged(i)
	// Occupy the channel: each neighbor gains one transmitting neighbor.
	for _, j := range e.neighbors(i) {
		ns := &e.nodes[j]
		ns.busy++
		if ns.busy == 1 && ns.state != model.Transmit {
			// Channel became busy for j: freeze by resampling (rates -> 0).
			e.scheduleTransition(j)
		}
	}
	// A new transmission collides with receptions of other in-flight
	// packets at shared receivers (hidden terminals, non-clique only).
	for tx := range e.packets {
		if !e.packets[tx].active {
			continue
		}
		for _, j := range e.packets[tx].listeners {
			if e.adjacent(i, j) && !e.nodes[j].collidedInPkt {
				e.nodes[j].collidedInPkt = true
				if e.measuring {
					e.met.CollidedReceptions++
				}
			}
		}
	}
	e.startPacket(i, 0, false)
}

// startPacket begins one unit packet from transmitter i. burstLen counts
// packets already sent in this hold and delivered whether any earlier
// packet of the hold was received. The listener set is every neighbor
// currently listening; a listener with more than one transmitting neighbor
// is collided from the start.
func (e *engine) startPacket(i, burstLen int, delivered bool) {
	p := &e.packets[i]
	p.active = true
	p.burstLen = burstLen
	p.delivered = delivered
	p.listeners = p.listeners[:0]
	for _, j := range e.neighbors(i) {
		ns := &e.nodes[j]
		if ns.state == model.Listen {
			p.listeners = append(p.listeners, j) //lint:allow hotalloc reuses the slot's capacity; grows at most n times per run
			ns.collidedInPkt = ns.busy > 1
			if ns.collidedInPkt && e.measuring {
				e.met.CollidedReceptions++
			}
		}
	}
	if e.logging {
		e.logf("%.6f node %d: packet %d of hold, %d listeners",
			e.now, i, burstLen+1, len(p.listeners)) //lint:allow hotalloc trace logging; e.logging is off in measured runs
	}
	e.push(event{at: e.now + e.packetTime, kind: evPacketEnd, node: i})
}

// handlePacketEnd completes transmitter i's current packet: deliver
// receptions, re-estimate listeners, and continue or release the channel.
func (e *engine) handlePacketEnd(i int) {
	p := &e.packets[i]
	if !p.active || e.nodes[i].state != model.Transmit {
		return
	}
	// A stuck (silenced) radio transmits carrier — neighbors still defer —
	// but delivers nothing. Receiver-side loss draws are skipped entirely
	// for silenced packets: no reception was attempted, so the loss
	// streams advance only on real attempts and stay reproducible.
	silenced := e.flt.Silenced(i, e.now)
	success := 0
	for _, j := range p.listeners {
		ns := &e.nodes[j]
		if ns.state != model.Listen {
			// Left mid-packet (churn departure or crash): no reception.
			ns.collidedInPkt = false
			continue
		}
		if ns.collidedInPkt {
			ns.collidedInPkt = false
			continue
		}
		if silenced || e.flt.DropRx(j, e.now) {
			if e.measuring {
				e.met.LostReceptions++
			}
			continue
		}
		success++
		ns.burstCount++
		if e.cfg.OnDeliver != nil {
			e.cfg.OnDeliver(i, j, e.now)
		}
		if e.measuring {
			e.met.PacketsDelivered++
			// Burst/latency bookkeeping: first packet of a receive burst.
			if ns.burstCount == 1 && ns.hasBurst && ns.sleptSince {
				e.latency = append(e.latency, e.now-e.packetTime-ns.lastBurstEnd) //lint:allow hotalloc amortized sample buffer growth
			}
			ns.sleptSince = false
		}
		ns.lastBurstEnd = e.now
		ns.hasBurst = true
	}
	if e.measuring {
		e.met.PacketsSent++
		e.gp[i] += float64(success) * e.packetTime
		if success > 0 {
			e.met.PacketsAnyDeliver++
			e.ap[i] += e.packetTime
		}
	}
	if success > 0 {
		p.delivered = true
	}
	// The slot stays readable (listeners, burstLen, delivered) for the
	// remainder of this handler; startPacket reclaims it on a hold.
	p.active = false

	// A physically depleted listener is forced to sleep to recharge; it
	// cannot stay in receive on an empty store.
	if e.cfg.HardBatteryFloor {
		for _, j := range p.listeners {
			e.accrue(j)
			if e.nodes[j].state == model.Listen && e.nodes[j].proto.Depleted() {
				e.flushBurst(j)
				e.setState(j, model.Sleep)
				e.nodes[j].sleptSince = true
				e.bump(j)
				e.onListenSetChanged(j)
			}
		}
	}

	// Decide whether to hold the channel (EconCast-C) or release; a
	// depleted transmitter must release regardless.
	e.accrue(i)
	est := e.estimateFor(i, success)
	cont := e.nodes[i].proto.ContinueTransmitProb(est)
	forced := e.cfg.HardBatteryFloor && e.nodes[i].proto.Depleted()
	if !e.active(i, e.now) {
		forced = true // departed or crashed: release the channel now
	}
	if !forced && e.rngs[i].Bernoulli(cont) {
		e.startPacket(i, p.burstLen+1, p.delivered)
		return
	}
	// Hold complete: record its length if it reached any receiver (the
	// Appendix E burst definition behind eqs. 34-35).
	if p.delivered && e.measuring {
		e.bl[i].Add(float64(p.burstLen + 1))
	}
	// Release: transmitter returns to listen (Fig. 1), neighbors unfreeze.
	e.setState(i, model.Listen)
	e.scheduleTransition(i)
	for _, j := range e.neighbors(i) {
		ns := &e.nodes[j]
		ns.busy--
		if ns.busy == 0 && ns.state != model.Transmit {
			e.scheduleTransition(j)
		}
	}
	e.onListenSetChanged(i)
}

// flushBurst closes node i's receive burst (used by the latency metric;
// burst-length samples themselves are recorded per channel hold).
func (e *engine) flushBurst(i int) {
	e.nodes[i].burstCount = 0
}

// handleTick advances energy bookkeeping (forcing the eq. 17 update to
// land exactly on the tau boundary) and resamples the node's transition,
// since its rates depend on the refreshed multiplier.
func (e *engine) handleTick(i int, tau float64) {
	e.accrue(i)
	// Departure: an absent node abandons listening (transmitters finish
	// their current hold first; the packet machinery owns that state).
	if !e.active(i, e.now) && e.nodes[i].state == model.Listen {
		e.flushBurst(i)
		e.setState(i, model.Sleep)
		e.nodes[i].sleptSince = true
		e.bump(i)
		e.onListenSetChanged(i)
	}
	if e.cfg.OnTick != nil {
		nd := e.cfg.Network.Nodes[i]
		p0 := math.Max(nd.ListenPower, nd.TransmitPower)
		e.cfg.OnTick(i, e.now, e.nodes[i].proto.Eta()/p0)
	}
	if e.nodes[i].state != model.Transmit {
		e.scheduleTransition(i)
	}
	e.push(event{at: e.now + tau, kind: evTick, node: i})
}

// finish assembles the metrics.
func (e *engine) finish() *Metrics {
	window := e.cfg.Duration - e.cfg.Warmup
	e.met.Window = window
	// Canonical merge: per-node accumulations fold in ascending node
	// order, so the floats are independent of the dispatch interleaving.
	for i := 0; i < e.n; i++ {
		e.met.Groupput += e.gp[i]
		e.met.Anyput += e.ap[i]
		e.met.BurstLengths.Merge(e.bl[i])
	}
	e.met.Latency = stats.NewCDF(e.latency)
	e.met.Groupput /= window
	e.met.Anyput /= window
	// Order audit: each occupancy entry is scaled independently at its own
	// key — no cross-key accumulation — so iteration order cannot affect
	// the result (econlint's maprange proves this shape order-insensitive).
	for s := range e.met.Occupancy {
		e.met.Occupancy[s] /= window
	}
	e.met.Power = make([]float64, e.n)
	e.met.EtaFinal = make([]float64, e.n)
	e.met.Battery = make([]float64, e.n)
	for i := range e.nodes {
		nd := e.cfg.Network.Nodes[i]
		// Mean consumption over the window: harvest - net battery gain.
		gained := e.nodes[i].proto.Battery() - e.warmupBattery[i]
		e.met.Power[i] = nd.Budget - gained/window
		p0 := math.Max(nd.ListenPower, nd.TransmitPower)
		e.met.EtaFinal[i] = e.nodes[i].proto.Eta() / p0
		e.met.Battery[i] = e.nodes[i].proto.Battery()
	}
	e.met.FaultTrace = e.flt.Trace()
	return &e.met
}
