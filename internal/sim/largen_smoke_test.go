package sim

import (
	"os"
	"reflect"
	"runtime"
	"testing"

	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/sweep"
	"econcast/internal/topology"
)

// TestLargeNSmoke drives the engine over a 100k-node grid on a
// truncated horizon, fanning two replicate cells through the sweep so
// the race detector has concurrent engines to watch. When GOMAXPROCS
// exceeds 1 (the CI smoke sets 4), the hook-free cells auto-select the
// window-parallel engine, and the first cell is re-run through the
// forced-serial single-queue path and compared for deep equality — the
// multi-core smoke double-checks the byte-identity contract at scale.
// At this N it is far too heavy for the ordinary `go test ./...` pass,
// so it only runs when CI asks for it via ECONCAST_LARGE_N_SMOKE=1.
func TestLargeNSmoke(t *testing.T) {
	if os.Getenv("ECONCAST_LARGE_N_SMOKE") == "" {
		t.Skip("set ECONCAST_LARGE_N_SMOKE=1 to run the 100k-node smoke test")
	}
	topo := topology.Grid(316, 316)
	n := 316 * 316
	cell := func(rep uint64) Config {
		return Config{
			Network:  model.Homogeneous(n, 60*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt),
			Topology: topo,
			Protocol: Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: 0.5, Delta: 0.1},
			Duration: 0.004,
			Warmup:   0.001,
			Seed:     rng.DeriveSeed(11, 100000, rep),
		}
	}
	if cfg := cell(1); cfg.parallelPlan() > 1 {
		t.Logf("auto plan: parallel engine with %d workers", cfg.parallelPlan())
	} else {
		t.Logf("auto plan: serial engine (GOMAXPROCS %d)", runtime.GOMAXPROCS(0))
	}
	reps := []uint64{1, 2}
	metrics, err := sweep.Map(2, reps, func(ri int, rep uint64) (*Metrics, error) {
		return Run(cell(rep))
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range metrics {
		if m.Events == 0 || m.PacketsSent == 0 {
			t.Errorf("cell %d: no activity on the 100k grid: %+v", i, m)
		}
		if m.Groupput <= 0 || m.Groupput > float64(n) {
			t.Errorf("cell %d: aggregate groupput %v outside (0, N]", i, m.Groupput)
		}
	}
	serial := cell(1)
	serial.Parallel, serial.Shards = 1, 1
	want, err := Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(metrics[0], want) {
		t.Errorf("100k cell 1 diverged from the single-queue engine:\n  want %+v\n  got  %+v", want, metrics[0])
	}
}
