package sim

import (
	"os"
	"testing"

	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/sweep"
	"econcast/internal/topology"
)

// TestLargeNSmoke drives the sharded engine over a 100k-node grid on a
// truncated horizon, fanning two replicate cells through the sweep so
// the race detector has concurrent shard engines to watch. At this N it
// is far too heavy for the ordinary `go test ./...` pass, so it only
// runs when the CI smoke step asks for it via ECONCAST_LARGE_N_SMOKE=1.
func TestLargeNSmoke(t *testing.T) {
	if os.Getenv("ECONCAST_LARGE_N_SMOKE") == "" {
		t.Skip("set ECONCAST_LARGE_N_SMOKE=1 to run the 100k-node smoke test")
	}
	topo := topology.Grid(316, 316)
	n := 316 * 316
	reps := []uint64{1, 2}
	metrics, err := sweep.Map(2, reps, func(ri int, rep uint64) (*Metrics, error) {
		return Run(Config{
			Network:  model.Homogeneous(n, 60*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt),
			Topology: topo,
			Protocol: Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: 0.5, Delta: 0.1},
			Duration: 0.004,
			Warmup:   0.001,
			Seed:     rng.DeriveSeed(11, 100000, rep),
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range metrics {
		if m.Events == 0 || m.PacketsSent == 0 {
			t.Errorf("cell %d: no activity on the 100k grid: %+v", i, m)
		}
		if m.Groupput <= 0 || m.Groupput > float64(n) {
			t.Errorf("cell %d: aggregate groupput %v outside (0, N]", i, m.Groupput)
		}
	}
}
