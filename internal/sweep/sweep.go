// Package sweep is a deterministic fan-out engine for embarrassingly
// parallel experiment sweeps. Every paper artifact in this repository is
// a grid of independent (parameter, seed) cells; sweep executes such a
// grid across a bounded worker pool while guaranteeing that the observable
// output is byte-identical to a serial run at any worker count.
//
// The contract has three parts:
//
//   - Ordering: results are collected in cell index order. Each cell is a
//     self-contained closure over its own inputs (including its seed,
//     derived with rng.DeriveSeed, never from shared mutable state), so
//     the assembled result slice — and anything formatted from it — does
//     not depend on scheduling.
//
//   - Seed derivation: cells must derive their seeds by splitmix mixing
//     (rng.DeriveSeed) from the sweep's base seed and the cell's
//     parameters, not by additive arithmetic, so no two cells can collide
//     on a seed and no cell's randomness depends on execution order.
//
//   - Error propagation: the first error in cell index order wins. Cells
//     are dispatched in increasing index order and every dispatched cell
//     is drained before Run returns, so the reported error is the same at
//     any worker count. A panicking cell is converted to an error rather
//     than tearing down the process; the pool always drains cleanly.
//
// sweep is one of the three packages licensed by econlint's rawgoroutine
// analyzer to spawn goroutines: its concurrency is confined behind the
// index-ordered collection barrier above, so callers stay deterministic.
// econlint itself eats this dog food: its driver type-checks and
// analyzes packages on sweep.Map, which is what makes `-parallel n`
// byte-identical at every worker count.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Cell is one independent unit of a sweep: a closure over its own inputs
// that returns its result. Cells must not communicate with each other or
// mutate state shared with other cells; everything a cell produces must
// travel through its return value.
type Cell[T any] func() (T, error)

// Run executes cells across a bounded worker pool and returns their
// results in cell index order. workers <= 0 selects GOMAXPROCS. The
// output is byte-identical to a serial run at any worker count; on
// failure the error of the lowest-index failing cell is returned (see the
// package comment for why that is deterministic).
func Run[T any](workers int, cells []Cell[T]) ([]T, error) {
	n := len(cells)
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	errs := make([]error, n)
	var (
		next   atomic.Int64 // next undispatched cell index
		failed atomic.Bool  // stop dispatching; in-flight cells drain
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// The stop flag is checked only BEFORE claiming an index:
				// a claimed cell always runs to completion. That keeps the
				// dispatched set a prefix {0..k} with every member drained,
				// which is what makes first-error-by-index deterministic.
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := runCell(i, cells[i], results); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runCell executes one cell, converting a panic into an error so a bad
// cell cannot tear down the pool (or the process).
func runCell[T any](i int, cell Cell[T], results []T) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: cell %d panicked: %v", i, r)
		}
	}()
	if cell == nil {
		return fmt.Errorf("sweep: cell %d is nil", i)
	}
	out, err := cell()
	if err != nil {
		return fmt.Errorf("sweep: cell %d: %w", i, err)
	}
	results[i] = out
	return nil
}

// Map applies f to every item across the worker pool, preserving item
// order in the returned slice. It is shorthand for building one Cell per
// item; f receives the item's index and value.
func Map[S, T any](workers int, items []S, f func(i int, item S) (T, error)) ([]T, error) {
	cells := make([]Cell[T], len(items))
	for i := range items {
		i, item := i, items[i]
		cells[i] = func() (T, error) { return f(i, item) }
	}
	return Run(workers, cells)
}
