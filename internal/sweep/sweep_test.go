package sweep

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"econcast/internal/rng"
)

// TestResultsInIndexOrder: results land at their cell's index for every
// worker count, including counts far above the cell count.
func TestResultsInIndexOrder(t *testing.T) {
	const n = 100
	cells := make([]Cell[int], n)
	for i := range cells {
		i := i
		cells[i] = func() (int, error) { return i * i, nil }
	}
	for _, workers := range []int{0, 1, 2, 4, 16, 300} {
		got, err := Run(workers, cells)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestDeterministicAcrossWorkerCounts: a sweep whose cells each consume
// their own derived rng stream produces bit-identical output at any
// worker count.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	mk := func() []Cell[uint64] {
		cells := make([]Cell[uint64], 64)
		for i := range cells {
			i := i
			cells[i] = func() (uint64, error) {
				src := rng.New(rng.DeriveSeed(99, uint64(i)))
				var acc uint64
				for k := 0; k < 1000; k++ {
					acc ^= src.Uint64()
				}
				return acc, nil
			}
		}
		return cells
	}
	base, err := Run(1, mk())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 16} {
		got, err := Run(workers, mk())
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: result[%d] = %#x, serial %#x", workers, i, got[i], base[i])
			}
		}
	}
}

// TestFirstErrorWins: the lowest-index failing cell's error is reported
// at every worker count, even when a higher-index cell fails first in
// wall-clock time.
func TestFirstErrorWins(t *testing.T) {
	errLow := errors.New("low fails slowly")
	errHigh := errors.New("high fails fast")
	mk := func() []Cell[int] {
		cells := make([]Cell[int], 32)
		for i := range cells {
			i := i
			cells[i] = func() (int, error) {
				switch i {
				case 3:
					time.Sleep(20 * time.Millisecond)
					return 0, errLow
				case 25:
					return 0, errHigh
				default:
					return i, nil
				}
			}
		}
		return cells
	}
	for _, workers := range []int{1, 4, 16} {
		_, err := Run(workers, mk())
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v, want the cell-3 error", workers, err)
		}
		if want := "cell 3"; err == nil || !strings.Contains(err.Error(), want) {
			t.Fatalf("workers=%d: error %q does not name %s", workers, err, want)
		}
	}
}

// TestErrorStopsDispatch: after a failure, undispatched cells are
// skipped (the pool does not grind through the whole grid), while every
// dispatched cell drains.
func TestErrorStopsDispatch(t *testing.T) {
	const n = 10000
	var ran atomic.Int64
	cells := make([]Cell[int], n)
	for i := range cells {
		i := i
		cells[i] = func() (int, error) {
			ran.Add(1)
			if i == 5 {
				return 0, errors.New("boom")
			}
			return i, nil
		}
	}
	if _, err := Run(4, cells); err == nil {
		t.Fatal("expected an error")
	}
	if got := ran.Load(); got >= n {
		t.Fatalf("all %d cells ran despite an early failure", got)
	}
}

// TestPanickingCell: a panic becomes an error naming the cell; the pool
// drains cleanly and stays usable.
func TestPanickingCell(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		cells := make([]Cell[string], 16)
		for i := range cells {
			i := i
			cells[i] = func() (string, error) {
				if i == 7 {
					panic("cell exploded")
				}
				return fmt.Sprintf("ok %d", i), nil
			}
		}
		_, err := Run(workers, cells)
		if err == nil {
			t.Fatalf("workers=%d: panic not surfaced", workers)
		}
		if !strings.Contains(err.Error(), "cell 7 panicked") ||
			!strings.Contains(err.Error(), "cell exploded") {
			t.Fatalf("workers=%d: error %q does not describe the panic", workers, err)
		}
	}
	// The pool is per-call; a fresh Run after a panic behaves normally.
	got, err := Run(4, []Cell[int]{func() (int, error) { return 41, nil }})
	if err != nil || got[0] != 41 {
		t.Fatalf("pool unusable after panic: %v %v", got, err)
	}
}

// TestPanicBeforeError: a panicking cell at a lower index beats a plain
// error at a higher index — panics participate in first-error ordering.
func TestPanicBeforeError(t *testing.T) {
	cells := []Cell[int]{
		func() (int, error) { return 0, nil },
		func() (int, error) { time.Sleep(10 * time.Millisecond); panic("early panic") },
		func() (int, error) { return 0, errors.New("late error") },
	}
	_, err := Run(3, cells)
	if err == nil || !strings.Contains(err.Error(), "cell 1 panicked") {
		t.Fatalf("got %v, want the cell-1 panic", err)
	}
}

func TestNilCell(t *testing.T) {
	_, err := Run(2, []Cell[int]{
		func() (int, error) { return 1, nil },
		nil,
	})
	if err == nil || !strings.Contains(err.Error(), "cell 1 is nil") {
		t.Fatalf("got %v, want a nil-cell error", err)
	}
}

func TestEmptySweep(t *testing.T) {
	got, err := Run[int](8, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty sweep: %v, %v", got, err)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	items := []string{"a", "bb", "ccc", "dddd"}
	got, err := Map(3, items, func(i int, s string) (int, error) {
		return i * len(s), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 6, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Map result %v, want %v", got, want)
		}
	}
}

// TestStressDrainUnderRace hammers the pool with mixed failing and
// panicking cells; run under -race this exercises the claim that workers
// never touch a result slot out of index or leak past Run's return.
func TestStressDrainUnderRace(t *testing.T) {
	for round := 0; round < 30; round++ {
		round := round
		const n = 64
		cells := make([]Cell[int], n)
		for i := range cells {
			i := i
			cells[i] = func() (int, error) {
				switch {
				case i%17 == round%17:
					return 0, fmt.Errorf("fail %d", i)
				case i%23 == round%23:
					panic(i)
				default:
					return i, nil
				}
			}
		}
		_, err := Run(16, cells)
		if err == nil {
			t.Fatalf("round %d: expected an error", round)
		}
	}
}
