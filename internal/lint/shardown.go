package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// InstanceOwned is the reserved ownership domain for types owned
// per-instance by whichever single goroutine holds them (rng.Source,
// stats.Accumulator, econcast.Node, faults.Set). Instance-owned types
// are the sharedstate analyzer's jurisdiction — one instance must not be
// consumed from two goroutines — while shardown's cross-domain rules
// apply only to role domains (sim-engine, asim-broker, ...), where the
// domain names a specific goroutine role and any access from another
// role is a contract violation.
const InstanceOwned = "goroutine"

// Owners is the module-wide ownership-annotation table, built by the
// Loader as packages are type-checked (dependencies included):
//
//	//lint:owner <domain> [reason]    on a type declaration
//	//lint:handoff <domain> [reason]  on a function declaration
//
// An owner annotation declares that every instance of the type is owned
// by one goroutine of the named domain; a handoff annotation licenses
// the function as a conservative sync boundary through which owned state
// may legally cross domains. The table is written only under the
// Loader's mutex during loading and is read-only during analysis.
type Owners struct {
	types    map[string]string // "pkgpath.TypeName" -> domain
	handoffs map[string]string // "pkgpath.Func" / "pkgpath.Recv.Method" -> domain
}

func newOwners() *Owners {
	return &Owners{
		types:    make(map[string]string),
		handoffs: make(map[string]string),
	}
}

// scanPackage records pkg's ownership annotations. Called by the Loader
// with its mutex held, once per package.
func (o *Owners) scanPackage(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				declDomain := ownerDomainIn(d.Doc)
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					domain := ownerDomainIn(ts.Doc)
					if domain == "" {
						domain = declDomain
					}
					if domain != "" {
						o.types[pkg.Path+"."+ts.Name.Name] = domain
					}
				}
			case *ast.FuncDecl:
				if domain := handoffDomainIn(d.Doc); domain != "" {
					o.handoffs[funcKey(pkg.Path, d)] = domain
				}
			}
		}
	}
}

func ownerDomainIn(doc *ast.CommentGroup) string {
	return directiveDomainIn(doc, "owner")
}

func handoffDomainIn(doc *ast.CommentGroup) string {
	return directiveDomainIn(doc, "handoff")
}

func directiveDomainIn(doc *ast.CommentGroup, kind string) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		if d := parseDirective(c.Text); d.Kind == kind {
			return d.Domain
		}
	}
	return ""
}

// funcKey builds the handoff-table key of a declared function:
// "pkgpath.Func" for free functions, "pkgpath.Recv.Method" for methods.
func funcKey(pkgPath string, fd *ast.FuncDecl) string {
	if recv := recvTypeName(fd); recv != "" {
		return pkgPath + "." + recv + "." + fd.Name.Name
	}
	return pkgPath + "." + fd.Name.Name
}

// TypeDomain returns the ownership domain annotated on the named type,
// or "".
func (o *Owners) TypeDomain(tn *types.TypeName) string {
	if o == nil || tn == nil || tn.Pkg() == nil {
		return ""
	}
	return o.types[tn.Pkg().Path()+"."+tn.Name()]
}

// HandoffDomain returns the domain fn is a licensed handoff for, or "".
func (o *Owners) HandoffDomain(fn *types.Func) string {
	if o == nil || fn == nil || fn.Pkg() == nil {
		return ""
	}
	key := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if name := recvTypeNameOf(sig.Recv().Type()); name != "" {
			key += name + "."
		}
	}
	return o.handoffs[key+fn.Name()]
}

// roleDomain returns the non-instance ownership domain of t (pointers
// unwrapped), or "". Instance-owned types resolve to "": their sharing
// discipline is sharedstate's rule, not a role boundary.
func (o *Owners) roleDomain(t types.Type) string {
	d := o.anyDomain(t)
	if d == InstanceOwned {
		return ""
	}
	return d
}

// anyDomain returns t's annotated domain (pointers unwrapped), role or
// instance, or "".
func (o *Owners) anyDomain(t types.Type) string {
	if o == nil || t == nil {
		return ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return o.TypeDomain(named.Obj())
}

// recvTypeNameOf returns the bare type name of a receiver type.
func recvTypeNameOf(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// ShardOwn proves the isolation invariant the sharded-simulation
// refactor is built against: state owned by a goroutine domain
// (annotated `//lint:owner <domain>` on its type) is only ever touched
// from its own domain, and only crosses domains through functions
// explicitly licensed with `//lint:handoff <domain>`. Three access paths
// are checked:
//
//   - goroutine crossing: an owned value referenced inside a `go` call
//     (captured, passed, or received) — legal only as the receiver of
//     the launch that establishes ownership (`go shard.run()`) or when
//     the launched function is a licensed handoff;
//
//   - cross-domain access: a method of a type owned by domain A reading
//     or writing a field, or calling a method, of a value owned by
//     domain B — legal only inside a handoff licensed for B;
//
//   - cross-domain escape: domain-A code passing a B-owned value as an
//     argument — legal only when the callee is a handoff licensed for B.
//
// Code with no domain (constructors, Run wrappers) runs before the
// goroutines exist and is unconstrained except for the crossing rule.
// Types annotated with the reserved `goroutine` domain are
// instance-owned and policed by sharedstate instead.
var ShardOwn = &Analyzer{
	Name: "shardown",
	Doc:  "owned state accessed outside its owning goroutine domain without a licensed handoff",
	Run: func(p *Pass) {
		if p.Owners == nil {
			return
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkShardFunc(p, fd)
			}
		}
	},
}

func checkShardFunc(p *Pass, fd *ast.FuncDecl) {
	o := p.Owners
	// The function's own domain: a method of an owned type runs in that
	// type's goroutine.
	domain := ""
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		domain = o.roleDomain(p.Info.TypeOf(fd.Recv.List[0].Type))
	}
	// A handoff license extends the allowed set by its domain.
	handoff := ""
	if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
		handoff = o.HandoffDomain(fn)
	}
	allowed := func(b string) bool { return b == domain || b == handoff }

	// goCalls maps each `go` statement's call so the access rules can
	// recognize the ownership-establishing launch.
	goCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			goCalls[g.Call] = true
		}
		return true
	})

	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, format string, args ...any) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		fix := suppressionFix(p, pos, "shardown", "TODO: justify this domain crossing")
		p.ReportfFix(pos, fix, format, args...)
	}

	// Rule 1: owned values crossing into goroutines.
	for call := range goCalls {
		checkGoCrossing(p, fd, call, report)
	}

	if domain == "" {
		return // un-owned code: setup/teardown, unconstrained below
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			selInfo, ok := p.Info.Selections[n]
			if !ok {
				return true
			}
			b := o.roleDomain(p.Info.TypeOf(n.X))
			if b == "" || allowed(b) {
				return true
			}
			switch selInfo.Kind() {
			case types.FieldVal:
				report(n.Sel.Pos(), "field %s of domain %q state accessed from domain %q; route it through a //lint:handoff %s function", n.Sel.Name, b, domain, b)
			case types.MethodVal:
				if isEstablishingLaunch(p, goCalls, n) {
					return true
				}
				if fn, ok := p.Info.Uses[n.Sel].(*types.Func); ok && o.HandoffDomain(fn) == b {
					return true
				}
				report(n.Sel.Pos(), "method %s of domain %q state called from domain %q; only //lint:handoff %s methods may cross", n.Sel.Name, b, domain, b)
			}
		case *ast.CallExpr:
			callee := calleeFunc(p.Info, n)
			for _, arg := range n.Args {
				b := o.roleDomain(p.Info.TypeOf(arg))
				if b == "" || allowed(b) {
					continue
				}
				if callee != nil && o.HandoffDomain(callee) == b {
					continue
				}
				report(arg.Pos(), "value owned by domain %q escapes domain %q as a call argument; only //lint:handoff %s functions may receive it", b, domain, b)
			}
		}
		return true
	})
}

// isEstablishingLaunch reports whether sel is the `x.m` of a `go x.m()`
// statement: the launch that hands x to its owning goroutine.
func isEstablishingLaunch(p *Pass, goCalls map[*ast.CallExpr]bool, sel *ast.SelectorExpr) bool {
	for call := range goCalls {
		if ast.Unparen(call.Fun) == sel {
			return true
		}
	}
	return false
}

// checkGoCrossing flags role-owned values referenced anywhere in a `go`
// call — closure captures, arguments, receivers — except the receiver of
// the ownership-establishing launch and arguments to licensed handoffs.
func checkGoCrossing(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	o := p.Owners
	// The establishing receiver: `go x.run()` hands x to the goroutine
	// that will own it.
	var establish ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if o.roleDomain(p.Info.TypeOf(sel.X)) != "" {
			establish = sel.X
		}
	}
	calleeHandoff := ""
	if fn := calleeFunc(p.Info, call); fn != nil {
		calleeHandoff = o.HandoffDomain(fn)
	}
	ast.Inspect(call, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		b := o.roleDomain(v.Type())
		if b == "" || b == calleeHandoff {
			return true
		}
		if establish != nil && id.Pos() >= establish.Pos() && id.Pos() < establish.End() {
			return true
		}
		report(id.Pos(), "%s (owned by domain %q) crosses into this goroutine; launch it as `go %s.method()` to establish ownership or pass it through a //lint:handoff %s function", id.Name, b, id.Name, b)
		return true
	})
}
