package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"sort"
	"strings"
)

// TextEdit is one machine-applicable replacement: the bytes of File in
// [Start, End) are replaced by New. Offsets are 0-based byte offsets
// into the file as parsed; Start == End inserts.
type TextEdit struct {
	File  string
	Start int
	End   int
	New   string
}

// Fix is a suggested repair for a finding: a short description and the
// edits that implement it. All edits of one Fix are applied atomically
// or not at all.
type Fix struct {
	Message string
	Edits   []TextEdit
}

// suppressionFix builds the fallback Fix for analyzers whose findings
// need human judgment: append a justified trailing suppression to the
// flagged line. The inserted reason is a TODO stub so the suppression
// audit's intent — every allow carries a reason — survives the autofix.
func suppressionFix(p *Pass, pos token.Pos, analyzer, reason string) *Fix {
	tf := p.Fset.File(pos)
	if tf == nil {
		return nil
	}
	line := tf.Line(pos)
	off := lineEndOffset(tf, line)
	if off < 0 {
		return nil
	}
	text := " //lint:allow " + analyzer + " " + reason
	// A line already carrying a trailing comment would swallow an
	// appended directive (the comment token runs to end of line), so the
	// directive goes in front of the existing comment instead.
	if c := trailingComment(p, tf, pos, line); c != nil {
		off = tf.Offset(c.Pos())
		text = "//lint:allow " + analyzer + " " + reason + " "
	}
	return &Fix{
		Message: "suppress with a justified //lint:allow " + analyzer,
		Edits: []TextEdit{{
			File:  tf.Name(),
			Start: off,
			End:   off,
			New:   text,
		}},
	}
}

// trailingComment returns the first comment that starts after pos on the
// given line of the file holding pos, or nil.
func trailingComment(p *Pass, tf *token.File, pos token.Pos, line int) *ast.Comment {
	for _, f := range p.Files {
		if p.Fset.File(f.Pos()) != tf {
			continue
		}
		var best *ast.Comment
		for _, g := range f.Comments {
			for _, c := range g.List {
				if c.Pos() > pos && tf.Line(c.Pos()) == line &&
					(best == nil || c.Pos() < best.Pos()) {
					best = c
				}
			}
		}
		return best
	}
	return nil
}

// lineEndOffset returns the byte offset just before line's terminating
// newline (or the file size for an unterminated last line), or -1 if
// line is out of range.
func lineEndOffset(tf *token.File, line int) int {
	if line < 1 || line > tf.LineCount() {
		return -1
	}
	if line == tf.LineCount() {
		return tf.Size()
	}
	return tf.Offset(tf.LineStart(line + 1)) - 1
}

// FixResult is the outcome of planning fixes over a set of findings.
type FixResult struct {
	// Contents maps each file that would change to its rewritten bytes.
	Contents map[string][]byte
	// Applied counts fixes whose edits were accepted.
	Applied int
	// Skipped counts fixes dropped because an edit overlapped one
	// already accepted (first finding in sorted order wins).
	Skipped int
}

// PlanFixes reads the files named by the findings' fixes and computes
// their contents with all non-overlapping fixes applied. Findings must
// already be in sorted order (as returned by Check); earlier findings
// win conflicts, so the result is deterministic. Only the first Fix of
// each finding is considered.
func PlanFixes(findings []Finding) (*FixResult, error) {
	src := make(map[string][]byte)   // original file contents
	taken := make(map[string][][2]int) // accepted edit ranges per file
	var accepted []TextEdit
	res := &FixResult{Contents: make(map[string][]byte)}

	load := func(file string) ([]byte, error) {
		if data, ok := src[file]; ok {
			return data, nil
		}
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		src[file] = data
		return data, nil
	}

	overlaps := func(file string, start, end int) bool {
		for _, r := range taken[file] {
			// Two inserts at the same offset conflict; otherwise ranges
			// conflict when they intersect.
			if start < r[1] && end > r[0] || start == r[0] && end == start && r[1] == r[0] {
				return true
			}
		}
		return false
	}

	for _, f := range findings {
		if len(f.Fixes) == 0 {
			continue
		}
		fix := f.Fixes[0]
		ok := true
		for _, e := range fix.Edits {
			data, err := load(e.File)
			if err != nil {
				return nil, fmt.Errorf("lint: fix for %s: %w", f.Pos, err)
			}
			if e.Start < 0 || e.End < e.Start || e.End > len(data) || overlaps(e.File, e.Start, e.End) {
				ok = false
				break
			}
		}
		if !ok {
			res.Skipped++
			continue
		}
		res.Applied++
		for _, e := range fix.Edits {
			taken[e.File] = append(taken[e.File], [2]int{e.Start, e.End})
			accepted = append(accepted, e)
		}
	}

	byFile := make(map[string][]TextEdit)
	for _, e := range accepted {
		byFile[e.File] = append(byFile[e.File], e)
	}
	for file, edits := range byFile {
		sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
		data := append([]byte(nil), src[file]...)
		for _, e := range edits {
			data = append(data[:e.Start], append([]byte(e.New), data[e.End:]...)...)
		}
		res.Contents[file] = data
	}
	return res, nil
}

// WriteFixes writes the planned contents back to disk.
func (r *FixResult) WriteFixes() error {
	files := make([]string, 0, len(r.Contents))
	for f := range r.Contents {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		info, err := os.Stat(f)
		mode := os.FileMode(0o644)
		if err == nil {
			mode = info.Mode().Perm()
		}
		if err := os.WriteFile(f, r.Contents[f], mode); err != nil {
			return err
		}
	}
	return nil
}

// UnifiedDiff renders a unified diff (3 lines of context) between old
// and new, labeled with the given path. Returns "" when identical.
func UnifiedDiff(path string, old, new []byte) string {
	if string(old) == string(new) {
		return ""
	}
	a := splitLines(string(old))
	b := splitLines(string(new))
	ops := diffLines(a, b)

	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s\n", path, path)

	const ctx = 3
	i := 0
	for i < len(ops) {
		// Skip to the next change.
		for i < len(ops) && ops[i].kind == ' ' {
			i++
		}
		if i == len(ops) {
			break
		}
		// Hunk start: back up ctx lines of context.
		start := i - ctx
		if start < 0 {
			start = 0
		}
		// Extend through changes separated by <= 2*ctx context lines.
		end := i
		run := 0
		for j := i; j < len(ops); j++ {
			if ops[j].kind == ' ' {
				run++
				if run > 2*ctx {
					break
				}
			} else {
				run = 0
				end = j + 1
			}
		}
		stop := end + ctx
		if stop > len(ops) {
			stop = len(ops)
		}

		aStart, bStart := ops[start].aLine, ops[start].bLine
		aCount, bCount := 0, 0
		for _, op := range ops[start:stop] {
			if op.kind != '+' {
				aCount++
			}
			if op.kind != '-' {
				bCount++
			}
		}
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", aStart+1, aCount, bStart+1, bCount)
		for _, op := range ops[start:stop] {
			sb.WriteByte(byte(op.kind))
			sb.WriteString(op.text)
			sb.WriteByte('\n')
		}
		i = stop
	}
	return sb.String()
}

type diffOp struct {
	kind  rune // ' ', '-', '+'
	text  string
	aLine int // 0-based line in a at this op (for '-'/' '), else position
	bLine int
}

// splitLines splits s into lines without trailing newlines; a trailing
// newline does not produce a final empty line.
func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	s = strings.TrimSuffix(s, "\n")
	return strings.Split(s, "\n")
}

// diffLines computes a line-level diff of a and b via LCS dynamic
// programming — quadratic, fine for source files.
func diffLines(a, b []string) []diffOp {
	n, m := len(a), len(b)
	// lcs[i][j] = LCS length of a[i:], b[j:].
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []diffOp
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			ops = append(ops, diffOp{' ', a[i], i, j})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, diffOp{'-', a[i], i, j})
			i++
		default:
			ops = append(ops, diffOp{'+', b[j], i, j})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, diffOp{'-', a[i], i, j})
	}
	for ; j < m; j++ {
		ops = append(ops, diffOp{'+', b[j], i, j})
	}
	return ops
}
