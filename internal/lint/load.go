package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string // import path it was checked under
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module using
// only the standard library. Imports within the module are resolved
// recursively by the Loader itself; everything else (the standard
// library) is type-checked from source via go/importer, so no compiled
// export data is required.
type Loader struct {
	Fset *token.FileSet

	root      string // module root directory (absolute)
	module    string // module path from go.mod
	goVersion string // e.g. "go1.22", from go.mod; may be ""
	std       types.Importer
	pkgs      map[string]*Package // memoized module-internal packages
	loading   map[string]bool     // import-cycle guard
}

// NewLoader returns a Loader for the module enclosing dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, module, goVersion, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:      fset,
		root:      root,
		module:    module,
		goVersion: goVersion,
		std:       importer.ForCompiler(fset, "source", nil),
		pkgs:      make(map[string]*Package),
		loading:   make(map[string]bool),
	}, nil
}

// findModule walks upward from dir to the nearest go.mod and extracts the
// module path and language version.
func findModule(dir string) (root, module, goVersion string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					module = strings.TrimSpace(rest)
				}
				if rest, ok := strings.CutPrefix(line, "go "); ok {
					goVersion = "go" + strings.TrimSpace(rest)
				}
			}
			if module == "" {
				return "", "", "", fmt.Errorf("lint: no module path in %s/go.mod", d)
			}
			return d, module, goVersion, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

// Import implements types.Importer: module-internal paths resolve through
// the Loader, everything else through the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// loadPath loads a module-internal import path.
func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
	return l.loadDir(filepath.Join(l.root, filepath.FromSlash(rel)), path)
}

// loadDir parses and type-checks the package in dir under import path
// asPath. Test files (_test.go) are excluded: econlint guards the
// production sources; tests are exercised by `go test -race` instead.
func (l *Loader) loadDir(dir, asPath string) (*Package, error) {
	if pkg, ok := l.pkgs[asPath]; ok {
		return pkg, nil
	}
	l.loading[asPath] = true
	defer delete(l.loading, asPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(names)

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l, GoVersion: l.goVersion}
	tpkg, err := conf.Check(asPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", asPath, err)
	}
	pkg := &Package{Path: asPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[asPath] = pkg
	return pkg, nil
}

// LoadDirAs loads the single package in dir, checking it under the given
// import path. Fixture tests use this to place test sources in a
// deterministic package without moving them there.
func (l *Loader) LoadDirAs(dir, asPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.loadDir(abs, asPath)
}

// Load expands package patterns relative to the current directory.
// Supported forms: "./...", "dir/...", "./dir", "dir". Directories named
// testdata or vendor, and hidden or underscore-prefixed directories, are
// skipped, as are directories with no non-test Go files.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var pkgs []*Package
	seen := make(map[string]bool)
	add := func(dir string) error {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return err
		}
		path, err := l.importPathFor(abs)
		if err != nil {
			return err
		}
		if seen[path] {
			return nil
		}
		seen[path] = true
		pkg, err := l.loadDir(abs, path)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
		return nil
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" {
			base = "."
		}
		if !recursive {
			if err := add(base); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if !hasGoFiles(p) {
				return nil
			}
			return add(p)
		})
		if err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}

// importPathFor maps an absolute directory inside the module to its
// import path.
func (l *Loader) importPathFor(abs string) (string, error) {
	rel, err := filepath.Rel(l.root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", abs, l.module)
	}
	if rel == "." {
		return l.module, nil
	}
	return l.module + "/" + filepath.ToSlash(rel), nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
