package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"econcast/internal/sweep"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string // import path it was checked under
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Owners is the Loader's module-wide ownership-annotation table,
	// shared by every package the Loader produced. Annotations from
	// dependency packages are visible because dependencies are loaded
	// (and scanned) through the same Loader before analysis begins.
	Owners *Owners
}

// Loader parses and type-checks packages of the enclosing module using
// only the standard library. Imports within the module are resolved
// recursively by the Loader itself; everything else (the standard
// library) is type-checked from source via go/importer, so no compiled
// export data is required.
//
// The Loader is safe for concurrent use through its exported methods:
// parsing fans out lock-free (token.FileSet is synchronized), while
// type-checking is serialized under an internal mutex because go/types
// and the shared source importer mutate unsynchronized caches. See
// LoadParallel.
type Loader struct {
	Fset *token.FileSet

	root      string // module root directory (absolute)
	module    string // module path from go.mod
	goVersion string // e.g. "go1.22", from go.mod; may be ""
	std       types.Importer

	// mu serializes type-checking and the package cache. Exported
	// loaders take it; the unexported internals (including Import, which
	// go/types calls back into mid-Check) assume it is held.
	mu      sync.Mutex
	pkgs    map[string]*Package // memoized module-internal packages
	loading map[string]bool     // import-cycle guard
	owners  *Owners             // //lint:owner and //lint:handoff annotations
}

// NewLoader returns a Loader for the module enclosing dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, module, goVersion, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:      fset,
		root:      root,
		module:    module,
		goVersion: goVersion,
		std:       importer.ForCompiler(fset, "source", nil),
		pkgs:      make(map[string]*Package),
		loading:   make(map[string]bool),
		owners:    newOwners(),
	}, nil
}

// findModule walks upward from dir to the nearest go.mod and extracts the
// module path and language version.
func findModule(dir string) (root, module, goVersion string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					module = strings.TrimSpace(rest)
				}
				if rest, ok := strings.CutPrefix(line, "go "); ok {
					goVersion = "go" + strings.TrimSpace(rest)
				}
			}
			if module == "" {
				return "", "", "", fmt.Errorf("lint: no module path in %s/go.mod", d)
			}
			return d, module, goVersion, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

// Import implements types.Importer: module-internal paths resolve through
// the Loader, everything else through the source importer. It is called
// by go/types during a Check the Loader initiated, so l.mu is already
// held.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// loadPath loads a module-internal import path. l.mu must be held.
func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
	return l.loadDir(filepath.Join(l.root, filepath.FromSlash(rel)), path, nil)
}

// parseDir parses the non-test Go files of dir into fset. Test files
// (_test.go) are excluded: econlint guards the production sources; tests
// are exercised by `go test -race` instead. parseDir takes no Loader
// state and token.FileSet is synchronized, so it may run concurrently
// with other parses and with type-checking.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(names)

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// loadDir type-checks the package in dir under import path asPath,
// parsing it first unless pre-parsed files are supplied. l.mu must be
// held.
func (l *Loader) loadDir(dir, asPath string, files []*ast.File) (*Package, error) {
	if pkg, ok := l.pkgs[asPath]; ok {
		return pkg, nil
	}
	l.loading[asPath] = true
	defer delete(l.loading, asPath)

	if files == nil {
		var err error
		files, err = parseDir(l.Fset, dir)
		if err != nil {
			return nil, err
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l, GoVersion: l.goVersion}
	tpkg, err := conf.Check(asPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", asPath, err)
	}
	pkg := &Package{Path: asPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info, Owners: l.owners}
	l.pkgs[asPath] = pkg
	// Collect ownership annotations while l.mu is held, so by the time
	// analysis reads the table every loaded package — dependencies
	// included — has contributed its annotations.
	l.owners.scanPackage(pkg)
	return pkg, nil
}

// LoadDirAs loads the single package in dir, checking it under the given
// import path. Fixture tests use this to place test sources in a
// deterministic package without moving them there.
func (l *Loader) LoadDirAs(dir, asPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.loadDir(abs, asPath, nil)
}

// Load expands package patterns relative to the current directory and
// loads them serially. Supported forms: "./...", "dir/...", "./dir",
// "dir". Directories named testdata or vendor, and hidden or
// underscore-prefixed directories, are skipped, as are directories with
// no non-test Go files.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	return l.LoadParallel(1, patterns...)
}

// target is one directory selected by pattern expansion.
type target struct {
	abs  string // absolute directory
	path string // import path it will be checked under
}

// expand resolves patterns to a deduplicated target list in a
// deterministic order (pattern order, then WalkDir's lexical directory
// order), independent of any worker count.
func (l *Loader) expand(patterns ...string) ([]target, error) {
	var targets []target
	seen := make(map[string]bool)
	add := func(dir string) error {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return err
		}
		path, err := l.importPathFor(abs)
		if err != nil {
			return err
		}
		if seen[path] {
			return nil
		}
		seen[path] = true
		targets = append(targets, target{abs: abs, path: path})
		return nil
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" {
			base = "."
		}
		if !recursive {
			if err := add(base); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if !hasGoFiles(p) {
				return nil
			}
			return add(p)
		})
		if err != nil {
			return nil, err
		}
	}
	return targets, nil
}

// LoadParallel expands the patterns, then loads the selected packages on
// the internal/sweep pool: each cell parses its package's files without
// holding the loader lock, then type-checks under it. Parsing fans out;
// type-checking is serialized because go/types and the shared source
// importer mutate unsynchronized caches. The returned slice is in
// expansion order (sweep collects in cell index order), so the result —
// and any output formatted from it — is identical at every worker count.
// workers <= 0 selects GOMAXPROCS.
func (l *Loader) LoadParallel(workers int, patterns ...string) ([]*Package, error) {
	targets, err := l.expand(patterns...)
	if err != nil {
		return nil, err
	}
	return sweep.Map(workers, targets, func(i int, t target) (*Package, error) {
		// Pre-parse lock-free. If another cell already type-checked this
		// package as a dependency, loadDir returns the cached Package and
		// the duplicate ASTs are dropped; positions are per-parse, so
		// either parse yields identical findings.
		files, err := parseDir(l.Fset, t.abs)
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.loadDir(t.abs, t.path, files)
	})
}

// importPathFor maps an absolute directory inside the module to its
// import path.
func (l *Loader) importPathFor(abs string) (string, error) {
	rel, err := filepath.Rel(l.root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", abs, l.module)
	}
	if rel == "." {
		return l.module, nil
	}
	return l.module + "/" + filepath.ToSlash(rel), nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
