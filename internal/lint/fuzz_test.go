package lint

import (
	"strings"
	"testing"
)

// FuzzParseDirectives shakes the shared //lint: directive grammar. The
// seeds replay the trailing-vs-standalone regression corpus from the
// suppression-scope work plus the ownership forms; the invariants keep
// the parser total and its outputs well-formed, since every consumer
// (suppression table, audit, ownership scan) trusts them blindly.
func FuzzParseDirectives(f *testing.F) {
	seeds := []string{
		"//lint:allow floateq sentinel",
		"//lint:allow floateq,errdrop multi",
		"//lint:allow floateq trailing: covers this line only",
		"//lint:allow floateq trailing on a header line: no node ends here",
		"//lint:ordered audited below",
		"//lint:ordered",
		"//lint:owner goroutine each goroutine owns its own stream",
		"//lint:owner sim-engine the event-loop goroutine owns all engine state",
		"//lint:handoff fix-broker reads the clock at a sync point",
		"//lint:allow",
		"//lint:allow ",
		"//lint:allow ,, ",
		"//lint:owner",
		"//lint:owner ",
		"//lint:handoff  leading space",
		"//lint:ordered2 prefix confusion",
		"//lint:allowx not allow",
		"// plain comment, not a directive",
		"//lint:",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		d := parseDirective(text)
		switch d.Kind {
		case "":
			if len(d.Names) != 0 || d.Domain != "" {
				t.Errorf("parseDirective(%q): zero kind with payload %+v", text, d)
			}
		case "allow":
			if len(d.Names) == 0 {
				t.Errorf("parseDirective(%q): allow with no names", text)
			}
			for _, n := range d.Names {
				if n == "" || strings.ContainsRune(n, ' ') {
					t.Errorf("parseDirective(%q): malformed name %q", text, n)
				}
			}
			if !strings.HasPrefix(text, "//lint:allow ") {
				t.Errorf("parseDirective(%q): allow from non-allow text", text)
			}
		case "ordered":
			if len(d.Names) != 1 || d.Names[0] != MapRange.Name {
				t.Errorf("parseDirective(%q): ordered must alias exactly maprange, got %v", text, d.Names)
			}
			if text != "//lint:ordered" && !strings.HasPrefix(text, "//lint:ordered ") {
				t.Errorf("parseDirective(%q): ordered from non-ordered text", text)
			}
		case "owner", "handoff":
			if d.Domain == "" || strings.ContainsRune(d.Domain, ' ') {
				t.Errorf("parseDirective(%q): malformed domain %q", text, d.Domain)
			}
			if len(d.Names) != 0 {
				t.Errorf("parseDirective(%q): ownership directive carries names %v", text, d.Names)
			}
			if !strings.HasPrefix(text, "//lint:"+d.Kind+" ") {
				t.Errorf("parseDirective(%q): %s from mismatched text", text, d.Kind)
			}
		default:
			t.Errorf("parseDirective(%q): unknown kind %q", text, d.Kind)
		}
	})
}
