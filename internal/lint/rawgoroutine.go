package lint

import (
	"go/ast"
)

// concurrencyPkgs are the only packages licensed to spawn goroutines:
// asim's broker/node protocol, the testbed built on top of it, sweep's
// bounded worker pool, and the serving layer (plus its daemon). The
// simulators confine concurrency behind a determinism fence (a
// conservative virtual clock, or sweep's index-ordered collection
// barrier) so runs stay reproducible; serve is a real server whose
// goroutines (watchdogged solves, HTTP handlers) are inherently
// concurrent but whose *decisions* stay seed-deterministic. A raw `go`
// statement anywhere else reintroduces scheduling nondeterminism (and
// data-race surface) outside those fences.
var concurrencyPkgs = map[string]bool{
	"econcast/internal/asim":    true,
	"econcast/internal/testbed": true,
	"econcast/internal/sweep":   true,
	"econcast/internal/serve":   true,
	"econcast/cmd/oracled":      true,
}

// RawGoroutine flags `go` statements outside the licensed concurrency
// packages.
var RawGoroutine = &Analyzer{
	Name: "rawgoroutine",
	Doc:  "goroutine spawned outside internal/asim, internal/testbed, and internal/sweep",
	Run: func(p *Pass) {
		if concurrencyPkgs[p.Path] {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					p.Reportf(g.Pos(), "goroutines are confined to internal/asim, internal/testbed, and internal/sweep; route concurrency through their fenced pools")
				}
				return true
			})
		}
	},
}
