package lint

import (
	"go/ast"
)

// concurrencyPkgs are the only packages licensed to spawn goroutines:
// asim's broker/node protocol and the testbed built on top of it. They
// confine concurrency behind a conservative virtual clock so runs stay
// reproducible; a raw `go` statement anywhere else reintroduces
// scheduling nondeterminism (and data-race surface) outside that fence.
var concurrencyPkgs = map[string]bool{
	"econcast/internal/asim":    true,
	"econcast/internal/testbed": true,
}

// RawGoroutine flags `go` statements outside the licensed concurrency
// packages.
var RawGoroutine = &Analyzer{
	Name: "rawgoroutine",
	Doc:  "goroutine spawned outside internal/asim and internal/testbed",
	Run: func(p *Pass) {
		if concurrencyPkgs[p.Path] {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					p.Reportf(g.Pos(), "goroutines are confined to internal/asim and internal/testbed; route concurrency through their broker protocol")
				}
				return true
			})
		}
	},
}
