package lint

import (
	"fmt"
	"testing"
)

// BenchmarkLoadCheckRepo measures the full econlint pipeline — pattern
// expansion, parallel parse, serialized type-check, and the analyzer
// sweep — over the whole module at the worker counts the CI gate runs
// with. Each iteration builds a fresh Loader so nothing is served from
// the package cache; the spread between worker counts shows how much of
// the wall-clock is the parallel parse/analyze fan-out versus the
// type-checking critical section.
func BenchmarkLoadCheckRepo(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				loader, err := NewLoader(".")
				if err != nil {
					b.Fatal(err)
				}
				pkgs, err := loader.LoadParallel(workers, loader.Root()+"/...")
				if err != nil {
					b.Fatal(err)
				}
				if _, err := CheckParallel(workers, pkgs, All()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
