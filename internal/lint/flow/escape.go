package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EscapeClass is the two-point escape lattice: a value either provably
// stays local to the analyzed region or may escape it. The analysis
// only ever moves a variable up the lattice (Local ⊑ Escapes), and each
// use is classified exactly once, so it terminates in a single walk.
type EscapeClass int

const (
	// Local: every use of the variable inside the region is a
	// non-aliasing read or write (indexing, length/capacity, self-append,
	// self-reslice, range, comparison). The value's backing store
	// cannot be reached from outside the region afterwards.
	Local EscapeClass = iota
	// Escapes: some use may publish the value beyond the region — it
	// is returned, passed to a call, stored into another variable or
	// structure, captured by a closure, sent on a channel, or has its
	// address taken.
	Escapes
)

// Escape is the classification of one variable within a region.
type Escape struct {
	Class EscapeClass
	// Reason describes the first escaping use (AST order), "" if Local.
	Reason string
	// Pos is the position of that use.
	Pos token.Pos
}

// EscapesRegion classifies how v is used within region (typically a
// loop body): Local if the region provably keeps v's value to itself,
// Escapes at the first use that may publish it. The analysis is
// syntactic and conservative: any use shape it does not recognize as
// safe counts as an escape.
func EscapesRegion(info *types.Info, region ast.Node, v *types.Var) Escape {
	res := Escape{Class: Local}
	// parents[n] is n's syntactic parent within region.
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(region, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	escape := func(pos token.Pos, reason string) {
		if res.Class == Escapes {
			return // first escaping use wins
		}
		res = Escape{Class: Escapes, Reason: reason, Pos: pos}
	}

	ast.Inspect(region, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if u, ok := info.Uses[id].(*types.Var); !ok || u != v {
			return true
		}
		classifyUse(info, parents, id, escape)
		return true
	})
	return res
}

// classifyUse decides whether one identifier use of the tracked
// variable is aliasing. The safe shapes are exactly the ones a reusable
// buffer needs: index reads/writes, len/cap/copy/delete/clear, ranging,
// comparisons, self-append, and self-reslice.
func classifyUse(info *types.Info, parents map[ast.Node]ast.Node, id *ast.Ident, escape func(token.Pos, string)) {
	// Closure capture: any enclosing FuncLit between the use and the
	// region root publishes the variable.
	for a := parents[id]; a != nil; a = parents[a] {
		if _, ok := a.(*ast.FuncLit); ok {
			escape(id.Pos(), "captured by a function literal")
			return
		}
	}

	parent := parents[id]
	switch p := parent.(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == id {
				return // write target: not a read of the value at all
			}
		}
		// RHS use: safe only when the value flows back into itself
		// (x = x[:0], x = append(x, ...)) — handled below via the
		// expression cases; a bare `y = x` aliases.
		escape(id.Pos(), "aliased by assignment")
	case *ast.IndexExpr:
		if p.X == id {
			// x[i]: reading or writing an element. &x[i] is the
			// aliasing shape, caught by the UnaryExpr parent of p.
			if u, ok := parents[p].(*ast.UnaryExpr); ok && u.Op == token.AND {
				escape(id.Pos(), "element address taken")
			}
			return
		}
		// x used as the index of another expression: a plain read.
	case *ast.SliceExpr:
		if p.X == id {
			// x[a:b] aliases unless assigned straight back to x.
			if as, ok := parents[p].(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 && as.Rhs[0] == p {
				if lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok && info.Uses[lhs] != nil && info.Uses[lhs] == info.Uses[id] {
					return // x = x[low:high]: reuse in place
				}
			}
			escape(id.Pos(), "resliced into another value")
			return
		}
	case *ast.CallExpr:
		if classifyCallUse(info, parents, p, id, escape) {
			return
		}
		escape(id.Pos(), "passed to a call")
	case *ast.RangeStmt:
		if p.X == id {
			return // ranging reads elements by copy
		}
		escape(id.Pos(), "used outside a recognized-safe shape")
	case *ast.BinaryExpr:
		// Comparisons and arithmetic read the header/value, no alias.
		return
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			escape(id.Pos(), "address taken")
			return
		}
	case *ast.ReturnStmt:
		escape(id.Pos(), "returned")
	case *ast.SendStmt:
		escape(id.Pos(), "sent on a channel")
	case *ast.KeyValueExpr, *ast.CompositeLit:
		escape(id.Pos(), "stored in a composite literal")
	case *ast.SelectorExpr:
		return // x.field / x.method: reads through the value
	case *ast.IncDecStmt, *ast.StarExpr, *ast.ParenExpr, *ast.ExprStmt, *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.CaseClause, *ast.TypeAssertExpr:
		return
	default:
		escape(id.Pos(), "used outside a recognized-safe shape")
	}
}

// classifyCallUse reports whether a call argument use of id is one of
// the safe builtin shapes: len/cap/copy/delete/clear, or append whose
// result is assigned straight back to the same variable.
func classifyCallUse(info *types.Info, parents map[ast.Node]ast.Node, call *ast.CallExpr, id *ast.Ident, escape func(token.Pos, string)) bool {
	fid, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	bi, ok := info.Uses[fid].(*types.Builtin)
	if !ok {
		return false
	}
	switch bi.Name() {
	case "len", "cap", "copy", "delete", "clear":
		return true
	case "append":
		if len(call.Args) > 0 && ast.Unparen(call.Args[0]) == id {
			// append(x, ...) is safe only as x = append(x, ...).
			if as, ok := parents[call].(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 && as.Rhs[0] == call {
				if lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok && info.Uses[lhs] != nil && info.Uses[lhs] == info.Uses[id] {
					return true
				}
			}
			escape(id.Pos(), "appended into another value")
			return true
		}
		// x as an appended element: the element value escapes into the
		// destination slice.
		escape(id.Pos(), "appended as an element")
		return true
	}
	return false
}
