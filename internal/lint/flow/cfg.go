// Package flow is econlint's intraprocedural dataflow framework: a
// control-flow graph over go/ast function bodies plus the classic
// analyses the suite's flow-sensitive analyzers are built on —
// dominators (shardflow's detach-before-drain proof), reaching
// definitions (path-sensitive seedflow, loop-invariance for hotalloc's
// hoist fix), liveness, and a small escape lattice (hotalloc's
// per-iteration allocation check).
//
// Like the rest of econlint, the package is standard library only. The
// graph is deliberately syntactic: basic blocks hold the statements (and
// branch conditions) of one straight-line run, function literals are
// opaque single nodes (their bodies get their own graphs when a caller
// needs them), and panics edge to the synthetic exit block. Everything
// is built by one deterministic AST walk, so analyzers layered on top
// keep the suite's byte-identical-output contract for free.
package flow

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal straight-line statement run.
type Block struct {
	// Index is the block's position in Graph.Blocks (creation order,
	// stable across runs).
	Index int

	// Nodes are the block's statements and branch conditions in
	// execution order. Conditions appear as their bare ast.Expr;
	// range statements appear once, in their loop-header block, where
	// their key/value variables are defined.
	Nodes []ast.Node

	// Succs and Preds are the control-flow edges. When Cond is non-nil
	// the block ends in a two-way branch and Succs[0] is the true edge,
	// Succs[1] the false edge.
	Succs []*Block
	Preds []*Block

	// Cond is the boolean branch condition the block ends with (if/for
	// headers), or nil for straight-line blocks and multi-way branches
	// (switch, select, range).
	Cond ast.Expr
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks holds every block in creation order; Blocks[0] is Entry.
	// Statically unreachable blocks (code after return) are included,
	// with no predecessors.
	Blocks []*Block

	Entry *Block
	// Exit is the synthetic sink: returns, panics, and the body's
	// fall-off end all edge here. It holds no nodes.
	Exit *Block

	// nodeAt locates each block node for position queries.
	nodeAt []placedNode
}

type placedNode struct {
	node  ast.Node
	block *Block
	index int // position in block.Nodes
}

// FindNode returns the innermost graph node whose source span contains
// pos, with its block and index. ok is false when pos lies outside every
// recorded node (e.g. a position inside a nested function literal whose
// enclosing statement was not recorded, or outside the body entirely).
func (g *Graph) FindNode(pos token.Pos) (b *Block, idx int, ok bool) {
	best := -1
	var span token.Pos
	for i, pn := range g.nodeAt {
		if pn.node.Pos() <= pos && pos < pn.node.End() {
			width := pn.node.End() - pn.node.Pos()
			if best < 0 || width < span {
				best, span = i, width
			}
		}
	}
	if best < 0 {
		return nil, 0, false
	}
	pn := g.nodeAt[best]
	return pn.block, pn.index, true
}

// Build constructs the control-flow graph of body. The builder handles
// the full statement grammar: if/else chains, all three for forms,
// range, switch with fallthrough, type switch, select, labeled
// break/continue, and goto. It never panics on type-checked input and
// tolerates ill-formed trees (unresolved labels simply produce no edge),
// which FuzzBuildCFG exercises on arbitrary parseable bodies.
func Build(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}, labels: make(map[string]*Block)}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.g.Exit)
	}
	// Resolve forward gotos now that every label has a block.
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, target)
		}
	}
	return b.g
}

// loopFrame is one enclosing breakable/continuable construct.
type loopFrame struct {
	label     string // enclosing label, "" if unlabeled
	breakT    *Block
	continueT *Block // nil for switch/select frames
	isLoop    bool   // continue targets loops only
	nextCase  *Block // fallthrough target: next case clause, switch frames only
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	g      *Graph
	cur    *Block // nil after a terminator until the next block starts
	frames []loopFrame
	labels map[string]*Block
	gotos  []pendingGoto
	// pendingLabel is the label of a LabeledStmt whose statement is
	// about to be built: the next loop/switch/select claims it for its
	// labeled break/continue.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// current returns the block under construction, starting a fresh
// (unreachable) one if the previous statement terminated control flow.
func (b *builder) current() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) add(n ast.Node) {
	blk := b.current()
	b.g.nodeAt = append(b.g.nodeAt, placedNode{n, blk, len(blk.Nodes)})
	blk.Nodes = append(blk.Nodes, n)
}

// takeLabel consumes the pending label for the construct being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		b.pendingLabel = ""
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.pendingLabel = ""
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.ReturnStmt:
		b.pendingLabel = ""
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.pendingLabel = ""
		b.branchStmt(s)
	case *ast.ExprStmt:
		b.pendingLabel = ""
		b.add(s)
		if isPanicCall(s.X) {
			b.edge(b.cur, b.g.Exit)
			b.cur = nil
		}
	default:
		// Assign, Decl, IncDec, Send, Go, Defer, Empty: straight-line.
		b.pendingLabel = ""
		b.add(s)
	}
}

// isPanicCall matches a direct call of the builtin panic. (A shadowed
// `panic` misclassifies; the analyzers built on the graph only use the
// edge conservatively.)
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	condBlk := b.current()
	b.add(s.Cond)
	condBlk.Cond = s.Cond

	thenBlk := b.newBlock()
	after := b.newBlock()
	b.edge(condBlk, thenBlk) // Succs[0]: true edge

	elseTarget := after
	if s.Else != nil {
		elseTarget = b.newBlock()
	}
	b.edge(condBlk, elseTarget) // Succs[1]: false edge

	b.cur = thenBlk
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, after)
	}

	if s.Else != nil {
		b.cur = elseTarget
		b.stmt(s.Else)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	header := b.newBlock()
	b.edge(b.current(), header)

	body := b.newBlock()
	after := b.newBlock()
	if s.Cond != nil {
		b.cur = header
		b.add(s.Cond)
		header.Cond = s.Cond
		b.edge(header, body)  // true
		b.edge(header, after) // false
	} else {
		b.edge(header, body)
	}

	continueT := header
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		continueT = post
	}

	b.frames = append(b.frames, loopFrame{label: label, breakT: after, continueT: continueT, isLoop: true})
	b.cur = body
	b.stmtList(s.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	if b.cur != nil {
		b.edge(b.cur, continueT)
	}
	if post != nil {
		b.cur = post
		b.stmt(s.Post)
		if b.cur != nil {
			b.edge(b.cur, header)
		}
	}
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	header := b.newBlock()
	b.edge(b.current(), header)
	// The range statement itself sits in the header: its key/value
	// variables are (re)defined there on every iteration, and its X is
	// evaluated there.
	b.cur = header
	b.add(s)

	body := b.newBlock()
	after := b.newBlock()
	b.edge(header, body)  // iterate
	b.edge(header, after) // exhausted

	b.frames = append(b.frames, loopFrame{label: label, breakT: after, continueT: header, isLoop: true})
	b.cur = body
	b.stmtList(s.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	if b.cur != nil {
		b.edge(b.cur, header)
	}
	b.cur = after
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	condBlk := b.current()
	if s.Tag != nil {
		b.add(s.Tag)
	}
	after := b.newBlock()

	clauses := make([]*Block, len(s.Body.List))
	hasDefault := false
	for i, cl := range s.Body.List {
		clauses[i] = b.newBlock()
		b.edge(condBlk, clauses[i])
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(condBlk, after)
	}

	for i, cl := range s.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		var ft *Block
		if i+1 < len(clauses) {
			ft = clauses[i+1]
		}
		b.frames = append(b.frames, loopFrame{label: label, breakT: after, nextCase: ft})
		b.cur = clauses[i]
		// The clause node carries the case expressions (uses, no defs);
		// its body statements follow as ordinary nodes.
		b.add(cc)
		b.stmtList(cc.Body)
		b.frames = b.frames[:len(b.frames)-1]
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.cur = after
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	condBlk := b.current()
	if s.Assign != nil {
		b.add(s.Assign)
	}
	after := b.newBlock()

	clauses := make([]*Block, len(s.Body.List))
	hasDefault := false
	for i, cl := range s.Body.List {
		clauses[i] = b.newBlock()
		b.edge(condBlk, clauses[i])
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(condBlk, after)
	}

	for i, cl := range s.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.frames = append(b.frames, loopFrame{label: label, breakT: after})
		b.cur = clauses[i]
		b.stmtList(cc.Body)
		b.frames = b.frames[:len(b.frames)-1]
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	condBlk := b.current()
	after := b.newBlock()

	if len(s.Body.List) == 0 {
		// `select {}` blocks forever; give it the exit edge so the
		// graph stays connected. The after block is unreachable.
		b.edge(condBlk, b.g.Exit)
		b.cur = after
		return
	}
	for _, cl := range s.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		clause := b.newBlock()
		b.edge(condBlk, clause)
		b.cur = clause
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.frames = append(b.frames, loopFrame{label: label, breakT: after})
		b.stmtList(cc.Body)
		b.frames = b.frames[:len(b.frames)-1]
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.cur = after
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	labelBlk := b.newBlock()
	b.edge(b.current(), labelBlk)
	b.labels[s.Label.Name] = labelBlk
	b.cur = labelBlk
	b.pendingLabel = s.Label.Name
	b.stmt(s.Stmt)
	b.pendingLabel = ""
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			fr := b.frames[i]
			if label == "" || fr.label == label {
				b.edge(b.cur, fr.breakT)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			fr := b.frames[i]
			if fr.isLoop && (label == "" || fr.label == label) {
				b.edge(b.cur, fr.continueT)
				break
			}
		}
	case token.GOTO:
		if label != "" {
			if target, ok := b.labels[label]; ok {
				b.edge(b.cur, target)
			} else {
				b.gotos = append(b.gotos, pendingGoto{b.cur, label})
			}
		}
	case token.FALLTHROUGH:
		for i := len(b.frames) - 1; i >= 0; i-- {
			if ft := b.frames[i].nextCase; ft != nil {
				b.edge(b.cur, ft)
				break
			}
		}
	}
	b.cur = nil
}
