package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// buildFunc parses and type-checks one function and returns its decl,
// graph, and type info. src is the function body (without braces).
func buildFunc(t *testing.T, decl string) (*ast.FuncDecl, *Graph, *types.Info, *token.FileSet) {
	t.Helper()
	src := "package p\n\n" + decl + "\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "flow_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	info := &types.Info{
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Error: func(error) {}}
	// Errors tolerated: some shape tests use undeclared labels etc.
	conf.Check("p", fset, []*ast.File{f}, info) //nolint:errcheck
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fd, Build(fd.Body), info, fset
		}
	}
	t.Fatalf("no function in:\n%s", src)
	return nil, nil, nil, nil
}

// blockOfLine finds the reachable block holding a node starting on the
// given source line.
func blockOfLine(t *testing.T, g *Graph, fset *token.FileSet, line int) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if fset.Position(n.Pos()).Line == line {
				return b
			}
		}
	}
	t.Fatalf("no block holds a node on line %d", line)
	return nil
}

// lineOf resolves a marker comment-free source line by substring.
func lineOf(t *testing.T, src, frag string) int {
	t.Helper()
	for i, l := range strings.Split(src, "\n") {
		if strings.Contains(l, frag) {
			return i + 1
		}
	}
	t.Fatalf("fragment %q not found", frag)
	return 0
}

func TestCFGStraightLine(t *testing.T) {
	_, g, _, _ := buildFunc(t, `func f() int {
	x := 1
	x = x + 1
	return x
}`)
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry has %d nodes, want 3", len(g.Entry.Nodes))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("entry should edge straight to exit")
	}
}

func TestCFGIfElse(t *testing.T) {
	decl := `func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`
	src := "package p\n\n" + decl + "\n"
	_, g, _, fset := buildFunc(t, decl)
	cond := blockOfLine(t, g, fset, lineOf(t, src, "if c"))
	if cond.Cond == nil || len(cond.Succs) != 2 {
		t.Fatalf("cond block: Cond=%v succs=%d, want a two-way branch", cond.Cond, len(cond.Succs))
	}
	thenB := blockOfLine(t, g, fset, lineOf(t, src, "x = 1"))
	elseB := blockOfLine(t, g, fset, lineOf(t, src, "x = 2"))
	if cond.Succs[0] != thenB || cond.Succs[1] != elseB {
		t.Fatalf("true edge should lead to then block, false edge to else block")
	}
	merge := blockOfLine(t, g, fset, lineOf(t, src, "return x"))
	dom := g.Dominators()
	if !dom.Dominates(cond, merge) {
		t.Errorf("cond must dominate the merge")
	}
	if dom.Dominates(thenB, merge) || dom.Dominates(elseB, merge) {
		t.Errorf("neither branch may dominate the merge")
	}
	if dom.Idom(merge) != cond {
		t.Errorf("merge's idom should be the cond block")
	}
}

func TestCFGForLoop(t *testing.T) {
	decl := `func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if s > 10 {
			break
		}
		s += i
	}
	return s
}`
	src := "package p\n\n" + decl + "\n"
	_, g, _, fset := buildFunc(t, decl)
	// The init statement shares the header's source line, so find the
	// header by its condition expression rather than by line.
	var header *Block
	for _, b := range g.Blocks {
		if b.Cond != nil && fset.Position(b.Cond.Pos()).Line == lineOf(t, src, "i < n") {
			header = b
			break
		}
	}
	if header == nil {
		t.Fatalf("no cond block on the loop-header line")
	}
	body := blockOfLine(t, g, fset, lineOf(t, src, "if s > 10"))
	ret := blockOfLine(t, g, fset, lineOf(t, src, "return s"))
	dom := g.Dominators()
	if !dom.Dominates(header, body) || !dom.Dominates(header, ret) {
		t.Errorf("loop header must dominate body and after")
	}
	if dom.Dominates(body, ret) {
		t.Errorf("loop body must not dominate the after block (break skips it... cond exit does)")
	}
	// The back edge: body (via the += block) reaches the header again.
	if !reaches(body, header) {
		t.Errorf("loop body must reach the header (back edge)")
	}
}

func TestCFGLabeledBreakAndGoto(t *testing.T) {
	decl := `func f(n int) int {
	s := 0
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if s > 9 {
				break outer
			}
			if s < 0 {
				goto done
			}
			s++
		}
	}
done:
	return s
}`
	src := "package p\n\n" + decl + "\n"
	_, g, _, fset := buildFunc(t, decl)
	inner := blockOfLine(t, g, fset, lineOf(t, src, "s++"))
	ret := blockOfLine(t, g, fset, lineOf(t, src, "return s"))
	brk := blockOfLine(t, g, fset, lineOf(t, src, "break outer"))
	gto := blockOfLine(t, g, fset, lineOf(t, src, "goto done"))
	if !reaches(brk, ret) {
		t.Errorf("break outer must reach the labeled-loop exit path")
	}
	if !reaches(gto, ret) {
		t.Errorf("goto done must reach the label's block")
	}
	if !reaches(inner, ret) {
		t.Errorf("fallthrough loop exit must reach the return")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	decl := `func f(x int) int {
	s := 0
	switch x {
	case 0:
		s = 1
		fallthrough
	case 1:
		s = 2
	default:
		s = 3
	}
	return s
}`
	src := "package p\n\n" + decl + "\n"
	_, g, _, fset := buildFunc(t, decl)
	c0 := blockOfLine(t, g, fset, lineOf(t, src, "s = 1"))
	c1 := blockOfLine(t, g, fset, lineOf(t, src, "s = 2"))
	if !reaches(c0, c1) {
		t.Errorf("fallthrough must edge case 0 into case 1")
	}
}

func TestCFGPanicEdgesToExit(t *testing.T) {
	decl := `func f(c bool) int {
	if c {
		panic("boom")
	}
	return 1
}`
	src := "package p\n\n" + decl + "\n"
	_, g, _, fset := buildFunc(t, decl)
	pb := blockOfLine(t, g, fset, lineOf(t, src, "panic"))
	if len(pb.Succs) != 1 || pb.Succs[0] != g.Exit {
		t.Errorf("panic block must edge only to exit, got %d succs", len(pb.Succs))
	}
}

func TestReachingBothBranchesKillEntryDef(t *testing.T) {
	decl := `func f(c bool, base uint64) uint64 {
	seed := base + 1
	if c {
		seed = base * 3
	} else {
		seed = base * 5
	}
	return seed
}`
	src := "package p\n\n" + decl + "\n"
	fd, g, info, fset := buildFunc(t, decl)
	r := Reaching(g, info, fd.Recv, fd.Type.Params, fd.Type.Results)
	v := findVar(t, info, "seed")
	retLine := lineOf(t, src, "return seed")
	defs, ok := r.DefsAt(v, posOnLine(t, g, fset, retLine))
	if !ok {
		t.Fatalf("seed should be analyzable")
	}
	lines := defLines(fset, defs)
	wantA, wantB := lineOf(t, src, "base * 3"), lineOf(t, src, "base * 5")
	dead := lineOf(t, src, "base + 1")
	if len(defs) != 2 || lines[0] != wantA || lines[1] != wantB {
		t.Fatalf("reaching defs at return = lines %v, want [%d %d] (the dead initial def on line %d must be killed)", lines, wantA, wantB, dead)
	}
}

func TestReachingOneBranchKeepsInitialDef(t *testing.T) {
	decl := `func f(c bool, base uint64) uint64 {
	seed := base + 1
	if c {
		seed = base * 3
	}
	return seed
}`
	src := "package p\n\n" + decl + "\n"
	fd, g, info, fset := buildFunc(t, decl)
	r := Reaching(g, info, fd.Recv, fd.Type.Params, fd.Type.Results)
	v := findVar(t, info, "seed")
	defs, ok := r.DefsAt(v, posOnLine(t, g, fset, lineOf(t, src, "return seed")))
	if !ok || len(defs) != 2 {
		t.Fatalf("want both the initial and the conditional def to reach, got %d (ok=%v)", len(defs), ok)
	}
}

func TestReachingParamEntryDef(t *testing.T) {
	decl := `func f(c bool, seed uint64) uint64 {
	if c {
		seed = 7
	}
	return seed
}`
	src := "package p\n\n" + decl + "\n"
	fd, g, info, fset := buildFunc(t, decl)
	r := Reaching(g, info, fd.Recv, fd.Type.Params, fd.Type.Results)
	v := findVar(t, info, "seed")
	defs, ok := r.DefsAt(v, posOnLine(t, g, fset, lineOf(t, src, "return seed")))
	if !ok || len(defs) != 2 {
		t.Fatalf("want entry def + conditional def, got %d (ok=%v)", len(defs), ok)
	}
	if defs[0].Node != nil {
		t.Errorf("first def should be the synthetic entry definition")
	}
}

func TestReachingAddressTakenBailsOut(t *testing.T) {
	decl := `func f() int {
	x := 1
	p := &x
	_ = p
	return x
}`
	src := "package p\n\n" + decl + "\n"
	fd, g, info, fset := buildFunc(t, decl)
	r := Reaching(g, info, fd.Recv, fd.Type.Params, fd.Type.Results)
	v := findVar(t, info, "x")
	if _, ok := r.DefsAt(v, posOnLine(t, g, fset, lineOf(t, src, "return x"))); ok {
		t.Fatalf("address-taken variable must be unanalyzable")
	}
}

func TestReachingClosureAssignBailsOut(t *testing.T) {
	decl := `func f() int {
	x := 1
	g := func() { x = 2 }
	g()
	return x
}`
	fd, g, info, _ := buildFunc(t, decl)
	r := Reaching(g, info, fd.Recv, fd.Type.Params, fd.Type.Results)
	v := findVar(t, info, "x")
	if r.Analyzable(v) {
		t.Fatalf("closure-assigned variable must be unanalyzable")
	}
}

func TestReachingLoopCarried(t *testing.T) {
	decl := `func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s = s + i
	}
	return s
}`
	src := "package p\n\n" + decl + "\n"
	fd, g, info, fset := buildFunc(t, decl)
	r := Reaching(g, info, fd.Recv, fd.Type.Params, fd.Type.Results)
	v := findVar(t, info, "s")
	// Inside the loop, both the initial def and the loop-carried def
	// reach the update's RHS.
	defs, ok := r.DefsAt(v, posOnLine(t, g, fset, lineOf(t, src, "s = s + i")))
	if !ok || len(defs) != 2 {
		t.Fatalf("loop-carried defs = %d (ok=%v), want 2", len(defs), ok)
	}
}

func TestLiveness(t *testing.T) {
	decl := `func f(n int) int {
	x := 1
	y := 2
	if n > 0 {
		return x
	}
	return y
}`
	src := "package p\n\n" + decl + "\n"
	_, g, info, fset := buildFunc(t, decl)
	l := Liveness(g, info)
	x := findVar(t, info, "x")
	y := findVar(t, info, "y")
	cond := blockOfLine(t, g, fset, lineOf(t, src, "x := 1"))
	if l.LiveIn(cond, x) {
		t.Errorf("x is defined before any use in its own block: not upward-exposed")
	}
	if !l.LiveOut(cond, x) || !l.LiveOut(cond, y) {
		t.Errorf("x and y must be live out of the defining block")
	}
	thenB := blockOfLine(t, g, fset, lineOf(t, src, "return x"))
	if l.LiveOut(thenB, x) || l.LiveOut(thenB, y) {
		t.Errorf("nothing is live after a return")
	}
	if !l.LiveIn(thenB, x) || l.LiveIn(thenB, y) {
		t.Errorf("return x block: x live in, y not; got x=%v y=%v", l.LiveIn(thenB, x), l.LiveIn(thenB, y))
	}
}

func TestEscapeLocalBuffer(t *testing.T) {
	decl := `func f(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		buf := make([]int, 0, 8)
		for j := 0; j < i; j++ {
			buf = append(buf, j)
		}
		buf = buf[:0]
		for _, v := range buf {
			total += v
		}
		total += len(buf)
		buf[0] = 1
	}
	return total
}`
	fd, _, info, _ := buildFunc(t, decl)
	v := findVar(t, info, "buf")
	loop := findLoop(t, fd)
	if esc := EscapesRegion(info, loop.Body, v); esc.Class != Local {
		t.Fatalf("buf should be Local, got Escapes: %s", esc.Reason)
	}
}

func TestEscapeShapes(t *testing.T) {
	cases := []struct {
		name, body, reason string
	}{
		{"returned", `return buf`, "returned"},
		{"call", `use(buf)`, "passed to a call"},
		{"alias", `other = buf`, "aliased by assignment"},
		{"append-into", `other = append(other, buf...)`, "appended as an element"},
		{"closure", `fn = func() int { return len(buf) }`, "captured by a function literal"},
		{"composite", `pair = [2][]int{buf, nil}`, "stored in a composite literal"},
		{"reslice-away", `other = buf[1:]`, "resliced into another value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			decl := `func f(n int) []int {
	var other []int
	var pair [2][]int
	var fn func() int
	_ = pair
	_ = fn
	for i := 0; i < n; i++ {
		buf := make([]int, 0, 8)
		` + tc.body + `
	}
	return other
}

func use([]int) {}`
			fd, _, info, _ := buildFunc(t, decl)
			v := findVar(t, info, "buf")
			loop := findLoop(t, fd)
			esc := EscapesRegion(info, loop.Body, v)
			if esc.Class != Escapes {
				t.Fatalf("%s: expected escape", tc.name)
			}
			if esc.Reason != tc.reason {
				t.Errorf("%s: reason = %q, want %q", tc.name, esc.Reason, tc.reason)
			}
		})
	}
}

// ---- helpers ----

func reaches(from, to *Block) bool {
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func findVar(t *testing.T, info *types.Info, name string) *types.Var {
	t.Helper()
	var found *types.Var
	for id, obj := range info.Defs {
		if id.Name == name {
			if v, ok := obj.(*types.Var); ok {
				if found != nil && found != v {
					t.Fatalf("variable %q is ambiguous in this fixture", name)
				}
				found = v
			}
		}
	}
	if found == nil {
		t.Fatalf("no variable %q", name)
	}
	return found
}

func findLoop(t *testing.T, fd *ast.FuncDecl) *ast.ForStmt {
	t.Helper()
	var loop *ast.ForStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if l, ok := n.(*ast.ForStmt); ok && loop == nil {
			loop = l
			return false
		}
		return true
	})
	if loop == nil {
		t.Fatalf("no for loop in fixture")
	}
	return loop
}

// posOnLine returns the position of the first graph node starting on
// the given line.
func posOnLine(t *testing.T, g *Graph, fset *token.FileSet, line int) token.Pos {
	t.Helper()
	b := blockOfLine(t, g, fset, line)
	for _, n := range b.Nodes {
		if fset.Position(n.Pos()).Line == line {
			return n.Pos()
		}
	}
	t.Fatalf("no node on line %d", line)
	return token.NoPos
}

func defLines(fset *token.FileSet, defs []Def) []int {
	lines := make([]int, len(defs))
	for i, d := range defs {
		if d.Node != nil {
			lines[i] = fset.Position(d.Node.Pos()).Line
		}
	}
	return lines
}
