package flow

// DomTree is the dominator tree of a Graph, computed by the
// Cooper–Harvey–Kennedy iterative algorithm ("A Simple, Fast Dominance
// Algorithm") over the reverse postorder of the reachable blocks.
//
// Termination: idom entries only move upward in the (finite) postorder
// ranking on each pass and the intersect walk strictly decreases its
// arguments' rankings, so the fixpoint is reached in at most
// O(blocks) passes — in practice two for the reducible graphs Go's
// structured statements produce.
type DomTree struct {
	idom map[*Block]*Block // immediate dominator; entry maps to itself
	po   map[*Block]int    // postorder number of each reachable block
}

// Dominators computes the dominator tree of g rooted at Entry.
// Unreachable blocks have no dominators (Dominates reports false for
// them against every other block).
func (g *Graph) Dominators() *DomTree {
	rpo := g.reversePostorder()
	d := &DomTree{
		idom: make(map[*Block]*Block, len(rpo)),
		po:   make(map[*Block]int, len(rpo)),
	}
	for i, b := range rpo {
		d.po[b] = len(rpo) - 1 - i
	}
	d.idom[g.Entry] = g.Entry

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == g.Entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if _, ok := d.idom[p]; !ok {
					continue // predecessor not yet processed (or unreachable)
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom != nil && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

// intersect walks the two blocks' dominator chains to their common
// ancestor (finger algorithm on postorder numbers).
func (d *DomTree) intersect(a, b *Block) *Block {
	for a != b {
		for d.po[a] < d.po[b] {
			a = d.idom[a]
		}
		for d.po[b] < d.po[a] {
			b = d.idom[b]
		}
	}
	return a
}

// Idom returns b's immediate dominator, or nil for the entry block and
// for unreachable blocks.
func (d *DomTree) Idom(b *Block) *Block {
	i, ok := d.idom[b]
	if !ok || i == b {
		return nil
	}
	return i
}

// Dominates reports whether a dominates b (reflexively: every block
// dominates itself). Unreachable blocks are dominated by nothing and
// dominate nothing but themselves.
func (d *DomTree) Dominates(a, b *Block) bool {
	if a == b {
		return true
	}
	for {
		i, ok := d.idom[b]
		if !ok || i == b {
			return false
		}
		if i == a {
			return true
		}
		b = i
	}
}

// reversePostorder returns the reachable blocks in reverse postorder of
// a depth-first walk from Entry following Succs in order. The walk is
// fully deterministic: edge order is creation order.
func (g *Graph) reversePostorder() []*Block {
	seen := make(map[*Block]bool, len(g.Blocks))
	var post []*Block
	var walk func(b *Block)
	walk = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				walk(s)
			}
		}
		post = append(post, b)
	}
	walk(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
