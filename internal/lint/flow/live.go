package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Live holds the liveness solution for one Graph: which variables may
// still be read on some path from each block boundary. It is the
// standard backward union fixpoint over upward-exposed uses; the
// in-sets grow monotonically within a finite lattice, so it terminates.
type Live struct {
	g    *Graph
	vars []*types.Var // variable universe, in first-appearance order
	idx  map[*types.Var]int
	in   []bitset // per block
	out  []bitset
}

// Liveness computes variable liveness over g. Uses inside nested
// function literals count as uses at the literal's site (a capture
// keeps the variable live), which over-approximates — the safe
// direction for every consumer in the suite.
func Liveness(g *Graph, info *types.Info) *Live {
	l := &Live{g: g, idx: make(map[*types.Var]int)}
	intern := func(v *types.Var) int {
		if i, ok := l.idx[v]; ok {
			return i
		}
		i := len(l.vars)
		l.vars = append(l.vars, v)
		l.idx[v] = i
		return i
	}

	// First pass: intern every variable so the bitset width is known.
	type blockSets struct{ use, def []int }
	events := make([]blockSets, len(g.Blocks))
	for _, b := range g.Blocks {
		var bs blockSets
		seenDef := make(map[*types.Var]bool)
		for _, n := range b.Nodes {
			// Uses first: an upward-exposed use is one not preceded by
			// a def of the same variable in this block. Within one
			// statement the RHS reads before the LHS writes.
			for _, v := range usesOfNode(info, n) {
				if !seenDef[v] {
					bs.use = append(bs.use, intern(v))
				}
			}
			for _, d := range defsOfNode(info, n) {
				seenDef[d.Obj] = true
				bs.def = append(bs.def, intern(d.Obj))
			}
		}
		events[b.Index] = bs
	}

	nbits := len(l.vars)
	use := make([]bitset, len(g.Blocks))
	def := make([]bitset, len(g.Blocks))
	l.in = make([]bitset, len(g.Blocks))
	l.out = make([]bitset, len(g.Blocks))
	for i := range use {
		use[i] = newBitset(nbits)
		def[i] = newBitset(nbits)
		l.in[i] = newBitset(nbits)
		l.out[i] = newBitset(nbits)
		for _, u := range events[i].use {
			use[i].set(u)
		}
		for _, d := range events[i].def {
			def[i].set(d)
		}
	}

	// Backward fixpoint in postorder (reverse of the RPO walk) for fast
	// convergence.
	rpo := g.reversePostorder()
	tmp := newBitset(nbits)
	for changed := true; changed; {
		changed = false
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			bi := b.Index
			l.out[bi].zero()
			for _, s := range b.Succs {
				l.out[bi].or(l.in[s.Index])
			}
			tmp.copyFrom(l.out[bi])
			tmp.andNot(def[bi])
			tmp.or(use[bi])
			if !tmp.equal(l.in[bi]) {
				l.in[bi].copyFrom(tmp)
				changed = true
			}
		}
	}
	return l
}

// LiveOut reports whether v may be read after b exits.
func (l *Live) LiveOut(b *Block, v *types.Var) bool {
	i, ok := l.idx[v]
	return ok && l.out[b.Index].get(i)
}

// LiveIn reports whether v may be read from b's entry onward.
func (l *Live) LiveIn(b *Block, v *types.Var) bool {
	i, ok := l.idx[v]
	return ok && l.in[b.Index].get(i)
}

// usesOfNode collects the variables read by one graph node, in source
// order. Identifiers on the left of plain assignments are writes, not
// reads; everything else that resolves to a variable counts, including
// captures inside nested function literals.
func usesOfNode(info *types.Info, n ast.Node) []*types.Var {
	writes := make(map[*ast.Ident]bool)
	switch n := n.(type) {
	case *ast.AssignStmt:
		// Plain `=`/`:=` writes its identifier targets without reading
		// them; `x op= y` reads x too, so it stays a use.
		if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					writes[id] = true
				}
			}
		}
	case *ast.RangeStmt:
		if id, ok := n.Key.(*ast.Ident); ok {
			writes[id] = true
		}
		if id, ok := n.Value.(*ast.Ident); ok {
			writes[id] = true
		}
	case *ast.CaseClause:
		// Recorded in switch headers for their case expressions only;
		// the body statements are separate graph nodes.
		var vs []*types.Var
		for _, e := range n.List {
			vs = append(vs, usesOfExpr(info, e)...)
		}
		return vs
	}
	var vs []*types.Var
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		if writes[id] {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok && !v.IsField() {
			vs = append(vs, v)
		}
		return true
	})
	return vs
}

func usesOfExpr(info *types.Info, e ast.Expr) []*types.Var {
	var vs []*types.Var
	ast.Inspect(e, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && !v.IsField() {
				vs = append(vs, v)
			}
		}
		return true
	})
	return vs
}
