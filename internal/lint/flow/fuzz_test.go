package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// FuzzBuildCFG shakes the CFG builder and the dominator computation on
// arbitrary parseable function bodies. The seeds replay the
// directive-grammar fuzz corpus (as comment/statement soup) plus
// synthesized control-flow shapes — labeled breaks, gotos into and out
// of nests, select inside licensed loops, fallthrough chains — and the
// invariants pin what every consumer trusts: Build never panics,
// Preds/Succs are mutually consistent, the entry dominates every
// reachable block, and each reachable block's immediate dominator is
// itself reachable and strictly dominates it.
func FuzzBuildCFG(f *testing.F) {
	seeds := []string{
		// The directive corpus, dropped into bodies as comments.
		"// //lint:allow floateq sentinel",
		"// //lint:allow floateq,errdrop multi",
		"// //lint:ordered audited below",
		"// //lint:owner sim-engine the event-loop goroutine owns all engine state",
		"// //lint:handoff fix-broker reads the clock at a sync point",
		"//lint:",
		"",
		// Straight line and branches.
		"x := 1\nx = x + 1\n_ = x",
		"if a {\n\tb()\n} else if c {\n\td()\n}",
		// Loops: all three for forms, range, nested with labels.
		"for {\n\tbreak\n}",
		"for i := 0; i < 10; i++ {\n\tcontinue\n}",
		"for cond() {\n\tif x() {\n\t\tbreak\n\t}\n}",
		"for k, v := range m {\n\t_ = k\n\t_ = v\n}",
		"outer:\nfor i := 0; i < 10; i++ {\n\tfor j := 0; j < 10; j++ {\n\t\tif j > i {\n\t\t\tbreak outer\n\t\t}\n\t\tcontinue outer\n\t}\n}",
		// Goto: forward, backward, into a label after a loop.
		"goto done\ndone:\n\treturn",
		"again:\n\tif cond() {\n\t\tgoto again\n\t}",
		"for {\n\tgoto out\n}\nout:\n\treturn",
		// Switch: tags, fallthrough chains, init statements.
		"switch x := f(); x {\ncase 1:\n\tfallthrough\ncase 2:\n\tg()\ndefault:\n\th()\n}",
		"switch {\ncase a:\n\tbreak\ncase b:\n}",
		"switch v := i.(type) {\ncase int:\n\t_ = v\ncase string:\ndefault:\n}",
		// Select inside a licensed loop, with breaks and sends.
		"for {\n\tselect {\n\tcase v := <-ch:\n\t\t_ = v\n\tcase ch2 <- 1:\n\t\tbreak\n\tdefault:\n\t\treturn\n\t}\n}",
		"loop:\nfor {\n\tselect {\n\tcase <-ch:\n\t\tbreak loop\n\t}\n}",
		"select {}",
		// Terminators and dead code.
		"panic(\"boom\")\nx := 1\n_ = x",
		"return\nfor {\n}",
		"defer f()\ngo g()\nch <- 1\nx++",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		src := "package p\nfunc fz() {\n" + body + "\n}\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fz.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Skip() // not parseable: out of scope
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g := Build(fd.Body) // must not panic
			checkGraph(t, g)
		}
	})
}

// checkGraph asserts the structural invariants of a built graph and its
// dominator tree.
func checkGraph(t *testing.T, g *Graph) {
	t.Helper()
	if g.Entry == nil || g.Exit == nil {
		t.Fatalf("graph missing entry/exit")
	}
	index := make(map[*Block]bool, len(g.Blocks))
	for i, b := range g.Blocks {
		if b.Index != i {
			t.Fatalf("block %d carries index %d", i, b.Index)
		}
		index[b] = true
	}
	count := func(list []*Block, b *Block) int {
		n := 0
		for _, x := range list {
			if x == b {
				n++
			}
		}
		return n
	}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if !index[s] {
				t.Fatalf("edge to a block outside the graph")
			}
			if count(s.Preds, b) < count(b.Succs, s) {
				t.Fatalf("succ edge %d->%d without matching pred edge", b.Index, s.Index)
			}
		}
		for _, p := range b.Preds {
			if count(p.Succs, b) < count(b.Preds, p) {
				t.Fatalf("pred edge %d<-%d without matching succ edge", b.Index, p.Index)
			}
		}
		if b.Cond != nil && len(b.Succs) != 2 {
			t.Fatalf("cond block %d has %d succs, want 2", b.Index, len(b.Succs))
		}
	}

	reachable := make(map[*Block]bool)
	var walk func(b *Block)
	walk = func(b *Block) {
		if reachable[b] {
			return
		}
		reachable[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)

	dom := g.Dominators()
	for _, b := range g.Blocks {
		if !reachable[b] {
			if dom.Idom(b) != nil {
				t.Fatalf("unreachable block %d has an idom", b.Index)
			}
			continue
		}
		if !dom.Dominates(g.Entry, b) {
			t.Fatalf("entry does not dominate reachable block %d", b.Index)
		}
		if b == g.Entry {
			continue
		}
		id := dom.Idom(b)
		if id == nil {
			t.Fatalf("reachable block %d has no idom", b.Index)
		}
		if !reachable[id] {
			t.Fatalf("idom of block %d is unreachable", b.Index)
		}
		if id == b || !dom.Dominates(id, b) {
			t.Fatalf("idom of block %d does not strictly dominate it", b.Index)
		}
		// The idom must dominate every predecessor-path: spot-check
		// that no predecessor is strictly dominated by b itself unless
		// it is a back edge (b dominates p means p is in b's loop).
		_ = id
	}
}
