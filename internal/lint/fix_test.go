package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyFixture copies the top-level .go files of testdata/src/<dir> into
// a fresh temp dir, so fixes can be applied without touching the checked-
// in fixtures.
func copyFixture(t *testing.T, dir string) string {
	t.Helper()
	src := filepath.Join("testdata", "src", dir)
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestFixRoundTrip pins the autofix contract for every fix-carrying
// analyzer: applying the suggested fixes to a fixture copy yields a
// package that still type-checks and re-lints clean. Rewrite fixes
// (ApproxEqual wrapping, channel directions) must resolve the finding
// outright; suppression stubs must parse as live directives even on
// lines that already carry a trailing comment.
func TestFixRoundTrip(t *testing.T) {
	cases := []struct {
		name     string
		dir      string
		as       string
		analyzer *Analyzer
		// wantFixed are substrings the rewritten sources must contain —
		// the rewrite fixes, as opposed to suppression fallbacks.
		wantFixed []string
	}{
		{"floateq", "floateq", "econcast/internal/lp", FloatEq,
			[]string{"stats.ApproxEqual(a, b, 1e-9)", "!stats.ApproxEqual(xs[0], xs[1], 1e-9)"}},
		{"chandir", "chandir", "econcast/internal/asim", ChanDir,
			[]string{"c chan<- message", "<-chan message"}},
		{"unitflow", "unitflow", "econcast/internal/sim", UnitFlow, nil},
		{"shardown", "shardown", "econcast/internal/asim", ShardOwn, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tmp := copyFixture(t, tc.dir)
			loader, err := NewLoader(".")
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := loader.LoadDirAs(tmp, tc.as)
			if err != nil {
				t.Fatal(err)
			}
			findings := Check([]*Package{pkg}, []*Analyzer{tc.analyzer})
			if len(findings) == 0 {
				t.Fatal("fixture produced no findings")
			}
			for _, f := range findings {
				if len(f.Fixes) == 0 {
					t.Errorf("finding carries no fix: %s", f)
				}
			}
			plan, err := PlanFixes(findings)
			if err != nil {
				t.Fatal(err)
			}
			if plan.Applied != len(findings) || plan.Skipped != 0 {
				t.Errorf("planned %d/%d fixes (%d skipped), want all", plan.Applied, len(findings), plan.Skipped)
			}
			if err := plan.WriteFixes(); err != nil {
				t.Fatal(err)
			}

			var all strings.Builder
			for _, data := range plan.Contents {
				all.Write(data)
			}
			for _, want := range tc.wantFixed {
				if !strings.Contains(all.String(), want) {
					t.Errorf("rewritten sources missing %q", want)
				}
			}

			// Fresh loader: the fixed package must type-check and re-lint
			// clean. A wrong rewrite (bad channel direction, broken call)
			// fails here as a type error.
			reload, err := NewLoader(".")
			if err != nil {
				t.Fatal(err)
			}
			fixed, err := reload.LoadDirAs(tmp, tc.as)
			if err != nil {
				t.Fatalf("fixed fixture no longer type-checks: %v", err)
			}
			for _, f := range Check([]*Package{fixed}, []*Analyzer{tc.analyzer}) {
				t.Errorf("finding survives -fix: %s", f)
			}
		})
	}
}

// TestPlanFixesOverlap pins conflict resolution: when two fixes want the
// same bytes, the first finding in sorted order wins and the loser is
// counted, not silently dropped.
func TestPlanFixesOverlap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.txt")
	if err := os.WriteFile(path, []byte("abcdef\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	findings := []Finding{
		{Fixes: []Fix{{Edits: []TextEdit{{File: path, Start: 1, End: 3, New: "BC"}}}}},
		{Fixes: []Fix{{Edits: []TextEdit{{File: path, Start: 2, End: 4, New: "XX"}}}}},
		{Fixes: []Fix{{Edits: []TextEdit{{File: path, Start: 4, End: 5, New: "E"}}}}},
	}
	plan, err := PlanFixes(findings)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Applied != 2 || plan.Skipped != 1 {
		t.Fatalf("Applied=%d Skipped=%d, want 2/1", plan.Applied, plan.Skipped)
	}
	if got := string(plan.Contents[path]); got != "aBCdEf\n" {
		t.Fatalf("contents = %q, want %q", got, "aBCdEf\n")
	}
}

// TestPlanFixesInsertConflict pins that two insertions at the same
// offset conflict (their order would be ambiguous) while insertions at
// different offsets compose.
func TestPlanFixesInsertConflict(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.txt")
	if err := os.WriteFile(path, []byte("ab\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	findings := []Finding{
		{Fixes: []Fix{{Edits: []TextEdit{{File: path, Start: 1, End: 1, New: "X"}}}}},
		{Fixes: []Fix{{Edits: []TextEdit{{File: path, Start: 1, End: 1, New: "Y"}}}}},
		{Fixes: []Fix{{Edits: []TextEdit{{File: path, Start: 2, End: 2, New: "Z"}}}}},
	}
	plan, err := PlanFixes(findings)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Applied != 2 || plan.Skipped != 1 {
		t.Fatalf("Applied=%d Skipped=%d, want 2/1", plan.Applied, plan.Skipped)
	}
	if got := string(plan.Contents[path]); got != "aXbZ\n" {
		t.Fatalf("contents = %q, want %q", got, "aXbZ\n")
	}
}

// TestUnifiedDiff pins the diff shape: correct hunk headers, context
// capping, and the empty string for identical inputs.
func TestUnifiedDiff(t *testing.T) {
	old := []byte("a\nb\nc\nd\ne\nf\ng\n")
	new := []byte("a\nb\nc\nD\ne\nf\ng\n")
	got := UnifiedDiff("x.go", old, new)
	want := "--- x.go\n+++ x.go\n@@ -1,7 +1,7 @@\n a\n b\n c\n-d\n+D\n e\n f\n g\n"
	if got != want {
		t.Errorf("UnifiedDiff =\n%q\nwant\n%q", got, want)
	}
	if d := UnifiedDiff("x.go", old, old); d != "" {
		t.Errorf("identical inputs produced a diff:\n%s", d)
	}
}

// TestHoistFix pins hotalloc's mechanical hoist rewrite: the one
// hoistable make in the flow fixture moves above its loop and the
// in-loop statement becomes a reslice, and the rewritten package still
// type-checks. (The hoisted make itself stays a hot-path finding — the
// fix removes the per-iteration allocation, not the per-call one — so
// this is not a round-trip-clean case.)
func TestHoistFix(t *testing.T) {
	tmp := copyFixture(t, filepath.Join("hotalloc", "flow"))
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDirAs(tmp, "econcast/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	var withFix []Finding
	for _, f := range Check([]*Package{pkg}, []*Analyzer{HotAlloc}) {
		if len(f.Fixes) > 0 {
			withFix = append(withFix, f)
		}
	}
	if len(withFix) != 1 {
		t.Fatalf("want exactly one fix-carrying finding, got %d: %v", len(withFix), withFix)
	}
	plan, err := PlanFixes(withFix)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Applied != 1 || plan.Skipped != 0 {
		t.Fatalf("planned %d applied / %d skipped, want 1/0", plan.Applied, plan.Skipped)
	}
	if err := plan.WriteFixes(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(tmp, "flow.go"))
	if err != nil {
		t.Fatal(err)
	}
	src := string(data)
	hoisted := "scratch := make([]byte, 0, 64)\n\tfor i := 0; i < n; i++ {\n\t\tscratch = scratch[:0]"
	if !strings.Contains(src, hoisted) {
		t.Errorf("rewritten source missing hoisted shape:\n%s", src)
	}
	reload, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reload.LoadDirAs(tmp, "econcast/internal/sim"); err != nil {
		t.Fatalf("hoisted fixture no longer type-checks: %v", err)
	}
}
