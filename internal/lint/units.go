package lint

import (
	"fmt"
	"sort"
	"strings"
)

// Dim is a physical dimension as a vector of base-unit exponents:
// energy (Joules), time (seconds), simulator multiplier intervals
// (ticks), and packets. Derived units are exponent combinations —
// W = J·s⁻¹, 1/W = J⁻¹·s, pkt/s = pkt·s⁻¹. The zero Dim is
// dimensionless and is never stored in the registry; dimensionless
// quantities are tracked as scalars by the unitflow lattice instead.
type Dim struct {
	J    int8
	S    int8
	Tick int8
	Pkt  int8
}

// Mul returns the dimension of a product.
func (d Dim) Mul(o Dim) Dim {
	return Dim{d.J + o.J, d.S + o.S, d.Tick + o.Tick, d.Pkt + o.Pkt}
}

// Div returns the dimension of a quotient.
func (d Dim) Div(o Dim) Dim {
	return Dim{d.J - o.J, d.S - o.S, d.Tick - o.Tick, d.Pkt - o.Pkt}
}

// IsZero reports whether d is dimensionless.
func (d Dim) IsZero() bool { return d == Dim{} }

// dimNames maps common derived dimensions back to their registry
// spelling so findings read "W", not "J/s".
var dimNames = map[Dim]string{
	{J: 1}:          "J",
	{S: 1}:          "s",
	{Tick: 1}:       "tick",
	{Pkt: 1}:        "pkt",
	{J: 1, S: -1}:   "W",
	{J: -1, S: 1}:   "1/W",
	{Pkt: 1, S: -1}: "pkt/s",
}

// String renders d in registry notation: named derived units where
// known, otherwise a·b/c·d form with ^n exponents.
func (d Dim) String() string {
	if name, ok := dimNames[d]; ok {
		return name
	}
	if d.IsZero() {
		return "1"
	}
	bases := []struct {
		name string
		exp  int8
	}{{"J", d.J}, {"s", d.S}, {"tick", d.Tick}, {"pkt", d.Pkt}}
	var num, den []string
	for _, b := range bases {
		switch {
		case b.exp > 0:
			num = append(num, expTok(b.name, b.exp))
		case b.exp < 0:
			den = append(den, expTok(b.name, -b.exp))
		}
	}
	if len(num) == 0 {
		num = []string{"1"}
	}
	s := strings.Join(num, "·")
	if len(den) > 0 {
		s += "/" + strings.Join(den, "·")
	}
	return s
}

func expTok(name string, exp int8) string {
	if exp == 1 {
		return name
	}
	return fmt.Sprintf("%s^%d", name, exp)
}

// baseDims are the tokens parseDim accepts.
var baseDims = map[string]Dim{
	"J":    {J: 1},
	"s":    {S: 1},
	"tick": {Tick: 1},
	"pkt":  {Pkt: 1},
	"W":    {J: 1, S: -1},
}

// parseDim parses registry notation: base or named tokens joined by
// "·" or "*", with at most one "/" separating numerator from
// denominator ("W", "1/W", "pkt/s", "J·s").
func parseDim(s string) (Dim, error) {
	var d Dim
	num, den, _ := strings.Cut(s, "/")
	parse := func(part string, sign int8) error {
		for _, tok := range strings.FieldsFunc(part, func(r rune) bool { return r == '·' || r == '*' }) {
			tok = strings.TrimSpace(tok)
			if tok == "1" || tok == "" {
				continue
			}
			b, ok := baseDims[tok]
			if !ok {
				return fmt.Errorf("lint: unknown dimension token %q in %q", tok, s)
			}
			d = d.Mul(Dim{b.J * sign, b.S * sign, b.Tick * sign, b.Pkt * sign})
		}
		return nil
	}
	if err := parse(num, 1); err != nil {
		return d, err
	}
	if err := parse(den, -1); err != nil {
		return d, err
	}
	if d.IsZero() {
		return d, fmt.Errorf("lint: dimensionless registry entry %q", s)
	}
	return d, nil
}

// unitRegistry is the declarative seed of the unitflow analyzer: the
// physically-typed declarations of the model and its substrates, keyed
//
//	pkgpath.Name             package-level const or var
//	pkgpath.Type.Field       struct field (slices apply elementwise)
//	pkgpath.Func.param       function parameter, by name
//	pkgpath.Func.result      (sole) function result
//	pkgpath.Recv.Method.*    likewise for methods
//
// Everything not registered is unknown, and unknown never flags:
// unitflow only reports when two *known, different* dimensions meet.
// Dimensionless scale factors (sigma, delta, alpha/beta fractions,
// drift) are deliberately absent — scalars combine freely.
var unitRegistry = map[string]string{
	// model: per-node hardware parameters (paper §II: rho_i, L_i, X_i).
	"econcast/internal/model.Watt":                    "W",
	"econcast/internal/model.MilliWatt":               "W",
	"econcast/internal/model.MicroWatt":               "W",
	"econcast/internal/model.Node.Budget":             "W",
	"econcast/internal/model.Node.ListenPower":        "W",
	"econcast/internal/model.Node.TransmitPower":      "W",
	"econcast/internal/model.Node.Power.result":       "W",
	"econcast/internal/model.Homogeneous.rho":         "W",
	"econcast/internal/model.Homogeneous.listen":      "W",
	"econcast/internal/model.Homogeneous.transmit":    "W",
	"econcast/internal/model.NetState.Throughput.result": "pkt/s",

	// sim: wall-clock quantities are seconds; multiplier intervals are
	// ticks and must cross through Protocol.TicksToSeconds /
	// SecondsToTicks.
	"econcast/internal/sim.Protocol.Tau":                    "s",
	"econcast/internal/sim.Protocol.PacketTime":             "s",
	"econcast/internal/sim.Protocol.TicksToSeconds.ticks":   "tick",
	"econcast/internal/sim.Protocol.TicksToSeconds.result":  "s",
	"econcast/internal/sim.Protocol.SecondsToTicks.t":       "s",
	"econcast/internal/sim.Protocol.SecondsToTicks.result":  "tick",
	"econcast/internal/sim.Config.Duration":                 "s",
	"econcast/internal/sim.Config.Warmup":                   "s",
	"econcast/internal/sim.Config.InitialBattery":           "J",
	"econcast/internal/sim.Config.WarmEta":                  "1/W",
	"econcast/internal/sim.Metrics.Window":                  "s",
	"econcast/internal/sim.Metrics.Power":                   "W",
	"econcast/internal/sim.Metrics.EtaFinal":                "1/W",
	"econcast/internal/sim.Metrics.Battery":                 "J",
	"econcast/internal/sim.Metrics.PacketsSent":             "pkt",
	"econcast/internal/sim.Metrics.PacketsDelivered":        "pkt",
	"econcast/internal/sim.Metrics.PacketsAnyDeliver":       "pkt",
	"econcast/internal/sim.Metrics.CollidedReceptions":      "pkt",
	"econcast/internal/sim.Metrics.LostReceptions":          "pkt",
	"econcast/internal/sim.event.at":                        "s",
	"econcast/internal/sim.nodeState.lastUpdate":            "s",
	"econcast/internal/sim.nodeState.lastBurstEnd":          "s",
	"econcast/internal/sim.engine.now":                      "s",
	"econcast/internal/sim.engine.tau":                      "s",
	"econcast/internal/sim.engine.packetTime":               "s",
	"econcast/internal/sim.engine.occLast":                  "s",
	"econcast/internal/sim.engine.accrueOccupancy.until":    "s",
	"econcast/internal/sim.engine.active.t":                 "s",
	"econcast/internal/sim.engine.handleTick.tau":           "s",

	// statespace: analytical counterparts of the sim outputs.
	"econcast/internal/statespace.P4Result.Throughput":          "pkt/s",
	"econcast/internal/statespace.P4Result.Eta":                 "1/W",
	"econcast/internal/statespace.P4Result.Consumption":         "W",
	"econcast/internal/statespace.Dist.PowerConsumption.result": "W",

	// oracle: upper-bound solutions, in the same normalized units.
	"econcast/internal/oracle.Solution.Throughput": "pkt/s",

	// faults: every schedule boundary and dwell time is in simulated
	// seconds.
	"econcast/internal/faults.Crash.KillAt":            "s",
	"econcast/internal/faults.Crash.MeanUp":            "s",
	"econcast/internal/faults.Crash.MeanDown":          "s",
	"econcast/internal/faults.Loss.MeanGood":           "s",
	"econcast/internal/faults.Loss.MeanBad":            "s",
	"econcast/internal/faults.Brownout.MeanEvery":      "s",
	"econcast/internal/faults.Brownout.MeanFor":        "s",
	"econcast/internal/faults.Silence.MeanEvery":       "s",
	"econcast/internal/faults.Silence.MeanFor":         "s",
	"econcast/internal/faults.Event.At":                "s",
	"econcast/internal/faults.Compile.horizon":         "s",
	"econcast/internal/faults.Set.Alive.t":             "s",
	"econcast/internal/faults.Set.Silenced.t":          "s",
	"econcast/internal/faults.Set.HarvestScale.t":      "s",
	"econcast/internal/faults.Set.DropRx.t":            "s",
	"econcast/internal/faults.Set.FirstCrash.result":   "s",
	"econcast/internal/faults.NodeView.CrashAt":        "s",
	"econcast/internal/faults.NodeView.HarvestScale.t": "s",
	"econcast/internal/faults.recurring.every":         "s",
	"econcast/internal/faults.recurring.dur":           "s",
	"econcast/internal/faults.recurring.horizon":       "s",
	"econcast/internal/faults.alternating.up":          "s",
	"econcast/internal/faults.alternating.down":        "s",
	"econcast/internal/faults.alternating.horizon":     "s",
	"econcast/internal/faults.inWindows.t":             "s",
	"econcast/internal/faults.densityOK.every":         "s",
	"econcast/internal/faults.densityOK.dur":           "s",
	"econcast/internal/faults.densityOK.horizon":       "s",
}

// parsedUnits is unitRegistry with the dimension strings parsed once.
var parsedUnits = func() map[string]Dim {
	m := make(map[string]Dim, len(unitRegistry))
	keys := make([]string, 0, len(unitRegistry))
	for k := range unitRegistry {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		d, err := parseDim(unitRegistry[k])
		if err != nil {
			panic(err)
		}
		m[k] = d
	}
	return m
}()
