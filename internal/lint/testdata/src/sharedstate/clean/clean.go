// Package clean holds the sanctioned goroutine handoff patterns for the
// sharedstate analyzer: a per-goroutine stream split from a master, a
// fresh constructor call per crossing struct, and a full ownership
// transfer whose only use is inside the one goroutine. Loaded under the
// same package path as the violating fixture, nothing may be reported.
package clean

import (
	"econcast/internal/faults"
	"econcast/internal/rng"
	"econcast/internal/stats"
)

type worker struct {
	src *rng.Source
	acc *stats.Accumulator
}

func (w *worker) run() { _ = w.src.Uint64() }

// fanOut derives one independent stream per goroutine from the master:
// the master stays on the launching side, the children cross.
func fanOut(n int, seed uint64) {
	master := rng.New(seed)
	for i := 0; i < n; i++ {
		w := &worker{src: master.Split(), acc: &stats.Accumulator{}}
		go w.run()
	}
}

// perIteration declares the stream inside the loop: fresh per goroutine.
func perIteration(n int, seed uint64) {
	for i := 0; i < n; i++ {
		src := rng.New(rng.DeriveSeed(seed, uint64(i)))
		w := &worker{src: src}
		go w.run()
	}
}

// handoff transfers ownership: the launching side never touches the
// stream again.
func handoff(seed uint64) {
	src := rng.New(seed)
	go func() { _ = src.Uint64() }()
}

// viewHandoff projects a fault schedule into per-node values: each
// goroutine receives its own NodeView copy while the mutable Set stays
// with the launcher.
func viewHandoff(flt *faults.Set) {
	for i := 0; i < 4; i++ {
		v := flt.View(i)
		go func() { _ = v.HarvestScale(0) }()
	}
}
