// Package fixture exercises the sharedstate analyzer: determinism-
// critical pointers (*rng.Source, *stats.Accumulator, ...) may not be
// shared across goroutines, neither by closure capture nor by fanning
// one value into several goroutine-crossing structs. The clean fixture
// (./clean) shows the sanctioned handoff patterns silent under the same
// package path.
package fixture

import (
	"econcast/internal/faults"
	"econcast/internal/rng"
	"econcast/internal/stats"
)

// worker is goroutine-crossing: the package launches its run method.
type worker struct {
	src *rng.Source
	acc *stats.Accumulator
}

func (w *worker) run() { _ = w.src.Uint64() }

// fanOutShared stores ONE stream into every worker: all goroutines would
// consume from it and the draw order becomes scheduling-dependent.
func fanOutShared(n int, seed uint64) {
	src := rng.New(seed)
	for i := 0; i < n; i++ {
		w := &worker{src: src} // want sharedstate
		go w.run()
	}
}

// fanOutParam is the same bug with the stream arriving as a parameter.
func fanOutParam(n int, src *rng.Source) {
	for i := 0; i < n; i++ {
		w := &worker{}
		w.src = src // want sharedstate
		go w.run()
	}
}

// captureAndUse hands the stream to a goroutine and keeps drawing from
// it on the launching side.
func captureAndUse(seed uint64) uint64 {
	src := rng.New(seed)
	go func() { _ = src.Uint64() }() // want sharedstate
	return src.Uint64()
}

// captureTwice shares one accumulator between two goroutine closures.
func captureTwice(acc *stats.Accumulator) {
	go func() { acc.Add(1) }() // want sharedstate
	go func() { acc.Add(2) }() // want sharedstate
}

// passAndUse shares via an explicit argument rather than a capture.
func passAndUse(seed uint64) uint64 {
	src := rng.New(seed)
	go consume(src) // want sharedstate
	return src.Uint64()
}

func consume(src *rng.Source) { _ = src.Uint64() }

// shareFaultSchedule hands one compiled fault schedule to two node
// goroutines: its per-receiver loss streams advance on DropRx, so the
// draw order would become scheduling-dependent. Goroutines take a
// faults.NodeView value instead (see ./clean).
func shareFaultSchedule(flt *faults.Set) {
	go func() { flt.DropRx(0, 0) }()    // want sharedstate
	go func() { _ = flt.Alive(0, 0) }() // want sharedstate
}
