// Package fixture exercises the hotalloc roots added for the simplex:
// loaded as econcast/internal/lp, everything statically reachable from
// (*tableau).iterate or (*tableau).pivot runs once per pivot and may not
// allocate; tableau construction in solve is cold and unconstrained.
package fixture

type tableau struct {
	rows [][]float64
	obj  []float64
	work []int
}

// iterate is a hot entry: it prices and pivots until optimal.
func (t *tableau) iterate() bool {
	cols := make([]int, len(t.obj)) // want hotalloc
	_ = cols
	t.pivot(0, 0)
	return false
}

// pivot is itself a hot entry, and eliminate is hot transitively.
func (t *tableau) pivot(row, col int) {
	t.work = append(t.work, col) // want hotalloc
	t.eliminate(row)
}

func (t *tableau) eliminate(row int) {
	scratch := make([]float64, len(t.rows[row])) // want hotalloc
	copy(scratch, t.rows[row])
	t.grow()
}

// grow shows the audited amortized escape hatch inside the pivot tree.
func (t *tableau) grow() {
	t.work = append(t.work, 0) //lint:allow hotalloc amortized high-water growth, audited
}

// solve is cold: the entries are iterate/pivot themselves, not their
// callers, so building the tableau may allocate freely.
func solve(m, n int) *tableau {
	t := &tableau{obj: make([]float64, n)}
	for i := 0; i < m; i++ {
		t.rows = append(t.rows, make([]float64, n))
	}
	for t.iterate() {
	}
	return t
}
