// Package fixture exercises the hotalloc roots added for the fault
// layer: loaded as econcast/internal/faults, everything statically
// reachable from the Set query methods (Alive, Silenced, HarvestScale,
// DropRx, Drift) runs once per simulator event when fault injection is
// on and may not allocate; Compile-time schedule materialization is
// cold.
package fixture

type Set struct {
	down   [][]float64
	silent [][]float64
	brown  [][]float64
	drift  []float64
	scale  float64
	hits   []int
}

// Alive is a hot query entry point.
func (s *Set) Alive(i int, t float64) bool {
	w := append([]float64(nil), s.down[i]...) // want hotalloc
	return !inside(w, t)
}

// Silenced is hot and clean.
func (s *Set) Silenced(i int, t float64) bool {
	return inside(s.silent[i], t)
}

// HarvestScale is hot transitively through inside.
func (s *Set) HarvestScale(i int, t float64) float64 {
	if inside(s.brown[i], t) {
		return s.scale
	}
	return 1
}

// DropRx shows the audited escape hatch for an amortized buffer.
func (s *Set) DropRx(rx int, t float64) bool {
	s.hits = append(s.hits, rx) //lint:allow hotalloc amortized trace buffer, reused across runs
	return false
}

// Drift is hot and clean.
func (s *Set) Drift(i int) float64 { return s.drift[i] }

// inside is hot transitively through every window query.
func inside(w []float64, t float64) bool {
	seen := map[float64]bool{} // want hotalloc
	_ = seen
	for k := 0; k+1 < len(w); k += 2 {
		if t >= w[k] && t < w[k+1] {
			return true
		}
	}
	return false
}

// Compile is cold: not reachable from the queries, so materializing the
// schedules may allocate freely.
func Compile(n int) *Set {
	return &Set{
		down:  make([][]float64, n),
		drift: make([]float64, n),
	}
}
