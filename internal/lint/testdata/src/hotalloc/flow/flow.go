// Package fixture exercises hotalloc's flow-sensitive findings: the
// hoistable loop-invariant make, the capturing-closure and
// interface-boxing blind spots, and the shapes each one must NOT flag
// (non-capturing literals, spread calls, panic arguments, escaping or
// loop-variant makes keep the plain diagnostic).
package fixture

type engine struct {
	queue []int
	sink  [][]byte
	cap   int
}

func sprintf(format string, args ...any) string { _ = args; return format }

func consume(bs []byte) int { return len(bs) }

// run is the hot entry point; every method below is reachable from it.
func (e *engine) run() {
	e.step(4)
	e.variant(4)
	e.escapes(4)
	e.closures(4)
	e.boxing(4, nil)
}

// step holds the hoistable shape: scratch's arguments are defined
// outside the loop and the buffer never leaves its iteration (it is
// only self-appended, ranged, and indexed), so the make can be hoisted
// and the buffer reused.
func (e *engine) step(n int) {
	for i := 0; i < n; i++ {
		scratch := make([]byte, 0, 64) // want hotalloc
		scratch = append(scratch, byte(i)) // want hotalloc
		for j := range scratch {
			e.queue[0] += int(scratch[j])
		}
	}
}

// variant's make argument is redefined inside the loop, so the
// allocation is not loop-invariant and keeps the plain diagnostic.
func (e *engine) variant(n int) {
	size := 8
	for i := 0; i < n; i++ {
		size = i
		buf := make([]byte, 0, size) // want hotalloc
		_ = consume(buf)
	}
}

// escapes appends the buffer into an accumulator that outlives the
// iteration: reusing one buffer would alias every element, so only the
// plain diagnostic applies.
func (e *engine) escapes(n int) {
	for i := 0; i < n; i++ {
		buf := make([]byte, 0, 8) // want hotalloc
		buf = append(buf, byte(i)) // want hotalloc
		e.sink = append(e.sink, buf) // want hotalloc
	}
}

// closures: a literal capturing locals allocates per event; one that
// touches nothing outside itself compiles to a static function.
func (e *engine) closures(n int) {
	f := func() int { return n } // want hotalloc
	g := func() int { return 1 }
	_ = f() + g()
}

// boxing: concrete values bound to empty-interface parameters allocate.
// Spread calls pass an existing slice, and panic arguments are not a
// steady-state cost.
func (e *engine) boxing(n int, args []any) {
	_ = sprintf("node %d of %d", n, e.cap) // want hotalloc,hotalloc
	_ = sprintf("preboxed", args...)
	if n < 0 {
		panic(sprintf("impossible fan-in %d", n))
	}
	var a any = any(n) // want hotalloc
	_ = a
}
