// Package fixture exercises the hotalloc analyzer's sharded-engine
// roots: loaded as econcast/internal/sim, everything statically
// reachable from (*coordinator).step and (*shardRuntime).run is the
// per-event path and may not allocate; loaded under a package with no
// hot entries (econcast/internal/viz) nothing may be reported.
package fixture

type event struct{ at float64 }

type shardRuntime struct {
	queue       []event
	interferers []int32
}

type coordinator struct {
	shards []shardRuntime
	order  []int32
	seen   map[int32]bool
}

// step is a hot entry: one coordinator round per call.
func (c *coordinator) step() bool {
	bounds := make([]float64, len(c.shards)) // want hotalloc
	_ = bounds
	c.shards[0].run(c)
	c.fix(0)
	return len(c.order) > 0
}

// run is the shard drain loop, itself a hot entry (and also reachable
// from step).
func (s *shardRuntime) run(c *coordinator) {
	for len(s.queue) > 0 {
		s.queue = s.queue[1:]
		c.dispatch()
	}
}

// dispatch is hot only transitively: step -> run -> dispatch.
func (c *coordinator) dispatch() {
	c.seen = map[int32]bool{} // want hotalloc
}

// fix shows the escape hatch for audited amortized growth of the
// coordinator's top-level heap.
func (c *coordinator) fix(s int32) {
	c.order = append(c.order, s) //lint:allow hotalloc capacity reaches the shard count and stays
}

// newCoordinator is cold construction, unreachable from the entries.
func newCoordinator(n int) *coordinator {
	c := &coordinator{
		shards: make([]shardRuntime, n),
		order:  make([]int32, 0, n),
		seen:   map[int32]bool{},
	}
	for i := range c.shards {
		c.shards[i].interferers = make([]int32, 0, 8)
	}
	return c
}
