// Package fixture exercises the hotalloc analyzer: loaded as
// econcast/internal/sim, everything statically reachable from
// (*engine).run is the event loop and may not allocate; loaded under a
// package with no hot entries (econcast/internal/viz) nothing may be
// reported, and cold construction/teardown is never constrained.
package fixture

type event struct{ at float64 }

type engine struct {
	queue   []event
	scratch []int
	occ     map[int]float64
}

// run is the hot entry point; its whole call tree is the event loop.
func (e *engine) run() {
	for e.step() {
	}
}

func (e *engine) step() bool {
	buf := make([]int, 8) // want hotalloc
	_ = buf
	e.scratch = append(e.scratch, 1) // want hotalloc
	e.scratch = expand(e.scratch)
	e.handleTick()
	return len(e.queue) > 0
}

// handleTick is hot only transitively: run -> step -> handleTick.
func (e *engine) handleTick() {
	m := map[int]float64{0: 1} // want hotalloc
	_ = m
	e.grow()
}

// expand is a hot free function: plain calls are followed, not just
// method calls.
func expand(xs []int) []int {
	return append(xs, 0) // want hotalloc
}

// grow shows the escape hatch for an audited amortized growth.
func (e *engine) grow() {
	e.queue = append(e.queue, event{}) //lint:allow hotalloc amortized high-water growth, audited
}

// newEngine is cold: it is not reachable from run, so construction-time
// allocation is unconstrained.
func newEngine(n int) *engine {
	return &engine{
		queue:   make([]event, 0, n),
		scratch: make([]int, 0, n),
		occ:     map[int]float64{},
	}
}

// finish is cold teardown, also unreachable from run.
func (e *engine) finish() []float64 {
	out := make([]float64, len(e.queue))
	for _, ev := range e.queue {
		out = append(out, ev.at)
	}
	return out
}
