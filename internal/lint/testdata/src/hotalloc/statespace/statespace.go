// Package fixture exercises the hotalloc root added for the Gibbs
// evaluation: loaded as econcast/internal/statespace, everything
// statically reachable from (*Space).Gibbs runs once per dual-descent
// step and may not allocate; Enumerate-time cache construction is cold.
package fixture

type Space struct {
	weights []float64
	cost    []float64
}

type Dist struct {
	pi []float64
}

// Gibbs is the hot entry point.
func (sp *Space) Gibbs(eta []float64) *Dist {
	d := &Dist{pi: make([]float64, len(sp.weights))} // want hotalloc
	tmp := append([]float64(nil), eta...)            // want hotalloc
	_ = tmp
	sp.fill(d)
	return d
}

// fill is hot transitively through Gibbs.
func (sp *Space) fill(d *Dist) {
	m := map[int]float64{} // want hotalloc
	_ = m
	sp.pool()
}

// pool shows the audited pool-miss escape hatch.
func (sp *Space) pool() {
	sp.cost = append(sp.cost, 0) //lint:allow hotalloc pool miss, reused across calls
}

// Enumerate is cold: not reachable from Gibbs, so building the per-state
// caches may allocate freely.
func Enumerate(n int) *Space {
	return &Space{
		weights: make([]float64, n),
		cost:    make([]float64, 1<<uint(n)),
	}
}
