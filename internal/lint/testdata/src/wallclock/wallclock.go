// Package fixture exercises the wallclock analyzer: loaded under a
// simulation import path everything marked below must be reported;
// loaded as econcast/internal/rng nothing may be.
package fixture

import (
	"math/rand"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want wallclock
}

func nap(d time.Duration) {
	time.Sleep(d) // want wallclock
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want wallclock
}

func roll() int {
	return rand.Intn(6) // want wallclock
}

// horizon only does duration arithmetic: type references and pure value
// math on time.Duration are fine, the clock is never read.
func horizon(d time.Duration) time.Duration {
	return 2 * d
}
