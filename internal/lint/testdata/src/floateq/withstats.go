// This file imports the stats helpers, so floateq's suggested fix can
// rewrite exact comparisons into stats.ApproxEqual calls instead of
// falling back to a suppression stub (fix selection is per-file: the
// sibling file without the import keeps the fallback).
package fixture

import "econcast/internal/stats"

// converged is the fixable violation: the suggested edit wraps the
// operands where they sit.
func converged(a, b float64) bool {
	return a == b // want floateq
}

// stillApart exercises the negated rewrite for !=.
func stillApart(xs []float64) bool {
	return xs[0] != xs[1] // want floateq
}

// withinTol is the repaired form the fixes converge to.
func withinTol(a, b float64) bool {
	return stats.ApproxEqual(a, b, 1e-9)
}
