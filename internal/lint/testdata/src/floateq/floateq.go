// Package fixture exercises the floateq analyzer.
package fixture

const tol = 1e-9

// same is the canonical violation: computed floats rarely compare equal.
func same(a, b float64) bool {
	return a == b // want floateq
}

func drifted(xs []float64) bool {
	return xs[0] != xs[1] // want floateq
}

func sentinel(v float64) bool {
	return v == 0 // want floateq
}

// sameInt compares integers, which is always exact.
func sameInt(a, b int) bool { return a == b }

// approxEqual is an approved epsilon helper (name contains "approx"):
// its internal exact comparison is the fast path and is not reported.
func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// unsetBudget documents an intentionally exact sentinel with a
// suppression instead of an epsilon.
func unsetBudget(v float64) bool {
	return v == 0 //lint:allow floateq zero is the unset sentinel
}

// constFold compares two untyped constants, which fold at compile time.
func constFold() bool {
	return 0.1+0.2 == 0.3
}
