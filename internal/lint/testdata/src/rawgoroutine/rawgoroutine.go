// Package fixture exercises the rawgoroutine analyzer: loaded under an
// unlicensed import path the spawns below must be reported; loaded as
// econcast/internal/asim nothing may be.
package fixture

func spawn(ch chan int) {
	go func() { ch <- 1 }() // want rawgoroutine
}

func spawnNamed(work func()) {
	go work() // want rawgoroutine
}

// invoke calls the function synchronously: passing funcs around is fine,
// only the go statement spawns.
func invoke(f func()) { f() }

// audited shows the escape hatch for a deliberate exception.
func audited(work func()) {
	//lint:allow rawgoroutine fire-and-forget logging, audited
	go work()
}
