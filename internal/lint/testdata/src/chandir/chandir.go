// Package fixture exercises the chandir analyzer: loaded as
// econcast/internal/asim, boundary-crossing channels (struct fields and
// function parameters) must be direction-typed, and select statements are
// licensed only inside (*broker).loop and (*nodeRuntime).run; loaded
// under an unconfigured package (econcast/internal/viz) nothing may be
// reported.
package fixture

type message struct{ v int }

// hub mirrors the broker shape with undisciplined channels.
type hub struct {
	cmds []chan message       // want chandir
	out  chan message         // want chandir
	done <-chan struct{}      // direction declared: fine
	ack  chan<- message       // direction declared: fine
	seen map[int]chan message // want chandir
}

// relay takes one bad and one disciplined channel parameter.
func relay(c chan message, in <-chan message) { // want chandir
	c <- <-in
}

// broker matches a licensed receiver name; its loop may select.
type broker struct {
	quit <-chan struct{}
}

func (b *broker) loop() {
	for {
		select { // licensed: the broker's event loop is the one multiplexer
		case <-b.quit:
			return
		}
	}
}

// drain only ever receives from out, so the suggested fix can prove the
// <-chan role from usage.
func (h *hub) drain() message {
	return <-h.out
}

// poll selects outside the licensed loops.
func (h *hub) poll() {
	select { // want chandir
	case <-h.done:
	default:
	}
}

// localMake shows that bidirectional channels are fine as locals: make
// needs one, and the roles are committed at the store/pass sites.
func localMake() (<-chan message, chan<- message) {
	ch := make(chan message)
	return ch, ch
}
