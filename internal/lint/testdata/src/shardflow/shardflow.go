// Package sim is the shardflow fixture: a miniature sharded engine
// where each method violates exactly one rule of the detach/eager-fix
// discipline.
package sim

type event struct {
	node int
	at   float64
	seq  uint64
}

type eventQueue []event

func (q *eventQueue) push(ev event) { *q = append(*q, ev) }

func (q *eventQueue) pop() event {
	ev := (*q)[0]
	*q = (*q)[1:]
	return ev
}

type shardRuntime struct {
	id    int32
	queue eventQueue
	owner *coordinator
	cache []float64
}

type coordinator struct {
	order       []int32
	pos         []int32
	headAt      []float64
	headSeq     []uint64
	listeningTo []int32
	shards      []shardRuntime
	shardOf     []int32
	current     int32
	crossed     bool
	done        bool
	seq         uint64
}

func (c *coordinator) fix(s int32)  { _ = s }
func (c *coordinator) siftDown(int) {}

func (s *shardRuntime) run(c *coordinator, boundAt float64, boundSeq uint64) {
	_, _, _ = c, boundAt, boundSeq
}

// drainNoDetach drains a shard that is still attached to the heap: the
// eager fixes issued during the batch would repair positions against a
// heap whose root is stale.
func (c *coordinator) drainNoDetach(s int32) {
	c.shards[s].run(c, 0, 0) // want shardflow
	c.fix(s)
}

// drainDetachInBranch detaches only on one path; the drain is not
// dominated by the detach.
func (c *coordinator) drainDetachInBranch(s int32, big bool) {
	if big {
		c.pos[s] = -1
	}
	c.shards[s].run(c, 0, 0) // want shardflow
	c.fix(s)
}

// drainNoFix detaches correctly but never re-attaches: the shard stays
// out of the heap after the batch.
func (c *coordinator) drainNoFix(s int32) {
	c.pos[s] = -1
	c.shards[s].run(c, 0, 0) // want shardflow
}

// pushNoFix enqueues into an arbitrary shard without repairing its heap
// position on any path.
func (c *coordinator) pushNoFix(ev event) {
	s := c.shardOf[ev.node]
	c.shards[s].queue.push(ev) // want shardflow
}

// pushPartialFix repairs only when urgent; the other path leaves a
// stale position, and `urgent` proves nothing about the draining shard.
func (c *coordinator) pushPartialFix(ev event, urgent bool) {
	s := c.shardOf[ev.node]
	c.shards[s].queue.push(ev) // want shardflow
	if urgent {
		c.fix(s)
	}
}

// peekForeign indexes a coordinator-owned SoA cache by a foreign shard
// id from a shard method.
func (s *shardRuntime) peekForeign(c *coordinator, o int32) float64 {
	return c.headAt[o] // want shardflow
}

// stop writes a batch-control scalar without a //lint:handoff license.
func (s *shardRuntime) stop(c *coordinator) {
	c.done = true // want shardflow
}

// wire aliases the coordinator into every shard.
func (c *coordinator) wire() {
	for i := range c.shards {
		c.shards[i].owner = c // want shardflow
	}
}

// mirror aliases an owned SoA slice into a shard literal.
func (c *coordinator) mirror() shardRuntime {
	return shardRuntime{cache: c.headAt} // want shardflow
}

// parCoordinator is the window-driver half of the fixture: each method
// below violates one clause of the barrier discipline (rule 6).
type parCoordinator struct {
	c    *coordinator
	nw   int
	work []chan int
	done chan struct{}
}

func (p *parCoordinator) rebuildOrder() {}

// windowNoBarrier dispatches window work and rebuilds without ever
// draining the acks: the workers may still own the shard state when the
// order heap is rebuilt and compared.
func (p *parCoordinator) windowNoBarrier(b int) {
	for w := 0; w < p.nw; w++ {
		p.work[w] <- b // want shardflow
	}
	p.rebuildOrder()
}

// windowWriteInside writes a coordinator-owned SoA cache between the
// dispatch and the barrier, racing the window workers.
func (p *parCoordinator) windowWriteInside(b int) {
	for w := 0; w < p.nw; w++ {
		p.work[w] <- b
	}
	p.c.headAt[0] = 0 // want shardflow
	for w := 0; w < p.nw; w++ {
		<-p.done
	}
	p.rebuildOrder()
}

// windowNoRebuild drains the barrier but never rebuilds the order heap:
// the next comparison would run against stale head keys.
func (p *parCoordinator) windowNoRebuild(b int) {
	for w := 0; w < p.nw; w++ {
		p.work[w] <- b // want shardflow
	}
	for w := 0; w < p.nw; w++ {
		<-p.done
	}
}
