// Package sim is the clean shardflow fixture: the same miniature engine
// following the detach/eager-fix discipline exactly, mirroring the real
// coordinator. Loaded under the sim path it must stay silent.
package sim

type event struct {
	node int
	at   float64
	seq  uint64
}

type eventQueue []event

func (q *eventQueue) push(ev event) { *q = append(*q, ev) }

func (q *eventQueue) pop() event {
	ev := (*q)[0]
	*q = (*q)[1:]
	return ev
}

type shardRuntime struct {
	id    int32
	queue eventQueue
}

type coordinator struct {
	order       []int32
	pos         []int32
	headAt      []float64
	headSeq     []uint64
	listeningTo []int32
	shards      []shardRuntime
	shardOf     []int32
	current     int32
	crossed     bool
	done        bool
	seq         uint64
	horizon     float64
}

func (c *coordinator) fix(s int32)  { _ = s }
func (c *coordinator) siftDown(int) {}

func (c *coordinator) dispatch(ev event) { _ = ev }

// run mirrors the real drain boundary: it executes on the coordinator's
// event-loop goroutine and writes the batch-control scalars back.
//
//lint:handoff sim-engine the drain boundary writes current/crossed/done back into the coordinator
func (s *shardRuntime) run(c *coordinator, boundAt float64, boundSeq uint64) {
	for len(s.queue) > 0 {
		head := s.queue[0]
		if head.at > boundAt || (head.at == boundAt && head.seq > boundSeq) { //lint:allow floateq fixture mirrors the exact tie detection
			return
		}
		if head.at > c.horizon {
			c.done = true
			return
		}
		ev := s.queue.pop()
		c.crossed = false
		c.current = s.id
		c.dispatch(ev)
		if c.crossed {
			return
		}
	}
}

// step follows the discipline: detach unconditionally (through a
// branch that does not bypass it), drain, re-attach.
func (c *coordinator) step() bool {
	if c.done || len(c.order) == 0 {
		return false
	}
	s := c.order[0]
	last := len(c.order) - 1
	c.order = c.order[:last]
	c.pos[s] = -1
	if last > 0 {
		c.siftDown(0)
	}
	c.shards[s].run(c, 0, 0)
	c.fix(s)
	return !c.done
}

// push eagerly fixes cross-shard pushes; the equality branch proves the
// push landed in the detached draining shard.
func (c *coordinator) push(ev event) {
	ev.seq = c.seq
	c.seq++
	s := c.shardOf[ev.node]
	c.shards[s].queue.push(ev)
	if s != c.current {
		c.crossed = true
		c.fix(s)
	}
}

// pushEq is the same license written with == and an early return.
func (c *coordinator) pushEq(ev event) {
	s := c.shardOf[ev.node]
	c.shards[s].queue.push(ev)
	if s == c.current {
		return
	}
	c.fix(s)
}

// drainPanic: a panicking path carries no repair obligation.
func (c *coordinator) drainPanic(s int32) {
	c.pos[s] = -1
	c.shards[s].run(c, 0, 0)
	if len(c.order) == 0 {
		panic("drained the last shard")
	}
	c.fix(s)
}

// head reads an owned SoA cache at the shard's own id, which is always
// legal from a shard method.
func (s *shardRuntime) head(c *coordinator) float64 {
	return c.headAt[s.id]
}

// parCoordinator mirrors the real window-synchronized driver: a worker
// pool fed by per-worker work channels and a shared done channel.
type parCoordinator struct {
	c    *coordinator
	nw   int
	work []chan int
	done chan struct{}
}

func (p *parCoordinator) rebuildOrder() {}

// window follows the barrier discipline exactly: dispatch to every
// worker, drain every ack, rebuild the order heap — no coordinator
// state is touched while the workers own the shards.
func (p *parCoordinator) window(b int) {
	for w := 0; w < p.nw; w++ {
		p.work[w] <- b
	}
	for w := 0; w < p.nw; w++ {
		<-p.done
	}
	p.rebuildOrder()
}

// run embeds the window in the real loop shape: serial steps interleave
// with windows, and the horizon write happens outside any open window.
func (p *parCoordinator) run(interior func() bool) {
	c := p.c
	for !c.done && len(c.order) > 0 {
		if c.headAt[c.order[0]] > c.horizon {
			c.done = true
			break
		}
		if !interior() {
			c.step()
			continue
		}
		b := 1
		for w := 0; w < p.nw; w++ {
			p.work[w] <- b
		}
		for w := 0; w < p.nw; w++ {
			<-p.done
		}
		p.rebuildOrder()
	}
}
