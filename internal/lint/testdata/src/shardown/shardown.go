// Package asim is a shardown fixture: two role domains (fix-broker
// owns the medium, fix-node owns firmware state) with every illegal
// access path seeded — cross-domain field reads, method calls, call-
// argument escapes, and goroutine captures — next to the legal ones:
// the establishing launch, licensed handoffs, and domain-less setup.
package asim

//lint:owner fix-node firmware state owned by the node goroutine
type nodeRt struct {
	id    int
	state int
}

func (n *nodeRt) run()  {}
func (n *nodeRt) step() {}

//lint:owner fix-broker the broker goroutine owns the clock and medium
type medium struct {
	nodes []*nodeRt
	clock float64
}

// deliver is a licensed boundary: any domain may hand a node through
// it.
//
//lint:handoff fix-node conservative sync boundary for the fixture
func deliver(n *nodeRt) { n.state++ }

// inspect carries no license: passing a node here from another domain
// is an escape.
func inspect(n *nodeRt) int { return n.state }

// start performs the establishing launches: `go n.run()` hands each
// node to the goroutine that will own it. Legal.
func (m *medium) start() {
	for _, n := range m.nodes {
		go n.run()
	}
}

// poke reaches into node-owned state from the broker domain.
func (m *medium) poke() {
	m.nodes[0].state = 1 // want shardown
}

// tick calls a node method from the broker domain without a license.
func (m *medium) tick() {
	m.nodes[0].step() // want shardown
}

// handUnlicensed escapes a node into an unlicensed callee; the
// licensed variant next to it is fine.
func (m *medium) handUnlicensed() {
	_ = inspect(m.nodes[0]) // want shardown
	deliver(m.nodes[0])
}

// peek reads broker-owned state from the node domain.
func (n *nodeRt) peek(m *medium) float64 {
	return m.clock // want shardown
}

// sync is licensed for the broker domain, so the same read is legal.
//
//lint:handoff fix-broker reads the clock at a sync point
func (n *nodeRt) sync(m *medium) float64 {
	return m.clock
}

// leak captures an owned node in an anonymous goroutine — not an
// establishing launch, so ownership is violated even from domain-less
// setup code.
func leak(n *nodeRt, done chan struct{}) {
	go func() {
		n.step() // want shardown
		close(done)
	}()
}
