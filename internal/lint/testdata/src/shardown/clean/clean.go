// Package asim is the shardown wantNone fixture: the sanctioned
// engine shape. Domain-less setup constructs the owned values, the
// establishing launch hands each node to its goroutine, and the two
// domains speak only over channels afterwards.
package asim

//lint:owner fix-node firmware state owned by the node goroutine
type nodeRt struct {
	id  int
	cmd <-chan int
	out chan<- int
}

func (n *nodeRt) run() {
	for c := range n.cmd {
		n.out <- c + n.id
	}
}

//lint:owner fix-broker the broker goroutine owns the clock and medium
type medium struct {
	nodes []*nodeRt
	cmds  []chan<- int
	out   <-chan int
	clock float64
}

// newMedium is setup code: no domain, unrestricted construction.
func newMedium(n int) *medium {
	out := make(chan int)
	m := &medium{nodes: make([]*nodeRt, n), cmds: make([]chan<- int, n), out: out}
	for i := range m.nodes {
		ch := make(chan int)
		m.cmds[i] = ch
		m.nodes[i] = &nodeRt{id: i, cmd: ch, out: out}
	}
	return m
}

// start performs the establishing launches.
func (m *medium) start() {
	for _, n := range m.nodes {
		go n.run()
	}
}

// loop owns the medium and talks to nodes over channels only.
func (m *medium) loop(rounds int) int {
	sum := 0
	for r := 0; r < rounds; r++ {
		for i := range m.cmds {
			m.cmds[i] <- r
			sum += <-m.out
		}
		m.clock++
	}
	return sum
}

func run(n, rounds int) int {
	m := newMedium(n)
	m.start()
	return m.loop(rounds)
}
