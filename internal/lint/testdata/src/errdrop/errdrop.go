// Package fixture exercises the errdrop analyzer.
package fixture

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func dropped() {
	mayFail() // want errdrop
}

func droppedDefer(f *os.File) {
	defer f.Close() // want errdrop
}

func droppedMulti() {
	os.Create("x") // want errdrop
}

// handled checks the error; explicitly discarding with _ is also an
// accepted, visible decision.
func handled() error {
	if err := mayFail(); err != nil {
		return err
	}
	_ = mayFail()
	_, _ = os.Create("x")
	return nil
}

// report uses the exempt diagnostics: fmt printing and the never-failing
// Builder/Buffer writers.
func report(b *strings.Builder) string {
	fmt.Fprintf(b, "n=%d\n", 1)
	b.WriteString("tail")
	fmt.Println("done")
	return b.String()
}
