// Package fixture exercises the maprange analyzer: the test harness
// loads it under a deterministic import path (econcast/internal/sim) and
// again under a non-deterministic one, where nothing may be reported.
package fixture

import "sort"

// sumFloats is the canonical violation: float accumulation order follows
// map iteration order, so the rounding differs between runs.
func sumFloats(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want maprange
		total += v
	}
	return total
}

// lastWins is order-sensitive: whichever key is visited last sticks.
func lastWins(m map[string]float64) float64 {
	var x float64
	for _, v := range m { // want maprange
		x = v
	}
	return x
}

// keysUnsorted appends in iteration order; the call makes the body
// opaque to the analyzer even though the sort below restores determinism,
// so the idiom needs an audit comment (see keysAudited).
func keysUnsorted(m map[string]int) []string {
	var ks []string
	for k := range m { // want maprange
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// keysAudited is the same idiom with the audit recorded.
func keysAudited(m map[string]int) []string {
	var ks []string
	//lint:ordered keys are sorted immediately below
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// scaleEach mutates each entry independently at its own key: provably
// order-insensitive, accepted without a suppression.
func scaleEach(m map[string]float64, f float64) {
	for k := range m {
		m[k] *= f
	}
}

// countTrue accumulates into an integer, which is commutative and
// overflow-deterministic: accepted.
func countTrue(m map[string]bool) int {
	n := 0
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}

// clearAll deletes the visited key: accepted (each key seen once).
func clearAll(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// overSlice ranges a slice, which iterates in index order: not a map
// range at all.
func overSlice(xs []float64) float64 {
	total := 0.0
	for _, v := range xs {
		total += v
	}
	return total
}
