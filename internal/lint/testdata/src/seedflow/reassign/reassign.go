// Package fixture is the path-sensitivity regression for seedflow: a
// collision-prone initialization that EVERY path overwrites with a
// sound derivation must stay silent — only definitions that actually
// reach the sink count. The flow-insensitive v4 analyzer scanned all
// assignments in source order and flagged the dead initializer. The
// one-branch variants below keep a tainted path alive and must still
// be findings.
package fixture

import "econcast/internal/rng"

type cellCfg struct {
	Sigma float64
	Seed  uint64
}

// rederived overwrites the tainted initializer on both branches: no
// arithmetic reaches rng.New, so the rewrite proves it sound.
func rederived(base uint64, hot bool) *rng.Source {
	seed := base + 1
	if hot {
		seed = rng.DeriveSeed(base, 1)
	} else {
		seed = rng.DeriveSeed(base, 2)
	}
	return rng.New(seed)
}

// rederivedField is the same shape through a Seed field store.
func rederivedField(base uint64, i int) cellCfg {
	s := base * 31
	switch {
	case i == 0:
		s = rng.DeriveSeed(base, 0)
	default:
		s = rng.DeriveSeed(base, uint64(i))
	}
	return cellCfg{Seed: s}
}

// oneBranch only fixes the hot path: the tainted initializer still
// reaches the sink along the else edge.
func oneBranch(base uint64, hot bool) *rng.Source {
	seed := base + 1 // want seedflow
	if hot {
		seed = rng.DeriveSeed(base, 1)
	}
	return rng.New(seed)
}

// lateTaint derives soundly first, then damages the seed on one path
// before the sink; the reaching tainted definition is the finding.
func lateTaint(base uint64, skew int) *rng.Source {
	seed := rng.DeriveSeed(base, 7)
	if skew > 0 {
		seed = seed + uint64(skew) // want seedflow
	}
	return rng.New(seed)
}

// sunkBeforeFix sinks the tainted value BEFORE the rederivation: the
// definition reaching the first sink is the arithmetic, even though a
// later write would have cleaned it up for the second sink.
func sunkBeforeFix(base uint64) (a, b *rng.Source) {
	seed := base ^ 0x5bd1e995 // want seedflow
	a = rng.New(seed)
	seed = rng.DeriveSeed(base, 9)
	b = rng.New(seed)
	return a, b
}
