// Package fixture exercises the seedflow analyzer: loaded as
// econcast/internal/experiments, every seed reaching rng.New, a Seed
// field, or a seed-named parameter must derive from rng.DeriveSeed (or a
// constant); additive/xor arithmetic on the way — the PR 2 seed-collision
// class, where four topology families shared one stream via base+i — is
// a finding. The exempt fixture shows the same code silent inside
// econcast/internal/rng.
package fixture

import (
	"econcast/internal/faults"
	"econcast/internal/rng"
)

type cellCfg struct {
	Sigma float64
	Seed  uint64
}

// sweepCells reproduces the PR 2 collision pattern: distinct (family, i)
// tuples can land on the same additive sum.
func sweepCells(base uint64, sigmas []float64) []cellCfg {
	cells := make([]cellCfg, 0, len(sigmas))
	for i, sigma := range sigmas {
		cells = append(cells, cellCfg{
			Sigma: sigma,
			Seed:  base + uint64(i), // want seedflow
		})
	}
	return cells
}

// launch feeds xor-mixed arithmetic straight into rng.New.
func launch(base uint64) *rng.Source {
	return rng.New(base ^ 0xdeadbeef) // want seedflow
}

// localFlow hides the arithmetic behind a local variable; the backward
// chase still finds it.
func localFlow(base uint64, i int) cellCfg {
	s := base*31 + uint64(i) // want seedflow
	return cellCfg{Seed: s}
}

// shifted is only unsound once its result reaches a sink (see below);
// the finding lands here, on the arithmetic.
func shifted(base uint64, i int) uint64 {
	return base + uint64(i)<<8 // want seedflow
}

func useShifted(base uint64) *rng.Source {
	return rng.New(shifted(base, 3))
}

// faultSeed feeds arithmetic into the fault compiler's seed parameter:
// distinct runs could collide on one fault schedule.
func faultSeed(base uint64, i int) {
	_, _ = faults.Compile(nil, 4, 100, base+uint64(i)) // want seedflow
}

// runNode stands in for a goroutine/cell entry point taking a seed.
func runNode(seed uint64) uint64 { return seed }

func fanOut(base uint64, n int) uint64 {
	var acc uint64
	for i := 0; i < n; i++ {
		acc += runNode(base + uint64(i)) // want seedflow
	}
	return acc
}

// assignField covers the x.Seed = ... store form.
func assignField(base uint64, i int) cellCfg {
	var c cellCfg
	c.Seed = base + uint64(i) // want seedflow
	return c
}

// derivedOK shows the sanctioned derivations staying silent: DeriveSeed
// mixing, constants (including constant arithmetic), field reads, and
// already-derived locals.
func derivedOK(base uint64, sigmas []float64) []cellCfg {
	cells := make([]cellCfg, 0, len(sigmas))
	for i := range sigmas {
		s := rng.DeriveSeed(base, 1, uint64(i))
		cells = append(cells, cellCfg{Seed: s})
	}
	cells = append(cells, cellCfg{Seed: 0x9e3779b9 + 7}) // constant: fine
	if len(cells) > 0 {
		cells = append(cells, cellCfg{Seed: cells[0].Seed}) // field read: checked at its write
	}
	_ = rng.New(rng.DeriveSeed(base, 42))
	return cells
}

// deriveBase checks DeriveSeed's own base argument.
func deriveBase(a, b uint64) uint64 {
	return rng.DeriveSeed(a+b, 1) // want seedflow
}
