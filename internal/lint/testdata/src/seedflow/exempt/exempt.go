// Package exempt contains the same additive-derivation shape as the
// seedflow fixture; loaded as econcast/internal/rng (the sanctioned
// mixer's home, where splitmix arithmetic IS the implementation) it must
// stay silent.
package exempt

type cfg struct{ Seed uint64 }

func child(seed uint64, i int) cfg {
	return cfg{Seed: seed + uint64(i)}
}
