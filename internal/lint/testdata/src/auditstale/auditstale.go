// Package fixture exercises -audit-suppressions: loaded as
// econcast/internal/sim it carries live directives (the wallclock
// suppressions really are holding back findings), one stale directive
// (nothing on the covered lines trips floateq), and one live directive
// still wearing the generated "TODO: justify" stub, so the audit must
// report exactly the stale one and the unjustified one.
package fixture

import "time"

//lint:allow wallclock fixture: pretend-sanctioned clock read
var bootTime = time.Now()

//lint:allow floateq stale: nothing here compares floats
var nodeCount = 3

func uptime() time.Duration { return time.Since(bootTime) } //lint:allow wallclock fixture: trailing live directive

// tied's directive suppresses a real floateq finding, but nobody has
// replaced the autofix stub with a reason yet.
func tied(a, b float64) bool { return a == b } //lint:allow floateq TODO: justify this exact comparison
