// Package fixture exercises -audit-suppressions: loaded as
// econcast/internal/sim it carries one live directive (the wallclock
// suppression really is holding back a finding) and one stale directive
// (nothing on the covered lines trips floateq), so the audit must report
// exactly the stale one.
package fixture

import "time"

//lint:allow wallclock fixture: pretend-sanctioned clock read
var bootTime = time.Now()

//lint:allow floateq stale: nothing here compares floats
var nodeCount = 3

func uptime() time.Duration { return time.Since(bootTime) } //lint:allow wallclock fixture: trailing live directive
