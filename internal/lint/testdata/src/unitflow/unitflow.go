// Package sim is a unitflow fixture: mirror declarations whose
// registry keys match econcast/internal/sim, with at least one seeded
// bug per interacting dimension pair (s↔tick, J↔W, W↔1/W, pkt↔pkt/s,
// s↔J) plus the dimensionally-sound flows that must stay silent.
// Loaded under econcast/internal/viz instead, none of the registry keys
// resolve and the whole file must be quiet.
package sim

type Protocol struct {
	Tau        float64
	PacketTime float64
}

// TicksToSeconds forgets to scale by Tau: the tick-valued parameter
// flows straight to the second-valued result.
func (p Protocol) TicksToSeconds(ticks float64) float64 {
	return ticks // want unitflow
}

func (p Protocol) SecondsToTicks(t float64) float64 {
	return t / p.Tau
}

type Config struct {
	Duration       float64
	Warmup         float64
	InitialBattery float64
}

type Metrics struct {
	Window           float64
	Power            []float64
	EtaFinal         []float64
	Battery          []float64
	PacketsDelivered int
}

type event struct {
	at float64
}

type engine struct {
	now float64
	tau float64
}

func (e *engine) active(i int, t float64) bool { return t < e.now }

func window(m *Metrics) float64 { return m.Window }

func bugs(e *engine, p Protocol, c Config, m *Metrics) {
	ticks := p.SecondsToTicks(c.Duration)

	deadline := e.now + ticks // want unitflow
	_ = deadline

	if c.InitialBattery > m.Power[0] { // want unitflow
		return
	}

	m.Battery[0] = m.Power[0] // want unitflow

	m.EtaFinal[0] = m.Power[0] // want unitflow

	rate := float64(m.PacketsDelivered) / m.Window
	if rate > float64(m.PacketsDelivered) { // want unitflow
		return
	}

	_ = event{at: ticks} // want unitflow

	_ = e.active(0, ticks) // want unitflow

	span := c.Duration + c.InitialBattery // want unitflow
	_ = span

	// Interprocedural: window's result dimension is inferred, not
	// registered.
	x := window(m) + ticks // want unitflow
	_ = x

	// Dimensionally sound flows stay silent: mul/div compose, scalars
	// combine freely, and the conversion helpers bridge ticks to
	// seconds.
	energy := m.Power[0] * m.Window // W·s = J
	m.Battery[0] = energy
	m.Power[0] = energy / m.Window
	e.now += e.tau
	_ = p.TicksToSeconds(ticks) + c.Warmup
	_ = 2*c.Duration + c.Warmup
	_ = e.active(0, c.Warmup)
}
