package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags calls whose error result is silently discarded: a call
// statement (or defer/go call) returning an error that nobody reads.
// Assigning the error to _ is accepted as an explicit, visible decision.
//
// Exempt by design: fmt.Print*/Fprint* (diagnostic output whose failure
// is not actionable here) and the never-failing Write methods of
// strings.Builder and bytes.Buffer.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "discarded error return value",
	Run: func(p *Pass) {
		check := func(call *ast.CallExpr, how string) {
			sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
			if !ok {
				return // builtin or conversion
			}
			if !returnsError(sig) || errDropExempt(p.Info, call) {
				return
			}
			p.Reportf(call.Pos(), "%serror result discarded; handle it or assign to _ explicitly", how)
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok {
						check(call, "")
					}
				case *ast.DeferStmt:
					check(n.Call, "deferred ")
				case *ast.GoStmt:
					check(n.Call, "spawned ")
				}
				return true
			})
		}
	},
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}

func errDropExempt(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type().String()
		if strings.HasSuffix(t, "strings.Builder") || strings.HasSuffix(t, "bytes.Buffer") {
			return true
		}
	}
	return false
}
