package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"econcast/internal/lint/flow"
)

// rngPkgPath is the sanctioned seed-derivation package. Inside it, raw
// seed arithmetic is the implementation; everywhere else it is the bug.
const rngPkgPath = "econcast/internal/rng"

// SeedFlow proves that every seed reaching a seed sink — the argument of
// rng.New, the base of rng.DeriveSeed, a struct field named Seed (or
// *Seed), or an argument bound to a uint64 parameter whose name contains
// "seed" (which covers goroutine launches and sweep.Cell constructors
// that thread seeds through helpers) — derives from rng.DeriveSeed, a
// constant, or an already-derived value. What it flags is arithmetic
// (+, -, *, ^, |, &, %, /, <<, >>, &^) on the way to a sink: additive
// derivations like base+uint64(i) let distinct parameter tuples collide
// on one RNG stream, the exact class of bug PR 2 fixed when four
// topology families silently shared a seed.
//
// The pass is interprocedural over the package's static call graph
// (reusing hotalloc's closure machinery): a sink fed by a same-package
// call is checked through that callee's return expressions, and local
// variables are chased path-sensitively through the reaching
// definitions of internal/lint/flow — only writes that can actually
// reach the sink are checked, so a collision-prone initialization that
// every path overwrites with a sound derivation no longer trips the
// analyzer. Variables the dataflow cannot track (address-taken,
// assigned inside a closure, or local to a nested function literal)
// fall back to the conservative scan over all assignments.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc:  "seed derived with collision-prone arithmetic instead of rng.DeriveSeed",
	Run: func(p *Pass) {
		if p.Path == rngPkgPath {
			return
		}
		sf := &seedflowPass{
			p:        p,
			decls:    funcDecls(p),
			flows:    make(map[*ast.FuncDecl]*flow.Reach),
			funcBad:  make(map[*types.Func]*ast.BinaryExpr),
			visiting: make(map[*types.Func]bool),
			reported: make(map[token.Pos]bool),
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, _ := d.(*ast.FuncDecl)
				var body ast.Node = d
				if fd != nil {
					if fd.Body == nil {
						continue
					}
					body = fd.Body
				}
				ast.Inspect(body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.CallExpr:
						sf.checkCall(n, fd)
					case *ast.CompositeLit:
						sf.checkComposite(n, fd)
					case *ast.AssignStmt:
						sf.checkAssign(n, fd)
					}
					return true
				})
			}
		}
	},
}

type seedflowPass struct {
	p        *Pass
	decls    map[*types.Func]*ast.FuncDecl
	flows    map[*ast.FuncDecl]*flow.Reach   // lazily built reaching definitions per function
	funcBad  map[*types.Func]*ast.BinaryExpr // memoized: offending expr in a callee's returns
	visiting map[*types.Func]bool            // recursion guard
	reported map[token.Pos]bool              // one finding per arithmetic site
}

// reachFor builds (once) the CFG and reaching definitions for fd,
// seeding entry definitions from its receiver, parameters, and named
// results so an unwritten parameter resolves to an opaque entry value
// rather than to "no definition".
func (sf *seedflowPass) reachFor(fd *ast.FuncDecl) *flow.Reach {
	if r, ok := sf.flows[fd]; ok {
		return r
	}
	g := flow.Build(fd.Body)
	r := flow.Reaching(g, sf.p.Info, fd.Recv, fd.Type.Params, fd.Type.Results)
	sf.flows[fd] = r
	return r
}

// isSeedParam matches parameters that carry seeds by convention.
func isSeedParam(name string) bool {
	return strings.Contains(strings.ToLower(name), "seed")
}

// isSeedField matches struct fields that carry seeds: Seed itself and
// BaseSeed-style variants.
func isSeedField(name string) bool {
	return name == "Seed" || strings.HasSuffix(name, "Seed")
}

func isUint64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

// checkCall inspects one call for seed sinks among its arguments.
func (sf *seedflowPass) checkCall(call *ast.CallExpr, fd *ast.FuncDecl) {
	fn := calleeFunc(sf.p.Info, call)
	if fn == nil {
		return
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == rngPkgPath {
		switch fn.Name() {
		case "New":
			if len(call.Args) == 1 {
				sf.checkSeedExpr(call.Args[0], fd, "seed passed to rng.New")
			}
		case "DeriveSeed":
			if len(call.Args) >= 1 {
				// The base must itself be a sound seed; the parts are
				// arbitrary distinguishers and may be anything.
				sf.checkSeedExpr(call.Args[0], fd, "base seed passed to rng.DeriveSeed")
			}
		}
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= params.Len()-1 {
			pi = params.Len() - 1
		}
		if pi >= params.Len() {
			break
		}
		prm := params.At(pi)
		if isSeedParam(prm.Name()) && isUint64(prm.Type()) {
			sf.checkSeedExpr(arg, fd, fmt.Sprintf("seed argument %q of %s", prm.Name(), fn.Name()))
		}
	}
}

// checkComposite inspects struct literals for Seed-named fields.
func (sf *seedflowPass) checkComposite(lit *ast.CompositeLit, fd *ast.FuncDecl) {
	t := sf.p.Info.TypeOf(lit)
	if t == nil {
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && isSeedField(id.Name) {
				sf.checkSeedExpr(kv.Value, fd, fmt.Sprintf("seed stored in field %s", id.Name))
			}
			continue
		}
		// Positional literal: match the field by index.
		if i < st.NumFields() && isSeedField(st.Field(i).Name()) {
			sf.checkSeedExpr(el, fd, fmt.Sprintf("seed stored in field %s", st.Field(i).Name()))
		}
	}
}

// checkAssign inspects assignments to Seed-named fields.
func (sf *seedflowPass) checkAssign(as *ast.AssignStmt, fd *ast.FuncDecl) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || !isSeedField(sel.Sel.Name) {
			continue
		}
		if t := sf.p.Info.TypeOf(sel); t != nil && isUint64(t) {
			sf.checkSeedExpr(as.Rhs[i], fd, fmt.Sprintf("seed stored in field %s", sel.Sel.Name))
		}
	}
}

// checkSeedExpr traces e backwards and reports the first collision-prone
// arithmetic feeding it.
func (sf *seedflowPass) checkSeedExpr(e ast.Expr, fd *ast.FuncDecl, what string) {
	bad := sf.unsound(e, fd, make(map[types.Object]bool))
	if bad == nil || sf.reported[bad.OpPos] {
		return
	}
	sf.reported[bad.OpPos] = true
	sf.p.Reportf(bad.OpPos, "%s is derived with %q arithmetic, which can collide across cells; mix with rng.DeriveSeed(base, parts...) instead", what, bad.Op)
}

// seedArithOps are the operators that can map distinct input tuples to
// one seed.
func seedArithOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.XOR, token.OR, token.AND, token.AND_NOT, token.SHL, token.SHR:
		return true
	}
	return false
}

// unsound returns the offending arithmetic expression feeding e, or nil
// if e is a sound seed derivation. The analysis is deliberately
// permissive where it cannot see (field reads, index expressions, calls
// into other packages resolve to sound): those values were themselves
// produced at a checked sink or are out of scope; the target is the
// arithmetic the paper-reproduction actually writes.
func (sf *seedflowPass) unsound(e ast.Expr, fd *ast.FuncDecl, seen map[types.Object]bool) *ast.BinaryExpr {
	e = ast.Unparen(e)
	if tv, ok := sf.p.Info.Types[e]; ok && tv.Value != nil {
		return nil // constant expression: one fixed seed, no collision surface
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		if seedArithOp(e.Op) {
			return e
		}
		return nil
	case *ast.CallExpr:
		if tv, ok := sf.p.Info.Types[e.Fun]; ok && tv.IsType() {
			// Conversion such as uint64(x): look through it.
			if len(e.Args) == 1 {
				return sf.unsound(e.Args[0], fd, seen)
			}
			return nil
		}
		fn := calleeFunc(sf.p.Info, e)
		if fn == nil {
			return nil
		}
		if pkg := fn.Pkg(); pkg != nil && pkg.Path() == rngPkgPath {
			return nil // DeriveSeed, Split, Uint64, ...: sanctioned derivations
		}
		if fd2, ok := sf.decls[fn]; ok {
			return sf.callUnsound(fn, fd2)
		}
		return nil
	case *ast.Ident:
		obj := sf.p.Info.Uses[e]
		v, ok := obj.(*types.Var)
		if !ok || seen[v] {
			return nil
		}
		seen[v] = true
		if fd == nil || fd.Body == nil {
			return nil
		}
		r := sf.reachFor(fd)
		defs, ok := r.DefsAt(v, e.Pos())
		if !ok || len(defs) == 0 {
			// Address-taken, assigned inside a closure, or local to a
			// nested function literal (whose statements are not CFG
			// nodes of fd): fall back to the conservative scan.
			return sf.varUnsound(v, fd, seen)
		}
		for _, d := range defs {
			if d.Rhs == nil {
				// Entry value (parameter/receiver) or an opaque write
				// (range variable, multi-value assignment): beyond
				// arithmetic the analyzer could see.
				continue
			}
			if b := sf.unsound(d.Rhs, fd, seen); b != nil {
				return b
			}
		}
		return nil
	}
	return nil
}

// varUnsound chases a local variable through every assignment inside
// fd, ignoring reachability. It is the fallback for variables the
// dataflow cannot track.
func (sf *seedflowPass) varUnsound(v *types.Var, fd *ast.FuncDecl, seen map[types.Object]bool) *ast.BinaryExpr {
	var bad *ast.BinaryExpr
	assignTo := func(id *ast.Ident, rhs ast.Expr) {
		if bad != nil {
			return
		}
		obj := sf.p.Info.Defs[id]
		if obj == nil {
			obj = sf.p.Info.Uses[id]
		}
		if obj == v {
			bad = sf.unsound(rhs, fd, seen)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					assignTo(id, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			for i, id := range n.Names {
				assignTo(id, n.Values[i])
			}
		}
		return true
	})
	return bad
}

// callUnsound checks a same-package callee: its return expressions feed
// the sink, so they must be sound seed derivations too.
func (sf *seedflowPass) callUnsound(fn *types.Func, fd *ast.FuncDecl) *ast.BinaryExpr {
	if bad, ok := sf.funcBad[fn]; ok {
		return bad
	}
	if sf.visiting[fn] {
		return nil // recursion: assume sound rather than loop
	}
	sf.visiting[fn] = true
	defer delete(sf.visiting, fn)

	var bad *ast.BinaryExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a literal's returns are not fn's returns
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if b := sf.unsound(res, fd, make(map[types.Object]bool)); b != nil {
					bad = b
					break
				}
			}
		}
		return true
	})
	sf.funcBad[fn] = bad
	return bad
}
