package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Determinism-critical types are the ones annotated with the reserved
// per-instance ownership domain (`//lint:owner goroutine` on the type
// declaration; see Owners): one of these consumed from two goroutines
// makes the draw/accumulation order scheduling-dependent, which is
// deterministic-but-wrong in exactly the way `go test -race` cannot
// catch (every access may still be happens-before ordered through the
// broker protocol, yet the stream is shared). Each goroutine must own
// its own: rng.Source streams are split per goroutine
// (rng.Source.Split), accumulators are merged after the sweep barrier.
// The set used to be a hardcoded list here; it now lives with the type
// declarations themselves, so new single-owner types opt in at the
// point of definition.

// isCriticalPtr reports whether t is a pointer to a determinism-critical
// (instance-owned) named type.
func isCriticalPtr(p *Pass, t types.Type) bool {
	if t == nil {
		return false
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	return p.Owners.anyDomain(ptr.Elem()) == InstanceOwned
}

// SharedState flags determinism-critical pointers shared across
// goroutines. Two shapes are caught statically:
//
//   - A critical pointer referenced inside a `go`-launched call (captured
//     by its closure, passed as an argument, or used as its receiver)
//     that is also referenced elsewhere in the enclosing function — the
//     launching side, or another goroutine, still holds it. A handoff
//     whose only use is inside the one goroutine is fine.
//
//   - A critical pointer declared outside a loop and stored, inside that
//     loop, into a struct whose methods the package launches with `go`
//     (asim's nodeRuntime pattern): every constructed runtime would share
//     the one stream. Storing a fresh call result (master.Split(),
//     econcast.NewNode(...)) is the sanctioned per-goroutine handoff.
var SharedState = &Analyzer{
	Name: "sharedstate",
	Doc:  "determinism-critical pointer (*rng.Source, *stats.Accumulator, ...) shared across goroutines",
	Run: func(p *Pass) {
		crossing := goCrossingTypes(p)
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkGoCaptures(p, fd)
				checkCrossingStores(p, fd, crossing)
			}
		}
	},
}

// goCrossingTypes collects named types with a method launched via
// `go x.m()` anywhere in the package: their instances cross into
// goroutines whole, fields included.
func goCrossingTypes(p *Pass) map[*types.Named]bool {
	crossing := make(map[*types.Named]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(g.Call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(sel.X)
			if t == nil {
				return true
			}
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				crossing[named] = true
			}
			return true
		})
	}
	return crossing
}

// checkGoCaptures implements the first shape: critical pointers handed
// to a goroutine but still reachable outside it.
func checkGoCaptures(p *Pass, fd *ast.FuncDecl) {
	var gos []*ast.GoStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			gos = append(gos, g)
		}
		return true
	})
	for _, g := range gos {
		// Critical variables referenced anywhere in the go call:
		// closure-captured free variables, call arguments, receivers.
		handed := make(map[*types.Var]*ast.Ident)
		ast.Inspect(g.Call, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := p.Info.Uses[id].(*types.Var); ok && !v.IsField() && isCriticalPtr(p, v.Type()) {
				if _, dup := handed[v]; !dup {
					handed[v] = id
				}
			}
			return true
		})
		// Deterministic report order (handed is a map).
		vars := make([]*types.Var, 0, len(handed))
		for v := range handed {
			vars = append(vars, v)
		}
		sort.Slice(vars, func(i, j int) bool { return handed[vars[i]].Pos() < handed[vars[j]].Pos() })
		for _, v := range vars {
			if usedOutside(p, fd, v, g.Pos(), g.End()) {
				p.Reportf(g.Pos(), "%s (%s) is handed to this goroutine but still reachable outside it; give each goroutine its own (e.g. rng.Source.Split per stream, merge accumulators after the barrier)", handed[v].Name, v.Type())
			}
		}
	}
}

// usedOutside reports whether v is referenced in fd outside the
// [lo, hi] source range.
func usedOutside(p *Pass, fd *ast.FuncDecl, v *types.Var, lo, hi token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if id.Pos() >= lo && id.Pos() < hi {
			return true
		}
		if p.Info.Uses[id] == v {
			found = true
		}
		return true
	})
	return found
}

// checkCrossingStores implements the second shape: a loop fanning one
// critical pointer into many goroutine-crossing structs.
func checkCrossingStores(p *Pass, fd *ast.FuncDecl, crossing map[*types.Named]bool) {
	if len(crossing) == 0 {
		return
	}
	// Collect the loops of fd so a store site can find its innermost
	// enclosing loop.
	var loops []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
		}
		return true
	})
	if len(loops) == 0 {
		return
	}
	inLoop := func(pos token.Pos) ast.Node {
		var innermost ast.Node
		for _, l := range loops {
			if l.Pos() <= pos && pos < l.End() {
				if innermost == nil || l.Pos() > innermost.Pos() {
					innermost = l
				}
			}
		}
		return innermost
	}
	checkStore(p, fd, crossing, inLoop)
}

func checkStore(p *Pass, fd *ast.FuncDecl, crossing map[*types.Named]bool, inLoop func(token.Pos) ast.Node) {
	report := func(val ast.Expr, fieldName string) {
		id, ok := ast.Unparen(val).(*ast.Ident)
		if !ok {
			return // fresh call results and literals are per-instance
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || !isCriticalPtr(p, v.Type()) {
			return
		}
		loop := inLoop(id.Pos())
		if loop == nil {
			return
		}
		if v.Pos() >= loop.Pos() && v.Pos() < loop.End() {
			return // declared inside the loop: fresh per iteration
		}
		p.Reportf(id.Pos(), "%s (%s) is declared outside this loop but stored into goroutine-crossing field %s each iteration: every launched goroutine would share it; derive one per iteration (e.g. rng.Source.Split)", id.Name, v.Type(), fieldName)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			t := p.Info.TypeOf(n)
			if t == nil {
				return true
			}
			named, ok := t.(*types.Named)
			if !ok || !crossing[named] {
				return true
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			for i, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						report(kv.Value, id.Name)
					}
					continue
				}
				if i < st.NumFields() {
					report(el, st.Field(i).Name())
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				t := p.Info.TypeOf(sel.X)
				if t == nil {
					continue
				}
				if ptr, ok := t.Underlying().(*types.Pointer); ok {
					t = ptr.Elem()
				}
				if named, ok := t.(*types.Named); ok && crossing[named] {
					report(n.Rhs[i], sel.Sel.Name)
				}
			}
		}
		return true
	})
}
