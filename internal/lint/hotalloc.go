package lint

import (
	"go/ast"
	"go/types"
)

// hotEntry names one event-loop entry point: a method on a receiver type
// from which the whole per-event call tree is reachable.
type hotEntry struct {
	recv   string
	method string
}

// hotEntries lists, per package, the entry points of the allocation-free
// hot paths. Everything statically reachable from an entry through
// same-package calls is "hot": the simulators execute those functions once
// per discrete event (millions of times per run), the simplex once per
// pivot, and the Gibbs evaluation once per dual-descent step, so a single
// allocation there dominates the profile. Cold setup/teardown (newEngine,
// Run, Solve's tableau construction, Enumerate) is not reachable from the
// entries and stays unconstrained.
var hotEntries = map[string][]hotEntry{
	"econcast/internal/sim": {
		{recv: "engine", method: "run"},
		// The sharded engine's per-event path: the coordinator's round
		// driver (shard pick, lookahead bound, heap repair) and the shard
		// drain loop, from which dispatch and every handler are reachable.
		{recv: "coordinator", method: "step"},
		{recv: "shardRuntime", method: "run"},
	},
	"econcast/internal/asim": {
		{recv: "broker", method: "loop"},
		{recv: "nodeRuntime", method: "run"},
	},
	"econcast/internal/lp": {
		{recv: "tableau", method: "iterate"},
		{recv: "tableau", method: "pivot"},
	},
	"econcast/internal/statespace": {
		{recv: "Space", method: "Gibbs"},
	},
	// The fault-schedule queries run once per simulator event when fault
	// injection is on; they must not spoil the engines' 0 allocs/op.
	"econcast/internal/faults": {
		{recv: "Set", method: "Alive"},
		{recv: "Set", method: "Silenced"},
		{recv: "Set", method: "HarvestScale"},
		{recv: "Set", method: "DropRx"},
		{recv: "Set", method: "Drift"},
	},
}

// HotAlloc flags allocation sites — make, append, and map literals —
// inside the simulators' event-loop call trees. The event loops are
// required to be allocation-free in steady state (see
// internal/sim/alloc_test.go); an allocation that is genuinely one-time
// or amortized earns a per-line `//lint:allow hotalloc <reason>`.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "allocation (make/append/map literal) inside a simulator event loop",
	Run: func(p *Pass) {
		entries, ok := hotEntries[p.Path]
		if !ok {
			return
		}

		decls := funcDecls(p)

		// Seed the worklist with the entry methods.
		hot := make(map[*types.Func]bool)
		var work []*types.Func
		for fn, fd := range decls {
			name := recvTypeName(fd)
			for _, e := range entries {
				if name == e.recv && fd.Name.Name == e.method {
					hot[fn] = true
					work = append(work, fn)
				}
			}
		}

		// Transitive closure over same-package static calls: any helper the
		// event loop calls is itself hot.
		for len(work) > 0 {
			fn := work[len(work)-1]
			work = work[:len(work)-1]
			ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(p.Info, call)
				if callee == nil || hot[callee] {
					return true
				}
				if _, ok := decls[callee]; ok {
					hot[callee] = true
					work = append(work, callee)
				}
				return true
			})
		}

		for fn := range hot {
			fd := decls[fn]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
						if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
							switch b.Name() {
							case "make", "append":
								p.Reportf(n.Pos(), "%s in hot path %s; hoist the allocation out of the event loop or add //lint:allow hotalloc with a justification", b.Name(), fd.Name.Name)
							}
						}
					}
				case *ast.CompositeLit:
					t := p.Info.TypeOf(n)
					if t == nil {
						return true
					}
					if _, isMap := t.Underlying().(*types.Map); isMap {
						p.Reportf(n.Pos(), "map literal in hot path %s; hoist the allocation out of the event loop or add //lint:allow hotalloc with a justification", fd.Name.Name)
					}
				}
				return true
			})
		}
	},
}

// funcDecls indexes the package's function and method declarations with
// bodies by their type-checker object. Several analyzers (hotalloc,
// seedflow, sharedstate) use it to chase same-package static calls.
func funcDecls(p *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// recvTypeName returns the bare receiver type name of a method
// declaration ("engine" for `func (e *engine) step()`), or "".
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
