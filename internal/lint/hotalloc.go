package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"econcast/internal/lint/flow"
)

// hotEntry names one event-loop entry point: a method on a receiver type
// from which the whole per-event call tree is reachable.
type hotEntry struct {
	recv   string
	method string
}

// hotEntries lists, per package, the entry points of the allocation-free
// hot paths. Everything statically reachable from an entry through
// same-package calls is "hot": the simulators execute those functions once
// per discrete event (millions of times per run), the simplex once per
// pivot, and the Gibbs evaluation once per dual-descent step, so a single
// allocation there dominates the profile. Cold setup/teardown (newEngine,
// Run, Solve's tableau construction, Enumerate) is not reachable from the
// entries and stays unconstrained.
var hotEntries = map[string][]hotEntry{
	"econcast/internal/sim": {
		{recv: "engine", method: "run"},
		// The sharded engine's per-event path: the coordinator's round
		// driver (shard pick, lookahead bound, heap repair) and the shard
		// drain loop, from which dispatch and every handler are reachable.
		{recv: "coordinator", method: "step"},
		{recv: "shardRuntime", method: "run"},
		// The parallel engine's per-window path: the worker loop and the
		// shard window drain it calls run once per window (thousands of
		// times per second across the pool), and the barrier bookkeeping
		// (boundary scan, order rebuild) runs once per window on the main
		// goroutine — all must stay allocation-free in steady state.
		{recv: "parCoordinator", method: "worker"},
		{recv: "parCoordinator", method: "rebuildOrder"},
		{recv: "shardRuntime", method: "window"},
	},
	"econcast/internal/asim": {
		{recv: "broker", method: "loop"},
		{recv: "nodeRuntime", method: "run"},
	},
	"econcast/internal/lp": {
		{recv: "tableau", method: "iterate"},
		{recv: "tableau", method: "pivot"},
	},
	"econcast/internal/statespace": {
		{recv: "Space", method: "Gibbs"},
	},
	// The fault-schedule queries run once per simulator event when fault
	// injection is on; they must not spoil the engines' 0 allocs/op.
	"econcast/internal/faults": {
		{recv: "Set", method: "Alive"},
		{recv: "Set", method: "Silenced"},
		{recv: "Set", method: "HarvestScale"},
		{recv: "Set", method: "DropRx"},
		{recv: "Set", method: "Drift"},
	},
	// The serving layer's admission decision runs once per arrival even
	// at full overload — it is the path that must stay fast precisely
	// when the process is drowning, so shedding and queue-full rejection
	// must not allocate.
	"econcast/internal/serve": {
		{recv: "gate", method: "admit"},
	},
}

// HotAlloc flags allocation sites inside the simulators' event-loop call
// trees: make, append, and map literals (as before), plus — now that the
// analysis is flow-sensitive over internal/lint/flow — capturing
// function literals, values boxed into empty interfaces at call sites,
// and loop-invariant makes that provably do not escape their iteration,
// which earn a "hoistable" finding with a machine-applicable fix for the
// make([]T, 0, cap) shape. The event loops are required to be
// allocation-free in steady state (see internal/sim/alloc_test.go); an
// allocation that is genuinely one-time or amortized earns a per-line
// `//lint:allow hotalloc <reason>`.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "allocation (make/append/map literal/closure/interface boxing) inside a simulator event loop",
	Run: func(p *Pass) {
		entries, ok := hotEntries[p.Path]
		if !ok {
			return
		}

		decls := funcDecls(p)

		// Seed the worklist with the entry methods.
		hot := make(map[*types.Func]bool)
		var work []*types.Func
		for fn, fd := range decls {
			name := recvTypeName(fd)
			for _, e := range entries {
				if name == e.recv && fd.Name.Name == e.method {
					hot[fn] = true
					work = append(work, fn)
				}
			}
		}

		// Transitive closure over same-package static calls: any helper the
		// event loop calls is itself hot.
		for len(work) > 0 {
			fn := work[len(work)-1]
			work = work[:len(work)-1]
			ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(p.Info, call)
				if callee == nil || hot[callee] {
					return true
				}
				if _, ok := decls[callee]; ok {
					hot[callee] = true
					work = append(work, callee)
				}
				return true
			})
		}

		for fn := range hot {
			checkHotFunc(p, decls[fn])
		}
	},
}

// checkHotFunc reports the allocation sites of one hot function.
func checkHotFunc(p *Pass, fd *ast.FuncDecl) {
	hoist := hoistableMakes(p, fd)
	panicSpans := panicArgSpans(fd)
	inPanicArg := func(pos token.Pos) bool {
		for _, s := range panicSpans {
			if pos > s[0] && pos < s[1] {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make", "append":
						if h, ok := hoist[n]; ok {
							p.ReportfFix(n.Pos(), h.fix, "make in hot path %s is loop-invariant and does not escape its iteration; hoist it above the loop and reuse the buffer (%s)", fd.Name.Name, h.how)
						} else {
							p.Reportf(n.Pos(), "%s in hot path %s; hoist the allocation out of the event loop or add //lint:allow hotalloc with a justification", b.Name(), fd.Name.Name)
						}
					}
					return true
				}
			}
			if !inPanicArg(n.Pos()) {
				checkBoxing(p, fd, n)
			}
		case *ast.CompositeLit:
			t := p.Info.TypeOf(n)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				p.Reportf(n.Pos(), "map literal in hot path %s; hoist the allocation out of the event loop or add //lint:allow hotalloc with a justification", fd.Name.Name)
			}
		case *ast.FuncLit:
			if !inPanicArg(n.Pos()) && capturesVariables(p, n) {
				p.Reportf(n.Pos(), "capturing function literal in hot path %s allocates a closure per event; predeclare the function or hoist the capture out of the event loop", fd.Name.Name)
			}
		}
		return true
	})
}

// panicArgSpans collects the argument spans of builtin panic calls: a
// panic aborts the run, so an allocation feeding one is not a
// steady-state cost.
func panicArgSpans(fd *ast.FuncDecl) [][2]token.Pos {
	var spans [][2]token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPanicCall(call) {
			spans = append(spans, [2]token.Pos{call.Lparen, call.Rparen})
		}
		return true
	})
	return spans
}

// checkBoxing reports non-interface values bound to empty-interface
// parameters (or converted with any(x)): each binding allocates to box
// the value. Spread calls (f(xs...)) pass an existing slice and box
// nothing new.
func checkBoxing(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	if call.Ellipsis.IsValid() {
		return
	}
	tv, ok := p.Info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversion: any(x) with a concrete x boxes.
		if len(call.Args) == 1 && isEmptyInterface(tv.Type) && boxes(p, call.Args[0]) {
			p.Reportf(call.Args[0].Pos(), "value boxes into an empty interface in hot path %s; keep the concrete type or add //lint:allow hotalloc with a justification", fd.Name.Name)
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			sl, ok := last.Underlying().(*types.Slice)
			if !ok {
				continue
			}
			pt = sl.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if isEmptyInterface(pt) && boxes(p, arg) {
			p.Reportf(arg.Pos(), "argument boxes into an empty interface in hot path %s; each binding allocates — avoid the interface{} sink on the event path or add //lint:allow hotalloc with a justification", fd.Name.Name)
		}
	}
}

// boxes reports whether passing arg to an empty-interface slot
// allocates: its type is concrete (non-interface) and not untyped nil.
func boxes(p *Pass, arg ast.Expr) bool {
	tv, ok := p.Info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	if types.IsInterface(tv.Type) {
		return false
	}
	return true
}

func isEmptyInterface(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	return ok && iface.Empty()
}

// capturesVariables reports whether lit closes over any variable
// declared outside it (other than package-level state): only capturing
// literals materialize a closure object at run time.
func capturesVariables(p *Pass, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level: no capture needed
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			captures = true
		}
		return true
	})
	return captures
}

// hoistableMake describes one loop-invariant, iteration-local make.
type hoistableMake struct {
	fix *Fix   // non-nil for the make([]T, 0, cap) shape
	how string // human hint for the message
}

// hoistableMakes finds `x := make(...)` statements inside loops of fd
// whose arguments are loop-invariant (every reaching definition of every
// argument variable lies outside the loop) and whose result provably
// does not escape its iteration. Those allocations can always be
// replaced by a buffer reused across iterations; for the
// make([]T, 0, cap) shape the rewrite is mechanical (hoist the make,
// reslice to x[:0] in the loop) and returned as a fix.
func hoistableMakes(p *Pass, fd *ast.FuncDecl) map[*ast.CallExpr]hoistableMake {
	found := make(map[*ast.CallExpr]hoistableMake)

	// Innermost enclosing loop for every node of interest.
	var g *flow.Graph
	var reach *flow.Reach
	build := func() {
		if g != nil {
			return
		}
		g = flow.Build(fd.Body)
		var fields []*ast.FieldList
		fields = append(fields, fd.Recv)
		if fd.Type.Params != nil {
			fields = append(fields, fd.Type.Params)
		}
		if fd.Type.Results != nil {
			fields = append(fields, fd.Type.Results)
		}
		reach = flow.Reaching(g, p.Info, fields...)
	}

	var loops []ast.Node // enclosing loop stack
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, n)
			ast.Inspect(n.Body, visit)
			loops = loops[:len(loops)-1]
			return false
		case *ast.RangeStmt:
			loops = append(loops, n)
			ast.Inspect(n.Body, visit)
			loops = loops[:len(loops)-1]
			return false
		case *ast.FuncLit:
			return false // a literal's body is its own scope
		case *ast.AssignStmt:
			if len(loops) == 0 {
				return true
			}
			loop := loops[len(loops)-1]
			if h, call, ok := hoistableAssign(p, loop, n, &reach, build); ok {
				found[call] = h
			}
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
	return found
}

// hoistableAssign decides whether one in-loop assignment is a hoistable
// make.
func hoistableAssign(p *Pass, loop ast.Node, as *ast.AssignStmt, reach **flow.Reach, build func()) (hoistableMake, *ast.CallExpr, bool) {
	if as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return hoistableMake{}, nil, false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok || lhs.Name == "_" {
		return hoistableMake{}, nil, false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return hoistableMake{}, nil, false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return hoistableMake{}, nil, false
	}
	if b, ok := p.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "make" {
		return hoistableMake{}, nil, false
	}

	build()

	// Loop-invariant arguments: every variable read by a make argument
	// must have all its reaching definitions outside the loop.
	for _, arg := range call.Args[1:] {
		invariant := true
		ast.Inspect(arg, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok || !invariant {
				return invariant
			}
			v, ok := p.Info.Uses[id].(*types.Var)
			if !ok || v.IsField() {
				return true
			}
			defs, ok := (*reach).DefsAt(v, id.Pos())
			if !ok {
				invariant = false
				return false
			}
			for _, d := range defs {
				if d.Node != nil && d.Node.Pos() >= loop.Pos() && d.Node.End() <= loop.End() {
					invariant = false
					return false
				}
			}
			return true
		})
		if !invariant {
			return hoistableMake{}, nil, false
		}
	}

	// Iteration-local result: the made value must not escape the loop
	// body (returned, stored elsewhere, captured, appended into an
	// accumulator...).
	v, ok := p.Info.Defs[lhs].(*types.Var)
	if !ok {
		return hoistableMake{}, nil, false
	}
	body := loopBody(loop)
	if esc := flow.EscapesRegion(p.Info, body, v); esc.Class != flow.Local {
		return hoistableMake{}, nil, false
	}

	h := hoistableMake{how: "reuse a preallocated buffer across iterations"}
	if fix, ok := buildHoistFix(p, loop, as, call, lhs); ok {
		h.fix = fix
		h.how = "x = x[:0] each iteration"
	}
	return h, call, true
}

func loopBody(loop ast.Node) *ast.BlockStmt {
	switch l := loop.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// buildHoistFix constructs the mechanical rewrite for the
// make([]T, 0, cap) shape: hoist the definition above the loop and
// replace the in-loop statement with a reslice.
func buildHoistFix(p *Pass, loop ast.Node, as *ast.AssignStmt, call *ast.CallExpr, lhs *ast.Ident) (*Fix, bool) {
	// Only a zero-length slice make is mechanically reusable: non-zero
	// lengths rely on fresh zeroing, and maps need a clear loop.
	if len(call.Args) != 3 {
		return nil, false
	}
	if _, isSlice := p.Info.TypeOf(call).Underlying().(*types.Slice); !isSlice {
		return nil, false
	}
	ltv, ok := p.Info.Types[call.Args[1]]
	if !ok || ltv.Value == nil || ltv.Value.String() != "0" {
		return nil, false
	}

	tf := p.Fset.File(loop.Pos())
	if tf == nil {
		return nil, false
	}
	loopPos := p.Fset.Position(loop.Pos())

	var rendered bytes.Buffer
	if err := printer.Fprint(&rendered, p.Fset, as); err != nil {
		return nil, false
	}
	indent := strings.Repeat("\t", loopPos.Column-1)

	insertAt := tf.Offset(loop.Pos())
	return &Fix{
		Message: "hoist the make above the loop and reslice each iteration",
		Edits: []TextEdit{
			{
				File:  tf.Name(),
				Start: insertAt,
				End:   insertAt,
				New:   rendered.String() + "\n" + indent,
			},
			{
				File:  tf.Name(),
				Start: tf.Offset(as.Pos()),
				End:   tf.Offset(as.End()),
				New:   lhs.Name + " = " + lhs.Name + "[:0]",
			},
		},
	}, true
}

// funcDecls indexes the package's function and method declarations with
// bodies by their type-checker object. Several analyzers (hotalloc,
// seedflow, sharedstate) use it to chase same-package static calls.
func funcDecls(p *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// recvTypeName returns the bare receiver type name of a method
// declaration ("engine" for `func (e *engine) step()`), or "".
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
