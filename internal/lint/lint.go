// Package lint implements econlint, a project-specific static-analysis
// suite that guards the determinism and correctness invariants this
// reproduction depends on. Every figure and oracle bound in the repo
// assumes the simulators are bit-for-bit reproducible from a seed
// (internal/asim promises "exactly reproducible despite the concurrency");
// these analyzers make that invariant machine-checked instead of
// conventional.
//
// The suite is built only on the standard library (go/parser, go/ast,
// go/types); it deliberately does not depend on golang.org/x/tools.
//
// Analyzers:
//
//   - maprange: `for … range` over a map in a deterministic package,
//     unless the loop body is provably order-insensitive.
//   - wallclock: time.Now / time.Sleep / math/rand outside internal/rng.
//   - floateq: == / != between floating-point operands outside approved
//     epsilon-comparison helpers.
//   - rawgoroutine: `go` statements outside internal/asim,
//     internal/testbed, and internal/sweep, the only packages licensed to
//     spawn concurrency.
//   - errdrop: discarded error return values.
//   - hotalloc: make/append/map-literal allocation sites reachable from
//     the simulators' event loops, which must stay allocation-free in
//     steady state.
//
// # Suppressions
//
// A finding can be silenced at the site with a per-line comment, either
// trailing the offending line or on its own line immediately above it:
//
//	//lint:allow <name>[,<name>...] [reason]
//
// maprange additionally honours the shorthand
//
//	//lint:ordered [reason]
//
// which asserts the loop body has been audited to be iteration-order
// insensitive. Suppressions apply to exactly one line; there is no
// file- or package-wide escape hatch.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer report.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the canonical "file:line: [name] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Path     string // import path the package was checked under
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{MapRange, WallClock, FloatEq, RawGoroutine, ErrDrop, HotAlloc}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Check runs the analyzers over the packages, applies per-line
// suppressions, and returns the surviving findings sorted by position.
func Check(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var all []Finding
	for _, pkg := range pkgs {
		sup := suppressions(pkg.Fset, pkg.Files)
		var raw []Finding
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				findings: &raw,
			}
			a.Run(pass)
		}
		for _, f := range raw {
			if sup.allows(f.Pos.Filename, f.Pos.Line, f.Analyzer) {
				continue
			}
			all = append(all, f)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return all
}

// suppTable maps file -> line -> analyzer names allowed on that line.
type suppTable map[string]map[int]map[string]bool

func (s suppTable) allows(file string, line int, analyzer string) bool {
	return s[file][line][analyzer]
}

func (s suppTable) add(file string, line int, analyzer string) {
	byLine, ok := s[file]
	if !ok {
		byLine = make(map[int]map[string]bool)
		s[file] = byLine
	}
	names, ok := byLine[line]
	if !ok {
		names = make(map[string]bool)
		byLine[line] = names
	}
	names[analyzer] = true
}

// suppressions scans comments for //lint: directives. Each directive
// covers its own line (trailing form) and the next line (standalone form).
func suppressions(fset *token.FileSet, files []*ast.File) suppTable {
	tab := make(suppTable)
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				var names []string
				switch {
				case text == "ordered" || strings.HasPrefix(text, "ordered "):
					names = []string{MapRange.Name}
				case strings.HasPrefix(text, "allow "):
					list, _, _ := strings.Cut(strings.TrimPrefix(text, "allow "), " ")
					names = strings.Split(list, ",")
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				for _, n := range names {
					n = strings.TrimSpace(n)
					if n == "" {
						continue
					}
					tab.add(pos.Filename, pos.Line, n)
					tab.add(pos.Filename, pos.Line+1, n)
				}
			}
		}
	}
	return tab
}

// isFloat reports whether t's underlying type is a floating-point basic
// type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// pkgNameOf resolves an identifier used as a package qualifier, returning
// the imported package path, or "".
func pkgNameOf(info *types.Info, e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// calleeFunc resolves the *types.Func a call invokes, or nil for
// builtins, conversions, and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
