// Package lint implements econlint, a project-specific static-analysis
// suite that guards the determinism and correctness invariants this
// reproduction depends on. Every figure and oracle bound in the repo
// assumes the simulators are bit-for-bit reproducible from a seed
// (internal/asim promises "exactly reproducible despite the concurrency");
// these analyzers make that invariant machine-checked instead of
// conventional.
//
// The suite is built only on the standard library (go/parser, go/ast,
// go/types); it deliberately does not depend on golang.org/x/tools.
//
// Analyzers:
//
//   - maprange: `for … range` over a map in a deterministic package,
//     unless the loop body is provably order-insensitive.
//   - wallclock: time.Now / time.Sleep / math/rand outside internal/rng.
//   - floateq: == / != between floating-point operands outside approved
//     epsilon-comparison helpers.
//   - rawgoroutine: `go` statements outside internal/asim,
//     internal/testbed, and internal/sweep, the only packages licensed to
//     spawn concurrency.
//   - errdrop: discarded error return values.
//   - hotalloc: make/append/map-literal allocation sites reachable from
//     the simulators' event loops, which must stay allocation-free in
//     steady state.
//   - chandir: channels crossing the asim/testbed broker-node boundary
//     must be declared with a direction, and select is confined to the
//     licensed event loops, so the request-reply discipline that makes
//     the concurrent simulator deterministic is type-enforced.
//   - seedflow: every seed reaching rng.New, rng.DeriveSeed's base, a
//     Seed struct field, or a seed-named parameter must derive from
//     rng.DeriveSeed (or be a constant / already-derived value), never
//     from additive or xor arithmetic, which can collide.
//   - sharedstate: a mutable determinism-critical pointer (*rng.Source,
//     *stats.Accumulator, ...) must not be shared across goroutines, by
//     closure capture or by storing one value into several
//     goroutine-crossing structs.
//   - unitflow: unit/dimension flow analysis over the simulator's
//     physical quantities (seconds, joules, watts, meters); mixing
//     dimensions in arithmetic is reported unless annotated.
//   - shardown: //lint:owner role domains are enforced — state owned by
//     one goroutine role must not be touched from another except through
//     a declared //lint:handoff boundary.
//   - shardflow: the sharded engine's detach/eager-fix discipline is
//     proven on the control-flow graph (internal/lint/flow): drains
//     dominated by their detach, cross-shard pushes eagerly fixed on
//     every path, shard methods fenced off the coordinator's SoA caches
//     and control scalars.
//
// # Suppressions
//
// A finding can be silenced at the site with a per-line comment, either
// trailing the offending line or on its own line immediately above it:
//
//	//lint:allow <name>[,<name>...] [reason]
//
// maprange additionally honours the shorthand
//
//	//lint:ordered [reason]
//
// which asserts the loop body has been audited to be iteration-order
// insensitive. A trailing directive covers exactly its own line; a
// standalone directive covers its own line and the next one. There is no
// file- or package-wide escape hatch, and a directive that no longer
// suppresses anything is itself reported by the suppression audit
// (AuditSuppressions, `econlint -audit-suppressions`).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"econcast/internal/sweep"
)

// Finding is one analyzer report. Fixes, when non-empty, carries
// machine-applicable edits that resolve the finding (see ApplyFixes);
// they do not participate in sorting, rendering, or baseline identity.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Fixes    []Fix
}

// String renders the canonical "file:line: [name] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Path     string // import path the package was checked under
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Owners is the module-wide //lint:owner annotation table, collected
	// incrementally by the Loader as packages (including dependencies)
	// are type-checked. May be nil for hand-built passes.
	Owners *Owners

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportfFix records a finding at pos carrying a suggested fix. A nil
// fix degrades to Reportf.
func (p *Pass) ReportfFix(pos token.Pos, fix *Fix, format string, args ...any) {
	f := Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	}
	if fix != nil {
		f.Fixes = []Fix{*fix}
	}
	*p.findings = append(*p.findings, f)
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{MapRange, WallClock, FloatEq, RawGoroutine, ErrDrop, HotAlloc, ChanDir, SeedFlow, SharedState, UnitFlow, ShardOwn, ShardFlow}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Check runs the analyzers over the packages, applies per-line
// suppressions, and returns the surviving findings sorted by position.
func Check(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var all []Finding
	for _, pkg := range pkgs {
		all = append(all, checkPkg(pkg, analyzers)...)
	}
	sortFindings(all)
	return all
}

// CheckParallel is Check fanned out per package on the internal/sweep
// pool. Analysis of one package is pure (it only reads the type-checked
// ASTs) and the merged findings are fully sorted, so the output is
// byte-identical to a serial run at any worker count. workers <= 0
// selects GOMAXPROCS.
func CheckParallel(workers int, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	per, err := sweep.Map(workers, pkgs, func(i int, pkg *Package) ([]Finding, error) {
		return checkPkg(pkg, analyzers), nil
	})
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, fs := range per {
		all = append(all, fs...)
	}
	sortFindings(all)
	return all, nil
}

// checkPkg runs the analyzers over one package and applies its
// suppressions.
func checkPkg(pkg *Package, analyzers []*Analyzer) []Finding {
	sup := suppressions(pkg.Fset, pkg.Files)
	var kept []Finding
	for _, f := range rawFindings(pkg, analyzers) {
		if sup.allows(f.Pos.Filename, f.Pos.Line, f.Analyzer) {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

// rawFindings runs the analyzers over one package without applying
// suppressions.
func rawFindings(pkg *Package, analyzers []*Analyzer) []Finding {
	var raw []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Path:     pkg.Path,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Owners:   pkg.Owners,
			findings: &raw,
		}
		a.Run(pass)
	}
	return raw
}

// sortFindings orders findings by position, then analyzer, then message.
// The message tiebreak matters for byte-identical output: an analyzer that
// collects sites through a map (e.g. hotalloc's closure) may report two
// findings on one line in either order.
func sortFindings(all []Finding) {
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// StaleSuppression is the pseudo-analyzer name under which
// AuditSuppressions reports directives that no longer suppress anything.
const StaleSuppression = "stale-suppression"

// UnjustifiedSuppression is the pseudo-analyzer name under which
// AuditSuppressions reports directives still carrying the "TODO:
// justify" stub that suppressionFix inserts: the autofix buys a clean
// run, not a permanent exemption, and the audit fails until a human
// replaces the stub with a real reason.
const UnjustifiedSuppression = "unjustified-suppression"

// justifyStub is the marker suppressionFix plants in generated
// directives; its presence means nobody has written the justification.
const justifyStub = "TODO: justify"

// AuditSuppressions reruns the analyzers without applying suppressions
// and reports every //lint: directive whose covered lines produce no
// finding it names — dead weight that would silently mask a future
// regression. Run it with the full suite: a directive naming an analyzer
// that is not in the run set is indistinguishable from a stale one.
func AuditSuppressions(workers int, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	per, err := sweep.Map(workers, pkgs, func(i int, pkg *Package) ([]Finding, error) {
		return auditPkg(pkg, analyzers), nil
	})
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, fs := range per {
		all = append(all, fs...)
	}
	sortFindings(all)
	return all, nil
}

func auditPkg(pkg *Package, analyzers []*Analyzer) []Finding {
	hits := make(suppTable)
	for _, f := range rawFindings(pkg, analyzers) {
		hits.add(f.Pos.Filename, f.Pos.Line, f.Analyzer)
	}
	var stale []Finding
	for _, d := range directives(pkg.Fset, pkg.Files) {
		live := false
		for _, n := range d.Names {
			if hits.allows(d.Pos.Filename, d.Pos.Line, n) ||
				(d.Standalone && hits.allows(d.Pos.Filename, d.Pos.Line+1, n)) {
				live = true
				break
			}
		}
		switch {
		case !live:
			stale = append(stale, Finding{
				Pos:      d.Pos,
				Analyzer: StaleSuppression,
				Message:  fmt.Sprintf("suppression %q no longer matches any finding; delete it", d.Text),
			})
		case strings.Contains(d.Text, justifyStub):
			stale = append(stale, Finding{
				Pos:      d.Pos,
				Analyzer: UnjustifiedSuppression,
				Message:  fmt.Sprintf("suppression %q still carries the generated %q stub; write the real justification", d.Text, justifyStub),
			})
		}
	}
	return stale
}

// suppTable maps file -> line -> analyzer names allowed on that line.
type suppTable map[string]map[int]map[string]bool

func (s suppTable) allows(file string, line int, analyzer string) bool {
	return s[file][line][analyzer]
}

func (s suppTable) add(file string, line int, analyzer string) {
	byLine, ok := s[file]
	if !ok {
		byLine = make(map[int]map[string]bool)
		s[file] = byLine
	}
	names, ok := byLine[line]
	if !ok {
		names = make(map[string]bool)
		byLine[line] = names
	}
	names[analyzer] = true
}

// Directive is one parsed //lint:allow or //lint:ordered comment.
type Directive struct {
	Pos        token.Position
	Names      []string // analyzer names the directive allows
	Standalone bool     // own-line comment: also covers the next line
	Text       string   // the raw comment text
}

// directiveContent is the parsed payload of one //lint: comment,
// independent of where it sits in the source.
type directiveContent struct {
	Kind   string   // "allow", "ordered", "owner", "handoff", or "" for non-directives
	Names  []string // allow: analyzer names; ordered: the maprange alias
	Domain string   // owner/handoff: the ownership domain
}

// parseDirective parses a raw comment text ("//lint:allow floateq why")
// into its directive content. Comments that are not //lint: directives,
// and directives with an empty payload, parse to the zero content. The
// grammar is shared by the suppression table, the suppression audit, and
// the ownership-annotation scan, and is fuzzed by FuzzParseDirectives.
func parseDirective(text string) directiveContent {
	body, ok := strings.CutPrefix(text, "//lint:")
	if !ok {
		return directiveContent{}
	}
	switch {
	case body == "ordered" || strings.HasPrefix(body, "ordered "):
		return directiveContent{Kind: "ordered", Names: []string{MapRange.Name}}
	case strings.HasPrefix(body, "allow "):
		list, _, _ := strings.Cut(strings.TrimPrefix(body, "allow "), " ")
		var names []string
		for _, n := range strings.Split(list, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		if len(names) == 0 {
			return directiveContent{}
		}
		return directiveContent{Kind: "allow", Names: names}
	case strings.HasPrefix(body, "owner "), strings.HasPrefix(body, "handoff "):
		kind, rest, _ := strings.Cut(body, " ")
		domain := strings.TrimSpace(rest)
		if i := strings.IndexByte(domain, ' '); i >= 0 {
			domain = domain[:i] // anything after the domain is a free-form reason
		}
		if domain == "" {
			return directiveContent{}
		}
		return directiveContent{Kind: kind, Domain: domain}
	}
	return directiveContent{}
}

// directives scans the files' comments for suppression directives
// (//lint:allow, //lint:ordered). A directive trailing code covers
// exactly its own line; a standalone directive (nothing but the comment
// on its line) additionally covers the next line. Ownership annotations
// (//lint:owner, //lint:handoff) are not suppressions and are collected
// separately (see Owners).
func directives(fset *token.FileSet, files []*ast.File) []Directive {
	var ds []Directive
	for _, f := range files {
		var code map[int]bool // lazily built per file
		for _, group := range f.Comments {
			for _, c := range group.List {
				d := parseDirective(c.Text)
				if d.Kind != "allow" && d.Kind != "ordered" {
					continue
				}
				if code == nil {
					code = codeLines(fset, f)
				}
				pos := fset.Position(c.Pos())
				ds = append(ds, Directive{
					Pos:        pos,
					Names:      d.Names,
					Standalone: !code[pos.Line],
					Text:       c.Text,
				})
			}
		}
	}
	return ds
}

// suppressions builds the per-line allow table from the files'
// directives.
func suppressions(fset *token.FileSet, files []*ast.File) suppTable {
	tab := make(suppTable)
	for _, d := range directives(fset, files) {
		for _, n := range d.Names {
			tab.add(d.Pos.Filename, d.Pos.Line, n)
			if d.Standalone {
				// Only a standalone comment extends to the next line: a
				// trailing directive silences the line it annotates, not
				// whatever happens to follow it.
				tab.add(d.Pos.Filename, d.Pos.Line+1, n)
			}
		}
	}
	return tab
}

// codeLines returns the set of lines on which some non-comment node of f
// starts or ends. A line comment on such a line trails code; on any other
// line it stands alone. (Line comments cannot precede code on their line.)
// Start lines must be recorded too: on header lines where no node ends —
// `for {`, a bare `select {` — an end-only scan would misread a trailing
// directive as standalone and leak it onto the next line.
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		case *ast.File:
			return true
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}

// isFloat reports whether t's underlying type is a floating-point basic
// type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// pkgNameOf resolves an identifier used as a package qualifier, returning
// the imported package path, or "".
func pkgNameOf(info *types.Info, e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// calleeFunc resolves the *types.Func a call invokes, or nil for
// builtins, conversions, and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
