package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UnitFlow checks dimensional consistency of the physically-typed
// quantities in the model: energies in Joules, powers in Watts, times
// in seconds vs. simulator ticks, packet counts and rates. Dimensions
// are seeded from the declarative registry in units.go and propagated
// through assignments, arithmetic, and call boundaries:
//
//   - mul/div compose dimensions (J / s = W);
//   - add/sub/compare require both sides to agree;
//   - assignments into registered fields, arguments to registered
//     parameters, composite literals, and returns from registered
//     functions must match the registered dimension.
//
// The lattice is three-valued — unknown, scalar (dimensionless
// constants and int conversions), known — and only a meeting of two
// known, different dimensions is reported, so unannotated code never
// flags. Result dimensions of unregistered same-package functions are
// inferred from their return statements when unambiguous, which is what
// carries dimensions interprocedurally beyond the registry seed.
var UnitFlow = &Analyzer{
	Name: "unitflow",
	Doc:  "mixed-dimension arithmetic or tick/second conflation between physically-typed quantities",
	Run:  runUnitFlow,
}

// dimVal is the unitflow lattice value of an expression.
type dimVal struct {
	kind byte // dimUnknown, dimScalar, or dimKnown
	d    Dim
}

const (
	dimUnknown byte = iota // no information; never flags
	dimScalar              // dimensionless; composes neutrally
	dimKnown               // carries d
)

func known(d Dim) dimVal { return dimVal{kind: dimKnown, d: d} }

var (
	unknownVal = dimVal{kind: dimUnknown}
	scalarVal  = dimVal{kind: dimScalar}
)

// uf is the per-package unitflow state.
type uf struct {
	p        *Pass
	decls    map[*types.Func]*ast.FuncDecl
	resMemo  map[*types.Func]dimVal // inferred result dims
	visiting map[*types.Func]bool   // inference recursion guard
	env      map[*types.Var]dimVal  // current function's local dims
	seeds    map[*types.Var]dimVal  // registry-declared parameter dims
	reported map[token.Pos]bool
}

func runUnitFlow(p *Pass) {
	u := &uf{
		p:        p,
		decls:    funcDecls(p),
		resMemo:  make(map[*types.Func]dimVal),
		visiting: make(map[*types.Func]bool),
		reported: make(map[token.Pos]bool),
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				u.checkFunc(fd)
			}
		}
	}
}

func (u *uf) report(pos token.Pos, format string, args ...any) {
	if u.reported[pos] {
		return
	}
	u.reported[pos] = true
	fix := suppressionFix(u.p, pos, "unitflow", "TODO: justify this dimension mix")
	u.p.ReportfFix(pos, fix, format, args...)
}

func (u *uf) checkFunc(fd *ast.FuncDecl) {
	u.env = make(map[*types.Var]dimVal)
	u.seeds = make(map[*types.Var]dimVal)
	u.seedParams(fd)
	// Two environment passes before reporting: dims flow forward through
	// assignments, so a second pass stabilizes vars first used above the
	// assignment that dims them (loop-carried state).
	u.buildEnv(fd.Body)
	u.buildEnv(fd.Body)

	resDim := u.declaredResultDim(fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			u.checkBinary(n)
		case *ast.AssignStmt:
			u.checkAssign(n)
		case *ast.CallExpr:
			u.checkCallArgs(n)
		case *ast.CompositeLit:
			u.checkComposite(n)
		case *ast.ReturnStmt:
			if resDim.kind == dimKnown && len(n.Results) == 1 {
				got := u.exprDim(n.Results[0])
				if got.kind == dimKnown && got.d != resDim.d {
					u.report(n.Results[0].Pos(), "%s returns %s but this value is %s", fd.Name.Name, resDim.d, got.d)
				}
			}
		}
		return true
	})
}

// seedParams installs registered parameter dimensions into the env.
func (u *uf) seedParams(fd *ast.FuncDecl) {
	base := funcKey(u.p.Pkg.Path(), fd)
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			v, ok := u.p.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if d, ok := parsedUnits[base+"."+name.Name]; ok {
				u.env[v] = known(d)
				u.seeds[v] = known(d)
			}
		}
	}
}

// declaredResultDim is the registered dimension of fd's sole result.
func (u *uf) declaredResultDim(fd *ast.FuncDecl) dimVal {
	if fd.Type.Results == nil || len(fd.Type.Results.List) != 1 || len(fd.Type.Results.List[0].Names) > 1 {
		return unknownVal
	}
	if d, ok := parsedUnits[funcKey(u.p.Pkg.Path(), fd)+".result"]; ok {
		return known(d)
	}
	return unknownVal
}

// buildEnv records local-variable dimensions from assignments without
// reporting. Later assignments overwrite: a reused temporary changes
// dimension legally.
func (u *uf) buildEnv(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			v := u.lhsVar(id)
			if v == nil {
				continue
			}
			if d := u.exprDim(as.Rhs[i]); d.kind == dimKnown {
				u.env[v] = d
			}
		}
		return true
	})
}

func (u *uf) lhsVar(id *ast.Ident) *types.Var {
	if v, ok := u.p.Info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := u.p.Info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

func binVerb(op token.Token) string {
	switch op {
	case token.ADD:
		return "add"
	case token.SUB:
		return "subtract"
	default:
		return "compare"
	}
}

func (u *uf) checkBinary(b *ast.BinaryExpr) {
	switch b.Op {
	case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
	default:
		return
	}
	x, y := u.exprDim(b.X), u.exprDim(b.Y)
	if x.kind != dimKnown || y.kind != dimKnown || x.d == y.d {
		return
	}
	msg := "cannot " + binVerb(b.Op) + " %s and %s"
	if tickSecondMix(x.d, y.d) {
		msg += "; ticks are multiplier intervals — convert with Protocol.TicksToSeconds / SecondsToTicks"
	}
	u.report(b.OpPos, msg, x.d, y.d)
}

// tickSecondMix reports the classic conflation: one side counts ticks
// where the other measures seconds.
func tickSecondMix(a, b Dim) bool {
	flip := func(d Dim) Dim { d.Tick, d.S = d.S, d.Tick; return d }
	return (a.Tick != 0 || b.Tick != 0) && (flip(a) == b)
}

func (u *uf) checkAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		want := u.lhsDeclaredDim(lhs)
		if want.kind != dimKnown {
			continue
		}
		got := u.exprDim(as.Rhs[i])
		if got.kind == dimKnown && got.d != want.d {
			u.report(as.Rhs[i].Pos(), "assigning %s value to %s, declared %s", got.d, exprLabel(lhs), want.d)
		}
	}
}

// lhsDeclaredDim is the *declared* (registered) dimension of an
// assignment target — a registry field, possibly behind indexing, or a
// registered parameter. Plain locals are inferred, not declared, so
// overwriting them is not an error.
func (u *uf) lhsDeclaredDim(lhs ast.Expr) dimVal {
	switch lhs := lhs.(type) {
	case *ast.SelectorExpr:
		return u.fieldDim(lhs)
	case *ast.IndexExpr:
		return u.lhsDeclaredDim(lhs.X)
	case *ast.Ident:
		// Registry-declared params keep their dimension; plain locals
		// float with whatever is assigned to them.
		if v, ok := u.p.Info.Uses[lhs].(*types.Var); ok {
			if d, ok := u.seeds[v]; ok {
				return d
			}
		}
	}
	return unknownVal
}

func (u *uf) checkCallArgs(call *ast.CallExpr) {
	fn := calleeFunc(u.p.Info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Variadic() {
		return
	}
	base := typesFuncKey(fn)
	for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
		param := sig.Params().At(i)
		want, ok := parsedUnits[base+"."+param.Name()]
		if !ok {
			continue
		}
		got := u.exprDim(call.Args[i])
		if got.kind == dimKnown && got.d != want {
			msg := "argument %s of %s is declared %s, got %s"
			if tickSecondMix(want, got.d) {
				msg += "; ticks are multiplier intervals — convert with Protocol.TicksToSeconds / SecondsToTicks"
			}
			u.report(call.Args[i].Pos(), msg, param.Name(), fn.Name(), want, got.d)
		}
	}
}

func (u *uf) checkComposite(cl *ast.CompositeLit) {
	tv, ok := u.p.Info.Types[cl]
	if !ok {
		return
	}
	named, ok := derefType(tv.Type).(*types.Named)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	typeKey := namedKey(named)
	for i, elt := range cl.Elts {
		var fieldName string
		value := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			id, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			fieldName, value = id.Name, kv.Value
		} else if i < st.NumFields() {
			fieldName = st.Field(i).Name()
		} else {
			continue
		}
		want, ok := parsedUnits[typeKey+"."+fieldName]
		if !ok {
			continue
		}
		got := u.exprDim(value)
		if got.kind == dimKnown && got.d != want {
			u.report(value.Pos(), "field %s.%s is declared %s, got %s", named.Obj().Name(), fieldName, want, got.d)
		}
	}
}

// exprDim infers the dimension of e. Pure: never reports.
func (u *uf) exprDim(e ast.Expr) dimVal {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return u.exprDim(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return u.exprDim(e.X)
		}
		return unknownVal
	case *ast.StarExpr:
		return u.exprDim(e.X)
	case *ast.BasicLit:
		return scalarVal
	case *ast.Ident:
		return u.identDim(e)
	case *ast.SelectorExpr:
		if d := u.fieldDim(e); d.kind == dimKnown {
			return d
		}
		// Qualified package-level const/var: model.Watt.
		if obj := u.p.Info.Uses[e.Sel]; obj != nil {
			if d, ok := objDim(obj); ok {
				return d
			}
		}
		return unknownVal
	case *ast.IndexExpr:
		// Registered slice dims apply elementwise.
		return u.exprDim(e.X)
	case *ast.SliceExpr:
		return u.exprDim(e.X)
	case *ast.BinaryExpr:
		return u.binaryDim(e)
	case *ast.CallExpr:
		return u.callDim(e)
	}
	return unknownVal
}

func (u *uf) identDim(id *ast.Ident) dimVal {
	obj := u.p.Info.Uses[id]
	if obj == nil {
		obj = u.p.Info.Defs[id]
	}
	switch obj := obj.(type) {
	case *types.Var:
		if d, ok := u.env[obj]; ok {
			return d
		}
	case *types.Const:
		if d, ok := objDim(obj); ok {
			return d
		}
		return scalarVal
	}
	return unknownVal
}

// objDim looks up a package-scope object in the registry.
func objDim(obj types.Object) (dimVal, bool) {
	if obj.Pkg() == nil {
		return unknownVal, false
	}
	if d, ok := parsedUnits[obj.Pkg().Path()+"."+obj.Name()]; ok {
		return known(d), true
	}
	return unknownVal, false
}

// fieldDim resolves a selector to a registered struct-field dimension.
func (u *uf) fieldDim(sel *ast.SelectorExpr) dimVal {
	s, ok := u.p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return unknownVal
	}
	named, ok := derefType(s.Recv()).(*types.Named)
	if !ok {
		return unknownVal
	}
	if d, ok := parsedUnits[namedKey(named)+"."+sel.Sel.Name]; ok {
		return known(d)
	}
	return unknownVal
}

func namedKey(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

func derefType(t types.Type) types.Type {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

func (u *uf) binaryDim(b *ast.BinaryExpr) dimVal {
	x, y := u.exprDim(b.X), u.exprDim(b.Y)
	switch b.Op {
	case token.MUL:
		return composeMul(x, y)
	case token.QUO:
		return composeDiv(x, y)
	case token.ADD, token.SUB:
		// Known + scalar keeps the known dim (offsets by dimensionless
		// literals are pervasive and legal); conflicting knowns are
		// reported by checkBinary, so yield unknown here.
		switch {
		case x.kind == dimKnown && y.kind == dimKnown:
			if x.d == y.d {
				return x
			}
			return unknownVal
		case x.kind == dimKnown && y.kind == dimScalar:
			return x
		case y.kind == dimKnown && x.kind == dimScalar:
			return y
		case x.kind == dimScalar && y.kind == dimScalar:
			return scalarVal
		}
		return unknownVal
	}
	return unknownVal
}

func composeMul(x, y dimVal) dimVal {
	switch {
	case x.kind == dimKnown && y.kind == dimKnown:
		return normDim(x.d.Mul(y.d))
	case x.kind == dimKnown && y.kind == dimScalar:
		return x
	case y.kind == dimKnown && x.kind == dimScalar:
		return y
	case x.kind == dimScalar && y.kind == dimScalar:
		return scalarVal
	}
	return unknownVal
}

func composeDiv(x, y dimVal) dimVal {
	switch {
	case x.kind == dimKnown && y.kind == dimKnown:
		return normDim(x.d.Div(y.d))
	case x.kind == dimKnown && y.kind == dimScalar:
		return x
	case x.kind == dimScalar && y.kind == dimKnown:
		return normDim(Dim{}.Div(y.d))
	case x.kind == dimScalar && y.kind == dimScalar:
		return scalarVal
	}
	return unknownVal
}

// normDim collapses a dimensionless product (W · 1/W) back to scalar.
func normDim(d Dim) dimVal {
	if d.IsZero() {
		return scalarVal
	}
	return known(d)
}

// callDim is the dimension of a call result: conversions preserve the
// operand's dimension (int conversions of unregistered counts are
// scalar), dimension-preserving math builtins pass through, registered
// results win, and unregistered same-package functions are inferred.
func (u *uf) callDim(call *ast.CallExpr) dimVal {
	// Type conversion?
	if tv, ok := u.p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return unknownVal
		}
		inner := u.exprDim(call.Args[0])
		if inner.kind == dimKnown {
			return inner
		}
		if basicInfo(u.p.Info.TypeOf(call.Args[0]))&types.IsInteger != 0 {
			return scalarVal
		}
		return unknownVal
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := u.p.Info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "len" || id.Name == "cap" {
				return scalarVal
			}
			return unknownVal
		}
	}
	fn := calleeFunc(u.p.Info, call)
	if fn == nil {
		return unknownVal
	}
	// Dimension-preserving math helpers.
	if fn.Pkg() != nil && fn.Pkg().Path() == "math" {
		switch fn.Name() {
		case "Abs", "Floor", "Ceil", "Round", "Trunc":
			if len(call.Args) == 1 {
				return u.exprDim(call.Args[0])
			}
		case "Max", "Min":
			if len(call.Args) == 2 {
				x, y := u.exprDim(call.Args[0]), u.exprDim(call.Args[1])
				if x.kind == dimKnown {
					return x
				}
				return y
			}
		}
		return unknownVal
	}
	return u.resultDim(fn)
}

func basicInfo(t types.Type) types.BasicInfo {
	if t == nil {
		return 0
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		return b.Info()
	}
	return 0
}

// typesFuncKey is funcKey for a *types.Func.
func typesFuncKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	key := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if name := recvTypeNameOf(sig.Recv().Type()); name != "" {
			key += name + "."
		}
	}
	return key + fn.Name()
}

// resultDim is the dimension of fn's sole result: registered, or
// inferred from the body of a same-package declaration whose return
// statements agree on a known dimension. Memoized; recursion yields
// unknown.
func (u *uf) resultDim(fn *types.Func) dimVal {
	if d, ok := parsedUnits[typesFuncKey(fn)+".result"]; ok {
		return known(d)
	}
	if d, ok := u.resMemo[fn]; ok {
		return d
	}
	fd, ok := u.decls[fn]
	if !ok || fd.Body == nil || u.visiting[fn] {
		return unknownVal
	}
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() != 1 {
		u.resMemo[fn] = unknownVal
		return unknownVal
	}
	u.visiting[fn] = true
	defer delete(u.visiting, fn)

	// Infer in a scratch env seeded only from the registry: the callee's
	// locals must not leak into the caller's env.
	savedEnv, savedSeeds := u.env, u.seeds
	u.env = make(map[*types.Var]dimVal)
	u.seeds = make(map[*types.Var]dimVal)
	u.seedParams(fd)
	u.buildEnv(fd.Body)

	res := unknownVal
	first := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // returns inside closures are not fn's returns
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		d := u.exprDim(ret.Results[0])
		if first {
			res, first = d, false
		} else if res != d {
			res = unknownVal
		}
		return true
	})
	u.env, u.seeds = savedEnv, savedSeeds
	if res.kind != dimKnown {
		res = unknownVal
	}
	u.resMemo[fn] = res
	return res
}

// exprLabel renders a short name for an assignment target in findings.
func exprLabel(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprLabel(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprLabel(e.X) + "[...]"
	case *ast.StarExpr:
		return exprLabel(e.X)
	case *ast.ParenExpr:
		return exprLabel(e.X)
	}
	return "expression"
}
