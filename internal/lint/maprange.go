package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// deterministicPkgs are the packages whose outputs must be bit-for-bit
// reproducible from a seed: iterating a map there in an order-sensitive
// way silently perturbs results between runs.
var deterministicPkgs = map[string]bool{
	"econcast/internal/sim":        true,
	"econcast/internal/oracle":     true,
	"econcast/internal/statespace": true,
	"econcast/internal/lp":         true,
	"econcast/internal/econcast":   true,
}

// MapRange flags `for … range` over map types in deterministic packages.
// Go randomizes map iteration order, so any loop whose effect depends on
// visit order makes results differ between identical runs. A loop is
// accepted without a suppression only when its body is conservatively
// provable to be order-insensitive (see orderInsensitive); otherwise the
// site needs a //lint:ordered audit comment.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "range over a map in a deterministic package without an order audit",
	Run: func(p *Pass) {
		if !deterministicPkgs[p.Path] {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.Info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if orderInsensitive(p, rs) {
					return true
				}
				p.Reportf(rs.Pos(), "map iteration order is random; sort the keys, prove the body order-insensitive, or add //lint:ordered with a justification")
				return true
			})
		}
	},
}

// orderInsensitive conservatively decides whether the loop body produces
// the same effect for every visit order. Accepted statement effects:
//
//   - reads and writes of the ranged map at the ranged key (each key is
//     visited exactly once), including delete(m, k);
//   - assignments to variables declared inside the loop body;
//   - commutative integer accumulation into outer variables (x++, x--,
//     x += e, and &^=-free bitwise compound assignments);
//   - control flow (if/switch/nested loops) over the above, provided no
//     function calls, sends, spawns, appends, early exits, or
//     floating-point accumulation appear anywhere in the body.
//
// Anything else — in particular float += (addition order changes the
// rounding), last-write-wins assignments, and arbitrary calls — makes the
// loop suspect and is reported.
func orderInsensitive(p *Pass, rs *ast.RangeStmt) bool {
	mapStr := types.ExprString(rs.X)
	keyName := ""
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		keyName = id.Name
	}

	// isRangedMapAtKey reports whether e is m[k] for the ranged m and k.
	isRangedMapAtKey := func(e ast.Expr) bool {
		ix, ok := ast.Unparen(e).(*ast.IndexExpr)
		if !ok || keyName == "" {
			return false
		}
		id, ok := ast.Unparen(ix.Index).(*ast.Ident)
		return ok && id.Name == keyName && types.ExprString(ix.X) == mapStr
	}

	// First pass: reject any node that could make order observable no
	// matter where it appears.
	safe := true
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if !safe {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := p.Info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "len", "cap", "min", "max", "real", "imag":
						return true
					case "delete":
						if len(n.Args) == 2 && isRangedMapAtKey(&ast.IndexExpr{X: n.Args[0], Index: n.Args[1]}) {
							return true
						}
					}
				}
			}
			safe = false
		case *ast.SendStmt, *ast.GoStmt, *ast.DeferStmt, *ast.ReturnStmt, *ast.BranchStmt, *ast.FuncLit:
			safe = false
		}
		return safe
	})
	if !safe {
		return false
	}

	// declaredInBody reports whether the identifier's object is declared
	// inside the loop (including the key/value variables themselves).
	declaredInBody := func(id *ast.Ident) bool {
		if id.Name == "_" {
			return true
		}
		obj := p.Info.ObjectOf(id)
		return obj != nil && rs.Pos() <= obj.Pos() && obj.Pos() < rs.End()
	}

	isCommutativeInt := func(e ast.Expr) bool {
		t := p.Info.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsInteger != 0
	}

	okLHS := func(e ast.Expr, op token.Token) bool {
		e = ast.Unparen(e)
		if isRangedMapAtKey(e) {
			return true // each key visited exactly once
		}
		if id, ok := e.(*ast.Ident); ok {
			if declaredInBody(id) {
				return true
			}
			// Outer variable: only commutative integer accumulation.
			switch op {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
				token.AND_ASSIGN, token.XOR_ASSIGN, token.INC, token.DEC:
				return isCommutativeInt(id)
			}
		}
		return false
	}

	// Second pass: every assignment target must be order-safe.
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if !safe {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				op := n.Tok
				if op == token.DEFINE {
					op = token.ASSIGN
				}
				if !okLHS(lhs, op) {
					safe = false
				}
			}
		case *ast.IncDecStmt:
			if !okLHS(n.X, n.Tok) {
				safe = false
			}
		}
		return safe
	})
	return safe
}
