package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// chanDirPkgs lists, per request-reply package, the event-loop methods
// licensed to multiplex channels. In asim the broker and the node
// runtimes exchange strictly alternating command/reply messages over
// per-node channels; that lockstep is what makes the concurrent
// simulator deterministic. The discipline is enforceable in the type
// system: every channel crossing the broker/node boundary (a struct
// field or a function parameter) must be declared with a direction, so a
// node physically cannot send on its own command channel, and no code
// outside the licensed loops may select — a select is a scheduling race
// by construction.
var chanDirPkgs = map[string][]hotEntry{
	"econcast/internal/asim": {
		{recv: "broker", method: "loop"},
		// ask is the loop's blocking request/reply primitive; its selects
		// pair every channel op with the liveness watchdog timer, which is
		// not a scheduling race: exactly one node channel is armed at a
		// time, so the reply order is still the loop's deterministic order.
		{recv: "broker", method: "ask"},
		// disarm's select is the standard non-blocking drain of a stopped
		// timer's channel; no node channel is involved.
		{recv: "broker", method: "disarm"},
		{recv: "nodeRuntime", method: "run"},
	},
	// testbed is single-goroutine today, but it is licensed for
	// concurrency (rawgoroutine) and mirrors asim's architecture; any
	// channel it grows must arrive direction-typed.
	"econcast/internal/testbed": {
		{recv: "engine", method: "run"},
	},
	// The serving layer's selects are all two-way races against
	// cancellation or a timer, confined to four sites: the admission
	// gate's slot wait, a singleflight follower's wait on the leader, the
	// solve watchdog, and the client's backoff sleep. Every channel
	// stored in a struct or passed across a boundary is direction-typed
	// (gate.acq/gate.rel, flightCall.done, runSolve's done parameter).
	"econcast/internal/serve": {
		{recv: "gate", method: "acquire"},
		{recv: "flightGroup", method: "wait"},
		{recv: "Solver", method: "solveGuarded"},
		{recv: "Client", method: "sleep"},
	},
}

// ChanDir enforces the request-reply channel discipline of the
// concurrent simulators: boundary-crossing channels must be declared
// with a direction (chan<- or <-chan), and select statements are
// confined to the licensed event loops. Bidirectional channels are still
// fine as locals — make needs one — as long as every place they are
// stored or passed commits to a role.
var ChanDir = &Analyzer{
	Name: "chandir",
	Doc:  "bidirectional channel crossing the broker/node boundary, or select outside the licensed event loops",
	Run: func(p *Pass) {
		licensed, ok := chanDirPkgs[p.Path]
		if !ok {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.StructType:
					for _, field := range n.Fields.List {
						if hasBidirChan(p.Info.TypeOf(field.Type), 0) {
							fix := chanDirFix(p, field)
							if fix == nil {
								fix = suppressionFix(p, field.Pos(), "chandir", "TODO: justify the bidirectional channel")
							}
							p.ReportfFix(field.Pos(), fix, "struct field %s holds a bidirectional channel; declare chan<- or <-chan so the request-reply roles are type-enforced", fieldNames(field))
						}
					}
				case *ast.FuncDecl:
					for _, param := range n.Type.Params.List {
						if hasBidirChan(p.Info.TypeOf(param.Type), 0) {
							fix := chanDirFix(p, param)
							if fix == nil {
								fix = suppressionFix(p, param.Pos(), "chandir", "TODO: justify the bidirectional channel")
							}
							p.ReportfFix(param.Pos(), fix, "parameter %s of %s holds a bidirectional channel; declare chan<- or <-chan so the caller's role is type-enforced", fieldNames(param), n.Name.Name)
						}
					}
					if n.Body != nil && !chanDirLicensed(n, licensed) {
						ast.Inspect(n.Body, func(m ast.Node) bool {
							if sel, ok := m.(*ast.SelectStmt); ok {
								fix := suppressionFix(p, sel.Pos(), "chandir", "TODO: justify multiplexing outside the licensed loops")
								p.ReportfFix(sel.Pos(), fix, "select outside the licensed event loops breaks the request-reply lockstep; move the multiplexing into them or restructure as blocking request/reply")
							}
							return true
						})
					}
				}
				return true
			})
		}
	},
}

// chanDirFix proposes inserting the direction a flagged bidirectional
// channel field or parameter is actually used in: one only ever sent on
// (or closed) becomes chan<-, one only received from becomes <-chan.
// When the role is not provable from this package alone — uses in both
// directions, the channel passed along whole, or no uses at all — there
// is no fix and the caller falls back to a suppression stub. Only
// single-name declarations whose type is literally `chan T` qualify;
// channels nested in slices or maps need a human.
func chanDirFix(p *Pass, field *ast.Field) *Fix {
	ch, ok := field.Type.(*ast.ChanType)
	if !ok || ch.Dir != ast.SEND|ast.RECV || len(field.Names) != 1 {
		return nil
	}
	obj := p.Info.Defs[field.Names[0]]
	if obj == nil {
		return nil
	}
	sends, recvs, proven := chanUses(p, obj)
	if !proven || (sends > 0) == (recvs > 0) {
		return nil
	}
	tf := p.Fset.File(ch.Pos())
	if tf == nil {
		return nil
	}
	// The bidirectional type reads "chan T": prepending "<-" yields the
	// receive side, inserting it after the keyword yields the send side.
	off := tf.Offset(ch.Begin)
	msg := "declare the receive-only role: <-chan"
	if sends > 0 {
		off += len("chan")
		msg = "declare the send-only role: chan<-"
	}
	return &Fix{
		Message: msg,
		Edits:   []TextEdit{{File: tf.Name(), Start: off, End: off, New: "<-"}},
	}
}

// chanUses classifies every use of a channel-typed object across the
// package: sends (including close), receives (<-ch, range ch), and
// direction-neutral stores into the object (assignment targets,
// composite-literal keys), which stay legal once a direction is
// declared. proven is false when any use escapes this classification —
// e.g. the whole channel passed to a callee — because then the role
// cannot be established from this package.
func chanUses(p *Pass, obj types.Object) (sends, recvs int, proven bool) {
	classified := make(map[*ast.Ident]bool)
	mark := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			if p.Info.Uses[e] == obj {
				classified[e] = true
				return true
			}
		case *ast.SelectorExpr:
			if p.Info.Uses[e.Sel] == obj {
				classified[e.Sel] = true
				return true
			}
		}
		return false
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				if mark(n.Chan) {
					sends++
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && mark(n.X) {
					recvs++
				}
			case *ast.RangeStmt:
				if mark(n.X) {
					recvs++
				}
			case *ast.CallExpr:
				if id, isIdent := ast.Unparen(n.Fun).(*ast.Ident); isIdent && len(n.Args) == 1 {
					if b, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "close" && mark(n.Args[0]) {
						sends++
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					mark(lhs)
				}
			case *ast.KeyValueExpr:
				if k, isIdent := n.Key.(*ast.Ident); isIdent && p.Info.Uses[k] == obj {
					classified[k] = true
				}
			}
			return true
		})
	}
	proven = true
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if id, isIdent := n.(*ast.Ident); isIdent && p.Info.Uses[id] == obj && !classified[id] {
				proven = false
			}
			return true
		})
	}
	return sends, recvs, proven
}

// chanDirLicensed reports whether fd is one of the package's licensed
// event-loop methods.
func chanDirLicensed(fd *ast.FuncDecl, licensed []hotEntry) bool {
	name := recvTypeName(fd)
	for _, e := range licensed {
		if name == e.recv && fd.Name.Name == e.method {
			return true
		}
	}
	return false
}

// hasBidirChan reports whether t is, or directly contains (through
// slices, arrays, maps, and pointers), a bidirectional channel type.
func hasBidirChan(t types.Type, depth int) bool {
	if t == nil || depth > 8 {
		return false
	}
	switch t := t.Underlying().(type) {
	case *types.Chan:
		return t.Dir() == types.SendRecv
	case *types.Slice:
		return hasBidirChan(t.Elem(), depth+1)
	case *types.Array:
		return hasBidirChan(t.Elem(), depth+1)
	case *types.Pointer:
		return hasBidirChan(t.Elem(), depth+1)
	case *types.Map:
		return hasBidirChan(t.Key(), depth+1) || hasBidirChan(t.Elem(), depth+1)
	}
	return false
}

// fieldNames renders a field's name list ("cmds", "a, b"), or "(embedded)".
func fieldNames(field *ast.Field) string {
	if len(field.Names) == 0 {
		return "(embedded)"
	}
	s := field.Names[0].Name
	for _, n := range field.Names[1:] {
		s += ", " + n.Name
	}
	return s
}
