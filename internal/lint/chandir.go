package lint

import (
	"go/ast"
	"go/types"
)

// chanDirPkgs lists, per request-reply package, the event-loop methods
// licensed to multiplex channels. In asim the broker and the node
// runtimes exchange strictly alternating command/reply messages over
// per-node channels; that lockstep is what makes the concurrent
// simulator deterministic. The discipline is enforceable in the type
// system: every channel crossing the broker/node boundary (a struct
// field or a function parameter) must be declared with a direction, so a
// node physically cannot send on its own command channel, and no code
// outside the licensed loops may select — a select is a scheduling race
// by construction.
var chanDirPkgs = map[string][]hotEntry{
	"econcast/internal/asim": {
		{recv: "broker", method: "loop"},
		// ask is the loop's blocking request/reply primitive; its selects
		// pair every channel op with the liveness watchdog timer, which is
		// not a scheduling race: exactly one node channel is armed at a
		// time, so the reply order is still the loop's deterministic order.
		{recv: "broker", method: "ask"},
		// disarm's select is the standard non-blocking drain of a stopped
		// timer's channel; no node channel is involved.
		{recv: "broker", method: "disarm"},
		{recv: "nodeRuntime", method: "run"},
	},
	// testbed is single-goroutine today, but it is licensed for
	// concurrency (rawgoroutine) and mirrors asim's architecture; any
	// channel it grows must arrive direction-typed.
	"econcast/internal/testbed": {
		{recv: "engine", method: "run"},
	},
}

// ChanDir enforces the request-reply channel discipline of the
// concurrent simulators: boundary-crossing channels must be declared
// with a direction (chan<- or <-chan), and select statements are
// confined to the licensed event loops. Bidirectional channels are still
// fine as locals — make needs one — as long as every place they are
// stored or passed commits to a role.
var ChanDir = &Analyzer{
	Name: "chandir",
	Doc:  "bidirectional channel crossing the broker/node boundary, or select outside the licensed event loops",
	Run: func(p *Pass) {
		licensed, ok := chanDirPkgs[p.Path]
		if !ok {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.StructType:
					for _, field := range n.Fields.List {
						if hasBidirChan(p.Info.TypeOf(field.Type), 0) {
							p.Reportf(field.Pos(), "struct field %s holds a bidirectional channel; declare chan<- or <-chan so the request-reply roles are type-enforced", fieldNames(field))
						}
					}
				case *ast.FuncDecl:
					for _, param := range n.Type.Params.List {
						if hasBidirChan(p.Info.TypeOf(param.Type), 0) {
							p.Reportf(param.Pos(), "parameter %s of %s holds a bidirectional channel; declare chan<- or <-chan so the caller's role is type-enforced", fieldNames(param), n.Name.Name)
						}
					}
					if n.Body != nil && !chanDirLicensed(n, licensed) {
						ast.Inspect(n.Body, func(m ast.Node) bool {
							if sel, ok := m.(*ast.SelectStmt); ok {
								p.Reportf(sel.Pos(), "select outside the licensed event loops breaks the request-reply lockstep; move the multiplexing into them or restructure as blocking request/reply")
							}
							return true
						})
					}
				}
				return true
			})
		}
	},
}

// chanDirLicensed reports whether fd is one of the package's licensed
// event-loop methods.
func chanDirLicensed(fd *ast.FuncDecl, licensed []hotEntry) bool {
	name := recvTypeName(fd)
	for _, e := range licensed {
		if name == e.recv && fd.Name.Name == e.method {
			return true
		}
	}
	return false
}

// hasBidirChan reports whether t is, or directly contains (through
// slices, arrays, maps, and pointers), a bidirectional channel type.
func hasBidirChan(t types.Type, depth int) bool {
	if t == nil || depth > 8 {
		return false
	}
	switch t := t.Underlying().(type) {
	case *types.Chan:
		return t.Dir() == types.SendRecv
	case *types.Slice:
		return hasBidirChan(t.Elem(), depth+1)
	case *types.Array:
		return hasBidirChan(t.Elem(), depth+1)
	case *types.Pointer:
		return hasBidirChan(t.Elem(), depth+1)
	case *types.Map:
		return hasBidirChan(t.Key(), depth+1) || hasBidirChan(t.Elem(), depth+1)
	}
	return false
}

// fieldNames renders a field's name list ("cmds", "a, b"), or "(embedded)".
func fieldNames(field *ast.Field) string {
	if len(field.Names) == 0 {
		return "(embedded)"
	}
	s := field.Names[0].Name
	for _, n := range field.Names[1:] {
		s += ", " + n.Name
	}
	return s
}
