package lint

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// expectation is one (file, line, analyzer) triple a fixture demands.
type expectation struct {
	file     string // base name
	line     int
	analyzer string
}

func (e expectation) String() string {
	return fmt.Sprintf("%s:%d: [%s]", e.file, e.line, e.analyzer)
}

// wantMarks scans the fixture sources in dir for "// want name[,name]"
// trailing markers.
func wantMarks(t *testing.T, dir string) []expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want []expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, mark, ok := strings.Cut(sc.Text(), "// want ")
			if !ok {
				continue
			}
			for _, name := range strings.Split(strings.Fields(mark)[0], ",") {
				want = append(want, expectation{e.Name(), line, name})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return want
}

func runFixture(t *testing.T, dir, asPath string, a *Analyzer) []expectation {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDirAs(filepath.Join("testdata", "src", dir), asPath)
	if err != nil {
		t.Fatal(err)
	}
	var got []expectation
	for _, f := range Check([]*Package{pkg}, []*Analyzer{a}) {
		got = append(got, expectation{filepath.Base(f.Pos.Filename), f.Pos.Line, f.Analyzer})
	}
	return got
}

func TestFixtures(t *testing.T) {
	cases := []struct {
		name     string
		dir      string
		as       string
		analyzer *Analyzer
		// wantNone overrides the markers: the same fixture loaded under an
		// exempt package path must stay silent.
		wantNone bool
	}{
		{"maprange", "maprange", "econcast/internal/sim", MapRange, false},
		{"maprange/outside-deterministic-pkg", "maprange", "econcast/internal/viz", MapRange, true},
		{"wallclock", "wallclock", "econcast/internal/sim", WallClock, false},
		{"wallclock/inside-rng", "wallclock", "econcast/internal/rng", WallClock, true},
		{"floateq", "floateq", "econcast/internal/lp", FloatEq, false},
		{"rawgoroutine", "rawgoroutine", "econcast/internal/experiments", RawGoroutine, false},
		{"rawgoroutine/licensed-pkg", "rawgoroutine", "econcast/internal/asim", RawGoroutine, true},
		{"errdrop", "errdrop", "econcast/internal/experiments", ErrDrop, false},
		{"hotalloc", "hotalloc", "econcast/internal/sim", HotAlloc, false},
		{"hotalloc/outside-hot-pkg", "hotalloc", "econcast/internal/viz", HotAlloc, true},
		{"hotalloc/lp-pivot-tree", filepath.Join("hotalloc", "lp"), "econcast/internal/lp", HotAlloc, false},
		{"hotalloc/lp-outside-hot-pkg", filepath.Join("hotalloc", "lp"), "econcast/internal/viz", HotAlloc, true},
		{"hotalloc/statespace-gibbs-tree", filepath.Join("hotalloc", "statespace"), "econcast/internal/statespace", HotAlloc, false},
		{"hotalloc/statespace-outside-hot-pkg", filepath.Join("hotalloc", "statespace"), "econcast/internal/viz", HotAlloc, true},
		{"hotalloc/faults-query-tree", filepath.Join("hotalloc", "faults"), "econcast/internal/faults", HotAlloc, false},
		{"hotalloc/faults-outside-hot-pkg", filepath.Join("hotalloc", "faults"), "econcast/internal/viz", HotAlloc, true},
		{"hotalloc/shard-coordinator-tree", filepath.Join("hotalloc", "shard"), "econcast/internal/sim", HotAlloc, false},
		{"hotalloc/shard-outside-hot-pkg", filepath.Join("hotalloc", "shard"), "econcast/internal/viz", HotAlloc, true},
		{"hotalloc/flow-sensitive", filepath.Join("hotalloc", "flow"), "econcast/internal/sim", HotAlloc, false},
		{"hotalloc/flow-outside-hot-pkg", filepath.Join("hotalloc", "flow"), "econcast/internal/viz", HotAlloc, true},
		{"chandir", "chandir", "econcast/internal/asim", ChanDir, false},
		{"chandir/outside-channel-pkg", "chandir", "econcast/internal/viz", ChanDir, true},
		{"seedflow", "seedflow", "econcast/internal/experiments", SeedFlow, false},
		{"seedflow/inside-rng", filepath.Join("seedflow", "exempt"), "econcast/internal/rng", SeedFlow, true},
		{"seedflow/path-sensitive", filepath.Join("seedflow", "reassign"), "econcast/internal/experiments", SeedFlow, false},
		{"sharedstate", "sharedstate", "econcast/internal/asim", SharedState, false},
		{"sharedstate/clean-handoffs", filepath.Join("sharedstate", "clean"), "econcast/internal/asim", SharedState, true},
		{"unitflow", "unitflow", "econcast/internal/sim", UnitFlow, false},
		{"unitflow/outside-registry-pkg", "unitflow", "econcast/internal/viz", UnitFlow, true},
		{"shardown", "shardown", "econcast/internal/asim", ShardOwn, false},
		{"shardown/clean-engine", filepath.Join("shardown", "clean"), "econcast/internal/asim", ShardOwn, true},
		{"shardflow", "shardflow", "econcast/internal/sim", ShardFlow, false},
		{"shardflow/clean-engine", filepath.Join("shardflow", "clean"), "econcast/internal/sim", ShardFlow, true},
		{"shardflow/outside-config", "shardflow", "econcast/internal/viz", ShardFlow, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runFixture(t, tc.dir, tc.as, tc.analyzer)
			var want []expectation
			if !tc.wantNone {
				want = wantMarks(t, filepath.Join("testdata", "src", tc.dir))
			}
			sortExpectations(got)
			sortExpectations(want)
			if !equalExpectations(got, want) {
				t.Errorf("findings mismatch\n got: %v\nwant: %v", got, want)
			}
			if !tc.wantNone && len(want) == 0 {
				t.Fatalf("fixture %s has no positive markers", tc.dir)
			}
		})
	}
}

func sortExpectations(es []expectation) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.analyzer < b.analyzer
	})
}

func equalExpectations(a, b []expectation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRepoIsClean is the executable form of the CI gate: the full suite
// over the whole module must report nothing. Any new finding either gets
// fixed or earns an explicit suppression with a justification.
func TestRepoIsClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(loader.Root() + "/...")
	if err != nil {
		t.Fatal(err)
	}
	// The sweep must cover command binaries, not just internal/...: a
	// determinism bug in cmd wiring (flag parsing feeding seeds, output
	// ordering) escapes to users just as readily.
	covered := false
	for _, p := range pkgs {
		if p.Path == "econcast/cmd/econlint" {
			covered = true
		}
	}
	if !covered {
		t.Error("module walk missed econcast/cmd/econlint; cmd/... must be linted")
	}
	for _, f := range Check(pkgs, All()) {
		t.Errorf("%s", f)
	}
}

// TestParallelDeterminism pins the CheckParallel contract: for any worker
// count, loading and checking the same packages yields byte-identical
// findings, in the same order, as the sequential path.
func TestParallelDeterminism(t *testing.T) {
	render := func(t *testing.T, workers int) string {
		t.Helper()
		loader, err := NewLoader(".")
		if err != nil {
			t.Fatal(err)
		}
		// Two fixture packages with findings from several analyzers, loaded
		// under their flagged paths, so ordering across packages, files, and
		// analyzers is all exercised.
		chandir, err := loader.LoadDirAs(filepath.Join("testdata", "src", "chandir"), "econcast/internal/asim")
		if err != nil {
			t.Fatal(err)
		}
		seedflow, err := loader.LoadDirAs(filepath.Join("testdata", "src", "seedflow"), "econcast/internal/experiments")
		if err != nil {
			t.Fatal(err)
		}
		pkgs := []*Package{chandir, seedflow}
		findings, err := CheckParallel(workers, pkgs, All())
		if err != nil {
			t.Fatal(err)
		}
		if len(findings) == 0 {
			t.Fatal("expected findings from the fixture packages")
		}
		var sb strings.Builder
		for _, f := range findings {
			fmt.Fprintf(&sb, "%s\n", f)
		}
		return sb.String()
	}
	sequential := render(t, 1)
	for _, workers := range []int{2, 4, 16} {
		if got := render(t, workers); got != sequential {
			t.Errorf("CheckParallel(%d) output differs from sequential:\n got:\n%s\nwant:\n%s", workers, got, sequential)
		}
	}
}

// TestLoadParallel pins that the parallel loader finds the same package
// set, in the same order, as the sequential walk.
func TestLoadParallel(t *testing.T) {
	paths := func(t *testing.T, workers int) []string {
		t.Helper()
		loader, err := NewLoader(".")
		if err != nil {
			t.Fatal(err)
		}
		pkgs, err := loader.LoadParallel(workers, loader.Root()+"/...")
		if err != nil {
			t.Fatal(err)
		}
		var ps []string
		for _, p := range pkgs {
			ps = append(ps, p.Path)
		}
		return ps
	}
	want := paths(t, 1)
	if len(want) < 2 {
		t.Fatalf("module walk found %d packages, expected several", len(want))
	}
	for _, workers := range []int{4, 16} {
		got := paths(t, workers)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Errorf("LoadParallel(%d) = %v, want %v", workers, got, want)
		}
	}
}

// TestSuppressionScope pins the directive grammar: a standalone
// suppression covers its own line and the next line, a trailing one
// covers exactly the line it sits on, and //lint:ordered is shorthand
// for allowing maprange.
func TestSuppressionScope(t *testing.T) {
	src := `package p

//lint:allow floateq sentinel
var _ = 0

//lint:allow floateq,errdrop multi
var _ = 1

//lint:ordered audited below
var _ = 2

// plain comment, not a directive
var _ = 3

var _ = 4 //lint:allow floateq trailing: covers this line only
var _ = 5

func f() {
	for { //lint:allow floateq trailing on a header line: no node ends here
		_ = 6
	}
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "scope.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	tab := suppressions(fset, []*ast.File{f})
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{3, "floateq", true},    // the directive's own line
		{4, "floateq", true},    // the next line
		{5, "floateq", false},   // one past the window
		{6, "floateq", true},    // comma list, first name
		{7, "errdrop", true},    // comma list, second name
		{7, "wallclock", false}, // unnamed analyzer stays live
		{10, "maprange", true},  // //lint:ordered aliases maprange
		{10, "floateq", false},
		{13, "floateq", false}, // ordinary comments are inert
		{15, "floateq", true},  // trailing directive covers its own line...
		{16, "floateq", false}, // ...but must NOT leak onto the next one
		{19, "floateq", true},  // `for {` header: code starts but nothing ends, still trailing...
		{20, "floateq", false}, // ...so the loop body stays live
	}
	for _, c := range cases {
		if got := tab.allows("scope.go", c.line, c.analyzer); got != c.want {
			t.Errorf("allows(line %d, %s) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}
