package lint

import (
	"go/ast"
)

// rngPkg is the one package licensed to own randomness; all simulation
// randomness must flow through its seeded Source streams.
const rngPkg = "econcast/internal/rng"

// wallclockBanned are the time package functions that read or depend on
// the wall clock. Simulators run on a virtual clock; a wall-clock read in
// protocol or simulation code makes runs unreproducible.
var wallclockBanned = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// wallclockLicensed are the packages that legitimately live on the wall
// clock: the serving layer and its daemon, where deadlines, Retry-After
// hints, backoff waits, and breaker cool-downs are real-time quantities
// by definition. Their *decisions* still come from seeded streams (shed
// draws, backoff jitter — see seedflow), so chaos runs replay; only the
// durations are real. Simulation and protocol code stays banned.
var wallclockLicensed = map[string]bool{
	"econcast/internal/serve": true,
	"econcast/cmd/oracled":    true,
}

// WallClock forbids wall-clock reads (time.Now, time.Sleep, …) and any
// use of math/rand outside internal/rng. Both break the repo-wide
// invariant that every run is exactly reproducible from a seed.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "wall-clock or math/rand use outside internal/rng",
	Run: func(p *Pass) {
		if p.Path == rngPkg {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch pkgNameOf(p.Info, sel.X) {
				case "time":
					if wallclockBanned[sel.Sel.Name] && !wallclockLicensed[p.Path] {
						p.Reportf(sel.Pos(), "time.%s reads the wall clock; simulations run on the virtual clock and must be reproducible from a seed", sel.Sel.Name)
					}
				case "math/rand", "math/rand/v2":
					p.Reportf(sel.Pos(), "math/rand bypasses the seeded streams in internal/rng; use rng.Source instead")
				}
				return true
			})
		}
	},
}
