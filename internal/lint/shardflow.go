package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"econcast/internal/lint/flow"
)

// shardflowConfig names the moving parts of one sharded discrete-event
// engine so the prover can be pointed at look-alike engines (and at
// fixtures) without hard-coding internal/sim. All matching is by type
// and field name within the configured package.
type shardflowConfig struct {
	coordType   string // the coordinator holding the shard heap
	shardType   string // the per-shard runtime
	drainMethod string // shardType method that drains a batch
	fixMethod   string // coordType method restoring one heap position
	pushMethod  string // queue method that enqueues an event

	shardsField  string // coordType field: slice of shard runtimes
	queueField   string // shardType field: the event heap
	posField     string // coordType SoA: heap position per shard
	currentField string // coordType scalar: the draining shard id
	idField      string // shardType field: this shard's id

	// ownedSlices are the coordinator's per-shard SoA caches. Only the
	// coordinator's event-loop goroutine may index them, and shard-
	// receiver methods only via their own idField (or a //lint:handoff
	// license).
	ownedSlices map[string]bool
	// controlScalars are coordinator fields a shard method may write only
	// through a //lint:handoff boundary (the batch-control backchannel).
	controlScalars map[string]bool

	// The parallel window engine (rule 6). parType is the driver owning
	// the worker pool; a send on workField dispatches a window to the
	// workers, a receive on doneField collects one barrier ack, and
	// rebuildMethod reconstructs the coordinator's order heap once the
	// barrier is complete. Empty parType disables the rule.
	parType       string
	workField     string
	doneField     string
	rebuildMethod string
}

// shardflowConfigs keys engine descriptions by import path, mirroring
// hotEntries: the fixture packages load themselves under the same path
// to opt in.
var shardflowConfigs = map[string]shardflowConfig{
	"econcast/internal/sim": {
		coordType:    "coordinator",
		shardType:    "shardRuntime",
		drainMethod:  "run",
		fixMethod:    "fix",
		pushMethod:   "push",
		shardsField:  "shards",
		queueField:   "queue",
		posField:     "pos",
		currentField: "current",
		idField:      "id",
		ownedSlices: map[string]bool{
			"headAt": true, "headSeq": true, "listeningTo": true,
			"order": true, "pos": true,
		},
		controlScalars: map[string]bool{
			"current": true, "crossed": true, "done": true,
		},
		parType:       "parCoordinator",
		workField:     "work",
		doneField:     "done",
		rebuildMethod: "rebuildOrder",
	},
}

// ShardFlow proves the detach/eager-fix discipline of the sharded
// discrete-event engine on its control-flow graph:
//
//  1. Every drain call (shards[s].run(...)) must be dominated by the
//     draining shard's detach (pos[s] = -1): with the drained shard
//     still attached, the eager cross-shard fixes in push would repair
//     positions against a heap holding a stale root.
//  2. Every drain must be followed by fix(s) on all paths to the
//     function exit, re-attaching the shard before the next comparison.
//  3. Every push into a shard's queue must be followed on all paths by
//     fix of that shard — except along branch edges that prove the push
//     landed in the currently-draining (detached) shard.
//  4. A shard-receiver method may index the coordinator's per-shard SoA
//     slices only through its own id, and may write the coordinator's
//     batch-control scalars only when the method is a declared
//     //lint:handoff boundary.
//  5. Coordinator state (the coordinator itself, or any owned SoA
//     slice) must not be stored into shard-runtime fields: shards
//     partition data, not control, and an alias would let a shard
//     mutate heap state behind the prover's back.
//  6. Window-barrier discipline on the parallel driver: every window
//     dispatch (a send on the worker pool's work channel) must be
//     followed on all paths by a barrier ack (a receive on the done
//     channel) and then an order-heap rebuild before the function can
//     exit, and no coordinator-owned state (SoA caches, control
//     scalars) may be written between the dispatch and the rebuild —
//     the window workers own the shard state until the barrier
//     completes.
var ShardFlow = &Analyzer{
	Name: "shardflow",
	Doc:  "prove the sharded engine's detach/eager-fix and ownership discipline on the CFG",
	Run:  runShardFlow,
}

func runShardFlow(p *Pass) {
	cfg, ok := shardflowConfigs[p.Path]
	if !ok {
		return
	}
	sf := &shardflowPass{p: p, cfg: cfg}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			switch recvTypeName(fd) {
			case cfg.coordType:
				sf.checkCoordMethod(fd)
			case cfg.shardType:
				sf.checkShardMethod(fd)
			case cfg.parType:
				sf.checkWindowBarrier(fd)
			}
			sf.checkAliasing(fd)
		}
	}
}

type shardflowPass struct {
	p   *Pass
	cfg shardflowConfig

	g     *flow.Graph   // current function's CFG (built on demand)
	dom   *flow.DomTree // and its dominator tree
	gFunc *ast.FuncDecl
}

// graphFor returns the (cached) CFG and dominator tree of fd.
func (sf *shardflowPass) graphFor(fd *ast.FuncDecl) (*flow.Graph, *flow.DomTree) {
	if sf.gFunc != fd {
		sf.g = flow.Build(fd.Body)
		sf.dom = sf.g.Dominators()
		sf.gFunc = fd
	}
	return sf.g, sf.dom
}

// checkCoordMethod enforces rules 1–3 inside one coordinator method.
func (sf *shardflowPass) checkCoordMethod(fd *ast.FuncDecl) {
	var drains, pushes []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := sf.drainIndex(call); ok {
			drains = append(drains, call)
		}
		if _, ok := sf.pushIndex(call); ok {
			pushes = append(pushes, call)
		}
		return true
	})
	if len(drains) == 0 && len(pushes) == 0 {
		return
	}
	g, dom := sf.graphFor(fd)
	for _, call := range drains {
		sf.checkDrainDominated(fd, g, dom, call)
		sf.checkFollowedByFix(g, call, sf.drainCallIndex(call), false,
			"drain of shard %s is not followed by %s on every path to the exit; the shard would stay detached from the heap",
		)
	}
	for _, call := range pushes {
		sf.checkFollowedByFix(g, call, sf.pushCallIndex(call), true,
			"push into shard %s is not followed by an eager %s on every cross-shard path; the heap would hold a stale position at the next comparison",
		)
	}
}

// drainIndex matches cfg.shards[s].run(...) and returns the shard index
// expression.
func (sf *shardflowPass) drainIndex(call *ast.CallExpr) (ast.Expr, bool) {
	callee := calleeFunc(sf.p.Info, call)
	if callee == nil || callee.Name() != sf.cfg.drainMethod {
		return nil, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	if sf.typeName(sel.X) != sf.cfg.shardType {
		return nil, false
	}
	if ix, ok := ast.Unparen(sel.X).(*ast.IndexExpr); ok && sf.isCoordField(ix.X, sf.cfg.shardsField) {
		return ix.Index, true
	}
	return nil, false
}

// pushIndex matches cfg.shards[s].queue.push(...) and returns the shard
// index expression.
func (sf *shardflowPass) pushIndex(call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != sf.cfg.pushMethod {
		return nil, false
	}
	qsel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || qsel.Sel.Name != sf.cfg.queueField {
		return nil, false
	}
	if ix, ok := ast.Unparen(qsel.X).(*ast.IndexExpr); ok && sf.isCoordField(ix.X, sf.cfg.shardsField) {
		return ix.Index, true
	}
	return nil, false
}

func (sf *shardflowPass) drainCallIndex(call *ast.CallExpr) ast.Expr {
	ix, _ := sf.drainIndex(call)
	return ix
}

func (sf *shardflowPass) pushCallIndex(call *ast.CallExpr) ast.Expr {
	ix, _ := sf.pushIndex(call)
	return ix
}

// checkDrainDominated enforces rule 1: some detach of the drained shard
// (pos[s] = -1) dominates the drain call.
func (sf *shardflowPass) checkDrainDominated(fd *ast.FuncDecl, g *flow.Graph, dom *flow.DomTree, call *ast.CallExpr) {
	idx := sf.drainCallIndex(call)
	callBlk, callIdx, ok := g.FindNode(call.Pos())
	if !ok {
		return
	}
	dominated := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if dominated {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		ix, ok := ast.Unparen(as.Lhs[0]).(*ast.IndexExpr)
		if !ok || !sf.isCoordField(ix.X, sf.cfg.posField) {
			return true
		}
		if !sf.isMinusOne(as.Rhs[0]) {
			return true
		}
		if !sameIndexIfIdents(sf.p.Info, ix.Index, idx) {
			return true
		}
		dBlk, dIdx, ok := g.FindNode(as.Pos())
		if !ok {
			return true
		}
		if dBlk == callBlk {
			dominated = dIdx < callIdx
		} else {
			dominated = dom.Dominates(dBlk, callBlk)
		}
		return true
	})
	if !dominated {
		sf.p.Reportf(call.Pos(), "drain of shard %s is not dominated by its detach (%s[%s] = -1); the eager cross-shard fixes in %s are only sound against a heap with the draining shard removed",
			renderExpr(idx), sf.cfg.posField, renderExpr(idx), sf.cfg.pushMethod)
	}
}

// checkFollowedByFix enforces rules 2 and 3: from the given call, every
// path to the function exit must pass a fix of the same shard (or
// panic). When allowCurrentBranch is set, branch edges proving the shard
// is the currently-draining one (idx == current) are exempt — the
// current shard is detached, so no heap position needs repair.
func (sf *shardflowPass) checkFollowedByFix(g *flow.Graph, call *ast.CallExpr, idx ast.Expr, allowCurrentBranch bool, format string) {
	startBlk, startIdx, ok := g.FindNode(call.Pos())
	if !ok {
		return
	}
	// fixed reports whether node n satisfies the obligation.
	fixed := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			c, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPanicCall(c) {
				found = true // a panic aborts the run; nothing to repair
				return false
			}
			callee := calleeFunc(sf.p.Info, c)
			if callee == nil || callee.Name() != sf.cfg.fixMethod {
				return true
			}
			sel, ok := c.Fun.(*ast.SelectorExpr)
			if !ok || sf.typeName(sel.X) != sf.cfg.coordType {
				return true
			}
			if len(c.Args) == 1 && sameIndexIfIdents(sf.p.Info, c.Args[0], idx) {
				found = true
			}
			return !found
		})
		return found
	}

	// DFS forward from the statement after the call. An edge proving
	// idx == current (true edge of ==, false edge of !=) discharges the
	// obligation on that path when allowed.
	visited := make(map[*flow.Block]bool)
	var bad bool
	var walk func(b *flow.Block, from int)
	walk = func(b *flow.Block, from int) {
		if bad {
			return
		}
		for i := from; i < len(b.Nodes); i++ {
			if fixed(b.Nodes[i]) {
				return
			}
		}
		if b == g.Exit {
			bad = true
			return
		}
		if visited[b] {
			return
		}
		visited[b] = true
		for si, s := range b.Succs {
			if allowCurrentBranch && b.Cond != nil && sf.edgeProvesCurrent(b.Cond, si, idx) {
				continue
			}
			walk(s, 0)
		}
	}
	walk(startBlk, startIdx+1)
	if bad {
		sf.p.Reportf(call.Pos(), format, renderExpr(idx), sf.cfg.fixMethod)
	}
}

// edgeProvesCurrent reports whether taking successor edge si of a block
// conditioned on cond proves idx == coordinator.current: the true edge
// (si == 0) of `idx == c.current`, or the false edge (si == 1) of
// `idx != c.current`.
func (sf *shardflowPass) edgeProvesCurrent(cond ast.Expr, si int, idx ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	var wantEdge int
	switch be.Op {
	case token.EQL:
		wantEdge = 0
	case token.NEQ:
		wantEdge = 1
	default:
		return false
	}
	if si != wantEdge {
		return false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if identsMatch(sf.p.Info, x, idx) && sf.isCurrentField(y) {
		return true
	}
	if identsMatch(sf.p.Info, y, idx) && sf.isCurrentField(x) {
		return true
	}
	return false
}

// isCurrentField matches cfg.currentField selected from a coordinator
// value (possibly through a conversion of the shard id).
func (sf *shardflowPass) isCurrentField(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == sf.cfg.currentField && sf.typeName(sel.X) == sf.cfg.coordType
}

// checkShardMethod enforces rule 4 on one shard-receiver method.
func (sf *shardflowPass) checkShardMethod(fd *ast.FuncDecl) {
	licensed := sf.handoffLicensed(fd)
	recvIdent := receiverIdent(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr)
			if !ok || !sf.cfg.ownedSlices[sel.Sel.Name] || sf.typeName(sel.X) != sf.cfg.coordType {
				return true
			}
			if licensed || sf.isOwnID(n.Index, recvIdent) {
				return true
			}
			sf.p.Reportf(n.Pos(), "shard method %s indexes coordinator-owned slice %s by an id not proven to be its own; shards may touch the SoA caches only at their own %s (or declare the method a //lint:handoff boundary)",
				fd.Name.Name, sel.Sel.Name, sf.cfg.idField)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || !sf.cfg.controlScalars[sel.Sel.Name] || sf.typeName(sel.X) != sf.cfg.coordType {
					continue
				}
				if licensed {
					continue
				}
				sf.p.Reportf(lhs.Pos(), "shard method %s writes coordinator control field %s without a //lint:handoff license; the batch-control backchannel must be a declared boundary",
					fd.Name.Name, sel.Sel.Name)
			}
		}
		return true
	})
}

// checkWindowBarrier enforces rule 6 on one parallel-driver method: walk
// the CFG forward from every window dispatch (send on the work channel)
// through a two-stage obligation — first a barrier ack (receive on the
// done channel), then the order-heap rebuild. Reaching the function exit
// with the obligation open is a missing barrier; writing coordinator-
// owned state while it is open races the window workers.
func (sf *shardflowPass) checkWindowBarrier(fd *ast.FuncDecl) {
	if sf.cfg.parType == "" || fd.Recv == nil {
		return
	}
	var sends []*ast.SendStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SendStmt); ok && sf.isParChan(s.Chan, sf.cfg.workField) {
			sends = append(sends, s)
		}
		return true
	})
	if len(sends) == 0 {
		return
	}
	// Ack-drain loops (`for ... { <-p.done }`) discharge the barrier
	// even on the CFG's zero-iteration edge: the worker pool always has
	// at least one worker, so the loop body runs at runtime. A recv
	// guarded by an if keeps no such guarantee and gets no credit.
	barrierConds := make(map[ast.Expr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if f, ok := n.(*ast.ForStmt); ok && f.Cond != nil && sf.hasDoneRecv(f.Body) {
			barrierConds[f.Cond] = true
		}
		return true
	})
	g, _ := sf.graphFor(fd)
	reported := make(map[token.Pos]bool)
	for _, send := range sends {
		sf.walkBarrier(g, send, barrierConds, reported)
	}
}

// walkBarrier runs the two-stage DFS for one dispatch site. Stage 0
// needs a done-receive, stage 1 needs the rebuild call; stage 2 is
// discharged. Revisiting a block in the same stage terminates the path
// (a loop that never discharges also never reaches the exit except
// through its exit edge, which is walked separately).
func (sf *shardflowPass) walkBarrier(g *flow.Graph, send *ast.SendStmt, barrierConds map[ast.Expr]bool, reported map[token.Pos]bool) {
	startBlk, startIdx, ok := g.FindNode(send.Pos())
	if !ok {
		return
	}
	type key struct {
		b     *flow.Block
		stage int
	}
	visited := make(map[key]bool)
	bad := false
	var walk func(b *flow.Block, from, stage int)
	walk = func(b *flow.Block, from, stage int) {
		if bad {
			return
		}
		for i := from; i < len(b.Nodes); i++ {
			n := b.Nodes[i]
			if stage == 0 && sf.hasDoneRecv(n) {
				stage = 1
				continue
			}
			if stage == 1 && sf.hasRebuildCall(n) {
				return // discharged
			}
			if w := sf.ownedWrite(n); w != nil && !reported[w.Pos()] {
				reported[w.Pos()] = true
				sf.p.Reportf(w.Pos(), "coordinator-owned state written between the window dispatch and the barrier %s; the window workers own the shard state until every ack is drained and the order heap is rebuilt",
					sf.cfg.rebuildMethod)
			}
		}
		if b == g.Exit {
			bad = true
			return
		}
		if stage == 0 && b.Cond != nil && barrierConds[b.Cond] {
			// Crossing an ack-drain loop header: the loop body runs at
			// least once at runtime, so both edges leave with the acks
			// drained.
			stage = 1
		}
		k := key{b, stage}
		if visited[k] {
			return
		}
		visited[k] = true
		for _, s := range b.Succs {
			walk(s, 0, stage)
		}
	}
	walk(startBlk, startIdx+1, 0)
	if bad && !reported[send.Pos()] {
		reported[send.Pos()] = true
		sf.p.Reportf(send.Pos(), "window dispatch is not followed by the full barrier (drain %s, then %s) on every path to the exit; the next heap comparison would race the window workers",
			sf.cfg.doneField, sf.cfg.rebuildMethod)
	}
}

// isParChan matches `<parType value>.<field>` or `<parType value>.<field>[i]`.
func (sf *shardflowPass) isParChan(e ast.Expr, field string) bool {
	e = ast.Unparen(e)
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(ix.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == field && sf.typeName(sel.X) == sf.cfg.parType
}

// hasDoneRecv reports whether n contains a receive from the done channel.
func (sf *shardflowPass) hasDoneRecv(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		u, ok := m.(*ast.UnaryExpr)
		if ok && u.Op == token.ARROW && sf.isParChan(u.X, sf.cfg.doneField) {
			found = true
		}
		return !found
	})
	return found
}

// hasRebuildCall reports whether n contains a call to the rebuild method
// on the parallel driver.
func (sf *shardflowPass) hasRebuildCall(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		c, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := c.Fun.(*ast.SelectorExpr)
		if ok && sel.Sel.Name == sf.cfg.rebuildMethod && sf.typeName(sel.X) == sf.cfg.parType {
			found = true
		}
		return !found
	})
	return found
}

// ownedWrite returns the left-hand side of an assignment in n that
// writes coordinator-owned state (an owned SoA slice element or a
// batch-control scalar), nil when n writes none.
func (sf *shardflowPass) ownedWrite(n ast.Node) ast.Expr {
	var hit ast.Expr
	check := func(lhs ast.Expr) {
		if hit != nil {
			return
		}
		lhs = ast.Unparen(lhs)
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if sel, ok := ast.Unparen(ix.X).(*ast.SelectorExpr); ok &&
				sf.cfg.ownedSlices[sel.Sel.Name] && sf.typeName(sel.X) == sf.cfg.coordType {
				hit = lhs
			}
			return
		}
		if sel, ok := lhs.(*ast.SelectorExpr); ok &&
			sf.cfg.controlScalars[sel.Sel.Name] && sf.typeName(sel.X) == sf.cfg.coordType {
			hit = lhs
		}
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if hit != nil {
			return false
		}
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(m.X)
		}
		return true
	})
	return hit
}

// handoffLicensed reports whether fd carries a //lint:handoff directive
// in the module ownership table.
func (sf *shardflowPass) handoffLicensed(fd *ast.FuncDecl) bool {
	if sf.p.Owners == nil {
		return false
	}
	if obj, ok := sf.p.Info.Defs[fd.Name].(*types.Func); ok {
		return sf.p.Owners.HandoffDomain(obj) != ""
	}
	return false
}

// isOwnID matches the receiver's id field (s.id), possibly through a
// type conversion (int(s.id)).
func (sf *shardflowPass) isOwnID(e ast.Expr, recv *ast.Ident) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		// A conversion keeps the identity; a real call does not.
		if _, isConv := sf.p.Info.Types[call.Fun]; isConv && sf.p.Info.Types[call.Fun].IsType() {
			return sf.isOwnID(call.Args[0], recv)
		}
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != sf.cfg.idField || recv == nil {
		return false
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	ro := sf.p.Info.Uses[base]
	rd := sf.p.Info.Defs[recv]
	return ro != nil && ro == rd
}

// checkAliasing enforces rule 5 in every function: coordinator state
// must not be stored into shard-runtime fields or composite literals.
func (sf *shardflowPass) checkAliasing(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || sf.typeName(sel.X) != sf.cfg.shardType {
					continue
				}
				if i < len(n.Rhs) && len(n.Lhs) == len(n.Rhs) && sf.aliasesCoordState(n.Rhs[i]) {
					sf.p.Reportf(n.Rhs[i].Pos(), "coordinator state stored into %s field %s; shards partition data, not control — pass the coordinator as a call argument instead of aliasing it",
						sf.cfg.shardType, sel.Sel.Name)
				}
			}
		case *ast.CompositeLit:
			if sf.typeNameOf(sf.p.Info.Types[ast.Expr(n)].Type) != sf.cfg.shardType {
				return true
			}
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if sf.aliasesCoordState(v) {
					sf.p.Reportf(v.Pos(), "coordinator state stored into a %s literal; shards partition data, not control — pass the coordinator as a call argument instead of aliasing it",
						sf.cfg.shardType)
				}
			}
		}
		return true
	})
}

// aliasesCoordState reports whether e evaluates to the coordinator
// itself, its address, or one of its owned SoA slices.
func (sf *shardflowPass) aliasesCoordState(e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	if sf.typeName(e) == sf.cfg.coordType {
		return true
	}
	if sel, ok := e.(*ast.SelectorExpr); ok && sf.cfg.ownedSlices[sel.Sel.Name] && sf.typeName(sel.X) == sf.cfg.coordType {
		return true
	}
	return false
}

// isCoordField matches `<coordinator value>.<field>`.
func (sf *shardflowPass) isCoordField(e ast.Expr, field string) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != field {
		return false
	}
	return sf.typeName(sel.X) == sf.cfg.coordType
}

// typeName resolves the named type of e, pointers unwrapped, "" when
// unresolvable.
func (sf *shardflowPass) typeName(e ast.Expr) string {
	tv, ok := sf.p.Info.Types[ast.Unparen(e)]
	if !ok {
		return ""
	}
	return sf.typeNameOf(tv.Type)
}

func (sf *shardflowPass) typeNameOf(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		if named, ok := ptr.Elem().(*types.Named); ok {
			return named.Obj().Name()
		}
	}
	return ""
}

// isMinusOne reports whether e is a constant -1.
func (sf *shardflowPass) isMinusOne(e ast.Expr) bool {
	tv, ok := sf.p.Info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return exact && v == -1
}

// sameIndexIfIdents requires two index expressions to resolve to the
// same object when both are plain identifiers; when either is a more
// complex expression the prover cannot distinguish them and accepts.
func sameIndexIfIdents(info *types.Info, a, b ast.Expr) bool {
	ai, aok := ast.Unparen(a).(*ast.Ident)
	bi, bok := ast.Unparen(b).(*ast.Ident)
	if !aok || !bok {
		return true
	}
	ao, bo := info.Uses[ai], info.Uses[bi]
	if ao == nil || bo == nil {
		return true
	}
	return ao == bo
}

// identsMatch is the strict form: both sides must be identifiers of the
// same object.
func identsMatch(info *types.Info, a, b ast.Expr) bool {
	ai, aok := ast.Unparen(a).(*ast.Ident)
	bi, bok := ast.Unparen(b).(*ast.Ident)
	if !aok || !bok {
		return false
	}
	ao, bo := info.Uses[ai], info.Uses[bi]
	return ao != nil && ao == bo
}

// receiverIdent returns the receiver's identifier, nil for anonymous.
func receiverIdent(fd *ast.FuncDecl) *ast.Ident {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return fd.Recv.List[0].Names[0]
}

// isPanicCall matches a call to the builtin panic.
func isPanicCall(c *ast.CallExpr) bool {
	id, ok := ast.Unparen(c.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// renderExpr renders a small index expression for messages.
func renderExpr(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return renderExpr(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		if len(e.Args) == 1 {
			return renderExpr(e.Fun) + "(" + renderExpr(e.Args[0]) + ")"
		}
	}
	return "the shard index"
}
