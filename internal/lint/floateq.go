package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// epsilonHelperNames marks functions approved to compare floats exactly:
// the epsilon-comparison helpers themselves. A function qualifies when
// its name contains one of these fragments, case-insensitively.
var epsilonHelperNames = []string{"approx", "almost", "close", "near", "within"}

// FloatEq flags == and != between floating-point operands. Exact float
// comparison is almost always a correctness bug — accumulated rounding
// makes "equal" values differ in the last ulp, which silently flips
// branches (the simplex pivot in internal/lp is the canonical hazard).
// Compare against a tolerance, or suppress with //lint:allow floateq
// when the comparison is intentionally exact (sentinel zero, ±Inf
// checks, bit-identical determinism assertions).
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "exact ==/!= between floating-point values",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok && isEpsilonHelper(fd.Name.Name) {
					continue
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					be, ok := n.(*ast.BinaryExpr)
					if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
						return true
					}
					tx, ty := p.Info.TypeOf(be.X), p.Info.TypeOf(be.Y)
					if tx == nil || ty == nil || !isFloat(tx) || !isFloat(ty) {
						return true
					}
					// Two constants fold at compile time; nothing can drift.
					if p.Info.Types[be.X].Value != nil && p.Info.Types[be.Y].Value != nil {
						return true
					}
					p.Reportf(be.Pos(), "exact float comparison (%s); use a tolerance helper, or //lint:allow floateq if exactness is intended", be.Op)
					return true
				})
			}
		}
	},
}

func isEpsilonHelper(name string) bool {
	lower := strings.ToLower(name)
	for _, frag := range epsilonHelperNames {
		if strings.Contains(lower, frag) {
			return true
		}
	}
	return false
}
