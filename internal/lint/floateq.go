package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// epsilonHelperNames marks functions approved to compare floats exactly:
// the epsilon-comparison helpers themselves. A function qualifies when
// its name contains one of these fragments, case-insensitively.
var epsilonHelperNames = []string{"approx", "almost", "close", "near", "within"}

// FloatEq flags == and != between floating-point operands. Exact float
// comparison is almost always a correctness bug — accumulated rounding
// makes "equal" values differ in the last ulp, which silently flips
// branches (the simplex pivot in internal/lp is the canonical hazard).
// Compare against a tolerance, or suppress with //lint:allow floateq
// when the comparison is intentionally exact (sentinel zero, ±Inf
// checks, bit-identical determinism assertions).
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "exact ==/!= between floating-point values",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			statsName := statsImportName(f)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok && isEpsilonHelper(fd.Name.Name) {
					continue
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					be, ok := n.(*ast.BinaryExpr)
					if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
						return true
					}
					tx, ty := p.Info.TypeOf(be.X), p.Info.TypeOf(be.Y)
					if tx == nil || ty == nil || !isFloat(tx) || !isFloat(ty) {
						return true
					}
					// Two constants fold at compile time; nothing can drift.
					if p.Info.Types[be.X].Value != nil && p.Info.Types[be.Y].Value != nil {
						return true
					}
					fix := approxFix(p, statsName, be)
					if fix == nil {
						fix = suppressionFix(p, be.Pos(), "floateq", "TODO: justify this exact comparison")
					}
					p.ReportfFix(be.Pos(), fix, "exact float comparison (%s); use a tolerance helper, or //lint:allow floateq if exactness is intended", be.Op)
					return true
				})
			}
		}
	},
}

// approxFix rewrites `x == y` into statsName.ApproxEqual(x, y, 1e-9)
// (negated for !=) when the file already imports internal/stats. The
// three edits wrap the operands where they sit, so no operand text needs
// re-rendering, and the call is atomic — safe inside any larger
// expression.
func approxFix(p *Pass, statsName string, be *ast.BinaryExpr) *Fix {
	if statsName == "" {
		return nil
	}
	tf := p.Fset.File(be.Pos())
	if tf == nil {
		return nil
	}
	call := statsName + ".ApproxEqual("
	if be.Op == token.NEQ {
		call = "!" + call
	}
	return &Fix{
		Message: "compare within tolerance via " + statsName + ".ApproxEqual",
		Edits: []TextEdit{
			{File: tf.Name(), Start: tf.Offset(be.X.Pos()), End: tf.Offset(be.X.Pos()), New: call},
			{File: tf.Name(), Start: tf.Offset(be.X.End()), End: tf.Offset(be.Y.Pos()), New: ", "},
			{File: tf.Name(), Start: tf.Offset(be.Y.End()), End: tf.Offset(be.Y.End()), New: ", 1e-9)"},
		},
	}
}

// statsImportName returns the name under which f imports
// econcast/internal/stats, or "" when it doesn't (blank and dot imports
// included: neither yields a usable qualifier).
func statsImportName(f *ast.File) string {
	for _, imp := range f.Imports {
		if imp.Path.Value != `"econcast/internal/stats"` {
			continue
		}
		if imp.Name == nil {
			return "stats"
		}
		if n := imp.Name.Name; n != "_" && n != "." {
			return n
		}
	}
	return ""
}

func isEpsilonHelper(name string) bool {
	lower := strings.ToLower(name)
	for _, frag := range epsilonHelperNames {
		if strings.Contains(lower, frag) {
			return true
		}
	}
	return false
}
