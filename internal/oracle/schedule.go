package oracle

import (
	"fmt"
	"math/big"

	"econcast/internal/model"
)

// Schedule is the explicit periodic oracle schedule of Lemma 1: a
// fixed-size slotted schedule that feasibly realizes a rational solution
// (alpha*, beta*) of (P2). After an initial energy-accumulation period,
// repeating the schedule forever achieves groupput sum_i alpha_i while
// every node's per-period energy spend stays within its budget.
type Schedule struct {
	Period      int     // number of slots per period
	Transmitter []int   // per slot: transmitting node, or -1
	Listeners   [][]int // per slot: listening nodes (sorted)
}

// ratsFeasible verifies constraints (9)-(12) of (P2) in exact arithmetic.
func ratsFeasible(nw *model.Network, alpha, beta []*big.Rat) error {
	n := nw.N()
	if len(alpha) != n || len(beta) != n {
		return fmt.Errorf("oracle: alpha/beta length mismatch (n=%d)", n)
	}
	one := big.NewRat(1, 1)
	sumBeta := new(big.Rat)
	for i := 0; i < n; i++ {
		if alpha[i].Sign() < 0 || beta[i].Sign() < 0 {
			return fmt.Errorf("oracle: node %d: negative fraction", i)
		}
		sumBeta.Add(sumBeta, beta[i])
		// (10).
		ab := new(big.Rat).Add(alpha[i], beta[i])
		if ab.Cmp(one) > 0 {
			return fmt.Errorf("oracle: node %d: alpha+beta = %v > 1", i, ab)
		}
		// (9) in rationals: alpha L + beta X <= rho, using rational
		// approximations of the float parameters (exact for the binary64
		// values themselves).
		l := new(big.Rat).SetFloat64(nw.Nodes[i].ListenPower)
		x := new(big.Rat).SetFloat64(nw.Nodes[i].TransmitPower)
		rho := new(big.Rat).SetFloat64(nw.Nodes[i].Budget)
		spend := new(big.Rat).Add(
			new(big.Rat).Mul(alpha[i], l),
			new(big.Rat).Mul(beta[i], x))
		if spend.Cmp(rho) > 0 {
			return fmt.Errorf("oracle: node %d: power %v exceeds budget %v", i, spend, rho)
		}
	}
	// (11).
	if sumBeta.Cmp(one) > 0 {
		return fmt.Errorf("oracle: sum beta = %v > 1", sumBeta)
	}
	// (12).
	for i := 0; i < n; i++ {
		others := new(big.Rat).Sub(sumBeta, beta[i])
		if alpha[i].Cmp(others) > 0 {
			return fmt.Errorf("oracle: node %d: alpha %v exceeds others' transmit %v",
				i, alpha[i], others)
		}
	}
	return nil
}

// lcm64 returns lcm(a, b) for positive a, b.
func lcm64(a, b *big.Int) *big.Int {
	g := new(big.Int).GCD(nil, nil, a, b)
	out := new(big.Int).Div(a, g)
	return out.Mul(out, b)
}

// BuildSchedule constructs the Lemma 1 periodic schedule realizing the
// rational point (alpha, beta), which must satisfy (9)-(12); otherwise an
// error is returned. The period is the least common multiple of all
// denominators, so keep denominators small (see RatApprox).
func BuildSchedule(nw *model.Network, alpha, beta []*big.Rat) (*Schedule, error) {
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	if err := ratsFeasible(nw, alpha, beta); err != nil {
		return nil, err
	}
	n := nw.N()
	// Period = lcm of all denominators.
	period := big.NewInt(1)
	for i := 0; i < n; i++ {
		period = lcm64(period, alpha[i].Denom())
		period = lcm64(period, beta[i].Denom())
	}
	if !period.IsInt64() || period.Int64() > 1<<22 {
		return nil, fmt.Errorf("oracle: period %v too large; approximate the solution first", period)
	}
	p := int(period.Int64())

	// Integer slot counts per node.
	txSlots := make([]int, n)
	listenSlots := make([]int, n)
	for i := 0; i < n; i++ {
		txSlots[i] = ratTimesInt(beta[i], p)
		listenSlots[i] = ratTimesInt(alpha[i], p)
	}

	s := &Schedule{
		Period:      p,
		Transmitter: make([]int, p),
		Listeners:   make([][]int, p),
	}
	// Assign transmit slots in node order; (11) guarantees they fit.
	slot := 0
	for i := 0; i < n; i++ {
		for k := 0; k < txSlots[i]; k++ {
			s.Transmitter[slot] = i
			slot++
		}
	}
	for ; slot < p; slot++ {
		s.Transmitter[slot] = -1
	}
	// Each listener picks its listen slots from other nodes' transmit
	// slots; (12) guarantees enough are available. Multiple listeners may
	// share a slot.
	for i := 0; i < n; i++ {
		need := listenSlots[i]
		for t := 0; t < p && need > 0; t++ {
			if s.Transmitter[t] >= 0 && s.Transmitter[t] != i {
				s.Listeners[t] = append(s.Listeners[t], i)
				need--
			}
		}
		if need > 0 {
			return nil, fmt.Errorf("oracle: internal: node %d short %d listen slots", i, need)
		}
	}
	return s, nil
}

// ratTimesInt returns r * p, which must be an integer by construction of p.
func ratTimesInt(r *big.Rat, p int) int {
	v := new(big.Rat).Mul(r, big.NewRat(int64(p), 1))
	if !v.IsInt() {
		panic("oracle: non-integer slot count")
	}
	return int(v.Num().Int64())
}

// Groupput returns the schedule's groupput: total receptions per slot.
func (s *Schedule) Groupput() *big.Rat {
	total := 0
	for t := 0; t < s.Period; t++ {
		if s.Transmitter[t] >= 0 {
			total += len(s.Listeners[t])
		}
	}
	return big.NewRat(int64(total), int64(s.Period))
}

// Validate checks the structural and energetic feasibility of the schedule
// against the network: at most one transmitter per slot (trivially true by
// construction), listeners only during others' transmissions, and per-node
// energy spend within rho_i * Period per period (slot length 1).
func (s *Schedule) Validate(nw *model.Network) error {
	n := nw.N()
	listens := make([]int, n)
	transmits := make([]int, n)
	for t := 0; t < s.Period; t++ {
		tx := s.Transmitter[t]
		if tx >= n {
			return fmt.Errorf("oracle: slot %d: bad transmitter %d", t, tx)
		}
		if tx >= 0 {
			transmits[tx]++
		}
		for _, l := range s.Listeners[t] {
			if l < 0 || l >= n {
				return fmt.Errorf("oracle: slot %d: bad listener %d", t, l)
			}
			if tx < 0 {
				return fmt.Errorf("oracle: slot %d: node %d listens with no transmitter", t, l)
			}
			if l == tx {
				return fmt.Errorf("oracle: slot %d: node %d listens to itself", t, l)
			}
			listens[l]++
		}
	}
	for i := 0; i < n; i++ {
		node := nw.Nodes[i]
		spend := float64(listens[i])*node.ListenPower + float64(transmits[i])*node.TransmitPower
		budget := float64(s.Period) * node.Budget
		if spend > budget*(1+1e-12) {
			return fmt.Errorf("oracle: node %d spends %v per period, budget %v", i, spend, budget)
		}
		if listens[i]+transmits[i] > s.Period {
			return fmt.Errorf("oracle: node %d active %d slots in period %d",
				i, listens[i]+transmits[i], s.Period)
		}
	}
	return nil
}

// RatApprox returns a rational r <= f with denominator exactly den,
// i.e. floor(f*den)/den. Rounding down preserves feasibility of all the
// upper-bound constraints of (P2) at a small throughput cost, making LP
// (float) solutions schedulable.
func RatApprox(f float64, den int64) *big.Rat {
	if f < 0 {
		f = 0
	}
	num := int64(f * float64(den))
	return big.NewRat(num, den)
}

// RatApproxSolution converts an LP solution to rationals on a common
// denominator grid, rounding down for feasibility. Because rounding the
// betas down can tighten constraint (12), each alpha is additionally capped
// at the rounded sum of the other nodes' betas.
func RatApproxSolution(sol *Solution, den int64) (alpha, beta []*big.Rat) {
	alpha = make([]*big.Rat, len(sol.Alpha))
	beta = make([]*big.Rat, len(sol.Beta))
	sumBeta := new(big.Rat)
	for i := range sol.Beta {
		beta[i] = RatApprox(sol.Beta[i], den)
		sumBeta.Add(sumBeta, beta[i])
	}
	for i := range sol.Alpha {
		alpha[i] = RatApprox(sol.Alpha[i], den)
		others := new(big.Rat).Sub(sumBeta, beta[i])
		if alpha[i].Cmp(others) > 0 {
			alpha[i] = others
		}
	}
	return alpha, beta
}
