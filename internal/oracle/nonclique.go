package oracle

import (
	"context"
	"fmt"

	"econcast/internal/lp"
	"econcast/internal/model"
	"econcast/internal/topology"
)

// MaxNodesExactNonClique bounds the configuration-LP solver below: it
// enumerates all 2^N transmitter sets.
const MaxNodesExactNonClique = 16

// GroupputNonCliqueExact computes the *exact* oracle groupput for an
// arbitrary topology, going beyond the paper's §IV-C bounds. The paper
// leaves the exact non-clique oracle open because a listener may hear
// overlapping transmissions from mutually-hidden transmitters; here we
// solve it exactly for moderate N by time-sharing over transmitter
// configurations:
//
//	max  sum_j u_j
//	s.t. sum_S pi_S = 1                                   (time shares)
//	     u_j L_j + X_j sum_{S: j in S} pi_S <= rho_j      (power)
//	     u_j <= sum_{S in useful(j)} pi_S                 (reception cap)
//
// where S ranges over all transmitter subsets and useful(j) is the set of
// configurations in which j is silent and hears exactly one neighbor
// transmit. u_j aggregates j's useful listening time; any feasible u_j can
// be decomposed into per-configuration listening bounded by the pi_S, so
// the aggregation is lossless. The LP has 2^N + N variables but only
// 2N + 1 rows, so the dense simplex handles N up to 16 comfortably.
//
// The result always lies between the §IV-C bounds; the three coincide on
// the paper's grid topologies.
func GroupputNonCliqueExact(nw *model.Network, topo *topology.Topology) (*Solution, error) {
	return GroupputNonCliqueExactCtx(context.Background(), nw, topo)
}

// GroupputNonCliqueExactCtx is GroupputNonCliqueExact with a
// caller-controlled context; see GroupputCtx for the cancellation
// contract. The configuration LP is the largest solve in the package
// (2^N columns), so it is the one a serving deadline most needs to be
// able to abort.
func GroupputNonCliqueExactCtx(ctx context.Context, nw *model.Network, topo *topology.Topology) (*Solution, error) {
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	n := nw.N()
	if topo == nil {
		return nil, fmt.Errorf("oracle: exact non-clique solver needs a topology")
	}
	if topo.N() != n {
		return nil, fmt.Errorf("oracle: topology has %d nodes, network has %d", topo.N(), n)
	}
	if n > MaxNodesExactNonClique {
		return nil, fmt.Errorf("oracle: exact non-clique solver limited to %d nodes, got %d",
			MaxNodesExactNonClique, n)
	}
	return cachedSolve(kindNonCliqueExact, nw, topo, func() (*Solution, error) {
		return groupputNonCliqueExact(ctx, nw, topo)
	})
}

func groupputNonCliqueExact(ctx context.Context, nw *model.Network, topo *topology.Topology) (*Solution, error) {
	n := nw.N()
	numS := 1 << uint(n)
	nv := numS + n // pi_S for each S, then u_j
	uVar := func(j int) int { return numS + j }

	p := lp.NewProblem(lp.Maximize, nv)
	// The tableau is wide (2^N + N columns, 2N+1 rows): the simplex's
	// default Workers spreads pivot row updates over the sweep pool once
	// the tableau crosses the parallel cutoff, bit-identical to serial.
	for j := 0; j < n; j++ {
		p.C[uVar(j)] = 1
	}

	// Time shares sum to one.
	row := make([]float64, nv)
	for s := 0; s < numS; s++ {
		row[s] = 1
	}
	p.AddEQ(row, 1)

	// Precompute, for each S, each node's transmitting-neighbor count.
	// usefulRow[j][S] = 1 iff j not in S and exactly one neighbor of j in S.
	for j := 0; j < n; j++ {
		node := nw.Nodes[j]
		power := make([]float64, nv)
		cap := make([]float64, nv)
		jb := 1 << uint(j)
		for s := 0; s < numS; s++ {
			if s&jb != 0 {
				power[s] = node.TransmitPower / node.Budget
				continue
			}
			heard := 0
			for _, nb := range topo.Neighbors(j) {
				if s&(1<<uint(nb)) != 0 {
					heard++
					if heard > 1 {
						break
					}
				}
			}
			if heard == 1 {
				cap[s] = -1
			}
		}
		power[uVar(j)] = node.ListenPower / node.Budget
		p.AddLE(power, 1)
		cap[uVar(j)] = 1
		p.AddLE(cap, 0)
	}

	p.Ctx = ctx
	res, err := lp.Solve(p)
	if err != nil {
		return nil, err
	}
	if res.Status != lp.Optimal {
		return nil, fmt.Errorf("oracle: exact non-clique LP %v", res.Status)
	}
	alpha := make([]float64, n)
	beta := make([]float64, n)
	for j := 0; j < n; j++ {
		alpha[j] = res.X[uVar(j)]
		jb := 1 << uint(j)
		for s := 0; s < numS; s++ {
			if s&jb != 0 {
				beta[j] += res.X[s]
			}
		}
	}
	return &Solution{Throughput: res.Objective, Alpha: alpha, Beta: beta}, nil
}
