package oracle

import (
	"context"
	"math"
	"testing"

	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/topology"
)

// Golden-equivalence suite: the optimized oracle pipeline (symmetric
// routing + memoizing cache) must reproduce the seed solver — the full
// per-node dense LPs — to 1e-9 on the experiment operating points, and
// cache hits must be bitwise-identical to the miss that filled them.

const goldenTol = 1e-9

// TestGoldenFig2PointsMatchDense replays the Fig. 2 sampler (N=5,
// heterogeneity h from 10 to 250; h=10 is exactly homogeneous and routes
// through the symmetric LPs) and pins routed Groupput/Anyput against the
// dense formulations.
func TestGoldenFig2PointsMatchDense(t *testing.T) {
	src := rng.New(rng.DeriveSeed(42, 2))
	for _, h := range []float64{10, 50, 100, 150, 200, 250} {
		spec := model.HeterogeneitySpec{N: 5, H: h}
		for s := 0; s < 20; s++ {
			nw := spec.Sample(src)
			resetSolutionCache()
			g, err := Groupput(nw)
			if err != nil {
				t.Fatalf("h=%v sample %d: Groupput: %v", h, s, err)
			}
			gd, err := groupputDense(nw)
			if err != nil {
				t.Fatalf("h=%v sample %d: dense groupput: %v", h, s, err)
			}
			if !almost(g.Throughput, gd.Throughput, goldenTol) {
				t.Errorf("h=%v sample %d: routed groupput %v, dense %v", h, s, g.Throughput, gd.Throughput)
			}
			a, err := Anyput(nw)
			if err != nil {
				t.Fatalf("h=%v sample %d: Anyput: %v", h, s, err)
			}
			ad, err := anyputDense(context.Background(), nw)
			if err != nil {
				t.Fatalf("h=%v sample %d: dense anyput: %v", h, s, err)
			}
			if !almost(a.Throughput, ad.Throughput, goldenTol) {
				t.Errorf("h=%v sample %d: routed anyput %v, dense %v", h, s, a.Throughput, ad.Throughput)
			}
		}
	}
}

// TestGoldenTable3PointsMatchDense pins the testbed parameterization of
// Table III (homogeneous cliques on the measured TI CC1310 power numbers),
// which routes through the symmetric LPs, against the dense solver and —
// where its feasibility condition holds — the paper's closed form.
func TestGoldenTable3PointsMatchDense(t *testing.T) {
	for _, n := range []int{5, 10} {
		for _, budget := range []float64{1 * model.MilliWatt, 5 * model.MilliWatt} {
			nw := homog(n, budget, 67.08*model.MilliWatt, 56.29*model.MilliWatt)
			resetSolutionCache()
			g, err := Groupput(nw)
			if err != nil {
				t.Fatalf("n=%d rho=%v: %v", n, budget, err)
			}
			gd, err := groupputDense(nw)
			if err != nil {
				t.Fatalf("n=%d rho=%v: dense: %v", n, budget, err)
			}
			if !almost(g.Throughput, gd.Throughput, goldenTol) {
				t.Errorf("n=%d rho=%v: routed %v, dense %v", n, budget, g.Throughput, gd.Throughput)
			}
			if cf, ok := GroupputClosedForm(n, nw.Nodes[0]); ok {
				if !almost(g.Throughput, cf.Throughput, goldenTol) {
					t.Errorf("n=%d rho=%v: routed %v, closed form %v", n, budget, g.Throughput, cf.Throughput)
				}
			}
		}
	}
}

// TestGoldenSymmetricMatchesDenseSmallN sweeps homogeneous cliques n <= 8
// across power regimes (budget-limited, time-limited, and the boundary)
// and requires the symmetry-reduced LPs to agree with the full per-node
// LPs to 1e-9, per node and in total.
func TestGoldenSymmetricMatchesDenseSmallN(t *testing.T) {
	for n := 2; n <= 8; n++ {
		for _, rho := range []float64{0.01, 0.2, 0.6, 5} {
			nw := homog(n, rho, 0.9, 1.1)
			gs, err := groupputSymmetric(context.Background(), nw)
			if err != nil {
				t.Fatalf("n=%d rho=%v: symmetric: %v", n, rho, err)
			}
			gd, err := groupputDense(nw)
			if err != nil {
				t.Fatalf("n=%d rho=%v: dense: %v", n, rho, err)
			}
			if !almost(gs.Throughput, gd.Throughput, goldenTol) {
				t.Errorf("n=%d rho=%v: symmetric groupput %v, dense %v", n, rho, gs.Throughput, gd.Throughput)
			}
			as, err := anyputSymmetric(context.Background(), nw)
			if err != nil {
				t.Fatalf("n=%d rho=%v: symmetric anyput: %v", n, rho, err)
			}
			ad, err := anyputDense(context.Background(), nw)
			if err != nil {
				t.Fatalf("n=%d rho=%v: dense anyput: %v", n, rho, err)
			}
			if !almost(as.Throughput, ad.Throughput, goldenTol) {
				t.Errorf("n=%d rho=%v: symmetric anyput %v, dense %v", n, rho, as.Throughput, ad.Throughput)
			}
		}
	}
}

// TestCacheHitBitwiseIdentical pins the memoization contract: a hit
// returns exactly the floats the miss computed (bit-for-bit, so cached
// sweeps stay byte-identical), and mutating a returned solution must not
// poison later hits.
func TestCacheHitBitwiseIdentical(t *testing.T) {
	nw := homog(6, 0.4, 0.9, 1.1)
	resetSolutionCache()
	first, err := Groupput(nw)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Groupput(nw)
	if err != nil {
		t.Fatal(err)
	}
	sameBits := func(a, b *Solution) bool {
		if math.Float64bits(a.Throughput) != math.Float64bits(b.Throughput) {
			return false
		}
		for i := range a.Alpha {
			if math.Float64bits(a.Alpha[i]) != math.Float64bits(b.Alpha[i]) ||
				math.Float64bits(a.Beta[i]) != math.Float64bits(b.Beta[i]) {
				return false
			}
		}
		return true
	}
	if !sameBits(first, second) {
		t.Fatalf("cache hit differs from miss: %+v vs %+v", first, second)
	}
	// Mutate the hit; the cache must hand out untouched copies.
	second.Alpha[0] = -1
	second.Beta[0] = -1
	third, err := Groupput(nw)
	if err != nil {
		t.Fatal(err)
	}
	if !sameBits(first, third) {
		t.Fatalf("cache poisoned by caller mutation: %+v vs %+v", first, third)
	}
}

// TestCacheSeparatesBoundKinds guards the key construction: the lower and
// upper non-clique bounds share (network, topology) but differ in the LP,
// and must never collide in the cache.
func TestCacheSeparatesBoundKinds(t *testing.T) {
	nw := homog(9, 0.3, 1, 1)
	topo := topology.Grid(3, 3)
	resetSolutionCache()
	lower, upper, err := GroupputNonCliqueBounds(nw, topo)
	if err != nil {
		t.Fatal(err)
	}
	if lower.Throughput > upper.Throughput+goldenTol {
		t.Fatalf("lower bound %v exceeds upper %v", lower.Throughput, upper.Throughput)
	}
	// Re-query through the cache and require the same ordering and values.
	lower2, upper2, err := GroupputNonCliqueBounds(nw, topo)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(lower.Throughput) != math.Float64bits(lower2.Throughput) ||
		math.Float64bits(upper.Throughput) != math.Float64bits(upper2.Throughput) {
		t.Fatalf("cached bounds differ: (%v,%v) vs (%v,%v)",
			lower.Throughput, upper.Throughput, lower2.Throughput, upper2.Throughput)
	}
}
