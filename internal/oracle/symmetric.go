package oracle

import (
	"context"
	"fmt"

	"econcast/internal/lp"
	"econcast/internal/model"
)

// Symmetry-reduced oracle LPs for homogeneous cliques.
//
// When every node is identical, the feasible regions of (P2) and (P3) are
// invariant under node permutations and the objectives are symmetric
// linear functions, so averaging any feasible point over all n!
// permutations stays feasible and preserves the objective. An optimal
// *symmetric* point therefore always exists, and restricting the LP to
// symmetric points collapses the 2n-variable (P2) to two variables and the
// (n²+n)-variable (P3) to three — constant-size LPs independent of n. The
// golden tests pin these against the full per-node formulations to 1e-9,
// and against the paper's closed forms where those apply.

// groupputSymmetric solves (P2) restricted to symmetric points
// (alpha_i = a, beta_i = b for all i):
//
//	max n*a
//	s.t. a*L + b*X <= rho       (9)
//	     a + b <= 1             (10)
//	     n*b <= 1               (11)
//	     a - (n-1)*b <= 0       (12)
func groupputSymmetric(ctx context.Context, nw *model.Network) (*Solution, error) {
	n := nw.N()
	node := nw.Nodes[0]
	p := lp.NewProblem(lp.Maximize, 2)
	p.C[0] = float64(n)
	p.AddLE([]float64{node.ListenPower / node.Budget, node.TransmitPower / node.Budget}, 1)
	p.AddLE([]float64{1, 1}, 1)
	p.AddLE([]float64{0, float64(n)}, 1)
	p.AddLE([]float64{1, -float64(n - 1)}, 0)
	p.Ctx = ctx
	res, err := lp.Solve(p)
	if err != nil {
		return nil, err
	}
	if res.Status != lp.Optimal {
		return nil, fmt.Errorf("oracle: symmetric groupput LP %v", res.Status)
	}
	return &Solution{
		Throughput: res.Objective,
		Alpha:      repeat(res.X[0], n),
		Beta:       repeat(res.X[1], n),
	}, nil
}

// anyputSymmetric solves (P3) restricted to symmetric points (alpha_i = a,
// beta_i = b, chi_{i,j} = c for all i != j):
//
//	max n*b
//	s.t. a*L + b*X <= rho       (9)
//	     a + b <= 1             (10)
//	     n*b <= 1               (11)
//	     b - (n-1)*c <= 0       (14)
//	     a - (n-1)*c  = 0       (15)
func anyputSymmetric(ctx context.Context, nw *model.Network) (*Solution, error) {
	n := nw.N()
	node := nw.Nodes[0]
	p := lp.NewProblem(lp.Maximize, 3)
	p.C[1] = float64(n)
	p.AddLE([]float64{node.ListenPower / node.Budget, node.TransmitPower / node.Budget, 0}, 1)
	p.AddLE([]float64{1, 1, 0}, 1)
	p.AddLE([]float64{0, float64(n), 0}, 1)
	p.AddLE([]float64{0, 1, -float64(n - 1)}, 0)
	p.AddEQ([]float64{1, 0, -float64(n - 1)}, 0)
	p.Ctx = ctx
	res, err := lp.Solve(p)
	if err != nil {
		return nil, err
	}
	if res.Status != lp.Optimal {
		return nil, fmt.Errorf("oracle: symmetric anyput LP %v", res.Status)
	}
	return &Solution{
		Throughput: res.Objective,
		Alpha:      repeat(res.X[0], n),
		Beta:       repeat(res.X[1], n),
	}, nil
}
