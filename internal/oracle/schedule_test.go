package oracle

import (
	"math/big"
	"testing"
	"testing/quick"

	"econcast/internal/model"
	"econcast/internal/rng"
)

// exactNet3 uses binary-exact float parameters so rational feasibility
// checks are exact: L = X = 1 W, rho = 0.125 W.
func exactNet3() *model.Network {
	return model.Homogeneous(3, 0.125, 1, 1)
}

func TestBuildScheduleClosedForm(t *testing.T) {
	nw := exactNet3()
	// beta = rho/(X+2L) = 1/24, alpha = 2/24; spend = 3/24 = 0.125 exactly.
	alpha := []*big.Rat{big.NewRat(2, 24), big.NewRat(2, 24), big.NewRat(2, 24)}
	beta := []*big.Rat{big.NewRat(1, 24), big.NewRat(1, 24), big.NewRat(1, 24)}
	s, err := BuildSchedule(nw, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	if s.Period != 24 {
		t.Fatalf("period %d, want 24", s.Period)
	}
	if err := s.Validate(nw); err != nil {
		t.Fatal(err)
	}
	// Groupput of the schedule = sum alpha = 6/24 = 1/4.
	if s.Groupput().Cmp(big.NewRat(1, 4)) != 0 {
		t.Fatalf("schedule groupput %v, want 1/4", s.Groupput())
	}
}

func TestBuildScheduleRejectsInfeasible(t *testing.T) {
	nw := exactNet3()
	cases := []struct {
		name        string
		alpha, beta []*big.Rat
	}{
		{
			"power violated",
			[]*big.Rat{big.NewRat(1, 4), big.NewRat(2, 24), big.NewRat(2, 24)},
			[]*big.Rat{big.NewRat(1, 24), big.NewRat(1, 24), big.NewRat(1, 24)},
		},
		{
			"(12) violated: listening with nobody transmitting",
			[]*big.Rat{big.NewRat(1, 8), big.NewRat(0, 1), big.NewRat(0, 1)},
			[]*big.Rat{big.NewRat(0, 1), big.NewRat(0, 1), big.NewRat(0, 1)},
		},
		{
			"negative fraction",
			[]*big.Rat{big.NewRat(-1, 24), big.NewRat(0, 1), big.NewRat(0, 1)},
			[]*big.Rat{big.NewRat(0, 1), big.NewRat(0, 1), big.NewRat(0, 1)},
		},
		{
			"sum beta > 1",
			[]*big.Rat{big.NewRat(0, 1), big.NewRat(0, 1), big.NewRat(0, 1)},
			[]*big.Rat{big.NewRat(1, 2), big.NewRat(1, 2), big.NewRat(1, 8)},
		},
	}
	for _, c := range cases {
		if _, err := BuildSchedule(nw, c.alpha, c.beta); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestBuildScheduleFromLPSolution(t *testing.T) {
	// Full pipeline of Lemma 1: solve (P2), round to a rational grid, build
	// the schedule, validate, and confirm the realized groupput is within
	// the rounding loss of the LP optimum.
	nw := &model.Network{Nodes: []model.Node{
		{Budget: 5 * model.MicroWatt, ListenPower: model.MilliWatt, TransmitPower: model.MilliWatt},
		{Budget: 10 * model.MicroWatt, ListenPower: model.MilliWatt, TransmitPower: model.MilliWatt},
		{Budget: 50 * model.MicroWatt, ListenPower: model.MilliWatt, TransmitPower: model.MilliWatt},
		{Budget: 100 * model.MicroWatt, ListenPower: model.MilliWatt, TransmitPower: model.MilliWatt},
	}}
	sol, err := Groupput(nw)
	if err != nil {
		t.Fatal(err)
	}
	const den = 100000
	alpha, beta := RatApproxSolution(sol, den)
	s, err := BuildSchedule(nw, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(nw); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Groupput().Float64()
	// Rounding down loses at most 2N/den in total alpha.
	if got < sol.Throughput-8.0/den-1e-9 || got > sol.Throughput+1e-12 {
		t.Fatalf("schedule groupput %v vs LP %v", got, sol.Throughput)
	}
}

func TestScheduleValidateCatchesCorruption(t *testing.T) {
	nw := exactNet3()
	alpha := []*big.Rat{big.NewRat(2, 24), big.NewRat(2, 24), big.NewRat(2, 24)}
	beta := []*big.Rat{big.NewRat(1, 24), big.NewRat(1, 24), big.NewRat(1, 24)}
	s, err := BuildSchedule(nw, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: listener in an idle slot.
	s.Listeners[s.Period-1] = []int{0}
	if err := s.Validate(nw); err == nil {
		t.Fatal("corrupted schedule validated")
	}
	// Corrupt: self-listening.
	s2, _ := BuildSchedule(nw, alpha, beta)
	for tt := 0; tt < s2.Period; tt++ {
		if s2.Transmitter[tt] == 0 {
			s2.Listeners[tt] = append(s2.Listeners[tt], 0)
			break
		}
	}
	if err := s2.Validate(nw); err == nil {
		t.Fatal("self-listening schedule validated")
	}
}

func TestRatApprox(t *testing.T) {
	r := RatApprox(0.123456, 1000)
	if r.Cmp(big.NewRat(123, 1000)) != 0 {
		t.Fatalf("RatApprox = %v", r)
	}
	if RatApprox(-0.5, 10).Sign() != 0 {
		t.Fatal("negative input should clamp to 0")
	}
	f, _ := RatApprox(0.999, 10).Float64()
	if f != 0.9 {
		t.Fatalf("floor rounding wrong: %v", f)
	}
}

func TestBuildSchedulePeriodTooLarge(t *testing.T) {
	nw := exactNet3()
	// A denominator with a huge prime forces an astronomically large lcm.
	alpha := []*big.Rat{big.NewRat(1, 104729), big.NewRat(1, 104723), big.NewRat(1, 999983)}
	beta := []*big.Rat{big.NewRat(1, 24), big.NewRat(1, 24), big.NewRat(1, 24)}
	if _, err := BuildSchedule(nw, alpha, beta); err == nil {
		t.Fatal("expected period-too-large error")
	}
}

// Property (testing/quick): any feasible rational point built by
// construction yields a schedule that validates and realizes groupput
// equal to sum(alpha).
func TestBuildScheduleProperty(t *testing.T) {
	src := rng.New(77)
	f := func() bool {
		n := 2 + src.Intn(3)
		den := int64(12 + src.Intn(24)) // small denominators keep periods tiny
		// Budgets of 1 W with L = X = 1 W: power feasibility reduces to
		// alpha + beta <= 1, automatically satisfied below.
		nw := model.Homogeneous(n, 1, 1, 1)
		// Draw betas with sum <= 1.
		beta := make([]*big.Rat, n)
		sumBeta := new(big.Rat)
		budget := big.NewRat(den, den) // 1
		for i := range beta {
			remaining := new(big.Rat).Sub(budget, sumBeta)
			num := remaining.Num().Int64() * den / remaining.Denom().Int64()
			if num < 0 {
				num = 0
			}
			k := int64(0)
			if num > 0 {
				k = int64(src.Intn(int(num/int64(n)) + 1))
			}
			beta[i] = big.NewRat(k, den)
			sumBeta.Add(sumBeta, beta[i])
		}
		// Alphas bounded by both (12) and the power residual 1 - beta_i.
		alpha := make([]*big.Rat, n)
		for i := range alpha {
			others := new(big.Rat).Sub(sumBeta, beta[i])
			powerCap := new(big.Rat).Sub(budget, beta[i])
			cap := others
			if powerCap.Cmp(cap) < 0 {
				cap = powerCap
			}
			maxNum := cap.Num().Int64() * den / cap.Denom().Int64()
			k := int64(0)
			if maxNum > 0 {
				k = int64(src.Intn(int(maxNum) + 1))
			}
			alpha[i] = big.NewRat(k, den)
		}
		s, err := BuildSchedule(nw, alpha, beta)
		if err != nil {
			return false
		}
		if err := s.Validate(nw); err != nil {
			return false
		}
		want := new(big.Rat)
		for _, a := range alpha {
			want.Add(want, a)
		}
		return s.Groupput().Cmp(want) == 0
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
