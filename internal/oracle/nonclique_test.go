package oracle

import (
	"testing"

	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/topology"
)

func TestExactNonCliqueEqualsP2OnClique(t *testing.T) {
	// On a clique, multi-transmitter configurations are useless, so the
	// exact solver must reproduce (P2).
	for _, n := range []int{2, 3, 5} {
		nw := homog(n, 10*model.MicroWatt, 500*model.MicroWatt, 400*model.MicroWatt)
		exact, err := GroupputNonCliqueExact(nw, topology.Clique(n))
		if err != nil {
			t.Fatal(err)
		}
		p2, err := Groupput(nw)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(exact.Throughput, p2.Throughput, 1e-8) {
			t.Fatalf("n=%d: exact %v, P2 %v", n, exact.Throughput, p2.Throughput)
		}
	}
}

func TestExactNonCliqueBetweenBounds(t *testing.T) {
	src := rng.New(21)
	topos := []*topology.Topology{
		topology.SquareGrid(9),
		topology.Ring(8),
		topology.Star(7),
		topology.Line(6),
		topology.RandomGeometric(10, 0.45, src),
	}
	for _, topo := range topos {
		if !topo.Connected() {
			continue
		}
		nw := homog(topo.N(), 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
		lower, upper, err := GroupputNonCliqueBounds(nw, topo)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := GroupputNonCliqueExact(nw, topo)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Throughput < lower.Throughput-1e-7 {
			t.Fatalf("%s: exact %v below lower bound %v",
				topo.Name(), exact.Throughput, lower.Throughput)
		}
		if exact.Throughput > upper.Throughput+1e-7 {
			t.Fatalf("%s: exact %v above upper bound %v",
				topo.Name(), exact.Throughput, upper.Throughput)
		}
	}
}

func TestExactNonCliqueGridMatchesCoincidingBounds(t *testing.T) {
	// The paper observes the bounds coincide on its grids; the exact value
	// must then equal them.
	for _, n := range []int{4, 9, 16} {
		nw := homog(n, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
		topo := topology.SquareGrid(n)
		lower, upper, err := GroupputNonCliqueBounds(nw, topo)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(lower.Throughput, upper.Throughput, 1e-7) {
			t.Logf("n=%d: bounds differ (%v vs %v); skipping equality check",
				n, lower.Throughput, upper.Throughput)
			continue
		}
		exact, err := GroupputNonCliqueExact(nw, topo)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(exact.Throughput, lower.Throughput, 1e-7) {
			t.Fatalf("n=%d: exact %v != coinciding bounds %v",
				n, exact.Throughput, lower.Throughput)
		}
	}
}

// Two far-apart cliques must achieve exactly twice one clique's oracle.
// With energy-rich nodes, airtime (not power) binds, so the global
// single-transmitter lower bound cannot see the spatial reuse and lands
// strictly below the exact value. (Under ultra-low budgets the power
// constraint binds instead and even the lower bound achieves the reuse.)
func TestExactNonCliqueSpatialReuse(t *testing.T) {
	const half = 4
	topo := topology.New(2 * half)
	for i := 0; i < half; i++ {
		for j := i + 1; j < half; j++ {
			topo.AddEdge(i, j)
			topo.AddEdge(half+i, half+j)
		}
	}
	// Energy-unconstrained: each clique can keep one node transmitting and
	// the rest listening all the time.
	nw := homog(2*half, 1, 1e-3, 1e-3)
	exact, err := GroupputNonCliqueExact(nw, topo)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(exact.Throughput, 2*float64(half-1), 1e-7) {
		t.Fatalf("two cliques: exact %v, want %v", exact.Throughput, 2*float64(half-1))
	}
	// The single-transmitter lower bound is capped at half - ... strictly
	// below the exact spatial-reuse value.
	lower, _, err := GroupputNonCliqueBounds(nw, topo)
	if err != nil {
		t.Fatal(err)
	}
	if lower.Throughput >= exact.Throughput-1e-6 {
		t.Fatalf("lower bound %v not below exact %v under spatial reuse",
			lower.Throughput, exact.Throughput)
	}
	// And in the ultra-low-power regime, energy binds: exact equals twice
	// the single-clique oracle AND the lower bound already attains it.
	nwLow := homog(2*half, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	exactLow, err := GroupputNonCliqueExact(nwLow, topo)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Groupput(homog(half, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(exactLow.Throughput, 2*single.Throughput, 1e-7) {
		t.Fatalf("low-power two cliques: exact %v, want %v",
			exactLow.Throughput, 2*single.Throughput)
	}
}

func TestExactNonCliqueSolutionFeasible(t *testing.T) {
	topo := topology.SquareGrid(9)
	nw := homog(9, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	exact, err := GroupputNonCliqueExact(nw, topo)
	if err != nil {
		t.Fatal(err)
	}
	sumAlpha := 0.0
	for j := 0; j < 9; j++ {
		node := nw.Nodes[j]
		if exact.Alpha[j]*node.ListenPower+exact.Beta[j]*node.TransmitPower > node.Budget*(1+1e-6) {
			t.Fatalf("node %d power violated", j)
		}
		sumAlpha += exact.Alpha[j]
	}
	if !almost(sumAlpha, exact.Throughput, 1e-9) {
		t.Fatalf("objective mismatch: %v vs %v", sumAlpha, exact.Throughput)
	}
}

func TestExactNonCliqueErrors(t *testing.T) {
	nw := homog(5, 1e-5, 5e-4, 5e-4)
	if _, err := GroupputNonCliqueExact(nw, nil); err == nil {
		t.Fatal("nil topology accepted")
	}
	if _, err := GroupputNonCliqueExact(nw, topology.Clique(4)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	big := homog(MaxNodesExactNonClique+1, 1e-5, 5e-4, 5e-4)
	if _, err := GroupputNonCliqueExact(big, topology.Clique(MaxNodesExactNonClique+1)); err == nil {
		t.Fatal("oversized network accepted")
	}
}

func TestExactNonCliqueDisconnected(t *testing.T) {
	// An isolated node can neither send usefully nor receive: throughput
	// comes only from the connected pair.
	topo := topology.New(3)
	topo.AddEdge(0, 1)
	nw := homog(3, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	exact, err := GroupputNonCliqueExact(nw, topo)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := Groupput(homog(2, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(exact.Throughput, pair.Throughput, 1e-8) {
		t.Fatalf("exact %v, want pair oracle %v", exact.Throughput, pair.Throughput)
	}
	if exact.Alpha[2] > 1e-9 || exact.Beta[2] > 1e-9 {
		t.Fatal("isolated node active in optimal solution")
	}
}

func BenchmarkExactNonCliqueGrid16(b *testing.B) {
	nw := homog(16, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	topo := topology.SquareGrid(16)
	for i := 0; i < b.N; i++ {
		// Reset the memo cache so every iteration measures the 2^16-column
		// configuration LP itself (with its parallel pivots), not a hit.
		resetSolutionCache()
		if _, err := GroupputNonCliqueExact(nw, topo); err != nil {
			b.Fatal(err)
		}
	}
}
