package oracle

import (
	"context"
	"fmt"
	"testing"

	"econcast/internal/model"
)

// Oracle pipeline benchmarks across the n grid of the perf trajectory
// (BENCH_PR4.json). The routed benchmarks reset the memo cache every
// iteration so they measure the symmetric solve itself; the Dense variants
// measure the seed path (full per-node LP) on identical inputs, and
// CacheHit measures a warm lookup.

func benchNet(n int) *model.Network {
	return homog(n, 5*model.MilliWatt, 67.08*model.MilliWatt, 56.29*model.MilliWatt)
}

var benchNs = []int{6, 10, 14, 18}

func BenchmarkOracleGroupput(b *testing.B) {
	for _, n := range benchNs {
		nw := benchNet(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				resetSolutionCache()
				if _, err := Groupput(nw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOracleGroupputDense(b *testing.B) {
	for _, n := range benchNs {
		nw := benchNet(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := groupputDense(nw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOracleAnyput(b *testing.B) {
	for _, n := range benchNs {
		nw := benchNet(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				resetSolutionCache()
				if _, err := Anyput(nw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOracleAnyputDense(b *testing.B) {
	for _, n := range benchNs {
		nw := benchNet(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := anyputDense(context.Background(), nw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOracleCacheHit(b *testing.B) {
	nw := benchNet(14)
	resetSolutionCache()
	if _, err := Groupput(nw); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Groupput(nw); err != nil {
			b.Fatal(err)
		}
	}
}
