package oracle

import (
	"encoding/binary"
	"math"
	"sync"

	"econcast/internal/model"
	"econcast/internal/topology"
)

// Memoizing solution cache. Experiment sweeps revisit the same oracle
// point many times (fig2/fig4/table3 share (n, budget) grid points, and
// every sigma cell of a sweep needs the same sigma-independent oracle), so
// each distinct LP is solved once per process. Keys are canonical byte
// strings of everything the solution depends on — the objective kind, the
// exact float64 bit patterns of every node's parameters, and the topology
// adjacency — so two networks hash equal iff the solver would see
// identical inputs. Values are deep-copied on store and on hit: callers
// may mutate the slices they get back without poisoning the cache, which
// also keeps sweep results byte-identical at any worker count (a hit
// returns the same floats the miss computed).
type solutionCache struct {
	mu sync.Mutex
	m  map[string]*Solution
}

// cacheMaxEntries bounds the cache; on overflow the whole map is dropped
// (no LRU bookkeeping — oracle sweeps have far fewer distinct points, so
// eviction is a safety valve, not a steady state).
const cacheMaxEntries = 1 << 14

var solCache = &solutionCache{m: make(map[string]*Solution)}

// Cache key kinds: one per distinct LP formulation.
const (
	kindGroupput       byte = 1 // (P2) with the single-transmitter row (11)
	kindGroupputUpper  byte = 2 // (P2) without (11): non-clique upper bound
	kindAnyput         byte = 3 // (P3)
	kindNonCliqueExact byte = 4 // configuration LP of GroupputNonCliqueExact
)

// cacheKey builds the canonical key. A nil topology (clique semantics) and
// an explicit clique topology produce different keys; that costs at most
// one duplicate solve, never a wrong hit.
func cacheKey(kind byte, nw *model.Network, topo *topology.Topology) string {
	n := nw.N()
	buf := make([]byte, 0, 2+8*(1+3*n)+8*n)
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(n))
	for _, nd := range nw.Nodes {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(nd.Budget))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(nd.ListenPower))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(nd.TransmitPower))
	}
	if topo == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		for i := 0; i < topo.N(); i++ {
			nbs := topo.Neighbors(i) // sorted by construction
			buf = binary.LittleEndian.AppendUint64(buf, uint64(len(nbs)))
			for _, j := range nbs {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(j))
			}
		}
	}
	return string(buf)
}

func (c *solutionCache) lookup(key string) (*Solution, bool) {
	c.mu.Lock()
	sol, ok := c.m[key]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	return sol.clone(), true
}

func (c *solutionCache) store(key string, sol *Solution) {
	c.mu.Lock()
	if len(c.m) >= cacheMaxEntries {
		c.m = make(map[string]*Solution) // drop everything; no map iteration
	}
	c.m[key] = sol.clone()
	c.mu.Unlock()
}

func (s *Solution) clone() *Solution {
	return &Solution{
		Throughput: s.Throughput,
		Alpha:      append([]float64(nil), s.Alpha...),
		Beta:       append([]float64(nil), s.Beta...),
	}
}

// resetSolutionCache empties the cache; tests use it to force the solve
// path.
func resetSolutionCache() {
	solCache.mu.Lock()
	solCache.m = make(map[string]*Solution)
	solCache.mu.Unlock()
}

// cachedSolve memoizes solve under the canonical key for (kind, nw, topo).
func cachedSolve(kind byte, nw *model.Network, topo *topology.Topology, solve func() (*Solution, error)) (*Solution, error) {
	key := cacheKey(kind, nw, topo)
	if sol, ok := solCache.lookup(key); ok {
		return sol, nil
	}
	sol, err := solve()
	if err != nil {
		return nil, err
	}
	solCache.store(key, sol)
	return sol.clone(), nil
}
