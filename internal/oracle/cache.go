package oracle

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"

	"econcast/internal/model"
	"econcast/internal/topology"
)

// Memoizing solution cache. Experiment sweeps revisit the same oracle
// point many times (fig2/fig4/table3 share (n, budget) grid points, and
// every sigma cell of a sweep needs the same sigma-independent oracle), so
// each distinct LP is solved once per process. Keys are canonical byte
// strings of everything the solution depends on — the objective kind, the
// exact float64 bit patterns of every node's parameters, and the topology
// adjacency — so two networks hash equal iff the solver would see
// identical inputs. Values are deep-copied on store and on hit: callers
// may mutate the slices they get back without poisoning the cache, which
// also keeps sweep results byte-identical at any worker count (a hit
// returns the same floats the miss computed).
//
// The cache is LRU-bounded: a long-running service (cmd/oracled) answers
// an open-ended stream of distinct fleets, so unbounded memoization would
// be a slow leak. Eviction is least-recently-used, one entry at a time,
// and hit/miss/eviction counters are exported through CacheStats so the
// serving layer can surface them.
type solutionCache struct {
	mu    sync.Mutex
	m     map[string]*list.Element
	order *list.List // front = most recently used
	cap   int

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key string
	sol *Solution
}

// cacheMaxEntries bounds the cache. Eviction affects only performance,
// never results: an evicted point re-solves to the same bits.
const cacheMaxEntries = 1 << 14

var solCache = newSolutionCache(cacheMaxEntries)

func newSolutionCache(cap int) *solutionCache {
	return &solutionCache{
		m:     make(map[string]*list.Element),
		order: list.New(),
		cap:   cap,
	}
}

// CacheStats is a snapshot of the memo cache's counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// CacheStatsSnapshot returns the current memo-cache counters; the
// serving layer exposes them on its stats endpoint.
func CacheStatsSnapshot() CacheStats {
	solCache.mu.Lock()
	defer solCache.mu.Unlock()
	return CacheStats{
		Hits:      solCache.hits,
		Misses:    solCache.misses,
		Evictions: solCache.evictions,
		Entries:   solCache.order.Len(),
	}
}

// Kind identifies one memoized LP formulation. The serving layer keys
// its persistent cache with the same canonical bytes as the in-process
// memo, so batch and serving answers agree by construction.
type Kind byte

// Cache key kinds: one per distinct LP formulation.
const (
	KindGroupput       Kind = 1 // (P2) with the single-transmitter row (11)
	KindGroupputUpper  Kind = 2 // (P2) without (11): non-clique upper bound
	KindAnyput         Kind = 3 // (P3)
	KindNonCliqueExact Kind = 4 // configuration LP of GroupputNonCliqueExact
)

// Internal aliases keep the solver call sites terse.
const (
	kindGroupput       = byte(KindGroupput)
	kindGroupputUpper  = byte(KindGroupputUpper)
	kindAnyput         = byte(KindAnyput)
	kindNonCliqueExact = byte(KindNonCliqueExact)
)

// CanonicalKey returns the canonical cache key for (kind, nw, topo): the
// byte string two networks map to iff the solver would see identical
// inputs. It is the dedup key of the serving layer's singleflight group
// and the record key of its persistent cache.
func CanonicalKey(kind Kind, nw *model.Network, topo *topology.Topology) string {
	return cacheKey(byte(kind), nw, topo)
}

// cacheKey builds the canonical key. A nil topology (clique semantics) and
// an explicit clique topology produce different keys; that costs at most
// one duplicate solve, never a wrong hit.
func cacheKey(kind byte, nw *model.Network, topo *topology.Topology) string {
	n := nw.N()
	buf := make([]byte, 0, 2+8*(1+3*n)+8*n)
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(n))
	for _, nd := range nw.Nodes {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(nd.Budget))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(nd.ListenPower))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(nd.TransmitPower))
	}
	if topo == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		for i := 0; i < topo.N(); i++ {
			nbs := topo.Neighbors(i) // sorted by construction
			buf = binary.LittleEndian.AppendUint64(buf, uint64(len(nbs)))
			for _, j := range nbs {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(j))
			}
		}
	}
	return string(buf)
}

func (c *solutionCache) lookup(key string) (*Solution, bool) {
	c.mu.Lock()
	el, ok := c.m[key]
	if !ok {
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	sol := el.Value.(*cacheEntry).sol
	c.mu.Unlock()
	return sol.clone(), true
}

func (c *solutionCache) store(key string, sol *Solution) {
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		// Concurrent solvers can race to store the same key; both
		// computed identical bits, so either copy is fine.
		el.Value.(*cacheEntry).sol = sol.clone()
		c.order.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	if c.order.Len() >= c.cap {
		back := c.order.Back()
		delete(c.m, back.Value.(*cacheEntry).key)
		c.order.Remove(back)
		c.evictions++
	}
	c.m[key] = c.order.PushFront(&cacheEntry{key: key, sol: sol.clone()})
	c.mu.Unlock()
}

func (s *Solution) clone() *Solution {
	return &Solution{
		Throughput: s.Throughput,
		Alpha:      append([]float64(nil), s.Alpha...),
		Beta:       append([]float64(nil), s.Beta...),
	}
}

// resetSolutionCache empties the cache and zeroes its counters; tests
// use it to force the solve path.
func resetSolutionCache() {
	solCache.mu.Lock()
	solCache.m = make(map[string]*list.Element)
	solCache.order = list.New()
	solCache.hits, solCache.misses, solCache.evictions = 0, 0, 0
	solCache.mu.Unlock()
}

// cachedSolve memoizes solve under the canonical key for (kind, nw, topo).
func cachedSolve(kind byte, nw *model.Network, topo *topology.Topology, solve func() (*Solution, error)) (*Solution, error) {
	key := cacheKey(kind, nw, topo)
	if sol, ok := solCache.lookup(key); ok {
		return sol, nil
	}
	sol, err := solve()
	if err != nil {
		return nil, err
	}
	solCache.store(key, sol)
	return sol.clone(), nil
}
