package oracle

import (
	"math"
	"testing"

	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/topology"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func homog(n int, rho, l, x float64) *model.Network {
	return model.Homogeneous(n, rho, l, x)
}

func TestGroupputMatchesClosedForm(t *testing.T) {
	for _, n := range []int{2, 5, 10, 50} {
		node := model.Node{Budget: 10 * model.MicroWatt, ListenPower: 500 * model.MicroWatt, TransmitPower: 500 * model.MicroWatt}
		nw := homog(n, node.Budget, node.ListenPower, node.TransmitPower)
		sol, err := Groupput(nw)
		if err != nil {
			t.Fatal(err)
		}
		cf, ok := GroupputClosedForm(n, node)
		if !ok {
			t.Fatalf("n=%d: closed form invalid", n)
		}
		if !almost(sol.Throughput, cf.Throughput, 1e-9) {
			t.Fatalf("n=%d: LP %v, closed form %v", n, sol.Throughput, cf.Throughput)
		}
	}
}

func TestAnyputMatchesClosedForm(t *testing.T) {
	for _, n := range []int{2, 5, 10} {
		node := model.Node{Budget: 10 * model.MicroWatt, ListenPower: 600 * model.MicroWatt, TransmitPower: 400 * model.MicroWatt}
		nw := homog(n, node.Budget, node.ListenPower, node.TransmitPower)
		sol, err := Anyput(nw)
		if err != nil {
			t.Fatal(err)
		}
		cf, ok := AnyputClosedForm(n, node)
		if !ok {
			t.Fatalf("n=%d: closed form invalid", n)
		}
		if !almost(sol.Throughput, cf.Throughput, 1e-9) {
			t.Fatalf("n=%d: LP %v, closed form %v", n, sol.Throughput, cf.Throughput)
		}
	}
}

func TestUnconstrainedLimits(t *testing.T) {
	// With an enormous budget the oracle groupput is N-1 (one node always
	// transmits, the rest always listen) and anyput is 1.
	nw := homog(5, 10, 1e-3, 1e-3)
	g, err := Groupput(nw)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(g.Throughput, 4, 1e-8) {
		t.Fatalf("unconstrained groupput %v, want 4", g.Throughput)
	}
	a, err := Anyput(nw)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(a.Throughput, 1, 1e-8) {
		t.Fatalf("unconstrained anyput %v, want 1", a.Throughput)
	}
}

func TestGroupputSolutionFeasible(t *testing.T) {
	src := rng.New(4)
	for trial := 0; trial < 20; trial++ {
		nw := model.HeterogeneitySpec{N: 6, H: 200}.Sample(src)
		sol, err := Groupput(nw)
		if err != nil {
			t.Fatal(err)
		}
		sumBeta := 0.0
		for i := 0; i < 6; i++ {
			node := nw.Nodes[i]
			if sol.Alpha[i]*node.ListenPower+sol.Beta[i]*node.TransmitPower > node.Budget*(1+1e-6) {
				t.Fatalf("trial %d node %d: power violated", trial, i)
			}
			if sol.Alpha[i]+sol.Beta[i] > 1+1e-9 {
				t.Fatalf("trial %d node %d: time violated", trial, i)
			}
			sumBeta += sol.Beta[i]
		}
		if sumBeta > 1+1e-9 {
			t.Fatalf("trial %d: sum beta %v", trial, sumBeta)
		}
		for i := 0; i < 6; i++ {
			if sol.Alpha[i] > sumBeta-sol.Beta[i]+1e-9 {
				t.Fatalf("trial %d node %d: (12) violated", trial, i)
			}
		}
		// Objective consistency.
		sumAlpha := 0.0
		for _, a := range sol.Alpha {
			sumAlpha += a
		}
		if !almost(sumAlpha, sol.Throughput, 1e-9) {
			t.Fatalf("objective mismatch: %v vs %v", sumAlpha, sol.Throughput)
		}
	}
}

func TestAnyputAtMostGroupputTimesNMinus1(t *testing.T) {
	// Anyput <= 1 always; groupput <= N-1.
	src := rng.New(5)
	for trial := 0; trial < 10; trial++ {
		nw := model.HeterogeneitySpec{N: 5, H: 100}.Sample(src)
		g, err := Groupput(nw)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Anyput(nw)
		if err != nil {
			t.Fatal(err)
		}
		if g.Throughput > 4+1e-9 || a.Throughput > 1+1e-9 {
			t.Fatalf("bounds violated: g=%v a=%v", g.Throughput, a.Throughput)
		}
	}
}

// Table II: 4 nodes with L=X=1mW and budgets 5, 10, 50, 100 uW. The awake
// fraction alpha+beta must equal rho/L (0.5%, 1%, 5%, 10%) since the power
// constraint binds.
func TestTableIIAwakeFractions(t *testing.T) {
	nw := &model.Network{Nodes: []model.Node{
		{Budget: 5 * model.MicroWatt, ListenPower: model.MilliWatt, TransmitPower: model.MilliWatt},
		{Budget: 10 * model.MicroWatt, ListenPower: model.MilliWatt, TransmitPower: model.MilliWatt},
		{Budget: 50 * model.MicroWatt, ListenPower: model.MilliWatt, TransmitPower: model.MilliWatt},
		{Budget: 100 * model.MicroWatt, ListenPower: model.MilliWatt, TransmitPower: model.MilliWatt},
	}}
	sol, err := Groupput(nw)
	if err != nil {
		t.Fatal(err)
	}
	// (P2) is degenerate here: many (alpha, beta) splits achieve the
	// optimum, and the paper's Table II reports one of them (the P4
	// entropy-regularized point; see the table2 experiment). The optimal
	// *value* is unique: with c_i = rho_i/L, T*_g = max_B sum_i min(c_i, B)
	// - B over achievable B = sum beta, which for c = (0.005, 0.01, 0.05,
	// 0.1) is 0.065.
	if !almost(sol.Throughput, 0.065, 1e-9) {
		t.Fatalf("Table II groupput %v, want 0.065", sol.Throughput)
	}
	for i := range sol.Alpha {
		want := []float64{0.005, 0.01, 0.05, 0.1}[i]
		if got := sol.Alpha[i] + sol.Beta[i]; got > want+1e-9 {
			t.Fatalf("node %d awake %v exceeds budget cap %v", i, got, want)
		}
	}
}

// Homogeneous Table II variant: all budgets 100 uW -> each node awake 10%
// of the time with optimal value 0.3 (the symmetric point has alpha=0.075,
// beta=0.025, i.e. 25% transmit-when-awake).
func TestTableIIHomogeneousVariant(t *testing.T) {
	nw := homog(4, 100*model.MicroWatt, model.MilliWatt, model.MilliWatt)
	sol, err := Groupput(nw)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Throughput, 0.3, 1e-9) {
		t.Fatalf("groupput %v, want 0.3", sol.Throughput)
	}
	cf, ok := GroupputClosedForm(4, nw.Nodes[0])
	if !ok || !almost(cf.Throughput, 0.3, 1e-12) {
		t.Fatalf("closed form %v ok=%v, want 0.3", cf.Throughput, ok)
	}
}

func TestNonCliqueBoundsClique(t *testing.T) {
	nw := homog(5, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	topo := topology.Clique(5)
	lower, upper, err := GroupputNonCliqueBounds(nw, topo)
	if err != nil {
		t.Fatal(err)
	}
	clique, _ := Groupput(nw)
	if !almost(lower.Throughput, clique.Throughput, 1e-9) {
		t.Fatalf("clique lower bound %v != oracle %v", lower.Throughput, clique.Throughput)
	}
	if upper.Throughput < lower.Throughput-1e-9 {
		t.Fatalf("upper %v < lower %v", upper.Throughput, lower.Throughput)
	}
}

func TestNonCliqueBoundsGrid(t *testing.T) {
	// The paper reports that for the grid topologies of Fig. 6 the two
	// bounds coincide, giving the exact oracle.
	for _, n := range []int{4, 9, 16, 25} {
		nw := homog(n, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
		topo := topology.SquareGrid(n)
		lower, upper, err := GroupputNonCliqueBounds(nw, topo)
		if err != nil {
			t.Fatal(err)
		}
		if lower.Throughput <= 0 {
			t.Fatalf("n=%d: lower bound %v", n, lower.Throughput)
		}
		if upper.Throughput < lower.Throughput-1e-9 {
			t.Fatalf("n=%d: upper %v < lower %v", n, upper.Throughput, lower.Throughput)
		}
		if !almost(lower.Throughput, upper.Throughput, 1e-6) {
			t.Logf("n=%d: bounds differ: lower %v, upper %v (paper reports equality for its grids)",
				n, lower.Throughput, upper.Throughput)
		}
	}
}

func TestTopologySizeMismatch(t *testing.T) {
	nw := homog(5, 1e-5, 5e-4, 5e-4)
	if _, _, err := GroupputNonCliqueBounds(nw, topology.Clique(4)); err == nil {
		t.Fatal("expected error")
	}
}

func TestAnyputTrivialNetworks(t *testing.T) {
	sol, err := Anyput(homog(1, 1e-5, 5e-4, 5e-4))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Throughput != 0 {
		t.Fatalf("single-node anyput %v", sol.Throughput)
	}
}

func TestClosedFormInvalidWhenBudgetHuge(t *testing.T) {
	// With rho so large that nodes would be awake more than 100% of the
	// time, the closed form must flag itself invalid.
	node := model.Node{Budget: 1, ListenPower: 1e-3, TransmitPower: 1e-3}
	if _, ok := GroupputClosedForm(5, node); ok {
		t.Fatal("closed form claimed valid for unconstrained node")
	}
	if _, ok := AnyputClosedForm(5, node); ok {
		t.Fatal("anyput closed form claimed valid for unconstrained node")
	}
}
