package oracle

import (
	"context"
	"errors"
	"testing"

	"econcast/internal/lp"
	"econcast/internal/model"
)

// TestCacheLRUEviction drives a tiny private cache directly and pins the
// LRU discipline: the least-recently-used entry is evicted first, a hit
// refreshes recency, and the counters account for every path.
func TestCacheLRUEviction(t *testing.T) {
	c := newSolutionCache(2)
	solA := &Solution{Throughput: 1, Alpha: []float64{1}, Beta: []float64{0}}
	solB := &Solution{Throughput: 2, Alpha: []float64{2}, Beta: []float64{0}}
	solC := &Solution{Throughput: 3, Alpha: []float64{3}, Beta: []float64{0}}

	c.store("a", solA)
	c.store("b", solB)
	if _, ok := c.lookup("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("expected hit on a")
	}
	c.store("c", solC) // evicts b
	if _, ok := c.lookup("b"); ok {
		t.Fatal("b should have been evicted as the LRU entry")
	}
	if got, ok := c.lookup("a"); !ok || got.Throughput != 1 {
		t.Fatalf("a lost or corrupted after eviction: %+v ok=%v", got, ok)
	}
	if got, ok := c.lookup("c"); !ok || got.Throughput != 3 {
		t.Fatalf("c lost or corrupted: %+v ok=%v", got, ok)
	}
	c.mu.Lock()
	hits, misses, evictions, entries := c.hits, c.misses, c.evictions, c.order.Len()
	c.mu.Unlock()
	if hits != 3 || misses != 1 || evictions != 1 || entries != 2 {
		t.Fatalf("counters: hits=%d misses=%d evictions=%d entries=%d, want 3/1/1/2",
			hits, misses, evictions, entries)
	}
}

// TestCacheStoreRefreshesExisting pins the double-store path: two racers
// computing the same key leave one entry, not two, and the cache keeps
// serving correct bits.
func TestCacheStoreRefreshesExisting(t *testing.T) {
	c := newSolutionCache(2)
	sol := &Solution{Throughput: 7, Alpha: []float64{7}, Beta: []float64{0}}
	c.store("k", sol)
	c.store("k", sol)
	c.mu.Lock()
	entries := c.order.Len()
	c.mu.Unlock()
	if entries != 1 {
		t.Fatalf("double store left %d entries, want 1", entries)
	}
	if got, ok := c.lookup("k"); !ok || got.Throughput != 7 {
		t.Fatalf("lookup after double store: %+v ok=%v", got, ok)
	}
}

// TestCacheStatsSnapshot exercises the exported counter surface through
// the public solver API.
func TestCacheStatsSnapshot(t *testing.T) {
	resetSolutionCache()
	nw := model.Homogeneous(5, 10e-6, 500e-6, 500e-6)
	if _, err := Groupput(nw); err != nil {
		t.Fatal(err)
	}
	if _, err := Groupput(nw); err != nil {
		t.Fatal(err)
	}
	st := CacheStatsSnapshot()
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("stats after miss+hit: %+v", st)
	}
}

// TestCanceledSolveNotCached pins the cancellation contract end to end:
// an already-canceled context aborts the LP with an error wrapping both
// lp.ErrCanceled and context.Canceled, and the failed solve leaves no
// cache entry behind — the next call with a live context solves cleanly.
func TestCanceledSolveNotCached(t *testing.T) {
	resetSolutionCache()
	// Heterogeneous so the dense per-node LP path runs (the symmetric
	// 2-variable LP could finish before its first poll otherwise).
	nw := model.Homogeneous(6, 10e-6, 500e-6, 500e-6)
	nw.Nodes[0].Budget = 11e-6
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := GroupputCtx(ctx, nw)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, lp.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v should wrap lp.ErrCanceled and context.Canceled", err)
	}
	if st := CacheStatsSnapshot(); st.Entries != 0 {
		t.Fatalf("canceled solve was cached: %+v", st)
	}
	sol, err := GroupputCtx(context.Background(), nw)
	if err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	if sol.Throughput <= 0 {
		t.Fatalf("retry produced degenerate solution: %+v", sol)
	}
}
