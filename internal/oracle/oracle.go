// Package oracle computes the paper's oracle (offline-optimal) throughput:
// problem (P2) for groupput and (P3) for anyput in cliques (§IV-A/B), the
// homogeneous closed forms, and the upper/lower bounds for non-clique
// topologies (§IV-C). It also constructs the explicit periodic schedule of
// Lemma 1 in exact rational arithmetic, proving achievability.
package oracle

import (
	"context"
	"fmt"

	"econcast/internal/lp"
	"econcast/internal/model"
	"econcast/internal/topology"
)

// Solution is an optimal operating point: per-node listen and transmit
// time fractions and the resulting throughput.
type Solution struct {
	Throughput float64
	Alpha      []float64 // fraction of time listening
	Beta       []float64 // fraction of time transmitting
}

// Groupput solves (P2): the oracle groupput of a clique network.
//
//	max sum_i alpha_i
//	s.t. alpha_i L_i + beta_i X_i <= rho_i        (9)
//	     alpha_i + beta_i <= 1                    (10)
//	     sum_i beta_i <= 1                        (11)
//	     alpha_i <= sum_{j != i} beta_j           (12)
//
// Homogeneous networks are routed through the symmetry-reduced two-variable
// LP (see symmetric.go); the result is memoized either way, so sweeps that
// revisit the same oracle point solve each LP once.
func Groupput(nw *model.Network) (*Solution, error) {
	return GroupputCtx(context.Background(), nw)
}

// GroupputCtx is Groupput with a caller-controlled context: when ctx is
// canceled or its deadline passes, the in-flight LP aborts with an error
// wrapping lp.ErrCanceled (and ctx's own error). Canceled solves are
// never cached.
func GroupputCtx(ctx context.Context, nw *model.Network) (*Solution, error) {
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	return cachedSolve(kindGroupput, nw, nil, func() (*Solution, error) {
		if nw.Homogeneous() {
			return groupputSymmetric(ctx, nw)
		}
		return groupputWithNeighbors(ctx, nw, nil, true)
	})
}

// groupputDense solves (P2) through the full 2n-variable per-node LP
// regardless of symmetry, bypassing both the cache and the reduced
// routing. Golden tests and benchmarks pin the routed path against it.
func groupputDense(nw *model.Network) (*Solution, error) {
	return groupputWithNeighbors(context.Background(), nw, nil, true)
}

// groupputWithNeighbors solves (P2) with constraint (12) restricted to each
// node's neighbor set (nil topo means clique) and with constraint (11)
// optionally dropped, covering the non-clique bounds of §IV-C.
func groupputWithNeighbors(ctx context.Context, nw *model.Network, topo *topology.Topology, singleTransmitter bool) (*Solution, error) {
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	n := nw.N()
	if topo != nil && topo.N() != n {
		return nil, fmt.Errorf("oracle: topology has %d nodes, network has %d", topo.N(), n)
	}
	// Variables: alpha_0..alpha_{n-1}, beta_0..beta_{n-1}.
	p := lp.NewProblem(lp.Maximize, 2*n)
	for i := 0; i < n; i++ {
		p.C[i] = 1
	}
	for i := 0; i < n; i++ {
		node := nw.Nodes[i]
		// (9), normalized by the budget for conditioning.
		row := make([]float64, 2*n)
		row[i] = node.ListenPower / node.Budget
		row[n+i] = node.TransmitPower / node.Budget
		p.AddLE(row, 1)
		// (10).
		row = make([]float64, 2*n)
		row[i] = 1
		row[n+i] = 1
		p.AddLE(row, 1)
		// (12): alpha_i - sum_{j in N(i)} beta_j <= 0.
		row = make([]float64, 2*n)
		row[i] = 1
		if topo == nil {
			for j := 0; j < n; j++ {
				if j != i {
					row[n+j] = -1
				}
			}
		} else {
			for _, j := range topo.Neighbors(i) {
				row[n+j] = -1
			}
		}
		p.AddLE(row, 0)
	}
	if singleTransmitter {
		// (11).
		row := make([]float64, 2*n)
		for j := 0; j < n; j++ {
			row[n+j] = 1
		}
		p.AddLE(row, 1)
	}
	p.Ctx = ctx
	res, err := lp.Solve(p)
	if err != nil {
		return nil, err
	}
	if res.Status != lp.Optimal {
		return nil, fmt.Errorf("oracle: groupput LP %v", res.Status)
	}
	return &Solution{
		Throughput: res.Objective,
		Alpha:      res.X[:n],
		Beta:       res.X[n : 2*n],
	}, nil
}

// Anyput solves (P3): the oracle anyput of a clique network.
//
//	max sum_i beta_i
//	s.t. (9), (10), (11)
//	     beta_i <= sum_{j != i} chi_{i,j}      (14)
//	     alpha_j = sum_{i != j} chi_{i,j}      (15)
//
// where chi_{i,j} is the fraction of time node j receives from node i.
//
// Homogeneous networks are routed through the symmetry-reduced
// three-variable LP (see symmetric.go); the result is memoized either way.
func Anyput(nw *model.Network) (*Solution, error) {
	return AnyputCtx(context.Background(), nw)
}

// AnyputCtx is Anyput with a caller-controlled context; see GroupputCtx
// for the cancellation contract.
func AnyputCtx(ctx context.Context, nw *model.Network) (*Solution, error) {
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	if nw.N() < 2 {
		return &Solution{Throughput: 0, Alpha: make([]float64, nw.N()), Beta: make([]float64, nw.N())}, nil
	}
	return cachedSolve(kindAnyput, nw, nil, func() (*Solution, error) {
		if nw.Homogeneous() {
			return anyputSymmetric(ctx, nw)
		}
		return anyputDense(ctx, nw)
	})
}

// anyputDense solves (P3) through the full (n²+n)-variable per-node LP
// regardless of symmetry, bypassing both the cache and the reduced
// routing. Golden tests and benchmarks pin the routed path against it.
func anyputDense(ctx context.Context, nw *model.Network) (*Solution, error) {
	n := nw.N()
	// Variables: alpha (n), beta (n), chi (n*(n-1)) indexed by chiIdx.
	nChi := n * (n - 1)
	nv := 2*n + nChi
	chiIdx := func(i, j int) int {
		// Position of chi_{i,j} (i transmits, j receives), j != i.
		col := j
		if j > i {
			col--
		}
		return 2*n + i*(n-1) + col
	}
	p := lp.NewProblem(lp.Maximize, nv)
	for i := 0; i < n; i++ {
		p.C[n+i] = 1
	}
	for i := 0; i < n; i++ {
		node := nw.Nodes[i]
		// (9).
		row := make([]float64, nv)
		row[i] = node.ListenPower / node.Budget
		row[n+i] = node.TransmitPower / node.Budget
		p.AddLE(row, 1)
		// (10).
		row = make([]float64, nv)
		row[i] = 1
		row[n+i] = 1
		p.AddLE(row, 1)
		// (14): beta_i - sum_{j != i} chi_{i,j} <= 0.
		row = make([]float64, nv)
		row[n+i] = 1
		for j := 0; j < n; j++ {
			if j != i {
				row[chiIdx(i, j)] = -1
			}
		}
		p.AddLE(row, 0)
		// (15): alpha_i = sum_{j != i} chi_{j,i}.
		row = make([]float64, nv)
		row[i] = 1
		for j := 0; j < n; j++ {
			if j != i {
				row[chiIdx(j, i)] = -1
			}
		}
		p.AddEQ(row, 0)
	}
	// (11).
	row := make([]float64, nv)
	for j := 0; j < n; j++ {
		row[n+j] = 1
	}
	p.AddLE(row, 1)

	p.Ctx = ctx
	res, err := lp.Solve(p)
	if err != nil {
		return nil, err
	}
	if res.Status != lp.Optimal {
		return nil, fmt.Errorf("oracle: anyput LP %v", res.Status)
	}
	return &Solution{
		Throughput: res.Objective,
		Alpha:      res.X[:n],
		Beta:       res.X[n : 2*n],
	}, nil
}

// GroupputNonCliqueBounds returns the lower and upper bounds of §IV-C on
// the oracle groupput for an arbitrary topology: the lower bound restricts
// listening to neighbors' transmissions while keeping the global
// single-transmitter constraint (11); the upper bound additionally drops
// (11), allowing spatially overlapping transmissions. When the two agree
// the exact oracle T*_nc is known.
func GroupputNonCliqueBounds(nw *model.Network, topo *topology.Topology) (lower, upper *Solution, err error) {
	return GroupputNonCliqueBoundsCtx(context.Background(), nw, topo)
}

// GroupputNonCliqueBoundsCtx is GroupputNonCliqueBounds with a
// caller-controlled context; see GroupputCtx for the cancellation
// contract.
func GroupputNonCliqueBoundsCtx(ctx context.Context, nw *model.Network, topo *topology.Topology) (lower, upper *Solution, err error) {
	lower, err = cachedSolve(kindGroupput, nw, topo, func() (*Solution, error) {
		return groupputWithNeighbors(ctx, nw, topo, true)
	})
	if err != nil {
		return nil, nil, err
	}
	upper, err = cachedSolve(kindGroupputUpper, nw, topo, func() (*Solution, error) {
		return groupputWithNeighbors(ctx, nw, topo, false)
	})
	if err != nil {
		return nil, nil, err
	}
	return lower, upper, nil
}

// GroupputClosedForm returns the homogeneous closed form of §IV-A:
// beta* = rho/(X+(N-1)L), alpha* = (N-1) beta*, T*_g = N alpha*. The
// formula assumes the power constraint dominates; ok reports whether the
// resulting point also satisfies (10) and (11) and hence is the true
// optimum.
func GroupputClosedForm(n int, node model.Node) (sol *Solution, ok bool) {
	beta := node.Budget / (node.TransmitPower + float64(n-1)*node.ListenPower)
	alpha := float64(n-1) * beta
	ok = alpha+beta <= 1 && float64(n)*beta <= 1
	return &Solution{
		Throughput: float64(n) * alpha,
		Alpha:      repeat(alpha, n),
		Beta:       repeat(beta, n),
	}, ok
}

// AnyputClosedForm returns the homogeneous closed form of §IV-B:
// beta* = alpha* = rho/(X+L), T*_a = N beta*.
func AnyputClosedForm(n int, node model.Node) (sol *Solution, ok bool) {
	beta := node.Budget / (node.TransmitPower + node.ListenPower)
	ok = 2*beta <= 1 && float64(n)*beta <= 1
	return &Solution{
		Throughput: float64(n) * beta,
		Alpha:      repeat(beta, n),
		Beta:       repeat(beta, n),
	}, ok
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
