// Package testbed emulates the paper's §VIII experimental platform, the TI
// eZ430-RF2500-SEH energy-harvesting node, substituting for the physical
// hardware we do not have. It reproduces the properties the paper says
// drive the experimental results:
//
//   - the measured power levels (L = 67.08 mW listening, X = 56.29 mW
//     transmitting at -16 dBm) and budgets rho of 1 or 5 mW;
//   - the CC2500 radio timing: 40 ms data packets, a fixed 8 ms pinging
//     interval after every packet, and 0.4 ms pings sent by each successful
//     recipient at a uniformly random time in the interval (§VIII-C) — with
//     collisions and decode failures, so the transmitter's listener
//     estimate c-hat is imperfect (Table IV);
//   - a software virtual battery driving the eq. (17) multiplier update at
//     nominal power levels, while the real consumption additionally pays a
//     regulator/circuitry overhead, making actual power exceed rho by a few
//     percent exactly as measured in §VIII-B;
//   - per-node low-power-clock drift affecting sleep durations.
//
// Nodes run EconCast-C (the variant the paper implements). An observer
// node that only logs packets is implicit in the metrics.
package testbed

import (
	"container/heap"
	"errors"
	"math"

	"econcast/internal/econcast"
	"econcast/internal/faults"
	"econcast/internal/model"
	"econcast/internal/rng"
	"econcast/internal/stats"
)

// Config describes one emulated experiment. Zero fields default to the
// paper's hardware constants.
type Config struct {
	N      int
	Budget float64 // rho (default 1 mW)
	// Budgets optionally gives each node its own rho (length N),
	// overriding Budget — an extension beyond the paper's homogeneous
	// testbed.
	Budgets []float64
	Sigma   float64
	Mode    model.Mode // the paper's experiments use groupput
	Delta   float64
	Tau     float64

	Duration float64
	Warmup   float64
	Seed     uint64

	// Hardware constants (defaults: paper's measurements).
	ListenPower   float64 // 67.08 mW
	TransmitPower float64 // 56.29 mW
	PacketTime    float64 // 40 ms
	PingTime      float64 // 0.4 ms
	PingInterval  float64 // 8 ms

	// Imperfections. These are model.Optional, not plain floats with a
	// zero sentinel: a deliberate zero (perfect clocks, no overhead,
	// lossless pings) must stick instead of being silently promoted to
	// the hardware default — the DefaultIfZero trap this type exists for.
	ClockDrift        model.Optional // max relative sleep-clock error (default 1%); Explicit(0) = perfect clocks
	RegulatorOverhead model.Optional // extra fraction of real power draw (default 8%); Explicit(0) = ideal regulator
	PingLossProb      model.Optional // decode failure per surviving ping (default 2%); Explicit(0) = lossless

	// Faults optionally adds the shared fault processes on top (see
	// internal/faults): crash, brownout and silence windows are realized
	// as events, and an explicit Drift/Loss process overrides the
	// ClockDrift/PingLossProb legacy mapping. The testbed's Loss process
	// governs ping decodes (the paper's §VIII-C imperfection); 40 ms data
	// packets decode reliably.
	Faults *faults.Config

	// WarmEta warm-starts the multipliers (units 1/Watt).
	WarmEta []float64
}

func (c Config) withDefaults() Config {
	c.Budget = model.DefaultIfZero(c.Budget, 1*model.MilliWatt)
	c.ListenPower = model.DefaultIfZero(c.ListenPower, 67.08*model.MilliWatt)
	c.TransmitPower = model.DefaultIfZero(c.TransmitPower, 56.29*model.MilliWatt)
	c.PacketTime = model.DefaultIfZero(c.PacketTime, 40e-3)
	c.PingTime = model.DefaultIfZero(c.PingTime, 0.4e-3)
	c.PingInterval = model.DefaultIfZero(c.PingInterval, 8e-3)
	c.Tau = model.DefaultIfZero(c.Tau, 50*c.PacketTime)
	c.Delta = model.DefaultIfZero(c.Delta, 0.05)
	return c
}

// faultConfig merges the legacy imperfection fields into the shared
// fault-process config: the testbed's drift and ping loss are ordinary
// fault processes now, with the ad-hoc fields kept as defaults.
func (c Config) faultConfig() *faults.Config {
	eff := &faults.Config{}
	if c.Faults != nil {
		*eff = *c.Faults
	}
	if eff.Drift == nil {
		if d := c.ClockDrift.Or(0.01); d > 0 {
			eff.Drift = &faults.Drift{Max: d}
		}
	}
	if eff.Loss == nil {
		if p := c.PingLossProb.Or(0.02); p > 0 {
			eff.Loss = &faults.Loss{P: p}
		}
	}
	return eff
}

func (c Config) validate() error {
	if c.N < 2 {
		return errors.New("testbed: need at least 2 nodes")
	}
	if c.Budgets != nil && len(c.Budgets) != c.N {
		return errors.New("testbed: Budgets length mismatch")
	}
	if !(c.Sigma > 0) {
		return errors.New("testbed: sigma must be positive")
	}
	if !(c.Duration > 0) || c.Warmup < 0 || c.Warmup >= c.Duration {
		return errors.New("testbed: bad duration/warmup")
	}
	return nil
}

// Metrics are the outputs of an emulated experiment, matching the
// quantities reported in Fig. 7 and Tables III-IV.
type Metrics struct {
	Window   float64
	Groupput float64 // normalized as in the analysis (per-receiver fraction)

	PacketsSent      int
	PacketsDelivered int

	// Power is the per-node *actual* mean consumption over the window,
	// including the regulator overhead — the quantity the paper measures
	// with the charged-capacitor method of §VIII-B.
	Power []float64
	// VirtualPower is the consumption the virtual battery accounts
	// (nominal power levels, no overhead).
	VirtualPower []float64

	// PingCounts is the distribution of decoded pings (estimated
	// listeners) per data packet — Table IV.
	PingCounts stats.Counter

	LostPings int // ping decodes lost to the fault-layer loss process

	EtaFinal []float64 // units of 1/Watt

	// FaultTrace is the materialized fault schedule (crash, brownout and
	// silence windows; the default drift/ping-loss processes contribute
	// no events) — byte-identical to the other substrates' traces for
	// the same fault config and seed.
	FaultTrace []faults.Event `json:",omitempty"`
}

// event kinds.
const (
	evTransition = iota
	evPacketEnd
	evPingEnd
	evTick
	evFault // fault-schedule boundary (crash/brownout/silence edge)
)

type event struct {
	at      float64
	seq     uint64
	kind    int
	node    int
	version uint64
}

type queue []event

func (q queue) Len() int { return len(q) }
func (q queue) Less(i, j int) bool {
	if q[i].at != q[j].at { //lint:allow floateq exact tie detection so equal-time events fall through to the seq tiebreak
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q queue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *queue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *queue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

type nodeState struct {
	proto   *econcast.Node
	state   model.State
	version uint64
	drift   float64 // sleep-clock scale factor
	last    float64 // last energy accrual time

	actual  float64 // real energy consumed (J), with overhead
	virtual float64 // nominal energy consumed (J)
}

//lint:owner testbed-engine the testbed event loop owns all engine state
type engine struct {
	cfg   Config
	src   *rng.Source
	nodes []nodeState
	now   float64
	q     queue
	seq   uint64

	transmitter int
	listeners   []int // receivers of the current packet

	// flt is the compiled fault schedule (never nil here: the legacy
	// drift/ping-loss defaults compile into it); regOverhead is the
	// resolved regulator overhead fraction.
	flt         *faults.Set
	regOverhead float64

	met           Metrics
	measuring     bool
	actualAtWarm  []float64
	virtualAtWarm []float64
}

// Run executes the emulated experiment.
func Run(cfg Config) (*Metrics, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	flt, err := faults.Compile(cfg.faultConfig(), cfg.N, cfg.Duration, cfg.Seed)
	if err != nil {
		return nil, err
	}
	e := &engine{
		cfg:         cfg,
		src:         rng.New(cfg.Seed),
		nodes:       make([]nodeState, cfg.N),
		transmitter: -1,
		flt:         flt,
		regOverhead: cfg.RegulatorOverhead.Or(0.08),
	}
	for i := range e.nodes {
		budget := cfg.Budget
		if cfg.Budgets != nil {
			budget = cfg.Budgets[i]
		}
		pc := econcast.Config{
			Mode:          cfg.Mode,
			Variant:       econcast.Capture,
			Sigma:         cfg.Sigma,
			Delta:         cfg.Delta,
			Tau:           cfg.Tau,
			Budget:        budget,
			ListenPower:   cfg.ListenPower,
			TransmitPower: cfg.TransmitPower,
			PacketTime:    cfg.PacketTime,
		}
		// Brownouts scale this node's harvest inside their windows.
		if v := flt.View(i); v.HasBrownout() {
			b := budget
			pc.Harvest = func(t float64) float64 { return b * v.HarvestScale(t) }
		}
		e.nodes[i] = nodeState{
			proto: econcast.NewNode(pc),
			drift: flt.Drift(i),
		}
		if cfg.WarmEta != nil {
			p0 := math.Max(cfg.ListenPower, cfg.TransmitPower)
			e.nodes[i].proto.SetEta(cfg.WarmEta[i] * p0)
		}
	}
	e.run()
	return e.finish(), nil
}

func (e *engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.q, ev)
}

// spend accrues dt seconds in the given nominal state for node i: the
// virtual battery sees nominal draw; the actual ledger adds the regulator
// overhead on any active (non-sleep) draw.
func (e *engine) spend(i int, dt float64, st model.State) {
	if dt <= 0 {
		return
	}
	ns := &e.nodes[i]
	ns.proto.Advance(dt, st)
	nominal := 0.0
	switch st {
	case model.Listen:
		nominal = e.cfg.ListenPower
	case model.Transmit:
		nominal = e.cfg.TransmitPower
	}
	ns.virtual += nominal * dt
	ns.actual += nominal * (1 + e.regOverhead) * dt
	ns.last += dt
}

// accrue brings node i's ledgers up to now in its current protocol state.
func (e *engine) accrue(i int) {
	ns := &e.nodes[i]
	if dt := e.now - ns.last; dt > 0 {
		e.spend(i, dt, ns.state)
	}
}

func (e *engine) busyFor(i int) bool {
	return e.transmitter >= 0 && e.transmitter != i
}

func (e *engine) schedule(i int) {
	ns := &e.nodes[i]
	ns.version++
	if ns.state == model.Transmit || !e.flt.Alive(i, e.now) {
		return
	}
	r := ns.proto.Rates(!e.busyFor(i), 0)
	var total float64
	switch ns.state {
	case model.Sleep:
		total = r.SleepToListen
	case model.Listen:
		total = r.ListenToSleep + r.ListenToTransmit
	}
	if total <= 0 {
		return
	}
	dt := e.src.Exp(total)
	if ns.state == model.Sleep {
		dt *= ns.drift // the low-power sleep clock drifts
	}
	e.push(event{at: e.now + dt, kind: evTransition, node: i, version: ns.version})
}

// run drains the event heap to the horizon. It is testbed's licensed
// event multiplexer for econlint's chandir analyzer: if this package
// ever grows goroutine runtimes, their boundary channels must be
// direction-typed and any select belongs here.
func (e *engine) run() {
	for i := range e.nodes {
		e.schedule(i)
		e.push(event{at: e.cfg.Tau, kind: evTick, node: i})
		node := i
		e.flt.Boundaries(i, func(at float64) {
			e.push(event{at: at, kind: evFault, node: node})
		})
	}
	for len(e.q) > 0 {
		ev := heap.Pop(&e.q).(event)
		if ev.at > e.cfg.Duration {
			break
		}
		e.now = ev.at
		if !e.measuring && e.now >= e.cfg.Warmup {
			e.measuring = true
			e.actualAtWarm = make([]float64, e.cfg.N)
			e.virtualAtWarm = make([]float64, e.cfg.N)
			for i := range e.nodes {
				e.accrue(i)
				e.actualAtWarm[i] = e.nodes[i].actual
				e.virtualAtWarm[i] = e.nodes[i].virtual
			}
		}
		switch ev.kind {
		case evTransition:
			if ev.version != e.nodes[ev.node].version {
				continue
			}
			e.transition(ev.node)
		case evPacketEnd:
			if ev.version != e.nodes[ev.node].version {
				continue // transmitter crashed mid-packet; medium already released
			}
			e.packetEnd(ev.node)
		case evPingEnd:
			if ev.version != e.nodes[ev.node].version {
				continue
			}
			e.pingEnd(ev.node)
		case evFault:
			e.fault(ev.node)
		case evTick:
			e.accrue(ev.node)
			if e.nodes[ev.node].state != model.Transmit {
				e.schedule(ev.node)
			}
			e.push(event{at: e.now + e.cfg.Tau, kind: evTick, node: ev.node})
		}
	}
	e.now = e.cfg.Duration
	for i := range e.nodes {
		e.accrue(i)
	}
}

func (e *engine) transition(i int) {
	e.accrue(i)
	ns := &e.nodes[i]
	switch ns.state {
	case model.Sleep:
		ns.state = model.Listen
		e.schedule(i)
	case model.Listen:
		r := ns.proto.Rates(!e.busyFor(i), 0)
		total := r.ListenToSleep + r.ListenToTransmit
		if total <= 0 {
			return
		}
		if e.src.Float64()*total < r.ListenToTransmit {
			e.beginPacket(i)
		} else {
			ns.state = model.Sleep
			e.schedule(i)
		}
	}
}

// beginPacket starts a 40 ms data packet from node i.
func (e *engine) beginPacket(i int) {
	e.nodes[i].state = model.Transmit
	e.nodes[i].version++
	wasIdle := e.transmitter < 0
	e.transmitter = i
	e.listeners = e.listeners[:0]
	for j := range e.nodes {
		if j != i && e.nodes[j].state == model.Listen {
			e.listeners = append(e.listeners, j)
		}
	}
	if wasIdle {
		// Freeze everyone else under the now-busy carrier.
		for j := range e.nodes {
			if j != i {
				e.accrue(j)
				e.schedule(j)
			}
		}
	}
	e.push(event{at: e.now + e.cfg.PacketTime, kind: evPacketEnd, node: i, version: e.nodes[i].version})
}

// fault handles a fault-schedule boundary for node i: crash edges park or
// revive the node; brownout/silence edges just force an accrual so the
// piecewise-constant harvest integrates exactly and rates re-draw.
func (e *engine) fault(i int) {
	e.accrue(i)
	ns := &e.nodes[i]
	if !e.flt.Alive(i, e.now) {
		switch ns.state {
		case model.Transmit:
			// The transmitter died mid-hold: release the medium. The
			// version bump strands its pending packet/ping-end events.
			ns.state = model.Sleep
			ns.version++
			e.transmitter = -1
			e.listeners = e.listeners[:0]
			for j := range e.nodes {
				if j != i {
					e.accrue(j)
					e.schedule(j)
				}
			}
		case model.Listen:
			ns.state = model.Sleep
			ns.version++
		default:
			ns.version++ // already asleep; just strand pending wake-ups
		}
		return
	}
	// Restart, or a brownout/silence edge on a live node.
	if ns.state != model.Transmit {
		e.schedule(i)
	}
}

// packetEnd completes the data packet and opens the pinging interval.
func (e *engine) packetEnd(i int) {
	// Charge the transmitter for the packet while still in transmit state,
	// so the ping interval that follows is charged as listening.
	e.accrue(i)
	// A muted transmitter occupies the channel but delivers nothing, and
	// no recipient will ping; a listener that crashed mid-packet heard
	// only a fragment.
	success := 0
	if e.flt.Silenced(i, e.now) {
		e.listeners = e.listeners[:0]
	} else {
		for _, j := range e.listeners {
			if e.flt.Alive(j, e.now) {
				success++
			}
		}
	}
	if e.measuring {
		e.met.PacketsSent++
		e.met.PacketsDelivered += success
		e.met.Groupput += float64(success) * e.cfg.PacketTime
	}
	e.push(event{at: e.now + e.cfg.PingInterval, kind: evPingEnd, node: i, version: e.nodes[i].version})
}

// pingEnd closes the pinging interval: place each recipient's 0.4 ms ping
// uniformly in the 8 ms window, drop overlapping pings (collisions) and
// random decode failures, account everyone's interval energy, and let the
// transmitter decide whether to hold the channel.
func (e *engine) pingEnd(i int) {
	// A recipient that crashed during the interval sends no ping and
	// settles no interval energy here (the fault handler closed its
	// ledger at the crash instant).
	live := 0
	for _, j := range e.listeners {
		if e.flt.Alive(j, e.now) {
			e.listeners[live] = j
			live++
		}
	}
	e.listeners = e.listeners[:live]

	// Decode pings.
	starts := make([]float64, len(e.listeners))
	for k := range starts {
		starts[k] = e.src.Uniform(0, e.cfg.PingInterval-e.cfg.PingTime)
	}
	decoded := 0
	for k, s := range starts {
		ok := true
		for m, s2 := range starts {
			if m != k && math.Abs(s-s2) < e.cfg.PingTime {
				ok = false // overlapping pings collide
				break
			}
		}
		if !ok {
			continue
		}
		if e.flt.DropRx(i, e.now) { // decode failure at the transmitter
			if e.measuring {
				e.met.LostPings++
			}
			continue
		}
		decoded++
	}
	if e.measuring {
		e.met.PingCounts.Add(decoded)
	}

	// Energy for the interval: the transmitter listened for pings; each
	// recipient listened except while sending its 0.4 ms ping.
	e.spendThrough(i, model.Listen)
	for _, j := range e.listeners {
		ns := &e.nodes[j]
		listenDt := e.now - ns.last - e.cfg.PingTime
		if listenDt > 0 {
			e.spend(j, listenDt, model.Listen)
		}
		e.spend(j, e.cfg.PingTime, model.Transmit)
		ns.last = e.now
	}

	// Hold or release, using the imperfect decoded estimate.
	ns := &e.nodes[i]
	est := ns.proto.Estimate(decoded)
	if e.src.Bernoulli(ns.proto.ContinueTransmitProb(est)) {
		e.listeners = e.listeners[:0]
		for j := range e.nodes {
			if j != i && e.nodes[j].state == model.Listen {
				e.listeners = append(e.listeners, j)
			}
		}
		e.push(event{at: e.now + e.cfg.PacketTime, kind: evPacketEnd, node: i, version: ns.version})
		return
	}
	ns.state = model.Listen
	e.transmitter = -1
	for j := range e.nodes {
		e.accrue(j)
		e.schedule(j)
	}
}

// spendThrough accrues node i's time up to now in the given state
// (overriding its nominal protocol state for special radio phases).
func (e *engine) spendThrough(i int, st model.State) {
	ns := &e.nodes[i]
	if dt := e.now - ns.last; dt > 0 {
		e.spend(i, dt, st)
	}
}

func (e *engine) finish() *Metrics {
	window := e.cfg.Duration - e.cfg.Warmup
	e.met.Window = window
	e.met.Groupput /= window
	e.met.Power = make([]float64, e.cfg.N)
	e.met.VirtualPower = make([]float64, e.cfg.N)
	e.met.EtaFinal = make([]float64, e.cfg.N)
	p0 := math.Max(e.cfg.ListenPower, e.cfg.TransmitPower)
	for i := range e.nodes {
		var aStart, vStart float64
		if e.actualAtWarm != nil {
			aStart = e.actualAtWarm[i]
			vStart = e.virtualAtWarm[i]
		}
		e.met.Power[i] = (e.nodes[i].actual - aStart) / window
		e.met.VirtualPower[i] = (e.nodes[i].virtual - vStart) / window
		e.met.EtaFinal[i] = e.nodes[i].proto.Eta() / p0
	}
	e.met.FaultTrace = e.flt.Trace()
	return &e.met
}

// CapacitorEnergy implements eq. (25): the energy released by a capacitor
// of capacitance c discharging from v0 to v1 volts.
func CapacitorEnergy(c, v0, v1 float64) float64 {
	return 0.5 * c * (v0*v0 - v1*v1)
}

// CapacitorLifetime returns how long a pre-charged capacitor sustains a
// constant power draw across its working voltage range (§VIII-B).
func CapacitorLifetime(c, v0, v1, power float64) float64 {
	return CapacitorEnergy(c, v0, v1) / power
}

// MeasuredPower implements eq. (26): empirical average power from two
// voltage readings over an interval.
func MeasuredPower(c, v0, v1, dt float64) float64 {
	return CapacitorEnergy(c, v0, v1) / dt
}
