package testbed

import (
	"testing"

	"econcast/internal/faults"
	"econcast/internal/model"
)

// TestFaultKillHalf crashes half the emulated nodes mid-run: the run must
// complete, the survivors keep delivering, and the fault trace lands in
// the metrics.
func TestFaultKillHalf(t *testing.T) {
	c := baseCfg()
	c.N = 8
	c.Duration, c.Warmup = 900, 400
	c.Faults = &faults.Config{Crash: &faults.Crash{Kill: []int{0, 1, 2, 3}, KillAt: 300}}
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Groupput <= 0 {
		t.Fatalf("survivors delivered nothing: groupput = %v", m.Groupput)
	}
	if len(m.FaultTrace) != 4 {
		t.Fatalf("fault trace has %d events, want 4 crash-downs", len(m.FaultTrace))
	}
	for _, ev := range m.FaultTrace {
		if ev.Kind != faults.CrashDown || ev.At != 300 {
			t.Fatalf("unexpected trace event %+v", ev)
		}
	}
	// Dead nodes are parked asleep: near-zero consumption over the
	// post-kill measurement window.
	for i := 0; i < 4; i++ {
		if m.Power[i] > model.MilliWatt {
			t.Errorf("dead node %d consumed %v W over the post-kill window", i, m.Power[i])
		}
	}
}

// TestFaultCrashMidHold pushes crash times to offsets that routinely land
// inside a 40 ms packet or the 8 ms ping interval: the medium must be
// released and the survivors keep transmitting.
func TestFaultCrashMidHold(t *testing.T) {
	for _, killAt := range []float64{100.004, 250.0301, 400.017} {
		c := baseCfg()
		c.Duration, c.Warmup = 2000, 500
		c.Faults = &faults.Config{Crash: &faults.Crash{Kill: []int{0, 1}, KillAt: killAt}}
		m, err := Run(c)
		if err != nil {
			t.Fatalf("killAt=%v: %v", killAt, err)
		}
		if m.Groupput <= 0 {
			t.Fatalf("killAt=%v: survivors delivered nothing", killAt)
		}
	}
}

// TestFaultSilenceMutesDeliveries checks a silenced transmitter occupies
// the channel but delivers nothing and collects no pings.
func TestFaultSilenceMutesDeliveries(t *testing.T) {
	c := baseCfg()
	c.Duration, c.Warmup = 300, 50
	c.Faults = &faults.Config{Silence: &faults.Silence{MeanEvery: 1e-3, MeanFor: 1e9}}
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.PacketsDelivered != 0 {
		t.Fatalf("silenced network delivered %d packets", m.PacketsDelivered)
	}
	if m.PacketsSent == 0 {
		t.Fatal("silence stopped transmissions; it should only mute them")
	}
	if m.PingCounts.N() > 0 && m.PingCounts.Mean() != 0 {
		t.Fatal("silenced packets collected pings")
	}
}

// TestFaultSharedProcessesDeterministic pins that runs under the full
// fault mix are reproducible for a fixed seed.
func TestFaultSharedProcessesDeterministic(t *testing.T) {
	c := baseCfg()
	c.Duration, c.Warmup = 400, 100
	c.Faults = &faults.Config{
		Crash:    &faults.Crash{Kill: []int{1}, KillAt: 200},
		Loss:     &faults.Loss{P: 0.1},
		Drift:    &faults.Drift{Max: 0.03},
		Brownout: &faults.Brownout{MeanEvery: 60, MeanFor: 30},
	}
	a, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Groupput != b.Groupput || a.PacketsSent != b.PacketsSent || a.LostPings != b.LostPings {
		t.Fatal("faulted testbed runs with the same seed diverged")
	}
}

// TestFaultLegacyImperfectionsMapToProcesses pins the compatibility
// mapping: the default ClockDrift/PingLossProb imperfections now compile
// into shared Drift/Loss fault processes, so LostPings is populated by
// the default 2% decode-failure rate.
func TestFaultLegacyImperfectionsMapToProcesses(t *testing.T) {
	c := baseCfg()
	c.Duration, c.Warmup = 1500, 200
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.LostPings == 0 {
		t.Fatal("default 2% ping loss produced no LostPings")
	}
	if len(m.FaultTrace) != 0 {
		t.Fatalf("drift/loss-only run produced %d trace events, want 0", len(m.FaultTrace))
	}
}

// TestExplicitZeroImperfectionsStick is the DefaultIfZero-trap pin: an
// explicit zero for each imperfection must disable it rather than being
// silently promoted to the hardware default.
func TestExplicitZeroImperfectionsStick(t *testing.T) {
	// Explicit(0) overhead: actual power equals virtual power exactly.
	c := baseCfg()
	c.Duration, c.Warmup = 300, 50
	c.RegulatorOverhead = model.Explicit(0)
	ideal, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ideal.Power {
		if ideal.Power[i] != ideal.VirtualPower[i] {
			t.Fatalf("node %d: ideal-regulator actual %v != virtual %v",
				i, ideal.Power[i], ideal.VirtualPower[i])
		}
	}
	// Unset overhead: the 8% default applies and actual exceeds virtual.
	c.RegulatorOverhead = model.Optional{}
	lossy, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	exceeded := false
	for i := range lossy.Power {
		if lossy.Power[i] > lossy.VirtualPower[i] {
			exceeded = true
		}
	}
	if !exceeded {
		t.Fatal("default regulator overhead had no effect on actual power")
	}

	// Explicit(0) drift and ping loss: perfect clocks and lossless pings.
	// The run must differ from the defaulted run (1% drift, 2% loss).
	c2 := baseCfg()
	c2.Duration, c2.Warmup = 1500, 200
	withDefaults, err := Run(c2)
	if err != nil {
		t.Fatal(err)
	}
	c2.ClockDrift = model.Explicit(0)
	c2.PingLossProb = model.Explicit(0)
	perfect, err := Run(c2)
	if err != nil {
		t.Fatal(err)
	}
	if perfect.LostPings != 0 {
		t.Fatalf("Explicit(0) ping loss still lost %d pings", perfect.LostPings)
	}
	if perfect.Groupput == withDefaults.Groupput && perfect.PacketsSent == withDefaults.PacketsSent {
		t.Fatal("Explicit(0) imperfections behaved identically to the defaults — the zeros were dropped")
	}
}

// TestOptionalSemantics pins the model.Optional contract itself.
func TestOptionalSemantics(t *testing.T) {
	var unset model.Optional
	if unset.IsSet() || unset.Or(7) != 7 {
		t.Fatal("zero Optional must resolve to the default")
	}
	zero := model.Explicit(0)
	if !zero.IsSet() || zero.Or(7) != 0 {
		t.Fatal("Explicit(0) must pin zero, not fall back to the default")
	}
	if model.Explicit(3.5).Or(7) != 3.5 {
		t.Fatal("Explicit value must win over the default")
	}
}
