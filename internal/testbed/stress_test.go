package testbed

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRaceStressLargeClique runs a 16-node emulated testbed so that
// `go test -race` covers this package at the same clique scale as the
// asim broker stress test. The emulator itself is single-threaded by
// design (it is event-driven; econlint's rawgoroutine licenses but does
// not require concurrency here), so beyond race coverage this pins the
// seed-determinism invariant at scale, byte for byte.
func TestRaceStressLargeClique(t *testing.T) {
	cfg := Config{
		N:        16,
		Sigma:    0.25,
		Duration: 400,
		Warmup:   100,
		Seed:     11,
	}
	marshal := func() []byte {
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if m.PacketsSent <= 0 {
			t.Fatal("16-node testbed made no progress")
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := marshal(), marshal()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different testbed metrics:\n run1: %s\n run2: %s", a, b)
	}
}
