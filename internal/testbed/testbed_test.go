package testbed

import (
	"math"
	"testing"

	"econcast/internal/model"
	"econcast/internal/statespace"
)

func baseCfg() Config {
	return Config{
		N:        5,
		Budget:   1 * model.MilliWatt,
		Sigma:    0.25,
		Duration: 2000,
		Warmup:   500,
		Seed:     1,
	}
}

func TestDefaults(t *testing.T) {
	c := Config{N: 5, Sigma: 0.25, Duration: 10, Warmup: 1}.withDefaults()
	if c.ListenPower != 67.08*model.MilliWatt || c.TransmitPower != 56.29*model.MilliWatt {
		t.Fatal("hardware power defaults wrong")
	}
	if c.PacketTime != 40e-3 || c.PingTime != 0.4e-3 || c.PingInterval != 8e-3 {
		t.Fatal("radio timing defaults wrong")
	}
	if c.Budget != model.MilliWatt {
		t.Fatal("budget default wrong")
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{N: 1, Sigma: 0.25, Duration: 10},
		{N: 5, Sigma: 0, Duration: 10},
		{N: 5, Sigma: 0.25, Duration: 0},
		{N: 5, Sigma: 0.25, Duration: 10, Warmup: 10},
	}
	for i, c := range bad {
		if _, err := Run(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	c := baseCfg()
	c.Duration, c.Warmup = 300, 50
	a, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Groupput != b.Groupput || a.PacketsSent != b.PacketsSent {
		t.Fatal("testbed runs not deterministic")
	}
}

// The actual measured power must exceed the budget by a few percent (the
// regulator overhead), mirroring the paper's §VIII-B measurement of 4-11%.
func TestActualPowerExceedsBudgetSlightly(t *testing.T) {
	c := baseCfg()
	c.Duration = 8000
	c.Warmup = 3000
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range m.Power {
		over := (p - c.Budget) / c.Budget
		if over < 0.0 || over > 0.25 {
			t.Fatalf("node %d: actual power %v is %+.1f%% of budget", i, p, over*100)
		}
	}
	// The virtual battery tracks the budget more closely.
	for i, p := range m.VirtualPower {
		if math.Abs(p-c.Budget)/c.Budget > 0.15 {
			t.Fatalf("node %d: virtual power %v vs budget %v", i, p, c.Budget)
		}
	}
}

// Fig. 7's headline: the emulated testbed achieves a substantial fraction
// (the paper reports 57-77%) of the achievable throughput T^sigma computed
// from (P4) at the target budget.
func TestThroughputFractionOfAchievable(t *testing.T) {
	c := baseCfg()
	c.Sigma = 0.5 // mixes faster; sigma=0.25 is exercised in experiments
	c.Duration = 6000
	c.Warmup = 1500
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	node := model.Node{Budget: c.Budget, ListenPower: 67.08 * model.MilliWatt, TransmitPower: 56.29 * model.MilliWatt}
	ref, err := statespace.SolveP4Homogeneous(5, node, c.Sigma, model.Groupput, nil)
	if err != nil {
		t.Fatal(err)
	}
	ratio := m.Groupput / ref.Throughput
	if ratio < 0.35 || ratio > 1.05 {
		t.Fatalf("testbed/achievable ratio %.3f outside plausible band (T=%v, T^sigma=%v)",
			ratio, m.Groupput, ref.Throughput)
	}
}

// Table IV shape: most packets see 0 pings at rho=1mW; higher budgets see
// more active listeners.
func TestPingDistributionShape(t *testing.T) {
	low := baseCfg()
	low.Duration = 4000
	low.Warmup = 500
	lm, err := Run(low)
	if err != nil {
		t.Fatal(err)
	}
	if lm.PingCounts.N() == 0 {
		t.Fatal("no ping samples")
	}
	if lm.PingCounts.Fraction(0) < 0.5 {
		t.Fatalf("rho=1mW: P(0 pings) = %v, expected majority", lm.PingCounts.Fraction(0))
	}
	high := low
	high.Budget = 5 * model.MilliWatt
	high.Seed = 2
	hm, err := Run(high)
	if err != nil {
		t.Fatal(err)
	}
	if hm.PingCounts.Mean() <= lm.PingCounts.Mean() {
		t.Fatalf("mean pings did not grow with budget: %v vs %v",
			hm.PingCounts.Mean(), lm.PingCounts.Mean())
	}
}

// Pings can be lost to collisions and decoding failures, so the estimate
// can undercount but never overcount the true listeners.
func TestPingEstimateNeverOvercounts(t *testing.T) {
	c := baseCfg()
	c.Duration = 2000
	c.Warmup = 200
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.PingCounts.Max() >= c.N {
		t.Fatalf("decoded %d pings with only %d possible listeners",
			m.PingCounts.Max(), c.N-1)
	}
}

func TestCapacitorFormulas(t *testing.T) {
	// Eq. (25) with the paper's 5 F capacitor over 3.6 -> 3.0 V releases
	// 0.5*5*(12.96-9) = 9.9 J.
	e := CapacitorEnergy(5, 3.6, 3.0)
	if math.Abs(e-9.9) > 1e-9 {
		t.Fatalf("capacitor energy %v, want 9.9 J", e)
	}
	// At 1 mW this sustains 9900 s (the paper quotes 135 min = 8100 s,
	// implying ~82% conversion efficiency; we model the ideal formula).
	if lt := CapacitorLifetime(5, 3.6, 3.0, 1e-3); math.Abs(lt-9900) > 1e-6 {
		t.Fatalf("lifetime %v", lt)
	}
	// Eq. (26).
	if p := MeasuredPower(5, 3.6, 3.0, 1800); math.Abs(p-9.9/1800) > 1e-12 {
		t.Fatalf("measured power %v", p)
	}
}

func TestWarmEta(t *testing.T) {
	c := baseCfg()
	c.Duration = 1000
	c.Warmup = 100
	node := model.Node{Budget: c.Budget, ListenPower: 67.08 * model.MilliWatt, TransmitPower: 56.29 * model.MilliWatt}
	ref, err := statespace.SolveP4Homogeneous(5, node, c.Sigma, model.Groupput, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.WarmEta = ref.Eta
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Groupput <= 0 {
		t.Fatal("no throughput with warm start")
	}
}

// Extension beyond the paper's homogeneous testbed: per-node budgets. A
// mixed 1 mW / 5 mW deployment must give each node consumption near its
// own budget, with the typed (P4) analysis as the reference.
func TestHeterogeneousBudgets(t *testing.T) {
	c := baseCfg()
	c.Budgets = []float64{1 * model.MilliWatt, 1 * model.MilliWatt, 1 * model.MilliWatt,
		5 * model.MilliWatt, 5 * model.MilliWatt}
	c.Duration = 8000
	c.Warmup = 3000
	m, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range m.VirtualPower {
		want := c.Budgets[i]
		if rel := (p - want) / want; rel < -0.25 || rel > 0.35 {
			t.Fatalf("node %d: virtual power %v vs its budget %v", i, p, want)
		}
	}
	// The analytical reference via the typed solver.
	types := []model.Node{
		{Budget: 1 * model.MilliWatt, ListenPower: 67.08 * model.MilliWatt, TransmitPower: 56.29 * model.MilliWatt},
		{Budget: 5 * model.MilliWatt, ListenPower: 67.08 * model.MilliWatt, TransmitPower: 56.29 * model.MilliWatt},
	}
	ref, err := statespace.SolveP4Typed([]int{3, 2}, types, c.Sigma, model.Groupput, nil)
	if err != nil {
		t.Fatal(err)
	}
	ratio := m.Groupput / ref.Throughput
	if ratio < 0.3 || ratio > 1.05 {
		t.Fatalf("heterogeneous testbed ratio %v vs typed analysis", ratio)
	}
}

func TestBudgetsLengthValidated(t *testing.T) {
	c := baseCfg()
	c.Budgets = []float64{1e-3}
	if _, err := Run(c); err == nil {
		t.Fatal("bad Budgets length accepted")
	}
}
