package apps

import (
	"math"
	"testing"

	"econcast/internal/econcast"
	"econcast/internal/model"
	"econcast/internal/sim"
)

func TestDiscoveryBookkeeping(t *testing.T) {
	d := NewDiscovery(3, 10)
	// Deliveries before the start are ignored.
	d.OnDeliver(0, 1, 5)
	if _, ok := d.DiscoveredAt(0, 1); ok {
		t.Fatal("pre-start delivery recorded")
	}
	d.OnDeliver(0, 1, 12)
	d.OnDeliver(0, 1, 20) // duplicate: first time wins
	d.OnDeliver(1, 0, 14)
	if v, ok := d.DiscoveredAt(0, 1); !ok || v != 2 {
		t.Fatalf("DiscoveredAt(0,1) = %v, %v", v, ok)
	}
	got, total := d.Pairs()
	if got != 2 || total != 6 {
		t.Fatalf("Pairs = %d/%d", got, total)
	}
	if _, ok := d.FullDiscoveryTime(); ok {
		t.Fatal("full discovery reported prematurely")
	}
	mean, err := d.MeanPairwise()
	if err != nil || math.Abs(mean-3) > 1e-12 {
		t.Fatalf("mean %v err %v", mean, err)
	}
	// Complete all pairs.
	d.OnDeliver(0, 2, 30)
	d.OnDeliver(2, 0, 31)
	d.OnDeliver(1, 2, 32)
	d.OnDeliver(2, 1, 45)
	full, ok := d.FullDiscoveryTime()
	if !ok || full != 35 {
		t.Fatalf("full discovery %v, %v", full, ok)
	}
}

func TestDiscoveryEmptyMean(t *testing.T) {
	d := NewDiscovery(2, 0)
	if _, err := d.MeanPairwise(); err == nil {
		t.Fatal("empty mean should error")
	}
}

func TestGossipSpread(t *testing.T) {
	g := NewGossip(4)
	r, err := g.Inject(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if g.Coverage(r) != 1 {
		t.Fatalf("coverage %d", g.Coverage(r))
	}
	// 0 -> 1, then 1 -> 2, 1 -> 3; deliveries from ignorant nodes do nothing.
	g.OnDeliver(2, 3, 105) // 2 knows nothing yet
	g.OnDeliver(0, 1, 110)
	g.OnDeliver(1, 2, 120)
	if g.Coverage(r) != 3 {
		t.Fatalf("coverage %d, want 3", g.Coverage(r))
	}
	if _, ok := g.SpreadTime(r); ok {
		t.Fatal("full spread reported prematurely")
	}
	if half, ok := g.HalfSpreadTime(r); !ok || half != 10 {
		t.Fatalf("half spread %v, %v", half, ok)
	}
	g.OnDeliver(1, 3, 150)
	full, ok := g.SpreadTime(r)
	if !ok || full != 50 {
		t.Fatalf("spread %v, %v", full, ok)
	}
}

func TestGossipMultipleRumors(t *testing.T) {
	g := NewGossip(3)
	r0, _ := g.Inject(0, 0)
	r1, _ := g.Inject(2, 5)
	// One exchange moves both directions' knowledge separately.
	g.OnDeliver(0, 2, 10) // rumor 0 reaches node 2
	g.OnDeliver(2, 1, 20) // node 1 learns both (2 knows r0 and r1)
	if g.Coverage(r0) != 3 {
		t.Fatalf("r0 coverage %d", g.Coverage(r0))
	}
	if g.Coverage(r1) != 2 {
		t.Fatalf("r1 coverage %d", g.Coverage(r1))
	}
	if full, ok := g.SpreadTime(r0); !ok || full != 20 {
		t.Fatalf("r0 spread %v %v", full, ok)
	}
}

func TestGossipInjectErrors(t *testing.T) {
	g := NewGossip(2)
	if _, err := g.Inject(5, 0); err == nil {
		t.Fatal("bad node accepted")
	}
	for i := 0; i < 64; i++ {
		if _, err := g.Inject(0, 0); err != nil {
			t.Fatalf("inject %d failed: %v", i, err)
		}
	}
	if _, err := g.Inject(0, 0); err == nil {
		t.Fatal("65th rumor accepted")
	}
}

// End-to-end: EconCast discovers all pairs of a 5-clique well within the
// Searchlight worst-case bound of 125 s, and gossip floods the network.
func TestAppsOverSimulator(t *testing.T) {
	nw := model.Homogeneous(5, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	const start = 500.0
	disc := NewDiscovery(5, start)
	gos := NewGossip(5)
	var rumor int
	injected := false
	cfg := sim.Config{
		Network:  nw,
		Protocol: sim.Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: 0.5, Delta: 0.1},
		Duration: 4000,
		Warmup:   start,
		Seed:     4,
		OnDeliver: func(tx, rx int, now float64) {
			disc.OnDeliver(tx, rx, now)
			if !injected && now >= start {
				rumor, _ = gos.Inject(0, now)
				injected = true
			}
			gos.OnDeliver(tx, rx, now)
		},
	}
	if _, err := sim.Run(cfg); err != nil {
		t.Fatal(err)
	}
	full, ok := disc.FullDiscoveryTime()
	if !ok {
		got, total := disc.Pairs()
		t.Fatalf("discovery incomplete: %d/%d pairs", got, total)
	}
	if full <= 0 || full > 3500 {
		t.Fatalf("full discovery time %v implausible", full)
	}
	if !injected {
		t.Fatal("rumor never injected")
	}
	if spread, ok := gos.SpreadTime(rumor); !ok {
		t.Fatalf("rumor reached only %d/5 nodes", gos.Coverage(rumor))
	} else if spread <= 0 {
		t.Fatalf("spread time %v", spread)
	}
}
