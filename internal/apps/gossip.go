package apps

import (
	"fmt"
	"math"
)

// Gossip implements store-and-forward rumor dissemination over the
// delivery stream: every packet a node transmits carries everything it
// knows, so each reception merges the transmitter's rumor set into the
// receiver's. Up to 64 rumors are tracked as a bitset.
type Gossip struct {
	n     int
	know  []uint64    // know[node] = bitset of rumors held
	birth []float64   // injection time per rumor
	learn [][]float64 // learn[rumor][node] = time learned, or NaN
	used  int         // rumors injected so far
}

// NewGossip returns a gossip tracker for n nodes.
func NewGossip(n int) *Gossip {
	return &Gossip{n: n, know: make([]uint64, n)}
}

// Inject starts a new rumor at the given node and time, returning its id.
func (g *Gossip) Inject(node int, now float64) (rumor int, err error) {
	if g.used >= 64 {
		return 0, fmt.Errorf("apps: rumor capacity (64) exhausted")
	}
	if node < 0 || node >= g.n {
		return 0, fmt.Errorf("apps: node %d out of range", node)
	}
	rumor = g.used
	g.used++
	g.birth = append(g.birth, now)
	times := make([]float64, g.n)
	for i := range times {
		times[i] = math.NaN()
	}
	times[node] = 0
	g.learn = append(g.learn, times)
	g.know[node] |= 1 << uint(rumor)
	return rumor, nil
}

// OnDeliver merges the transmitter's rumors into the receiver; plug it
// into sim.Config.OnDeliver.
func (g *Gossip) OnDeliver(tx, rx int, now float64) {
	fresh := g.know[tx] &^ g.know[rx]
	if fresh == 0 {
		return
	}
	g.know[rx] |= fresh
	for r := 0; r < g.used; r++ {
		if fresh&(1<<uint(r)) != 0 {
			g.learn[r][rx] = now - g.birth[r]
		}
	}
}

// Coverage returns how many nodes hold the rumor.
func (g *Gossip) Coverage(rumor int) int {
	count := 0
	for _, k := range g.know {
		if k&(1<<uint(rumor)) != 0 {
			count++
		}
	}
	return count
}

// SpreadTime returns the time from injection until every node held the
// rumor; ok is false if coverage is still partial.
func (g *Gossip) SpreadTime(rumor int) (t float64, ok bool) {
	worst := 0.0
	for _, v := range g.learn[rumor] {
		if math.IsNaN(v) {
			return 0, false
		}
		if v > worst {
			worst = v
		}
	}
	return worst, true
}

// HalfSpreadTime returns the time until at least half the nodes held the
// rumor, a standard epidemic-spreading milestone; ok is false if coverage
// never reached half.
func (g *Gossip) HalfSpreadTime(rumor int) (t float64, ok bool) {
	times := make([]float64, 0, g.n)
	for _, v := range g.learn[rumor] {
		if !math.IsNaN(v) {
			times = append(times, v)
		}
	}
	need := (g.n + 1) / 2
	if len(times) < need {
		return 0, false
	}
	// need-th smallest.
	for i := 0; i < need; i++ {
		min := i
		for j := i + 1; j < len(times); j++ {
			if times[j] < times[min] {
				min = j
			}
		}
		times[i], times[min] = times[min], times[i]
	}
	return times[need-1], true
}
