// Package apps builds the paper's two motivating applications on top of
// the simulator's delivery hook: neighbor discovery (§I — "nodes utilize a
// neighbor discovery protocol to identify neighbors within wireless
// communication range", the groupput use case) and gossip dissemination
// (the delay-tolerant anyput use case). Both consume the
// sim.Config.OnDeliver event stream and are engine-agnostic.
package apps

import (
	"fmt"
	"math"
)

// Discovery tracks pairwise neighbor discovery: the first time each
// ordered pair (transmitter, receiver) exchanges a packet. This is the
// metric Searchlight and Panda are designed around, so it makes EconCast
// directly comparable to them.
type Discovery struct {
	n     int
	start float64
	first [][]float64 // first[tx][rx] = discovery time, or NaN
}

// NewDiscovery returns a tracker for n nodes; times are measured relative
// to start.
func NewDiscovery(n int, start float64) *Discovery {
	d := &Discovery{n: n, start: start, first: make([][]float64, n)}
	for i := range d.first {
		d.first[i] = make([]float64, n)
		for j := range d.first[i] {
			d.first[i][j] = math.NaN()
		}
	}
	return d
}

// OnDeliver records one reception; plug it into sim.Config.OnDeliver.
func (d *Discovery) OnDeliver(tx, rx int, now float64) {
	if now < d.start || tx == rx {
		return
	}
	if math.IsNaN(d.first[tx][rx]) {
		d.first[tx][rx] = now - d.start
	}
}

// DiscoveredAt returns when rx first heard tx, and whether it has.
func (d *Discovery) DiscoveredAt(tx, rx int) (float64, bool) {
	v := d.first[tx][rx]
	return v, !math.IsNaN(v)
}

// Pairs returns the number of ordered pairs discovered so far, out of
// n*(n-1).
func (d *Discovery) Pairs() (discovered, total int) {
	for i := 0; i < d.n; i++ {
		for j := 0; j < d.n; j++ {
			if i != j && !math.IsNaN(d.first[i][j]) {
				discovered++
			}
		}
	}
	return discovered, d.n * (d.n - 1)
}

// FullDiscoveryTime returns the time by which every ordered pair had been
// discovered; ok is false if some pair never was.
func (d *Discovery) FullDiscoveryTime() (t float64, ok bool) {
	worst := 0.0
	for i := 0; i < d.n; i++ {
		for j := 0; j < d.n; j++ {
			if i == j {
				continue
			}
			v := d.first[i][j]
			if math.IsNaN(v) {
				return 0, false
			}
			if v > worst {
				worst = v
			}
		}
	}
	return worst, true
}

// MeanPairwise returns the mean discovery time over discovered pairs, or
// an error when nothing has been discovered.
func (d *Discovery) MeanPairwise() (float64, error) {
	sum, count := 0.0, 0
	for i := 0; i < d.n; i++ {
		for j := 0; j < d.n; j++ {
			if i != j && !math.IsNaN(d.first[i][j]) {
				sum += d.first[i][j]
				count++
			}
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("apps: no pairs discovered")
	}
	return sum / float64(count), nil
}
