package lp

import (
	"math"
	"testing"
)

// FuzzSolve checks that the simplex never panics, always returns a valid
// status, and that any reported optimum is actually feasible, on LPs
// decoded from arbitrary bytes. The high nibble of the first byte drives
// the DegenStall override, so the corpus constantly crosses the
// Dantzig->Bland fallback with thresholds from 1 up; the degenerate seeds
// below (all-zero right-hand sides and duplicated rows force ties in the
// ratio test) pin the fallback path itself.
func FuzzSolve(f *testing.F) {
	f.Add([]byte{2, 1, 10, 20, 1, 1, 50, 0})
	f.Add([]byte{1, 3, 200, 5, 5, 5, 1, 2, 3, 4, 5, 6})
	f.Add([]byte{3, 2, 0, 0, 0, 255, 255, 128, 7, 9})
	// Degenerate vertex at the origin: positive objective, every rhs zero
	// (byte 128 decodes to 0), rows mixing signs — pivots stall before any
	// progress, with DegenStall=1 via the high nibble.
	f.Add([]byte{0x13, 3, 200, 160, 144, 136, 129, 128, 160, 129, 128, 136, 129, 128})
	// Duplicated constraint rows: exact ratio-test ties on every pivot.
	f.Add([]byte{0x33, 2, 192, 192, 176, 176, 144, 176, 176, 144, 176, 176, 144})
	// Zero-rhs GE/EQ rows drive phase 1 through degenerate artificials.
	f.Add([]byte{0x12, 5, 250, 130, 140, 150, 128, 150, 140, 128, 130, 160, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		n := int(data[0]%4) + 1
		m := int(data[1]%4) + 1
		stall := int(data[0]>>4) + 1 // 1..16: exercises the Bland fallback early
		rest := data[2:]
		at := 0
		next := func() float64 {
			if at >= len(rest) {
				return 1
			}
			v := float64(int(rest[at]) - 128)
			at++
			return v / 16
		}
		p := NewProblem(Maximize, n)
		p.DegenStall = stall
		for j := 0; j < n; j++ {
			p.C[j] = next()
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = next()
			}
			rhs := next()
			switch i % 3 {
			case 0:
				p.AddLE(row, rhs)
			case 1:
				p.AddGE(row, rhs)
			default:
				p.AddEQ(row, rhs)
			}
		}
		// Box the variables so every instance is bounded.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.AddLE(row, 100)
		}
		res, err := Solve(p)
		if err != nil {
			return // iteration-limit failures are allowed, panics are not
		}
		switch res.Status {
		case Optimal:
			if len(res.X) != n {
				t.Fatalf("solution length %d", len(res.X))
			}
			for _, v := range res.X {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite solution %v", res.X)
				}
			}
			if !feasible(p, res.X, 1e-5) {
				t.Fatalf("infeasible optimum %v", res.X)
			}
		case Infeasible, Unbounded:
		default:
			t.Fatalf("invalid status %v", res.Status)
		}
	})
}
