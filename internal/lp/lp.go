// Package lp implements a dense two-phase primal simplex solver for linear
// programs over non-negative variables. It is the substrate for every
// oracle-throughput computation in this repository: problems (P2) and (P3)
// of the paper and their non-clique variants all reduce to dense LPs, from
// a handful of columns (symmetric cliques) to one column per transmitter
// configuration (the exact non-clique oracle, 2^N columns).
//
// The solver handles <=, >= and = constraints, maximization and
// minimization, and reports infeasibility and unboundedness. Pivoting uses
// Dantzig's steepest-coefficient rule; after a run of consecutive
// degenerate pivots (a stall, the precondition of cycling) it falls back to
// Bland's rule until the objective moves again, which preserves the
// anti-cycling termination guarantee while keeping Dantzig's fast typical
// path. On wide tableaus the pivot's independent row updates fan out over
// the internal/sweep worker pool; each row's arithmetic is unchanged, so
// results are bit-identical at any worker count.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"

	"econcast/internal/sweep"
)

// Sense selects the optimization direction of a Problem.
type Sense int

// Optimization directions.
const (
	Maximize Sense = iota
	Minimize
)

// Rel is the relation of one constraint row.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // <=
	GE            // >=
	EQ            // =
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// Problem is a linear program over variables x >= 0:
//
//	max (or min)  C . x
//	subject to    A[i] . x  Rel[i]  B[i]   for every row i
//
// Rows are added with AddLE, AddGE and AddEQ. The zero value with a set C is
// an unconstrained problem.
type Problem struct {
	Sense Sense
	C     []float64
	A     [][]float64
	Rel   []Rel
	B     []float64

	// MaxIter overrides the per-phase simplex iteration budget. Zero
	// selects the default, which scales with the problem dimensions
	// (200 * (rows + columns + 10)) so large oracle LPs get room to
	// converge while tiny LPs still fail fast on pathologies.
	MaxIter int

	// Workers bounds the worker pool for the pivot's parallel row
	// updates on wide tableaus. 0 selects GOMAXPROCS, 1 forces serial.
	// Tableaus below the width cutoff always run serially, and results
	// are bit-identical at any worker count.
	Workers int

	// DegenStall overrides the number of consecutive degenerate pivots
	// tolerated under Dantzig pricing before falling back to Bland's
	// anti-cycling rule. Zero selects the default (50). Tests and the
	// fuzz harness lower it to exercise the fallback path.
	DegenStall int

	// Ctx, when non-nil, is polled between pivots: a canceled or
	// expired context aborts the solve with an error wrapping both
	// ErrCanceled and the context's own error. This is what makes
	// serving-layer deadlines real — MaxIter bounds the total work, but
	// only the context can abort an in-flight solve the moment a caller
	// stops waiting. Polling happens outside the row arithmetic, so a
	// solve that runs to completion is bit-identical with or without a
	// context.
	Ctx context.Context
}

// NewProblem returns a problem with n variables and the given sense. The
// objective starts at zero; set coefficients through C.
func NewProblem(sense Sense, n int) *Problem {
	return &Problem{Sense: sense, C: make([]float64, n)}
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return len(p.C) }

// NumRows returns the number of constraint rows.
func (p *Problem) NumRows() int { return len(p.A) }

func (p *Problem) addRow(row []float64, rel Rel, rhs float64) {
	if len(row) != len(p.C) {
		panic(fmt.Sprintf("lp: row has %d coefficients, problem has %d variables",
			len(row), len(p.C)))
	}
	r := append([]float64(nil), row...)
	p.A = append(p.A, r)
	p.Rel = append(p.Rel, rel)
	p.B = append(p.B, rhs)
}

// AddLE appends the constraint row . x <= rhs. The row is copied.
func (p *Problem) AddLE(row []float64, rhs float64) { p.addRow(row, LE, rhs) }

// AddGE appends the constraint row . x >= rhs. The row is copied.
func (p *Problem) AddGE(row []float64, rhs float64) { p.addRow(row, GE, rhs) }

// AddEQ appends the constraint row . x = rhs. The row is copied.
func (p *Problem) AddEQ(row []float64, rhs float64) { p.addRow(row, EQ, rhs) }

// Result holds the outcome of Solve. X and Objective are meaningful only
// when Status == Optimal.
type Result struct {
	Status    Status
	X         []float64
	Objective float64

	// Pivots is the total number of simplex pivots across both phases;
	// BlandPivots counts how many of them priced the entering column with
	// Bland's anti-cycling rule after a degeneracy stall. They expose
	// solver effort to benchmarks and pin the fallback path in tests.
	Pivots      int
	BlandPivots int
}

const (
	pivotTol   = 1e-9  // smallest pivot magnitude considered nonzero
	reducedTol = 1e-9  // reduced-cost optimality tolerance
	feasTol    = 1e-7  // phase-1 residual considered feasible
	degenTol   = 1e-12 // ratio-test step below this counts as degenerate

	// defaultDegenStall is how many consecutive degenerate pivots Dantzig
	// pricing tolerates before the Bland fallback engages. Cycling can
	// only occur within an unbroken run of degenerate pivots, so bounding
	// the run and finishing it under Bland's rule preserves termination.
	defaultDegenStall = 50

	// parallelCells is the tableau area (rows * columns) at which pivots
	// start fanning their row updates over the sweep pool. Below it the
	// per-pivot goroutine handoff costs more than the arithmetic saves,
	// so small LPs pay nothing.
	parallelCells = 1 << 15
)

// ErrIterationLimit is returned when the simplex fails to terminate within
// its iteration budget, which indicates a numerical pathology.
var ErrIterationLimit = errors.New("lp: simplex iteration limit exceeded")

// ErrCanceled is returned when Problem.Ctx is canceled or expires while
// a solve is in flight. The returned error also wraps the context's own
// error, so errors.Is(err, context.DeadlineExceeded) works as expected.
var ErrCanceled = errors.New("lp: solve canceled")

// tableau is the dense simplex tableau: m constraint rows plus an objective
// row, over ncols structural+slack+artificial columns.
type tableau struct {
	m, ncols int
	rows     [][]float64 // m rows, each ncols wide
	rhs      []float64   // length m, kept >= 0
	obj      []float64   // reduced costs, length ncols
	objRHS   float64     // negated objective value accumulator
	basis    []int       // basic column of each row
	artBegin int         // first artificial column index

	maxIter    int             // per-phase pivot budget
	stallAfter int             // consecutive degenerate pivots before Bland engages
	ctx        context.Context // nil unless the caller can abort the solve

	// Pricing state. bland is sticky within a stall: once the run of
	// degenerate pivots reaches stallAfter, entering columns are priced
	// by Bland's rule until a pivot moves the objective again.
	stall       int
	bland       bool
	pivots      int
	blandPivots int

	// Parallel pivot state: prebuilt sweep cells, each eliminating a
	// fixed disjoint row chunk of the current pivot (pRow, pCol). Built
	// once in Solve so the per-pivot hot path allocates nothing.
	workers    int
	cells      []sweep.Cell[struct{}]
	pRow, pCol int
}

// Solve optimizes the problem and returns the result. The returned error is
// non-nil only for numerical failure (iteration limit); infeasible and
// unbounded problems are reported through Result.Status.
func Solve(p *Problem) (*Result, error) {
	n := p.NumVars()
	m := p.NumRows()

	// Count slack and artificial columns. Rows with negative rhs are
	// normalized by negation (flipping the relation) so rhs >= 0.
	type rowKind struct {
		rel Rel
		neg bool
	}
	kinds := make([]rowKind, m)
	nSlack := 0
	nArt := 0
	for i := 0; i < m; i++ {
		rel := p.Rel[i]
		neg := p.B[i] < 0
		if neg {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		kinds[i] = rowKind{rel, neg}
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++ // surplus
			nArt++
		case EQ:
			nArt++
		}
	}

	t := &tableau{
		m:        m,
		ncols:    n + nSlack + nArt,
		rhs:      make([]float64, m),
		obj:      make([]float64, n+nSlack+nArt),
		basis:    make([]int, m),
		artBegin: n + nSlack,
	}
	t.rows = make([][]float64, m)
	flat := make([]float64, m*t.ncols)
	for i := range t.rows {
		t.rows[i], flat = flat[:t.ncols:t.ncols], flat[t.ncols:]
	}
	t.maxIter = p.MaxIter
	if t.maxIter <= 0 {
		t.maxIter = 200 * (m + t.ncols + 10)
	}
	t.stallAfter = p.DegenStall
	if t.stallAfter <= 0 {
		t.stallAfter = defaultDegenStall
	}
	t.ctx = p.Ctx
	t.initParallel(p.Workers)

	slackCol := n
	artCol := t.artBegin
	for i := 0; i < m; i++ {
		sign := 1.0
		if kinds[i].neg {
			sign = -1
		}
		for j := 0; j < n; j++ {
			t.rows[i][j] = sign * p.A[i][j]
		}
		t.rhs[i] = sign * p.B[i]
		switch kinds[i].rel {
		case LE:
			t.rows[i][slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			t.rows[i][slackCol] = -1
			slackCol++
			t.rows[i][artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			t.rows[i][artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
	}

	// Phase 1: maximize -(sum of artificials). Price out the artificial
	// basics so the objective row is consistent with the basis.
	if nArt > 0 {
		for j := t.artBegin; j < t.ncols; j++ {
			t.obj[j] = -1
		}
		t.objRHS = 0
		for i := 0; i < m; i++ {
			if t.basis[i] >= t.artBegin {
				// obj += row (cost of basic artificial is -1; subtracting
				// cB*row with cB=-1 adds the row).
				for j := 0; j < t.ncols; j++ {
					t.obj[j] += t.rows[i][j]
				}
				t.objRHS += t.rhs[i]
			}
		}
		status, err := t.iterate(t.ncols) // artificials may enter in phase 1
		if err != nil {
			return nil, err
		}
		if status == Unbounded {
			// Phase 1 is bounded by construction; reaching here means a
			// numerical failure.
			return nil, errors.New("lp: phase 1 reported unbounded")
		}
		if t.objRHS > feasTol {
			return &Result{Status: Infeasible, Pivots: t.pivots, BlandPivots: t.blandPivots}, nil
		}
		// Drive any artificial still in the basis out, or detect the row as
		// redundant (all-zero) and leave it; its rhs is ~0.
		for i := 0; i < m; i++ {
			if t.basis[i] < t.artBegin {
				continue
			}
			pivoted := false
			for j := 0; j < t.artBegin; j++ {
				if math.Abs(t.rows[i][j]) > pivotTol {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: zero it so it can never constrain phase 2.
				for j := range t.rows[i] {
					t.rows[i][j] = 0
				}
				t.rhs[i] = 0
				t.rows[i][t.basis[i]] = 1 // keep the basic artificial at 0
			}
		}
	}

	// Phase 2: install the real objective (converted to maximization) and
	// price out the basics.
	sign := 1.0
	if p.Sense == Minimize {
		sign = -1
	}
	for j := range t.obj {
		t.obj[j] = 0
	}
	for j := 0; j < n; j++ {
		t.obj[j] = sign * p.C[j]
	}
	t.objRHS = 0
	for i := 0; i < m; i++ {
		b := t.basis[i]
		if b < n && t.obj[b] != 0 { //lint:allow floateq structural-zero skip; epsilon would change which rows are eliminated
			c := t.obj[b]
			for j := 0; j < t.ncols; j++ {
				t.obj[j] -= c * t.rows[i][j]
			}
			t.objRHS -= c * t.rhs[i]
		}
	}
	status, err := t.iterate(t.artBegin) // artificials must not re-enter
	if err != nil {
		return nil, err
	}
	if status == Unbounded {
		return &Result{Status: Unbounded, Pivots: t.pivots, BlandPivots: t.blandPivots}, nil
	}

	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if b := t.basis[i]; b < n {
			x[b] = t.rhs[i]
		}
	}
	objective := 0.0
	for j := 0; j < n; j++ {
		objective += p.C[j] * x[j]
	}
	return &Result{
		Status:      Optimal,
		X:           x,
		Objective:   objective,
		Pivots:      t.pivots,
		BlandPivots: t.blandPivots,
	}, nil
}

// initParallel prepares the pivot fan-out for wide tableaus. Small
// tableaus stay serial so they pay nothing. Wide ones split their rows
// into contiguous per-worker chunks executed on the sweep pool; each chunk
// owns a disjoint row range and every row's arithmetic sequence is
// identical to the serial one, so the tableau — and hence the solution —
// is bit-identical at any worker count.
func (t *tableau) initParallel(workers int) {
	if workers == 1 || t.m < 2 || t.m*t.ncols < parallelCells {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > t.m {
		workers = t.m
	}
	if workers < 2 {
		return
	}
	t.workers = workers
	t.cells = make([]sweep.Cell[struct{}], workers)
	for k := 0; k < workers; k++ {
		lo := k * t.m / workers
		hi := (k + 1) * t.m / workers
		t.cells[k] = func() (struct{}, error) {
			t.eliminateRows(lo, hi)
			return struct{}{}, nil
		}
	}
}

// iterate runs simplex pivots until optimality or unboundedness, allowing
// entering columns in [0, maxCol).
//
// Pricing: Dantzig's rule (steepest reduced cost) by default. A pivot
// whose ratio-test step is ~0 is degenerate: the basis changes but the
// objective does not, which is the only situation in which the simplex
// can cycle. After stallAfter consecutive degenerate pivots the entering
// column is priced by Bland's rule (lowest eligible index) until a pivot
// makes strict progress again. Termination: within a Bland stretch the
// classic anti-cycling argument applies; every exit from a stretch
// coincides with a strict objective increase, so no basis can recur
// across stretches, and Dantzig stretches contain fewer than stallAfter
// degenerate pivots between progress events by construction.
func (t *tableau) iterate(maxCol int) (Status, error) {
	t.stall, t.bland = 0, false
	for iter := 0; iter < t.maxIter; iter++ {
		// Abort promptly once the caller has stopped waiting. The poll
		// sits outside the row arithmetic: a solve that completes is
		// bit-identical whether or not a context was attached.
		if t.ctx != nil {
			if err := t.ctx.Err(); err != nil {
				return Optimal, fmt.Errorf("%w: %w", ErrCanceled, err)
			}
		}
		bland := t.bland
		enter := -1
		if bland {
			for j := 0; j < maxCol; j++ {
				if t.obj[j] > reducedTol {
					enter = j
					break
				}
			}
		} else {
			best := reducedTol
			for j := 0; j < maxCol; j++ {
				if t.obj[j] > best {
					best = t.obj[j]
					enter = j
				}
			}
		}
		if enter < 0 {
			return Optimal, nil
		}
		// Ratio test; Bland-compatible tie-break on smallest basis index.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			a := t.rows[i][enter]
			if a <= pivotTol {
				continue
			}
			ratio := t.rhs[i] / a
			if ratio < bestRatio-1e-12 ||
				(ratio < bestRatio+1e-12 && (leave < 0 || t.basis[i] < t.basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			return Unbounded, nil
		}
		if bestRatio <= degenTol {
			t.stall++
			if t.stall >= t.stallAfter {
				t.bland = true
			}
		} else {
			t.stall = 0
			t.bland = false
		}
		if bland {
			t.blandPivots++
		}
		t.pivot(leave, enter)
	}
	return Optimal, ErrIterationLimit
}

// pivot performs a Gauss-Jordan pivot on (row, col), making col basic in
// row. The per-row eliminations are independent; on wide tableaus they
// run chunked over the sweep pool (see initParallel).
func (t *tableau) pivot(row, col int) {
	t.pivots++
	pr := t.rows[row]
	pv := pr[col]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	pr[col] = 1 // avoid drift
	t.rhs[row] *= inv
	if t.rhs[row] < 0 && t.rhs[row] > -1e-12 {
		t.rhs[row] = 0
	}
	t.pRow, t.pCol = row, col
	if t.cells != nil {
		if _, err := sweep.Run(t.workers, t.cells); err != nil {
			// Cells are pure row arithmetic and never return errors; only
			// a runtime panic inside a cell can land here.
			panic(err)
		}
	} else {
		t.eliminateRows(0, t.m)
	}
	if f := t.obj[col]; f != 0 { //lint:allow floateq structural zero: objective row update is a no-op at exact zero
		for j := range t.obj {
			t.obj[j] -= f * pr[j]
		}
		t.obj[col] = 0
		t.objRHS -= f * t.rhs[row]
	}
	t.basis[row] = col
}

// eliminateRows applies the current pivot's row elimination to rows
// [lo, hi), skipping the pivot row itself. Each row touches only its own
// storage, so disjoint chunks can run concurrently without changing any
// row's arithmetic.
func (t *tableau) eliminateRows(lo, hi int) {
	row, col := t.pRow, t.pCol
	pr := t.rows[row]
	prhs := t.rhs[row]
	for i := lo; i < hi; i++ {
		if i == row {
			continue
		}
		f := t.rows[i][col]
		if f == 0 { //lint:allow floateq structural zero: skipping only exact zeros keeps elimination a no-op
			continue
		}
		ri := t.rows[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0
		t.rhs[i] -= f * prhs
		if t.rhs[i] < 0 && t.rhs[i] > -1e-9 {
			t.rhs[i] = 0
		}
	}
}
