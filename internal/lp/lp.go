// Package lp implements a dense two-phase primal simplex solver for linear
// programs over non-negative variables. It is the substrate for every
// oracle-throughput computation in this repository: problems (P2) and (P3)
// of the paper and their non-clique variants all reduce to small dense LPs.
//
// The solver handles <=, >= and = constraints, maximization and
// minimization, and reports infeasibility and unboundedness. Pivoting uses
// Dantzig's rule with a Bland's-rule fallback after an iteration threshold,
// which guarantees termination on degenerate problems.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense selects the optimization direction of a Problem.
type Sense int

// Optimization directions.
const (
	Maximize Sense = iota
	Minimize
)

// Rel is the relation of one constraint row.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // <=
	GE            // >=
	EQ            // =
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// Problem is a linear program over variables x >= 0:
//
//	max (or min)  C . x
//	subject to    A[i] . x  Rel[i]  B[i]   for every row i
//
// Rows are added with AddLE, AddGE and AddEQ. The zero value with a set C is
// an unconstrained problem.
type Problem struct {
	Sense Sense
	C     []float64
	A     [][]float64
	Rel   []Rel
	B     []float64
}

// NewProblem returns a problem with n variables and the given sense. The
// objective starts at zero; set coefficients through C.
func NewProblem(sense Sense, n int) *Problem {
	return &Problem{Sense: sense, C: make([]float64, n)}
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return len(p.C) }

// NumRows returns the number of constraint rows.
func (p *Problem) NumRows() int { return len(p.A) }

func (p *Problem) addRow(row []float64, rel Rel, rhs float64) {
	if len(row) != len(p.C) {
		panic(fmt.Sprintf("lp: row has %d coefficients, problem has %d variables",
			len(row), len(p.C)))
	}
	r := append([]float64(nil), row...)
	p.A = append(p.A, r)
	p.Rel = append(p.Rel, rel)
	p.B = append(p.B, rhs)
}

// AddLE appends the constraint row . x <= rhs. The row is copied.
func (p *Problem) AddLE(row []float64, rhs float64) { p.addRow(row, LE, rhs) }

// AddGE appends the constraint row . x >= rhs. The row is copied.
func (p *Problem) AddGE(row []float64, rhs float64) { p.addRow(row, GE, rhs) }

// AddEQ appends the constraint row . x = rhs. The row is copied.
func (p *Problem) AddEQ(row []float64, rhs float64) { p.addRow(row, EQ, rhs) }

// Result holds the outcome of Solve. X and Objective are meaningful only
// when Status == Optimal.
type Result struct {
	Status    Status
	X         []float64
	Objective float64
}

const (
	pivotTol   = 1e-9 // smallest pivot magnitude considered nonzero
	reducedTol = 1e-9 // reduced-cost optimality tolerance
	feasTol    = 1e-7 // phase-1 residual considered feasible
	blandAfter = 2000 // iterations of Dantzig before switching to Bland
)

// ErrIterationLimit is returned when the simplex fails to terminate within
// its iteration budget, which indicates a numerical pathology.
var ErrIterationLimit = errors.New("lp: simplex iteration limit exceeded")

// tableau is the dense simplex tableau: m constraint rows plus an objective
// row, over ncols structural+slack+artificial columns.
type tableau struct {
	m, ncols int
	rows     [][]float64 // m rows, each ncols wide
	rhs      []float64   // length m, kept >= 0
	obj      []float64   // reduced costs, length ncols
	objRHS   float64     // negated objective value accumulator
	basis    []int       // basic column of each row
	artBegin int         // first artificial column index
}

// Solve optimizes the problem and returns the result. The returned error is
// non-nil only for numerical failure (iteration limit); infeasible and
// unbounded problems are reported through Result.Status.
func Solve(p *Problem) (*Result, error) {
	n := p.NumVars()
	m := p.NumRows()

	// Count slack and artificial columns. Rows with negative rhs are
	// normalized by negation (flipping the relation) so rhs >= 0.
	type rowKind struct {
		rel Rel
		neg bool
	}
	kinds := make([]rowKind, m)
	nSlack := 0
	nArt := 0
	for i := 0; i < m; i++ {
		rel := p.Rel[i]
		neg := p.B[i] < 0
		if neg {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		kinds[i] = rowKind{rel, neg}
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++ // surplus
			nArt++
		case EQ:
			nArt++
		}
	}

	t := &tableau{
		m:        m,
		ncols:    n + nSlack + nArt,
		rhs:      make([]float64, m),
		obj:      make([]float64, n+nSlack+nArt),
		basis:    make([]int, m),
		artBegin: n + nSlack,
	}
	t.rows = make([][]float64, m)
	flat := make([]float64, m*t.ncols)
	for i := range t.rows {
		t.rows[i], flat = flat[:t.ncols:t.ncols], flat[t.ncols:]
	}

	slackCol := n
	artCol := t.artBegin
	for i := 0; i < m; i++ {
		sign := 1.0
		if kinds[i].neg {
			sign = -1
		}
		for j := 0; j < n; j++ {
			t.rows[i][j] = sign * p.A[i][j]
		}
		t.rhs[i] = sign * p.B[i]
		switch kinds[i].rel {
		case LE:
			t.rows[i][slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			t.rows[i][slackCol] = -1
			slackCol++
			t.rows[i][artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			t.rows[i][artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
	}

	// Phase 1: maximize -(sum of artificials). Price out the artificial
	// basics so the objective row is consistent with the basis.
	if nArt > 0 {
		for j := t.artBegin; j < t.ncols; j++ {
			t.obj[j] = -1
		}
		t.objRHS = 0
		for i := 0; i < m; i++ {
			if t.basis[i] >= t.artBegin {
				// obj += row (cost of basic artificial is -1; subtracting
				// cB*row with cB=-1 adds the row).
				for j := 0; j < t.ncols; j++ {
					t.obj[j] += t.rows[i][j]
				}
				t.objRHS += t.rhs[i]
			}
		}
		status, err := t.iterate(t.ncols) // artificials may enter in phase 1
		if err != nil {
			return nil, err
		}
		if status == Unbounded {
			// Phase 1 is bounded by construction; reaching here means a
			// numerical failure.
			return nil, errors.New("lp: phase 1 reported unbounded")
		}
		if t.objRHS > feasTol {
			return &Result{Status: Infeasible}, nil
		}
		// Drive any artificial still in the basis out, or detect the row as
		// redundant (all-zero) and leave it; its rhs is ~0.
		for i := 0; i < m; i++ {
			if t.basis[i] < t.artBegin {
				continue
			}
			pivoted := false
			for j := 0; j < t.artBegin; j++ {
				if math.Abs(t.rows[i][j]) > pivotTol {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: zero it so it can never constrain phase 2.
				for j := range t.rows[i] {
					t.rows[i][j] = 0
				}
				t.rhs[i] = 0
				t.rows[i][t.basis[i]] = 1 // keep the basic artificial at 0
			}
		}
	}

	// Phase 2: install the real objective (converted to maximization) and
	// price out the basics.
	sign := 1.0
	if p.Sense == Minimize {
		sign = -1
	}
	for j := range t.obj {
		t.obj[j] = 0
	}
	for j := 0; j < n; j++ {
		t.obj[j] = sign * p.C[j]
	}
	t.objRHS = 0
	for i := 0; i < m; i++ {
		b := t.basis[i]
		if b < n && t.obj[b] != 0 { //lint:allow floateq structural-zero skip; epsilon would change which rows are eliminated
			c := t.obj[b]
			for j := 0; j < t.ncols; j++ {
				t.obj[j] -= c * t.rows[i][j]
			}
			t.objRHS -= c * t.rhs[i]
		}
	}
	status, err := t.iterate(t.artBegin) // artificials must not re-enter
	if err != nil {
		return nil, err
	}
	if status == Unbounded {
		return &Result{Status: Unbounded}, nil
	}

	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if b := t.basis[i]; b < n {
			x[b] = t.rhs[i]
		}
	}
	objective := 0.0
	for j := 0; j < n; j++ {
		objective += p.C[j] * x[j]
	}
	return &Result{Status: Optimal, X: x, Objective: objective}, nil
}

// iterate runs simplex pivots until optimality or unboundedness, allowing
// entering columns in [0, maxCol).
func (t *tableau) iterate(maxCol int) (Status, error) {
	limit := 200 * (t.m + t.ncols + 10)
	for iter := 0; iter < limit; iter++ {
		bland := iter >= blandAfter
		enter := -1
		best := reducedTol
		for j := 0; j < maxCol; j++ {
			if t.obj[j] > reducedTol {
				if bland {
					enter = j
					break
				}
				if t.obj[j] > best {
					best = t.obj[j]
					enter = j
				}
			}
		}
		if enter < 0 {
			return Optimal, nil
		}
		// Ratio test; Bland-compatible tie-break on smallest basis index.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			a := t.rows[i][enter]
			if a <= pivotTol {
				continue
			}
			ratio := t.rhs[i] / a
			if ratio < bestRatio-1e-12 ||
				(ratio < bestRatio+1e-12 && (leave < 0 || t.basis[i] < t.basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			return Unbounded, nil
		}
		t.pivot(leave, enter)
	}
	return Optimal, ErrIterationLimit
}

// pivot performs a Gauss-Jordan pivot on (row, col), making col basic in row.
func (t *tableau) pivot(row, col int) {
	pr := t.rows[row]
	pv := pr[col]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	pr[col] = 1 // avoid drift
	t.rhs[row] *= inv
	if t.rhs[row] < 0 && t.rhs[row] > -1e-12 {
		t.rhs[row] = 0
	}
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.rows[i][col]
		if f == 0 { //lint:allow floateq structural zero: skipping only exact zeros keeps elimination a no-op
			continue
		}
		ri := t.rows[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0
		t.rhs[i] -= f * t.rhs[row]
		if t.rhs[i] < 0 && t.rhs[i] > -1e-9 {
			t.rhs[i] = 0
		}
	}
	if f := t.obj[col]; f != 0 { //lint:allow floateq structural zero: objective row update is a no-op at exact zero
		for j := range t.obj {
			t.obj[j] -= f * pr[j]
		}
		t.obj[col] = 0
		t.objRHS -= f * t.rhs[row]
	}
	t.basis[row] = col
}
