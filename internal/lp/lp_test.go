package lp

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"econcast/internal/rng"
)

func solveOK(t *testing.T, p *Problem) *Result {
	t.Helper()
	res, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve error: %v", err)
	}
	return res
}

func wantOptimal(t *testing.T, res *Result, obj float64, tol float64) {
	t.Helper()
	if res.Status != Optimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if math.Abs(res.Objective-obj) > tol {
		t.Fatalf("objective = %v, want %v (x=%v)", res.Objective, obj, res.X)
	}
}

func TestSimpleMaximize(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  ->  36 at (2, 6).
	p := NewProblem(Maximize, 2)
	p.C = []float64{3, 5}
	p.AddLE([]float64{1, 0}, 4)
	p.AddLE([]float64{0, 2}, 12)
	p.AddLE([]float64{3, 2}, 18)
	res := solveOK(t, p)
	wantOptimal(t, res, 36, 1e-9)
	if math.Abs(res.X[0]-2) > 1e-9 || math.Abs(res.X[1]-6) > 1e-9 {
		t.Fatalf("x = %v, want (2, 6)", res.X)
	}
}

func TestSimpleMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x >= 2  ->  21 at (2, 8)? No:
	// cost of x is cheaper, so x=10, y=0 except x>=2 non-binding: 20 at (10,0).
	p := NewProblem(Minimize, 2)
	p.C = []float64{2, 3}
	p.AddGE([]float64{1, 1}, 10)
	p.AddGE([]float64{1, 0}, 2)
	res := solveOK(t, p)
	wantOptimal(t, res, 20, 1e-9)
}

func TestEquality(t *testing.T) {
	// max x + 2y s.t. x + y = 5, x <= 3 -> y=5-x, obj = 10 - x -> x=0, obj 10.
	p := NewProblem(Maximize, 2)
	p.C = []float64{1, 2}
	p.AddEQ([]float64{1, 1}, 5)
	p.AddLE([]float64{1, 0}, 3)
	res := solveOK(t, p)
	wantOptimal(t, res, 10, 1e-9)
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(Maximize, 1)
	p.C = []float64{1}
	p.AddLE([]float64{1}, 1)
	p.AddGE([]float64{1}, 2)
	res := solveOK(t, p)
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(Maximize, 2)
	p.C = []float64{1, 1}
	p.AddGE([]float64{1, 0}, 1)
	res := solveOK(t, p)
	if res.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestMinimizeUnboundedBelow(t *testing.T) {
	// Variables are non-negative, so min x with x >= 3 is bounded: 3.
	p := NewProblem(Minimize, 1)
	p.C = []float64{1}
	p.AddGE([]float64{1}, 3)
	res := solveOK(t, p)
	wantOptimal(t, res, 3, 1e-9)
}

func TestNegativeRHS(t *testing.T) {
	// -x <= -2 is x >= 2; max -x  ->  -2.
	p := NewProblem(Maximize, 1)
	p.C = []float64{-1}
	p.AddLE([]float64{-1}, -2)
	res := solveOK(t, p)
	wantOptimal(t, res, -2, 1e-9)
}

func TestDegenerate(t *testing.T) {
	// Classic degenerate LP; Bland fallback must terminate.
	p := NewProblem(Maximize, 4)
	p.C = []float64{0.75, -150, 0.02, -6}
	p.AddLE([]float64{0.25, -60, -0.04, 9}, 0)
	p.AddLE([]float64{0.5, -90, -0.02, 3}, 0)
	p.AddLE([]float64{0, 0, 1, 0}, 1)
	res := solveOK(t, p)
	wantOptimal(t, res, 0.05, 1e-9)
}

func TestRedundantEquality(t *testing.T) {
	// Duplicated equality rows leave an artificial basic at zero.
	p := NewProblem(Maximize, 2)
	p.C = []float64{1, 1}
	p.AddEQ([]float64{1, 1}, 4)
	p.AddEQ([]float64{2, 2}, 8) // redundant
	p.AddLE([]float64{1, 0}, 3)
	res := solveOK(t, p)
	wantOptimal(t, res, 4, 1e-9)
}

func TestZeroObjective(t *testing.T) {
	p := NewProblem(Maximize, 2)
	p.AddLE([]float64{1, 1}, 1)
	res := solveOK(t, p)
	wantOptimal(t, res, 0, 1e-12)
}

func TestRowLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := NewProblem(Maximize, 2)
	p.AddLE([]float64{1}, 1)
}

func TestRowIsCopied(t *testing.T) {
	p := NewProblem(Maximize, 2)
	row := []float64{1, 1}
	p.AddLE(row, 2)
	row[0] = 99
	if p.A[0][0] != 1 {
		t.Fatal("AddLE did not copy the row")
	}
}

// feasible reports whether x satisfies all constraints of p within tol.
func feasible(p *Problem, x []float64, tol float64) bool {
	for _, v := range x {
		if v < -tol {
			return false
		}
	}
	for i, row := range p.A {
		dot := 0.0
		for j, a := range row {
			dot += a * x[j]
		}
		switch p.Rel[i] {
		case LE:
			if dot > p.B[i]+tol {
				return false
			}
		case GE:
			if dot < p.B[i]-tol {
				return false
			}
		case EQ:
			if math.Abs(dot-p.B[i]) > tol {
				return false
			}
		}
	}
	return true
}

// bruteForce enumerates all basic solutions of the standard-form problem
// (after adding slacks for LE rows only; test problems use only LE) and
// returns the best feasible objective. Used to cross-check small instances.
func bruteForceLE(p *Problem) (float64, bool) {
	n := p.NumVars()
	m := p.NumRows()
	ncols := n + m
	// Build equality system [A I] x = b.
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, ncols)
		copy(a[i], p.A[i])
		a[i][n+i] = 1
	}
	best := math.Inf(-1)
	found := false
	// Enumerate all column subsets of size m.
	idx := make([]int, m)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == m {
			x, ok := solveSquare(a, p.B, idx)
			if !ok {
				return
			}
			full := make([]float64, ncols)
			neg := false
			for t, j := range idx {
				if x[t] < -1e-9 {
					neg = true
					break
				}
				full[j] = x[t]
			}
			if neg {
				return
			}
			obj := 0.0
			for j := 0; j < n; j++ {
				obj += p.C[j] * full[j]
			}
			if !found || obj > best {
				best = obj
				found = true
			}
			return
		}
		for j := start; j < ncols; j++ {
			idx[k] = j
			rec(j+1, k+1)
		}
	}
	rec(0, 0)
	return best, found
}

// solveSquare solves the m x m system formed by the selected columns.
func solveSquare(a [][]float64, b []float64, cols []int) ([]float64, bool) {
	m := len(b)
	mat := make([][]float64, m)
	for i := range mat {
		mat[i] = make([]float64, m+1)
		for t, j := range cols {
			mat[i][t] = a[i][j]
		}
		mat[i][m] = b[i]
	}
	for c := 0; c < m; c++ {
		piv := -1
		bestAbs := 1e-9
		for r := c; r < m; r++ {
			if math.Abs(mat[r][c]) > bestAbs {
				bestAbs = math.Abs(mat[r][c])
				piv = r
			}
		}
		if piv < 0 {
			return nil, false
		}
		mat[c], mat[piv] = mat[piv], mat[c]
		inv := 1 / mat[c][c]
		for j := c; j <= m; j++ {
			mat[c][j] *= inv
		}
		for r := 0; r < m; r++ {
			if r == c || mat[r][c] == 0 {
				continue
			}
			f := mat[r][c]
			for j := c; j <= m; j++ {
				mat[r][j] -= f * mat[c][j]
			}
		}
	}
	x := make([]float64, m)
	for i := range x {
		x[i] = mat[i][m]
	}
	return x, true
}

// Property test: on random small LE-form LPs with b >= 0 (always feasible at
// the origin), the simplex objective matches brute-force enumeration of
// basic solutions, and the returned point is feasible.
func TestRandomAgainstBruteForce(t *testing.T) {
	src := rng.New(99)
	for trial := 0; trial < 200; trial++ {
		n := 1 + src.Intn(4)
		m := 1 + src.Intn(4)
		p := NewProblem(Maximize, n)
		for j := 0; j < n; j++ {
			p.C[j] = src.Uniform(-2, 3)
		}
		bounded := false
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := 0; j < n; j++ {
				row[j] = src.Uniform(-1, 2)
			}
			p.AddLE(row, src.Uniform(0, 5))
		}
		// Ensure boundedness by boxing every variable.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.AddLE(row, 10)
		}
		bounded = true
		_ = bounded

		res, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v for boxed feasible LP", trial, res.Status)
		}
		if !feasible(p, res.X, 1e-6) {
			t.Fatalf("trial %d: infeasible solution %v", trial, res.X)
		}
		want, ok := bruteForceLE(p)
		if !ok {
			t.Fatalf("trial %d: brute force found no solution", trial)
		}
		if math.Abs(res.Objective-want) > 1e-6*math.Max(1, math.Abs(want)) {
			t.Fatalf("trial %d: objective %v, brute force %v", trial,
				res.Objective, want)
		}
	}
}

// Regression shape: the paper's homogeneous (P2) closed form.
// max sum(alpha_i) s.t. alpha_i L + beta_i X <= rho, alpha_i + beta_i <= 1,
// sum beta_i <= 1, alpha_i <= sum_{j != i} beta_j.
func TestHomogeneousGroupputClosedForm(t *testing.T) {
	const (
		n   = 5
		rho = 10e-6
		l   = 500e-6
		x   = 500e-6
	)
	p := NewProblem(Maximize, 2*n) // alpha_0..alpha_4, beta_0..beta_4
	for i := 0; i < n; i++ {
		p.C[i] = 1
	}
	for i := 0; i < n; i++ {
		row := make([]float64, 2*n)
		row[i] = l
		row[n+i] = x
		p.AddLE(row, rho)
		row2 := make([]float64, 2*n)
		row2[i] = 1
		row2[n+i] = 1
		p.AddLE(row2, 1)
		row3 := make([]float64, 2*n)
		row3[i] = 1
		for j := 0; j < n; j++ {
			if j != i {
				row3[n+j] = -1
			}
		}
		p.AddLE(row3, 0)
	}
	sumBeta := make([]float64, 2*n)
	for j := 0; j < n; j++ {
		sumBeta[n+j] = 1
	}
	p.AddLE(sumBeta, 1)

	res := solveOK(t, p)
	beta := rho / (x + float64(n-1)*l)
	alpha := float64(n-1) * beta
	want := float64(n) * alpha
	wantOptimal(t, res, want, 1e-9)
}

func BenchmarkSolveP2Size100(b *testing.B) {
	const n = 100
	build := func() *Problem {
		p := NewProblem(Maximize, 2*n)
		for i := 0; i < n; i++ {
			p.C[i] = 1
		}
		for i := 0; i < n; i++ {
			row := make([]float64, 2*n)
			row[i] = 0.05
			row[n+i] = 0.05
			p.AddLE(row, 0.001)
			row3 := make([]float64, 2*n)
			row3[i] = 1
			for j := 0; j < n; j++ {
				if j != i {
					row3[n+j] = -1
				}
			}
			p.AddLE(row3, 0)
		}
		sumBeta := make([]float64, 2*n)
		for j := 0; j < n; j++ {
			sumBeta[n+j] = 1
		}
		p.AddLE(sumBeta, 1)
		return p
	}
	p := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// Property (testing/quick): no random feasible point of a random boxed LP
// can beat the simplex optimum.
func TestNoFeasiblePointBeatsOptimum(t *testing.T) {
	src := rng.New(123)
	f := func() bool {
		n := 1 + src.Intn(3)
		p := NewProblem(Maximize, n)
		for j := 0; j < n; j++ {
			p.C[j] = src.Uniform(-1, 2)
		}
		for i := 0; i < 1+src.Intn(3); i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = src.Uniform(-1, 2)
			}
			p.AddLE(row, src.Uniform(0.5, 4))
		}
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.AddLE(row, 5)
		}
		res, err := Solve(p)
		if err != nil || res.Status != Optimal {
			return false
		}
		// Rejection-sample feasible points and compare.
		for trial := 0; trial < 200; trial++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = src.Uniform(0, 5)
			}
			if !feasible(p, x, 0) {
				continue
			}
			obj := 0.0
			for j := range x {
				obj += p.C[j] * x[j]
			}
			if obj > res.Objective+1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// --- PR 4: pricing fallback, iteration budget, and parallel pivots ---

// beale builds Beale's classic cycling example: under naive Dantzig pricing
// with unlucky tie-breaking, the simplex cycles forever through degenerate
// bases. Optimal value is -0.05 at x = (1/25, 0, 1, 0).
func beale() *Problem {
	p := NewProblem(Minimize, 4)
	p.C = []float64{-0.75, 150, -0.02, 6}
	p.AddLE([]float64{0.25, -60, -0.04, 9}, 0)
	p.AddLE([]float64{0.5, -90, -0.02, 3}, 0)
	p.AddLE([]float64{0, 0, 1, 0}, 1)
	return p
}

func TestBealeCyclingExample(t *testing.T) {
	res := solveOK(t, beale())
	wantOptimal(t, res, -0.05, 1e-9)
}

func TestDegenerateStallFallsBackToBland(t *testing.T) {
	// With the stall threshold forced to 1, the very first degenerate
	// pivot flips pricing to Bland's rule; Beale's example pivots through
	// degenerate bases at the origin, so the fallback must engage and the
	// solve must still reach the optimum.
	p := beale()
	p.DegenStall = 1
	res := solveOK(t, p)
	wantOptimal(t, res, -0.05, 1e-9)
	if res.BlandPivots == 0 {
		t.Fatalf("expected Bland fallback pivots on a degenerate problem (pivots=%d)", res.Pivots)
	}
	if res.Pivots <= res.BlandPivots {
		t.Fatalf("pivot accounting inconsistent: total %d, bland %d", res.Pivots, res.BlandPivots)
	}
}

func TestDantzigPathReportsNoBlandPivots(t *testing.T) {
	// A nondegenerate problem must never engage the fallback.
	p := NewProblem(Maximize, 2)
	p.C = []float64{3, 5}
	p.AddLE([]float64{1, 0}, 4)
	p.AddLE([]float64{0, 2}, 12)
	p.AddLE([]float64{3, 2}, 18)
	res := solveOK(t, p)
	if res.BlandPivots != 0 {
		t.Fatalf("BlandPivots = %d on a nondegenerate problem", res.BlandPivots)
	}
	if res.Pivots == 0 {
		t.Fatal("Pivots = 0, expected at least one")
	}
}

func TestMaxIterOverride(t *testing.T) {
	// An absurdly small budget must fail fast with ErrIterationLimit...
	p := beale()
	p.MaxIter = 1
	if _, err := Solve(p); err != ErrIterationLimit {
		t.Fatalf("MaxIter=1: err = %v, want ErrIterationLimit", err)
	}
	// ...and the default (dimension-scaled) budget must solve it.
	p.MaxIter = 0
	res := solveOK(t, p)
	wantOptimal(t, res, -0.05, 1e-9)
}

// wideProblem builds a deterministic bounded LP whose tableau area crosses
// the parallel-pivot cutoff: rows * (vars + slacks) >> parallelCells.
func wideProblem(vars, rows int) *Problem {
	src := rng.New(rng.DeriveSeed(99, uint64(vars), uint64(rows)))
	p := NewProblem(Maximize, vars)
	for j := range p.C {
		p.C[j] = 0.1 + src.Float64()
	}
	for i := 0; i < rows; i++ {
		row := make([]float64, vars)
		for j := range row {
			row[j] = 0.05 + src.Float64()
		}
		p.AddLE(row, 1+src.Float64()*float64(vars)/8)
	}
	return p
}

func TestParallelPivotBitIdentical(t *testing.T) {
	const vars, rows = 4000, 12
	base := wideProblem(vars, rows)
	if rows*(vars+rows) < parallelCells {
		t.Fatalf("test problem below parallel cutoff: %d < %d", rows*(vars+rows), parallelCells)
	}
	var ref *Result
	for _, workers := range []int{1, 4, 16} {
		p := wideProblem(vars, rows)
		p.Workers = workers
		res, err := Solve(p)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Status != Optimal {
			t.Fatalf("workers=%d: status %v", workers, res.Status)
		}
		if ref == nil {
			ref = res
			continue
		}
		if math.Float64bits(res.Objective) != math.Float64bits(ref.Objective) {
			t.Fatalf("workers=%d: objective %v != serial %v (not bit-identical)",
				workers, res.Objective, ref.Objective)
		}
		for j := range res.X {
			if math.Float64bits(res.X[j]) != math.Float64bits(ref.X[j]) {
				t.Fatalf("workers=%d: x[%d] = %v != serial %v (not bit-identical)",
					workers, j, res.X[j], ref.X[j])
			}
		}
		if res.Pivots != ref.Pivots || res.BlandPivots != ref.BlandPivots {
			t.Fatalf("workers=%d: pivot counts (%d, %d) != serial (%d, %d)",
				workers, res.Pivots, res.BlandPivots, ref.Pivots, ref.BlandPivots)
		}
	}
	// The parallel result must also be feasible for the original problem.
	if !feasible(base, ref.X, 1e-6) {
		t.Fatal("parallel optimum infeasible")
	}
}

func TestIterationBudgetScalesWithDimensions(t *testing.T) {
	// A 4000-column LP gets a far larger default budget than a 2-column
	// one; both derive from 200*(m+ncols+10). Verified indirectly: the
	// wide problem needs more pivots than a tiny MaxIter would allow but
	// solves fine under the scaled default.
	p := wideProblem(2000, 8)
	res := solveOK(t, p)
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	p2 := wideProblem(2000, 8)
	p2.MaxIter = 1
	if _, err := Solve(p2); err != ErrIterationLimit {
		t.Fatalf("err = %v, want ErrIterationLimit with MaxIter=1", err)
	}
}

// TestSolveCanceledContext pins the context contract: an expired context
// aborts the solve with an error wrapping both ErrCanceled and the
// context's own error, while a live context changes nothing about the
// result bits.
func TestSolveCanceledContext(t *testing.T) {
	build := func() *Problem {
		p := NewProblem(Maximize, 3)
		p.C = []float64{3, 1, 2}
		p.AddLE([]float64{1, 1, 3}, 30)
		p.AddLE([]float64{2, 2, 5}, 24)
		p.AddLE([]float64{4, 1, 2}, 36)
		return p
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	p := build()
	p.Ctx = canceled
	if _, err := Solve(p); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled solve: err=%v, want wrap of ErrCanceled and context.Canceled", err)
	}

	plain := build()
	res, err := Solve(plain)
	if err != nil {
		t.Fatal(err)
	}
	live := build()
	live.Ctx = context.Background()
	resLive, err := Solve(live)
	if err != nil {
		t.Fatal(err)
	}
	if resLive.Objective != res.Objective {
		t.Fatalf("live-context solve diverged: %v vs %v", resLive.Objective, res.Objective)
	}
	for i := range res.X {
		if resLive.X[i] != res.X[i] {
			t.Fatalf("live-context solution diverged at %d: %v vs %v", i, resLive.X[i], res.X[i])
		}
	}
}
