package serve

// Serving-latency benchmarks for BENCH_PR10.json. Each reports p50 and
// p99 request latency (custom ReportMetric columns, harvested by
// cmd/benchjson) measured through the full HTTP stack: client ->
// admission gate -> singleflight -> cache/solve -> JSON response.

import (
	"context"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"econcast/internal/stats"
)

func benchLatencies(b *testing.B, req *Request) {
	b.Helper()
	solver, err := NewSolver(SolverConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = solver.Close() }()
	srv := NewServer(Config{Solver: solver, Seed: 42})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ClientConfig{BaseURL: ts.URL, Attempts: 2, Seed: 43})

	// Warm: the first request pays the LP solve; steady-state serving is
	// the cache-hit path, which is what a re-adapting fleet sees.
	if _, err := client.Solve(context.Background(), req); err != nil {
		b.Fatal(err)
	}

	lat := make([]float64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := client.Solve(context.Background(), req); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, float64(time.Since(start).Nanoseconds()))
	}
	b.StopTimer()
	sort.Float64s(lat)
	b.ReportMetric(stats.Quantile(lat, 0.50), "p50-ns")
	b.ReportMetric(stats.Quantile(lat, 0.99), "p99-ns")
}

// BenchmarkServeGroupputCached is the steady-state healthy path: a
// clique groupput query answered from the persistent cache.
func BenchmarkServeGroupputCached(b *testing.B) {
	benchLatencies(b, cliqueReq(ObjGroupput, 16))
}

// BenchmarkServeBoundsCached is the same path for the non-clique bounds
// objective (larger response: lower + upper operating points).
func BenchmarkServeBoundsCached(b *testing.B) {
	benchLatencies(b, &Request{
		Objective: ObjBounds, N: 16, Rho: 1e-5, Listen: 5e-4, Transmit: 5e-4,
		Topology: &TopoSpec{Kind: "ring"},
	})
}

// BenchmarkServeSolveExact measures the uncached leg: every iteration
// solves a fresh heterogeneous fleet through the LP (distinct budgets
// defeat both the serving cache and the oracle memo).
func BenchmarkServeSolveExact(b *testing.B) {
	solver, err := NewSolver(SolverConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = solver.Close() }()
	srv := NewServer(Config{Solver: solver, Seed: 44})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ClientConfig{BaseURL: ts.URL, Attempts: 2, Seed: 45})

	lat := make([]float64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes := make([]NodeSpec, 8)
		for j := range nodes {
			nodes[j] = NodeSpec{
				Budget:   1e-5 * (1 + float64(i*len(nodes)+j+1)/1e6),
				Listen:   5e-4,
				Transmit: 5e-4,
			}
		}
		req := &Request{Objective: ObjGroupput, Nodes: nodes}
		start := time.Now()
		if _, err := client.Solve(context.Background(), req); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, float64(time.Since(start).Nanoseconds()))
	}
	b.StopTimer()
	sort.Float64s(lat)
	b.ReportMetric(stats.Quantile(lat, 0.50), "p50-ns")
	b.ReportMetric(stats.Quantile(lat, 0.99), "p99-ns")
}

// BenchmarkGateAdmit pins the admission decision itself: the path that
// runs once per arrival even at full overload must stay allocation-free
// (hotalloc root) and fast.
func BenchmarkGateAdmit(b *testing.B) {
	g := newGate(7, 64, 256)
	g.setShed(0.5)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.admit(ctx) == admitOK {
			g.release()
		}
	}
}
