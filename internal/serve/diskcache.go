package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// diskCache is the crash-safe persistent solution cache: an append-only
// log of checksummed records mirrored by an in-memory map. A restarted
// oracled replays the log and skips warm-up entirely; a corrupted log
// (truncated tail, flipped bytes, a record half-written when the host
// died) recovers to a working, possibly smaller, cache — never a panic
// and never a silently wrong hit, because every record must round-trip
// its CRC before it is believed.
//
// Record framing, little-endian:
//
//	magic "ECOR" | u32 keyLen | u32 valLen | key | val | u32 crc
//
// with the CRC (IEEE) covering keyLen..val. Recovery scans for the
// magic, validates lengths and CRC, and on any mismatch resynchronizes
// at the next magic occurrence — so one bad record costs one record,
// not the rest of the file. If recovery dropped anything, the log is
// rewritten compacted through a temp file + atomic rename before the
// append handle opens, so the damage is excised exactly once.
//
// With dir == "" the cache is memory-only: same API, no persistence —
// the degrade ladder and singleflight still get their lookup table.
type diskCache struct {
	mu   sync.Mutex
	m    map[string][]byte
	keys []string // insertion order; Compact and tests iterate this, never the map
	f    *os.File // nil when memory-only
	path string

	loaded  int // records recovered at open
	skipped int // corrupt records dropped at open
	puts    int
	hits    uint64
	misses  uint64
}

var diskMagic = [4]byte{'E', 'C', 'O', 'R'}

const (
	cacheFileName = "oracle.cache"
	maxKeyLen     = 1 << 20
	maxValLen     = 1 << 26
)

// openDiskCache opens (creating if needed) the cache under dir, running
// corruption-tolerant recovery first. dir == "" yields a memory-only
// cache.
func openDiskCache(dir string) (*diskCache, error) {
	c := &diskCache{m: make(map[string][]byte)}
	if dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: cache dir: %w", err)
	}
	c.path = filepath.Join(dir, cacheFileName)
	raw, err := os.ReadFile(c.path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("serve: cache read: %w", err)
	}
	c.recover(raw)
	if c.skipped > 0 {
		// Excise the damage once, atomically: full rewrite to a temp
		// file in the same directory, fsync, rename over the log.
		if err := c.rewrite(); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(c.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: cache open: %w", err)
	}
	c.f = f
	return c, nil
}

// recover replays raw into the in-memory map, skipping anything that
// fails framing or checksum validation and resynchronizing at the next
// magic marker.
func (c *diskCache) recover(raw []byte) {
	off := 0
	for off < len(raw) {
		i := indexMagic(raw[off:])
		if i < 0 {
			if len(raw)-off > 0 {
				c.skipped++ // trailing garbage with no further marker
			}
			return
		}
		if i > 0 {
			c.skipped++ // garbage before the marker
		}
		off += i
		rec := raw[off:]
		key, val, n, ok := parseRecord(rec)
		if !ok {
			// Bad or truncated record: resync just past this marker.
			c.skipped++
			off += len(diskMagic)
			continue
		}
		c.put(string(key), append([]byte(nil), val...))
		c.loaded++
		off += n
	}
}

// parseRecord parses one record starting at the magic. ok is false on
// truncation, implausible lengths, or checksum mismatch.
func parseRecord(b []byte) (key, val []byte, size int, ok bool) {
	const hdr = 4 + 4 + 4 // magic + keyLen + valLen
	if len(b) < hdr {
		return nil, nil, 0, false
	}
	keyLen := int(binary.LittleEndian.Uint32(b[4:]))
	valLen := int(binary.LittleEndian.Uint32(b[8:]))
	if keyLen <= 0 || keyLen > maxKeyLen || valLen < 0 || valLen > maxValLen {
		return nil, nil, 0, false
	}
	size = hdr + keyLen + valLen + 4
	if len(b) < size {
		return nil, nil, 0, false
	}
	body := b[4 : hdr+keyLen+valLen]
	want := binary.LittleEndian.Uint32(b[size-4:])
	if crc32.ChecksumIEEE(body) != want {
		return nil, nil, 0, false
	}
	return b[hdr : hdr+keyLen], b[hdr+keyLen : hdr+keyLen+valLen], size, true
}

// indexMagic returns the offset of the first magic occurrence in b, or
// -1.
func indexMagic(b []byte) int {
	for i := 0; i+len(diskMagic) <= len(b); i++ {
		if b[i] == diskMagic[0] && b[i+1] == diskMagic[1] &&
			b[i+2] == diskMagic[2] && b[i+3] == diskMagic[3] {
			return i
		}
	}
	return -1
}

// put installs key -> val in the memory map, tracking insertion order
// for deterministic compaction.
func (c *diskCache) put(key string, val []byte) {
	if _, ok := c.m[key]; !ok {
		c.keys = append(c.keys, key)
	}
	c.m[key] = val
}

// encodeRecord frames one record.
func encodeRecord(key string, val []byte) []byte {
	buf := make([]byte, 0, 16+len(key)+len(val))
	buf = append(buf, diskMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(val)))
	buf = append(buf, key...)
	buf = append(buf, val...)
	crc := crc32.ChecksumIEEE(buf[4:])
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// rewrite writes the full in-memory contents to a temp file and renames
// it over the log: the atomic, crash-safe compaction path.
func (c *diskCache) rewrite() error {
	tmp := c.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("serve: cache rewrite: %w", err)
	}
	for _, k := range c.keys {
		if _, err := f.Write(encodeRecord(k, c.m[k])); err != nil {
			_ = f.Close()
			return fmt.Errorf("serve: cache rewrite: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("serve: cache rewrite sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("serve: cache rewrite close: %w", err)
	}
	if err := os.Rename(tmp, c.path); err != nil {
		return fmt.Errorf("serve: cache rewrite rename: %w", err)
	}
	return nil
}

// Get returns the cached value for key, or nil.
func (c *diskCache) Get(key string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	return v
}

// Put stores key -> val in memory and appends the record to the log.
// The append either lands whole or is excised by the next open's
// recovery; the in-memory copy is installed first, so a failed disk
// write degrades persistence, not correctness.
func (c *diskCache) Put(key string, val []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; ok {
		return nil // immutable values: first write wins, no duplicate records
	}
	c.put(key, val)
	c.puts++
	if c.f == nil {
		return nil
	}
	if _, err := c.f.Write(encodeRecord(key, val)); err != nil {
		return fmt.Errorf("serve: cache append: %w", err)
	}
	return nil
}

// Compact rewrites the log atomically (temp + rename) and reopens the
// append handle. Useful after recovery or for tests; the append-only
// log never grows duplicates, so compaction is about excising corruption
// rather than garbage collection.
func (c *diskCache) Compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	if err := c.f.Close(); err != nil {
		return fmt.Errorf("serve: cache close for compact: %w", err)
	}
	if err := c.rewrite(); err != nil {
		return err
	}
	f, err := os.OpenFile(c.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("serve: cache reopen: %w", err)
	}
	c.f = f
	return nil
}

// Sync flushes the log to stable storage.
func (c *diskCache) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	return c.f.Sync()
}

// Close syncs and closes the log. The cache remains usable memory-only.
func (c *diskCache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Sync()
	if cerr := c.f.Close(); err == nil {
		err = cerr
	}
	c.f = nil
	return err
}

// diskCacheStats is the /statz projection of the cache.
type diskCacheStats struct {
	Entries int    `json:"entries"`
	Loaded  int    `json:"loaded"`
	Skipped int    `json:"skipped"`
	Puts    int    `json:"puts"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

func (c *diskCache) stats() diskCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return diskCacheStats{
		Entries: len(c.keys),
		Loaded:  c.loaded,
		Skipped: c.skipped,
		Puts:    c.puts,
		Hits:    c.hits,
		Misses:  c.misses,
	}
}
