package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"econcast/internal/rng"
)

// jitterDomain namespaces the client's backoff-jitter stream.
const jitterDomain uint64 = 0xba0ff

// ClientConfig configures a Client.
type ClientConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:9090".
	BaseURL string
	// Attempts is the total try budget including the first (default 4).
	Attempts int
	// PerTry is the per-attempt timeout (default 2s).
	PerTry time.Duration
	// BaseBackoff seeds the exponential backoff: attempt k waits
	// ~BaseBackoff * 2^k, jittered (default 50ms).
	BaseBackoff time.Duration
	// Seed drives the deterministic backoff jitter.
	Seed uint64
	// HTTPClient optionally overrides the transport (tests).
	HTTPClient *http.Client
}

// Client is the retrying client for oracled: per-attempt timeouts,
// retry on transport errors and 429/503, Retry-After honored when the
// server sends one, exponential backoff with deterministic jitter
// otherwise. Jitter draws come from DeriveSeed(seed, jitterDomain,
// attempt), so a chaos run's client behavior replays exactly.
//
//lint:owner goroutine one request loop owns a Client; its attempt counters are unsynchronized
type Client struct {
	cfg ClientConfig
	hc  *http.Client

	attempts uint64 // total HTTP attempts, for harness assertions
	retried  uint64 // attempts beyond the first
}

// ErrExhausted is returned when every attempt failed or was refused.
var ErrExhausted = errors.New("serve: retry budget exhausted")

func NewClient(cfg ClientConfig) *Client {
	if cfg.Attempts <= 0 {
		cfg.Attempts = 4
	}
	if cfg.PerTry <= 0 {
		cfg.PerTry = 2 * time.Second
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{cfg: cfg, hc: hc}
}

// Solve submits req, retrying transient refusals until ctx or the
// attempt budget runs out. The returned error wraps ErrExhausted when
// the budget died first.
func (c *Client) Solve(ctx context.Context, req *Request) (*Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("serve: marshal request: %w", err)
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.Attempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, c.backoff(attempt, lastErr)); err != nil {
				return nil, err
			}
			c.retried++
		}
		resp, retryable, err := c.try(ctx, body)
		if err == nil {
			return resp, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !retryable {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w after %d attempts: %w", ErrExhausted, c.cfg.Attempts, lastErr)
}

// retryAfterError carries a server-directed backoff out of one attempt.
type retryAfterError struct {
	status int
	after  time.Duration
}

func (e *retryAfterError) Error() string {
	return "serve: server refused with status " + strconv.Itoa(e.status)
}

// try runs one attempt under its own deadline. retryable reports
// whether the failure is worth another try.
func (c *Client) try(ctx context.Context, body []byte) (_ *Response, retryable bool, _ error) {
	c.attempts++
	tctx, cancel := context.WithTimeout(ctx, c.cfg.PerTry)
	defer cancel()
	hreq, err := http.NewRequestWithContext(tctx, http.MethodPost, c.cfg.BaseURL+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, true, err // transport errors (refused, reset, timeout) are retryable
	}
	defer func() { _ = hresp.Body.Close() }()
	switch hresp.StatusCode {
	case http.StatusOK:
		var out Response
		if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
			return nil, true, fmt.Errorf("serve: decode response: %w", err)
		}
		return &out, false, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		_, _ = io.Copy(io.Discard, hresp.Body)
		after := time.Duration(0)
		if v := hresp.Header.Get("Retry-After"); v != "" {
			if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
				after = time.Duration(secs) * time.Second
			}
		}
		return nil, true, &retryAfterError{status: hresp.StatusCode, after: after}
	default:
		b, _ := io.ReadAll(io.LimitReader(hresp.Body, 1<<12))
		return nil, false, fmt.Errorf("serve: status %d: %s", hresp.StatusCode, bytes.TrimSpace(b))
	}
}

// backoff computes the wait before the given (1-based) retry attempt:
// the server's Retry-After if it sent one, else exponential growth from
// BaseBackoff with a deterministic jitter in [0.5, 1.5).
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	var ra *retryAfterError
	if errors.As(lastErr, &ra) && ra.after > 0 {
		return ra.after
	}
	d := c.cfg.BaseBackoff << (attempt - 1)
	u := float64(rng.DeriveSeed(c.cfg.Seed, jitterDomain, uint64(attempt))>>11) / (1 << 53)
	return time.Duration(float64(d) * (0.5 + u))
}

// sleep waits d or until ctx dies — the client's one licensed select.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Attempts reports total HTTP attempts made; Retried reports how many
// were retries.
func (c *Client) Attempts() uint64 { return c.attempts }
func (c *Client) Retried() uint64  { return c.retried }
