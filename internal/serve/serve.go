// Package serve is the always-on oracle/control plane: a fault-hardened
// serving layer that answers "optimal rates for this fleet" queries by
// wrapping the memoized oracle (internal/oracle) behind a full
// robustness envelope — admission control with propagated deadlines,
// a bounded queue with deterministic load-shedding, singleflight dedup
// on the oracle's canonical cache key, a circuit breaker around the LP
// solver with a graceful degrade ladder, and a crash-safe persistent
// solution cache.
//
// The paper's protocols only reach capacity when nodes run at the
// oracle-computed operating point, and both the throughput-optimal CSMA
// line and the dynamic-topology broadcast sequel (PAPERS.md) re-adapt
// parameters on every fleet change, so a production fleet re-queries
// this service continuously. The design goal is therefore *bounded
// degradation*: under overload the service sheds deterministically with
// 429 + Retry-After; with the solver slow, stuck, or failing it serves
// provenance-labeled cached or closed-form approximations instead of
// erroring; after a crash it recovers its persistent cache record by
// record, skipping corruption. The chaos harness in chaos_test.go
// composes internal/faults processes against a synthetic heavy-traffic
// driver to prove each of those properties under -race.
//
// Unlike the simulators, this package legitimately lives on the wall
// clock (deadlines, Retry-After, breaker cool-downs are real-time
// quantities), and it is licensed for goroutines and selects — see the
// econlint exemptions in internal/lint. Every boundary-crossing channel
// is direction-typed and the admission hot path is allocation-free
// (hotalloc root gate.admit).
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"econcast/internal/model"
	"econcast/internal/oracle"
	"econcast/internal/topology"
)

// Provenance labels of a Response: how the answer was produced.
const (
	// ProvExact: the LP solver produced this answer for this request.
	ProvExact = "exact"
	// ProvCached: served from the persistent/in-memory solution cache
	// (bitwise-identical to the exact answer that populated it).
	ProvCached = "cached"
	// ProvDegraded: the breaker is open (or the solve failed) and no
	// cached answer exists; this is the symmetric closed-form
	// approximation, not the LP optimum.
	ProvDegraded = "degraded"
)

// Objective names accepted in a Request.
const (
	ObjGroupput = "groupput" // (P2), clique
	ObjAnyput   = "anyput"   // (P3), clique
	ObjBounds   = "bounds"   // §IV-C non-clique lower/upper bounds
	ObjExact    = "exact"    // exact non-clique configuration LP (N <= 16)
)

// NodeSpec is one node's power parameters (all in watts).
type NodeSpec struct {
	Budget   float64 `json:"budget"`
	Listen   float64 `json:"listen"`
	Transmit float64 `json:"transmit"`
}

// TopoSpec selects a non-clique topology for the bounds/exact
// objectives. Kind is one of grid, ring, line, star; grid uses
// Rows x Cols, the others use N.
type TopoSpec struct {
	Kind string `json:"kind"`
	Rows int    `json:"rows,omitempty"`
	Cols int    `json:"cols,omitempty"`
	N    int    `json:"n,omitempty"`
}

// Request is one oracle query. Either the homogeneous shorthand
// (N/Rho/Listen/Transmit) or the explicit Nodes list describes the
// fleet; Nodes wins when both are present.
type Request struct {
	Objective string `json:"objective"`

	// Homogeneous shorthand.
	N        int     `json:"n,omitempty"`
	Rho      float64 `json:"rho,omitempty"`
	Listen   float64 `json:"listen,omitempty"`
	Transmit float64 `json:"transmit,omitempty"`

	// Heterogeneous fleet; overrides the shorthand.
	Nodes []NodeSpec `json:"nodes,omitempty"`

	// Topology, required for bounds/exact, rejected for clique
	// objectives (groupput/anyput are clique formulations).
	Topology *TopoSpec `json:"topology,omitempty"`

	// TimeoutMs optionally tightens the server's per-request solve
	// budget; it can never widen it.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// Result is one operating point: throughput plus per-node listen (alpha)
// and transmit (beta) time fractions.
type Result struct {
	Throughput float64   `json:"throughput"`
	Alpha      []float64 `json:"alpha"`
	Beta       []float64 `json:"beta"`
}

// Response is the answer to a Request. For ObjBounds, the embedded
// Result is the lower (achievable) bound and Upper carries the upper
// bound; Upper is nil for every other objective and for degraded
// answers (the closed form approximates only the achievable point).
type Response struct {
	Result
	Upper      *Result `json:"upper,omitempty"`
	Provenance string  `json:"provenance"`
}

// clone deep-copies r so singleflight followers and cache hits can hand
// out independent slices.
func (r *Response) clone() *Response {
	out := &Response{Result: cloneResult(r.Result), Provenance: r.Provenance}
	if r.Upper != nil {
		u := cloneResult(*r.Upper)
		out.Upper = &u
	}
	return out
}

func cloneResult(r Result) Result {
	return Result{
		Throughput: r.Throughput,
		Alpha:      append([]float64(nil), r.Alpha...),
		Beta:       append([]float64(nil), r.Beta...),
	}
}

// ErrBadRequest wraps every request-validation failure, so the HTTP
// layer can map it to 400 without string matching.
var ErrBadRequest = errors.New("serve: bad request")

// maxFleet bounds the fleet size a single query may ask about; the
// dense per-node LP beyond this is not a serving-latency workload.
const maxFleet = 1024

// compiled is a validated, canonicalized request: the model network,
// the topology (nil for clique objectives), and the serving cache key.
type compiled struct {
	objective string
	nw        *model.Network
	topo      *topology.Topology
	key       string
}

// compile validates req and builds its canonical form. The cache key is
// the objective byte plus oracle.CanonicalKey — the same canonical
// bytes the in-process memo uses — so batch (cmd/oracle) and serving
// (cmd/oracled) answers dedup and persist under one identity.
func (req *Request) compile() (*compiled, error) {
	nw, err := req.network()
	if err != nil {
		return nil, err
	}
	var topo *topology.Topology
	var kind oracle.Kind
	switch req.Objective {
	case ObjGroupput, ObjAnyput:
		if req.Topology != nil {
			return nil, fmt.Errorf("%w: objective %q is a clique formulation; use bounds or exact for topologies", ErrBadRequest, req.Objective)
		}
		kind = oracle.KindGroupput
		if req.Objective == ObjAnyput {
			kind = oracle.KindAnyput
		}
	case ObjBounds, ObjExact:
		if req.Topology == nil {
			return nil, fmt.Errorf("%w: objective %q needs a topology", ErrBadRequest, req.Objective)
		}
		topo, err = req.Topology.build(nw.N())
		if err != nil {
			return nil, err
		}
		kind = oracle.KindGroupput
		if req.Objective == ObjExact {
			kind = oracle.KindNonCliqueExact
			if nw.N() > oracle.MaxNodesExactNonClique {
				return nil, fmt.Errorf("%w: exact objective limited to %d nodes, got %d", ErrBadRequest, oracle.MaxNodesExactNonClique, nw.N())
			}
		}
	default:
		return nil, fmt.Errorf("%w: unknown objective %q", ErrBadRequest, req.Objective)
	}
	if err := nw.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return &compiled{
		objective: req.Objective,
		nw:        nw,
		topo:      topo,
		key:       objByte(req.Objective) + oracle.CanonicalKey(kind, nw, topo),
	}, nil
}

func objByte(objective string) string {
	switch objective {
	case ObjGroupput:
		return "g"
	case ObjAnyput:
		return "a"
	case ObjBounds:
		return "b"
	case ObjExact:
		return "x"
	}
	return "?"
}

func (req *Request) network() (*model.Network, error) {
	if len(req.Nodes) > 0 {
		if len(req.Nodes) > maxFleet {
			return nil, fmt.Errorf("%w: fleet of %d exceeds the %d-node serving limit", ErrBadRequest, len(req.Nodes), maxFleet)
		}
		nw := &model.Network{Nodes: make([]model.Node, len(req.Nodes))}
		for i, n := range req.Nodes {
			nw.Nodes[i] = model.Node{Budget: n.Budget, ListenPower: n.Listen, TransmitPower: n.Transmit}
		}
		return nw, nil
	}
	if req.N <= 0 {
		return nil, fmt.Errorf("%w: need n > 0 or a nodes list", ErrBadRequest)
	}
	if req.N > maxFleet {
		return nil, fmt.Errorf("%w: fleet of %d exceeds the %d-node serving limit", ErrBadRequest, req.N, maxFleet)
	}
	return model.Homogeneous(req.N, req.Rho, req.Listen, req.Transmit), nil
}

func (t *TopoSpec) build(n int) (*topology.Topology, error) {
	var topo *topology.Topology
	switch t.Kind {
	case "grid":
		if t.Rows <= 0 || t.Cols <= 0 {
			return nil, fmt.Errorf("%w: grid topology needs rows > 0 and cols > 0", ErrBadRequest)
		}
		if t.Rows*t.Cols != n {
			return nil, fmt.Errorf("%w: grid %dx%d has %d nodes, fleet has %d", ErrBadRequest, t.Rows, t.Cols, t.Rows*t.Cols, n)
		}
		topo = topology.Grid(t.Rows, t.Cols)
	case "ring", "line", "star":
		tn := t.N
		if tn == 0 {
			tn = n
		}
		if tn != n {
			return nil, fmt.Errorf("%w: topology has %d nodes, fleet has %d", ErrBadRequest, tn, n)
		}
		switch t.Kind {
		case "ring":
			topo = topology.Ring(n)
		case "line":
			topo = topology.Line(n)
		default:
			topo = topology.Star(n)
		}
	default:
		return nil, fmt.Errorf("%w: unknown topology kind %q", ErrBadRequest, t.Kind)
	}
	return topo, nil
}

// degraded builds the closed-form fallback answer for c: the symmetric
// approximation of §IV-A/B evaluated at the fleet's mean parameters.
// It is instant (no LP), always available, and clearly labeled — the
// bottom rung of the degrade ladder when the breaker is open and
// nothing is cached.
func degraded(c *compiled) *Response {
	n := c.nw.N()
	mean := model.Node{}
	for _, nd := range c.nw.Nodes {
		mean.Budget += nd.Budget
		mean.ListenPower += nd.ListenPower
		mean.TransmitPower += nd.TransmitPower
	}
	fn := float64(n)
	mean.Budget /= fn
	mean.ListenPower /= fn
	mean.TransmitPower /= fn

	var sol *oracle.Solution
	if c.objective == ObjAnyput {
		sol, _ = oracle.AnyputClosedForm(n, mean)
	} else {
		sol, _ = oracle.GroupputClosedForm(n, mean)
	}
	// The closed form assumes the power constraint dominates; clamp the
	// point back into (10) and (11) so a degraded answer is never an
	// infeasible operating point, merely a suboptimal one.
	alpha, beta := sol.Alpha[0], sol.Beta[0]
	if s := alpha + beta; s > 1 {
		alpha /= s
		beta /= s
	}
	if fn*beta > 1 {
		beta = 1 / fn
	}
	out := &Response{Provenance: ProvDegraded}
	if c.objective == ObjAnyput {
		out.Throughput = fn * beta
	} else {
		out.Throughput = fn * alpha
	}
	out.Alpha = repeat(alpha, n)
	out.Beta = repeat(beta, n)
	return out
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// Binary value encoding for the persistent cache: little-endian, fully
// self-describing, no floats-as-text round trips (bitwise identity is
// the contract).
//
//	u32 len(alpha) | f64 throughput | f64 alpha... | f64 beta... |
//	u8 hasUpper | [same for upper]
func encodeResponse(r *Response) []byte {
	buf := make([]byte, 0, 16+16*len(r.Alpha))
	buf = appendResult(buf, &r.Result)
	if r.Upper != nil {
		buf = append(buf, 1)
		buf = appendResult(buf, r.Upper)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

func appendResult(buf []byte, r *Result) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Alpha)))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Throughput))
	for _, a := range r.Alpha {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a))
	}
	for _, b := range r.Beta {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(b))
	}
	return buf
}

var errCorruptValue = errors.New("serve: corrupt cached value")

// decodeResponse is the inverse of encodeResponse. The provenance of a
// decoded response is ProvCached by construction.
func decodeResponse(b []byte) (*Response, error) {
	res, rest, err := takeResult(b)
	if err != nil {
		return nil, err
	}
	out := &Response{Result: *res, Provenance: ProvCached}
	if len(rest) < 1 {
		return nil, errCorruptValue
	}
	hasUpper := rest[0]
	rest = rest[1:]
	if hasUpper == 1 {
		up, rest2, err := takeResult(rest)
		if err != nil {
			return nil, err
		}
		out.Upper = up
		rest = rest2
	}
	if len(rest) != 0 {
		return nil, errCorruptValue
	}
	return out, nil
}

func takeResult(b []byte) (*Result, []byte, error) {
	if len(b) < 12 {
		return nil, nil, errCorruptValue
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n < 0 || n > maxFleet {
		return nil, nil, errCorruptValue
	}
	need := 12 + 16*n
	if len(b) < need {
		return nil, nil, errCorruptValue
	}
	r := &Result{
		Throughput: math.Float64frombits(binary.LittleEndian.Uint64(b[4:])),
		Alpha:      make([]float64, n),
		Beta:       make([]float64, n),
	}
	off := 12
	for i := 0; i < n; i++ {
		r.Alpha[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	for i := 0; i < n; i++ {
		r.Beta[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	return r, b[need:], nil
}
