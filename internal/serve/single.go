package serve

import (
	"context"
	"sync"
)

// flightGroup is a singleflight: concurrent requests for the same
// canonical key coalesce onto one solve, and every follower receives a
// deep copy of the leader's answer. Under heavy traffic the request
// population is highly repetitive (every node of a fleet asks about the
// same fleet), so dedup converts an O(clients) solver load into
// O(distinct fleets).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall

	dups uint64 // coalesced followers, for /statz
}

// flightCall is one in-flight solve. done is receive-only by
// construction: only the leader holds the bidirectional channel (as a
// local) and closes it once resp/err are published.
type flightCall struct {
	done <-chan struct{}
	resp *Response
	err  error
}

// do runs fn once per key, coalescing concurrent callers. The second
// return reports whether this caller was a follower (shared the
// leader's answer). A follower whose own ctx expires while waiting
// returns the ctx error without disturbing the leader.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*Response, error)) (*Response, bool, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if call, ok := g.m[key]; ok {
		g.dups++
		g.mu.Unlock()
		return g.wait(ctx, call)
	}
	ch := make(chan struct{})
	call := &flightCall{done: ch}
	g.m[key] = call
	g.mu.Unlock()

	call.resp, call.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(ch)
	if call.resp == nil {
		return nil, false, call.err
	}
	return call.resp, false, call.err
}

// wait blocks a follower on the leader's completion or its own
// context, whichever ends first.
func (g *flightGroup) wait(ctx context.Context, call *flightCall) (*Response, bool, error) {
	select {
	case <-call.done:
		if call.resp == nil {
			return nil, true, call.err
		}
		return call.resp.clone(), true, call.err
	case <-ctx.Done():
		return nil, true, ctx.Err()
	}
}

// inFlight reports the number of keys currently being solved.
func (g *flightGroup) inFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}

// dupCount returns the number of coalesced followers so far.
func (g *flightGroup) dupCount() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.dups
}
