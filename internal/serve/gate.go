package serve

import (
	"context"
	"math"
	"sync/atomic"

	"econcast/internal/rng"
)

// shedDomain namespaces the shed-decision stream within the request
// seed, mirroring the faults layer's per-process derivation discipline.
const shedDomain uint64 = 0x5ded

// gate is the admission controller: a bounded concurrency semaphore, a
// bounded wait queue, and a deterministic probabilistic shedder.
//
// The shed decision for arrival number seq at shed level f is the pure
// function "DeriveSeed(seed, shedDomain, seq) as a uniform in [0,1) is
// below f" — no wall-clock, no shared RNG stream, no mutation. Replay a
// chaos run with the same seed and the same arrival order and every
// shed decision lands on the same request, byte-identically (the
// deterministic shedding argument of DESIGN.md §10). The queue-full
// rejection is the load-dependent backstop behind it.
//
// The semaphore is one channel viewed through two direction-typed
// fields: admit sends a token (acq), release receives it back (rel).
// admit is a hotalloc root — the shed path runs for every arrival even
// at 100% overload, so it must not allocate.
type gate struct {
	seed        uint64
	maxInflight int
	maxQueue    int64

	acq chan<- struct{}
	rel <-chan struct{}

	seq      atomic.Uint64 // arrival counter; the shed draw's key
	queued   atomic.Int64  // arrivals blocked on the semaphore
	shedBits atomic.Uint64 // float64 bits of the current shed fraction

	sheds   atomic.Uint64 // probabilistic sheds
	rejects atomic.Uint64 // queue-full rejections
}

// admitVerdict is the outcome of one admission attempt.
type admitVerdict uint8

const (
	admitOK   admitVerdict = iota // slot acquired; caller must release
	admitShed                     // deterministically shed; retry later
	admitBusy                     // queue full; retry later
	admitGone                     // caller's context died while queued
)

func newGate(seed uint64, maxInflight, maxQueue int) *gate {
	if maxInflight <= 0 {
		maxInflight = 16
	}
	if maxQueue <= 0 {
		maxQueue = 4 * maxInflight
	}
	sem := make(chan struct{}, maxInflight)
	return &gate{
		seed:        seed,
		maxInflight: maxInflight,
		maxQueue:    int64(maxQueue),
		acq:         sem,
		rel:         sem,
	}
}

// admit decides the fate of one arrival: shed, reject, or block (up to
// ctx) for a concurrency slot. On admitOK the caller owns a slot and
// must call release exactly once.
func (g *gate) admit(ctx context.Context) admitVerdict {
	seq := g.seq.Add(1)
	if frac := math.Float64frombits(g.shedBits.Load()); frac > 0 && shedDraw(g.seed, seq) < frac {
		g.sheds.Add(1)
		return admitShed
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		g.rejects.Add(1)
		return admitBusy
	}
	v := g.acquire(ctx)
	g.queued.Add(-1)
	return v
}

// acquire blocks until a semaphore slot frees or ctx dies. It is the
// gate's one licensed select: a two-way race between the slot send and
// cancellation, with no scheduling-order consequences beyond which
// waiter wins a freed slot.
func (g *gate) acquire(ctx context.Context) admitVerdict {
	select {
	case g.acq <- struct{}{}:
		return admitOK
	case <-ctx.Done():
		return admitGone
	}
}

// release returns an admitOK caller's slot.
func (g *gate) release() {
	<-g.rel
}

// shedDraw maps (seed, seq) to a uniform in [0, 1) through splitmix
// mixing; pure, so chaos replays are byte-identical.
func shedDraw(seed, seq uint64) float64 {
	return float64(rng.DeriveSeed(seed, shedDomain, seq)>>11) / (1 << 53)
}

// maxShedFraction caps the shed level: even in a full brownout a trickle
// of requests flows, so recovery is observable without an external
// probe. "Degraded but bounded", not "off".
const maxShedFraction = 0.95

// setShed sets the probabilistic shed fraction (clamped to
// [0, maxShedFraction]). The server derives it from load and the
// brownout schedule; 0 disables shedding.
func (g *gate) setShed(frac float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > maxShedFraction {
		frac = maxShedFraction
	}
	g.shedBits.Store(math.Float64bits(frac))
}

// shedLevel returns the current shed fraction.
func (g *gate) shedLevel() float64 {
	return math.Float64frombits(g.shedBits.Load())
}

// retryAfterSeconds advises a shed or rejected client how long to back
// off: proportional to queue pressure, at least one second, deliberately
// coarse (it is a hint, not a schedule).
func (g *gate) retryAfterSeconds() int {
	q := g.queued.Load()
	s := 1 + int(q)/g.maxInflight
	if s > 30 {
		s = 30
	}
	return s
}
