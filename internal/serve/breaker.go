package serve

import (
	"sync"
	"time"
)

// breaker is a circuit breaker around the LP solver. It exists so a
// sick solver (numerical pathology, injected stall, resource
// exhaustion) degrades the service instead of wedging it: while the
// breaker is open every request takes the degrade ladder (cache, then
// closed form) and answers immediately.
//
// States: closed (normal), open (solves forbidden until the cool-down
// elapses), half-open (exactly one probe solve in flight; its outcome
// closes or re-opens the circuit). Time is injected as a monotonic
// nanosecond clock so the chaos harness can drive the state machine
// deterministically.
type breaker struct {
	mu sync.Mutex

	now        func() int64 // monotonic nanos
	threshold  int          // consecutive failures that trip the breaker
	resetAfter int64        // nanos the circuit stays open before probing

	state    breakerState
	fails    int   // consecutive failures while closed
	openedAt int64 // when the circuit last opened
	probing  bool  // half-open: a probe is in flight

	trips uint64 // closed->open transitions, for /statz
}

type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

const (
	defaultBreakerThreshold = 3
	defaultBreakerReset     = 500 * time.Millisecond
)

func newBreaker(threshold int, resetAfter time.Duration, now func() int64) *breaker {
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	if resetAfter <= 0 {
		resetAfter = defaultBreakerReset
	}
	return &breaker{now: now, threshold: threshold, resetAfter: resetAfter.Nanoseconds()}
}

// allow reports whether a real solve may start now. In the open state
// it returns false until the cool-down elapses, then admits exactly one
// probe (transitioning to half-open); in half-open it admits nothing
// while the probe is outstanding.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now()-b.openedAt < b.resetAfter {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a completed solve: it closes the circuit from
// half-open and clears the failure run.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
}

// failure records a failed or timed-out solve. A failed half-open probe
// re-opens the circuit immediately; a run of threshold consecutive
// failures trips a closed circuit.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
			b.fails = 0
			b.trips++
		}
	}
	// Already open: nothing to record; the failure came from a probe
	// raced out by a concurrent trip, and the cool-down is running.
}

// snapshot returns the state name and trip count for /statz.
func (b *breaker) snapshot() (state string, trips uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		state = "open"
	case breakerHalfOpen:
		state = "half-open"
	default:
		state = "closed"
	}
	return state, b.trips
}
