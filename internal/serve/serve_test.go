package serve

import (
	"context"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func cliqueReq(obj string, n int) *Request {
	return &Request{Objective: obj, N: n, Rho: 1e-5, Listen: 5e-4, Transmit: 5e-4}
}

func TestCompileValidates(t *testing.T) {
	cases := []struct {
		name string
		req  Request
	}{
		{"unknown objective", Request{Objective: "maxput", N: 4, Rho: 1e-5, Listen: 5e-4, Transmit: 5e-4}},
		{"no fleet", Request{Objective: ObjGroupput}},
		{"clique with topology", Request{Objective: ObjGroupput, N: 4, Rho: 1e-5, Listen: 5e-4, Transmit: 5e-4, Topology: &TopoSpec{Kind: "ring"}}},
		{"bounds without topology", Request{Objective: ObjBounds, N: 4, Rho: 1e-5, Listen: 5e-4, Transmit: 5e-4}},
		{"grid size mismatch", Request{Objective: ObjBounds, N: 5, Rho: 1e-5, Listen: 5e-4, Transmit: 5e-4, Topology: &TopoSpec{Kind: "grid", Rows: 2, Cols: 2}}},
		{"unknown topology", Request{Objective: ObjBounds, N: 4, Rho: 1e-5, Listen: 5e-4, Transmit: 5e-4, Topology: &TopoSpec{Kind: "torus"}}},
		{"exact too large", Request{Objective: ObjExact, N: 32, Rho: 1e-5, Listen: 5e-4, Transmit: 5e-4, Topology: &TopoSpec{Kind: "ring"}}},
		{"oversized fleet", Request{Objective: ObjGroupput, N: maxFleet + 1, Rho: 1e-5, Listen: 5e-4, Transmit: 5e-4}},
		{"invalid params", Request{Objective: ObjGroupput, N: 4, Rho: -1, Listen: 5e-4, Transmit: 5e-4}},
	}
	for _, tc := range cases {
		if _, err := tc.req.compile(); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: want ErrBadRequest, got %v", tc.name, err)
		}
	}
}

func TestCompileKeySeparatesObjectives(t *testing.T) {
	g, err := cliqueReq(ObjGroupput, 6).compile()
	if err != nil {
		t.Fatal(err)
	}
	a, err := cliqueReq(ObjAnyput, 6).compile()
	if err != nil {
		t.Fatal(err)
	}
	if g.key == a.key {
		t.Fatal("groupput and anyput requests share a cache key")
	}
}

func TestShedDrawDeterministic(t *testing.T) {
	for seq := uint64(1); seq <= 100; seq++ {
		a, b := shedDraw(42, seq), shedDraw(42, seq)
		if a != b {
			t.Fatalf("shedDraw not deterministic at seq %d", seq)
		}
		if a < 0 || a >= 1 {
			t.Fatalf("shedDraw out of [0,1): %v", a)
		}
	}
	// Distinct seeds must give distinct streams (overwhelmingly).
	same := 0
	for seq := uint64(1); seq <= 100; seq++ {
		if shedDraw(1, seq) == shedDraw(2, seq) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collide on %d/100 draws", same)
	}
}

// TestGateShedReplay drives two gates with the same seed through the
// same arrival sequence and requires bit-identical verdicts — the
// deterministic load-shedding contract.
func TestGateShedReplay(t *testing.T) {
	run := func() []admitVerdict {
		g := newGate(7, 4, 8)
		g.setShed(0.5)
		out := make([]admitVerdict, 200)
		for i := range out {
			v := g.admit(context.Background())
			out[i] = v
			if v == admitOK {
				g.release()
			}
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, same arrivals, different shed decisions")
	}
	sheds := 0
	for _, v := range a {
		if v == admitShed {
			sheds++
		}
	}
	if sheds < 60 || sheds > 140 {
		t.Fatalf("at shed level 0.5, got %d/200 sheds", sheds)
	}
}

func TestGateQueueFullRejects(t *testing.T) {
	g := newGate(1, 1, 1)
	if v := g.admit(context.Background()); v != admitOK {
		t.Fatalf("first admit: %v", v)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.admit(ctx) // parks in the queue
	}()
	for g.queued.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if v := g.admit(context.Background()); v != admitBusy {
		t.Fatalf("queue-full admit: want admitBusy, got %v", v)
	}
	if g.rejects.Load() != 1 {
		t.Fatalf("rejects = %d, want 1", g.rejects.Load())
	}
	cancel()
	wg.Wait()
	g.release()
}

func TestGateAdmitGoneOnDeadCtx(t *testing.T) {
	g := newGate(1, 1, 4)
	if v := g.admit(context.Background()); v != admitOK {
		t.Fatalf("first admit: %v", v)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if v := g.admit(ctx); v != admitGone {
		t.Fatalf("dead-ctx admit while saturated: want admitGone, got %v", v)
	}
	g.release()
}

func TestBreakerStateMachine(t *testing.T) {
	var now int64
	b := newBreaker(3, time.Second, func() int64 { return now })
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatal("closed breaker must allow")
		}
		b.failure()
	}
	if st, _ := b.snapshot(); st != "closed" {
		t.Fatalf("after 2 failures: %s", st)
	}
	b.failure() // third consecutive: trip
	if st, trips := b.snapshot(); st != "open" || trips != 1 {
		t.Fatalf("after 3 failures: %s trips=%d", st, trips)
	}
	if b.allow() {
		t.Fatal("open breaker allowed before cool-down")
	}
	now += time.Second.Nanoseconds()
	if !b.allow() {
		t.Fatal("cooled-down breaker must admit a probe")
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second probe")
	}
	b.failure() // probe failed: re-open
	if st, _ := b.snapshot(); st != "open" {
		t.Fatalf("after failed probe: %s", st)
	}
	now += time.Second.Nanoseconds()
	if !b.allow() {
		t.Fatal("second probe refused")
	}
	b.success()
	if st, _ := b.snapshot(); st != "closed" {
		t.Fatalf("after successful probe: %s", st)
	}
	if !b.allow() {
		t.Fatal("re-closed breaker must allow")
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	var g flightGroup
	gateCh := make(chan struct{})
	leader := &Response{Result: Result{Throughput: 2.5, Alpha: []float64{1, 2}, Beta: []float64{3, 4}}, Provenance: ProvExact}

	const followers = 8
	var wg sync.WaitGroup
	results := make([]*Response, followers)
	started := make(chan struct{}, followers)
	go func() {
		_, _, _ = g.do(context.Background(), "k", func() (*Response, error) {
			close(started)
			<-gateCh
			return leader, nil
		})
	}()
	<-started
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, shared, err := g.do(context.Background(), "k", func() (*Response, error) {
				t.Error("follower ran the solve")
				return nil, nil
			})
			if err != nil || !shared {
				t.Errorf("follower %d: shared=%v err=%v", i, shared, err)
			}
			results[i] = r
		}(i)
	}
	for g.dupCount() < followers {
		time.Sleep(time.Millisecond)
	}
	close(gateCh)
	wg.Wait()

	for i, r := range results {
		if r.Throughput != leader.Throughput || !reflect.DeepEqual(r.Alpha, leader.Alpha) {
			t.Fatalf("follower %d: wrong answer %+v", i, r)
		}
		if &r.Alpha[0] == &leader.Alpha[0] {
			t.Fatalf("follower %d shares the leader's slice", i)
		}
	}
	if g.inFlight() != 0 {
		t.Fatalf("inFlight = %d after completion", g.inFlight())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := &Response{
		Result:     Result{Throughput: math.Pi, Alpha: []float64{0.1, 0.2, 0.3}, Beta: []float64{0.4, 0.5, 0.6}},
		Upper:      &Result{Throughput: math.E, Alpha: []float64{1, 1, 1}, Beta: []float64{0, 0, 0}},
		Provenance: ProvExact,
	}
	raw := encodeResponse(in)
	out, err := decodeResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if out.Provenance != ProvCached {
		t.Fatalf("decoded provenance %q", out.Provenance)
	}
	if out.Throughput != in.Throughput || !reflect.DeepEqual(out.Alpha, in.Alpha) ||
		!reflect.DeepEqual(out.Beta, in.Beta) || !reflect.DeepEqual(out.Upper, in.Upper) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	for cut := 0; cut < len(raw); cut++ {
		if _, err := decodeResponse(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
	if _, err := decodeResponse(append(raw, 0)); err == nil {
		t.Fatal("trailing garbage decoded cleanly")
	}
}

func newTestSolver(t *testing.T) *Solver {
	t.Helper()
	s, err := NewSolver(SolverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestSolverExactThenCached(t *testing.T) {
	s := newTestSolver(t)
	req := cliqueReq(ObjGroupput, 5)
	first, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Provenance != ProvExact {
		t.Fatalf("first solve provenance %q", first.Provenance)
	}
	second, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Provenance != ProvCached {
		t.Fatalf("second solve provenance %q", second.Provenance)
	}
	if second.Throughput != first.Throughput || !reflect.DeepEqual(second.Alpha, first.Alpha) {
		t.Fatal("cached answer differs from exact answer")
	}
}

func TestSolverDegradesOnFailureAndRecovers(t *testing.T) {
	s := newTestSolver(t)
	boom := errors.New("solver down")
	s.solveInner = func(ctx context.Context, c *compiled) (*Response, error) { return nil, boom }

	for i := 0; i < 3; i++ {
		resp, err := s.Solve(context.Background(), cliqueReq(ObjGroupput, 3+i))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Provenance != ProvDegraded {
			t.Fatalf("failing solve %d: provenance %q", i, resp.Provenance)
		}
		if resp.Throughput <= 0 {
			t.Fatalf("degraded answer has throughput %v", resp.Throughput)
		}
	}
	if st, trips := s.breaker.snapshot(); st != "open" || trips != 1 {
		t.Fatalf("breaker %s trips=%d after 3 failures", st, trips)
	}
	// Open breaker: the solver must not even be consulted.
	s.solveInner = func(ctx context.Context, c *compiled) (*Response, error) {
		t.Error("solve ran with the breaker open")
		return nil, boom
	}
	resp, err := s.Solve(context.Background(), cliqueReq(ObjGroupput, 9))
	if err != nil || resp.Provenance != ProvDegraded {
		t.Fatalf("breaker-open solve: %v %+v", err, resp)
	}

	// Heal the solver, expire the cool-down: the half-open probe closes
	// the circuit and answers turn exact again.
	s.solveInner = solveOracle
	s.breaker.mu.Lock()
	s.breaker.openedAt -= s.breaker.resetAfter
	s.breaker.mu.Unlock()
	resp, err = s.Solve(context.Background(), cliqueReq(ObjGroupput, 10))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Provenance != ProvExact {
		t.Fatalf("post-recovery provenance %q", resp.Provenance)
	}
	if st, _ := s.breaker.snapshot(); st != "closed" {
		t.Fatalf("breaker %s after successful probe", st)
	}
}

func TestSolverWatchdogAbortsStuckSolve(t *testing.T) {
	s := newTestSolver(t)
	s.cfg.MaxSolve = 20 * time.Millisecond
	s.solveInner = func(ctx context.Context, c *compiled) (*Response, error) {
		<-ctx.Done() // a well-behaved slow solve: aborts with its context
		return nil, ctx.Err()
	}
	start := time.Now()
	resp, err := s.Solve(context.Background(), cliqueReq(ObjGroupput, 4))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Provenance != ProvDegraded {
		t.Fatalf("watchdog-fired solve provenance %q", resp.Provenance)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("watchdog took %v", elapsed)
	}
}

func TestSolverCallerCancelPropagates(t *testing.T) {
	s := newTestSolver(t)
	s.solveInner = func(ctx context.Context, c *compiled) (*Response, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Solve(ctx, cliqueReq(ObjGroupput, 4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The caller's death must not poison the breaker.
	if st, _ := s.breaker.snapshot(); st != "closed" {
		t.Fatalf("breaker %s after caller cancel", st)
	}
}

func TestDegradedFallbackFeasible(t *testing.T) {
	for _, obj := range []string{ObjGroupput, ObjAnyput} {
		c, err := cliqueReq(obj, 8).compile()
		if err != nil {
			t.Fatal(err)
		}
		resp := degraded(c)
		if resp.Provenance != ProvDegraded {
			t.Fatalf("%s: provenance %q", obj, resp.Provenance)
		}
		var sumBeta float64
		for i := range resp.Alpha {
			a, b := resp.Alpha[i], resp.Beta[i]
			if a < 0 || b < 0 || a+b > 1+1e-12 {
				t.Fatalf("%s: infeasible point alpha=%v beta=%v", obj, a, b)
			}
			sumBeta += b
		}
		if sumBeta > 1+1e-9 {
			t.Fatalf("%s: sum beta = %v violates (11)", obj, sumBeta)
		}
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Solver == nil {
		cfg.Solver = newTestSolver(t)
	}
	srv := NewServer(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestServerEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, Config{Seed: 1})
	client := NewClient(ClientConfig{BaseURL: ts.URL, Seed: 2})

	resp, err := client.Solve(context.Background(), cliqueReq(ObjGroupput, 6))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Provenance != ProvExact || len(resp.Alpha) != 6 {
		t.Fatalf("first answer: %+v", resp)
	}
	resp2, err := client.Solve(context.Background(), cliqueReq(ObjGroupput, 6))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Provenance != ProvCached {
		t.Fatalf("repeat provenance %q", resp2.Provenance)
	}
	if resp2.Throughput != resp.Throughput {
		t.Fatal("cached throughput differs")
	}

	bounds, err := client.Solve(context.Background(), &Request{
		Objective: ObjBounds, N: 9, Rho: 1e-5, Listen: 5e-4, Transmit: 5e-4,
		Topology: &TopoSpec{Kind: "grid", Rows: 3, Cols: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bounds.Upper == nil || bounds.Upper.Throughput < bounds.Throughput-1e-9 {
		t.Fatalf("bounds answer missing or inverted: %+v", bounds)
	}

	st := srv.StatsSnapshot()
	if st.OK != 3 || st.Requests != 3 {
		t.Fatalf("stats after 3 requests: %+v", st)
	}
	if st.Solver.Exact != 2 || st.Solver.Cached != 1 {
		t.Fatalf("provenance counters: %+v", st.Solver)
	}
}

func TestServerBadRequestIs400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"objective":"nope","n":4,"rho":1e-5,"listen":5e-4,"transmit":5e-4}`
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytesReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestServerShedsWith429(t *testing.T) {
	srv, ts := newTestServer(t, Config{Seed: 11})
	srv.SetShed(maxShedFraction)
	var shed, ok int
	for i := 0; i < 60; i++ {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
			bytesReader(`{"objective":"groupput","n":4,"rho":1e-5,"listen":5e-4,"transmit":5e-4}`))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			shed++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		} else if resp.StatusCode == http.StatusOK {
			ok++
		} else {
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
		_ = resp.Body.Close()
	}
	if shed < 40 {
		t.Fatalf("at shed level %.2f only %d/60 sheds", maxShedFraction, shed)
	}
	if st := srv.StatsSnapshot(); st.Sheds == 0 || st.Overloaded == 0 {
		t.Fatalf("shed counters empty: %+v", st)
	}
	srv.SetShed(0)
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
		bytesReader(`{"objective":"groupput","n":4,"rho":1e-5,"listen":5e-4,"transmit":5e-4}`))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery status %d", resp.StatusCode)
	}
}

func TestClientRetriesAndHonorsRetryAfter(t *testing.T) {
	var hits int
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits < 3 {
			w.Header().Set("Retry-After", "0") // ignored (non-positive): jittered backoff
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		writeJSON(w, http.StatusOK, &Response{Result: Result{Throughput: 1}, Provenance: ProvExact})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := NewClient(ClientConfig{BaseURL: ts.URL, Attempts: 4, BaseBackoff: time.Millisecond, Seed: 3})
	resp, err := c.Solve(context.Background(), cliqueReq(ObjGroupput, 4))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Throughput != 1 || hits != 3 {
		t.Fatalf("resp=%+v hits=%d", resp, hits)
	}
	if c.Attempts() != 3 || c.Retried() != 2 {
		t.Fatalf("attempts=%d retried=%d", c.Attempts(), c.Retried())
	}
}

func TestClientExhaustsBudget(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := NewClient(ClientConfig{BaseURL: ts.URL, Attempts: 3, BaseBackoff: time.Millisecond, Seed: 4})
	if _, err := c.Solve(context.Background(), cliqueReq(ObjGroupput, 4)); !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
}

func TestClientBackoffDeterministic(t *testing.T) {
	a := NewClient(ClientConfig{BaseURL: "http://unused", Seed: 9})
	b := NewClient(ClientConfig{BaseURL: "http://unused", Seed: 9})
	for attempt := 1; attempt < 4; attempt++ {
		da, db := a.backoff(attempt, nil), b.backoff(attempt, nil)
		if da != db {
			t.Fatalf("attempt %d: %v != %v", attempt, da, db)
		}
		if da < a.cfg.BaseBackoff/2 {
			t.Fatalf("attempt %d: backoff %v below half base", attempt, da)
		}
	}
	ra := &retryAfterError{status: 429, after: 7 * time.Second}
	if d := a.backoff(1, ra); d != 7*time.Second {
		t.Fatalf("Retry-After not honored: %v", d)
	}
}

func bytesReader(s string) io.Reader { return strings.NewReader(s) }
