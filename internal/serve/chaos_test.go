package serve

// The chaos harness: internal/faults processes and injected solver
// pathologies composed against a synthetic heavy-traffic driver, run
// under -race in CI. Each scenario pins one leg of the robustness
// envelope:
//
//   - overload        -> deterministic shedding + queue-full 429s, the
//     fleet still converges through client retries, and the server never
//     answers anything outside {200, 429, 503};
//   - brownout        -> the shed level tracks the fault schedule's
//     harvest scale, and the shed pattern replays byte-identically for
//     the same seed;
//   - stuck solver    -> the watchdog bounds every request, the breaker
//     trips, answers degrade with labeled provenance, and the service
//     recovers to exact answers once the solver heals;
//   - kill/restart    -> a corrupted persistent cache recovers record by
//     record and the surviving answers are bit-identical.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"econcast/internal/faults"
)

// TestChaosOverloadConverges floods a tiny-capacity server with a fleet
// of retrying clients. The server must refuse what it cannot carry
// (429 with Retry-After), serve only {200, 429, 503}, and the retry
// discipline must carry every client to an answer.
func TestChaosOverloadConverges(t *testing.T) {
	solver := newTestSolver(t)
	inner := solver.solveInner
	solver.solveInner = func(ctx context.Context, c *compiled) (*Response, error) {
		// A mildly slow solver so the queue actually fills.
		timer := time.NewTimer(5 * time.Millisecond)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return inner(ctx, c)
	}
	srv, ts := newChaosServer(t, Config{
		Solver:      solver,
		MaxInflight: 2,
		MaxQueue:    2,
		Seed:        1001,
	})

	const workers, perWorker = 8, 6
	var wg sync.WaitGroup
	var answered, exhausted atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := NewClient(ClientConfig{
				BaseURL:     ts.URL,
				Attempts:    8,
				PerTry:      2 * time.Second,
				BaseBackoff: 2 * time.Millisecond,
				Seed:        uint64(2000 + w),
			})
			for i := 0; i < perWorker; i++ {
				// Distinct fleets per worker, repeated per iteration, so
				// the traffic mixes singleflight dups and cache hits.
				resp, err := client.Solve(context.Background(), cliqueReq(ObjGroupput, 3+w))
				switch {
				case err == nil:
					if resp.Provenance != ProvExact && resp.Provenance != ProvCached {
						t.Errorf("healthy-solver answer has provenance %q", resp.Provenance)
					}
					answered.Add(1)
				case errors.Is(err, ErrExhausted):
					exhausted.Add(1) // legitimate under overload; must not wedge
				default:
					t.Errorf("worker %d: unexpected error %v", w, err)
				}
			}
		}(w)
	}
	wg.Wait()

	if answered.Load() == 0 {
		t.Fatal("no client ever got an answer")
	}
	st := srv.StatsSnapshot()
	if st.Overloaded == 0 {
		t.Fatalf("overload run produced zero 429s: %+v", st)
	}
	if st.OK == 0 || st.BadRequests != 0 {
		t.Fatalf("status mix: %+v", st)
	}
	t.Logf("overload: answered=%d exhausted=%d 429s=%d queue_rejects=%d coalesced=%d",
		answered.Load(), exhausted.Load(), st.Overloaded, st.QueueRejects, st.Solver.Coalesced)
}

// TestChaosBrownoutShedsAndReplays compiles a brownout fault schedule,
// couples the server's admission to it, and verifies (a) the shed level
// tracks the schedule's harvest scale, (b) arrivals are refused at
// roughly the complementary rate, and (c) an identically-seeded replay
// produces the byte-identical refusal pattern.
func TestChaosBrownoutShedsAndReplays(t *testing.T) {
	set, err := faults.Compile(&faults.Config{
		Brownout: &faults.Brownout{MeanEvery: 1e-3, MeanFor: 1e6, Scale: 0.25},
	}, 1, 1e7, 77)
	if err != nil {
		t.Fatal(err)
	}
	view := set.View(0)
	if !view.HasBrownout() {
		t.Fatal("schedule compiled no brownout windows")
	}

	run := func() (pattern []int, shedLevel float64) {
		srv, ts := newChaosServer(t, Config{
			Solver: newTestSolver(t),
			Seed:   31337,
			Power:  view,
		})
		// Backdate the server's epoch one second so the schedule's first
		// brownout window (exponential spacing, mean 1ms) is active for
		// every arrival — the shed level is then constant across the run
		// and the refusal pattern depends only on (seed, seq).
		srv.start = srv.start.Add(-time.Second)
		for i := 0; i < 120; i++ {
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
				bytesReader(`{"objective":"groupput","n":4,"rho":1e-5,"listen":5e-4,"transmit":5e-4}`))
			if err != nil {
				t.Fatal(err)
			}
			_ = resp.Body.Close()
			pattern = append(pattern, resp.StatusCode)
		}
		return pattern, srv.StatsSnapshot().ShedLevel
	}

	pattern, level := run()
	// Scale 0.25 with an effectively-immediate, effectively-infinite
	// window: the server should be shedding ~75%.
	if level < 0.5 || level > maxShedFraction+1e-9 {
		t.Fatalf("shed level %v does not track harvest scale 0.25", level)
	}
	var refused int
	for _, code := range pattern {
		switch code {
		case http.StatusTooManyRequests:
			refused++
		case http.StatusOK:
		default:
			t.Fatalf("brownout run answered %d", code)
		}
	}
	if refused < 60 || refused == len(pattern) {
		t.Fatalf("brownout refused %d/120; want most-but-not-all (maxShedFraction keeps a trickle)", refused)
	}

	replay, _ := run()
	if !reflect.DeepEqual(pattern, replay) {
		t.Fatal("identically-seeded brownout replay diverged")
	}
}

// TestChaosStuckSolverBreakerRecovers wedges the solver completely (a
// stall even context cancellation cannot reach), and requires: every
// request still answered within the watchdog budget, provenance turns
// degraded, the breaker trips open and stops consulting the solver, and
// after the solver heals and the cool-down passes the service returns
// to exact answers.
func TestChaosStuckSolverBreakerRecovers(t *testing.T) {
	solver := newTestSolver(t)
	solver.cfg.MaxSolve = 30 * time.Millisecond
	solver.breaker.threshold = 2
	solver.breaker.resetAfter = (50 * time.Millisecond).Nanoseconds()

	healed := make(chan struct{})
	var stuckEntered atomic.Uint64
	defer close(healed) // unstrand any stuck goroutines at test end
	solver.solveInner = func(ctx context.Context, c *compiled) (*Response, error) {
		stuckEntered.Add(1)
		<-healed // ignores ctx: a genuinely wedged solver
		return solveOracle(ctx, c)
	}

	_, ts := newChaosServer(t, Config{Solver: solver, Seed: 5})
	client := NewClient(ClientConfig{BaseURL: ts.URL, Attempts: 1, Seed: 6})

	// Two distinct requests: both hit the watchdog, degrade, and trip
	// the threshold-2 breaker.
	for i := 0; i < 2; i++ {
		start := time.Now()
		resp, err := client.Solve(context.Background(), cliqueReq(ObjGroupput, 4+i))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Provenance != ProvDegraded {
			t.Fatalf("stuck solve %d: provenance %q", i, resp.Provenance)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("stuck solve %d took %v: watchdog failed", i, elapsed)
		}
	}
	if state, trips := solver.breaker.snapshot(); state != "open" || trips != 1 {
		t.Fatalf("breaker %s trips=%d after stall", state, trips)
	}

	// Open breaker: answers keep flowing, degraded, without touching the
	// wedged solver.
	before := stuckEntered.Load()
	resp, err := client.Solve(context.Background(), cliqueReq(ObjGroupput, 6))
	if err != nil || resp.Provenance != ProvDegraded {
		t.Fatalf("breaker-open answer: %v %+v", err, resp)
	}
	if stuckEntered.Load() != before {
		t.Fatal("open breaker still consulted the solver")
	}

	// Heal, let the cool-down elapse, and require recovery to exact.
	solver.solveInner = solveOracle
	time.Sleep(60 * time.Millisecond)
	resp, err = client.Solve(context.Background(), cliqueReq(ObjGroupput, 7))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Provenance != ProvExact {
		t.Fatalf("post-heal provenance %q", resp.Provenance)
	}
	if state, _ := solver.breaker.snapshot(); state != "closed" {
		t.Fatalf("breaker %s after recovery", state)
	}
}

// TestChaosKillRestartRecovers runs traffic into a persistent-cache
// server, kills it without ceremony, corrupts the cache tail the way a
// mid-write power cut would, restarts, and requires every answer after
// the restart to be bit-identical to its pre-kill counterpart.
func TestChaosKillRestartRecovers(t *testing.T) {
	dir := t.TempDir()
	reqs := []*Request{
		cliqueReq(ObjGroupput, 4),
		cliqueReq(ObjAnyput, 5),
		{Objective: ObjBounds, N: 6, Rho: 1e-5, Listen: 5e-4, Transmit: 5e-4,
			Topology: &TopoSpec{Kind: "ring"}},
	}

	// Epoch 1: populate.
	solver1, err := NewSolver(SolverConfig{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newChaosServer(t, Config{Solver: solver1, Seed: 9})
	client := NewClient(ClientConfig{BaseURL: ts1.URL, Attempts: 3, Seed: 10})
	golden := make([]*Response, len(reqs))
	for i, req := range reqs {
		golden[i], err = client.Solve(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if golden[i].Provenance != ProvExact {
			t.Fatalf("epoch-1 request %d provenance %q", i, golden[i].Provenance)
		}
	}
	// Kill: close the HTTP front end and the solver abruptly, then
	// simulate the mid-write power cut — a half-flushed record appended
	// to the log plus a flipped byte in the last complete record.
	ts1.Close()
	if err := solver1.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(cachePath(dir))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x40 // corrupt the final record's CRC
	partial := encodeRecord("half-written", []byte("lost to the power cut"))
	raw = append(raw, partial[:len(partial)/3]...)
	if err := os.WriteFile(cachePath(dir), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Epoch 2: restart on the damaged log. Recovery keeps the intact
	// records, drops the rest, and the service answers everything again
	// with the same bits — cached for survivors, re-solved for the
	// casualty.
	solver2, err := NewSolver(SolverConfig{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st := solver2.disk.stats()
	if st.Skipped == 0 || st.Loaded == 0 || st.Loaded >= len(reqs) {
		t.Fatalf("recovery stats after kill: %+v", st)
	}
	_, ts2 := newChaosServer(t, Config{Solver: solver2, Seed: 9})
	client2 := NewClient(ClientConfig{BaseURL: ts2.URL, Attempts: 3, Seed: 10})
	var cached, resolved int
	for i, req := range reqs {
		resp, err := client2.Solve(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		switch resp.Provenance {
		case ProvCached:
			cached++
		case ProvExact:
			resolved++
		default:
			t.Fatalf("epoch-2 request %d provenance %q", i, resp.Provenance)
		}
		if resp.Throughput != golden[i].Throughput ||
			!reflect.DeepEqual(resp.Alpha, golden[i].Alpha) ||
			!reflect.DeepEqual(resp.Beta, golden[i].Beta) {
			t.Fatalf("epoch-2 request %d differs from its pre-kill bits", i)
		}
		if (golden[i].Upper == nil) != (resp.Upper == nil) {
			t.Fatalf("epoch-2 request %d upper-bound presence changed", i)
		}
		if resp.Upper != nil && !reflect.DeepEqual(resp.Upper, golden[i].Upper) {
			t.Fatalf("epoch-2 request %d upper bound differs", i)
		}
	}
	if cached == 0 || resolved == 0 {
		t.Fatalf("epoch 2 should mix cache hits and re-solves: cached=%d resolved=%d", cached, resolved)
	}
}

// newChaosServer wires a Server into an httptest front end.
func newChaosServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}
