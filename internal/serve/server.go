package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"econcast/internal/faults"
	"econcast/internal/oracle"
)

// Config configures a Server.
type Config struct {
	// Solver executes admitted requests; required.
	Solver *Solver
	// MaxInflight bounds concurrent solves (default 16); MaxQueue
	// bounds arrivals waiting for a slot (default 4x inflight).
	MaxInflight int
	MaxQueue    int
	// DefaultTimeout is the per-request deadline applied when the
	// request does not carry a tighter one (default 10s).
	DefaultTimeout time.Duration
	// Seed drives the deterministic shed draws (and nothing else).
	Seed uint64
	// Power optionally couples admission to a fault schedule: during a
	// brownout window the server sheds harder, mimicking a control node
	// whose own harvested budget is collapsing. The zero NodeView means
	// full power forever.
	Power faults.NodeView
}

// Server is the HTTP face of the service:
//
//	POST /v1/solve  — answer one Request (JSON in, JSON out)
//	GET  /healthz   — liveness
//	GET  /statz     — counters: admission, provenance, breaker, caches
//
// Every arrival passes the admission gate before any work happens:
// deterministically shed and queue-full arrivals get 429 + Retry-After
// without touching the solver, so overload degrades to fast, replayable
// refusals instead of timeouts.
type Server struct {
	cfg   Config
	gate  *gate
	start time.Time

	requests atomic.Uint64
	oks      atomic.Uint64
	bads     atomic.Uint64
	retries  atomic.Uint64 // 429s issued
	fails    atomic.Uint64 // 5xx issued
}

// NewServer assembles a Server; it does not listen (callers wire it
// into an http.Server or a test mux).
func NewServer(cfg Config) *Server {
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	return &Server{
		cfg:   cfg,
		gate:  newGate(cfg.Seed, cfg.MaxInflight, cfg.MaxQueue),
		start: time.Now(),
	}
}

// Handler returns the routed http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statz", s.handleStatz)
	return mux
}

// SetShed overrides the shed fraction directly (operators and tests);
// the brownout coupling still takes the max of this floor and the
// schedule's demand at each arrival.
func (s *Server) SetShed(frac float64) {
	s.gate.setShed(frac)
}

// refreshShed recomputes the shed level from the brownout schedule.
// During an outage window the harvest scale drops below 1 and the
// server sheds the complementary fraction: at scale 0.25 it refuses
// ~75% of arrivals, keeping the surviving load proportional to the
// energy actually available.
func (s *Server) refreshShed() {
	if !s.cfg.Power.HasBrownout() {
		return
	}
	elapsed := time.Since(s.start).Seconds()
	scale := s.cfg.Power.HarvestScale(elapsed)
	want := 1 - scale
	if want < 0 {
		want = 0
	}
	if s.gate.shedLevel() < want {
		s.gate.setShed(want)
	} else if scale >= 1 && s.gate.shedLevel() > 0 {
		s.gate.setShed(0) // window over: recover
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.refreshShed()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.DefaultTimeout)
	defer cancel()

	switch s.gate.admit(ctx) {
	case admitOK:
		defer s.gate.release()
	case admitShed, admitBusy:
		s.retries.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.gate.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "overloaded"})
		return
	default: // admitGone
		s.fails.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "deadline exceeded in queue"})
		return
	}

	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.bads.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "malformed request: " + err.Error()})
		return
	}
	resp, err := s.cfg.Solver.Solve(ctx, &req)
	switch {
	case err == nil:
		s.oks.Add(1)
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, ErrBadRequest):
		s.bads.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		// Only caller-context death reaches here: the degrade ladder
		// absorbs every infrastructure failure.
		s.fails.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Stats is the /statz document.
type Stats struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Requests      uint64            `json:"requests"`
	OK            uint64            `json:"ok"`
	BadRequests   uint64            `json:"bad_requests"`
	Overloaded    uint64            `json:"overloaded"`
	Failures      uint64            `json:"failures"`
	ShedLevel     float64           `json:"shed_level"`
	Sheds         uint64            `json:"sheds"`
	QueueRejects  uint64            `json:"queue_rejects"`
	Solver        SolverStats       `json:"solver"`
	MemoCache     oracle.CacheStats `json:"memo_cache"`
}

// StatsSnapshot collects the full counter document.
func (s *Server) StatsSnapshot() Stats {
	return Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		OK:            s.oks.Load(),
		BadRequests:   s.bads.Load(),
		Overloaded:    s.retries.Load(),
		Failures:      s.fails.Load(),
		ShedLevel:     s.gate.shedLevel(),
		Sheds:         s.gate.sheds.Load(),
		QueueRejects:  s.gate.rejects.Load(),
		Solver:        s.cfg.Solver.Stats(),
		MemoCache:     oracle.CacheStatsSnapshot(),
	}
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	// An encode failure here means the client hung up; nothing to do.
	_ = enc.Encode(v)
}
