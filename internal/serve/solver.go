package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"econcast/internal/oracle"
)

// SolverConfig configures a Solver.
type SolverConfig struct {
	// CacheDir holds the persistent solution cache; "" keeps the cache
	// memory-only.
	CacheDir string
	// MaxSolve is the hard per-solve wall budget enforced by the
	// watchdog (default 5s). Request deadlines can only tighten it.
	MaxSolve time.Duration
	// BreakerThreshold consecutive solve failures trip the breaker
	// (default 3); BreakerReset is the open-state cool-down (default
	// 500ms).
	BreakerThreshold int
	BreakerReset     time.Duration
}

// Solver executes compiled requests through the robustness envelope:
//
//	singleflight -> persistent cache -> breaker -> watchdog solve
//	                                        \-> degrade ladder
//
// The degrade ladder, taken whenever the real solve is forbidden
// (breaker open) or fails (error, timeout, cancellation of the solve
// budget rather than the caller): cached answer if one exists, else the
// symmetric closed form — both provenance-labeled, neither an error.
// A Solver therefore returns a non-nil Response for every valid request
// whose caller sticks around; the only errors out of Solve are bad
// requests and caller-context death.
type Solver struct {
	cfg     SolverConfig
	disk    *diskCache
	breaker *breaker
	flights flightGroup

	// solveInner is the LP dispatch; tests swap it to inject stalls and
	// failures without touching the oracle.
	solveInner func(ctx context.Context, c *compiled) (*Response, error)

	exact    atomic.Uint64
	cached   atomic.Uint64
	degraded atomic.Uint64
}

const defaultMaxSolve = 5 * time.Second

// NewSolver opens the persistent cache (recovering from corruption if
// needed) and assembles the envelope.
func NewSolver(cfg SolverConfig) (*Solver, error) {
	disk, err := openDiskCache(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	if cfg.MaxSolve <= 0 {
		cfg.MaxSolve = defaultMaxSolve
	}
	s := &Solver{
		cfg:        cfg,
		disk:       disk,
		breaker:    newBreaker(cfg.BreakerThreshold, cfg.BreakerReset, monotonicNanos),
		solveInner: solveOracle,
	}
	return s, nil
}

// monotonicNanos is the breaker clock: nanoseconds on Go's monotonic
// time base.
func monotonicNanos() int64 {
	return int64(time.Since(processStart))
}

var processStart = time.Now()

// Close flushes and closes the persistent cache.
func (s *Solver) Close() error {
	return s.disk.Close()
}

// Solve answers req. ctx carries the caller's deadline; the solve
// itself additionally runs under the MaxSolve watchdog. Invalid
// requests fail with ErrBadRequest; infrastructure trouble degrades the
// provenance instead of surfacing as an error.
func (s *Solver) Solve(ctx context.Context, req *Request) (*Response, error) {
	c, err := req.compile()
	if err != nil {
		return nil, err
	}
	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
	}
	resp, _, err := s.flights.do(ctx, c.key, func() (*Response, error) {
		return s.solveCompiled(ctx, c)
	})
	if err != nil {
		return nil, err
	}
	switch resp.Provenance {
	case ProvExact:
		s.exact.Add(1)
	case ProvCached:
		s.cached.Add(1)
	default:
		s.degraded.Add(1)
	}
	return resp, nil
}

// solveCompiled is the leader's path: cache, then breaker-guarded
// solve, then the degrade ladder.
func (s *Solver) solveCompiled(ctx context.Context, c *compiled) (*Response, error) {
	if raw := s.disk.Get(c.key); raw != nil {
		if resp, err := decodeResponse(raw); err == nil {
			return resp, nil
		}
		// A corrupt in-memory value can only mean the recovery layer was
		// bypassed (or a test poked the map); fall through and re-solve.
	}
	if !s.breaker.allow() {
		return degraded(c), nil
	}
	resp, err := s.solveGuarded(ctx, c)
	if err != nil {
		// The caller's own death is not the solver's failure: propagate
		// it untouched and leave the breaker alone.
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			s.breaker.success()
			return nil, err
		}
		s.breaker.failure()
		return degraded(c), nil
	}
	s.breaker.success()
	// A failed append is persistence loss, not answer loss; the
	// in-memory copy is already installed and the response stands.
	_ = s.disk.Put(c.key, encodeResponse(resp))
	return resp, nil
}

// solveGuarded runs the LP under the MaxSolve watchdog. The solve
// itself honors ctx through the lp layer, so a fired watchdog actually
// aborts the pivoting; a pathologically stuck injected solve (chaos
// harness) merely strands its goroutine until it returns — the request
// is answered on time either way, and the breaker stops further
// traffic into the stall.
func (s *Solver) solveGuarded(ctx context.Context, c *compiled) (*Response, error) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.MaxSolve)
	defer cancel()
	done := make(chan outcome, 1)
	go s.runSolve(ctx, c, done)
	select { // watchdog race: solve completion vs deadline/cancel
	case out := <-done:
		return out.resp, out.err
	case <-ctx.Done():
		return nil, fmt.Errorf("serve: solve watchdog: %w", ctx.Err())
	}
}

// runSolve executes the dispatch and reports into the watchdog channel.
// The goroutine owns only its compiled input and the buffered outcome
// channel; results cross by value through done.
func (s *Solver) runSolve(ctx context.Context, c *compiled, done chan<- outcome) {
	resp, err := s.solveInner(ctx, c)
	done <- outcome{resp: resp, err: err}
}

// outcome is the watchdog channel payload.
type outcome struct {
	resp *Response
	err  error
}

// solveOracle dispatches a compiled request to the oracle layer.
func solveOracle(ctx context.Context, c *compiled) (*Response, error) {
	switch c.objective {
	case ObjGroupput:
		sol, err := oracle.GroupputCtx(ctx, c.nw)
		if err != nil {
			return nil, err
		}
		return exactResponse(sol, nil), nil
	case ObjAnyput:
		sol, err := oracle.AnyputCtx(ctx, c.nw)
		if err != nil {
			return nil, err
		}
		return exactResponse(sol, nil), nil
	case ObjBounds:
		lower, upper, err := oracle.GroupputNonCliqueBoundsCtx(ctx, c.nw, c.topo)
		if err != nil {
			return nil, err
		}
		return exactResponse(lower, upper), nil
	case ObjExact:
		sol, err := oracle.GroupputNonCliqueExactCtx(ctx, c.nw, c.topo)
		if err != nil {
			return nil, err
		}
		return exactResponse(sol, nil), nil
	}
	return nil, fmt.Errorf("%w: unknown objective %q", ErrBadRequest, c.objective)
}

func exactResponse(sol, upper *oracle.Solution) *Response {
	out := &Response{
		Result:     resultFromSolution(sol),
		Provenance: ProvExact,
	}
	if upper != nil {
		u := resultFromSolution(upper)
		out.Upper = &u
	}
	return out
}

func resultFromSolution(sol *oracle.Solution) Result {
	return Result{
		Throughput: sol.Throughput,
		Alpha:      append([]float64(nil), sol.Alpha...),
		Beta:       append([]float64(nil), sol.Beta...),
	}
}

// SolverStats is the /statz projection of the solver.
type SolverStats struct {
	Exact        uint64         `json:"exact"`
	Cached       uint64         `json:"cached"`
	Degraded     uint64         `json:"degraded"`
	InFlight     int            `json:"in_flight"`
	Coalesced    uint64         `json:"coalesced"`
	BreakerState string         `json:"breaker_state"`
	BreakerTrips uint64         `json:"breaker_trips"`
	DiskCache    diskCacheStats `json:"disk_cache"`
}

func (s *Solver) Stats() SolverStats {
	state, trips := s.breaker.snapshot()
	return SolverStats{
		Exact:        s.exact.Load(),
		Cached:       s.cached.Load(),
		Degraded:     s.degraded.Load(),
		InFlight:     s.flights.inFlight(),
		Coalesced:    s.flights.dupCount(),
		BreakerState: state,
		BreakerTrips: trips,
		DiskCache:    s.disk.stats(),
	}
}
