package serve

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func openTestCache(t *testing.T, dir string) *diskCache {
	t.Helper()
	c, err := openDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func cachePath(dir string) string { return filepath.Join(dir, cacheFileName) }

func TestDiskCachePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	c := openTestCache(t, dir)
	if err := c.Put("alpha", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("beta", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := openTestCache(t, dir)
	if got := c2.Get("alpha"); string(got) != "one" {
		t.Fatalf("alpha = %q", got)
	}
	if got := c2.Get("beta"); string(got) != "two" {
		t.Fatalf("beta = %q", got)
	}
	st := c2.stats()
	if st.Loaded != 2 || st.Skipped != 0 {
		t.Fatalf("reopen stats: %+v", st)
	}
}

func TestDiskCacheMemoryOnly(t *testing.T) {
	c := openTestCache(t, "")
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got := c.Get("k"); string(got) != "v" {
		t.Fatalf("memory-only get = %q", got)
	}
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestDiskCacheTruncatedTail chops the log mid-record — the classic
// power-loss-during-append shape — and requires the cache to come back
// with every complete record intact and the stub dropped.
func TestDiskCacheTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	c := openTestCache(t, dir)
	for _, kv := range [][2]string{{"a", "AAAA"}, {"b", "BBBB"}, {"c", "CCCC"}} {
		if err := c.Put(kv[0], []byte(kv[1])); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(cachePath(dir))
	if err != nil {
		t.Fatal(err)
	}
	recLen := len(encodeRecord("a", []byte("AAAA")))
	if err := os.WriteFile(cachePath(dir), raw[:2*recLen+recLen/2], 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := openTestCache(t, dir)
	if got := c2.Get("a"); string(got) != "AAAA" {
		t.Fatalf("a after truncation = %q", got)
	}
	if got := c2.Get("b"); string(got) != "BBBB" {
		t.Fatalf("b after truncation = %q", got)
	}
	if got := c2.Get("c"); got != nil {
		t.Fatalf("truncated record resurrected: %q", got)
	}
	st := c2.stats()
	if st.Loaded != 2 || st.Skipped == 0 {
		t.Fatalf("post-truncation stats: %+v", st)
	}
	// Recovery must have rewritten the log clean: a third open sees no
	// corruption at all.
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	c3 := openTestCache(t, dir)
	if st := c3.stats(); st.Loaded != 2 || st.Skipped != 0 {
		t.Fatalf("post-rewrite stats: %+v", st)
	}
}

// TestDiskCacheFlippedChecksumByte flips one byte inside a middle
// record and requires exactly that record to vanish while its neighbors
// survive — corruption is contained, not contagious.
func TestDiskCacheFlippedChecksumByte(t *testing.T) {
	dir := t.TempDir()
	c := openTestCache(t, dir)
	for _, kv := range [][2]string{{"a", "AAAA"}, {"b", "BBBB"}, {"c", "CCCC"}} {
		if err := c.Put(kv[0], []byte(kv[1])); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(cachePath(dir))
	if err != nil {
		t.Fatal(err)
	}
	recLen := len(encodeRecord("a", []byte("AAAA")))
	raw[recLen+recLen-3] ^= 0xff // a CRC byte of record "b"
	if err := os.WriteFile(cachePath(dir), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := openTestCache(t, dir)
	if got := c2.Get("a"); string(got) != "AAAA" {
		t.Fatalf("a after flip = %q", got)
	}
	if got := c2.Get("b"); got != nil {
		t.Fatalf("corrupt record served: %q", got)
	}
	if got := c2.Get("c"); string(got) != "CCCC" {
		t.Fatalf("c after flip = %q", got)
	}
	if st := c2.stats(); st.Loaded != 2 || st.Skipped == 0 {
		t.Fatalf("post-flip stats: %+v", st)
	}
}

// TestDiskCacheMidWriteKill simulates dying inside Put: a complete log
// plus the first half of a new record (header and part of the key, no
// CRC). Reopen must keep everything durable and drop the stub.
func TestDiskCacheMidWriteKill(t *testing.T) {
	dir := t.TempDir()
	c := openTestCache(t, dir)
	if err := c.Put("solid", []byte("SOLID")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	partial := encodeRecord("doomed", []byte("DOOMED"))
	f, err := os.OpenFile(cachePath(dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(partial[:len(partial)/2]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := openTestCache(t, dir)
	if got := c2.Get("solid"); string(got) != "SOLID" {
		t.Fatalf("solid after mid-write kill = %q", got)
	}
	if got := c2.Get("doomed"); got != nil {
		t.Fatalf("half-written record served: %q", got)
	}
	if st := c2.stats(); st.Loaded != 1 || st.Skipped == 0 {
		t.Fatalf("post-kill stats: %+v", st)
	}
}

func TestDiskCacheGarbagePrefix(t *testing.T) {
	dir := t.TempDir()
	c := openTestCache(t, dir)
	if err := c.Put("k", []byte("V")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(cachePath(dir))
	if err != nil {
		t.Fatal(err)
	}
	garbled := append([]byte("not a record at all "), raw...)
	if err := os.WriteFile(cachePath(dir), garbled, 0o644); err != nil {
		t.Fatal(err)
	}
	c2 := openTestCache(t, dir)
	if got := c2.Get("k"); string(got) != "V" {
		t.Fatalf("k behind garbage prefix = %q", got)
	}
}

// TestSolverRecoveryGoldenEqual is the end-to-end crash-recovery
// contract: solve, corrupt the persistent cache, restart — the re-solved
// answer must be bit-for-bit the original, and the rebuilt cache must
// serve it as a hit on the next restart.
func TestSolverRecoveryGoldenEqual(t *testing.T) {
	dir := t.TempDir()
	req := cliqueReq(ObjGroupput, 7)

	s1, err := NewSolver(SolverConfig{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := s1.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if golden.Provenance != ProvExact {
		t.Fatalf("first solve provenance %q", golden.Provenance)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the one record on disk: flip a payload byte.
	raw, err := os.ReadFile(cachePath(dir))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(cachePath(dir), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Restart 1: the corrupt record is dropped, the solver re-solves,
	// and the answer matches the golden bits exactly.
	s2, err := NewSolver(SolverConfig{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.disk.stats(); st.Skipped == 0 || st.Loaded != 0 {
		t.Fatalf("recovery stats: %+v", st)
	}
	resolved, err := s2.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Provenance != ProvExact {
		t.Fatalf("post-corruption provenance %q", resolved.Provenance)
	}
	if resolved.Throughput != golden.Throughput ||
		!reflect.DeepEqual(resolved.Alpha, golden.Alpha) ||
		!reflect.DeepEqual(resolved.Beta, golden.Beta) {
		t.Fatal("re-solved answer differs from golden bits")
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart 2: the rebuilt record serves as a cache hit, still the
	// same bits.
	s3, err := NewSolver(SolverConfig{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s3.Close() }()
	cached, err := s3.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Provenance != ProvCached {
		t.Fatalf("post-recovery provenance %q", cached.Provenance)
	}
	if cached.Throughput != golden.Throughput || !reflect.DeepEqual(cached.Alpha, golden.Alpha) {
		t.Fatal("recovered cache hit differs from golden bits")
	}
}
