package faults

import (
	"encoding/json"
	"math"
	"testing"
)

func killHalfCfg() *Config {
	return &Config{
		Crash:    &Crash{Kill: []int{0, 1, 2, 3}, KillAt: 40},
		Loss:     &Loss{P: 0.1, MeanGood: 30, MeanBad: 5, PBad: 0.9},
		Drift:    &Drift{Max: 0.01},
		Brownout: &Brownout{MeanEvery: 50, MeanFor: 10},
		Silence:  &Silence{MeanEvery: 80, MeanFor: 8},
	}
}

func mustCompile(t *testing.T, cfg *Config, n int, horizon float64, seed uint64) *Set {
	t.Helper()
	s, err := Compile(cfg, n, horizon, seed)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return s
}

// TestFaultTraceDeterminism pins the core reproducibility contract:
// compiling the same (Config, n, horizon, seed) twice yields
// byte-identical fault traces, and a different seed yields a different
// one.
func TestFaultTraceDeterminism(t *testing.T) {
	a := mustCompile(t, killHalfCfg(), 8, 120, 42)
	b := mustCompile(t, killHalfCfg(), 8, 120, 42)
	ja, err := json.Marshal(a.Trace())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	jb, _ := json.Marshal(b.Trace())
	if string(ja) != string(jb) {
		t.Fatalf("same seed produced different traces:\n%s\n%s", ja, jb)
	}
	c := mustCompile(t, killHalfCfg(), 8, 120, 43)
	jc, _ := json.Marshal(c.Trace())
	if string(ja) == string(jc) {
		t.Fatal("different seeds produced identical traces")
	}
	if len(a.Trace()) == 0 {
		t.Fatal("kill-half config produced an empty trace")
	}
}

// TestFaultKillWindows checks the deterministic kill list: listed nodes
// are alive before KillAt, dead from KillAt to the horizon, and the
// others are untouched.
func TestFaultKillWindows(t *testing.T) {
	cfg := &Config{Crash: &Crash{Kill: []int{1, 3}, KillAt: 25}}
	s := mustCompile(t, cfg, 5, 100, 7)
	for _, i := range []int{1, 3} {
		if !s.Alive(i, 24.999) {
			t.Errorf("node %d dead before KillAt", i)
		}
		if s.Alive(i, 25) || s.Alive(i, 99.9) {
			t.Errorf("node %d alive after KillAt", i)
		}
		if got := s.FirstCrash(i); got != 25 {
			t.Errorf("FirstCrash(%d) = %v, want 25", i, got)
		}
	}
	for _, i := range []int{0, 2, 4} {
		if !s.Alive(i, 50) {
			t.Errorf("unkilled node %d reported dead", i)
		}
		if !math.IsInf(s.FirstCrash(i), 1) {
			t.Errorf("FirstCrash(%d) finite for unkilled node", i)
		}
	}
	if s.HasRestart() {
		t.Error("pure kill schedule reported a restart")
	}
}

// TestFaultChurnRestarts checks that stochastic churn produces
// alternating windows and HasRestart detects them, while MeanDown == 0
// makes the first crash permanent.
func TestFaultChurnRestarts(t *testing.T) {
	s := mustCompile(t, &Config{Crash: &Crash{MeanUp: 10, MeanDown: 5}}, 4, 500, 11)
	if !s.HasRestart() {
		t.Fatal("churn with MeanDown > 0 produced no restart over a long horizon")
	}
	perm := mustCompile(t, &Config{Crash: &Crash{MeanUp: 10}}, 4, 500, 11)
	if perm.HasRestart() {
		t.Fatal("MeanDown == 0 schedule reported a restart")
	}
	for i := 0; i < 4; i++ {
		at := perm.FirstCrash(i)
		if math.IsInf(at, 1) {
			continue
		}
		if perm.Alive(i, at+1) || perm.Alive(i, 499.9) {
			t.Errorf("node %d came back from a permanent crash", i)
		}
	}
}

// TestFaultCoalesce checks that an overlap between a kill window and a
// churn outage merges into one well-formed window.
func TestFaultCoalesce(t *testing.T) {
	w := coalesce([]float64{10, 20, 15, 30, 40, 50})
	want := []float64{10, 30, 40, 50}
	if len(w) != len(want) {
		t.Fatalf("coalesce = %v, want %v", w, want)
	}
	for i := range w {
		if w[i] != want[i] {
			t.Fatalf("coalesce = %v, want %v", w, want)
		}
	}
	// Alternating invariant survives: inside/outside queries agree.
	if !inWindows(w, 25) || inWindows(w, 35) || !inWindows(w, 45) {
		t.Fatal("merged windows answer queries incorrectly")
	}
}

// TestFaultWindowBoundaries pins the half-open [start, end) semantics
// of every window query.
func TestFaultWindowBoundaries(t *testing.T) {
	b := []float64{10, 20, 30, 40}
	cases := []struct {
		t    float64
		want bool
	}{
		{9.999, false}, {10, true}, {19.999, true}, {20, false},
		{25, false}, {30, true}, {40, false}, {100, false}, {0, false},
	}
	for _, c := range cases {
		if got := inWindows(b, c.t); got != c.want {
			t.Errorf("inWindows(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if inWindows(nil, 5) {
		t.Error("empty window list reported inside")
	}
}

// TestFaultNilSet checks every query on a nil *Set returns the benign
// fault-free default, and that an empty config compiles to nil.
func TestFaultNilSet(t *testing.T) {
	var s *Set
	if got, err := Compile(nil, 8, 100, 1); got != nil || err != nil {
		t.Fatalf("Compile(nil) = %v, %v", got, err)
	}
	if got, err := Compile(&Config{}, 8, 100, 1); got != nil || err != nil {
		t.Fatalf("Compile(empty) = %v, %v", got, err)
	}
	if !s.Alive(3, 10) || s.Silenced(3, 10) || s.DropRx(3, 10) {
		t.Error("nil Set injected a fault")
	}
	if s.HarvestScale(3, 10) != 1 || s.Drift(3) != 1 {
		t.Error("nil Set scaled harvest or clock")
	}
	if s.Trace() != nil || s.HasRestart() || s.N() != 0 {
		t.Error("nil Set reported schedule content")
	}
	if !math.IsInf(s.FirstCrash(0), 1) {
		t.Error("nil Set reported a crash")
	}
	v := s.View(5)
	if v.DriftFactor != 1 || !math.IsInf(v.CrashAt, 1) || v.HarvestScale(10) != 1 {
		t.Errorf("nil Set View = %+v, want zero-fault view", v)
	}
	s.Boundaries(0, func(float64) { t.Error("nil Set emitted a boundary") })
}

// TestFaultDriftRange checks drift factors stay inside [1-Max, 1+Max]
// and are non-degenerate across nodes.
func TestFaultDriftRange(t *testing.T) {
	s := mustCompile(t, &Config{Drift: &Drift{Max: 0.02}}, 16, 100, 3)
	distinct := false
	for i := 0; i < 16; i++ {
		d := s.Drift(i)
		if d < 0.98 || d > 1.02 {
			t.Errorf("drift[%d] = %v outside [0.98, 1.02]", i, d)
		}
		if d != s.Drift(0) {
			distinct = true
		}
	}
	if !distinct {
		t.Error("all 16 drift factors identical")
	}
}

// TestFaultLossStreams checks i.i.d. loss frequency and that DropRx
// draw sequences are reproducible across compiles.
func TestFaultLossStreams(t *testing.T) {
	a := mustCompile(t, &Config{Loss: &Loss{P: 0.3}}, 2, 100, 9)
	b := mustCompile(t, &Config{Loss: &Loss{P: 0.3}}, 2, 100, 9)
	drops := 0
	const draws = 10000
	for k := 0; k < draws; k++ {
		da := a.DropRx(1, float64(k))
		if db := b.DropRx(1, float64(k)); da != db {
			t.Fatalf("draw %d diverged between identical compiles", k)
		}
		if da {
			drops++
		}
	}
	got := float64(drops) / draws
	if got < 0.27 || got > 0.33 {
		t.Errorf("iid loss rate %v, want ~0.3", got)
	}
}

// TestFaultBurstLoss checks the Gilbert–Elliott overlay: inside a bad
// window losses occur at PBad, outside at P.
func TestFaultBurstLoss(t *testing.T) {
	s := mustCompile(t, &Config{Loss: &Loss{P: 0, MeanGood: 50, MeanBad: 10, PBad: 1}}, 1, 1000, 21)
	if len(s.badLoss[0]) == 0 {
		t.Fatal("no bad-state windows over a 1000s horizon")
	}
	bad := s.badLoss[0][0]
	if !s.DropRx(0, bad) {
		t.Error("PBad=1 draw inside a bad window did not drop")
	}
	if len(s.badLoss[0]) >= 2 {
		goodT := s.badLoss[0][1] + 1e-9
		if inWindows(s.badLoss[0], goodT) {
			t.Skip("next bad window adjacent; cannot probe good state")
		}
		if s.DropRx(0, goodT) {
			t.Error("P=0 draw in the good state dropped")
		}
	}
}

// TestFaultBrownoutScale checks harvest scaling inside and outside
// brownout windows, on both the Set and its NodeView projection.
func TestFaultBrownoutScale(t *testing.T) {
	s := mustCompile(t, &Config{Brownout: &Brownout{MeanEvery: 20, MeanFor: 10, Scale: 0.25}}, 1, 500, 5)
	if len(s.brown[0]) == 0 {
		t.Fatal("no brownout windows over a 500s horizon")
	}
	inT := s.brown[0][0]
	v := s.View(0)
	if got := s.HarvestScale(0, inT); got != 0.25 {
		t.Errorf("HarvestScale in window = %v, want 0.25", got)
	}
	if got := v.HarvestScale(inT); got != 0.25 {
		t.Errorf("NodeView.HarvestScale in window = %v, want 0.25", got)
	}
	outT := s.brown[0][0] / 2
	if got := s.HarvestScale(0, outT); got != 1 {
		t.Errorf("HarvestScale outside window = %v, want 1", got)
	}
}

// TestFaultBoundaries checks Boundaries emits exactly the window edges
// the engines must realize as events, in per-process order, excluding
// the horizon.
func TestFaultBoundaries(t *testing.T) {
	cfg := &Config{Crash: &Crash{Kill: []int{0}, KillAt: 30}}
	s := mustCompile(t, cfg, 2, 100, 1)
	var got []float64
	s.Boundaries(0, func(at float64) { got = append(got, at) })
	if len(got) != 1 || got[0] != 30 {
		t.Fatalf("Boundaries(0) = %v, want [30] (horizon edge excluded)", got)
	}
	got = got[:0]
	s.Boundaries(1, func(at float64) { got = append(got, at) })
	if len(got) != 0 {
		t.Fatalf("Boundaries(1) = %v, want none", got)
	}
}

// TestFaultValidation checks Compile rejects malformed process
// parameters instead of silently producing garbage schedules.
func TestFaultValidation(t *testing.T) {
	bad := []*Config{
		{Crash: &Crash{Kill: []int{5}, KillAt: 1}},                 // index out of range
		{Crash: &Crash{Kill: []int{0}, KillAt: -1}},                // negative kill time
		{Crash: &Crash{MeanDown: 3}},                               // down without up
		{Loss: &Loss{P: 1.5}},                                      // probability out of range
		{Loss: &Loss{P: 0.1, MeanGood: 10}},                        // burst missing MeanBad
		{Drift: &Drift{Max: 1.5}},                                  // drift out of range
		{Brownout: &Brownout{MeanEvery: 10}},                       // missing MeanFor
		{Brownout: &Brownout{MeanEvery: 10, MeanFor: 1, Scale: 1}}, // scale not < 1
		{Silence: &Silence{MeanFor: 5}},                            // missing MeanEvery
	}
	for i, cfg := range bad {
		if _, err := Compile(cfg, 3, 100, 1); err == nil {
			t.Errorf("case %d: Compile accepted invalid config %+v", i, cfg)
		}
	}
	if _, err := Compile(killHalfCfg(), 0, 100, 1); err == nil {
		t.Error("Compile accepted n = 0")
	}
	if _, err := Compile(killHalfCfg(), 8, 0, 1); err == nil {
		t.Error("Compile accepted horizon = 0")
	}
}

// TestFaultQueryAllocs pins the 0 allocs/op contract on every query the
// simulator event loops call.
func TestFaultQueryAllocs(t *testing.T) {
	s := mustCompile(t, killHalfCfg(), 8, 120, 42)
	v := s.View(2)
	var sink bool
	var fsink float64
	allocs := testing.AllocsPerRun(1000, func() {
		sink = s.Alive(2, 35) != s.Silenced(2, 35)
		sink = sink != s.DropRx(2, 35)
		fsink = s.HarvestScale(2, 35) + s.Drift(2) + v.HarvestScale(35)
	})
	_ = sink
	_ = fsink
	if allocs != 0 {
		t.Errorf("fault queries allocate %v allocs/op, want 0", allocs)
	}
}

// TestFaultViewMatchesSet checks the NodeView projection agrees with
// the Set it came from on every shared query.
func TestFaultViewMatchesSet(t *testing.T) {
	s := mustCompile(t, killHalfCfg(), 8, 120, 42)
	for i := 0; i < 8; i++ {
		v := s.View(i)
		if v.DriftFactor != s.Drift(i) {
			t.Errorf("node %d: view drift %v != set drift %v", i, v.DriftFactor, s.Drift(i))
		}
		if v.CrashAt != s.FirstCrash(i) && !(math.IsInf(v.CrashAt, 1) && math.IsInf(s.FirstCrash(i), 1)) {
			t.Errorf("node %d: view crash %v != set crash %v", i, v.CrashAt, s.FirstCrash(i))
		}
		for _, at := range []float64{0, 30, 60, 90, 119} {
			if v.HarvestScale(at) != s.HarvestScale(i, at) {
				t.Errorf("node %d t=%v: view harvest %v != set harvest %v",
					i, at, v.HarvestScale(at), s.HarvestScale(i, at))
			}
		}
	}
}
