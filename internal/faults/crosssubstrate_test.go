// Cross-substrate acceptance: the same fault config and seed must
// produce byte-identical fault traces on every execution substrate.
// This file lives in package faults_test because it imports the three
// substrates, which themselves import faults.
package faults_test

import (
	"encoding/json"
	"testing"

	"econcast/internal/asim"
	"econcast/internal/econcast"
	"econcast/internal/faults"
	"econcast/internal/model"
	"econcast/internal/sim"
	"econcast/internal/testbed"
)

// TestFaultKillHalfCrossSubstrate is the tentpole acceptance scenario:
// kill half an 8-node clique on sim, asim, and testbed. All three runs
// must complete with surviving throughput, and their materialized fault
// traces must be byte-identical — the substrates realize one shared
// schedule, they do not roll their own.
func TestFaultKillHalfCrossSubstrate(t *testing.T) {
	const (
		n        = 8
		duration = 600.0
		warmup   = 300.0
		killAt   = 200.0
		seed     = 42
	)
	fcfg := &faults.Config{
		Crash:    &faults.Crash{Kill: []int{0, 1, 2, 3}, KillAt: killAt},
		Brownout: &faults.Brownout{MeanEvery: 100, MeanFor: 30},
		Silence:  &faults.Silence{MeanEvery: 200, MeanFor: 5},
		Loss:     &faults.Loss{P: 0.05},
		Drift:    &faults.Drift{Max: 0.02},
	}
	nw := model.Homogeneous(n, 10*model.MicroWatt, 500*model.MicroWatt, 500*model.MicroWatt)
	proto := sim.Protocol{Mode: model.Groupput, Variant: econcast.Capture, Sigma: 0.5, Delta: 0.2}

	traces := map[string][]faults.Event{}

	simM, err := sim.Run(sim.Config{
		Network: nw, Protocol: proto,
		Duration: duration, Warmup: warmup, Seed: seed, Faults: fcfg,
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if simM.Groupput <= 0 {
		t.Error("sim: survivors delivered nothing")
	}
	traces["sim"] = simM.FaultTrace

	asimM, err := asim.Run(asim.Config{
		Network: nw,
		Mode:    model.Groupput, Variant: econcast.Capture, Sigma: 0.5, Delta: 0.2,
		Duration: duration, Warmup: warmup, Seed: seed, Faults: fcfg,
	})
	if err != nil {
		t.Fatalf("asim: %v", err)
	}
	if asimM.Groupput <= 0 {
		t.Error("asim: survivors delivered nothing")
	}
	for i := 0; i < n; i++ {
		if asimM.Dead[i] != (i < 4) {
			t.Errorf("asim: Dead[%d] = %v, want %v", i, asimM.Dead[i], i < 4)
		}
	}
	traces["asim"] = asimM.FaultTrace

	tbM, err := testbed.Run(testbed.Config{
		N: n, Sigma: 0.5,
		Duration: duration, Warmup: warmup, Seed: seed, Faults: fcfg,
	})
	if err != nil {
		t.Fatalf("testbed: %v", err)
	}
	traces["testbed"] = tbM.FaultTrace

	ref, err := json.Marshal(traces["sim"])
	if err != nil {
		t.Fatal(err)
	}
	if len(traces["sim"]) == 0 {
		t.Fatal("sim trace is empty")
	}
	for _, name := range []string{"asim", "testbed"} {
		got, err := json.Marshal(traces[name])
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(ref) {
			t.Errorf("%s fault trace differs from sim's:\nsim:     %s\n%s: %s", name, ref, name, got)
		}
	}
}
