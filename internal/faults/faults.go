// Package faults is the repository's unified fault-injection layer: a
// deterministic, seed-derived library of fault processes shared by all
// three execution substrates (internal/sim, internal/asim,
// internal/testbed). The paper's eZ430-RF2500-SEH testbed exhibits
// exactly these imperfections — nodes die and restart, harvested energy
// browns out, low-power sleep clocks drift, packets and pings are lost,
// radios get stuck — and EconCast's claim is that the rates adapt through
// all of them without any membership protocol.
//
// Every process is compiled up front into explicit schedules (sorted
// time windows per node) by Compile, driven exclusively by
// rng.DeriveSeed streams keyed on (seed, process, node). Two
// consequences follow:
//
//   - Reproducibility: the same (Config, n, horizon, seed) yields a
//     byte-identical fault trace on every substrate and at any sweep
//     worker count. The substrates merely *realize* the shared trace
//     (sim as queue events, asim as goroutine deaths, testbed as heap
//     events), so cross-substrate experiments see the same faults.
//
//   - Allocation-free queries: a compiled Set answers Alive/Silenced/
//     HarvestScale/DropRx with a binary search over precomputed window
//     boundaries, so the simulators' event loops stay 0 allocs/op
//     (econlint's hotalloc analyzer pins the query tree).
//
// A nil *Set is the fault-free case: every query method is nil-safe and
// returns the benign default, so engines carry one pointer and no
// branches multiply through their hot paths.
package faults

import (
	"errors"
	"math"
	"sort"

	"econcast/internal/rng"
)

// Config aggregates the fault processes of one run. A nil *Config (or
// one with all process pointers nil) compiles to a nil *Set, meaning
// fault-free operation.
type Config struct {
	Crash    *Crash
	Loss     *Loss
	Drift    *Drift
	Brownout *Brownout
	Silence  *Silence
}

// Crash models node crash/restart churn. Both mechanisms may be
// combined; overlapping outages are coalesced.
type Crash struct {
	// Kill deterministically crashes the listed nodes at KillAt with no
	// restart — the "kill half the clique" scenario.
	Kill   []int
	KillAt float64

	// MeanUp > 0 additionally gives every node stochastic churn:
	// alternating alive intervals (exponential, mean MeanUp seconds) and
	// dead intervals (exponential, mean MeanDown). MeanDown == 0 makes
	// the first stochastic crash permanent.
	MeanUp   float64
	MeanDown float64
}

// Loss models packet reception loss on the receiver side. P alone gives
// i.i.d. loss; setting MeanGood and MeanBad overlays a Gilbert–Elliott
// burst process: each receiver alternates good states (loss probability
// P) and bad states (loss probability PBad, default 1) with exponential
// dwell times.
type Loss struct {
	P        float64 // loss probability in the good state
	MeanGood float64 // mean good-state dwell (s); with MeanBad, enables bursts
	MeanBad  float64 // mean bad-state dwell (s)
	PBad     float64 // loss probability in the bad state (default 1)
}

// Drift gives each node a fixed low-power sleep-clock scale factor drawn
// uniformly from [1-Max, 1+Max], the testbed's §VIII imperfection.
type Drift struct {
	Max float64 // maximum relative clock error, e.g. 0.01 for 1%
}

// Brownout models energy-harvesting outages: each node's harvest is
// scaled by Scale (default 0, a full outage) during windows that recur
// with exponential spacing MeanEvery and exponential duration MeanFor.
type Brownout struct {
	MeanEvery float64 // mean seconds between window starts
	MeanFor   float64 // mean window duration (s)
	Scale     float64 // harvest multiplier inside a window (default 0)
}

// Silence models a stuck radio: during its windows a node transmits
// carrier and spends energy as usual but delivers nothing — the "silent
// node" fault, invisible to the node itself.
type Silence struct {
	MeanEvery float64 // mean seconds between window starts
	MeanFor   float64 // mean window duration (s)
}

// active reports whether the configuration injects anything at all.
func (c *Config) active() bool {
	if c == nil {
		return false
	}
	return c.Crash != nil || c.Loss != nil || c.Drift != nil ||
		c.Brownout != nil || c.Silence != nil
}

// Kind labels one fault-trace event.
type Kind uint8

// Trace event kinds, in trace sort order for equal times.
const (
	CrashDown Kind = iota
	CrashUp
	BrownoutStart
	BrownoutEnd
	SilenceStart
	SilenceEnd
)

func (k Kind) String() string {
	switch k {
	case CrashDown:
		return "crash-down"
	case CrashUp:
		return "crash-up"
	case BrownoutStart:
		return "brownout-start"
	case BrownoutEnd:
		return "brownout-end"
	case SilenceStart:
		return "silence-start"
	case SilenceEnd:
		return "silence-end"
	}
	return "fault"
}

// Event is one materialized fault-schedule boundary. The full sorted
// event list is the run's fault trace: byte-identical across substrates
// and worker counts for the same (Config, n, horizon, seed).
type Event struct {
	At   float64
	Node int
	Kind Kind
}

// seed-derivation domains: every process draws from its own
// rng.DeriveSeed(seed, faultDomain, process, node) stream, so adding a
// process never shifts another's schedule.
const (
	faultDomain = 0xfa17 // namespace separating fault streams from run streams

	procCrash uint64 = iota
	procLoss
	procDrift
	procBrownout
	procSilence
	procLossDraw
)

// Set is a compiled fault schedule for one run: per-node window
// boundary lists plus per-receiver loss streams. All schedules are
// immutable after Compile; the loss streams advance on DropRx and make
// a Set single-goroutine property of whichever engine owns it (econlint's
// sharedstate analyzer enforces that a *Set never crosses goroutines —
// hand goroutines a NodeView instead).
//
//lint:owner goroutine loss streams advance on DropRx; hand goroutines a NodeView
type Set struct {
	n       int
	horizon float64

	down    [][]float64 // crash outages per node (paired boundaries)
	brown   [][]float64 // brownout windows per node
	silent  [][]float64 // stuck-radio windows per node
	badLoss [][]float64 // Gilbert–Elliott bad-state windows per receiver

	drift      []float64     // per-node clock scale factor (1 = exact)
	lossSrc    []*rng.Source // per-receiver reception-loss streams
	lossP      float64       // good-state loss probability
	lossPBad   float64       // bad-state loss probability
	brownScale float64       // harvest multiplier inside a brownout
	hasLoss    bool
}

// Compile materializes cfg into a Set for n nodes over [0, horizon].
// The fault streams are derived from seed by splitmix mixing, entirely
// separate from the run's own randomness, so enabling a fault process
// never perturbs the protocol's draws. A nil or empty cfg returns nil
// (the nil-safe fault-free Set).
func Compile(cfg *Config, n int, horizon float64, seed uint64) (*Set, error) {
	if !cfg.active() {
		return nil, nil
	}
	if n <= 0 || !(horizon > 0) {
		return nil, errors.New("faults: need n > 0 and horizon > 0")
	}
	s := &Set{
		n:       n,
		horizon: horizon,
		down:    make([][]float64, n),
		brown:   make([][]float64, n),
		silent:  make([][]float64, n),
		badLoss: make([][]float64, n),
		drift:   make([]float64, n),
	}
	for i := range s.drift {
		s.drift[i] = 1
	}
	if c := cfg.Crash; c != nil {
		if err := c.validate(n); err != nil {
			return nil, err
		}
		if c.MeanUp > 0 && !densityOK(c.MeanUp, c.MeanDown, horizon) {
			return nil, errTooDense
		}
		for i := 0; i < n; i++ {
			var w []float64
			if c.MeanUp > 0 {
				src := rng.New(rng.DeriveSeed(seed, faultDomain, procCrash, uint64(i)))
				w = alternating(src, c.MeanUp, c.MeanDown, horizon)
			}
			s.down[i] = w
		}
		for _, i := range c.Kill {
			s.down[i] = coalesce(append(s.down[i], c.KillAt, horizon))
		}
	}
	if b := cfg.Brownout; b != nil {
		if !(b.MeanEvery > 0) || !(b.MeanFor > 0) {
			return nil, errors.New("faults: brownout needs MeanEvery > 0 and MeanFor > 0")
		}
		if b.Scale < 0 || b.Scale >= 1 {
			return nil, errors.New("faults: brownout Scale must be in [0, 1)")
		}
		if !densityOK(b.MeanEvery, b.MeanFor, horizon) {
			return nil, errTooDense
		}
		s.brownScale = b.Scale
		for i := 0; i < n; i++ {
			src := rng.New(rng.DeriveSeed(seed, faultDomain, procBrownout, uint64(i)))
			s.brown[i] = recurring(src, b.MeanEvery, b.MeanFor, horizon)
		}
	}
	if sl := cfg.Silence; sl != nil {
		if !(sl.MeanEvery > 0) || !(sl.MeanFor > 0) {
			return nil, errors.New("faults: silence needs MeanEvery > 0 and MeanFor > 0")
		}
		if !densityOK(sl.MeanEvery, sl.MeanFor, horizon) {
			return nil, errTooDense
		}
		for i := 0; i < n; i++ {
			src := rng.New(rng.DeriveSeed(seed, faultDomain, procSilence, uint64(i)))
			s.silent[i] = recurring(src, sl.MeanEvery, sl.MeanFor, horizon)
		}
	}
	if l := cfg.Loss; l != nil {
		if l.P < 0 || l.P > 1 || l.PBad < 0 || l.PBad > 1 {
			return nil, errors.New("faults: loss probabilities must be in [0, 1]")
		}
		if (l.MeanGood > 0) != (l.MeanBad > 0) {
			return nil, errors.New("faults: burst loss needs both MeanGood and MeanBad")
		}
		if l.MeanGood > 0 && !densityOK(l.MeanGood, l.MeanBad, horizon) {
			return nil, errTooDense
		}
		s.hasLoss = true
		s.lossP = l.P
		s.lossPBad = l.PBad
		if s.lossPBad == 0 { //lint:allow floateq zero is the explicit unset sentinel, not a computed value
			s.lossPBad = 1
		}
		s.lossSrc = make([]*rng.Source, n)
		for i := 0; i < n; i++ {
			s.lossSrc[i] = rng.New(rng.DeriveSeed(seed, faultDomain, procLossDraw, uint64(i)))
			if l.MeanGood > 0 {
				src := rng.New(rng.DeriveSeed(seed, faultDomain, procLoss, uint64(i)))
				s.badLoss[i] = recurring(src, l.MeanGood, l.MeanBad, horizon)
			}
		}
	}
	if d := cfg.Drift; d != nil {
		if d.Max < 0 || d.Max >= 1 {
			return nil, errors.New("faults: drift Max must be in [0, 1)")
		}
		for i := 0; i < n; i++ {
			src := rng.New(rng.DeriveSeed(seed, faultDomain, procDrift, uint64(i)))
			s.drift[i] = 1 + src.Uniform(-d.Max, d.Max)
		}
	}
	return s, nil
}

func (c *Crash) validate(n int) error {
	for _, i := range c.Kill {
		if i < 0 || i >= n {
			return errors.New("faults: crash Kill index out of range")
		}
	}
	if len(c.Kill) > 0 && !(c.KillAt >= 0) {
		return errors.New("faults: crash KillAt must be >= 0")
	}
	if c.MeanUp < 0 || c.MeanDown < 0 {
		return errors.New("faults: crash MeanUp/MeanDown must be >= 0")
	}
	if c.MeanUp == 0 && c.MeanDown > 0 { //lint:allow floateq zero is the explicit unset sentinel, not a computed value
		return errors.New("faults: crash MeanDown without MeanUp")
	}
	return nil
}

// maxWindowsPerNode bounds the number of windows any recurring process
// may materialize per node. Schedules are compiled eagerly over the full
// horizon; without the bound, a pathological (horizon, MeanEvery) pair —
// say an effectively-infinite benchmark horizon with second-scale
// recurrence — would spin Compile forever instead of failing fast.
const maxWindowsPerNode = 1 << 22

func densityOK(every, dur, horizon float64) bool {
	return horizon/(every+dur) <= maxWindowsPerNode
}

var errTooDense = errors.New("faults: recurring schedule too dense for the horizon (mean cycle * 2^22 < horizon)")

// recurring draws windows with exponential spacing (mean every) and
// exponential duration (mean dur), clipped to [0, horizon].
func recurring(src *rng.Source, every, dur, horizon float64) []float64 {
	var w []float64
	t := src.Exp(1 / every)
	for t < horizon {
		end := t + src.Exp(1/dur)
		if end > horizon {
			end = horizon
		}
		w = append(w, t, end)
		if end >= horizon {
			break
		}
		t = end + src.Exp(1/every)
	}
	return w
}

// alternating draws crash/restart churn: alive (mean up), then down
// (mean down, or permanent when down == 0), repeating to the horizon.
func alternating(src *rng.Source, up, down, horizon float64) []float64 {
	var w []float64
	t := src.Exp(1 / up)
	for t < horizon {
		if down <= 0 {
			return append(w, t, horizon) // permanent crash
		}
		end := t + src.Exp(1/down)
		if end > horizon {
			end = horizon
		}
		w = append(w, t, end)
		if end >= horizon {
			break
		}
		t = end + src.Exp(1/up)
	}
	return w
}

// coalesce sorts paired window boundaries and merges overlaps, keeping
// the alternating start/end invariant the queries depend on.
func coalesce(w []float64) []float64 {
	if len(w) <= 2 {
		return w
	}
	type iv struct{ from, to float64 }
	ivs := make([]iv, 0, len(w)/2)
	for i := 0; i+1 < len(w); i += 2 {
		ivs = append(ivs, iv{w[i], w[i+1]})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].from < ivs[j].from })
	out := w[:0]
	cur := ivs[0]
	for _, v := range ivs[1:] {
		if v.from <= cur.to {
			if v.to > cur.to {
				cur.to = v.to
			}
			continue
		}
		out = append(out, cur.from, cur.to)
		cur = v
	}
	return append(out, cur.from, cur.to)
}

// inWindows reports whether t lies inside one of the [start, end)
// windows encoded as alternating sorted boundaries. Hand-rolled binary
// search: the queries run once per simulator event and must not allocate
// (sort.Search's closure would).
func inWindows(b []float64, t float64) bool {
	lo, hi := 0, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid] > t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo&1 == 1
}

// N returns the node count the Set was compiled for (0 for nil).
func (s *Set) N() int {
	if s == nil {
		return 0
	}
	return s.n
}

// Alive reports whether node i is up at time t. Nil-safe: a nil Set is
// always alive.
func (s *Set) Alive(i int, t float64) bool {
	if s == nil {
		return true
	}
	return !inWindows(s.down[i], t)
}

// Silenced reports whether node i's radio is stuck at time t: it
// transmits but delivers nothing.
func (s *Set) Silenced(i int, t float64) bool {
	if s == nil {
		return false
	}
	return inWindows(s.silent[i], t)
}

// HarvestScale returns the factor applied to node i's harvesting rate
// at time t: 1 normally, the brownout scale inside an outage window.
func (s *Set) HarvestScale(i int, t float64) float64 {
	if s == nil {
		return 1
	}
	if inWindows(s.brown[i], t) {
		return s.brownScale
	}
	return 1
}

// Drift returns node i's sleep-clock scale factor (1 = exact clock).
func (s *Set) Drift(i int) float64 {
	if s == nil {
		return 1
	}
	return s.drift[i]
}

// DropRx reports whether a reception by node rx at time t is lost to
// the loss process, advancing rx's dedicated loss stream. Callers must
// invoke it once per (attempted) reception in event order; the draw
// order — hence the realized loss pattern — is then reproducible for a
// fixed seed. Not safe for concurrent use: the owning engine's event
// loop is the only sanctioned caller.
func (s *Set) DropRx(rx int, t float64) bool {
	if s == nil || !s.hasLoss {
		return false
	}
	p := s.lossP
	if inWindows(s.badLoss[rx], t) {
		p = s.lossPBad
	}
	return s.lossSrc[rx].Bernoulli(p)
}

// FirstCrash returns the start of node i's first outage window, or +Inf
// if the node never crashes.
func (s *Set) FirstCrash(i int) float64 {
	if s == nil || len(s.down[i]) == 0 {
		return math.Inf(1)
	}
	return s.down[i][0]
}

// HasRestart reports whether any node's outage ends before the horizon
// — i.e. the schedule contains a restart. internal/asim realizes a
// crash as goroutine death, which is permanent; it rejects restarting
// schedules so the shared trace is never silently reinterpreted.
func (s *Set) HasRestart() bool {
	if s == nil {
		return false
	}
	for _, w := range s.down {
		for i := 1; i < len(w); i += 2 {
			if w[i] < s.horizon {
				return true
			}
		}
	}
	return false
}

// Trace returns the full materialized fault schedule as events sorted
// by (time, node, kind): the run's fault trace. Loss draws and drift
// factors are not events (loss is a per-reception draw, drift a
// constant); the trace covers the window processes. Nil-safe.
func (s *Set) Trace() []Event {
	if s == nil {
		return nil
	}
	var ev []Event
	add := func(windows [][]float64, start, end Kind) {
		for i, w := range windows {
			for k := 0; k+1 < len(w); k += 2 {
				ev = append(ev, Event{At: w[k], Node: i, Kind: start})
				if w[k+1] < s.horizon {
					ev = append(ev, Event{At: w[k+1], Node: i, Kind: end})
				}
			}
		}
	}
	add(s.down, CrashDown, CrashUp)
	add(s.brown, BrownoutStart, BrownoutEnd)
	add(s.silent, SilenceStart, SilenceEnd)
	sort.Slice(ev, func(i, j int) bool {
		if ev[i].At != ev[j].At { //lint:allow floateq exact tie detection so equal-time events fall through to the node/kind tiebreak
			return ev[i].At < ev[j].At
		}
		if ev[i].Node != ev[j].Node {
			return ev[i].Node < ev[j].Node
		}
		return ev[i].Kind < ev[j].Kind
	})
	return ev
}

// Boundaries calls fn for every schedule boundary of node i that an
// engine should realize as an event: crash downs/ups, brownout edges,
// and silence edges. Engines push these once at start-up, so their hot
// loops stay untouched when faults are disabled. Nil-safe.
func (s *Set) Boundaries(i int, fn func(at float64)) {
	if s == nil {
		return
	}
	for _, w := range [][]float64{s.down[i], s.brown[i], s.silent[i]} {
		for _, t := range w {
			if t < s.horizon {
				fn(t)
			}
		}
	}
}

// NodeView is the read-only, goroutine-local projection of a Set for
// one node: everything a node-side runtime (asim's firmware goroutines)
// needs, with no mutable shared state. The windows slice is immutable
// after Compile, so handing a NodeView across a goroutine boundary is
// the sanctioned pattern — handing the *Set itself is flagged by
// econlint's sharedstate analyzer.
type NodeView struct {
	DriftFactor float64 // sleep-clock scale
	CrashAt     float64 // first outage start (+Inf if none)

	brown      []float64
	brownScale float64
}

// View returns node i's NodeView. Nil-safe: the zero-fault view.
func (s *Set) View(i int) NodeView {
	if s == nil {
		return NodeView{DriftFactor: 1, CrashAt: math.Inf(1)}
	}
	return NodeView{
		DriftFactor: s.drift[i],
		CrashAt:     s.FirstCrash(i),
		brown:       s.brown[i],
		brownScale:  s.brownScale,
	}
}

// HasBrownout reports whether the node has any brownout windows, so
// engines can skip installing a harvest wrapper entirely when there is
// nothing to scale.
func (v NodeView) HasBrownout() bool { return len(v.brown) > 0 }

// HarvestScale is the NodeView form of Set.HarvestScale.
func (v NodeView) HarvestScale(t float64) float64 {
	if inWindows(v.brown, t) {
		return v.brownScale
	}
	return 1
}
