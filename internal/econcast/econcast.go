// Package econcast implements the paper's contribution: the EconCast
// distributed protocol (§V). A Node transitions between sleep, listen, and
// transmit states with exponential rates (eq. 18) that it adapts online
// from the dynamics of its energy storage through a Lagrange multiplier
// update (eq. 17). Nodes know only their own power consumption levels and
// observe (i) carrier sense and (ii) a listener estimate obtained from
// low-cost pings; they need no knowledge of the network size or of other
// nodes' budgets.
//
// The package is pure protocol logic: a host runtime (the discrete-event
// simulator in internal/sim, the goroutine runtime in internal/asim, or the
// emulated testbed in internal/testbed) drives time, carrier sensing, and
// ping collection, and samples transition delays from the rates a Node
// reports.
//
// The state is split hot/cold for structure-of-arrays hosts: Core is the
// per-node dynamic state (multiplier, batteries, interval bookkeeping —
// one 64-byte cache line), Params the comparable parameter block that
// homogeneous fleets share, and the time-varying harvest profile rides
// separately so Params stays comparable. Node packages the three behind
// the original single-owner API for hosts that don't need the split.
package econcast

import (
	"errors"
	"fmt"
	"math"

	"econcast/internal/model"
)

// Variant selects between the two EconCast versions of §V-D, which differ
// only in transmit-state behaviour.
type Variant int

const (
	// Capture is EconCast-C: a transmitter may hold the channel for
	// several back-to-back packets, re-estimating the listener count after
	// each packet from pings and continuing with probability
	// 1 - exp(-estimate/sigma).
	Capture Variant = iota
	// NonCapture is EconCast-NC: the channel is released after every
	// packet; the listener estimate instead boosts the listen->transmit
	// rate.
	NonCapture
)

func (v Variant) String() string {
	if v == NonCapture {
		return "EconCast-NC"
	}
	return "EconCast-C"
}

// Config holds a node's protocol parameters.
type Config struct {
	Mode    model.Mode // throughput objective: groupput or anyput
	Variant Variant
	Sigma   float64 // temperature; smaller approaches the oracle (§V-F)

	// Delta is the multiplier step size and Tau the update interval in
	// seconds (eq. 17, with the constant choice recommended in §V-F).
	Delta float64
	Tau   float64

	// Node hardware parameters (Watts).
	Budget        float64 // rho: harvesting / budget rate
	ListenPower   float64 // L
	TransmitPower float64 // X

	// PacketTime is the duration of one unit packet in seconds; the rates
	// of eq. (18) are expressed per packet time. Default 1 ms.
	PacketTime float64

	// InitialBattery is b(0) in Joules. BatteryCapacity caps storage
	// (harvest overflow is lost); zero or negative means unbounded.
	// If ClampBatteryAtZero is set the battery cannot go negative, which
	// models a node that physically cannot overspend; by default the
	// battery may dip below zero transiently, like the paper's virtual
	// battery.
	InitialBattery     float64
	BatteryCapacity    float64
	ClampBatteryAtZero bool

	// Harvest, when non-nil, replaces the constant Budget charging rate
	// with a time-varying profile (argument: seconds since the node
	// started). Budget must still be set (it is used for validation and as
	// the nominal rate); the multiplier update needs no change since
	// eq. (17) observes only battery differences.
	Harvest func(elapsed float64) float64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	c.PacketTime = model.DefaultIfZero(c.PacketTime, 1e-3)
	c.Delta = model.DefaultIfZero(c.Delta, 0.05)
	c.Tau = model.DefaultIfZero(c.Tau, 200*c.PacketTime)
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	c = c.withDefaults()
	if !(c.Sigma > 0) {
		return fmt.Errorf("econcast: sigma %v must be positive", c.Sigma)
	}
	if !(c.Budget > 0) || !(c.ListenPower > 0) || !(c.TransmitPower > 0) {
		return errors.New("econcast: budget, listen and transmit power must be positive")
	}
	if !(c.PacketTime > 0) || !(c.Tau > 0) || !(c.Delta > 0) {
		return errors.New("econcast: packet time, tau and delta must be positive")
	}
	return nil
}

// Rates is the set of transition rates of eq. (18) in events per second,
// already gated by carrier sense.
type Rates struct {
	SleepToListen    float64
	ListenToSleep    float64
	ListenToTransmit float64
	TransmitToListen float64
}

// Params is the cold half of a node's protocol state: the defaulted
// configuration scalars plus the derived power scale. It deliberately
// excludes the Harvest profile so the struct is comparable — a
// structure-of-arrays host dedups Params across a homogeneous fleet and
// keys the dedup with ==. Params never changes after construction.
type Params struct {
	Mode    model.Mode
	Variant Variant
	Sigma   float64
	Delta   float64
	Tau     float64

	Budget        float64
	ListenPower   float64
	TransmitPower float64
	PacketTime    float64

	BatteryCapacity    float64
	ClampBatteryAtZero bool

	P0 float64 // power scale max(L, X); eta is per this scale
}

// NewParams derives the cold parameter block from a validated
// configuration (defaults applied). The Harvest profile is not part of
// Params; hosts carry it separately (see Core.Advance).
func NewParams(cfg Config) Params {
	cfg = cfg.withDefaults()
	return Params{
		Mode:               cfg.Mode,
		Variant:            cfg.Variant,
		Sigma:              cfg.Sigma,
		Delta:              cfg.Delta,
		Tau:                cfg.Tau,
		Budget:             cfg.Budget,
		ListenPower:        cfg.ListenPower,
		TransmitPower:      cfg.TransmitPower,
		PacketTime:         cfg.PacketTime,
		BatteryCapacity:    cfg.BatteryCapacity,
		ClampBatteryAtZero: cfg.ClampBatteryAtZero,
		P0:                 math.Max(cfg.ListenPower, cfg.TransmitPower),
	}
}

// Estimate converts a listener count into the estimate the protocol
// consumes: c-hat for groupput mode, gamma-hat for anyput mode (§V-B).
func (p *Params) Estimate(listeners int) float64 {
	if p.Mode == model.Anyput {
		if listeners > 0 {
			return 1
		}
		return 0
	}
	return float64(listeners)
}

// Core is the hot half of a node's protocol state: the Lagrange
// multiplier, the physical and virtual batteries, and the tau-interval
// bookkeeping the event loop touches on every energy accrual. The seven
// 8-byte fields plus padding fill exactly one 64-byte cache line, so a
// []Core slab in a structure-of-arrays engine keeps one node's entire
// dynamic protocol state in a single line.
type Core struct {
	Eta     float64 // Lagrange multiplier, scaled by Params.P0
	Battery float64 // physical store (clamped if configured)
	Ledger  float64 // estimator ledger: unclamped virtual battery

	intervalStart   float64 // ledger level at the start of the interval
	intervalElapsed float64 // seconds into the current tau interval
	elapsed         float64 // total seconds advanced since start
	updates         int64   // number of multiplier updates applied

	_ [8]byte // pad to 64 bytes; keep []Core slabs line-aligned
}

// NewCore returns the initial dynamic state for a node starting with the
// given battery level.
func NewCore(initialBattery float64) Core {
	return Core{
		Battery:       initialBattery,
		Ledger:        initialBattery,
		intervalStart: initialBattery,
	}
}

// Updates returns how many multiplier updates have been applied.
func (n *Core) Updates() int { return int(n.updates) }

// Depleted reports whether the battery is at or below zero.
func (n *Core) Depleted() bool { return n.Battery <= 0 }

// scaled returns the dimensionless exponent eta * power / sigma used by
// the rate laws; power is scaled by the node's own P0 so eta stays O(1).
func (n *Core) scaled(p *Params, power float64) float64 {
	return n.Eta * power / p.P0 / p.Sigma
}

// Rates evaluates eq. (18) for the current multiplier. carrierFree is the
// indicator A(t): when false (an ongoing transmission is sensed), the
// sleep->listen, listen->sleep and listen->transmit transitions freeze.
// estimate is c-hat (groupput) or gamma-hat (anyput), used by the
// listen->transmit rate of the non-capture variant and the
// transmit->listen rate of the capture variant. Rates are per second.
func (n *Core) Rates(p *Params, carrierFree bool, estimate float64) Rates {
	perSec := 1 / p.PacketTime
	a := 0.0
	if carrierFree {
		a = 1
	}
	r := Rates{
		SleepToListen: a * math.Exp(-n.scaled(p, p.ListenPower)) * perSec,
		ListenToSleep: a * perSec,
	}
	lx := n.scaled(p, p.ListenPower) - n.scaled(p, p.TransmitPower)
	switch p.Variant {
	case Capture:
		r.ListenToTransmit = a * math.Exp(lx) * perSec
		r.TransmitToListen = math.Exp(-estimate/p.Sigma) * perSec
	case NonCapture:
		r.ListenToTransmit = a * math.Exp(lx+estimate/p.Sigma) * perSec
		r.TransmitToListen = perSec
	}
	return r
}

// ContinueTransmitProb is the packetized form of the transmit-state
// holding time (§V-B, §VIII-C): after each unit packet an EconCast-C
// transmitter continues with probability 1 - exp(-estimate/sigma). The
// non-capture variant always releases (probability 0).
func (n *Core) ContinueTransmitProb(p *Params, estimate float64) float64 {
	if p.Variant == NonCapture {
		return 0
	}
	return 1 - math.Exp(-estimate/p.Sigma)
}

// Advance accrues dt seconds of operation in the given state: the battery
// charges at the budget rate (or the harvest profile, when non-nil) and
// drains at the state's power draw, and the multiplier update of eq. (17)
// fires at every tau boundary crossed.
func (n *Core) Advance(p *Params, harvest func(elapsed float64) float64, dt float64, st model.State) {
	if dt < 0 {
		panic("econcast: negative dt")
	}
	draw := n.power(p, st)
	for dt > 0 {
		step := dt
		if remaining := p.Tau - n.intervalElapsed; step > remaining {
			step = remaining
		}
		h := p.Budget
		if harvest != nil {
			// Piecewise-constant within the step, sampled at its start;
			// steps never exceed tau, so slowly-varying profiles are
			// integrated accurately.
			h = harvest(n.elapsed)
		}
		n.elapsed += step
		net := (h - draw) * step
		// The estimator ledger is the paper's virtual battery: it may go
		// negative so eq. (17) keeps seeing true overspending even when
		// the physical store is pinned at zero.
		n.Ledger += net
		n.Battery += net
		if p.BatteryCapacity > 0 {
			if n.Battery > p.BatteryCapacity {
				n.Battery = p.BatteryCapacity
			}
			if n.Ledger > p.BatteryCapacity {
				n.Ledger = p.BatteryCapacity
			}
		}
		if p.ClampBatteryAtZero && n.Battery < 0 {
			n.Battery = 0
		}
		n.intervalElapsed += step
		dt -= step
		if n.intervalElapsed >= p.Tau-1e-15 {
			n.updateMultiplier(p)
		}
	}
}

// updateMultiplier applies eq. (17): eta <- [eta - delta * (b_k - b_{k-1})
// / tau]^+, with the virtual-battery slope normalized by the node's power
// scale so eta and delta are dimensionless.
func (n *Core) updateMultiplier(p *Params) {
	slope := (n.Ledger - n.intervalStart) / p.Tau / p.P0
	n.Eta = math.Max(0, n.Eta-p.Delta*slope)
	n.intervalStart = n.Ledger
	n.intervalElapsed = 0
	n.updates++
}

func (n *Core) power(p *Params, st model.State) float64 {
	switch st {
	case model.Listen:
		return p.ListenPower
	case model.Transmit:
		return p.TransmitPower
	default:
		return 0
	}
}

// Node is the per-node EconCast state machine behind the original
// single-owner API: the cold Params, the optional harvest profile, and
// the hot Core, packaged together for hosts (asim, testbed, the
// single-queue sim engine) that keep one object per node. It is not safe
// for concurrent use; each host goroutine owns one Node.
//
//lint:owner goroutine each host goroutine owns one Node
type Node struct {
	cfg     Config
	par     Params
	harvest func(elapsed float64) float64
	core    Core
}

// NewNode returns a node with the given configuration. It panics on an
// invalid configuration; call Config.Validate first for graceful handling.
func NewNode(cfg Config) *Node {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	return &Node{
		cfg:     cfg,
		par:     NewParams(cfg),
		harvest: cfg.Harvest,
		core:    NewCore(cfg.InitialBattery),
	}
}

// Config returns the node's (defaulted) configuration.
func (n *Node) Config() Config { return n.cfg }

// Params returns the node's cold parameter block.
func (n *Node) Params() Params { return n.par }

// Core returns a copy of the node's hot dynamic state.
func (n *Node) Core() Core { return n.core }

// Eta returns the current Lagrange multiplier (dimensionless, scaled to the
// node's own max power level).
func (n *Node) Eta() float64 { return n.core.Eta }

// SetEta overrides the multiplier, e.g. to warm-start from an analytical
// solution. The expected scale is eta_analytical * max(L, X).
func (n *Node) SetEta(eta float64) {
	if eta < 0 {
		eta = 0
	}
	n.core.Eta = eta
}

// Battery returns the current energy storage level in Joules.
func (n *Node) Battery() float64 { return n.core.Battery }

// Updates returns how many multiplier updates have been applied.
func (n *Node) Updates() int { return n.core.Updates() }

// Depleted reports whether the battery is at or below zero.
func (n *Node) Depleted() bool { return n.core.Depleted() }

// Estimate converts a listener count into the estimate the protocol
// consumes: c-hat for groupput mode, gamma-hat for anyput mode (§V-B).
func (n *Node) Estimate(listeners int) float64 { return n.par.Estimate(listeners) }

// Rates evaluates eq. (18) for the current multiplier; see Core.Rates.
func (n *Node) Rates(carrierFree bool, estimate float64) Rates {
	return n.core.Rates(&n.par, carrierFree, estimate)
}

// ContinueTransmitProb is the packetized transmit-state holding law; see
// Core.ContinueTransmitProb.
func (n *Node) ContinueTransmitProb(estimate float64) float64 {
	return n.core.ContinueTransmitProb(&n.par, estimate)
}

// Advance accrues dt seconds of operation in the given state; see
// Core.Advance.
func (n *Node) Advance(dt float64, st model.State) {
	n.core.Advance(&n.par, n.harvest, dt, st)
}
