// Package econcast implements the paper's contribution: the EconCast
// distributed protocol (§V). A Node transitions between sleep, listen, and
// transmit states with exponential rates (eq. 18) that it adapts online
// from the dynamics of its energy storage through a Lagrange multiplier
// update (eq. 17). Nodes know only their own power consumption levels and
// observe (i) carrier sense and (ii) a listener estimate obtained from
// low-cost pings; they need no knowledge of the network size or of other
// nodes' budgets.
//
// The package is pure protocol logic: a host runtime (the discrete-event
// simulator in internal/sim, the goroutine runtime in internal/asim, or the
// emulated testbed in internal/testbed) drives time, carrier sensing, and
// ping collection, and samples transition delays from the rates a Node
// reports.
package econcast

import (
	"errors"
	"fmt"
	"math"

	"econcast/internal/model"
)

// Variant selects between the two EconCast versions of §V-D, which differ
// only in transmit-state behaviour.
type Variant int

const (
	// Capture is EconCast-C: a transmitter may hold the channel for
	// several back-to-back packets, re-estimating the listener count after
	// each packet from pings and continuing with probability
	// 1 - exp(-estimate/sigma).
	Capture Variant = iota
	// NonCapture is EconCast-NC: the channel is released after every
	// packet; the listener estimate instead boosts the listen->transmit
	// rate.
	NonCapture
)

func (v Variant) String() string {
	if v == NonCapture {
		return "EconCast-NC"
	}
	return "EconCast-C"
}

// Config holds a node's protocol parameters.
type Config struct {
	Mode    model.Mode // throughput objective: groupput or anyput
	Variant Variant
	Sigma   float64 // temperature; smaller approaches the oracle (§V-F)

	// Delta is the multiplier step size and Tau the update interval in
	// seconds (eq. 17, with the constant choice recommended in §V-F).
	Delta float64
	Tau   float64

	// Node hardware parameters (Watts).
	Budget        float64 // rho: harvesting / budget rate
	ListenPower   float64 // L
	TransmitPower float64 // X

	// PacketTime is the duration of one unit packet in seconds; the rates
	// of eq. (18) are expressed per packet time. Default 1 ms.
	PacketTime float64

	// InitialBattery is b(0) in Joules. BatteryCapacity caps storage
	// (harvest overflow is lost); zero or negative means unbounded.
	// If ClampBatteryAtZero is set the battery cannot go negative, which
	// models a node that physically cannot overspend; by default the
	// battery may dip below zero transiently, like the paper's virtual
	// battery.
	InitialBattery     float64
	BatteryCapacity    float64
	ClampBatteryAtZero bool

	// Harvest, when non-nil, replaces the constant Budget charging rate
	// with a time-varying profile (argument: seconds since the node
	// started). Budget must still be set (it is used for validation and as
	// the nominal rate); the multiplier update needs no change since
	// eq. (17) observes only battery differences.
	Harvest func(elapsed float64) float64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	c.PacketTime = model.DefaultIfZero(c.PacketTime, 1e-3)
	c.Delta = model.DefaultIfZero(c.Delta, 0.05)
	c.Tau = model.DefaultIfZero(c.Tau, 200*c.PacketTime)
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	c = c.withDefaults()
	if !(c.Sigma > 0) {
		return fmt.Errorf("econcast: sigma %v must be positive", c.Sigma)
	}
	if !(c.Budget > 0) || !(c.ListenPower > 0) || !(c.TransmitPower > 0) {
		return errors.New("econcast: budget, listen and transmit power must be positive")
	}
	if !(c.PacketTime > 0) || !(c.Tau > 0) || !(c.Delta > 0) {
		return errors.New("econcast: packet time, tau and delta must be positive")
	}
	return nil
}

// Rates is the set of transition rates of eq. (18) in events per second,
// already gated by carrier sense.
type Rates struct {
	SleepToListen    float64
	ListenToSleep    float64
	ListenToTransmit float64
	TransmitToListen float64
}

// Node is the per-node EconCast state machine: the Lagrange multiplier,
// the virtual battery, and the rate laws. It is not safe for concurrent
// use; each host goroutine owns one Node.
//
//lint:owner goroutine each host goroutine owns one Node
type Node struct {
	cfg Config
	p0  float64 // power scale max(L, X); eta is per this scale

	eta float64

	battery         float64 // physical store (clamped if configured)
	ledger          float64 // estimator ledger: unclamped virtual battery
	intervalStart   float64 // ledger level at the start of the interval
	intervalElapsed float64 // seconds into the current tau interval
	elapsed         float64 // total seconds advanced since start

	updates int // number of multiplier updates applied
}

// NewNode returns a node with the given configuration. It panics on an
// invalid configuration; call Config.Validate first for graceful handling.
func NewNode(cfg Config) *Node {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:           cfg,
		p0:            math.Max(cfg.ListenPower, cfg.TransmitPower),
		battery:       cfg.InitialBattery,
		ledger:        cfg.InitialBattery,
		intervalStart: cfg.InitialBattery,
	}
	return n
}

// Config returns the node's (defaulted) configuration.
func (n *Node) Config() Config { return n.cfg }

// Eta returns the current Lagrange multiplier (dimensionless, scaled to the
// node's own max power level).
func (n *Node) Eta() float64 { return n.eta }

// SetEta overrides the multiplier, e.g. to warm-start from an analytical
// solution. The expected scale is eta_analytical * max(L, X).
func (n *Node) SetEta(eta float64) {
	if eta < 0 {
		eta = 0
	}
	n.eta = eta
}

// Battery returns the current energy storage level in Joules.
func (n *Node) Battery() float64 { return n.battery }

// Updates returns how many multiplier updates have been applied.
func (n *Node) Updates() int { return n.updates }

// Depleted reports whether the battery is at or below zero.
func (n *Node) Depleted() bool { return n.battery <= 0 }

// Estimate converts a listener count into the estimate the protocol
// consumes: c-hat for groupput mode, gamma-hat for anyput mode (§V-B).
func (n *Node) Estimate(listeners int) float64 {
	if n.cfg.Mode == model.Anyput {
		if listeners > 0 {
			return 1
		}
		return 0
	}
	return float64(listeners)
}

// natural returns the dimensionless exponent eta * power / sigma used by
// the rate laws; power is scaled by the node's own p0 so eta stays O(1).
func (n *Node) scaled(power float64) float64 {
	return n.eta * power / n.p0 / n.cfg.Sigma
}

// Rates evaluates eq. (18) for the current multiplier. carrierFree is the
// indicator A(t): when false (an ongoing transmission is sensed), the
// sleep->listen, listen->sleep and listen->transmit transitions freeze.
// estimate is c-hat (groupput) or gamma-hat (anyput), used by the
// listen->transmit rate of the non-capture variant and the
// transmit->listen rate of the capture variant. Rates are per second.
func (n *Node) Rates(carrierFree bool, estimate float64) Rates {
	perSec := 1 / n.cfg.PacketTime
	a := 0.0
	if carrierFree {
		a = 1
	}
	r := Rates{
		SleepToListen: a * math.Exp(-n.scaled(n.cfg.ListenPower)) * perSec,
		ListenToSleep: a * perSec,
	}
	lx := n.scaled(n.cfg.ListenPower) - n.scaled(n.cfg.TransmitPower)
	switch n.cfg.Variant {
	case Capture:
		r.ListenToTransmit = a * math.Exp(lx) * perSec
		r.TransmitToListen = math.Exp(-estimate/n.cfg.Sigma) * perSec
	case NonCapture:
		r.ListenToTransmit = a * math.Exp(lx+estimate/n.cfg.Sigma) * perSec
		r.TransmitToListen = perSec
	}
	return r
}

// ContinueTransmitProb is the packetized form of the transmit-state
// holding time (§V-B, §VIII-C): after each unit packet an EconCast-C
// transmitter continues with probability 1 - exp(-estimate/sigma). The
// non-capture variant always releases (probability 0).
func (n *Node) ContinueTransmitProb(estimate float64) float64 {
	if n.cfg.Variant == NonCapture {
		return 0
	}
	return 1 - math.Exp(-estimate/n.cfg.Sigma)
}

// Advance accrues dt seconds of operation in the given state: the battery
// charges at the budget rate and drains at the state's power draw, and the
// multiplier update of eq. (17) fires at every tau boundary crossed.
func (n *Node) Advance(dt float64, st model.State) {
	if dt < 0 {
		panic("econcast: negative dt")
	}
	draw := n.power(st)
	for dt > 0 {
		step := dt
		if remaining := n.cfg.Tau - n.intervalElapsed; step > remaining {
			step = remaining
		}
		harvest := n.cfg.Budget
		if n.cfg.Harvest != nil {
			// Piecewise-constant within the step, sampled at its start;
			// steps never exceed tau, so slowly-varying profiles are
			// integrated accurately.
			harvest = n.cfg.Harvest(n.elapsed)
		}
		n.elapsed += step
		net := (harvest - draw) * step
		// The estimator ledger is the paper's virtual battery: it may go
		// negative so eq. (17) keeps seeing true overspending even when
		// the physical store is pinned at zero.
		n.ledger += net
		n.battery += net
		if n.cfg.BatteryCapacity > 0 {
			if n.battery > n.cfg.BatteryCapacity {
				n.battery = n.cfg.BatteryCapacity
			}
			if n.ledger > n.cfg.BatteryCapacity {
				n.ledger = n.cfg.BatteryCapacity
			}
		}
		if n.cfg.ClampBatteryAtZero && n.battery < 0 {
			n.battery = 0
		}
		n.intervalElapsed += step
		dt -= step
		if n.intervalElapsed >= n.cfg.Tau-1e-15 {
			n.updateMultiplier()
		}
	}
}

// updateMultiplier applies eq. (17): eta <- [eta - delta * (b_k - b_{k-1})
// / tau]^+, with the virtual-battery slope normalized by the node's power
// scale so eta and delta are dimensionless.
func (n *Node) updateMultiplier() {
	slope := (n.ledger - n.intervalStart) / n.cfg.Tau / n.p0
	n.eta = math.Max(0, n.eta-n.cfg.Delta*slope)
	n.intervalStart = n.ledger
	n.intervalElapsed = 0
	n.updates++
}

func (n *Node) power(st model.State) float64 {
	switch st {
	case model.Listen:
		return n.cfg.ListenPower
	case model.Transmit:
		return n.cfg.TransmitPower
	default:
		return 0
	}
}
