package econcast

import (
	"math"
	"testing"

	"econcast/internal/model"
)

func baseConfig() Config {
	return Config{
		Mode:          model.Groupput,
		Variant:       Capture,
		Sigma:         0.5,
		Budget:        10 * model.MicroWatt,
		ListenPower:   500 * model.MicroWatt,
		TransmitPower: 500 * model.MicroWatt,
	}
}

func TestConfigValidation(t *testing.T) {
	good := baseConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Sigma = 0 },
		func(c *Config) { c.Sigma = -1 },
		func(c *Config) { c.Budget = 0 },
		func(c *Config) { c.ListenPower = 0 },
		func(c *Config) { c.TransmitPower = -1 },
		func(c *Config) { c.PacketTime = -1 },
		func(c *Config) { c.Delta = -0.1 },
	}
	for i, mut := range bad {
		c := baseConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestNewNodePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := baseConfig()
	c.Sigma = 0
	NewNode(c)
}

func TestDefaults(t *testing.T) {
	n := NewNode(baseConfig())
	cfg := n.Config()
	if cfg.PacketTime != 1e-3 {
		t.Fatalf("packet time default %v", cfg.PacketTime)
	}
	if cfg.Tau != 0.2 {
		t.Fatalf("tau default %v", cfg.Tau)
	}
	if cfg.Delta != 0.05 {
		t.Fatalf("delta default %v", cfg.Delta)
	}
}

// With eta = 0 the rate laws reduce to the bare exponentials of eq. (18).
func TestRatesAtZeroEta(t *testing.T) {
	n := NewNode(baseConfig())
	r := n.Rates(true, 2)
	perSec := 1000.0
	if math.Abs(r.SleepToListen-perSec) > 1e-9 {
		t.Fatalf("sl = %v", r.SleepToListen)
	}
	if math.Abs(r.ListenToSleep-perSec) > 1e-9 {
		t.Fatalf("ls = %v", r.ListenToSleep)
	}
	if math.Abs(r.ListenToTransmit-perSec) > 1e-9 { // L = X
		t.Fatalf("lx = %v", r.ListenToTransmit)
	}
	want := math.Exp(-2/0.5) * perSec
	if math.Abs(r.TransmitToListen-want) > 1e-9 {
		t.Fatalf("xl = %v, want %v", r.TransmitToListen, want)
	}
}

func TestCarrierSenseFreezes(t *testing.T) {
	n := NewNode(baseConfig())
	r := n.Rates(false, 1)
	if r.SleepToListen != 0 || r.ListenToSleep != 0 || r.ListenToTransmit != 0 {
		t.Fatalf("carrier-busy rates not frozen: %+v", r)
	}
	// The transmitter's own exit rate is never frozen.
	if r.TransmitToListen <= 0 {
		t.Fatal("transmit exit frozen")
	}
}

func TestEtaLowersActivity(t *testing.T) {
	n := NewNode(baseConfig())
	r0 := n.Rates(true, 0)
	n.SetEta(2)
	r1 := n.Rates(true, 0)
	if r1.SleepToListen >= r0.SleepToListen {
		t.Fatal("higher eta should lower the wake-up rate")
	}
	if r1.ListenToSleep != r0.ListenToSleep {
		t.Fatal("listen->sleep rate must not depend on eta")
	}
}

func TestAsymmetricPowersShiftListenTransmitSplit(t *testing.T) {
	c := baseConfig()
	c.ListenPower = 900 * model.MicroWatt
	c.TransmitPower = 100 * model.MicroWatt
	n := NewNode(c)
	n.SetEta(1)
	r := n.Rates(true, 0)
	// Listening costs more than transmitting: the node should be eager to
	// leave listen for transmit (rate > 1/packet).
	if r.ListenToTransmit <= 1000 {
		t.Fatalf("lx = %v, want > 1000", r.ListenToTransmit)
	}
}

func TestNonCaptureVariant(t *testing.T) {
	c := baseConfig()
	c.Variant = NonCapture
	n := NewNode(c)
	// Always releases after one packet.
	if p := n.ContinueTransmitProb(5); p != 0 {
		t.Fatalf("NC continue prob = %v", p)
	}
	r := n.Rates(true, 3)
	if math.Abs(r.TransmitToListen-1000) > 1e-9 {
		t.Fatalf("NC xl = %v", r.TransmitToListen)
	}
	// The estimate boosts listen->transmit instead.
	rLow := n.Rates(true, 0)
	if r.ListenToTransmit <= rLow.ListenToTransmit {
		t.Fatal("NC lx should grow with the listener estimate")
	}
}

// The paper's §VIII-D anchors: with one ping received, an EconCast-C
// transmitter continues with probability 0.8647 at sigma=0.5 and 0.9817 at
// sigma=0.25.
func TestContinueProbabilityPaperAnchors(t *testing.T) {
	c := baseConfig()
	c.Sigma = 0.5
	if p := NewNode(c).ContinueTransmitProb(1); math.Abs(p-0.8647) > 1e-4 {
		t.Fatalf("sigma=0.5: continue prob %v, want 0.8647", p)
	}
	c.Sigma = 0.25
	if p := NewNode(c).ContinueTransmitProb(1); math.Abs(p-0.9817) > 1e-4 {
		t.Fatalf("sigma=0.25: continue prob %v, want 0.9817", p)
	}
	// No listeners: stop immediately.
	if p := NewNode(c).ContinueTransmitProb(0); p != 0 {
		t.Fatalf("no-listener continue prob %v", p)
	}
}

func TestEstimateModes(t *testing.T) {
	g := NewNode(baseConfig())
	if g.Estimate(3) != 3 || g.Estimate(0) != 0 {
		t.Fatal("groupput estimate should be the count")
	}
	c := baseConfig()
	c.Mode = model.Anyput
	a := NewNode(c)
	if a.Estimate(3) != 1 || a.Estimate(1) != 1 || a.Estimate(0) != 0 {
		t.Fatal("anyput estimate should be the indicator")
	}
}

func TestBatteryAccrual(t *testing.T) {
	c := baseConfig()
	c.InitialBattery = 1e-3
	c.Tau = 1e9 // no multiplier updates during this test
	n := NewNode(c)
	n.Advance(10, model.Sleep) // harvest only: +10*rho
	want := 1e-3 + 10*c.Budget
	if math.Abs(n.Battery()-want) > 1e-15 {
		t.Fatalf("battery %v, want %v", n.Battery(), want)
	}
	n.Advance(1, model.Listen) // drain L, harvest rho
	want += c.Budget - c.ListenPower
	if math.Abs(n.Battery()-want) > 1e-12 {
		t.Fatalf("battery %v, want %v", n.Battery(), want)
	}
}

func TestBatteryCapacityAndFloor(t *testing.T) {
	c := baseConfig()
	c.BatteryCapacity = 5e-6
	c.ClampBatteryAtZero = true
	c.Tau = 1e9
	n := NewNode(c)
	n.Advance(10, model.Sleep) // would exceed capacity
	if n.Battery() != 5e-6 {
		t.Fatalf("battery %v, want capped 5e-6", n.Battery())
	}
	n.Advance(1, model.Transmit) // would go negative
	if n.Battery() != 0 {
		t.Fatalf("battery %v, want floored 0", n.Battery())
	}
	if !n.Depleted() {
		t.Fatal("Depleted false at zero")
	}
}

// Eq. (17): overspending raises eta, underspending lowers it toward zero.
func TestMultiplierDynamics(t *testing.T) {
	c := baseConfig()
	c.Tau = 1
	c.Delta = 0.1
	n := NewNode(c)
	// One full interval of listening: battery slope = rho - L < 0.
	n.Advance(1, model.Listen)
	if n.Updates() != 1 {
		t.Fatalf("updates = %d", n.Updates())
	}
	if n.Eta() <= 0 {
		t.Fatal("eta should rise after overspending")
	}
	etaHigh := n.Eta()
	// Many intervals of pure sleeping: battery slope = +rho, eta decays.
	for i := 0; i < 1000; i++ {
		n.Advance(1, model.Sleep)
	}
	if n.Eta() >= etaHigh {
		t.Fatal("eta should fall after sustained surplus")
	}
	if n.Eta() < 0 {
		t.Fatal("eta went negative")
	}
}

// eta must converge so that consumption tracks the budget: simulate a node
// whose duty cycle is a function of eta and check the closed loop settles
// near budget-balance.
func TestMultiplierClosedLoop(t *testing.T) {
	c := baseConfig()
	c.Tau = 0.2
	c.Delta = 0.5
	n := NewNode(c)
	// Toy host: each interval the node listens for a fraction that decays
	// with eta (mimicking the Gibbs behaviour) and sleeps otherwise.
	listenFrac := func(eta float64) float64 {
		return math.Exp(-eta * 1.0 / c.Sigma) // L/p0 = 1
	}
	for k := 0; k < 4000; k++ {
		f := listenFrac(n.Eta())
		n.Advance(c.Tau*f, model.Listen)
		n.Advance(c.Tau*(1-f), model.Sleep)
	}
	f := listenFrac(n.Eta())
	consumption := f * c.ListenPower
	if math.Abs(consumption-c.Budget)/c.Budget > 0.25 {
		t.Fatalf("closed-loop consumption %v, budget %v", consumption, c.Budget)
	}
}

func TestAdvanceAcrossManyIntervals(t *testing.T) {
	c := baseConfig()
	c.Tau = 0.1
	n := NewNode(c)
	n.Advance(1.05, model.Sleep) // spans 10 full intervals
	if n.Updates() != 10 {
		t.Fatalf("updates = %d, want 10", n.Updates())
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNode(baseConfig()).Advance(-1, model.Sleep)
}

func TestSetEtaClampsNegative(t *testing.T) {
	n := NewNode(baseConfig())
	n.SetEta(-3)
	if n.Eta() != 0 {
		t.Fatalf("eta = %v", n.Eta())
	}
}

func TestVariantString(t *testing.T) {
	if Capture.String() != "EconCast-C" || NonCapture.String() != "EconCast-NC" {
		t.Fatal("variant strings wrong")
	}
}
