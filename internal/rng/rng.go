// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulators.
//
// All randomness in this repository flows through rng.Source so that every
// simulation, experiment, and test is exactly reproducible from a seed.
// The generator is xoshiro256** seeded via splitmix64, following the
// reference implementations by Blackman and Vigna. Independent streams for
// concurrent node goroutines are derived with Split, which uses splitmix64
// jumps so derived streams do not overlap in practice.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic pseudo-random number generator. It is not safe
// for concurrent use; derive one Source per goroutine with Split.
//
//lint:owner goroutine each goroutine owns its own stream, derived with Split
type Source struct {
	s [4]uint64
}

// splitmix64 advances x and returns the next splitmix64 output. It is used
// for seeding and for deriving child streams.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds give independent
// sequences; the same seed always gives the same sequence.
func New(seed uint64) *Source {
	var src Source
	x := seed
	for i := range src.s {
		src.s[i] = splitmix64(&x)
	}
	// xoshiro256** must not be seeded with the all-zero state.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// Split derives a new, effectively independent Source from s. The parent
// advances, so successive Split calls yield distinct children.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xd2b74407b1ce6e93)
}

// DeriveSeed mixes base with the given parts through splitmix64 and
// returns a child seed. It is the one sanctioned way to derive per-cell
// seeds for parameter sweeps: unlike additive arithmetic such as
// `base + uint64(sigma*1000)`, distinct part tuples cannot collide by
// landing on the same sum, and every part perturbs all 64 output bits.
// Float-valued sweep parameters should be passed through
// math.Float64bits so distinct values map to distinct parts.
//
// "One sanctioned way" is machine-checked: econlint's seedflow analyzer
// flags any additive/xor-derived seed reaching rng.New, a Seed field, or
// a seed-named parameter elsewhere in the repo (DESIGN.md §5, rule 8).
//
// The derivation is pure (base is not a stream and does not advance), so
// cells of a sweep may derive their seeds concurrently and in any order.
func DeriveSeed(base uint64, parts ...uint64) uint64 {
	x := base
	h := splitmix64(&x)
	for _, p := range parts {
		x = h ^ p
		h = splitmix64(&x)
	}
	return h
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		hi, lo := bits.Mul64(s.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0. Exp(+Inf) returns 0.
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	if math.IsInf(rate, 1) {
		return 0
	}
	// 1-Float64() is in (0,1], so Log never sees zero.
	return -math.Log(1-s.Float64()) / rate
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Geometric returns the number of Bernoulli(p) trials up to and including
// the first success (support 1, 2, ...). It panics if p <= 0 or p > 1.
func (s *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric with p outside (0, 1]")
	}
	if p == 1 { //lint:allow floateq exact edge case: log(1-p) would be -Inf
		return 1
	}
	// Inversion: ceil(ln U / ln(1-p)).
	u := 1 - s.Float64() // in (0, 1]
	n := int(math.Ceil(math.Log(u) / math.Log(1-p)))
	if n < 1 {
		n = 1
	}
	return n
}

// Normal returns a standard normally distributed value (Marsaglia polar).
func (s *Source) Normal() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, as in math/rand.Shuffle.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
