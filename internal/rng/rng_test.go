package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverged at step %d", i)
		}
	}
}

func TestDistinctSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 outputs", same)
	}
}

func TestZeroSeedNotAllZeroState(t *testing.T) {
	s := New(0)
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		t.Fatal("all-zero internal state")
	}
	// The generator must still produce varied output.
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("only %d distinct outputs from 100 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling streams produced identical first output")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < n/7-1000 || c > n/7+1000 {
			t.Fatalf("Intn(7) value %d count %d, want ~%d", v, c, n/7)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	s := New(6)
	const n = 200000
	for _, rate := range []float64{0.5, 1, 4, 1000} {
		sum := 0.0
		for i := 0; i < n; i++ {
			v := s.Exp(rate)
			if v < 0 {
				t.Fatalf("Exp(%v) negative: %v", rate, v)
			}
			sum += v
		}
		mean := sum / n
		want := 1 / rate
		if math.Abs(mean-want) > 0.02*want {
			t.Fatalf("Exp(%v) mean = %v, want ~%v", rate, mean, want)
		}
	}
}

func TestExpInfiniteRate(t *testing.T) {
	if v := New(1).Exp(math.Inf(1)); v != 0 {
		t.Fatalf("Exp(+Inf) = %v, want 0", v)
	}
}

func TestExpPanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestGeometricMean(t *testing.T) {
	s := New(8)
	const n = 100000
	for _, p := range []float64{0.1, 0.5, 0.9, 1.0} {
		sum := 0
		for i := 0; i < n; i++ {
			v := s.Geometric(p)
			if v < 1 {
				t.Fatalf("Geometric(%v) = %d < 1", p, v)
			}
			sum += v
		}
		mean := float64(sum) / n
		want := 1 / p
		if math.Abs(mean-want) > 0.03*want+0.01 {
			t.Fatalf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(9)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("Normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("Normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(10)
	for n := 0; n <= 20; n++ {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(11)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: %v", xs)
	}
}

// Property: Uniform(lo, hi) always lands in [lo, hi) for lo < hi.
func TestUniformRangeProperty(t *testing.T) {
	s := New(12)
	f := func(a, b float64) bool {
		lo, hi := a, b
		if !(lo < hi) || math.IsNaN(lo) || math.IsNaN(hi) ||
			math.IsInf(hi-lo, 0) {
			return true // skip degenerate or overflowing inputs
		}
		v := s.Uniform(lo, hi)
		return v >= lo && v < hi || v == lo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Bernoulli(p) frequency tracks p.
func TestBernoulliFrequency(t *testing.T) {
	s := New(13)
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
		hits := 0
		const n = 100000
		for i := 0; i < n; i++ {
			if s.Bernoulli(p) {
				hits++
			}
		}
		freq := float64(hits) / n
		if math.Abs(freq-p) > 0.01 {
			t.Fatalf("Bernoulli(%v) frequency %v", p, freq)
		}
	}
}

func TestDeriveSeedDeterministic(t *testing.T) {
	if DeriveSeed(1, 2, 3) != DeriveSeed(1, 2, 3) {
		t.Fatal("DeriveSeed not a pure function of its inputs")
	}
	if DeriveSeed(1) == DeriveSeed(2) {
		t.Fatal("distinct bases collided")
	}
}

func TestDeriveSeedOrderAndArity(t *testing.T) {
	cases := [][]uint64{
		{},
		{0},
		{1},
		{2},
		{1, 2},
		{2, 1},
		{1, 2, 3},
		{3, 2, 1},
		{math.Float64bits(0.25)},
		{math.Float64bits(0.5)},
	}
	seen := map[uint64][]uint64{}
	for _, parts := range cases {
		s := DeriveSeed(42, parts...)
		if prev, dup := seen[s]; dup {
			t.Fatalf("DeriveSeed(42, %v) == DeriveSeed(42, %v) = %#x", parts, prev, s)
		}
		seen[s] = parts
	}
}

// TestDeriveSeedNoAdditiveCollisions pins the reason DeriveSeed exists:
// the old `base + uint64(sigma*1000)`-style arithmetic collides whenever
// two cells' offsets sum to the same value (e.g. (n=5, rep=1) and
// (n=4, rep=2) under base+n+rep). Mixed derivation keeps a dense grid of
// part tuples collision-free.
func TestDeriveSeedNoAdditiveCollisions(t *testing.T) {
	seen := map[uint64]bool{}
	count := 0
	for n := uint64(0); n < 30; n++ {
		for rep := uint64(0); rep < 30; rep++ {
			for k := uint64(0); k < 4; k++ {
				s := DeriveSeed(7, n, rep, k)
				if seen[s] {
					t.Fatalf("collision at (n=%d, rep=%d, k=%d)", n, rep, k)
				}
				seen[s] = true
				count++
			}
		}
	}
	if len(seen) != count {
		t.Fatalf("%d distinct seeds from %d tuples", len(seen), count)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Exp(3)
	}
	_ = sink
}
