package viz

import (
	"math"
	"strings"
	"testing"
)

func demoChart() *Chart {
	return &Chart{
		Title:    "Throughput ratio vs sigma",
		Subtitle: "N=5 clique",
		XLabel:   "sigma",
		YLabel:   "ratio",
		Series: []Series{
			{Name: "groupput", X: []float64{0.1, 0.25, 0.5}, Y: []float64{0.9, 0.43, 0.14}},
			{Name: "anyput", X: []float64{0.1, 0.25, 0.5}, Y: []float64{0.97, 0.52, 0.2}},
		},
	}
}

func TestSVGBasics(t *testing.T) {
	svg, err := demoChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<svg", "</svg>",
		"Throughput ratio vs sigma", "N=5 clique",
		"groupput", "anyput",
		`stroke-width="2"`,        // 2px lines
		`stroke-linejoin="round"`, // round joins
		seriesColors[0],           // slot 1 hue present
		seriesColors[1],           // slot 2 hue present
		`r="4"`,                   // >=8px markers
		`r="6" fill="` + surface,  // 2px surface ring
		`fill="` + inkPrimary,     // text in ink
		`stroke="` + gridline,     // hairline gridlines
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Text must never wear the series color: no <text ... fill="#2a78d6">.
	if strings.Contains(svg, `<text`) && strings.Contains(svg, `font-size="11" fill="`+seriesColors[0]) {
		t.Error("text colored with a series hue")
	}
}

func TestSingleSeriesNoLegend(t *testing.T) {
	c := demoChart()
	c.Series = c.Series[:1]
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	// A single series gets no legend row: the name appears once (the
	// end-label), not twice.
	if n := strings.Count(svg, ">groupput<"); n != 1 {
		t.Errorf("single-series chart shows name %d times, want 1 (end label only)", n)
	}
}

func TestLegendPresentForTwoSeries(t *testing.T) {
	svg, err := demoChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	// Names appear in both the legend and (non-colliding) end labels.
	if n := strings.Count(svg, ">groupput<"); n < 2 {
		t.Errorf("legend missing: name appears %d times", n)
	}
}

func TestLogAxes(t *testing.T) {
	c := &Chart{
		Title: "burst vs sigma",
		YLog:  true,
		Series: []Series{{
			Name: "N=10",
			X:    []float64{0.1, 0.25, 0.5},
			Y:    []float64{4e5, 99, 8.9},
		}},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	// Decade ticks must appear.
	for _, tick := range []string{">10<", ">100<"} {
		if !strings.Contains(svg, tick) {
			t.Errorf("log axis missing decade tick %s", tick)
		}
	}
	// Zero on a log axis must error.
	c.Series[0].Y[0] = 0
	if _, err := c.SVG(); err == nil {
		t.Error("zero on log axis accepted")
	}
}

func TestErrors(t *testing.T) {
	if _, err := (&Chart{Title: "x"}).SVG(); err == nil {
		t.Error("empty chart accepted")
	}
	c := &Chart{Series: []Series{{Name: "a", X: []float64{1}, Y: []float64{1, 2}}}}
	if _, err := c.SVG(); err == nil {
		t.Error("mismatched series accepted")
	}
	// Too many series for the fixed palette: never generate hues.
	over := &Chart{}
	for i := 0; i <= maxSeriesHues; i++ {
		over.Series = append(over.Series, Series{
			Name: string(rune('a' + i)), X: []float64{1, 2}, Y: []float64{1, 2},
		})
	}
	if _, err := over.SVG(); err == nil {
		t.Error("more series than palette hues accepted")
	}
}

func TestEscaping(t *testing.T) {
	c := demoChart()
	c.Title = `ratio <T> & "stuff"`
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "<T>") {
		t.Error("unescaped markup in title")
	}
	if !strings.Contains(svg, "&lt;T&gt; &amp; &quot;stuff&quot;") {
		t.Error("escaping wrong")
	}
}

func TestAxisTicksAreClean(t *testing.T) {
	a := newAxis([]float64{0.03, 0.97}, false)
	if a.min > 0.03 || a.max < 0.97 {
		t.Fatalf("axis [%v, %v] does not cover data", a.min, a.max)
	}
	if len(a.ticks) < 3 || len(a.ticks) > 12 {
		t.Fatalf("%d ticks", len(a.ticks))
	}
	// Ticks are evenly spaced.
	step := a.ticks[1] - a.ticks[0]
	for i := 1; i < len(a.ticks); i++ {
		if math.Abs(a.ticks[i]-a.ticks[i-1]-step) > 1e-12 {
			t.Fatalf("uneven ticks %v", a.ticks)
		}
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		0.25:   "0.25",
		1:      "1",
		2.5:    "2.5",
		100:    "100",
		1e6:    "1e+06",
		0.0001: "1e-04",
	}
	for in, want := range cases {
		if got := fmtTick(in); got != want {
			t.Errorf("fmtTick(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestDegenerateFlatSeries(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "flat", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}}}}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "</svg>") {
		t.Fatal("truncated SVG")
	}
}
