// Package viz renders the experiment series as standalone SVG line charts,
// reproducing the paper's figures as figures. The visual system follows a
// validated reference palette and fixed mark specs: 2px round-joined lines,
// 8px markers with a 2px surface ring, hairline solid gridlines, text in
// ink tokens (never the series color), a legend whenever there are two or
// more series plus selective direct end-labels, and a single axis per
// chart. The categorical palette below was machine-validated (worst
// adjacent CVD deltaE 24.2); the two low-contrast hues are relieved by the
// accompanying text tables that every chart ships with.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Palette and ink tokens (light surface), from the validated reference
// palette. Order is fixed; series beyond the sixth are not assigned new
// hues — split the chart instead.
var (
	seriesColors = []string{
		"#2a78d6", // blue
		"#1baf7a", // aqua
		"#eda100", // yellow
		"#008300", // green
		"#4a3aa7", // violet
		"#e34948", // red
	}
	surface       = "#fcfcfb"
	inkPrimary    = "#0b0b0b"
	inkSecondary  = "#52514e"
	gridline      = "#e4e3e0"
	maxSeriesHues = len(seriesColors)
)

// Series is one named line: points (X[i], Y[i]) in data coordinates.
// MarkersOnly suppresses the connecting line (e.g. simulation markers laid
// over an analytic curve).
type Series struct {
	Name        string
	X, Y        []float64
	MarkersOnly bool
}

// Chart describes one figure.
type Chart struct {
	Title    string
	Subtitle string
	XLabel   string
	YLabel   string
	XLog     bool // log10 x-axis (positive data only)
	YLog     bool // log10 y-axis (positive data only)
	Series   []Series

	// Width and Height in px; zero means the 720x440 default.
	Width, Height int
}

// SVG renders the chart. It returns an error for empty or inconsistent
// input, more series than the palette carries, or non-positive data on a
// log axis.
func (c *Chart) SVG() (string, error) {
	if len(c.Series) == 0 {
		return "", fmt.Errorf("viz: chart %q has no series", c.Title)
	}
	if len(c.Series) > maxSeriesHues {
		return "", fmt.Errorf("viz: %d series exceed the %d-hue palette; split the chart",
			len(c.Series), maxSeriesHues)
	}
	w, h := c.Width, c.Height
	if w == 0 {
		w = 720
	}
	if h == 0 {
		h = 440
	}

	// Data extent.
	var xs, ys []float64
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("viz: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return "", fmt.Errorf("viz: series %q is empty", s.Name)
		}
		for i := range s.X {
			if c.XLog && s.X[i] <= 0 {
				return "", fmt.Errorf("viz: series %q: x=%v on a log axis", s.Name, s.X[i])
			}
			if c.YLog && s.Y[i] <= 0 {
				return "", fmt.Errorf("viz: series %q: y=%v on a log axis", s.Name, s.Y[i])
			}
			xs = append(xs, s.X[i])
			ys = append(ys, s.Y[i])
		}
	}
	xAxis := newAxis(xs, c.XLog)
	yAxis := newAxis(ys, c.YLog)

	const (
		padLeft   = 64
		padRight  = 120 // room for end labels
		padTop    = 56
		padBottom = 52
	)
	plotW := float64(w - padLeft - padRight)
	plotH := float64(h - padTop - padBottom)
	px := func(x float64) float64 { return padLeft + xAxis.frac(x)*plotW }
	py := func(y float64) float64 { return float64(padTop) + (1-yAxis.frac(y))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, -apple-system, sans-serif">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", w, h, surface)

	// Title block: primary ink title, secondary subtitle.
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="15" font-weight="600" fill="%s">%s</text>`+"\n",
		padLeft, inkPrimary, esc(c.Title))
	if c.Subtitle != "" {
		fmt.Fprintf(&b, `<text x="%d" y="42" font-size="12" fill="%s">%s</text>`+"\n",
			padLeft, inkSecondary, esc(c.Subtitle))
	}

	// Gridlines + y ticks (hairline, solid, recessive; tick text secondary).
	for _, t := range yAxis.ticks {
		y := py(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
			padLeft, y, padLeft+plotW, y, gridline)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" fill="%s" text-anchor="end" dominant-baseline="middle">%s</text>`+"\n",
			padLeft-8, y, inkSecondary, fmtTick(t))
	}
	// X ticks.
	for _, t := range xAxis.ticks {
		x := px(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
			x, float64(padTop)+plotH, x, float64(padTop)+plotH+4, gridline)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s" text-anchor="middle">%s</text>`+"\n",
			x, float64(padTop)+plotH+18, inkSecondary, fmtTick(t))
	}
	// Axis labels.
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="12" fill="%s" text-anchor="middle">%s</text>`+"\n",
			padLeft+plotW/2, h-10, inkSecondary, esc(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%.1f" font-size="12" fill="%s" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
			float64(padTop)+plotH/2, inkSecondary, float64(padTop)+plotH/2, esc(c.YLabel))
	}

	// Series: 2px round-joined lines; >=8px markers with a 2px surface ring.
	type endLabel struct {
		y     float64
		text  string
		color string
	}
	var ends []endLabel
	for si, s := range c.Series {
		color := seriesColors[si]
		if !s.MarkersOnly {
			var path strings.Builder
			for i := range s.X {
				cmd := "L"
				if i == 0 {
					cmd = "M"
				}
				fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, px(s.X[i]), py(s.Y[i]))
			}
			fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>`+"\n",
				strings.TrimSpace(path.String()), color)
		}
		for i := range s.X {
			// 2px surface ring via a larger surface-colored disc underneath.
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="6" fill="%s"/>`+"\n", px(s.X[i]), py(s.Y[i]), surface)
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s"><title>%s: (%s, %s)</title></circle>`+"\n",
				px(s.X[i]), py(s.Y[i]), color, esc(s.Name), fmtTick(s.X[i]), fmtTick(s.Y[i]))
		}
		ends = append(ends, endLabel{
			y: py(s.Y[len(s.Y)-1]), text: s.Name, color: color,
		})
	}

	// Selective direct end-labels: only when they don't collide (>= 14px
	// apart); colliders fall back to the legend alone. Text in ink, with a
	// small series-colored key beside it.
	sortedOK := make([]bool, len(ends))
	for i := range ends {
		sortedOK[i] = true
		for j := range ends {
			if i != j && math.Abs(ends[i].y-ends[j].y) < 14 {
				sortedOK[i] = false
			}
		}
	}
	for i, e := range ends {
		if !sortedOK[i] {
			continue
		}
		x := padLeft + plotW + 10
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s"/>`+"\n", x, e.y, e.color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s" dominant-baseline="middle">%s</text>`+"\n",
			x+8, e.y, inkPrimary, esc(e.text))
	}

	// Legend (always, for >= 2 series) in one row under the title.
	if len(c.Series) >= 2 {
		x := float64(padLeft)
		y := float64(padTop) - 8
		for si, s := range c.Series {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s"/>`+"\n", x+4, y-4, seriesColors[si])
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s">%s</text>`+"\n",
				x+12, y, inkPrimary, esc(s.Name))
			x += 22 + 6.5*float64(len(s.Name))
		}
	}

	b.WriteString("</svg>\n")
	return b.String(), nil
}

// axis maps data values to [0, 1] with clean ticks.
type axis struct {
	min, max float64
	log      bool
	ticks    []float64
}

func newAxis(vals []float64, logScale bool) axis {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	a := axis{log: logScale}
	if logScale {
		a.min = math.Pow(10, math.Floor(math.Log10(lo)))
		a.max = math.Pow(10, math.Ceil(math.Log10(hi)))
		if a.min == a.max { //lint:allow floateq both sides are exact powers of ten from Pow(10, floor/ceil)
			a.max = a.min * 10
		}
		for d := a.min; d <= a.max*1.0001; d *= 10 {
			a.ticks = append(a.ticks, d)
		}
		return a
	}
	if lo == hi { //lint:allow floateq degenerate-range guard; near-equal ranges still render fine
		lo, hi = lo-1, hi+1
	}
	// Nice step: 1/2/5 x 10^k covering the span with ~5 ticks.
	span := hi - lo
	raw := span / 5
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	step := mag
	switch {
	case raw/mag > 5:
		step = 10 * mag
	case raw/mag > 2:
		step = 5 * mag
	case raw/mag > 1:
		step = 2 * mag
	}
	a.min = math.Floor(lo/step) * step
	a.max = math.Ceil(hi/step) * step
	for t := a.min; t <= a.max+step/2; t += step {
		a.ticks = append(a.ticks, t)
	}
	return a
}

// frac maps a value to [0, 1] along the axis.
func (a axis) frac(v float64) float64 {
	if a.log {
		return (math.Log10(v) - math.Log10(a.min)) / (math.Log10(a.max) - math.Log10(a.min))
	}
	return (v - a.min) / (a.max - a.min)
}

// fmtTick formats a tick value compactly with clean numbers.
func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0: //lint:allow floateq tick values are constructed, and only exact zero prints as "0"
		return "0"
	case av >= 1e6 || av < 1e-3:
		return fmt.Sprintf("%.0e", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return trimZeros(fmt.Sprintf("%.2f", v))
	default:
		return trimZeros(fmt.Sprintf("%.3f", v))
	}
}

func trimZeros(s string) string {
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
